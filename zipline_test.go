package zipline

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCodecPaperGeometry(t *testing.T) {
	c := MustCodec(Config{})
	if c.ChunkSize() != 32 {
		t.Fatalf("ChunkSize = %d", c.ChunkSize())
	}
	if c.BasisBits() != 247 || c.DeviationBits() != 8 {
		t.Fatalf("geometry = %d/%d", c.BasisBits(), c.DeviationBits())
	}
	if got := c.Config(); got.M != 8 || got.IDBits != 15 {
		t.Fatalf("defaults = %+v", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range []int{3, 8, 12} {
		c, err := NewCodec(Config{M: m})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 50; trial++ {
			chunk := make([]byte, c.ChunkSize())
			rng.Read(chunk)
			s, err := c.Split(chunk)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Basis) != (c.BasisBits()+7)/8 {
				t.Fatalf("basis bytes = %d", len(s.Basis))
			}
			out, err := c.Merge(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, chunk) {
				t.Fatalf("m=%d: round trip failed", m)
			}
		}
	}
}

func TestCodecValidation(t *testing.T) {
	if _, err := NewCodec(Config{M: 2}); err == nil {
		t.Error("M=2 accepted")
	}
	if _, err := NewCodec(Config{M: 16}); err == nil {
		t.Error("M=16 accepted")
	}
	if _, err := NewCodec(Config{IDBits: 25}); err == nil {
		t.Error("IDBits=25 accepted")
	}
	c := MustCodec(Config{})
	if _, err := c.Split(make([]byte, 31)); err == nil {
		t.Error("short chunk accepted")
	}
	if _, err := c.Merge(Split{Basis: make([]byte, 5)}, nil); err == nil {
		t.Error("short basis accepted")
	}
}

func TestMustCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCodec(Config{M: 99})
}

func TestSimulateLinkCompresses(t *testing.T) {
	payload := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(payload)
	res, err := SimulateLink(LinkSimConfig{
		ReplayPPS: 1_000_000,
		Payloads: func(i int) []byte {
			if i >= 5000 {
				return nil
			}
			return payload
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 5000 || res.Received != 5000 {
		t.Fatalf("sent/received = %d/%d", res.Sent, res.Received)
	}
	if res.BasesLearned != 1 {
		t.Fatalf("learned = %d", res.BasesLearned)
	}
	if res.CompressedFrames == 0 || res.UncompressedFrames == 0 {
		t.Fatalf("frame mix = %+v", res)
	}
	if res.Ratio() >= 1 {
		t.Fatalf("ratio = %.3f, no compression", res.Ratio())
	}
	// Learning delay visible through the facade.
	gap := res.FirstCompressedNs - res.FirstUncompressedNs
	if gap < 1_500_000 || gap > 2_100_000 {
		t.Fatalf("learning gap = %d ns", gap)
	}
}

func TestSimulateLinkShortPayloadsPassThrough(t *testing.T) {
	res, err := SimulateLink(LinkSimConfig{
		Payloads: func(i int) []byte {
			if i >= 100 {
				return nil
			}
			return []byte{1, 2, 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RawFrames != 100 || res.CompressedFrames != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Ratio() != 1 {
		t.Fatalf("ratio = %.3f", res.Ratio())
	}
}

func TestSimulateLinkValidation(t *testing.T) {
	if _, err := SimulateLink(LinkSimConfig{}); err == nil {
		t.Error("missing payload source accepted")
	}
	if _, err := SimulateLink(LinkSimConfig{
		Codec:    Config{M: 99},
		Payloads: func(int) []byte { return nil },
	}); err == nil {
		t.Error("bad codec config accepted")
	}
}

func TestBCHCodecPublicAPI(t *testing.T) {
	// T=2 selects the future-work BCH transform: same 32-byte chunks,
	// wider deviation, and losslessness for arbitrary input.
	c, err := NewCodec(Config{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.ChunkSize() != 32 || c.BasisBits() != 239 || c.DeviationBits() != 16 {
		t.Fatalf("geometry: %d/%d/%d", c.ChunkSize(), c.BasisBits(), c.DeviationBits())
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		chunk := make([]byte, 32)
		rng.Read(chunk)
		s, err := c.Split(chunk)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Merge(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, chunk) {
			t.Fatal("BCH codec round trip failed")
		}
	}
	if _, err := NewCodec(Config{T: 4}); err == nil {
		t.Error("T=4 accepted")
	}
}

func TestBCHStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := make([]byte, 20_000)
	rng.Read(data)
	comp, err := CompressBytes(data, Config{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("BCH stream round trip failed")
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
