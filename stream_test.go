package zipline

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestStreamRoundTripRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 31, 32, 33, 64, 1000, 100_000} {
		data := make([]byte, size)
		rng.Read(data)
		comp, err := CompressBytes(data, Config{})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		back, err := DecompressBytes(comp)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("size %d: round trip failed", size)
		}
	}
}

func TestStreamCompressesRepetitiveData(t *testing.T) {
	// 10,000 copies of the same 32-byte chunk: first chunk is a
	// miss, everything after costs ≈26 bits.
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(2)).Read(chunk)
	data := bytes.Repeat(chunk, 10_000)
	comp, err := CompressBytes(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(comp)) / float64(len(data))
	// Ideal: ≈26/256 ≈ 0.10; allow slack for framing.
	if ratio > 0.12 {
		t.Fatalf("ratio = %.4f, want ≤ 0.12", ratio)
	}
	back, err := DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip failed")
	}
}

func TestStreamRandomDataCostsLittle(t *testing.T) {
	// Incompressible data: all misses; GD adds only the 2-bit tags
	// plus block framing (the paper's "applying GD does not introduce
	// additional bits" property, modulo framing).
	data := make([]byte, 64_000)
	rand.New(rand.NewSource(3)).Read(data)
	comp, err := CompressBytes(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(len(comp))/float64(len(data)) - 1
	if overhead > 0.02 {
		t.Fatalf("overhead = %.4f, want ≤ 2%%", overhead)
	}
}

func TestStreamWriterStats(t *testing.T) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(4)).Read(chunk)
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := zw.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := zw.Write([]byte{1, 2, 3}); err != nil { // tail
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if zw.Stats.Chunks != 10 || zw.Stats.Misses != 1 || zw.Stats.Hits != 9 || zw.Stats.TailBytes != 3 {
		t.Fatalf("stats = %+v", zw.Stats)
	}
	// Reader sees the same accounting.
	zr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10*32+3 {
		t.Fatalf("out = %d bytes", len(out))
	}
	if zr.Stats.Chunks != 10 || zr.Stats.Hits != 9 || zr.Stats.TailBytes != 3 {
		t.Fatalf("reader stats = %+v", zr.Stats)
	}
}

func TestStreamSplitWrites(t *testing.T) {
	// Chunk boundaries must not matter: write in awkward pieces.
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 10_000)
	rng.Read(data)
	var buf bytes.Buffer
	zw, _ := NewWriter(&buf, Config{})
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(100)
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := zw.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(mustReader(t, &buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip failed")
	}
}

func TestStreamSmallReads(t *testing.T) {
	data := bytes.Repeat([]byte("zipline!"), 1000)
	comp, _ := CompressBytes(data, Config{M: 5})
	zr := mustReader(t, bytes.NewReader(comp))
	var out []byte
	buf := make([]byte, 7) // deliberately tiny
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip failed")
	}
}

func TestStreamDictionaryEvictionLockstep(t *testing.T) {
	// More distinct bases than dictionary slots: encoder and decoder
	// must follow identical LRU evolutions.
	rng := rand.New(rand.NewSource(6))
	chunks := make([][]byte, 40) // 40 bases, dictionary holds 2^4=16
	for i := range chunks {
		chunks[i] = make([]byte, 32)
		rng.Read(chunks[i])
	}
	var data []byte
	for i := 0; i < 4000; i++ {
		data = append(data, chunks[rng.Intn(len(chunks))]...)
	}
	comp, err := CompressBytes(data, Config{IDBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("lockstep eviction broke the stream")
	}
}

func TestStreamAllMSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 5000)
	rng.Read(data)
	for m := 3; m <= 15; m++ {
		comp, err := CompressBytes(data, Config{M: m})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		back, err := DecompressBytes(comp)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("m=%d: round trip failed", m)
		}
	}
}

func TestStreamCorruptionDetected(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA}, 3200)
	comp, _ := CompressBytes(data, Config{})
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE"), comp[4:]...),
		"bad version": append(append([]byte{}, comp[:4]...), append([]byte{99}, comp[5:]...)...),
		"truncated":   comp[:len(comp)-12],
		"no trailer":  comp[:len(comp)-8],
		"bad m":       append(append([]byte{}, comp[:5]...), append([]byte{77}, comp[6:]...)...),
	}
	for name, c := range cases {
		if _, err := DecompressBytes(c); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	zw, _ := NewWriter(&buf, Config{})
	zw.Close()
	if _, err := zw.Write([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
	// Double close is fine.
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	comp, err := CompressBytes(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("back = %d bytes", len(back))
	}
}

func mustReader(t *testing.T, r io.Reader) *Reader {
	t.Helper()
	zr, err := NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	return zr
}

func BenchmarkStreamCompress(b *testing.B) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(chunk)
	data := bytes.Repeat(chunk, 4096)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompressBytes(data, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamDecompress(b *testing.B) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(chunk)
	data := bytes.Repeat(chunk, 4096)
	comp, _ := CompressBytes(data, Config{})
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBytes(comp); err != nil {
			b.Fatal(err)
		}
	}
}
