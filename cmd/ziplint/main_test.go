package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoClean runs the standalone checker over the whole module: the
// repo's own hot paths must satisfy the invariants ziplint enforces.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("standalone run shells out to go list")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"ziplint", "zipline/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("ziplint found violations (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"ziplint", "-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "buildID=") {
		t.Fatalf("-V=full output missing buildID: %q", out)
	}
}

func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"ziplint", "-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"Name"`) {
		t.Fatalf("-flags output not the vet JSON shape: %q", stdout.String())
	}
}
