// Command ziplint is ZipLine's invariant checker: a multichecker over
// the internal/lint analyzers (noalloc, determinism, streamclose,
// emitbuf) that enforces at the source level what PRs 3–5 established
// by hand-audit — allocation-free hot paths, deterministic simulation
// reports, and checked stream-close errors.
//
// It runs two ways:
//
//	ziplint [-json] [packages]      # standalone, defaults to ./...
//	go vet -vettool=$(which ziplint) ./...
//
// The second form speaks the go command's unitchecker protocol
// (-V=full, -flags, and per-package .cfg files), so ziplint slots into
// `go vet` exactly like an x/tools-based vet tool and CI can cache it
// per package.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"zipline/internal/lint"
)

func main() {
	os.Exit(run(os.Args, os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	args := argv[1:]
	jsonOut := false
	var rest []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			return printVersion(argv[0], stdout, stderr)
		case a == "-flags" || a == "--flags":
			return printFlags(stdout)
		case a == "-json" || a == "--json":
			jsonOut = true
		case strings.HasPrefix(a, "-"):
			// Unknown driver flags (the go command only passes flags
			// ziplint advertised via -flags, so anything else is a
			// user typo).
			fmt.Fprintf(stderr, "ziplint: unknown flag %s\n", a)
			return 2
		default:
			rest = append(rest, a)
		}
	}

	// Unit-checker mode: the go command hands one package config file.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunUnit(rest[0], lint.Analyzers, jsonOut, stdout, stderr)
	}

	// Standalone mode: load and analyze packages ourselves.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	diags := lint.Run(pkgs, lint.Analyzers)
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake: the go command hashes
// this line into its build cache key, so it must change when the tool
// binary changes — hence the executable content hash.
func printVersion(argv0 string, stdout, stderr io.Writer) int {
	progname := filepath.Base(argv0)
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return 0
}

// printFlags advertises the driver flags ziplint accepts, in the JSON
// shape `go vet` queries before deciding what to pass.
func printFlags(stdout io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit JSON output"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 1
	}
	fmt.Fprintln(stdout, string(data))
	return 0
}
