// Command zipline-bench regenerates every table and figure of the
// ZipLine paper's evaluation (§7) on the simulated testbed and prints
// them in the paper's layout, alongside the paper's published values
// for comparison.
//
// Usage:
//
//	zipline-bench [-run all|table1|table2|fig3|fig4|fig5|learning|ablations|perf] [-quick] [-seed N] [-json PATH]
//	zipline-bench -compare old.json new.json [-tolerance 0.15]
//
// -quick scales the datasets and windows down (≈30× faster) for smoke
// runs; the full run uses the paper-scale parameters recorded in
// EXPERIMENTS.md.
//
// -compare diffs two perf artifacts (the committed BENCH_*.json
// baseline against a fresh bench-perf.json) and exits non-zero when
// any measured path's throughput fell more than -tolerance (default
// 0.15) below the baseline — the CI perf-regression gate. A baseline
// entry missing from the fresh run also fails; to retire or re-anchor
// a path, update the committed baseline in the same PR.
//
// The perf experiment measures the software dataplane itself — chunk
// codec MB/s, CRC throughput, per-role switch pkts/s through the
// zero-allocation ProcessAppend path, the scenario engine's events/s,
// the reusable encoder API (EncodeAll/DecodeAll and the pooled
// Reset+re-encode cycle against a shared pre-trained dictionary), and
// the ziphttp deployment surfaces (HTTP gateway encode and round
// trip, TCP proxy streaming) — the repo's performance trajectory.
// -json writes every collected measurement (perf rows plus Figure 3
// compression ratios) as machine-readable JSON; BENCH_PR10.json in the
// repo root is the committed baseline:
//
//	zipline-bench -run perf -json BENCH_PR10.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"zipline/internal/experiments"
	"zipline/internal/gd"
	"zipline/internal/netsim"
	"zipline/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: every experiment propagates its
// error here, the single exit point, instead of calling os.Exit from
// deep inside a report (which would skip deferred cleanup).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zipline-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("run", "all", "experiment to run: all, table1, table2, fig3, fig4, fig5, learning, ablations, perf")
	quick := fs.Bool("quick", false, "scaled-down datasets and windows")
	seed := fs.Int64("seed", 1, "base seed for synthetic data and simulation jitter")
	jsonPath := fs.String("json", "", "write collected measurements (perf, compression ratios) as JSON to this path")
	comparePath := fs.String("compare", "", "baseline perf JSON; the fresh JSON follows as a positional argument")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional throughput drop in -compare mode")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *comparePath != "" {
		// `-compare old.json new.json -tolerance 0.2`: the fresh path
		// is positional, so re-parse whatever follows it for trailing
		// flags.
		rest := fs.Args()
		if len(rest) == 0 || strings.HasPrefix(rest[0], "-") {
			fmt.Fprintln(stderr, "zipline-bench: -compare needs the fresh perf JSON as a positional argument")
			return 2
		}
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
		return runCompare(*comparePath, rest[0], *tolerance, stdout, stderr)
	}

	want := func(name string) bool { return *which == "all" || *which == name }
	start := time.Now()
	ran := 0
	rep := &experiments.BenchArtifact{Seed: *seed, Quick: *quick}

	steps := []struct {
		name string
		fn   func() error
	}{
		{"table1", func() error { return runTable1(stdout) }},
		{"table2", func() error { return runTable2(stdout) }},
		{"fig3", func() error { return runFig3(stdout, *quick, *seed, rep) }},
		{"fig4", func() error { return runFig4(stdout, *quick, *seed) }},
		{"fig5", func() error { return runFig5(stdout, *quick, *seed) }},
		{"learning", func() error { return runLearning(stdout, *quick, *seed) }},
		{"ablations", func() error { return runAblations(stdout, *quick, *seed) }},
		{"perf", func() error { return runPerf(stdout, *quick, *seed, rep) }},
	}
	for _, step := range steps {
		if !want(step.name) {
			continue
		}
		if err := step.fn(); err != nil {
			fmt.Fprintf(stderr, "zipline-bench: %s: %v\n", step.name, err)
			return 1
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "unknown experiment %q\n", *which)
		fs.Usage()
		return 2
	}
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(stderr, "zipline-bench: writing %s: %v\n", *jsonPath, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nmeasurements written to %s\n", *jsonPath)
	}
	fmt.Fprintf(stdout, "\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runCompare is the perf-regression gate: diff a fresh perf artifact
// against the committed baseline and fail on throughput regressions
// past the tolerance.
func runCompare(oldPath, newPath string, tolerance float64, stdout, stderr io.Writer) int {
	oldArt, err := experiments.LoadBenchArtifact(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "zipline-bench: baseline: %v\n", err)
		return 2
	}
	newArt, err := experiments.LoadBenchArtifact(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "zipline-bench: fresh run: %v\n", err)
		return 2
	}
	deltas, regressed := experiments.ComparePerf(oldArt.Perf, newArt.Perf, tolerance)
	fmt.Fprintf(stdout, "perf gate: %s vs %s (tolerance %.0f%%)\n", oldPath, newPath, tolerance*100)
	fmt.Fprintf(stdout, "%-20s %-14s %14s %14s %9s\n", "path", "metric", "baseline", "fresh", "change")
	for _, d := range deltas {
		verdict := ""
		if d.Missing {
			verdict = "  MISSING FROM FRESH RUN"
			fmt.Fprintf(stdout, "%-20s %-14s %14.0f %14s %9s%s\n", d.Name, d.Metric, d.Old, "-", "-", verdict)
			continue
		}
		if d.Regressed {
			verdict = "  REGRESSION"
		}
		fmt.Fprintf(stdout, "%-20s %-14s %14.0f %14.0f %+8.1f%%%s\n",
			d.Name, d.Metric, d.Old, d.New, d.Change*100, verdict)
	}
	if regressed {
		fmt.Fprintf(stdout, "\nPERF REGRESSION: at least one path dropped >%.0f%% below %s\n", tolerance*100, oldPath)
		fmt.Fprintln(stdout, "(intended? regenerate the baseline with `zipline-bench -run perf -json` and commit it)")
		return 1
	}
	fmt.Fprintf(stdout, "\nall paths within %.0f%% of the baseline\n", tolerance*100)
	return 0
}

// runPerf measures the software dataplane and prints the rows the
// tentpole optimised; the same rows land in the -json artifact.
func runPerf(w io.Writer, quick bool, seed int64, rep *experiments.BenchArtifact) error {
	header(w, "Perf: software dataplane (zero-allocation hot paths)")
	rows, err := experiments.PerfSuite(seed, quick)
	if err != nil {
		return err
	}
	rep.Perf = append(rep.Perf, rows...)
	fmt.Fprintf(w, "%-20s %12s %12s %14s %14s %10s\n",
		"path", "ns/op", "MB/s", "pkts/s", "events/s", "allocs/op")
	for _, r := range rows {
		num := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(w, "%-20s %12.1f %12s %14s %14s %10.2f\n",
			r.Name, r.NsPerOp, num(r.MBPerS), num(r.PktsPerS), num(r.EventsPerS), r.AllocsPerOp)
	}
	return nil
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func runTable1(w io.Writer) error {
	header(w, "Table 1: Generator polynomials for Hamming codes and parameters for a CRC-m")
	fmt.Fprintf(w, "%-14s %-28s %-10s %-10s %s\n", "Code", "Generator polynomial", "CRC param", "Paper", "Validity")
	for _, r := range experiments.Table1() {
		note := "primitive ✓"
		if r.Param != r.PaperParam {
			note = fmt.Sprintf("primitive ✓ (paper prints %#x, which is NOT primitive — erratum)", r.PaperParam)
		}
		fmt.Fprintf(w, "(%d, %d)%s %-28s %#-10x %#-10x %s\n",
			r.N, r.K, strings.Repeat(" ", max(0, 13-len(fmt.Sprintf("(%d, %d)", r.N, r.K)))),
			r.Poly, r.Param, r.PaperParam, note)
	}
	return nil
}

func runTable2(w io.Writer) error {
	header(w, "Table 2: Hamming code (7,4) and CRC-3 equivalence")
	rows, err := experiments.Table2()
	if err != nil {
		return err
	}
	if err := experiments.Table2Verify(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-14s %-10s %s\n", "Error", "Bit sequence", "Syndrome", "CRC-3")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d (%s)      (%03b)      (%03b)\n", r.Error, r.Sequence, r.Syndrome, r.CRC3)
	}
	fmt.Fprintln(w, "verified: syndrome == CRC-3 for every single-bit error ✓")
	return nil
}

// paperFig3 holds the published ratios for the comparison column.
var paperFig3 = map[string]map[string]string{
	"synthetic-sensor": {
		"Original data": "1.00", "No table": "1.03", "Static table": "0.09",
		"Dynamic learning": "0.11", "Gzip": "0.09",
	},
	"dns-campus": {
		"Original data": "1.00", "No table": "1.03", "Static table": "n/a",
		"Dynamic learning": "0.10", "Gzip": "0.08",
	},
}

func runFig3(w io.Writer, quick bool, seed int64, rep *experiments.BenchArtifact) error {
	header(w, "Figure 3: Resulting payload size after processing (ZipLine vs gzip)")
	sensorCfg := trace.SensorConfig{Seed: seed}
	snap, glitch, err := fig3SensorNoise()
	if err != nil {
		return err
	}
	sensorCfg.SnapCodec, sensorCfg.GlitchProb = snap, glitch
	dnsCfg := trace.DNSConfig{Seed: seed + 1}
	replay := 150_000.0
	if quick {
		sensorCfg.Records = 120_000
		sensorCfg.Sensors = 100
		dnsCfg.Queries = 60_000
		dnsCfg.Domains = 1_000
	}

	for _, ds := range []struct {
		tr         *trace.Trace
		skipStatic bool
		label      string
	}{
		{trace.Sensor(sensorCfg), false, "Synthetic dataset"},
		{trace.DNS(dnsCfg), true, "DNS queries"},
	} {
		res, err := experiments.Figure3(ds.tr, experiments.Figure3Config{
			ReplayPPS:  replay,
			Seed:       seed + 2,
			SkipStatic: ds.skipStatic,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s (%s, %.1f MB original, %d chunks)\n",
			ds.label, ds.tr.Name, float64(res.OriginalBytes)/1e6, ds.tr.Records())
		fmt.Fprintf(w, "  %-18s %12s %-8s %-8s %s\n", "Case", "Size [MB]", "Ratio", "Paper", "Detail")
		fmt.Fprintf(w, "  %-18s %12.1f %-8s %-8s\n", "Original data",
			float64(res.OriginalBytes)/1e6, "1.00", paperFig3[ds.tr.Name]["Original data"])
		for _, c := range res.Cases {
			paper := paperFig3[ds.tr.Name][c.Name]
			if c.NA {
				fmt.Fprintf(w, "  %-18s %12s %-8s %-8s %s\n", c.Name, "n/a", "n/a", paper, c.Detail)
				continue
			}
			rep.CompressionRatios = append(rep.CompressionRatios, experiments.RatioEntry{
				Dataset: ds.tr.Name, Case: c.Name, Ratio: c.Ratio,
			})
			fmt.Fprintf(w, "  %-18s %12.1f %-8.2f %-8s %s\n",
				c.Name, float64(c.Bytes)/1e6, c.Ratio, paper, c.Detail)
		}
	}
	return nil
}

// fig3SensorNoise returns the noise model of the synthetic dataset:
// readings quantised to the GD grid plus transient single-bit
// corruption on 60 % of records. GD absorbs the corruption in the
// syndrome (same basis, same 3 B output); gzip pays for it — which is
// what places both tools at the paper's operating point
// (see EXPERIMENTS.md, workload construction).
func fig3SensorNoise() (*gd.Codec, float64, error) {
	tr, err := gd.NewHammingM(8)
	if err != nil {
		return nil, 0, err
	}
	return gd.NewCodec(tr), 0.6, nil
}

// paperFig4 gives the approximate published operating points for the
// comparison column: generator-bound ≈7 Mpkt/s for 64/1500 B, line
// rate ≈99.7 Gbit/s for 9 kB, identical across operations.
func runFig4(w io.Writer, quick bool, seed int64) error {
	header(w, "Figure 4: Observed network throughput (Gbit/s and Mpkt/s)")
	cfg := experiments.Figure4Config{Seed: seed}
	if quick {
		cfg.WindowNs = 2 * netsim.Millisecond
		cfg.Repeats = 3
	}
	cells, err := experiments.Figure4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-8s %16s %16s   %s\n", "Op", "Frame", "Gbit/s (±CI95)", "Mpkt/s (±CI95)", "Paper (approx.)")
	for _, c := range cells {
		paper := "≈7 Mpkt/s (generator-bound)"
		if c.FrameSize == 9000 {
			paper = "≈line rate 100 Gbit/s"
		}
		fmt.Fprintf(w, "%-8s %-8d %9.2f ±%.2f %10.3f ±%.3f   %s\n",
			c.Op, c.FrameSize, c.Gbps.Mean(), c.Gbps.CI95(), c.Mpps.Mean(), c.Mpps.CI95(), paper)
	}
	fmt.Fprintln(w, "claim check: encode ≈ decode ≈ no-op for every frame size ✓ (program-independent pipeline)")
	return nil
}

func runFig5(w io.Writer, quick bool, seed int64) error {
	header(w, "Figure 5: Observed end-to-end latency (RTT, µs)")
	cfg := experiments.Figure5Config{Seed: seed}
	if quick {
		cfg.Probes = 200
	}
	cells, err := experiments.Figure5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %14s %10s %10s   %s\n", "Op", "mean ±CI95", "p5", "p95", "Paper")
	for _, c := range cells {
		fmt.Fprintf(w, "%-8s %8.2f ±%.2f %10.2f %10.2f   single-digit µs, equal across ops\n",
			c.Op, c.RTTMicros.Mean(), c.RTTMicros.CI95(), c.RTTMicros.Percentile(5), c.RTTMicros.Percentile(95))
	}
	return nil
}

func runLearning(w io.Writer, quick bool, seed int64) error {
	header(w, "§7 Dynamic learning: time from first type-2 to first type-3 packet")
	cfg := experiments.LearningConfig{Seed: seed}
	if quick {
		cfg.Repeats = 5
	}
	res, err := experiments.Learning(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measured: (%.2f ± %.2f) ms over %d repeats\n",
		res.DelayMs.Mean(), res.DelayMs.CI95(), res.DelayMs.N())
	fmt.Fprintf(w, "paper:    (1.77 ± 0.08) ms\n")
	return nil
}

func runAblations(w io.Writer, quick bool, seed int64) error {
	header(w, "Ablation A1: Tofino byte-alignment padding")
	a1, err := experiments.AblationPadding()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %-10s %-10s %-16s %s\n", "Layout", "type2 [B]", "type3 [B]", "no-table ratio", "static ratio")
	for _, r := range a1 {
		fmt.Fprintf(w, "%-28s %-10d %-10d %-16.4f %.4f\n", r.Layout, r.Type2Len, r.Type3Len, r.NoTableRatio, r.StaticRatio)
	}

	header(w, "Ablation A2: Hamming parameter sweep (m = 3..15)")
	streamBytes := 8 << 20
	if quick {
		streamBytes = 1 << 20
	}
	a2, err := experiments.AblationMSweep(streamBytes, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-4s %-8s %-12s %-12s %-14s %-10s %s\n", "m", "chunk", "type2/chunk", "type3/chunk", "chunks/basis", "bases", "static fits 2^15?")
	for _, r := range a2 {
		fmt.Fprintf(w, "%-4d %-8d %-12.4f %-12.4f %-14d %-10d %v\n",
			r.M, r.ChunkBytes, r.Type2Ratio, r.Type3Ratio, r.ChunksPerBasis, r.Bases, r.StaticOK)
	}

	header(w, "Ablation A3: dictionary size vs compression (LRU pressure)")
	records := 400_000
	if quick {
		records = 100_000
	}
	a3, err := experiments.AblationDictSize(records, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-10s %-8s %-10s %s\n", "IDBits", "capacity", "ratio", "evicted", "distinct bases")
	for _, r := range a3 {
		fmt.Fprintf(w, "%-8d %-10d %-8.3f %-10d %d\n", r.IDBits, r.Capacity, r.Ratio, r.Evicted, r.Distinct)
	}

	header(w, "Ablation A4: transform comparison (dedup vs GD variants)")
	if quick {
		records = 60_000
	} else {
		records = 200_000
	}
	a4, err := experiments.AblationTransforms(records, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-22s %-8s %-12s %s\n", "Dataset", "Transform", "ratio", "dict keys", "evicted")
	for _, r := range a4 {
		fmt.Fprintf(w, "%-16s %-22s %-8.3f %-12d %d\n", r.Dataset, r.Transform, r.Ratio, r.Distinct, r.Evicted)
	}

	header(w, "Ablation A5: future-work BCH transform (paper §8)")
	if quick {
		records = 40_000
	} else {
		records = 120_000
	}
	a5, err := experiments.AblationBCH(records, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-22s %-8s %-12s %s\n", "Dataset", "Transform", "ratio", "dict keys", "hit bytes")
	for _, r := range a5 {
		fmt.Fprintf(w, "%-16s %-22s %-8.3f %-12d %d\n", r.Dataset, r.Transform, r.Ratio, r.Distinct, r.HitBytes)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
