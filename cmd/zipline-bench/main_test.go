package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "table1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") || !strings.Contains(stdout.String(), "completed in") {
		t.Fatalf("output missing sections: %q", stdout.String())
	}
}

func TestRunTable2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "table2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "verified: syndrome == CRC-3") {
		t.Fatalf("verification line missing: %q", stdout.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestBadFlagExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
