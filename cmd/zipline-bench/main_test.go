package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "table1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") || !strings.Contains(stdout.String(), "completed in") {
		t.Fatalf("output missing sections: %q", stdout.String())
	}
}

func TestRunTable2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "table2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "verified: syndrome == CRC-3") {
		t.Fatalf("verification line missing: %q", stdout.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestBadFlagExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunPerfWithJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := run([]string{"-run", "perf", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "switch-encode") {
		t.Fatalf("perf table missing: %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Perf) < 6 {
		t.Fatalf("artifact has %d perf rows, want ≥ 6", len(rep.Perf))
	}
	byName := make(map[string]bool)
	for _, r := range rep.Perf {
		byName[r.Name] = true
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", r.Name, r.NsPerOp)
		}
	}
	for _, want := range []string{
		"codec-encode", "codec-decode", "crc-remainder-32B",
		"switch-encode", "switch-decode", "switch-forward", "scenario-perf",
	} {
		if !byName[want] {
			t.Errorf("artifact missing %q", want)
		}
	}
}
