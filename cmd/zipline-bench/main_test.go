package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zipline/internal/experiments"
)

func TestRunTable1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "table1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") || !strings.Contains(stdout.String(), "completed in") {
		t.Fatalf("output missing sections: %q", stdout.String())
	}
}

func TestRunTable2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "table2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "verified: syndrome == CRC-3") {
		t.Fatalf("verification line missing: %q", stdout.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestBadFlagExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunPerfWithJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := run([]string{"-run", "perf", "-quick", "-json", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "switch-encode") {
		t.Fatalf("perf table missing: %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.BenchArtifact
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Perf) < 6 {
		t.Fatalf("artifact has %d perf rows, want ≥ 6", len(rep.Perf))
	}
	byName := make(map[string]bool)
	for _, r := range rep.Perf {
		byName[r.Name] = true
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", r.Name, r.NsPerOp)
		}
	}
	for _, want := range []string{
		"codec-encode", "codec-decode", "crc-remainder-32B",
		"switch-encode", "switch-decode", "switch-forward", "scenario-perf",
	} {
		if !byName[want] {
			t.Errorf("artifact missing %q", want)
		}
	}
}

// writeArtifact serialises a perf artifact for the compare tests.
func writeArtifact(t *testing.T, name string, perf []experiments.PerfResult) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := (experiments.BenchArtifact{Seed: 1, Perf: perf}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareWithinTolerance: small drops pass the gate, and
// fresh-only entries are not regressions.
func TestCompareWithinTolerance(t *testing.T) {
	old := writeArtifact(t, "old.json", []experiments.PerfResult{
		{Name: "switch-encode", NsPerOp: 100, PktsPerS: 1_000_000},
		{Name: "codec-encode", NsPerOp: 70, MBPerS: 400},
	})
	fresh := writeArtifact(t, "new.json", []experiments.PerfResult{
		{Name: "switch-encode", NsPerOp: 110, PktsPerS: 900_000},
		{Name: "codec-encode", NsPerOp: 68, MBPerS: 410},
		{Name: "brand-new-path", NsPerOp: 50, MBPerS: 100},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", old, fresh, "-tolerance", "0.15"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "within 15% of the baseline") {
		t.Fatalf("verdict missing: %q", stdout.String())
	}
}

// TestCompareRegression: a >tolerance throughput drop must fail with
// exit 1 and name the path.
func TestCompareRegression(t *testing.T) {
	old := writeArtifact(t, "old.json", []experiments.PerfResult{
		{Name: "switch-encode", NsPerOp: 100, PktsPerS: 1_000_000},
	})
	fresh := writeArtifact(t, "new.json", []experiments.PerfResult{
		{Name: "switch-encode", NsPerOp: 200, PktsPerS: 500_000},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", old, fresh}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") || !strings.Contains(stdout.String(), "switch-encode") {
		t.Fatalf("regression report missing: %q", stdout.String())
	}
}

// TestCompareMissingEntry: a baseline path absent from the fresh run
// fails the gate (silently dropping a measurement is not a pass).
func TestCompareMissingEntry(t *testing.T) {
	old := writeArtifact(t, "old.json", []experiments.PerfResult{
		{Name: "switch-encode", NsPerOp: 100, PktsPerS: 1_000_000},
		{Name: "retired-path", NsPerOp: 10, MBPerS: 3200},
	})
	fresh := writeArtifact(t, "new.json", []experiments.PerfResult{
		{Name: "switch-encode", NsPerOp: 100, PktsPerS: 1_000_000},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", old, fresh}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "MISSING FROM FRESH RUN") {
		t.Fatalf("missing-entry report absent: %q", stdout.String())
	}
}

// TestCompareBadUsage: -compare without the positional fresh path is
// a usage error.
func TestCompareBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "only-old.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestCompareAgainstCommittedBaseline: the committed BENCH_PR3.json
// must parse and gate cleanly against itself (tolerance 0).
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "../../BENCH_PR3.json", "../../BENCH_PR3.json", "-tolerance", "0"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, stdout.String(), stderr.String())
	}
}
