package main

import (
	"bytes"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zipline"
)

func TestFlagValidation(t *testing.T) {
	var errOut bytes.Buffer
	if code := run(nil, &errOut); code != 2 {
		t.Fatalf("missing flags: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-listen and -connect are required") {
		t.Fatalf("usage not explained:\n%s", errOut.String())
	}
	if code := run([]string{"-bogus"}, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-listen", ":0", "-connect", "x:1", "-mode", "sideways"}, &errOut); code != 2 {
		t.Fatalf("bad mode: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-mode must be encode or decode") {
		t.Fatalf("mode not explained:\n%s", errOut.String())
	}
}

func TestBuildProxyDict(t *testing.T) {
	if _, err := buildProxy(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing dictionary file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a dictionary"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProxy(bad); err == nil {
		t.Fatal("corrupt dictionary file accepted")
	}

	corpus := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(corpus)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(t.TempDir(), "dict")
	if err := os.WriteFile(good, dict.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProxy(good); err != nil {
		t.Fatalf("valid dictionary rejected: %v", err)
	}
}

// TestProxyPairLoopback stands up the deployed topology on loopback —
// sender → encode proxy → decode proxy → sink — and pushes a stream
// through it.
func TestProxyPairLoopback(t *testing.T) {
	logger := log.New(io.Discard, "", 0)

	// Sink: the far application.
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sinkLn.Close()
	sinkGot := make(chan []byte, 1)
	go func() {
		c, err := sinkLn.Accept()
		if err != nil {
			return
		}
		got, _ := io.ReadAll(c)
		c.Close()
		sinkGot <- got
	}()

	// Decode proxy in front of the sink.
	decLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer decLn.Close()
	decProxy, err := buildProxy("")
	if err != nil {
		t.Fatal(err)
	}
	go serve(decLn, sinkLn.Addr().String(), false, decProxy, logger)

	// Encode proxy in front of the sender.
	encLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer encLn.Close()
	encProxy, err := buildProxy("")
	if err != nil {
		t.Fatal(err)
	}
	go serve(encLn, decLn.Addr().String(), true, encProxy, logger)

	// Sender: connect to the encode proxy, stream, half-close.
	conn, err := net.Dial("tcp", encLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 0, 128<<10)
	base := []byte("telemetry-frame-000:temperature=21.4;humidity=40.2%%;ok.")
	for len(payload) < 128<<10 {
		payload = append(payload, base...)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	select {
	case got := <-sinkGot:
		if !bytes.Equal(got, payload) {
			t.Fatalf("stream corrupted: %d bytes arrived, want %d", len(got), len(payload))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never drained to the sink")
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
}
