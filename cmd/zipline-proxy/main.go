// Command zipline-proxy compresses arbitrary TCP byte streams between
// two points: the paper's switch pair as deployable userspace
// infrastructure. Run one proxy in encode position next to the
// application and one in decode position next to the far endpoint;
// everything crossing the link between them travels as zipline
// container streams, and the endpoints see plain TCP.
//
// Usage:
//
//	zipline-proxy -mode encode -listen :9000 -connect far-host:9001 [-dict FILE]
//	zipline-proxy -mode decode -listen :9001 -connect app-host:80   [-dict FILE]
//
// Each accepted connection is bridged to a fresh connection to
// -connect. In encode mode the accepted side is the application and
// the dialed side is the compressed peer link; in decode mode the
// roles are reversed — the accepted side carries container streams
// from the far proxy and the dialed side is the plain application.
// Both directions of every bridge are duplex: each proxy compresses
// whatever it sends onto the link and decompresses whatever it
// receives. Half-closes propagate: the application's FIN finishes the
// in-flight container (tail and trailer) before the link is
// half-closed, and a finished incoming container half-closes toward
// the application, so no bytes are stranded on shutdown.
//
// -dict loads a shared pre-trained dictionary (a zipline.TrainDict
// artifact, serialized with Dict.Bytes); both ends of a link must
// load the same file or streams are rejected with a dictionary
// mismatch.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"zipline"
	"zipline/ziphttp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the testable entry point; the accept loop only terminates on
// a listener error, so tests drive it via a closable listener.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("zipline-proxy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "", "position of this proxy: encode (application side) or decode (far side)")
	listen := fs.String("listen", "", "address to accept connections on (required)")
	connect := fs.String("connect", "", "address to bridge each connection to (required)")
	dictPath := fs.String("dict", "", "shared pre-trained dictionary file (optional; both ends must match)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listen == "" || *connect == "" {
		fmt.Fprintln(stderr, "zipline-proxy: -listen and -connect are required")
		fs.Usage()
		return 2
	}
	if *mode != "encode" && *mode != "decode" {
		fmt.Fprintln(stderr, "zipline-proxy: -mode must be encode or decode")
		fs.Usage()
		return 2
	}

	logger := log.New(stderr, "zipline-proxy: ", log.LstdFlags)
	proxy, err := buildProxy(*dictPath)
	if err != nil {
		logger.Print(err)
		return 1
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer func() {
		if err := ln.Close(); err != nil {
			logger.Print(err)
		}
	}()
	logger.Printf("%s side: bridging %s ↔ %s", *mode, ln.Addr(), *connect)
	if err := serve(ln, *connect, *mode == "encode", proxy, logger); err != nil {
		logger.Print(err)
		return 1
	}
	return 0
}

// buildProxy assembles the shared bridge state, loading the optional
// dictionary file.
func buildProxy(dictPath string) (*ziphttp.Proxy, error) {
	var opts []ziphttp.Option
	if dictPath != "" {
		raw, err := os.ReadFile(dictPath)
		if err != nil {
			return nil, err
		}
		dict, err := zipline.LoadDict(raw)
		if err != nil {
			return nil, fmt.Errorf("load dictionary %s: %w", dictPath, err)
		}
		opts = append(opts, ziphttp.WithDict(dict))
	}
	return ziphttp.NewProxy(opts...)
}

// serve accepts connections forever, bridging each to a fresh
// connection to connect on its own goroutine. encodePos selects which
// side of the bridge is the plain application: the accepted side in
// encode position, the dialed side in decode position. It returns
// only when the listener fails (or is closed).
func serve(ln net.Listener, connect string, encodePos bool, proxy *ziphttp.Proxy, logger *log.Logger) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			dialed, err := net.Dial("tcp", connect)
			if err != nil {
				logger.Printf("%s: dial: %v", conn.RemoteAddr(), err)
				if cerr := conn.Close(); cerr != nil {
					logger.Printf("%s: close: %v", conn.RemoteAddr(), cerr)
				}
				return
			}
			plain, peer := conn, dialed
			if !encodePos {
				plain, peer = dialed, conn
			}
			if err := proxy.Bridge(plain, peer); err != nil {
				logger.Printf("%s: bridge: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}
