// Command zipline compresses and decompresses files with generalized
// deduplication.
//
//	zipline -c [-m 8] [-idbits 15] < input > output.zl
//	zipline -c -p 8 < input > output.zl   # parallel (v2 container)
//	zipline -d < output.zl > input
//	zipline -stats -c < input > /dev/null
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"zipline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: all errors propagate here, the
// single exit point, so deferred cleanup always executes and a failed
// output flush cannot be silently swallowed.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zipline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	compress := fs.Bool("c", false, "compress stdin to stdout")
	decompress := fs.Bool("d", false, "decompress stdin to stdout")
	m := fs.Int("m", 8, "Hamming parameter (3..15): chunks are 2^m bits")
	idBits := fs.Int("idbits", 15, "dictionary identifier width in bits (1..24)")
	workers := fs.Int("p", 1, "parallel workers for -c: >1 compresses with the sharded v2 container, 0 = all CPUs (decompression always follows the stream's shard count)")
	showStats := fs.Bool("stats", false, "print chunk statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *compress == *decompress {
		fmt.Fprintln(stderr, "zipline: exactly one of -c or -d is required")
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "zipline: -p must be >= 0, got %d\n", *workers)
		return 2
	}
	cfg := zipline.Config{M: *m, IDBits: *idBits}
	if err := pipe(stdin, stdout, stderr, *compress, cfg, *workers, *showStats); err != nil {
		fmt.Fprintln(stderr, "zipline:", err)
		return 1
	}
	return 0
}

func pipe(stdin io.Reader, stdout, stderr io.Writer, compress bool, cfg zipline.Config, workers int, showStats bool) error {
	in := bufio.NewReaderSize(stdin, 1<<20)
	out := bufio.NewWriterSize(stdout, 1<<20)

	var n int64
	var stats *zipline.StreamStats
	if compress {
		var zw io.WriteCloser
		if workers == 1 {
			sw, err := zipline.NewWriter(out, cfg)
			if err != nil {
				return err
			}
			zw, stats = sw, &sw.Stats
		} else {
			pw, err := zipline.NewParallelWriter(out, cfg, workers)
			if err != nil {
				return err
			}
			zw, stats = pw, &pw.Stats
		}
		var err error
		if n, err = io.Copy(zw, in); err != nil {
			zw.Close() // release parallel workers; the copy error wins
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	} else {
		zr, err := zipline.NewParallelReader(in)
		if err != nil {
			return err
		}
		if n, err = io.Copy(out, zr); err != nil {
			return err
		}
		stats = &zr.Stats
	}
	// A full disk surfaces here: the flush error must reach the exit
	// code, not vanish in a defer.
	if err := out.Flush(); err != nil {
		return err
	}
	if showStats {
		fmt.Fprintf(stderr, "bytes=%d chunks=%d hits=%d misses=%d tail=%d\n",
			n, stats.Chunks, stats.Hits, stats.Misses, stats.TailBytes)
	}
	return nil
}
