// Command zipline compresses and decompresses files with generalized
// deduplication.
//
//	zipline -c [-m 8] [-idbits 15] < input > output.zl
//	zipline -d < output.zl > input
//	zipline -stats -c < input > /dev/null
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"zipline"
)

func main() {
	compress := flag.Bool("c", false, "compress stdin to stdout")
	decompress := flag.Bool("d", false, "decompress stdin to stdout")
	m := flag.Int("m", 8, "Hamming parameter (3..15): chunks are 2^m bits")
	idBits := flag.Int("idbits", 15, "dictionary identifier width in bits (1..24)")
	showStats := flag.Bool("stats", false, "print chunk statistics to stderr")
	flag.Parse()

	if *compress == *decompress {
		fmt.Fprintln(os.Stderr, "zipline: exactly one of -c or -d is required")
		flag.Usage()
		os.Exit(2)
	}

	in := bufio.NewReaderSize(os.Stdin, 1<<20)
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer out.Flush()

	if *compress {
		zw, err := zipline.NewWriter(out, zipline.Config{M: *m, IDBits: *idBits})
		fatal(err)
		n, err := io.Copy(zw, in)
		fatal(err)
		fatal(zw.Close())
		fatal(out.Flush())
		if *showStats {
			fmt.Fprintf(os.Stderr, "in=%d chunks=%d hits=%d misses=%d tail=%d\n",
				n, zw.Stats.Chunks, zw.Stats.Hits, zw.Stats.Misses, zw.Stats.TailBytes)
		}
		return
	}

	zr, err := zipline.NewReader(in)
	fatal(err)
	n, err := io.Copy(out, zr)
	fatal(err)
	fatal(out.Flush())
	if *showStats {
		fmt.Fprintf(os.Stderr, "out=%d chunks=%d hits=%d misses=%d tail=%d\n",
			n, zr.Stats.Chunks, zr.Stats.Hits, zr.Stats.Misses, zr.Stats.TailBytes)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "zipline:", err)
		os.Exit(1)
	}
}
