// Command zipline compresses and decompresses files with generalized
// deduplication.
//
//	zipline -c [-m 8] [-idbits 15] < input > output.zl
//	zipline -c -p 8 < input > output.zl          # parallel (v2 container)
//	zipline -c -index < input > output.zl        # seekable (v4 container)
//	zipline -d < output.zl > input
//	zipline -d -seek 4096:1024 < output.zl       # random access via the index
//	zipline -stats -c < input > /dev/null
//
// A fleet sharing a pre-trained basis dictionary (v3 container):
//
//	zipline -train -dict basis.zld < corpus      # train and write the dict
//	zipline -c -dict basis.zld < input > output.zl
//	zipline -d -dict basis.zld < output.zl > input
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"zipline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: all errors propagate here, the
// single exit point, so deferred cleanup always executes and a failed
// output flush cannot be silently swallowed.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zipline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	compress := fs.Bool("c", false, "compress stdin to stdout")
	decompress := fs.Bool("d", false, "decompress stdin to stdout")
	train := fs.Bool("train", false, "train a shared dictionary from stdin and write it to the -dict path")
	m := fs.Int("m", 8, "Hamming parameter (3..15): chunks are 2^m bits")
	idBits := fs.Int("idbits", 15, "dictionary identifier width in bits (1..24)")
	workers := fs.Int("p", 1, "parallel workers for -c: >1 compresses with the sharded container, 0 = all CPUs (decompression always follows the stream's shard count)")
	dictPath := fs.String("dict", "", "shared dictionary file: output of -train, input of -c/-d (its training configuration overrides -m/-idbits)")
	index := fs.Bool("index", false, "with -c: write the seekable v4 container (block index + dictionary checkpoints in a trailing footer)")
	seekSpec := fs.String("seek", "", "with -d: decompress only OFF:LEN — seek to uncompressed offset OFF and emit LEN bytes (needs a seekable input; fastest on -index streams)")
	showStats := fs.Bool("stats", false, "print chunk statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, on := range []bool{*compress, *decompress, *train} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "zipline: exactly one of -c, -d or -train is required")
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "zipline: -p must be >= 0, got %d\n", *workers)
		return 2
	}
	if *index && !*compress {
		fmt.Fprintln(stderr, "zipline: -index only applies to -c")
		return 2
	}
	if *index && *workers != 1 {
		// The index records one dictionary timeline, which the sharded
		// v2 container does not have.
		fmt.Fprintln(stderr, "zipline: -index requires the serial writer (-p 1)")
		return 2
	}
	if *seekSpec != "" && !*decompress {
		fmt.Fprintln(stderr, "zipline: -seek only applies to -d")
		return 2
	}
	cfg := zipline.Config{M: *m, IDBits: *idBits}
	var err error
	switch {
	case *train:
		err = trainDict(stdin, *dictPath, cfg)
	case *seekSpec != "":
		err = seekRead(stdin, stdout, *seekSpec, cfg, *dictPath)
	default:
		err = pipe(stdin, stdout, stderr, *compress, cfg, *workers, *dictPath, *index, *showStats)
	}
	if err != nil {
		fmt.Fprintln(stderr, "zipline:", err)
		return 1
	}
	return 0
}

// trainDict builds a shared dictionary from the corpus on stdin and
// writes its serialized form to path.
func trainDict(stdin io.Reader, path string, cfg zipline.Config) error {
	if path == "" {
		return fmt.Errorf("-train needs -dict PATH to write the dictionary to")
	}
	corpus, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	dict, err := zipline.TrainDict(corpus, cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, dict.Bytes(), 0o644)
}

// loadDict reads a dictionary trained by -train; an empty path means
// no dictionary.
func loadDict(path string) (*zipline.Dict, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return zipline.LoadDict(raw)
}

// pipe streams stdin to stdout through one Writer or Reader — the
// serial and parallel paths are the same code, selected by options.
func pipe(stdin io.Reader, stdout, stderr io.Writer, compress bool, cfg zipline.Config, workers int, dictPath string, index, showStats bool) error {
	in := bufio.NewReaderSize(stdin, 1<<20)
	out := bufio.NewWriterSize(stdout, 1<<20)

	dict, err := loadDict(dictPath)
	if err != nil {
		return err
	}
	opts := []zipline.Option{zipline.WithDict(dict)}
	if dict == nil {
		// The dictionary carries its training configuration; flags
		// select one only when no dictionary is in play.
		opts = append(opts, zipline.WithConfig(cfg))
	}

	var n int64
	var stats *zipline.StreamStats
	if compress {
		opts = append(opts, zipline.WithWorkers(workers))
		if index {
			opts = append(opts, zipline.WithIndex(0))
		}
		zw, err := zipline.NewWriter(out, opts...)
		if err != nil {
			return err
		}
		stats = &zw.Stats
		if n, err = io.Copy(zw, in); err != nil {
			// Close releases the parallel workers; the copy error
			// explains the failure, so the close error is reported as
			// secondary noise rather than replacing it.
			if cerr := zw.Close(); cerr != nil {
				fmt.Fprintln(stderr, "zipline: close:", cerr)
			}
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	} else {
		zr, err := zipline.NewReader(in, append(opts, zipline.WithWorkers(0))...)
		if err != nil {
			return err
		}
		if n, err = io.Copy(out, zr); err != nil {
			if cerr := zr.Close(); cerr != nil {
				fmt.Fprintln(stderr, "zipline: close:", cerr)
			}
			return err
		}
		stats = &zr.Stats
		// A trailer/CRC failure surfaces on Close: it must reach the
		// exit code, not vanish in a defer.
		if err := zr.Close(); err != nil {
			return err
		}
	}
	// A full disk surfaces here: the flush error must reach the exit
	// code, not vanish in a defer.
	if err := out.Flush(); err != nil {
		return err
	}
	if showStats {
		fmt.Fprintf(stderr, "bytes=%d chunks=%d hits=%d misses=%d tail=%d\n",
			n, stats.Chunks, stats.Hits, stats.Misses, stats.TailBytes)
	}
	return nil
}

// seekRead decompresses the OFF:LEN window of a stream. Stdin is a
// pipe, so the whole compressed stream is buffered in memory to give
// the Reader the io.ReadSeeker that Seek requires; on v4 indexed
// streams the Seek jumps to the nearest dictionary checkpoint, on
// legacy containers it replays from the start of the stream.
func seekRead(stdin io.Reader, stdout io.Writer, spec string, cfg zipline.Config, dictPath string) error {
	offStr, lenStr, ok := strings.Cut(spec, ":")
	off, err1 := strconv.ParseInt(offStr, 10, 64)
	length, err2 := strconv.ParseInt(lenStr, 10, 64)
	if !ok || err1 != nil || err2 != nil || off < 0 || length < 0 {
		return fmt.Errorf("-seek wants OFF:LEN with non-negative integers, got %q", spec)
	}
	comp, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	dict, err := loadDict(dictPath)
	if err != nil {
		return err
	}
	opts := []zipline.Option{zipline.WithDict(dict)}
	if dict == nil {
		opts = append(opts, zipline.WithConfig(cfg))
	}
	zr, err := zipline.NewReader(bytes.NewReader(comp), opts...)
	if err != nil {
		return err
	}
	out := bufio.NewWriterSize(stdout, 1<<20)
	if _, err := zr.Seek(off, io.SeekStart); errors.Is(err, zipline.ErrNoIndex) {
		// Pre-index container: no checkpoint to jump to, so decode
		// forward and throw away the prefix.
		if _, err := io.CopyN(io.Discard, zr, off); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	if _, err := io.CopyN(out, zr, length); err != nil {
		return err
	}
	if err := zr.Close(); err != nil {
		return err
	}
	return out.Flush()
}
