package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTripSerial(t *testing.T) {
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(data)

	var comp, back, errw bytes.Buffer
	if code := run([]string{"-c"}, bytes.NewReader(data), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	if code := run([]string{"-d"}, bytes.NewReader(comp.Bytes()), &back, &errw); code != 0 {
		t.Fatalf("decompress exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(back.Bytes(), data) {
		t.Fatal("round trip failed")
	}
}

func TestRoundTripParallel(t *testing.T) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(2)).Read(chunk)
	data := append(bytes.Repeat(chunk, 20_000), 0xEE) // compressible + tail byte

	var comp, back, errw bytes.Buffer
	if code := run([]string{"-c", "-p", "4", "-stats"}, bytes.NewReader(data), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	if comp.Len() >= len(data) {
		t.Fatalf("no compression: %d -> %d", len(data), comp.Len())
	}
	if !strings.Contains(errw.String(), "chunks=20000") {
		t.Fatalf("stats missing: %q", errw.String())
	}
	errw.Reset()
	if code := run([]string{"-d"}, bytes.NewReader(comp.Bytes()), &back, &errw); code != 0 {
		t.Fatalf("decompress exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(back.Bytes(), data) {
		t.Fatal("parallel round trip failed")
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                 // neither -c nor -d
		{"-c", "-d"},       // both
		{"-c", "-m", "99"}, // out-of-range m caught at pipe setup
	} {
		var out, errw bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errw); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

// errWriter fails after n bytes, modelling a full disk.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.n -= len(p)
	return len(p), nil
}

func TestOutputErrorExitsNonzero(t *testing.T) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(data)
	var errw bytes.Buffer
	if code := run([]string{"-c"}, bytes.NewReader(data), &errWriter{n: 100}, &errw); code == 0 {
		t.Fatal("failing output writer exited 0")
	}
}

func TestDecompressGarbageFails(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-d"}, strings.NewReader("this is not a zipline stream"), &out, &errw); code == 0 {
		t.Fatal("garbage decoded successfully")
	}
}

func TestTrainAndDictRoundTrip(t *testing.T) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(4)).Read(chunk)
	corpus := bytes.Repeat(chunk, 4_000)
	dictPath := filepath.Join(t.TempDir(), "basis.zld")

	var out, errw bytes.Buffer
	if code := run([]string{"-train", "-dict", dictPath}, bytes.NewReader(corpus), &out, &errw); code != 0 {
		t.Fatalf("train exit %d: %s", code, errw.String())
	}
	if _, err := os.Stat(dictPath); err != nil {
		t.Fatalf("dictionary not written: %v", err)
	}

	var comp, back bytes.Buffer
	if code := run([]string{"-c", "-dict", dictPath, "-stats"}, bytes.NewReader(corpus), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	// Every chunk is pre-trained: zero misses from the first byte.
	if !strings.Contains(errw.String(), "misses=0") {
		t.Fatalf("warm dictionary missed: %q", errw.String())
	}
	errw.Reset()
	if code := run([]string{"-d", "-dict", dictPath}, bytes.NewReader(comp.Bytes()), &back, &errw); code != 0 {
		t.Fatalf("decompress exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(back.Bytes(), corpus) {
		t.Fatal("dict round trip failed")
	}
	// Without the dictionary the stream is rejected, not misdecoded.
	var out2 bytes.Buffer
	errw.Reset()
	if code := run([]string{"-d"}, bytes.NewReader(comp.Bytes()), &out2, &errw); code == 0 {
		t.Fatal("dictless decode of a dict-framed stream exited 0")
	}
	if !strings.Contains(errw.String(), "dictionary") {
		t.Fatalf("rejection did not name the dictionary: %q", errw.String())
	}
}

func TestTrainNeedsDictPath(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-train"}, strings.NewReader(strings.Repeat("x", 64)), &out, &errw); code == 0 {
		t.Fatal("-train without -dict exited 0")
	}
}

func TestIndexRoundTripAndSeek(t *testing.T) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(chunk)
	data := append(bytes.Repeat(chunk, 3_000), 0xAB, 0xCD) // 96 KiB + tail

	var comp, back, errw bytes.Buffer
	if code := run([]string{"-c", "-index"}, bytes.NewReader(data), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	// The v4 container must still decode through the plain streaming path.
	if code := run([]string{"-d"}, bytes.NewReader(comp.Bytes()), &back, &errw); code != 0 {
		t.Fatalf("decompress exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(back.Bytes(), data) {
		t.Fatal("indexed round trip failed")
	}
	// Random access windows, including ones crossing checkpoint
	// boundaries and the unchunked tail bytes.
	for _, w := range []struct{ off, n int }{
		{0, 100}, {17_000, 4_096}, {len(data) - 5, 5},
	} {
		var win bytes.Buffer
		errw.Reset()
		spec := fmt.Sprintf("%d:%d", w.off, w.n)
		if code := run([]string{"-d", "-seek", spec}, bytes.NewReader(comp.Bytes()), &win, &errw); code != 0 {
			t.Fatalf("-seek %s exit %d: %s", spec, code, errw.String())
		}
		if !bytes.Equal(win.Bytes(), data[w.off:w.off+w.n]) {
			t.Fatalf("-seek %s: window mismatch", spec)
		}
	}
}

func TestSeekOnLegacyStream(t *testing.T) {
	// -seek works on pre-index containers too: the Reader rewinds and
	// replays, trading speed for compatibility.
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(6)).Read(data)
	var comp, win, errw bytes.Buffer
	if code := run([]string{"-c"}, bytes.NewReader(data), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	if code := run([]string{"-d", "-seek", "40000:1000"}, bytes.NewReader(comp.Bytes()), &win, &errw); code != 0 {
		t.Fatalf("-seek exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(win.Bytes(), data[40_000:41_000]) {
		t.Fatal("legacy seek window mismatch")
	}
}

func TestIndexAndSeekFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-d", "-index"},            // -index is a writer option
		{"-c", "-index", "-p", "4"}, // index needs the serial writer
		{"-c", "-seek", "0:10"},     // -seek is a reader option
		{"-d", "-seek", "banana"},   // malformed spec
		{"-d", "-seek", "10"},       // missing :LEN
		{"-d", "-seek", "-5:10"},    // negative offset
	} {
		var out, errw bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errw); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}
