package main

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestRoundTripSerial(t *testing.T) {
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(data)

	var comp, back, errw bytes.Buffer
	if code := run([]string{"-c"}, bytes.NewReader(data), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	if code := run([]string{"-d"}, bytes.NewReader(comp.Bytes()), &back, &errw); code != 0 {
		t.Fatalf("decompress exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(back.Bytes(), data) {
		t.Fatal("round trip failed")
	}
}

func TestRoundTripParallel(t *testing.T) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(2)).Read(chunk)
	data := append(bytes.Repeat(chunk, 20_000), 0xEE) // compressible + tail byte

	var comp, back, errw bytes.Buffer
	if code := run([]string{"-c", "-p", "4", "-stats"}, bytes.NewReader(data), &comp, &errw); code != 0 {
		t.Fatalf("compress exit %d: %s", code, errw.String())
	}
	if comp.Len() >= len(data) {
		t.Fatalf("no compression: %d -> %d", len(data), comp.Len())
	}
	if !strings.Contains(errw.String(), "chunks=20000") {
		t.Fatalf("stats missing: %q", errw.String())
	}
	errw.Reset()
	if code := run([]string{"-d"}, bytes.NewReader(comp.Bytes()), &back, &errw); code != 0 {
		t.Fatalf("decompress exit %d: %s", code, errw.String())
	}
	if !bytes.Equal(back.Bytes(), data) {
		t.Fatal("parallel round trip failed")
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                 // neither -c nor -d
		{"-c", "-d"},       // both
		{"-c", "-m", "99"}, // out-of-range m caught at pipe setup
	} {
		var out, errw bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errw); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

// errWriter fails after n bytes, modelling a full disk.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.n -= len(p)
	return len(p), nil
}

func TestOutputErrorExitsNonzero(t *testing.T) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(data)
	var errw bytes.Buffer
	if code := run([]string{"-c"}, bytes.NewReader(data), &errWriter{n: 100}, &errw); code == 0 {
		t.Fatal("failing output writer exited 0")
	}
}

func TestDecompressGarbageFails(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-d"}, strings.NewReader("this is not a zipline stream"), &out, &errw); code == 0 {
		t.Fatal("garbage decoded successfully")
	}
}
