package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"zipline/internal/netsim"
)

func TestParseRestarts(t *testing.T) {
	got, err := parseRestarts("dec@10+2,enc@25.5,core@0+0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := []netsim.RestartSpec{
		{Switch: "dec", AtNs: 10_000_000, DownNs: 2_000_000},
		{Switch: "enc", AtNs: 25_500_000}, // default reboot time
		{Switch: "core", AtNs: 0, DownNs: 250_000},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	for _, bad := range []string{"dec", "@10", "dec@", "dec@x", "dec@-1", "dec@10+x", "dec@10+-2"} {
		if _, err := parseRestarts(bad); err == nil {
			t.Errorf("parseRestarts(%q) accepted", bad)
		}
	}
}

// TestFaultFlagsProduceFaultReport: the CLI fault flags must arm the
// model and surface the fault block in the JSON report.
func TestFaultFlagsProduceFaultReport(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-preset", "chain3", "-records", "4000",
		"-control-loss", "0.1", "-restart", "dec@4+1", "-json"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var report struct {
		Faults *struct {
			StrandedCompressed uint64 `json:"stranded_compressed"`
			Resyncs            uint64 `json:"resyncs"`
			RecoveryTimeNs     int64  `json:"recovery_time_ns"`
		} `json:"faults"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Faults == nil {
		t.Fatal("armed run emitted no faults block")
	}
	if report.Faults.StrandedCompressed != 0 {
		t.Fatalf("stranded = %d", report.Faults.StrandedCompressed)
	}
	if report.Faults.Resyncs != 1 || report.Faults.RecoveryTimeNs <= 0 {
		t.Fatalf("faults block = %+v", report.Faults)
	}
}

func TestBadFaultFlagsRejected(t *testing.T) {
	cases := [][]string{
		{"-preset", "chain3", "-restart", "nonsense"},
		{"-preset", "chain3", "-restart", "ghost@10+2"},    // unknown switch
		{"-preset", "chain3", "-control-loss", "1.5"},      // out of range
		{"-preset", "chain3", "-restart", "dec@1+9,dec@2"}, // overlapping windows
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestListIncludesLossyControl(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "lossy-control") {
		t.Fatalf("-list missing lossy-control:\n%s", out.String())
	}
}
