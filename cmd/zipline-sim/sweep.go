// The sweep subcommand: expand a declarative sweep spec to a grid of
// scenarios and run them concurrently across a worker pool.
//
// Usage:
//
//	zipline-sim sweep -preset loss-sensitivity -workers 4 -out matrix.json
//	zipline-sim sweep -spec sweep.json [-workers N] [-json]
//	zipline-sim sweep -preset dict-size -dump-spec > sweep.json
//	zipline-sim sweep -list
//
// A sweep spec is JSON:
//
//	{
//	  "name": "my-sweep",
//	  "preset": "chain3",            // or "base": {full scenario spec}
//	  "seed": 1,                     // optional; 0 keeps the base seed
//	  "seed_stride": 0,              // cell seed = seed + stride×index
//	  "axes": [
//	    {"param": "loss_prob", "values": [0, 0.01, 0.1]},
//	    {"param": "id_bits",   "values": [8, 15]}
//	  ]
//	}
//
// Cells expand row-major (first axis slowest) and every cell is an
// independent deterministic simulation, so the emitted matrix is
// byte-identical for any -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"zipline/internal/scenario"
	"zipline/internal/sweep"
)

// marshalIndentJSON renders v with a trailing newline.
func marshalIndentJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// runSweep is the sweep subcommand's testable entry point.
func runSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zipline-sim sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	presetName := fs.String("preset", "loss-sensitivity", "built-in sweep (see -list)")
	specPath := fs.String("spec", "", "JSON sweep spec (overrides -preset)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	outPath := fs.String("out", "", "write the matrix JSON to this path")
	seed := fs.Int64("seed", 0, "override the sweep's base seed")
	records := fs.Int("records", 0, "override every traffic flow's record count in the base scenario")
	tracePath := fs.String("trace", "", "replay this pcap as every flow's workload in the base scenario")
	asJSON := fs.Bool("json", false, "emit the matrix as JSON on stdout")
	dumpSpec := fs.Bool("dump-spec", false, "print the selected sweep's spec as JSON and exit")
	list := fs.Bool("list", false, "list built-in sweeps and sweepable params, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, name := range sweep.PresetNames() {
			fmt.Fprintln(stdout, name)
		}
		fmt.Fprintf(stdout, "params: %s\n", strings.Join(sweep.ParamNames(), ", "))
		return 0
	}

	var swp sweep.Spec
	if *specPath != "" {
		loaded, err := sweep.Load(*specPath)
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
			return 1
		}
		swp = loaded
	} else {
		preset, ok := sweep.Preset(*presetName)
		if !ok {
			fmt.Fprintf(stderr, "zipline-sim sweep: unknown sweep preset %q (try -list)\n", *presetName)
			return 2
		}
		swp = preset
	}
	if *seed != 0 {
		swp.Seed = *seed
	}
	if *records > 0 || *tracePath != "" {
		// Flag overrides mutate the base scenario, so materialise it.
		// A whole-topology preset axis would silently replace that
		// mutated base in every cell — reject the combination instead.
		for _, ax := range swp.Axes {
			if ax.Param == "preset" {
				fmt.Fprintln(stderr, "zipline-sim sweep: -records/-trace cannot combine with a preset axis (the axis replaces the base scenario; set records/trace per preset in the spec instead)")
				return 2
			}
		}
		base, err := swp.ResolveBase()
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
			return 1
		}
		for i := range base.Traffic {
			if *records > 0 {
				base.Traffic[i].Records = *records
			}
			if *tracePath != "" {
				base.Traffic[i].Workload = scenario.WorkloadTrace
				base.Traffic[i].Trace = *tracePath
			}
		}
		swp.Preset, swp.Base = "", &base
	}

	if *dumpSpec {
		data, err := marshalIndentJSON(swp)
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
			return 1
		}
		stdout.Write(data)
		return 0
	}

	matrix, err := sweep.Run(swp, sweep.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
		return 1
	}

	if *outPath != "" {
		data, err := matrix.MarshalIndent()
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "sweep %s: %d cells -> %s\n", matrix.Sweep, len(matrix.Cells), *outPath)
		return 0
	}
	if *asJSON {
		data, err := matrix.MarshalIndent()
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim sweep: %v\n", err)
			return 1
		}
		stdout.Write(data)
		return 0
	}
	matrix.WriteText(stdout)
	return 0
}
