package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterministicReport: the acceptance bar — a ≥3-switch lossy
// scenario must produce the byte-identical report for the same seed.
func TestDeterministicReport(t *testing.T) {
	runOnce := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-preset", "lossy-chain3", "-json"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
	}
}

// TestLossyChainLearningDelay: the reported control-plane learning
// delay must sit on the paper's (1.77 ± 0.08) ms model even with
// impaired links.
func TestLossyChainLearningDelay(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-preset", "lossy-chain3", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var report struct {
		Learning struct {
			DelayMeanMs float64 `json:"delay_mean_ms"`
			DelayN      int     `json:"delay_n"`
		} `json:"learning"`
		CompressionRatio float64 `json:"compression_ratio"`
		DeliveryRate     float64 `json:"delivery_rate"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Learning.DelayN == 0 {
		t.Fatal("no learning delays sampled")
	}
	if m := report.Learning.DelayMeanMs; m < 1.6 || m > 1.95 {
		t.Fatalf("learning delay = %.3f ms, want ≈1.77", m)
	}
	if report.CompressionRatio <= 0 || report.CompressionRatio >= 1 {
		t.Fatalf("compression ratio = %.4f", report.CompressionRatio)
	}
	if report.DeliveryRate >= 1 {
		t.Fatalf("delivery rate %.4f on a lossy chain", report.DeliveryRate)
	}
}

// TestDumpSpecRoundTrip: -dump-spec output must load back through
// -scenario and run.
func TestDumpSpecRoundTrip(t *testing.T) {
	var dumped, errb bytes.Buffer
	if code := run([]string{"-preset", "chain3", "-dump-spec"}, &dumped, &errb); code != 0 {
		t.Fatalf("dump exit %d: %s", code, errb.String())
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, dumped.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	errb.Reset()
	if code := run([]string{"-scenario", path, "-records", "2000"}, &out, &errb); code != 0 {
		t.Fatalf("run exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scenario chain3") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
}

func TestListAndBadPreset(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range []string{"single", "chain3", "lossy-chain3", "fanin"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list missing %s:\n%s", name, out.String())
		}
	}
	if code := run([]string{"-preset", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad preset exit = %d, want 2", code)
	}
}
