// Command zipline-sim runs a declarative network scenario — hosts,
// ZipLine switches, impaired links, paper workloads — on the
// deterministic simulator and prints a metrics report, reproducing
// the paper's §7 end-to-end experiments beyond the two-server
// testbed.
//
// Usage:
//
//	zipline-sim -preset lossy-chain3 [-seed N] [-records N] [-duration MS] [-json]
//	zipline-sim -scenario spec.json [-json]
//	zipline-sim -topo fat-tree:k=4 -placement greedy     # generated datacenter topology
//	zipline-sim -topo fat-tree:k=8,hosts=32 -flows 128   # 1024-host churn
//	zipline-sim -preset chain3 -trace sensor.pcap        # replay a tracegen capture
//	zipline-sim -preset chain3 -control-loss 0.2 -restart dec@10+2   # inject faults
//	zipline-sim -preset chain3 -dump-spec   > my-scenario.json
//	zipline-sim -list
//	zipline-sim sweep -spec sweep.json -workers 4 -out matrix.json
//
// The sweep subcommand (see sweep.go) expands a declarative sweep
// spec into a grid of scenarios and runs them concurrently.
//
// The same seed always produces the identical report, so a saved
// report is a regression fixture for the whole engine. To reproduce
// the paper's (1.77 ± 0.08) ms learning delay:
//
//	zipline-sim -preset lossy-chain3
//
// and read the "delay" line: the control plane's mean per-basis
// learning delay models DigestLatency + Decision + 2×Write =
// 0.15 + 0.02 + 1.6 ms = 1.77 ms, jitter ±3% per stage, and link
// impairments must not move it (BfRt writes don't traverse the lossy
// data path).
//
// # Metrics schema (-json)
//
// The JSON report is scenario.Report:
//
//	scenario           string   scenario name
//	seed               int      the run's seed
//	elapsed_ms         float    simulated virtual time
//	offered            {frames, payload_bytes}   generated load
//	delivered          {frames, payload_bytes}   sum over all hosts
//	delivery_rate      float    delivered/offered frames (<1 loss, >1 dup)
//	encode             zswitch counter snapshot summed over switches
//	compression_ratio  float    encode payload bytes out ÷ in (exact)
//	learning           {learned, recycled, expired, digests_seen,
//	                    digest_bytes, delay_n, delay_mean_ms,
//	                    delay_p50_ms, delay_p90_ms, delay_p99_ms}
//	faults             only in fault-armed runs: {stranded_compressed,
//	                    bypass_frames, retransmits, abandoned,
//	                    stale_digests, resyncs, recovery_time_ns,
//	                    control_msgs_lost, switch_down_drops};
//	                    stranded_compressed is guaranteed zero
//	hosts[]            per-host rx: frames by type, goodput_gbps,
//	                    learning_delay_ms (first t3 − first t2, -1 n/a)
//	links[]            per-direction tx: frames, bytes, payload_bytes,
//	                    lost, duplicated, reordered, down_drops
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"zipline/internal/netsim"
	"zipline/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point with a single exit path.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "sweep" {
		return runSweep(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("zipline-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	presetName := fs.String("preset", "lossy-chain3", "built-in scenario (see -list)")
	specPath := fs.String("scenario", "", "JSON scenario spec (overrides -preset)")
	seed := fs.Int64("seed", 0, "override the scenario seed")
	topoFlag := fs.String("topo", "", "generate the topology, e.g. \"fat-tree:k=4\", \"fat-tree:k=8,hosts=32\", \"isp:switches=16\"")
	placementFlag := fs.String("placement", "", "dictionary-placement strategy for generated topologies: uniform, greedy, edge, core")
	flows := fs.Int("flows", 0, "churn flow count for generated topologies (default 64)")
	records := fs.Int("records", 0, "override every traffic flow's record count")
	tracePath := fs.String("trace", "", "replay this pcap (e.g. tracegen output) as every flow's workload")
	durationMs := fs.Int64("duration", 0, "override the bounded run length in milliseconds")
	controlLoss := fs.Float64("control-loss", -1, "control-channel loss probability in [0,1) (arms the fault model)")
	restarts := fs.String("restart", "", "schedule switch restarts, e.g. \"dec@10+2,enc@20+5\" (switch@crash-ms+down-ms)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	dumpSpec := fs.Bool("dump-spec", false, "print the selected scenario's spec as JSON and exit")
	list := fs.Bool("list", false, "list built-in scenarios and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, name := range scenario.PresetNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	var spec scenario.Spec
	if *specPath != "" {
		loaded, err := scenario.Load(*specPath)
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim: %v\n", err)
			return 1
		}
		spec = loaded
	} else {
		preset, ok := scenario.Preset(*presetName)
		if !ok {
			fmt.Fprintf(stderr, "zipline-sim: unknown preset %q (try -list)\n", *presetName)
			return 2
		}
		spec = preset
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *topoFlag != "" {
		t, err := parseTopo(*topoFlag)
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim: -topo: %v\n", err)
			return 2
		}
		// A generated topology replaces any explicit declarations
		// wholesale; flows and placement keep their blocks (or the
		// defaults) on top of the new graph.
		spec.Topology = t
		spec.Hosts, spec.Switches, spec.Links, spec.Traffic = nil, nil, nil, nil
		spec.Faults = nil
		spec.Name = *topoFlag
	}
	if *placementFlag != "" {
		if spec.Placement == nil {
			spec.Placement = &scenario.PlacementSpec{}
		}
		spec.Placement.Strategy = *placementFlag
	}
	if *flows > 0 {
		if spec.Flows == nil {
			spec.Flows = &scenario.FlowsSpec{}
		}
		spec.Flows.Count = *flows
	}
	if *records > 0 {
		for i := range spec.Traffic {
			spec.Traffic[i].Records = *records
		}
	}
	if *tracePath != "" {
		for i := range spec.Traffic {
			spec.Traffic[i].Workload = scenario.WorkloadTrace
			spec.Traffic[i].Trace = *tracePath
		}
	}
	if *durationMs > 0 {
		spec.DurationNs = *durationMs * int64(netsim.Millisecond)
	}
	if *controlLoss >= 0 {
		if spec.Faults == nil {
			spec.Faults = &netsim.FaultSpec{}
		}
		spec.Faults.ControlLossProb = *controlLoss
	}
	if *restarts != "" {
		scheduled, err := parseRestarts(*restarts)
		if err != nil {
			fmt.Fprintf(stderr, "zipline-sim: -restart: %v\n", err)
			return 2
		}
		if spec.Faults == nil {
			spec.Faults = &netsim.FaultSpec{}
		}
		spec.Faults.Restarts = scheduled
	}

	if *dumpSpec {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec); err != nil {
			fmt.Fprintf(stderr, "zipline-sim: %v\n", err)
			return 1
		}
		return 0
	}

	sc, err := scenario.Build(spec)
	if err != nil {
		fmt.Fprintf(stderr, "zipline-sim: %v\n", err)
		return 1
	}
	report := sc.Run()

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "zipline-sim: %v\n", err)
			return 1
		}
		return 0
	}
	report.WriteText(stdout)
	return 0
}

// parseTopo parses the -topo flag: kind[:key=val,...], e.g.
// "fat-tree:k=8,hosts=32" or "isp:switches=16".
func parseTopo(s string) (*scenario.TopologySpec, error) {
	kind, opts, _ := strings.Cut(s, ":")
	t := &scenario.TopologySpec{Kind: kind}
	if opts == "" {
		return t, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("%q: want key=value", kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q: bad value %q", kv, val)
		}
		switch key {
		case "k":
			t.K = n
		case "hosts":
			t.HostsPerEdge = n
		case "switches":
			t.Switches = n
		default:
			return nil, fmt.Errorf("unknown topology option %q (want k, hosts, switches)", key)
		}
	}
	return t, nil
}

// parseRestarts parses the -restart flag: comma-separated
// "switch@crash-ms+down-ms" events ("+down-ms" optional, defaulting to
// the schedule-level reboot time).
func parseRestarts(s string) ([]netsim.RestartSpec, error) {
	var out []netsim.RestartSpec
	for _, ev := range strings.Split(s, ",") {
		name, times, ok := strings.Cut(ev, "@")
		if !ok || name == "" {
			return nil, fmt.Errorf("%q: want switch@crash-ms[+down-ms]", ev)
		}
		atStr, downStr, hasDown := strings.Cut(times, "+")
		at, err := strconv.ParseFloat(atStr, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("%q: bad crash time %q", ev, atStr)
		}
		r := netsim.RestartSpec{Switch: name, AtNs: int64(at * 1e6)}
		if hasDown {
			down, err := strconv.ParseFloat(downStr, 64)
			if err != nil || down < 0 {
				return nil, fmt.Errorf("%q: bad down time %q", ev, downStr)
			}
			r.DownNs = int64(down * 1e6)
		}
		out = append(out, r)
	}
	return out, nil
}
