package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepWorkersByteIdentical: the acceptance bar — the smoke
// preset's matrix must be byte-identical between -workers 1 and
// -workers 4 under the same seed.
func TestSweepWorkersByteIdentical(t *testing.T) {
	runSweepOnce := func(workers string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"sweep", "-preset", "smoke", "-workers", workers, "-json"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	serial := runSweepOnce("1")
	if parallel := runSweepOnce("4"); parallel != serial {
		t.Fatalf("workers=1 and workers=4 matrices differ:\n%s\n---\n%s", serial, parallel)
	}
	if again := runSweepOnce("4"); again != serial {
		t.Fatal("same-seed rerun produced a different matrix")
	}
}

// TestSweepOutFile: -out writes the matrix and reports the cell count.
func TestSweepOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	var out, errb bytes.Buffer
	if code := run([]string{"sweep", "-preset", "smoke", "-workers", "2", "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "4 cells") {
		t.Fatalf("summary missing: %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var matrix struct {
		Sweep string `json:"sweep"`
		Cells []struct {
			Index  int `json:"index"`
			Report struct {
				Events uint64 `json:"events"`
			} `json:"report"`
			Derived struct {
				CompressionRatio float64 `json:"compression_ratio"`
			} `json:"derived"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(data, &matrix); err != nil {
		t.Fatal(err)
	}
	if matrix.Sweep != "smoke" || len(matrix.Cells) != 4 {
		t.Fatalf("matrix = %s with %d cells", matrix.Sweep, len(matrix.Cells))
	}
	for i, c := range matrix.Cells {
		if c.Index != i {
			t.Errorf("cell %d out of order (index %d)", i, c.Index)
		}
		if c.Report.Events == 0 || c.Derived.CompressionRatio <= 0 {
			t.Errorf("cell %d: empty columns: %+v", i, c)
		}
	}
}

// TestSweepDumpSpecRoundTrip: -dump-spec output loads back through
// -spec and runs.
func TestSweepDumpSpecRoundTrip(t *testing.T) {
	var dumped, errb bytes.Buffer
	if code := run([]string{"sweep", "-preset", "smoke", "-dump-spec"}, &dumped, &errb); code != 0 {
		t.Fatalf("dump exit %d: %s", code, errb.String())
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, dumped.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	errb.Reset()
	if code := run([]string{"sweep", "-spec", path, "-workers", "2"}, &out, &errb); code != 0 {
		t.Fatalf("run exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "4 cells") {
		t.Fatalf("unexpected matrix text:\n%s", out.String())
	}
}

// TestSweepListAndBadPreset: -list names every preset and the param
// vocabulary; unknown presets exit 2.
func TestSweepListAndBadPreset(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"sweep", "-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, want := range []string{"loss-sensitivity", "dict-size", "smoke", "params:", "loss_prob"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list missing %s:\n%s", want, out.String())
		}
	}
	if code := run([]string{"sweep", "-preset", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad preset exit = %d, want 2", code)
	}
}

// TestSweepTraceRejectsPresetAxis: -records/-trace overrides mutate
// the base scenario, which a whole-topology preset axis would then
// silently replace — the combination must be a usage error, not a
// sweep that ignores the flags.
func TestSweepTraceRejectsPresetAxis(t *testing.T) {
	spec := `{
	  "name": "preset-axis",
	  "preset": "chain3",
	  "axes": [{"param": "preset", "values": ["single", "chain3"]}]
	}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"sweep", "-spec", path, "-records", "500"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "preset axis") {
		t.Fatalf("stderr = %q", errb.String())
	}
	// Without the conflicting flags the same spec runs.
	errb.Reset()
	if code := run([]string{"sweep", "-spec", path, "-workers", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

// TestSweepSeedOverride: -seed changes the matrix.
func TestSweepSeedOverride(t *testing.T) {
	runWithSeed := func(seed string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"sweep", "-preset", "smoke", "-workers", "2", "-seed", seed, "-json"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	if runWithSeed("1") == runWithSeed("2") {
		t.Fatal("seed override inert")
	}
}
