// Command tracegen generates the paper's evaluation datasets as pcap
// traces of Ethernet frames, ready for replay.
//
//	tracegen -dataset sensor -out sensor.pcap            # 3,124,000 x 32 B (§7)
//	tracegen -dataset dns -out dns.pcap                  # 735,000 x 32 B (§7)
//	tracegen -dataset sensor -records 1000 -out s.pcap   # scaled down
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"zipline/internal/packet"
	"zipline/internal/pcap"
	"zipline/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "sensor", "sensor or dns")
	out := flag.String("out", "", "output pcap path (required)")
	records := flag.Int("records", 0, "record count override (0 = paper scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	pps := flag.Int64("pps", 150_000, "timestamp pacing, packets per second")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var tr *trace.Trace
	switch *dataset {
	case "sensor":
		tr = trace.Sensor(trace.SensorConfig{Records: *records, Seed: *seed})
	case "dns":
		tr = trace.DNS(trace.DNSConfig{Queries: *records, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	fatal(err)
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	w, err := pcap.NewWriter(bw, 0)
	fatal(err)
	src := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x01}
	dst := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x02}
	nsPerPacket := int64(1_000_000_000) / *pps
	fatal(tr.WritePcap(w, src, dst, nsPerPacket))
	fatal(bw.Flush())
	fmt.Printf("%s: %d records x %d B -> %s\n", tr.Name, tr.Records(), tr.RecordSize, *out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
