// Command tracegen generates the paper's evaluation datasets as pcap
// traces of Ethernet frames, ready for replay.
//
//	tracegen -dataset sensor -out sensor.pcap            # 3,124,000 x 32 B (§7)
//	tracegen -dataset dns -out dns.pcap                  # 735,000 x 32 B (§7)
//	tracegen -dataset sensor -records 1000 -out s.pcap   # scaled down
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"zipline/internal/packet"
	"zipline/internal/pcap"
	"zipline/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: errors propagate to this single
// exit point so deferred cleanup always executes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataset := fs.String("dataset", "sensor", "sensor or dns")
	out := fs.String("out", "", "output pcap path (required)")
	records := fs.Int("records", 0, "record count override (0 = paper scale)")
	seed := fs.Int64("seed", 1, "generator seed")
	pps := fs.Int64("pps", 150_000, "timestamp pacing, packets per second")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "tracegen: -out is required")
		fs.Usage()
		return 2
	}
	if *pps <= 0 {
		fmt.Fprintf(stderr, "tracegen: -pps must be positive, got %d\n", *pps)
		return 2
	}

	var tr *trace.Trace
	switch *dataset {
	case "sensor":
		tr = trace.Sensor(trace.SensorConfig{Records: *records, Seed: *seed})
	case "dns":
		tr = trace.DNS(trace.DNSConfig{Queries: *records, Seed: *seed})
	default:
		fmt.Fprintf(stderr, "tracegen: unknown dataset %q\n", *dataset)
		return 2
	}

	if err := writeTrace(tr, *out, *pps); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d records x %d B -> %s\n", tr.Name, tr.Records(), tr.RecordSize, *out)
	return 0
}

func writeTrace(tr *trace.Trace, path string, pps int64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The close error matters (buffered data reaches disk here), but
	// an earlier write error takes precedence.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	w, err := pcap.NewWriter(bw, 0)
	if err != nil {
		return err
	}
	src := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x01}
	dst := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x02}
	nsPerPacket := int64(1_000_000_000) / pps
	if err := tr.WritePcap(w, src, dst, nsPerPacket); err != nil {
		return err
	}
	return bw.Flush()
}
