package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateSensorPcap(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sensor.pcap")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dataset", "sensor", "-records", "500", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	// 500 records of 32 B plus per-packet framing: well above 16 KiB.
	if info.Size() < 16<<10 {
		t.Fatalf("pcap only %d bytes", info.Size())
	}
	if !strings.Contains(stdout.String(), "500 records") {
		t.Fatalf("summary missing: %q", stdout.String())
	}
}

func TestGenerateDNSPcap(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dns.pcap")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dataset", "dns", "-records", "200", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if info, err := os.Stat(out); err != nil || info.Size() == 0 {
		t.Fatalf("stat %s: %v", out, err)
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                                     // missing -out
		{"-dataset", "nope", "-out", "x.pcap"}, // unknown dataset
		{"-pps", "0", "-out", "x.pcap"},        // would divide by zero
		{"-pps", "-5", "-out", "x.pcap"},       // negative pacing
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestUnwritablePathExitsNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "x.pcap")
	if code := run([]string{"-records", "10", "-out", out}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}
