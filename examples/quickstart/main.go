// Quickstart: chunk-level generalized deduplication and the streaming
// compressor, in thirty lines.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"zipline"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Chunk level: split a 32-byte chunk into basis + deviation.
	codec := zipline.MustCodec(zipline.Config{}) // paper defaults: m=8, 15-bit IDs
	chunk := []byte("telemetry:temp=21.50C,rh=40.25%!")
	if len(chunk) != codec.ChunkSize() {
		return fmt.Errorf("chunk must be %d bytes", codec.ChunkSize())
	}
	s, err := codec.Split(chunk)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chunk      : %d bytes\n", len(chunk))
	fmt.Fprintf(w, "basis      : %d bits (dictionary key)\n", codec.BasisBits())
	fmt.Fprintf(w, "deviation  : %#02x (%d bits)\n", s.Deviation, codec.DeviationBits())
	fmt.Fprintf(w, "carried MSB: %d\n", s.Extra)

	back, err := codec.Merge(s, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lossless   : %v\n\n", bytes.Equal(back, chunk))

	// Stream level: compress a repetitive sensor log through the
	// one-shot API. A Writer built over a nil destination serves
	// EncodeAll only — reusable, pooled and safe for concurrent use.
	var log100 []byte
	for i := 0; i < 100; i++ {
		log100 = append(log100, chunk...)
	}
	enc, err := zipline.NewWriter(nil)
	if err != nil {
		return err
	}
	compressed := enc.EncodeAll(log100, nil)
	dec, err := zipline.NewReader(nil)
	if err != nil {
		return err
	}
	restored, err := dec.DecodeAll(compressed, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stream: %d bytes -> %d bytes (ratio %.3f), lossless %v\n",
		len(log100), len(compressed),
		float64(len(compressed))/float64(len(log100)),
		bytes.Equal(restored, log100))
	return nil
}
