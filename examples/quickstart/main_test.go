package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRoundTrip runs the example end to end in a temp
// working directory and asserts both round trips report lossless.
func TestQuickstartRoundTrip(t *testing.T) {
	t.Chdir(t.TempDir())
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "lossless   : true") {
		t.Fatalf("chunk round trip not lossless:\n%s", got)
	}
	if !strings.Contains(got, "lossless true") {
		t.Fatalf("stream round trip not lossless:\n%s", got)
	}
}
