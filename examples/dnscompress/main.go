// Dnscompress: compress a day of campus DNS queries, the real-world
// workload of the paper's Figure 3. Query payloads (transaction ID
// stripped, as the paper does) are 32-byte chunks whose bases repeat
// with Zipf name popularity.
//
//	go run ./examples/dnscompress
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"

	"zipline"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	queries, err := buildWorkload(200_000, 2_000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: %d queries x %d B = %.1f MB\n",
		len(queries)/32, 32, float64(len(queries))/1e6)

	comp, err := zipline.CompressBytes(queries, zipline.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "zipline: %.1f%% of original size\n",
		100*float64(len(comp))/float64(len(queries)))

	restored, err := zipline.DecompressBytes(comp)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "lossless:", bytes.Equal(restored, queries))

	// Chunk-level view: how many distinct bases does the day hold?
	codec := zipline.MustCodec(zipline.Config{})
	bases := map[string]int{}
	for off := 0; off < len(queries); off += 32 {
		s, err := codec.Split(queries[off : off+32])
		if err != nil {
			return err
		}
		bases[string(s.Basis)]++
	}
	fmt.Fprintf(w, "distinct bases: %d (dictionary holds %d)\n", len(bases), 1<<15)

	// Gateway regime: a resolver terminates many short flows, each
	// compressed one-shot. Cold, every flow re-learns the popular
	// names; with a dictionary pre-trained on the first hour, every
	// flow starts warm (the paper's shared-memory deployment).
	firstHour := queries[:len(queries)/24/32*32] // chunk-aligned cut
	dict, err := zipline.TrainDict(firstHour, zipline.Config{})
	if err != nil {
		return err
	}
	cold, err := zipline.NewWriter(nil)
	if err != nil {
		return err
	}
	warm, err := zipline.NewWriter(nil, zipline.WithDict(dict))
	if err != nil {
		return err
	}
	const flowBytes = 50 * 32 // 50 queries per flow
	var coldBytes, warmBytes, flowCount int
	for off := len(firstHour); off+flowBytes <= len(queries); off += flowBytes {
		flow := queries[off : off+flowBytes]
		coldBytes += len(cold.EncodeAll(flow, nil))
		warmBytes += len(warm.EncodeAll(flow, nil))
		flowCount++
	}
	fmt.Fprintf(w, "short flows (%d x %d B): cold %.1f%%, shared dict %.1f%% of original\n",
		flowCount, flowBytes,
		100*float64(coldBytes)/float64(flowCount*flowBytes),
		100*float64(warmBytes)/float64(flowCount*flowBytes))
	if warmBytes >= coldBytes {
		return fmt.Errorf("shared dictionary did not help: %d >= %d", warmBytes, coldBytes)
	}
	return nil
}

// buildWorkload emits n stripped 34-byte DNS queries (32 B each) for
// Zipf-popular names.
func buildWorkload(n, domains int) ([]byte, error) {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(domains-1))
	names := make([]string, domains)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range names {
		var sb strings.Builder
		sb.WriteString("www.")
		for j := 0; j < 8; j++ {
			sb.WriteByte(letters[rng.Intn(26)])
		}
		sb.WriteString(".edu")
		names[i] = sb.String()
	}
	out := make([]byte, 0, n*32)
	for i := 0; i < n; i++ {
		q, err := query(names[zipf.Uint64()])
		if err != nil {
			return nil, err
		}
		out = append(out, q...)
	}
	return out, nil
}

// query builds a wire-format DNS query and strips the 2-byte txid,
// yielding the 32-byte chunk ZipLine sees.
func query(name string) ([]byte, error) {
	q := make([]byte, 10, 32)                 // header minus txid
	binary.BigEndian.PutUint16(q[0:], 0x0100) // RD
	binary.BigEndian.PutUint16(q[2:], 1)      // QDCOUNT
	for _, label := range strings.Split(name, ".") {
		q = append(q, byte(len(label)))
		q = append(q, label...)
	}
	q = append(q, 0)          // root
	q = append(q, 0, 1, 0, 1) // QTYPE A, QCLASS IN
	if len(q) != 32 {
		return nil, fmt.Errorf("query for %s is %d bytes, want 32", name, len(q))
	}
	return q, nil
}
