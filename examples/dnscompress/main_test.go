package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDNSCompressRoundTrip runs the example in a temp working
// directory and asserts the day of queries round-trips losslessly
// and actually compresses.
func TestDNSCompressRoundTrip(t *testing.T) {
	t.Chdir(t.TempDir())
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "lossless: true") {
		t.Fatalf("round trip failed:\n%s", got)
	}
	if !strings.Contains(got, "distinct bases:") {
		t.Fatalf("missing basis census:\n%s", got)
	}
}
