package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGatewayDict runs the example and asserts both client classes
// round-trip losslessly and the dictionary actually paid for itself.
func TestGatewayDict(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Count(got, "lossless: true") != 2 {
		t.Fatalf("a client class lost data:\n%s", got)
	}
	if !strings.Contains(got, "trained dictionary ") {
		t.Fatalf("missing dictionary identity:\n%s", got)
	}
	if strings.Contains(got, "saved -") || strings.Contains(got, "saved 0.0%") {
		t.Fatalf("dictionary transfer did not shrink:\n%s", got)
	}
}
