// Gatewaydict: a shared-dictionary HTTP gateway end to end. An edge
// fleet trains one zipline dictionary on yesterday's sensor traffic,
// the server registers it with the ziphttp middleware, and clients
// advertise the dictionaries they hold via the Zipline-Dict header.
// A client holding the dictionary gets a dictionary-framed stream
// (every repeated basis is a 15-bit hit from byte one); a client
// without it transparently falls back to identity — never a stream it
// cannot decode.
//
//	go run ./examples/gatewaydict
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"

	"zipline"
	"zipline/ziphttp"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// sensorReadings builds the fleet's telemetry: a handful of 32-byte
// reading shapes repeated with single-field jitter, the chunk-aligned
// redundancy zipline's transforms erase.
func sensorReadings(rng *rand.Rand, n int) []byte {
	bases := make([][]byte, 8)
	for i := range bases {
		bases[i] = make([]byte, 32)
		rng.Read(bases[i])
	}
	out := make([]byte, 0, n*32)
	for i := 0; i < n; i++ {
		c := append([]byte(nil), bases[rng.Intn(len(bases))]...)
		c[rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
		out = append(out, c...)
	}
	return out
}

func run(w io.Writer) error {
	rng := rand.New(rand.NewSource(42))

	// Yesterday's traffic trains the shared dictionary; its ID is how
	// client and server agree they hold the same one.
	corpus := sensorReadings(rng, 4096)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trained dictionary %s (%d bases)\n", ziphttp.FormatDictID(dict.ID()), dict.Len())

	// Today's responses repeat the same reading shapes.
	body := sensorReadings(rng, 2048)

	wrap, err := ziphttp.NewMiddleware(ziphttp.WithDict(dict))
	if err != nil {
		return err
	}
	srv := httptest.NewServer(wrap(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/octet-stream")
		if _, err := rw.Write(body); err != nil {
			return
		}
	})))
	defer srv.Close()

	// A fleet client holding the dictionary: compressed transfer,
	// transparent decompression.
	holder, err := ziphttp.NewTransport(nil, ziphttp.WithDict(dict))
	if err != nil {
		return err
	}
	wire, got, err := fetch(&http.Client{Transport: holder}, srv.URL, ziphttp.FormatDictID(dict.ID()))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dict client:  %5d B on the wire for %d B body, lossless: %v\n",
		wire, len(body), bytes.Equal(got, body))

	// A stranger without the dictionary: the gateway serves identity
	// rather than a stream it could never decode.
	plain, err := ziphttp.NewTransport(nil)
	if err != nil {
		return err
	}
	wire2, got2, err := fetch(&http.Client{Transport: plain}, srv.URL, "")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plain client: %5d B on the wire for %d B body, lossless: %v\n",
		wire2, len(body), bytes.Equal(got2, body))

	fmt.Fprintf(w, "dictionary negotiation saved %.1f%% of the transfer\n",
		100*(1-float64(wire)/float64(wire2)))
	return nil
}

// fetch performs one GET through the given client and reports the
// decoded body alongside the on-the-wire body size. A compressed
// response's wire size is measured honestly with a second, raw request
// (advertising the dictionary id when one is held) that skips the
// decompressing transport.
func fetch(c *http.Client, url, dictID string) (wire int, body []byte, err error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	if !resp.Uncompressed {
		return len(body), body, nil
	}
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Accept-Encoding", ziphttp.ContentEncoding)
	if dictID != "" {
		req.Header.Set("Zipline-Dict", dictID)
	}
	raw, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		if cerr := raw.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	n, err := io.Copy(io.Discard, raw.Body)
	if err != nil {
		return 0, nil, err
	}
	return int(n), body, nil
}
