// Inlinecompression: the full in-network deployment — a sender
// streams sensor payloads through a ZipLine switch whose dictionary
// is learned on the fly by the control plane. Watch the traffic
// switch from uncompressed (type 2) to compressed (type 3) as bases
// are learned, with the paper's ≈1.8 ms control-plane latency.
//
//	go run ./examples/inlinecompression
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"zipline"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A small sensor fleet: 8 devices, values change rarely, so only
	// a handful of bases exist.
	rng := rand.New(rand.NewSource(3))
	temps := make([]uint32, 8)
	for i := range temps {
		temps[i] = 20000 + uint32(rng.Intn(50))*100
	}
	// Generate the day's packets up front so the same traffic can be
	// replayed through the in-network simulation and, below, through a
	// gateway running the stream API.
	const packets = 60_000
	payloads := make([][]byte, packets)
	for i := range payloads {
		id := i % len(temps)
		if rng.Float64() < 0.0005 {
			temps[id] += 100
		}
		p := make([]byte, 32)
		binary.BigEndian.PutUint16(p[0:], uint16(id))
		binary.BigEndian.PutUint32(p[2:], temps[id])
		payloads[i] = p
	}
	payload := func(i int) []byte {
		if i >= packets {
			return nil
		}
		return payloads[i]
	}

	res, err := zipline.SimulateLink(zipline.LinkSimConfig{
		ReplayPPS: 200_000,
		Payloads:  payload,
		Seed:      11,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "packets sent        : %d\n", res.Sent)
	fmt.Fprintf(w, "received            : %d\n", res.Received)
	fmt.Fprintf(w, "  type 2 (full basis): %d\n", res.UncompressedFrames)
	fmt.Fprintf(w, "  type 3 (compressed): %d\n", res.CompressedFrames)
	fmt.Fprintf(w, "bases learned       : %d\n", res.BasesLearned)
	fmt.Fprintf(w, "payload in          : %.2f MB\n", float64(res.InputPayloadBytes)/1e6)
	fmt.Fprintf(w, "payload out         : %.2f MB\n", float64(res.OutputPayloadBytes)/1e6)
	fmt.Fprintf(w, "compression ratio   : %.3f\n", res.Ratio())
	fmt.Fprintf(w, "first type 2 at     : %.3f ms\n", float64(res.FirstUncompressedNs)/1e6)
	fmt.Fprintf(w, "first type 3 at     : %.3f ms (learning delay ≈ %.2f ms)\n",
		float64(res.FirstCompressedNs)/1e6,
		float64(res.FirstCompressedNs-res.FirstUncompressedNs)/1e6)

	// The same traffic through a gateway instead of a switch pair: a
	// dictionary pre-trained on the first minute of packets, shared by
	// a one-shot encoder — no learning delay, warm from packet one.
	var day []byte
	for _, p := range payloads {
		day = append(day, p...)
	}
	dict, err := zipline.TrainDict(day[:len(day)/60], zipline.Config{})
	if err != nil {
		return err
	}
	enc, err := zipline.NewWriter(nil, zipline.WithDict(dict))
	if err != nil {
		return err
	}
	comp := enc.EncodeAll(day, nil)
	fmt.Fprintf(w, "gateway (shared dict): ratio %.3f, 0 ms learning delay\n",
		float64(len(comp))/float64(len(day)))
	return nil
}
