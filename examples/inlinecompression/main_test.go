package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestInlineCompressionRun runs the full in-network example in a
// temp working directory: every sent packet must arrive, most of the
// traffic must go compressed, and the learning delay must be the
// control plane's ≈1.8 ms.
func TestInlineCompressionRun(t *testing.T) {
	t.Chdir(t.TempDir())
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	var sent, received uint64
	if _, err := fmt.Sscanf(line(t, got, "packets sent"), "packets sent        : %d", &sent); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(line(t, got, "received "), "received            : %d", &received); err != nil {
		t.Fatal(err)
	}
	if sent == 0 || sent != received {
		t.Fatalf("sent %d, received %d:\n%s", sent, received, got)
	}

	var ratio float64
	if _, err := fmt.Sscanf(line(t, got, "compression ratio"), "compression ratio   : %f", &ratio); err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio >= 0.5 {
		t.Fatalf("compression ratio %.3f, want well under 0.5 for 8 near-static sensors:\n%s", ratio, got)
	}

	var t3, delay float64
	if _, err := fmt.Sscanf(line(t, got, "first type 3"),
		"first type 3 at     : %f ms (learning delay ≈ %f ms)", &t3, &delay); err != nil {
		t.Fatal(err)
	}
	if delay < 1.5 || delay > 2.1 {
		t.Fatalf("learning delay %.2f ms outside the modelled band:\n%s", delay, got)
	}
}

// line returns the first output line containing the marker.
func line(t *testing.T, report, marker string) string {
	t.Helper()
	for _, l := range strings.Split(report, "\n") {
		if strings.Contains(l, marker) {
			return l
		}
	}
	t.Fatalf("no line with %q in:\n%s", marker, report)
	return ""
}
