package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestSensorstreamRoundTrip runs the example in a temp working
// directory and asserts the stream round trip is lossless and that
// ZipLine beat gzip on the glitched workload (the example's point).
func TestSensorstreamRoundTrip(t *testing.T) {
	t.Chdir(t.TempDir())
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "round trip: lossless") {
		t.Fatalf("round trip failed:\n%s", got)
	}
	zl := ratioAfter(t, got, "zipline:")
	gz := ratioAfter(t, got, "gzip   :")
	if zl <= 0 || gz <= 0 || zl >= gz {
		t.Fatalf("zipline ratio %.3f not better than gzip %.3f:\n%s", zl, gz, got)
	}
}

// ratioAfter extracts the "(ratio X)" value from the report line
// starting with prefix.
func ratioAfter(t *testing.T, report, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.Index(line, "(ratio ")
		if i < 0 {
			break
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+len("(ratio "):], "%f", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no %q ratio line in:\n%s", prefix, report)
	return 0
}
