// Sensorstream: the IoT-gateway scenario that motivates GD — a fleet
// of sensors reports fixed-size readings whose values repeat heavily
// and occasionally suffer single-bit corruption. ZipLine's streaming
// compressor absorbs the corruption inside the Hamming deviation;
// gzip has to spend bytes on every flipped bit.
//
//	go run ./examples/sensorstream
package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"zipline"
)

const (
	sensors  = 64
	readings = 50_000
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	data, err := generate()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sensor log: %d readings x 32 B = %.1f MB\n",
		readings, float64(len(data))/1e6)

	// ZipLine stream compression.
	var zbuf bytes.Buffer
	zw, err := zipline.NewWriter(&zbuf, zipline.Config{})
	if err != nil {
		return err
	}
	if _, err := zw.Write(data); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "zipline: %8d bytes (ratio %.3f)  chunks=%d hits=%d misses=%d\n",
		zbuf.Len(), float64(zbuf.Len())/float64(len(data)),
		zw.Stats.Chunks, zw.Stats.Hits, zw.Stats.Misses)

	// gzip for comparison.
	var gbuf bytes.Buffer
	gw := gzip.NewWriter(&gbuf)
	if _, err := gw.Write(data); err != nil {
		return err
	}
	if err := gw.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "gzip   : %8d bytes (ratio %.3f)\n",
		gbuf.Len(), float64(gbuf.Len())/float64(len(data)))

	// Verify losslessness.
	restored, err := zipline.DecompressBytes(zbuf.Bytes())
	if err != nil {
		return err
	}
	if !bytes.Equal(restored, data) {
		return fmt.Errorf("round trip failed")
	}
	fmt.Fprintln(w, "round trip: lossless ✓")

	// Gateway regime: each sensor uploads its own short stream. One
	// pooled Writer serves the whole fleet through Reset; pre-training
	// a shared dictionary on yesterday's readings removes the per-
	// stream cold start (every upload's bases are already hits).
	dict, err := zipline.TrainDict(data[:len(data)/10], zipline.Config{})
	if err != nil {
		return err
	}
	perSensor := len(data) / sensors / 32 * 32
	uploads := func(zw *zipline.Writer) (total int, misses uint64, err error) {
		for s := 0; s < sensors; s++ {
			var buf bytes.Buffer
			zw.Reset(&buf) // pooled reuse: no per-stream allocation
			if _, err := zw.Write(data[s*perSensor : (s+1)*perSensor]); err != nil {
				return 0, 0, err
			}
			if err := zw.Close(); err != nil {
				return 0, 0, err
			}
			total += buf.Len()
			misses += zw.Stats.Misses
		}
		return total, misses, nil
	}
	cold, err := zipline.NewWriter(nil)
	if err != nil {
		return err
	}
	warm, err := zipline.NewWriter(nil, zipline.WithDict(dict))
	if err != nil {
		return err
	}
	coldBytes, coldMisses, err := uploads(cold)
	if err != nil {
		return err
	}
	warmBytes, warmMisses, err := uploads(warm)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "per-sensor uploads (%d x %d B): cold %d B (%d misses), shared dict %d B (%d misses)\n",
		sensors, perSensor, coldBytes, coldMisses, warmBytes, warmMisses)
	if warmMisses >= coldMisses {
		return fmt.Errorf("shared dictionary did not reduce misses: %d >= %d", warmMisses, coldMisses)
	}
	return nil
}

// generate builds a day of readings: per-sensor quantised random
// walks, 1-in-2 readings hit by a single-bit transmission glitch.
func generate() ([]byte, error) {
	rng := rand.New(rand.NewSource(42))
	type state struct{ temp, rh int32 }
	fleet := make([]state, sensors)
	for i := range fleet {
		fleet[i] = state{temp: 20000 + int32(rng.Intn(40))*250, rh: 40000 + int32(rng.Intn(40))*500}
	}
	codec := zipline.MustCodec(zipline.Config{})
	out := make([]byte, 0, readings*32)
	rec := make([]byte, 32)
	for i := 0; i < readings; i++ {
		id := i % sensors
		st := &fleet[id]
		if rng.Float64() < 0.01 {
			st.temp += int32(rng.Intn(3)-1) * 250
		}
		binary.BigEndian.PutUint16(rec[0:], uint16(id))
		binary.BigEndian.PutUint32(rec[2:], uint32(st.temp))
		binary.BigEndian.PutUint32(rec[6:], uint32(st.rh))
		for j := 10; j < 32; j++ {
			rec[j] = 0
		}
		// Quantise onto the GD grid, then model a transmission
		// glitch: flip one random bit of every reading. GD maps the
		// glitched reading to the same basis (Hamming ball), so it
		// still costs only ~3 bytes; gzip pays for each broken match.
		if err := snap(codec, rec); err != nil {
			return nil, err
		}
		bit := rng.Intn(256)
		rec[bit/8] ^= 1 << (7 - uint(bit%8))
		out = append(out, rec...)
	}
	return out, nil
}

// snap forces the record onto a GD codeword (deviation zero).
func snap(codec *zipline.Codec, rec []byte) error {
	s, err := codec.Split(rec)
	if err != nil {
		return err
	}
	s.Deviation = 0
	snapped, err := codec.Merge(s, rec[:0:len(rec)])
	if err != nil {
		return err
	}
	copy(rec, snapped)
	return nil
}
