// Benchmarks regenerating every table and figure of the paper's
// evaluation, one target per artifact (DESIGN.md §4). Each benchmark
// reports its headline quantity through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers alongside the usual ns/op. Benchmarks
// run scaled-down per iteration; cmd/zipline-bench runs the
// paper-scale versions and prints the full paper-layout tables.
package zipline_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"zipline"
	"zipline/internal/experiments"
	"zipline/internal/gd"
	"zipline/internal/netsim"
	"zipline/internal/trace"
)

// BenchmarkTable1 regenerates the Hamming/CRC parameter table,
// validating every polynomial constructively.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 15 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkTable2 regenerates the Hamming(7,4)/CRC-3 equivalence.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func fig3Dataset(seed int64) *trace.Trace {
	tr, err := gd.NewHammingM(8)
	if err != nil {
		panic(err)
	}
	return trace.Sensor(trace.SensorConfig{
		Records: 60_000, Sensors: 100, Seed: seed,
		SnapCodec: gd.NewCodec(tr), GlitchProb: 0.6,
	})
}

// BenchmarkFigure3Synthetic reproduces the synthetic-dataset group of
// Figure 3 (scaled down) and reports the dynamic-learning ratio
// (paper: 0.11).
func BenchmarkFigure3Synthetic(b *testing.B) {
	ds := fig3Dataset(2)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(ds, experiments.Figure3Config{Seed: int64(i) + 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cases {
			if c.Name == "Dynamic learning" {
				ratio = c.Ratio
			}
		}
	}
	b.ReportMetric(ratio, "dynamic-ratio")
}

// BenchmarkFigure3DNS reproduces the DNS group of Figure 3 (scaled
// down) and reports the dynamic-learning ratio (paper: 0.10).
func BenchmarkFigure3DNS(b *testing.B) {
	ds := trace.DNS(trace.DNSConfig{Queries: 60_000, Domains: 1000, Seed: 4})
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(ds, experiments.Figure3Config{
			Seed: int64(i) + 5, SkipStatic: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cases {
			if c.Name == "Dynamic learning" {
				ratio = c.Ratio
			}
		}
	}
	b.ReportMetric(ratio, "dynamic-ratio")
}

// BenchmarkFigure4 reproduces the throughput sweep (short window) and
// reports the 9000-byte encode throughput in Gbit/s (paper: ≈line
// rate).
func BenchmarkFigure4(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure4(experiments.Figure4Config{
			WindowNs: 2 * netsim.Millisecond,
			Repeats:  2,
			Seed:     int64(i) + 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Op == experiments.OpEncode && c.FrameSize == 9000 {
				gbps = c.Gbps.Mean()
			}
		}
	}
	b.ReportMetric(gbps, "encode-9000B-Gbps")
}

// BenchmarkFigure5 reproduces the RTT experiment and reports the
// encode RTT in µs (paper: single-digit µs, equal to no-op).
func BenchmarkFigure5(b *testing.B) {
	var rtt float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure5(experiments.Figure5Config{
			Probes: 200, Seed: int64(i) + 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		rtt = cells[1].RTTMicros.Mean() // encode
	}
	b.ReportMetric(rtt, "encode-rtt-us")
}

// BenchmarkLearning reproduces the dynamic-learning delay and reports
// it in milliseconds (paper: 1.77 ± 0.08).
func BenchmarkLearning(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Learning(experiments.LearningConfig{
			Repeats: 3, Seed: int64(i) + 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		ms = res.DelayMs.Mean()
	}
	b.ReportMetric(ms, "learning-ms")
}

// BenchmarkAblationPadding reports the aligned-layout no-table ratio
// (paper: 1.03; packed would be 1.00).
func BenchmarkAblationPadding(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPadding()
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].NoTableRatio
	}
	b.ReportMetric(ratio, "aligned-no-table-ratio")
}

// BenchmarkAblationMSweep sweeps the Hamming parameter and reports
// the m=8 compressed ratio.
func BenchmarkAblationMSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMSweep(1<<20, 13)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.M == 8 {
				ratio = r.Type3Ratio
			}
		}
	}
	b.ReportMetric(ratio, "m8-type3-ratio")
}

// BenchmarkAblationDictSize reports the compression ratio under an
// 8-bit (256-entry) dictionary, the LRU-thrash regime.
func BenchmarkAblationDictSize(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationDictSize(100_000, 15)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.IDBits == 8 {
				ratio = r.Ratio
			}
		}
	}
	b.ReportMetric(ratio, "idbits8-ratio")
}

// BenchmarkAblationVsDedup reports GD's ratio advantage over exact
// dedup on single-bit-glitch data.
func BenchmarkAblationVsDedup(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationTransforms(60_000, 17)
		if err != nil {
			b.Fatal(err)
		}
		var gdRatio, dedupRatio float64
		for _, r := range rows {
			if r.Dataset == "1-bit glitches" {
				switch r.Transform {
				case "GD hamming(255,247)":
					gdRatio = r.Ratio
				case "dedup (identity)":
					dedupRatio = r.Ratio
				}
			}
		}
		advantage = dedupRatio / gdRatio
	}
	b.ReportMetric(advantage, "gd-advantage-x")
}

// BenchmarkCodecEncode measures the software chunk encode rate on the
// allocation-free scratch path (A6: the paper's switch does this at
// line rate in hardware). Expect 0 allocs/op.
func BenchmarkCodecEncode(b *testing.B) {
	codec := zipline.MustCodec(zipline.Config{})
	chunk := make([]byte, codec.ChunkSize())
	rand.New(rand.NewSource(1)).Read(chunk)
	var s zipline.Split // scratch reused across iterations
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := codec.SplitInto(chunk, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecode measures the software chunk decode rate on the
// in-place merge path. Expect 0 allocs/op.
func BenchmarkCodecDecode(b *testing.B) {
	codec := zipline.MustCodec(zipline.Config{})
	chunk := make([]byte, codec.ChunkSize())
	rand.New(rand.NewSource(1)).Read(chunk)
	s, _ := codec.Split(chunk)
	dst := make([]byte, 0, 32)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := codec.Merge(s, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(out, chunk) {
			b.Fatal("mismatch")
		}
	}
}

// benchStreamData builds a compressible multi-segment payload shared
// by the serial/parallel writer benchmarks (glitched repeats of a few
// 32-byte bases, the paper's sensor workload shape); it is the same
// generator the parallel tests use, exposed via export_test.go.
func benchStreamData(size int) []byte {
	return zipline.SensorLikeData(size, 1)
}

// BenchmarkSerialWriter is the single-threaded baseline for
// BenchmarkParallelWriter on the same 8 MiB trace.
func BenchmarkSerialWriter(b *testing.B) {
	data := benchStreamData(8 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zw, err := zipline.NewWriter(io.Discard, zipline.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelWriter measures the sharded engine at several
// worker counts on the same trace as BenchmarkSerialWriter.
// Throughput scales with available cores (the ≥4× target at 8 workers
// needs ≥8 free cores).
func BenchmarkParallelWriter(b *testing.B) {
	data := benchStreamData(8 << 20)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pw, err := zipline.NewWriter(io.Discard, zipline.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pw.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := pw.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelReader measures sharded decode throughput.
func BenchmarkParallelReader(b *testing.B) {
	data := benchStreamData(8 << 20)
	var buf bytes.Buffer
	pw, err := zipline.NewWriter(&buf, zipline.WithWorkers(4))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pw.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		b.Fatal(err)
	}
	comp := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := zipline.NewReader(bytes.NewReader(comp), zipline.WithWorkers(0))
		if err != nil {
			b.Fatal(err)
		}
		if n, err := io.Copy(io.Discard, pr); err != nil || n != int64(len(data)) {
			b.Fatalf("copy: n=%d err=%v", n, err)
		}
	}
}

// benchDict trains a dictionary covering benchStreamData's bases
// (single-bit glitches land in the same Hamming ball, so a prefix
// covers the whole trace).
func benchDict(b *testing.B) *zipline.Dict {
	b.Helper()
	dict, err := zipline.TrainDict(benchStreamData(1<<16), zipline.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return dict
}

// BenchmarkEncodeAll measures the pooled one-shot encode path with a
// warm shared dictionary — the short-stream gateway hot path. Expect
// 0 allocs/op in steady state.
func BenchmarkEncodeAll(b *testing.B) {
	data := benchStreamData(64 << 10)
	enc, err := zipline.NewWriter(nil, zipline.WithDict(benchDict(b)))
	if err != nil {
		b.Fatal(err)
	}
	var comp []byte
	comp = enc.EncodeAll(data, comp[:0]) // warmup: pool setup is not steady state
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp = enc.EncodeAll(data, comp[:0])
	}
	if len(comp) == 0 {
		b.Fatal("empty output")
	}
}

// BenchmarkDecodeAll measures the pooled one-shot decode path.
func BenchmarkDecodeAll(b *testing.B) {
	data := benchStreamData(64 << 10)
	dict := benchDict(b)
	enc, err := zipline.NewWriter(nil, zipline.WithDict(dict))
	if err != nil {
		b.Fatal(err)
	}
	dec, err := zipline.NewReader(nil, zipline.WithDict(dict))
	if err != nil {
		b.Fatal(err)
	}
	comp := enc.EncodeAll(data, nil)
	var back []byte
	back, err = dec.DecodeAll(comp, back) // warmup: pool setup is not steady state
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		back, err = dec.DecodeAll(comp, back[:0])
		if err != nil || len(back) != len(data) {
			b.Fatalf("decode: %d bytes, %v", len(back), err)
		}
	}
}

// BenchmarkDecodeAllIndexed measures one-shot decode of a v4 indexed
// stream through the footer-driven fan-out path (4 workers). On a
// single-core box this tracks BenchmarkDecodeAll — both share the same
// inner loop — and pulls ahead of it roughly linearly with real cores;
// TestDecodeAllIndexedSpeedup pins the multi-core expectation.
func BenchmarkDecodeAllIndexed(b *testing.B) {
	data := benchStreamData(64 << 10)
	dict := benchDict(b)
	enc, err := zipline.NewWriter(nil, zipline.WithDict(dict), zipline.WithIndex(0))
	if err != nil {
		b.Fatal(err)
	}
	dec, err := zipline.NewReader(nil, zipline.WithDict(dict), zipline.WithWorkers(4))
	if err != nil {
		b.Fatal(err)
	}
	comp := enc.EncodeAll(data, nil)
	var back []byte
	back, err = dec.DecodeAll(comp, back) // warmup: pool setup is not steady state
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		back, err = dec.DecodeAll(comp, back[:0])
		if err != nil || len(back) != len(data) {
			b.Fatalf("decode: %d bytes, %v", len(back), err)
		}
	}
}

// BenchmarkWriterReset measures a pooled Writer re-serving streams
// through Reset with a warm shared dictionary. Expect 0 allocs/op —
// pinned by TestWriterResetZeroAllocs.
func BenchmarkWriterReset(b *testing.B) {
	data := benchStreamData(64 << 10)
	zw, err := zipline.NewWriter(io.Discard, zipline.WithDict(benchDict(b)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zw.Reset(io.Discard)
		if _, err := zw.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
