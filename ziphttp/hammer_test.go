package ziphttp_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zipline"
	"zipline/ziphttp"
)

// TestGatewayHammer drives the full handler+transport path with 256
// concurrent connections (the acceptance bar; run under -race). Every
// response must decode to its request's exact payload — pooled state
// bleeding between concurrent streams is the failure mode this exists
// to catch.
func TestGatewayHammer(t *testing.T) {
	corpus := sensorPayload(50, 64<<10)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrap, err := ziphttp.NewMiddleware(ziphttp.WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	// Each request asks for a distinct seeded payload, so cross-stream
	// state bleed shows up as a content mismatch, not just a crash.
	srv := httptest.NewServer(wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var seed int64
		fmt.Sscanf(r.URL.Query().Get("seed"), "%d", &seed)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(sensorPayload(seed, 8<<10))
	})))
	defer srv.Close()

	base := srv.Client().Transport.(*http.Transport).Clone()
	base.MaxIdleConns = 512
	base.MaxIdleConnsPerHost = 512
	tr, err := ziphttp.NewTransport(base, ziphttp.WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}

	const conns = 256
	const perConn = 4
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perConn; i++ {
				seed := int64(c*perConn + i)
				resp, err := client.Get(fmt.Sprintf("%s/?seed=%d", srv.URL, seed))
				if err != nil {
					t.Errorf("conn %d req %d: %v", c, i, err)
					failures.Add(1)
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("conn %d req %d: read: %v", c, i, err)
					failures.Add(1)
					return
				}
				if !bytes.Equal(got, sensorPayload(seed, 8<<10)) {
					t.Errorf("conn %d req %d: payload mismatch (cross-stream state bleed?)", c, i)
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d of %d workers failed", n, conns)
	}
}

// TestGatewayClientDisconnect pins the leak behaviour ISSUE's edge-case
// table calls out: clients that vanish mid-stream must not strand
// goroutines or poison the writer pool for later requests.
func TestGatewayClientDisconnect(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		t.Fatal(err)
	}
	handlerDone := make(chan struct{}, 64)
	srv := httptest.NewServer(wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() { handlerDone <- struct{}{} }()
		w.Header().Set("Content-Type", "application/octet-stream")
		f, _ := w.(http.Flusher)
		seg := sensorPayload(60, 4<<10)
		for i := 0; i < 100; i++ {
			if _, err := w.Write(seg); err != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	})))
	defer srv.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 32; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL, nil)
		req.Header.Set("Accept-Encoding", ziphttp.ContentEncoding)
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read a little, then vanish mid-stream.
		io.ReadFull(resp.Body, make([]byte, 1024))
		cancel()
		resp.Body.Close()
		select {
		case <-handlerDone:
		case <-time.After(10 * time.Second):
			t.Fatal("handler never observed the disconnect")
		}
	}

	// The pool must still serve intact writers after all that carnage.
	body := sensorPayload(61, 8<<10)
	srv2 := httptest.NewServer(wrap(payloadHandler(body, "application/octet-stream")))
	defer srv2.Close()
	tr, err := ziphttp.NewTransport(nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&http.Client{Transport: tr}).Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("writer pool poisoned by disconnected clients")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after disconnects: %d before, %d after", before, runtime.NumGoroutine())
}

// TestProxyConcurrentBridges runs 256 concurrent bridges over loopback
// TCP through one shared proxy pair (run under -race): the pooled
// engines must keep every stream isolated.
func TestProxyConcurrentBridges(t *testing.T) {
	pEnc, err := ziphttp.NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	pDec, err := ziphttp.NewProxy()
	if err != nil {
		t.Fatal(err)
	}

	// Wire every connection on the test goroutine (tcpPair may Fatal),
	// then let the workers loose concurrently.
	const conns = 256
	type wiring struct{ appA, appB net.Conn }
	ws := make([]wiring, conns)
	for c := range ws {
		appA, innerA := tcpPair(t)
		linkA, linkB := tcpPair(t)
		appB, innerB := tcpPair(t)
		go pEnc.Bridge(innerA, linkA)
		go pDec.Bridge(innerB, linkB)
		ws[c] = wiring{appA, appB}
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := range ws {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			msg := sensorPayload(int64(1000+c), 16<<10)
			go func() {
				ws[c].appA.Write(msg)
				ws[c].appA.Close()
			}()
			got, err := io.ReadAll(ws[c].appB)
			if err != nil {
				errs <- fmt.Errorf("bridge %d: %v", c, err)
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("bridge %d: stream mismatch (pool state bleed?)", c)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
