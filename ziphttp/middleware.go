package ziphttp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"zipline"
)

// NewMiddleware returns a wrapper that transparently
// zipline-compresses the responses of any http.Handler for clients
// that advertise support, subject to content-type and minimum-size
// gating and per-tenant dictionary negotiation (see the package
// documentation for the protocol). Configuration errors — an invalid
// option, or a WithConfig conflicting with a registered dictionary —
// surface here, not per request.
//
// The wrapper is safe for concurrent use by any number of requests;
// compression state is borrowed from per-dictionary pools and returned
// when each response completes.
func NewMiddleware(opts ...Option) (func(http.Handler) http.Handler, error) {
	set, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	pools, err := newEnginePools(set)
	if err != nil {
		return nil, err
	}
	m := &middleware{set: set, pools: pools}
	m.vary = "Accept-Encoding"
	if len(set.dicts) > 0 {
		m.vary = "Accept-Encoding, " + DictHeader
	}
	return func(next http.Handler) http.Handler {
		return m.wrap(next)
	}, nil
}

// middleware is the shared state behind one NewMiddleware call: the
// resolved options, the engine pools, and a pool of response-writer
// wrappers.
type middleware struct {
	set   settings
	pools *enginePools
	vary  string
	rwp   sync.Pool // *responseWriter
}

func (m *middleware) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Caches must key on the negotiation inputs whether or not this
		// response ends up compressed.
		w.Header().Add("Vary", m.vary)

		if !acceptsZipline(r.Header.Get("Accept-Encoding")) ||
			r.Method == http.MethodHead || r.Header.Get("Upgrade") != "" {
			next.ServeHTTP(w, r)
			return
		}
		dict := chooseDict(m.set.dicts, r.Header.Get(DictHeader))
		if dict == nil && len(m.set.dicts) > 0 {
			// The server compresses against pre-shared dictionaries only;
			// a client holding none of them gets identity rather than a
			// stream it cannot decode.
			next.ServeHTTP(w, r)
			return
		}

		zrw, _ := m.rwp.Get().(*responseWriter)
		if zrw == nil {
			zrw = &responseWriter{}
		}
		*zrw = responseWriter{m: m, rw: w, dict: dict, code: http.StatusOK, buf: zrw.buf[:0]}
		defer func() {
			zrw.finish()
			*zrw = responseWriter{buf: zrw.buf[:0]}
			m.rwp.Put(zrw)
		}()
		next.ServeHTTP(zrw, r)
	})
}

// Response-writer states: buffering input while the compress-or-not
// decision is open, then committed to one of the two.
const (
	stateBuffering = iota
	statePassthrough
	stateCompressing
)

// responseWriter wraps the server's http.ResponseWriter, buffering the
// head of the body until the gating decision (content type, minimum
// size, prior Content-Encoding) is made, then streaming the rest
// through a pooled zipline Writer or straight through.
type responseWriter struct {
	m    *middleware
	rw   http.ResponseWriter
	dict *zipline.Dict

	state       int
	code        int
	wroteHeader bool // handler called WriteHeader explicitly
	hijacked    bool
	buf         []byte // body head while buffering (capacity pooled)
	zw          *zipline.Writer
}

// Assert the passthrough interfaces survive wrapping.
var (
	_ http.ResponseWriter = (*responseWriter)(nil)
	_ http.Flusher        = (*responseWriter)(nil)
	_ http.Hijacker       = (*responseWriter)(nil)
	_ io.ReaderFrom       = (*responseWriter)(nil)
)

// Header returns the header map of the wrapped writer.
func (zrw *responseWriter) Header() http.Header { return zrw.rw.Header() }

// WriteHeader records the status code; the header is forwarded when
// the compress-or-not decision is made, because Content-Encoding and
// Content-Length must be settled before headers leave.
func (zrw *responseWriter) WriteHeader(code int) {
	if zrw.wroteHeader || zrw.hijacked {
		return
	}
	zrw.wroteHeader = true
	zrw.code = code
	if zrw.state != stateBuffering {
		zrw.rw.WriteHeader(code)
	}
}

// Write implements io.Writer with the gating decision inline: while
// buffering, bytes accumulate until the minimum size is reached and
// the decision commits; afterwards they stream through the chosen
// path.
func (zrw *responseWriter) Write(p []byte) (int, error) {
	switch zrw.state {
	case stateCompressing:
		return zrw.zw.Write(p)
	case statePassthrough:
		return zrw.rw.Write(p)
	}
	if zrw.hijacked {
		return 0, http.ErrHijacked
	}
	zrw.buf = append(zrw.buf, p...)
	if len(zrw.buf) >= zrw.m.set.minSize {
		if err := zrw.commit(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// commit makes the compress-or-not decision and drains the buffered
// head down the chosen path. Callers apply the size gate: Write
// commits once the minimum size is met, Flush commits with the gate
// waived (a streaming response has no known size to gate on).
func (zrw *responseWriter) commit() error {
	h := zrw.rw.Header()
	compress := true
	switch {
	case h.Get("Content-Encoding") != "":
		// The handler already coded the body; never recode.
		compress = false
	case zrw.noBody():
		compress = false
	default:
		ct := h.Get("Content-Type")
		if ct == "" {
			ct = http.DetectContentType(zrw.buf)
			h.Set("Content-Type", ct)
		}
		compress = zrw.m.set.compressibleType(ct)
	}
	if compress {
		zrw.state = stateCompressing
		h.Set("Content-Encoding", ContentEncoding)
		h.Del("Content-Length")
		if zrw.dict != nil {
			h.Set(DictHeader, FormatDictID(zrw.dict.ID()))
		}
		zrw.rw.WriteHeader(zrw.code)
		zrw.zw = zrw.m.pools.getWriter(zrw.dict, zrw.rw)
		if len(zrw.buf) > 0 {
			if _, err := zrw.zw.Write(zrw.buf); err != nil {
				return err
			}
		}
		return nil
	}
	zrw.state = statePassthrough
	zrw.rw.WriteHeader(zrw.code)
	if len(zrw.buf) > 0 {
		if _, err := zrw.rw.Write(zrw.buf); err != nil {
			return err
		}
	}
	return nil
}

// noBody reports status codes that must not carry a message body.
func (zrw *responseWriter) noBody() bool {
	return zrw.code == http.StatusNoContent || zrw.code == http.StatusNotModified ||
		(zrw.code >= 100 && zrw.code < 200)
}

// finish completes the response after the handler returns: an
// undecided response below the size gate goes out identity, a
// compressed one gets its trailer, and the pooled writer goes home.
func (zrw *responseWriter) finish() {
	if zrw.hijacked {
		return
	}
	switch zrw.state {
	case stateBuffering:
		// Below the minimum size (or empty): identity.
		h := zrw.rw.Header()
		if h.Get("Content-Type") == "" && len(zrw.buf) > 0 {
			h.Set("Content-Type", http.DetectContentType(zrw.buf))
		}
		zrw.rw.WriteHeader(zrw.code)
		if len(zrw.buf) > 0 {
			// The connection may be gone; there is no one left to tell.
			_, _ = zrw.rw.Write(zrw.buf)
		}
	case stateCompressing:
		// A close error here means the client went away mid-body; the
		// writer is still pooled — Reset discards the dead stream state.
		_ = zrw.zw.Close()
		zrw.m.pools.putWriter(zrw.dict, zrw.zw)
		zrw.zw = nil
	}
}

// Flush forwards buffered data to the client. On an undecided response
// it forces the gating decision with the size gate waived — a handler
// that flushes is streaming, and streams compress well — then pushes
// complete chunks through the encoder and flushes the wrapped writer.
func (zrw *responseWriter) Flush() {
	if zrw.hijacked {
		return
	}
	if zrw.state == stateBuffering {
		if err := zrw.commit(); err != nil {
			return
		}
	}
	if zrw.state == stateCompressing {
		if err := zrw.zw.Flush(); err != nil {
			return
		}
	}
	if f, ok := zrw.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack hands the raw connection to the handler (WebSocket upgrades
// and the like). The gateway steps aside: nothing is written, and the
// pooled writer — if compression had started — keeps its place in the
// pool with its dead stream state discarded by the next Reset.
func (zrw *responseWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := zrw.rw.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("ziphttp: underlying ResponseWriter is not a Hijacker")
	}
	conn, rw, err := hj.Hijack()
	if err == nil {
		zrw.hijacked = true
		if zrw.zw != nil {
			zrw.m.pools.putWriter(zrw.dict, zrw.zw)
			zrw.zw = nil
		}
	}
	return conn, rw, err
}

// readFromBufPool recycles the copy buffers ReadFrom uses, so
// sendfile-style handlers do not allocate 32 KiB per response.
var readFromBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// ReadFrom routes io.Copy/sendfile-style sources through Write so the
// gating logic still applies. Without this, http.ServeContent against
// the wrapper would bypass compression via the underlying
// connection's ReaderFrom.
func (zrw *responseWriter) ReadFrom(r io.Reader) (int64, error) {
	bp := readFromBufPool.Get().(*[]byte)
	defer readFromBufPool.Put(bp)
	buf := *bp
	var total int64
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			w, werr := zrw.Write(buf[:n])
			total += int64(w)
			if werr != nil {
				return total, werr
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}
