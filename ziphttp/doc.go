// Package ziphttp deploys ZipLine compression as userspace network
// infrastructure: a transparent HTTP compression gateway and a TCP
// streaming proxy pair — the serving shape of the paper's in-network
// compression (Vaucher et al., CoNEXT '20), where compression sits on
// the path between endpoints rather than inside the application.
//
// Three entry points:
//
//   - NewMiddleware wraps any http.Handler so responses are
//     zipline-compressed for clients that advertise support, with
//     content-type and minimum-size gating, per-tenant shared-
//     dictionary negotiation, and pooled zero-steady-state-allocation
//     encoders.
//   - NewTransport wraps an http.RoundTripper so requests advertise
//     zipline (and the dictionaries the client holds) and responses
//     are transparently decompressed.
//   - NewProxy bridges arbitrary TCP byte streams: an encode-side
//     proxy compresses everything it forwards to its peer, the
//     decode-side peer restores the original stream — the paper's
//     switch pair as two userspace processes (see cmd/zipline-proxy).
//
// # Protocol
//
// The gateway speaks standard HTTP content negotiation with one
// extension header:
//
//   - A client that can decode zipline streams sends
//     "Accept-Encoding: zipline"; a compressed response carries
//     "Content-Encoding: zipline" and "Vary: Accept-Encoding".
//   - A client holding pre-trained dictionaries (zipline.Dict) lists
//     their identities in "Zipline-Dict: <id>[,<id>...]" (8-digit
//     lower-case hex of Dict.ID). A server configured with
//     dictionaries compresses against the first of its dictionaries
//     the client holds and names it in the response's Zipline-Dict
//     header; when the client lacks every server dictionary the
//     response falls back to identity (uncompressed) rather than
//     shipping streams the client cannot decode.
//
// # Invariants
//
//   - Encoders and decoders are pooled per dictionary and re-served
//     via Reset: the steady-state writer cycle is 0 allocs/op (pinned
//     by TestPooledWriterZeroAllocs).
//   - The middleware never compresses a response the client did not
//     opt into, never double-compresses (a handler-set
//     Content-Encoding passes through), and drops Content-Length
//     exactly when the body is recoded.
//   - http.Flusher, http.Hijacker and io.ReaderFrom survive wrapping:
//     Flush forwards complete chunks mid-response, Hijack hands the
//     raw connection over and stops the gateway's writer, and
//     sendfile-style copies are routed through the gating logic.
//   - Proxy bridges drain gracefully: each direction's end is carried
//     in-band by the container trailer, so a half-closed connection
//     finishes delivering buffered data before teardown and no bytes
//     are stranded (see the half-close tests in proxy_test.go).
package ziphttp
