package ziphttp

import (
	"fmt"
	"io"
	"sync"

	"zipline"
)

// Proxy compresses arbitrary TCP byte streams between two points: the
// paper's switch pair as userspace infrastructure. A bridge carries
// one duplex connection — everything written toward the peer link is
// zipline-compressed, everything arriving from it is decompressed, so
// a Proxy on each end of a long-haul link is invisible to the
// endpoints. Engines are borrowed from per-proxy pools for each
// connection and re-served via Reset.
//
// Both ends of a link must share the configuration (and the optional
// pre-trained dictionary — WithDict, at most one): the decompressing
// side follows the container header and rejects mismatches with
// zipline's typed dictionary errors.
type Proxy struct {
	set   settings
	dict  *zipline.Dict
	pools *enginePools
	bufs  sync.Pool // *[]byte segment buffers
}

// NewProxy builds the shared state for any number of concurrent
// bridges. At most one dictionary may be registered; configuration
// errors surface here.
func NewProxy(opts ...Option) (*Proxy, error) {
	set, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if len(set.dicts) > 1 {
		return nil, fmt.Errorf("ziphttp: a proxy carries one stream dictionary, got %d", len(set.dicts))
	}
	pools, err := newEnginePools(set)
	if err != nil {
		return nil, err
	}
	p := &Proxy{set: set, pools: pools}
	if len(set.dicts) == 1 {
		p.dict = set.dicts[0]
	}
	p.bufs.New = func() any {
		b := make([]byte, 32<<10)
		return &b
	}
	return p, nil
}

// closeWriter is the half-close capability of *net.TCPConn and
// friends; the bridge uses it when available so raw EOFs propagate
// promptly, but stream ends are also carried in-band by the container
// trailer, so a transport without it still drains correctly.
type closeWriter interface {
	CloseWrite() error
}

// Bridge carries one connection: plain is the uncompressed side (the
// application), peer is the link to the opposite proxy. Each direction
// runs until its source half-closes — the plain side's EOF becomes a
// finished container (tail and trailer flushed) on the peer link, and
// the peer stream's trailer becomes a half-close toward the
// application — then both connections are fully closed. Bridge blocks
// until both directions have drained and returns the first transfer
// error, if any (a clean bidirectional shutdown returns nil).
//
// Any number of Bridge calls may run concurrently on one Proxy.
func (p *Proxy) Bridge(plain, peer io.ReadWriteCloser) error {
	errc := make(chan error, 2)
	go func() { errc <- p.encodeSide(plain, peer) }()
	go func() { errc <- p.decodeSide(peer, plain) }()

	err := <-errc
	if err != nil {
		// One direction failed: tear both connections down so the other
		// direction cannot block forever on a dead stream.
		plain.Close()
		peer.Close()
	}
	err2 := <-errc
	plain.Close()
	peer.Close()
	if err == nil && err2 != nil {
		err = err2
	}
	return err
}

// encodeSide pumps plain→peer through a pooled compressing writer,
// flushing after every segment so the stream cuts through with at most
// one chunk of added latency. On the plain side's EOF the container is
// finished (Close flushes the partial-chunk tail and the trailer) and
// the peer link is half-closed.
func (p *Proxy) encodeSide(plain io.Reader, peer io.Writer) error {
	zw := p.pools.getWriter(p.dict, peer)
	defer p.pools.putWriter(p.dict, zw)
	bp := p.bufs.Get().(*[]byte)
	defer p.bufs.Put(bp)
	buf := *bp
	for {
		n, rerr := plain.Read(buf)
		if n > 0 {
			if _, err := zw.Write(buf[:n]); err != nil {
				return err
			}
			if err := zw.Flush(); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			if err := zw.Close(); err != nil {
				return err
			}
			if cw, ok := peer.(closeWriter); ok {
				cw.CloseWrite()
			}
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}

// decodeSide pumps peer→plain through a pooled decompressing reader.
// The container trailer marks the end of the direction — the in-band
// half-close — after which the plain side's write half is closed.
func (p *Proxy) decodeSide(peer io.Reader, plain io.Writer) error {
	zr := p.pools.getReader(p.dict, peer)
	defer p.pools.putReader(p.dict, zr)
	bp := p.bufs.Get().(*[]byte)
	defer p.bufs.Put(bp)
	buf := *bp
	for {
		n, rerr := zr.Read(buf)
		if n > 0 {
			if _, err := plain.Write(buf[:n]); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			if cw, ok := plain.(closeWriter); ok {
				cw.CloseWrite()
			}
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}
