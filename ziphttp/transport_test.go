package ziphttp_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"zipline"
	"zipline/ziphttp"
)

// gatewayServer wires a middleware-wrapped payload handler into a real
// HTTP server.
func gatewayServer(t *testing.T, body []byte, mwOpts ...ziphttp.Option) *httptest.Server {
	t.Helper()
	wrap, err := ziphttp.NewMiddleware(mwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wrap(payloadHandler(body, "application/octet-stream")))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportRoundTrip(t *testing.T) {
	body := sensorPayload(20, 16<<10)
	srv := gatewayServer(t, body)

	tr, err := ziphttp.NewTransport(srv.Client().Transport)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("Content-Encoding %q leaked through the transport", resp.Header.Get("Content-Encoding"))
	}
	if !resp.Uncompressed {
		t.Fatal("resp.Uncompressed = false")
	}
	if resp.ContentLength != -1 {
		t.Fatalf("ContentLength = %d, want -1 after recoding", resp.ContentLength)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("transparent round trip mismatch: %d bytes, want %d", len(got), len(body))
	}
}

func TestTransportSharedDictRoundTrip(t *testing.T) {
	corpus := sensorPayload(21, 64<<10)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	body := sensorPayload(21, 16<<10)
	srv := gatewayServer(t, body, ziphttp.WithDict(dict))

	tr, err := ziphttp.NewTransport(srv.Client().Transport, ziphttp.WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("shared-dict round trip mismatch")
	}
	if resp.Header.Get("Zipline-Dict") != "" {
		t.Fatal("Zipline-Dict header leaked through the transport")
	}

	// A transport without the dict gets identity from the same server —
	// the negotiated fallback, end to end.
	plainTr, err := ziphttp.NewTransport(srv.Client().Transport)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := (&http.Client{Transport: plainTr}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.Uncompressed {
		t.Fatal("dictless client should have received identity")
	}
	got2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, body) {
		t.Fatal("identity fallback body mismatch")
	}
}

// TestTransportPassthrough: responses that are not zipline-coded come
// back untouched.
func TestTransportPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "plain as day")
	}))
	defer srv.Close()

	tr, err := ziphttp.NewTransport(srv.Client().Transport)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if string(got) != "plain as day" {
		t.Fatalf("passthrough body %q", got)
	}
	if resp.Uncompressed {
		t.Fatal("passthrough response marked Uncompressed")
	}
}

// TestTransportUnheldDict: a response claiming a dictionary the client
// never advertised is a protocol violation, surfaced as an error.
func TestTransportUnheldDict(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Encoding", "zipline")
		w.Header().Set("Zipline-Dict", "deadbeef")
		w.Write([]byte("whatever"))
	}))
	defer srv.Close()

	tr, err := ziphttp.NewTransport(srv.Client().Transport)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&http.Client{Transport: tr}).Get(srv.URL); err == nil {
		t.Fatal("unheld dictionary accepted")
	}
}

// TestTransportDoesNotMutateRequest pins the RoundTripper contract.
func TestTransportDoesNotMutateRequest(t *testing.T) {
	srv := gatewayServer(t, sensorPayload(22, 8<<10))
	tr, err := ziphttp.NewTransport(srv.Client().Transport)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", srv.URL, nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if req.Header.Get("Accept-Encoding") != "" {
		t.Fatal("transport mutated the caller's request headers")
	}
}

// TestTransportSequentialReuse drives many sequential requests through
// one transport so pooled readers are re-served via Reset.
func TestTransportSequentialReuse(t *testing.T) {
	body := sensorPayload(23, 8<<10)
	srv := gatewayServer(t, body)
	tr, err := ziphttp.NewTransport(srv.Client().Transport)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	for i := 0; i < 50; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("request %d: body mismatch", i)
		}
	}
}
