package ziphttp_test

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"zipline/ziphttp"
)

// repetitivePayload builds a deterministic sensor-style body: a few
// 32-byte readings repeated with small variations.
func repetitivePayload(n int) []byte {
	base := []byte("sensor-7731:temp=21.4C;rh=40.2%;")
	out := make([]byte, 0, n*len(base))
	for i := 0; i < n; i++ {
		c := append([]byte(nil), base...)
		c[len(c)-2] = byte('0' + i%10)
		out = append(out, c...)
	}
	return out
}

func ExampleNewMiddleware() {
	// Wrap any http.Handler; responses compress only for clients that
	// send Accept-Encoding: zipline, and only past the size gate.
	wrap, err := ziphttp.NewMiddleware(ziphttp.WithMinSize(256))
	if err != nil {
		log.Fatal(err)
	}
	handler := wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(repetitivePayload(512))
	}))

	req := httptest.NewRequest("GET", "/readings", nil)
	req.Header.Set("Accept-Encoding", "zipline")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)

	fmt.Println("Content-Encoding:", rec.Header().Get("Content-Encoding"))
	fmt.Println("Vary:", rec.Header().Get("Vary"))
	fmt.Println("compressed smaller than identity:", rec.Body.Len() < 512*32)
	// Output:
	// Content-Encoding: zipline
	// Vary: Accept-Encoding
	// compressed smaller than identity: true
}

func ExampleTransport() {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		log.Fatal(err)
	}
	body := repetitivePayload(512)
	srv := httptest.NewServer(wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(body)
	})))
	defer srv.Close()

	// The Transport advertises zipline support and hands back the
	// identity body; callers never see the encoding.
	tr, err := ziphttp.NewTransport(nil)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("transparently decompressed:", resp.Uncompressed)
	fmt.Println("body intact:", bytes.Equal(got, body))
	// Output:
	// transparently decompressed: true
	// body intact: true
}
