package ziphttp

import (
	"io"
	"sync"

	"zipline"
)

// enginePools owns one writer pool and one reader pool per encoder
// variant (the dictless one plus each registered dictionary). The
// variant set is fixed at construction, so lookups are lock-free map
// reads and the only synchronisation is sync.Pool's own. A pooled
// engine is re-served with Reset, which keeps its dictionary, block
// buffers and worker state — the steady-state acquire→encode→release
// cycle allocates nothing (pinned by TestPooledWriterZeroAllocs).
type enginePools struct {
	set     settings
	writers map[uint32]*sync.Pool // Dict.ID → pool; dictless under key of nil entry
	readers map[uint32]*sync.Pool
	dictless,
	dictlessR *sync.Pool
	byID map[uint32]*zipline.Dict
}

// newEnginePools builds the pools and eagerly constructs one writer
// per variant, so configuration errors (e.g. a WithConfig conflicting
// with a dictionary's training point) surface at construction time,
// not mid-request.
func newEnginePools(set settings) (*enginePools, error) {
	p := &enginePools{
		set:     set,
		writers: make(map[uint32]*sync.Pool, len(set.dicts)),
		readers: make(map[uint32]*sync.Pool, len(set.dicts)),
		byID:    make(map[uint32]*zipline.Dict, len(set.dicts)),
	}
	mk := func(d *zipline.Dict) (*sync.Pool, *sync.Pool, error) {
		opts := set.ziplineOptions(d)
		probe, err := zipline.NewWriter(io.Discard, opts...)
		if err != nil {
			return nil, nil, err
		}
		wp := &sync.Pool{New: func() any {
			zw, err := zipline.NewWriter(io.Discard, opts...)
			if err != nil {
				// Unreachable: the probe above validated this option set.
				panic("ziphttp: " + err.Error())
			}
			return zw
		}}
		wp.Put(probe)
		rp := &sync.Pool{New: func() any {
			zr, err := zipline.NewReader(nil, opts...)
			if err != nil {
				panic("ziphttp: " + err.Error())
			}
			return zr
		}}
		return wp, rp, nil
	}
	var err error
	if p.dictless, p.dictlessR, err = mk(nil); err != nil {
		return nil, err
	}
	for _, d := range set.dicts {
		wp, rp, err := mk(d)
		if err != nil {
			return nil, err
		}
		p.writers[d.ID()] = wp
		p.readers[d.ID()] = rp
		p.byID[d.ID()] = d
	}
	return p, nil
}

// getWriter borrows a pooled writer for the dictionary (nil for
// dictless) and points it at w.
func (p *enginePools) getWriter(d *zipline.Dict, w io.Writer) *zipline.Writer {
	pool := p.dictless
	if d != nil {
		pool = p.writers[d.ID()]
	}
	zw := pool.Get().(*zipline.Writer)
	zw.Reset(w)
	return zw
}

// putWriter returns a writer to its pool. Reset drops the reference to
// the request's ResponseWriter so the pool never pins one.
func (p *enginePools) putWriter(d *zipline.Dict, zw *zipline.Writer) {
	zw.Reset(io.Discard)
	pool := p.dictless
	if d != nil {
		pool = p.writers[d.ID()]
	}
	pool.Put(zw)
}

// getReader borrows a pooled reader for the dictionary (nil for
// dictless) and points it at r.
func (p *enginePools) getReader(d *zipline.Dict, r io.Reader) *zipline.Reader {
	pool := p.dictlessR
	if d != nil {
		pool = p.readers[d.ID()]
	}
	zr := pool.Get().(*zipline.Reader)
	zr.Reset(r)
	return zr
}

// putReader returns a reader to its pool, dropping its source
// reference first.
func (p *enginePools) putReader(d *zipline.Dict, zr *zipline.Reader) {
	zr.Reset(nil)
	pool := p.dictlessR
	if d != nil {
		pool = p.readers[d.ID()]
	}
	pool.Put(zr)
}
