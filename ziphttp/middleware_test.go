package ziphttp_test

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zipline"
	"zipline/ziphttp"
)

// sensorPayload builds a compressible body: 32-byte records drawn from
// a handful of bases with single-bit glitches — the Hamming-ball
// redundancy GD is built for.
func sensorPayload(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := make([][]byte, 8)
	for i := range bases {
		bases[i] = make([]byte, 32)
		rng.Read(bases[i])
	}
	out := make([]byte, 0, size)
	for len(out) < size {
		chunk := append([]byte(nil), bases[rng.Intn(len(bases))]...)
		chunk[rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
		out = append(out, chunk...)
	}
	return out[:size]
}

// serve runs one request against a wrapped handler and returns the raw
// recorded response (no transport decoding).
func serve(t *testing.T, wrap func(http.Handler) http.Handler, h http.Handler, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "http://gw.test/", nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	wrap(h).ServeHTTP(rec, req)
	return rec
}

func payloadHandler(body []byte, ct string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.Write(body)
	})
}

func TestMiddlewareCompressesAdvertisingClient(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		t.Fatal(err)
	}
	body := sensorPayload(1, 8<<10)
	rec := serve(t, wrap, payloadHandler(body, "application/octet-stream"),
		map[string]string{"Accept-Encoding": "zipline"})

	if got := rec.Header().Get("Content-Encoding"); got != "zipline" {
		t.Fatalf("Content-Encoding = %q, want zipline", got)
	}
	if got := rec.Header().Get("Vary"); !strings.Contains(got, "Accept-Encoding") {
		t.Fatalf("Vary = %q, want Accept-Encoding", got)
	}
	if rec.Header().Get("Content-Length") != "" {
		t.Fatalf("Content-Length survived recoding")
	}
	comp := rec.Body.Bytes()
	if len(comp) >= len(body) {
		t.Fatalf("compressed %d bytes >= identity %d", len(comp), len(body))
	}
	back, err := zipline.DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, body) {
		t.Fatal("round trip mismatch")
	}
}

// TestMiddlewareGating is the edge-case table: every row must come
// back identity, body intact.
func TestMiddlewareGating(t *testing.T) {
	dict, err := zipline.TrainDict(sensorPayload(2, 32<<10), zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	body := sensorPayload(3, 8<<10)
	small := body[:100]

	cases := []struct {
		name string
		opts []ziphttp.Option
		h    http.Handler
		hdr  map[string]string
		want []byte
	}{
		{
			name: "client does not advertise support",
			h:    payloadHandler(body, "application/octet-stream"),
			hdr:  map[string]string{"Accept-Encoding": "gzip, br"},
			want: body,
		},
		{
			name: "client advertises with q=0",
			h:    payloadHandler(body, "application/octet-stream"),
			hdr:  map[string]string{"Accept-Encoding": "zipline;q=0"},
			want: body,
		},
		{
			name: "below minimum size",
			h:    payloadHandler(small, "application/octet-stream"),
			hdr:  map[string]string{"Accept-Encoding": "zipline"},
			want: small,
		},
		{
			name: "non-matching content type (allowlist)",
			opts: []ziphttp.Option{ziphttp.WithContentTypes("application/json")},
			h:    payloadHandler(body, "text/html"),
			hdr:  map[string]string{"Accept-Encoding": "zipline"},
			want: body,
		},
		{
			name: "already entropy-coded type (default blocklist)",
			h:    payloadHandler(body, "image/png"),
			hdr:  map[string]string{"Accept-Encoding": "zipline"},
			want: body,
		},
		{
			name: "handler already set Content-Encoding",
			h: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Encoding", "br")
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Write(body)
			}),
			hdr:  map[string]string{"Accept-Encoding": "zipline"},
			want: body,
		},
		{
			name: "dict mismatch falls back to identity",
			opts: []ziphttp.Option{ziphttp.WithDict(dict)},
			h:    payloadHandler(body, "application/octet-stream"),
			hdr: map[string]string{
				"Accept-Encoding": "zipline",
				"Zipline-Dict":    "deadbeef",
			},
			want: body,
		},
		{
			name: "dict server, client holds none",
			opts: []ziphttp.Option{ziphttp.WithDict(dict)},
			h:    payloadHandler(body, "application/octet-stream"),
			hdr:  map[string]string{"Accept-Encoding": "zipline"},
			want: body,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wrap, err := ziphttp.NewMiddleware(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rec := serve(t, wrap, tc.h, tc.hdr)
			if tc.name == "handler already set Content-Encoding" {
				if got := rec.Header().Get("Content-Encoding"); got != "br" {
					t.Fatalf("Content-Encoding = %q, want br untouched", got)
				}
			} else if got := rec.Header().Get("Content-Encoding"); got != "" {
				t.Fatalf("Content-Encoding = %q, want identity", got)
			}
			if !bytes.Equal(rec.Body.Bytes(), tc.want) {
				t.Fatalf("identity body corrupted: got %d bytes, want %d",
					rec.Body.Len(), len(tc.want))
			}
		})
	}
}

func TestMiddlewareDictNegotiation(t *testing.T) {
	corpusA := sensorPayload(10, 32<<10)
	corpusB := sensorPayload(11, 32<<10)
	dictA, err := zipline.TrainDict(corpusA, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dictB, err := zipline.TrainDict(corpusB, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrap, err := ziphttp.NewMiddleware(ziphttp.WithDict(dictA), ziphttp.WithDict(dictB))
	if err != nil {
		t.Fatal(err)
	}
	body := sensorPayload(11, 8<<10) // dictB's distribution

	// Client holds only dictB: the server must pick it and name it.
	rec := serve(t, wrap, payloadHandler(body, "application/octet-stream"), map[string]string{
		"Accept-Encoding": "zipline",
		"Zipline-Dict":    ziphttp.FormatDictID(dictB.ID()),
	})
	if got := rec.Header().Get("Content-Encoding"); got != "zipline" {
		t.Fatalf("Content-Encoding = %q, want zipline", got)
	}
	if got := rec.Header().Get("Zipline-Dict"); got != ziphttp.FormatDictID(dictB.ID()) {
		t.Fatalf("response Zipline-Dict = %q, want %s", got, ziphttp.FormatDictID(dictB.ID()))
	}
	if !strings.Contains(rec.Header().Get("Vary"), "Zipline-Dict") {
		t.Fatalf("Vary = %q, want Zipline-Dict listed", rec.Header().Get("Vary"))
	}
	zr, err := zipline.NewReader(bytes.NewReader(rec.Body.Bytes()), zipline.WithDict(dictB))
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, body) {
		t.Fatal("dict round trip mismatch")
	}

	// Client holds both: registration order (dictA first) wins.
	rec = serve(t, wrap, payloadHandler(body, "application/octet-stream"), map[string]string{
		"Accept-Encoding": "zipline",
		"Zipline-Dict":    ziphttp.FormatDictID(dictB.ID()) + "," + ziphttp.FormatDictID(dictA.ID()),
	})
	if got := rec.Header().Get("Zipline-Dict"); got != ziphttp.FormatDictID(dictA.ID()) {
		t.Fatalf("preference order: response dict %q, want %s", got, ziphttp.FormatDictID(dictA.ID()))
	}
}

// TestMiddlewareFlushStreams pins the http.Flusher path: a streaming
// handler below the size gate still compresses (the gate is waived on
// Flush) and every flushed segment round-trips.
func TestMiddlewareFlushStreams(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware(ziphttp.WithMinSize(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	seg := sensorPayload(4, 320)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		f := w.(http.Flusher)
		for i := 0; i < 10; i++ {
			w.Write(seg)
			f.Flush()
		}
	})
	rec := serve(t, wrap, h, map[string]string{"Accept-Encoding": "zipline"})
	if got := rec.Header().Get("Content-Encoding"); got != "zipline" {
		t.Fatalf("Content-Encoding = %q, want zipline (gate waived on Flush)", got)
	}
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	back, err := zipline.DecompressBytes(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, bytes.Repeat(seg, 10)) {
		t.Fatal("streamed round trip mismatch")
	}
}

// TestMiddlewareReadFrom drives the io.ReaderFrom path
// (http.ServeContent uses io.Copy, which prefers ReadFrom) and checks
// compression still applies.
func TestMiddlewareReadFrom(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		t.Fatal(err)
	}
	body := sensorPayload(5, 16<<10)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		rf := w.(io.ReaderFrom)
		if _, err := rf.ReadFrom(bytes.NewReader(body)); err != nil {
			t.Errorf("ReadFrom: %v", err)
		}
	})
	rec := serve(t, wrap, h, map[string]string{"Accept-Encoding": "zipline"})
	if got := rec.Header().Get("Content-Encoding"); got != "zipline" {
		t.Fatalf("Content-Encoding = %q, want zipline", got)
	}
	back, err := zipline.DecompressBytes(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, body) {
		t.Fatal("ReadFrom round trip mismatch")
	}
}

// TestMiddlewareStatusCodes checks WriteHeader deferral: explicit
// status codes survive both paths, and no-body codes never compress.
func TestMiddlewareStatusCodes(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		t.Fatal(err)
	}
	body := sensorPayload(6, 8<<10)

	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusTeapot)
		w.Write(body)
	})
	rec := serve(t, wrap, h, map[string]string{"Accept-Encoding": "zipline"})
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status %d, want 418", rec.Code)
	}
	if rec.Header().Get("Content-Encoding") != "zipline" {
		t.Fatal("418 with a large body should still compress")
	}

	h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	rec = serve(t, wrap, h, map[string]string{"Accept-Encoding": "zipline"})
	if rec.Code != http.StatusNoContent || rec.Body.Len() != 0 {
		t.Fatalf("204: code %d body %d", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get("Content-Encoding") != "" {
		t.Fatal("204 must not carry Content-Encoding")
	}
}

// TestMiddlewareHijack checks the Hijacker passthrough over a real
// server connection.
func TestMiddlewareHijack(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		t.Fatal(err)
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("wrapper lost http.Hijacker")
			return
		}
		conn, brw, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		defer conn.Close()
		brw.WriteString("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nraw!\n")
		brw.Flush()
	})
	srv := httptest.NewServer(wrap(h))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Accept-Encoding", "zipline")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if string(got) != "raw!\n" {
		t.Fatalf("hijacked body %q", got)
	}
}

// TestMiddlewareHeadRequest: HEAD responses pass through untouched.
func TestMiddlewareHeadRequest(t *testing.T) {
	wrap, err := ziphttp.NewMiddleware()
	if err != nil {
		t.Fatal(err)
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", "8192")
	})
	req := httptest.NewRequest("HEAD", "http://gw.test/", nil)
	req.Header.Set("Accept-Encoding", "zipline")
	rec := httptest.NewRecorder()
	wrap(h).ServeHTTP(rec, req)
	if rec.Header().Get("Content-Encoding") != "" {
		t.Fatal("HEAD response gained Content-Encoding")
	}
	if rec.Header().Get("Content-Length") != "8192" {
		t.Fatal("HEAD lost Content-Length")
	}
}

func TestMiddlewareOptionValidation(t *testing.T) {
	if _, err := ziphttp.NewMiddleware(ziphttp.WithMinSize(-1)); err == nil {
		t.Fatal("negative min size accepted")
	}
	if _, err := ziphttp.NewMiddleware(ziphttp.WithDict(nil)); err == nil {
		t.Fatal("nil dict accepted")
	}
	if _, err := ziphttp.NewMiddleware(ziphttp.WithContentTypes("html")); err == nil {
		t.Fatal("non-media-type accepted")
	}
	dict, err := zipline.TrainDict(sensorPayload(7, 32<<10), zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ziphttp.NewMiddleware(ziphttp.WithDict(dict), ziphttp.WithDict(dict)); err == nil {
		t.Fatal("duplicate dict accepted")
	}
	// Conflicting config × dict training point must surface at
	// construction, exactly like zipline.NewWriter.
	if _, err := ziphttp.NewMiddleware(ziphttp.WithDict(dict),
		ziphttp.WithConfig(zipline.Config{M: 10})); err == nil {
		t.Fatal("conflicting config accepted")
	}
}
