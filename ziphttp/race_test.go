//go:build race

package ziphttp

// raceEnabled reports that this binary was built with the race
// detector, which changes inlining and escape behaviour enough to
// perturb allocation counts.
const raceEnabled = true
