package ziphttp_test

import (
	"bytes"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"zipline"
	"zipline/ziphttp"
)

// tcpPair returns two ends of a real loopback TCP connection, so the
// half-close semantics under test (CloseWrite) actually exist.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ac := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ac <- accepted{c, err}
	}()
	dialer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ac
	if a.err != nil {
		dialer.Close()
		t.Fatal(a.err)
	}
	t.Cleanup(func() {
		dialer.Close()
		a.c.Close()
	})
	return dialer, a.c
}

// bridgePair builds the paper's deployment in miniature over loopback
// TCP: application A ↔ proxy A ↔ peer link ↔ proxy B ↔ application B.
func bridgePair(t *testing.T, opts ...ziphttp.Option) (appA, appB net.Conn) {
	t.Helper()
	pA, err := ziphttp.NewProxy(opts...)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := ziphttp.NewProxy(opts...)
	if err != nil {
		t.Fatal(err)
	}
	appA, innerA := tcpPair(t)
	linkA, linkB := tcpPair(t)
	appB, innerB := tcpPair(t)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); pA.Bridge(innerA, linkA) }()
	go func() { defer wg.Done(); pB.Bridge(innerB, linkB) }()
	t.Cleanup(func() {
		appA.Close()
		appB.Close()
		wg.Wait()
	})
	return appA, appB
}

func TestProxyTCPRoundTrip(t *testing.T) {
	appA, appB := bridgePair(t)
	payload := sensorPayload(30, 64<<10)
	go func() {
		appA.Write(payload)
		appA.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(appB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("proxy stream mismatch: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestProxyDuplexEcho(t *testing.T) {
	appA, appB := bridgePair(t)
	// appB echoes everything back.
	go io.Copy(appB, appB)

	msg := sensorPayload(31, 8<<10)
	var got []byte
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		_, err := io.ReadFull(appA, buf)
		got = buf
		done <- err
	}()
	if _, err := appA.Write(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("echo timed out")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("duplex echo mismatch")
	}
}

func TestProxySharedDict(t *testing.T) {
	corpus := sensorPayload(32, 64<<10)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	appA, appB := bridgePair(t, ziphttp.WithDict(dict))
	msg := sensorPayload(32, 16<<10)
	go func() {
		appA.Write(msg)
		appA.Close()
	}()
	got, err := io.ReadAll(appB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("shared-dict proxy stream mismatch")
	}
}

// TestProxyHalfClose pins the drain semantics: half-closing the sending
// application's connection finishes the container in flight and
// propagates as a half-close to the receiving application — which can
// still answer over the reverse direction afterwards. No stranded
// bytes, no hang.
func TestProxyHalfClose(t *testing.T) {
	appA, appB := bridgePair(t)
	msg := sensorPayload(33, 40<<10)
	reply := sensorPayload(36, 4<<10)
	go func() {
		appA.Write(msg)
		appA.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(appB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("half-close drain: got %d bytes, want %d", len(got), len(msg))
	}
	// The reverse direction must still be open.
	go func() {
		appB.Write(reply)
		appB.(*net.TCPConn).CloseWrite()
	}()
	back, err := io.ReadAll(appA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, reply) {
		t.Fatal("reverse direction died with the forward half-close")
	}
}

// TestProxySegmentLatency pins the Flush-per-segment behaviour: a small
// write is deliverable to the far application without the sender
// closing — the stream cuts through.
func TestProxySegmentLatency(t *testing.T) {
	appA, appB := bridgePair(t)
	// One chunk-aligned segment so nothing is stuck in a partial chunk.
	seg := sensorPayload(34, 512)
	errc := make(chan error, 1)
	go func() {
		_, err := appA.Write(seg)
		errc <- err
	}()
	buf := make([]byte, len(seg))
	appB.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(appB, buf); err != nil {
		t.Fatalf("segment did not cut through before close: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, seg) {
		t.Fatal("segment mismatch")
	}
}

// TestProxyBridgeTeardown pins that an abrupt peer-link failure tears
// the bridge down without leaking goroutines — including over
// transports with no half-close at all (net.Pipe).
func TestProxyBridgeTeardown(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p, err := ziphttp.NewProxy()
		if err != nil {
			t.Fatal(err)
		}
		app, inner := net.Pipe()
		linkA, linkB := net.Pipe()
		done := make(chan struct{})
		go func() {
			p.Bridge(inner, linkA)
			close(done)
		}()
		app.Write(sensorPayload(35, 1024))
		// Kill the peer link mid-stream: both directions must unwind.
		linkB.Close()
		app.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("bridge leaked after peer-link failure")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestProxyManyConnections reuses one proxy pair's pools across
// sequential bridges so engines are re-served via Reset.
func TestProxyManyConnections(t *testing.T) {
	pA, err := ziphttp.NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	pB, err := ziphttp.NewProxy()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		appA, innerA := tcpPair(t)
		linkA, linkB := tcpPair(t)
		appB, innerB := tcpPair(t)
		go pA.Bridge(innerA, linkA)
		go pB.Bridge(innerB, linkB)
		msg := sensorPayload(int64(40+i), 4<<10)
		go func() {
			appA.Write(msg)
			appA.Close()
		}()
		got, err := io.ReadAll(appB)
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("conn %d: mismatch", i)
		}
		appB.Close()
	}
}
