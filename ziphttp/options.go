package ziphttp

import (
	"fmt"
	"strconv"
	"strings"

	"zipline"
)

// Standard header and token names of the gateway protocol (see the
// package documentation for the negotiation rules).
const (
	// ContentEncoding is the content-coding token responses carry in
	// Content-Encoding and clients advertise in Accept-Encoding.
	ContentEncoding = "zipline"
	// DictHeader names the dictionary-negotiation header: a request
	// lists the dictionary identities the client holds, a compressed
	// response names the one the stream was encoded against.
	DictHeader = "Zipline-Dict"
)

// DefaultMinSize is the response-size gate applied when WithMinSize is
// not given: bodies below it are served identity. Eight chunks — below
// that, the container header plus cold-dictionary misses typically
// cost more than they save.
const DefaultMinSize = 256

// Option configures a middleware, Transport or Proxy.
type Option func(*settings) error

// settings is the resolved option state shared by the three entry
// points.
type settings struct {
	cfg      zipline.Config
	cfgSet   bool
	dicts    []*zipline.Dict
	minSize  int
	types    []string
	typesSet bool
}

// WithConfig selects the GD operating point for dictless compression
// (the zero Config is the paper's deployment: 32-byte chunks, 15-bit
// identifiers). When dictionaries are registered they fix the
// configuration; combining both is validated at construction exactly
// as zipline.NewWriter does.
func WithConfig(cfg zipline.Config) Option {
	return func(s *settings) error {
		s.cfg, s.cfgSet = cfg, true
		return nil
	}
}

// WithDict registers a shared pre-trained dictionary. The option may
// be repeated — one dictionary per tenant — and registration order is
// the server's preference order during negotiation. For a Transport,
// registered dictionaries are the ones advertised and accepted; for a
// Proxy, at most one may be given (both ends of a bridge must hold
// it).
func WithDict(d *zipline.Dict) Option {
	return func(s *settings) error {
		if d == nil {
			return fmt.Errorf("ziphttp: WithDict(nil)")
		}
		for _, have := range s.dicts {
			if have.ID() == d.ID() {
				return fmt.Errorf("ziphttp: dictionary %08x registered twice", d.ID())
			}
		}
		s.dicts = append(s.dicts, d)
		return nil
	}
}

// WithMinSize sets the response-size gate: bodies shorter than n bytes
// are served identity. 0 disables the gate; the default is
// DefaultMinSize. The gate is waived when a handler Flushes before n
// bytes have accumulated — a streaming response has no known size to
// gate on.
func WithMinSize(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("ziphttp: minimum size %d out of range", n)
		}
		s.minSize = n
		return nil
	}
}

// WithContentTypes restricts compression to the listed media types. An
// entry ending in "/" matches the whole top-level type ("text/"); any
// other entry matches the exact media type, parameters ignored
// ("application/json" matches "application/json; charset=utf-8").
// Without the option every media type compresses except a small
// blocklist of formats that are already entropy-coded (images, video,
// audio, archives).
func WithContentTypes(types ...string) Option {
	return func(s *settings) error {
		if len(types) == 0 {
			return fmt.Errorf("ziphttp: WithContentTypes needs at least one type")
		}
		s.types = s.types[:0]
		for _, t := range types {
			t = strings.ToLower(strings.TrimSpace(t))
			if t == "" || (strings.Contains(t, "/") == false) {
				return fmt.Errorf("ziphttp: %q is not a media type", t)
			}
			s.types = append(s.types, t)
		}
		s.typesSet = true
		return nil
	}
}

// resolveOptions folds opts over the defaults.
func resolveOptions(opts []Option) (settings, error) {
	s := settings{minSize: DefaultMinSize}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}

// ziplineOptions translates the settings into zipline options for one
// encoder or decoder variant (dict may be nil for the dictless one).
func (s *settings) ziplineOptions(d *zipline.Dict) []zipline.Option {
	var opts []zipline.Option
	if s.cfgSet {
		opts = append(opts, zipline.WithConfig(s.cfg))
	}
	if d != nil {
		opts = append(opts, zipline.WithDict(d))
	}
	return opts
}

// alreadyCoded lists media types that are themselves entropy-coded:
// recoding them wastes cycles for ~1.0 ratios, so the default gate
// passes them through.
var alreadyCoded = []string{
	"image/", "video/", "audio/", "font/",
	"application/zip", "application/gzip", "application/zstd",
	"application/x-bzip2", "application/x-xz", "application/x-7z-compressed",
	"application/pdf", "application/wasm",
}

// compressibleType applies the content-type gate to a raw
// Content-Type header value.
func (s *settings) compressibleType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.ToLower(strings.TrimSpace(ct))
	if s.typesSet {
		for _, t := range s.types {
			if t == ct || (strings.HasSuffix(t, "/") && strings.HasPrefix(ct, t)) {
				return true
			}
		}
		return false
	}
	for _, t := range alreadyCoded {
		if t == ct || (strings.HasSuffix(t, "/") && strings.HasPrefix(ct, t)) {
			return false
		}
	}
	return true
}

// FormatDictID renders a dictionary identity the way the Zipline-Dict
// header carries it: 8 lower-case hex digits.
func FormatDictID(id uint32) string {
	return fmt.Sprintf("%08x", id)
}

// parseDictID parses one Zipline-Dict list entry.
func parseDictID(s string) (uint32, bool) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 16, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

// acceptsZipline reports whether an Accept-Encoding header value
// offers the zipline coding with a non-zero quality.
func acceptsZipline(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		name, q, _ := strings.Cut(part, ";")
		if strings.ToLower(strings.TrimSpace(name)) != ContentEncoding {
			continue
		}
		q = strings.TrimSpace(q)
		if qv, ok := strings.CutPrefix(q, "q="); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(qv), 64); err == nil && f == 0 {
				return false
			}
		}
		return true
	}
	return false
}

// chooseDict picks the first server dictionary the client's
// Zipline-Dict header advertises, in registration (preference) order.
func chooseDict(dicts []*zipline.Dict, held string) *zipline.Dict {
	if len(dicts) == 0 || held == "" {
		return nil
	}
	for _, d := range dicts {
		want := d.ID()
		for _, entry := range strings.Split(held, ",") {
			if id, ok := parseDictID(entry); ok && id == want {
				return d
			}
		}
	}
	return nil
}
