package ziphttp

import (
	"bytes"
	"io"
	"testing"

	"zipline"
)

// glitchPayload is a sensor-shaped buffer: a handful of 32-byte bases
// repeated with single-bit glitches, the workload zipline's transforms
// are built for.
func glitchPayload(seed int64, size int) []byte {
	const chunk = 32
	bases := make([][]byte, 8)
	s := uint64(seed)*2862933555777941757 + 3037000493
	rnd := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := range bases {
		b := make([]byte, chunk)
		for j := range b {
			b[j] = byte(rnd())
		}
		bases[i] = b
	}
	out := make([]byte, 0, size)
	for len(out) < size {
		c := append([]byte(nil), bases[rnd()%8]...)
		c[rnd()%chunk] ^= 1 << (rnd() % 8)
		out = append(out, c...)
	}
	return out[:size]
}

// TestPooledWriterZeroAllocs pins the steady-state invariant the
// gateway's throughput depends on: once the pools are warm and the
// shared dictionary covers the traffic (every chunk a hit — a miss
// grows the dynamic dictionary, which is allocation by design), the
// acquire → encode → release cycle for a response allocates nothing.
func TestPooledWriterZeroAllocs(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately drops puts at random under the race
		// detector, so pooled cycles cannot be pinned there; the
		// non-race build enforces this invariant.
		t.Skip("sync.Pool drops puts randomly under the race detector")
	}
	corpus := glitchPayload(1, 64<<10)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := resolveOptions([]Option{WithDict(dict)})
	if err != nil {
		t.Fatal(err)
	}
	pools, err := newEnginePools(set)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk-aligned slice of the training corpus: all hits.
	payload := corpus[:32<<10]
	var sink bytes.Buffer
	var misses uint64
	cycle := func() {
		sink.Reset()
		zw := pools.getWriter(dict, &sink)
		if _, err := zw.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		misses = zw.Stats.Misses
		pools.putWriter(dict, zw)
	}
	// Warm the pool (and sync.Pool's per-P caches).
	for i := 0; i < 8; i++ {
		cycle()
	}
	if misses != 0 {
		t.Fatalf("warm dictionary missed %d chunks — payload not covered", misses)
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("pooled writer cycle allocates: %v allocs/op, want 0", avg)
	}
}

// TestPooledReaderZeroAllocs pins the same invariant for the decode
// path the transport and proxy ride on.
func TestPooledReaderZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis; allocation pin runs in the non-race build")
	}
	corpus := glitchPayload(1, 64<<10)
	dict, err := zipline.TrainDict(corpus, zipline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := resolveOptions([]Option{WithDict(dict)})
	if err != nil {
		t.Fatal(err)
	}
	pools, err := newEnginePools(set)
	if err != nil {
		t.Fatal(err)
	}
	var compressed bytes.Buffer
	zw := pools.getWriter(dict, &compressed)
	if _, err := zw.Write(corpus[:32<<10]); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	pools.putWriter(dict, zw)

	src := bytes.NewReader(compressed.Bytes())
	out := make([]byte, 64<<10)
	cycle := func() {
		src.Seek(0, io.SeekStart)
		zr := pools.getReader(dict, src)
		for {
			_, err := zr.Read(out)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		pools.putReader(dict, zr)
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("pooled reader cycle allocates: %v allocs/op, want 0", avg)
	}
}
