package ziphttp

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"zipline"
)

// Transport is an http.RoundTripper that advertises zipline support on
// every request (plus the identities of the dictionaries it holds) and
// transparently decompresses zipline-coded responses, handing the
// caller the identity body it would have seen without the gateway.
// Decoders are pooled per dictionary and re-served via Reset.
//
// Construct with NewTransport; the zero value is not usable.
type Transport struct {
	base   http.RoundTripper
	set    settings
	pools  *enginePools
	advert string // precomputed Zipline-Dict request value
}

// NewTransport wraps base (nil means http.DefaultTransport) so its
// responses are transparently decompressed. WithDict registers the
// dictionaries this client holds — a server only serves
// dictionary-framed streams the client advertised, so decoding can
// never hit ErrDictRequired; a response naming an unheld dictionary is
// a protocol violation and surfaces as an error from Read.
func NewTransport(base http.RoundTripper, opts ...Option) (*Transport, error) {
	set, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	pools, err := newEnginePools(set)
	if err != nil {
		return nil, err
	}
	t := &Transport{base: base, set: set, pools: pools}
	ids := make([]string, len(set.dicts))
	for i, d := range set.dicts {
		ids[i] = FormatDictID(d.ID())
	}
	t.advert = strings.Join(ids, ",")
	return t, nil
}

// RoundTrip implements http.RoundTripper. The request is cloned before
// the negotiation headers are added, per the RoundTripper contract.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	r2 := req.Clone(req.Context())
	if ae := r2.Header.Get("Accept-Encoding"); ae == "" {
		r2.Header.Set("Accept-Encoding", ContentEncoding)
	} else if !acceptsZipline(ae) {
		r2.Header.Set("Accept-Encoding", ae+", "+ContentEncoding)
	}
	if t.advert != "" {
		r2.Header.Set(DictHeader, t.advert)
	}
	base := t.base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(r2)
	if err != nil || resp.Header.Get("Content-Encoding") != ContentEncoding {
		return resp, err
	}

	var dict *zipline.Dict
	if id := resp.Header.Get(DictHeader); id != "" {
		v, ok := parseDictID(id)
		if ok {
			dict = t.pools.byID[v]
		}
		if dict == nil {
			resp.Body.Close()
			return nil, fmt.Errorf("ziphttp: response encoded against unheld dictionary %q", id)
		}
	}
	zr := t.pools.getReader(dict, resp.Body)
	resp.Body = &decompressedBody{zr: zr, raw: resp.Body, pools: t.pools, dict: dict}
	resp.Header.Del("Content-Encoding")
	resp.Header.Del("Content-Length")
	resp.Header.Del(DictHeader)
	resp.ContentLength = -1
	resp.Uncompressed = true
	return resp, nil
}

// decompressedBody streams the identity bytes out of a zipline-coded
// response body. The pooled decoder goes home only when the stream was
// drained to EOF before Close — the steady-state path; an early or
// concurrent Close (the cancellation path, where a Read may still be
// blocked on the connection) drops the decoder to the GC instead, so
// the pool never re-serves a reader another goroutine could still
// touch.
type decompressedBody struct {
	zr     *zipline.Reader
	raw    io.ReadCloser
	pools  *enginePools
	dict   *zipline.Dict
	eof    bool
	closed atomic.Bool
}

// Read implements io.Reader over the decoded stream.
func (b *decompressedBody) Read(p []byte) (int, error) {
	n, err := b.zr.Read(p)
	if err == io.EOF {
		b.eof = true
	}
	return n, err
}

// Close closes the network body (unblocking any pending Read, like any
// http response body) and recycles the decoder when it is provably
// idle. Safe to call more than once.
func (b *decompressedBody) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	if b.eof {
		b.pools.putReader(b.dict, b.zr)
	}
	return b.raw.Close()
}
