package zipline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// sensorLike builds a compressible test payload: many repeats of a few
// base chunks with single-bit glitches, the workload GD is built for.
// Shared with the external test package via export_test.go.
func sensorLike(t testing.TB, size int, seed int64) []byte {
	t.Helper()
	return sensorLikeData(size, seed)
}

func sensorLikeData(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := make([][]byte, 8)
	for i := range bases {
		bases[i] = make([]byte, 32)
		rng.Read(bases[i])
	}
	data := make([]byte, 0, size)
	for len(data) < size {
		chunk := append([]byte(nil), bases[rng.Intn(len(bases))]...)
		if rng.Intn(2) == 0 {
			chunk[rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
		}
		data = append(data, chunk...)
	}
	return data[:size]
}

func TestParallelRoundTripWorkersAndSizes(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, size := range []int{0, 1, 31, 32, 1000, defaultSegmentBytes,
			defaultSegmentBytes + 17, 3*defaultSegmentBytes + 5} {
			data := sensorLike(t, size, int64(size)+int64(workers))
			comp, err := CompressBytesParallel(data, Config{}, workers)
			if err != nil {
				t.Fatalf("workers=%d size=%d: compress: %v", workers, size, err)
			}
			// ParallelWriter → ParallelReader.
			pr, err := NewParallelReader(bytes.NewReader(comp))
			if err != nil {
				t.Fatalf("workers=%d size=%d: %v", workers, size, err)
			}
			back, err := io.ReadAll(pr)
			if err != nil {
				t.Fatalf("workers=%d size=%d: read: %v", workers, size, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("workers=%d size=%d: parallel round trip failed", workers, size)
			}
			// ParallelWriter → serial Reader (and DecompressBytes).
			back, err = DecompressBytes(comp)
			if err != nil {
				t.Fatalf("workers=%d size=%d: serial decode: %v", workers, size, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("workers=%d size=%d: serial round trip failed", workers, size)
			}
		}
	}
}

func TestParallelReaderReadsSerialStreams(t *testing.T) {
	data := sensorLike(t, 100_000, 9)
	comp, err := CompressBytes(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("v1 fallback round trip failed")
	}
	if pr.Stats.Chunks == 0 || pr.Stats.Hits == 0 {
		t.Fatalf("stats not forwarded: %+v", pr.Stats)
	}
}

func TestParallelWriterStats(t *testing.T) {
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(4)).Read(chunk)
	data := append(bytes.Repeat(chunk, 100), 1, 2, 3) // 100 chunks + 3-byte tail
	var buf bytes.Buffer
	pw, err := NewParallelWriter(&buf, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	// All 100 chunks share one basis, but each of the shards that saw
	// data learns it separately: one miss per active shard. 100 chunks
	// fit in one segment, so exactly one shard was active.
	if pw.Stats.Chunks != 100 || pw.Stats.Misses != 1 || pw.Stats.Hits != 99 || pw.Stats.TailBytes != 3 {
		t.Fatalf("writer stats = %+v", pw.Stats)
	}
	pr, err := NewParallelReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip failed")
	}
	if pr.Stats != pw.Stats {
		t.Fatalf("reader stats %+v != writer stats %+v", pr.Stats, pw.Stats)
	}
}

func TestParallelShardLockstepUnderEviction(t *testing.T) {
	// More distinct bases than dictionary slots, spread across several
	// segments and shards: every shard's encoder and decoder must walk
	// identical LRU evolutions.
	rng := rand.New(rand.NewSource(6))
	bases := make([][]byte, 40) // dictionary holds 2^4 = 16
	for i := range bases {
		bases[i] = make([]byte, 32)
		rng.Read(bases[i])
	}
	var data []byte
	for len(data) < 3*defaultSegmentBytes {
		data = append(data, bases[rng.Intn(len(bases))]...)
	}
	comp, err := CompressBytesParallel(data, Config{IDBits: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("lockstep eviction broke the sharded stream")
	}
}

func TestParallelSplitWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := sensorLike(t, 2*defaultSegmentBytes+999, 5)
	var buf bytes.Buffer
	pw, err := NewParallelWriter(&buf, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(10_000)
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := pw.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip failed")
	}
}

func TestParallelAllMSizes(t *testing.T) {
	data := sensorLike(t, 50_000, 7)
	for m := 3; m <= 15; m++ {
		comp, err := CompressBytesParallel(data, Config{M: m}, 4)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		back, err := DecompressBytes(comp)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("m=%d: round trip failed", m)
		}
	}
}

func TestParallelWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewParallelWriter(&buf, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := pw.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

// failAfterWriter fails every write once n bytes have passed through.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestParallelWriterPropagatesWriteErrors(t *testing.T) {
	before := runtime.NumGoroutine()
	wantErr := errors.New("disk full")
	data := sensorLike(t, 4*defaultSegmentBytes, 11)
	pw, err := NewParallelWriter(&failAfterWriter{n: defaultSegmentBytes / 2, err: wantErr}, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, werr := pw.Write(data)
	cerr := pw.Close()
	if !errors.Is(werr, wantErr) && !errors.Is(cerr, wantErr) {
		t.Fatalf("write err = %v, close err = %v, want %v surfaced", werr, cerr, wantErr)
	}
	// Close after a failed Write must release the worker and collector
	// goroutines (give them a moment to unwind).
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, got)
	}
}

func TestParallelStreamCorruptionDetected(t *testing.T) {
	data := sensorLike(t, 2*defaultSegmentBytes, 13)
	comp, err := CompressBytesParallel(data, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(c []byte) []byte) []byte {
		return f(append([]byte(nil), comp...))
	}
	cases := map[string][]byte{
		"truncated":  comp[:len(comp)-20],
		"no trailer": comp[:len(comp)-16],
		"zero shards": mutate(func(c []byte) []byte {
			c[8] = 0
			return c
		}),
		"out-of-order seq": mutate(func(c []byte) []byte {
			c[12+8] ^= 0xFF // seq word of the first group
			return c
		}),
		"bad shard": mutate(func(c []byte) []byte {
			c[12+12] = 200 // shard byte of the first group
			return c
		}),
	}
	for name, c := range cases {
		if _, err := DecompressBytes(c); err == nil {
			t.Errorf("serial decode of %s succeeded", name)
		}
		pr, err := NewParallelReader(bytes.NewReader(c))
		if err == nil {
			_, err = io.ReadAll(pr)
		}
		if err == nil {
			t.Errorf("parallel decode of %s succeeded", name)
		}
	}
}

func TestParallelReaderCloseEarly(t *testing.T) {
	data := sensorLike(t, 6*defaultSegmentBytes, 15)
	comp, err := CompressBytesParallel(data, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if _, err := pr.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Read(buf); err == nil {
		t.Fatal("read after close accepted")
	}
}

func TestCorruptShardCountDoesNotPreallocate(t *testing.T) {
	// A 12-byte forged v2 header claiming 255 shards at IDBits=24 must
	// not allocate 255 full-capacity dictionaries (~GBs) up front:
	// shard decoders are built lazily, so the header alone costs
	// nothing and decoding fails cleanly at the missing first group.
	hdr := []byte{'Z', 'L', 'G', 'D', streamV2, 8, 24, 1, 255, 0, 0, 0}
	if _, err := DecompressBytes(hdr); err == nil {
		t.Fatal("truncated hostile header decoded successfully")
	}
	pr, err := NewParallelReader(bytes.NewReader(hdr))
	if err == nil {
		_, err = io.ReadAll(pr)
	}
	if err == nil {
		t.Fatal("parallel decode of hostile header succeeded")
	}
}

func TestCraftedMultiShardStreamBoundedMemory(t *testing.T) {
	// A hand-built v2 stream with IDBits=24 and 255 shards, each shard
	// receiving one minimal group (a single all-zero miss record: tag 0,
	// dev 0, extra 0, zero basis = 257 bits for m=8). Decoder memory
	// must track the 255 inserted entries, not 255 × 2^24 id slots.
	stream := []byte{'Z', 'L', 'G', 'D', streamV2, 8, 24, 1, 255, 0, 0, 0}
	for i := 0; i < 255; i++ {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], 33)  // ceil(257/8)
		binary.LittleEndian.PutUint32(hdr[4:], 257) // bitLen
		binary.LittleEndian.PutUint32(hdr[8:], uint32(i))
		hdr[12] = byte(i)
		stream = append(stream, hdr[:]...)
		stream = append(stream, make([]byte, 33)...)
	}
	stream = append(stream, make([]byte, 16)...) // trailer

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out, err := DecompressBytes(stream)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 255*32 {
		t.Fatalf("decoded %d bytes, want %d", len(out), 255*32)
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 64<<20 {
		t.Fatalf("decoding 255 one-record shards allocated %d MB", alloc>>20)
	}
}

func TestParallelCompressionStaysClose(t *testing.T) {
	// Sharding splits the dictionary, so the parallel ratio may lag
	// the serial one, but on a repetitive workload it must stay in the
	// same regime (well below 0.5 where serial reaches ~0.15).
	data := sensorLike(t, 8*defaultSegmentBytes, 21)
	serial, err := CompressBytes(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressBytesParallel(data, Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sr := float64(len(serial)) / float64(len(data))
	prr := float64(len(par)) / float64(len(data))
	if prr > 3*sr+0.05 {
		t.Fatalf("parallel ratio %.3f too far above serial %.3f", prr, sr)
	}
}
