package zipline

import "bytes"

// One-shot encode/decode: the short-stream hot path of a gateway
// terminating many small flows. EncodeAll and DecodeAll borrow fully
// initialised single-shard engines from a per-Writer/per-Reader pool
// (dictionary reset to its frozen prefix, block buffer retained), so
// the steady state costs no per-call setup and — with a warm shared
// Dict — no allocations beyond the destination slice's growth.

// encState is a pooled one-shot encoder: a serial Writer bound to an
// in-memory append destination.
type encState struct {
	buf appendWriter
	w   *Writer
}

// EncodeAll compresses src as one complete stream (header through
// trailer) appended to dst, returning the extended slice. The output
// is byte-identical to streaming src through a serial Writer with the
// same options — workers do not apply to one-shot encodes; the
// Writer's Config and Dict do.
//
// EncodeAll is safe for concurrent use: any number of goroutines may
// call it on one Writer, including a Writer built as
// NewWriter(nil, ...) purely for this purpose. The receiver's
// streaming state and Stats are untouched.
func (zw *Writer) EncodeAll(src, dst []byte) []byte {
	st, _ := zw.ePool.Get().(*encState)
	if st == nil {
		set := zw.set
		set.workers = 1
		st = &encState{}
		st.w = newSerialWriter(nil, set, zw.codec)
	}
	st.buf.b = dst
	st.w.Reset(&st.buf)
	if _, err := st.w.Write(src); err != nil {
		// Unreachable: the destination is in-memory and chunking is
		// internal; an error here is a corrupted Writer invariant.
		panic("zipline: EncodeAll: " + err.Error())
	}
	if err := st.w.Close(); err != nil {
		panic("zipline: EncodeAll: " + err.Error())
	}
	out := st.buf.b
	st.buf.b = nil
	zw.ePool.Put(st)
	return out
}

// decState is a pooled one-shot decoder: a serial Reader over an
// in-memory source.
type decState struct {
	br  bytes.Reader
	sub *Reader
}

// DecodeAll decompresses the complete stream in src, appending the
// decoded bytes to dst and returning the extended slice. On error dst
// is returned unextended. Any container version is accepted (sharded
// streams decode serially); a dictionary-framed stream requires the
// Reader to carry the matching Dict.
//
// On a Reader with WithWorkers(n > 1), an indexed (WithIndex) stream
// is decoded by n workers, one checkpoint segment at a time, writing
// directly into disjoint spans of the output buffer — serial-written
// streams finally decode in parallel. Everything else falls back to
// the serial pooled path below.
//
// DecodeAll is safe for concurrent use: any number of goroutines may
// call it on one Reader, including a Reader built as
// NewReader(nil, ...) purely for this purpose. The receiver's
// streaming state and Stats are untouched.
func (zr *Reader) DecodeAll(src, dst []byte) ([]byte, error) {
	if zr.set.workers > 1 {
		if out, ok, err := zr.decodeAllIndexed(src, dst); ok {
			return out, err
		}
	}
	st, _ := zr.dPool.Get().(*decState)
	if st == nil {
		set := zr.set
		set.workers = 1
		st = &decState{sub: &Reader{set: set}}
	}
	st.br.Reset(src)
	st.sub.Reset(&st.br)
	out, err := st.sub.decodeAllInto(dst)
	st.br.Reset(nil) // do not retain src through the pool
	zr.dPool.Put(st)
	return out, err
}
