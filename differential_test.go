package zipline

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// Differential coverage of the four writer×reader pairings. The
// serial Writer→Reader path is the reference; every other
// combination — serial Writer→ParallelReader, ParallelWriter→serial
// Reader, ParallelWriter→ParallelReader — must reproduce the input
// byte for byte across shard counts 1–8 and input shapes from empty
// through multi-segment with a sub-chunk tail.

// decodeSerial drains a stream through the serial Reader.
func decodeSerial(t *testing.T, comp []byte) []byte {
	t.Helper()
	zr, err := NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// decodeParallel drains a stream through the ParallelReader.
func decodeParallel(t *testing.T, comp []byte) []byte {
	t.Helper()
	pr, err := NewParallelReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	out, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDifferentialWriterReaderPairings(t *testing.T) {
	cfgs := []Config{{}, {M: 5, IDBits: 9}}
	sizes := []int{0, 1, 31, 32, 33, 1000, 4096, defaultSegmentBytes, defaultSegmentBytes + 17, 2*defaultSegmentBytes + 5}
	for ci, cfg := range cfgs {
		for _, size := range sizes {
			data := sensorLikeData(size, int64(1000+size+ci))
			t.Run(fmt.Sprintf("cfg%d/size%d", ci, size), func(t *testing.T) {
				// Reference: serial writer, serial reader.
				serialComp, err := CompressBytes(data, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref := decodeSerial(t, serialComp)
				if !bytes.Equal(ref, data) {
					t.Fatal("serial reference path corrupted the input")
				}

				// Serial writer → ParallelReader.
				if got := decodeParallel(t, serialComp); !bytes.Equal(got, ref) {
					t.Fatalf("serial→ParallelReader differs from serial path (%d vs %d bytes)", len(got), len(ref))
				}

				for workers := 1; workers <= 8; workers++ {
					parComp, err := CompressBytesParallel(data, cfg, workers)
					if err != nil {
						t.Fatalf("workers %d: %v", workers, err)
					}
					// ParallelWriter → serial Reader.
					if got := decodeSerial(t, parComp); !bytes.Equal(got, ref) {
						t.Fatalf("Parallel(%d)→Reader differs from serial path", workers)
					}
					// ParallelWriter → ParallelReader.
					if got := decodeParallel(t, parComp); !bytes.Equal(got, ref) {
						t.Fatalf("Parallel(%d)→ParallelReader differs from serial path", workers)
					}
				}
			})
		}
	}
}

// TestDifferentialRandomInputs: purely random (incompressible) inputs
// through every pairing — the dictionary never hits, so the record
// mix is all misses, the opposite regime of the sensor-like data.
func TestDifferentialRandomInputs(t *testing.T) {
	rng := newTestRand(4242)
	for trial := 0; trial < 20; trial++ {
		size := rng.Intn(3 * defaultSegmentBytes)
		data := make([]byte, size)
		rng.Read(data)
		workers := 1 + rng.Intn(8)

		serialComp, err := CompressBytes(data, Config{})
		if err != nil {
			t.Fatal(err)
		}
		parComp, err := CompressBytesParallel(data, Config{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		ref := decodeSerial(t, serialComp)
		if !bytes.Equal(ref, data) {
			t.Fatalf("trial %d: serial path corrupted input", trial)
		}
		for name, got := range map[string][]byte{
			"serial→parallel":   decodeParallel(t, serialComp),
			"parallel→serial":   decodeSerial(t, parComp),
			"parallel→parallel": decodeParallel(t, parComp),
		} {
			if !bytes.Equal(got, ref) {
				t.Fatalf("trial %d (%d bytes, %d workers): %s differs from serial path",
					trial, size, workers, name)
			}
		}
	}
}
