// Package zipline is a Go implementation of ZipLine, the in-network
// compression system of Vaucher et al. (CoNEXT '20): generalized
// deduplication (GD) with Hamming-code transformations computable by
// a switch CRC engine, a basis dictionary with short identifiers, and
// the packet formats and control-plane protocol that let a pair of
// programmable switches compress a link transparently at line rate.
//
// Three layers of API:
//
//   - Codec: chunk-level GD — Split a fixed-size chunk into
//     (basis, deviation, extra) and Merge it back losslessly.
//   - Writer/Reader: streaming GD compression of arbitrary byte
//     streams with an LRU basis dictionary, the file/IoT-gateway use
//     case of the GD literature the paper builds on. One reusable
//     pair serves every mode, selected by functional options:
//     WithWorkers picks serial or sharded-parallel engines, WithDict
//     shares a pre-trained basis dictionary (TrainDict) across any
//     number of encoders, Reset re-serves a pooled instance with zero
//     steady-state allocations, and EncodeAll/DecodeAll are the
//     concurrency-safe one-shot paths for short streams.
//   - SimulateLink: the full in-network system — two switch
//     pipelines, digests, a control plane with realistic learning
//     latency — on a deterministic discrete-event testbed.
//
// Deployment surfaces build on the streaming layer: zipline/ziphttp
// wraps it as HTTP middleware, client transport and a TCP proxy pair
// (the paper's switch pair as userspace infrastructure), and
// cmd/zipline-proxy ships the proxy as a binary.
//
// Invariants the tests pin, in rough order of importance:
// losslessness (every Split/Merge and Writer/Reader pair is a
// bijection, property-tested against random and adversarial inputs);
// determinism (identical bytes out for identical input, seed and
// config, for any worker count); and zero steady-state allocations on
// the pooled Reset hot path and the serial Reader (alloc-pinning
// tests plus the ziplint static checker). The container format is
// versioned (v1–v4) and every released version stays readable.
//
// The implementation details live in internal/ packages (bit-level
// CRC engine, Hamming codes, the Tofino pipeline model, the network
// simulator); see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package zipline
