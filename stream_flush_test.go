package zipline

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestWriterFlushStreams pins the Flush contract: after a flush, a
// decoder holding only the bytes written so far recovers every
// complete chunk, while a trailing partial chunk stays pending until
// Close emits it as the tail.
func TestWriterFlushStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 3*32+5) // three chunks plus a 5-byte partial
	rng.Read(data)

	var buf bytes.Buffer
	zw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Flush(); err != nil {
		t.Fatal(err)
	}

	// The flushed prefix decodes the three complete chunks, then hits
	// the cut (no trailer yet) — never a clean EOF.
	zr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, _ := io.ReadFull(zr, got)
	if n != 3*32 {
		t.Fatalf("flushed prefix yielded %d bytes, want %d", n, 3*32)
	}
	if !bytes.Equal(got[:n], data[:n]) {
		t.Fatalf("flushed prefix decoded wrong bytes")
	}

	// A second flush with nothing buffered writes nothing.
	before := buf.Len()
	if err := zw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Fatalf("empty flush wrote %d bytes", buf.Len()-before)
	}

	// Close emits the pending partial as the tail; the whole stream
	// round-trips.
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("round trip mismatch after flush")
	}
}

// TestWriterFlushBeforeInput forces the header out so a peer can
// validate the stream before the first payload byte.
func TestWriterFlushBeforeInput(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8 {
		t.Fatalf("header flush wrote %d bytes, want 8", buf.Len())
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if back, err := DecompressBytes(buf.Bytes()); err != nil || len(back) != 0 {
		t.Fatalf("empty flushed stream: %d bytes, err %v", len(back), err)
	}
}

// TestWriterFlushIndexed checks that flush-created groups are recorded
// in the trailing index like any other: the stream still seeks.
func TestWriterFlushIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 4096)
	rng.Read(data)

	var buf bytes.Buffer
	zw, err := NewWriter(&buf, WithIndex(1024))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 100 {
		end := off + 100
		if end > len(data) {
			end = len(data)
		}
		if _, err := zw.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
		if err := zw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	zr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := zr.Seek(3000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(zr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[3000:3512]) {
		t.Fatalf("seek after flushes decoded wrong bytes")
	}
}

// TestWriterFlushErrors pins the refusal paths: after Close, without a
// destination, and on the sharded engine.
func TestWriterFlushErrors(t *testing.T) {
	zw, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Flush(); err == nil {
		t.Fatal("Flush after Close succeeded")
	}

	if zw, err = NewWriter(nil); err != nil {
		t.Fatal(err)
	}
	if err := zw.Flush(); err == nil {
		t.Fatal("Flush without destination succeeded")
	}

	pw, err := NewWriter(&bytes.Buffer{}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Flush(); err == nil {
		t.Fatal("Flush on sharded writer succeeded")
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
}
