package zipline

import (
	"fmt"

	"zipline/internal/controlplane"
	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// LinkSimConfig drives SimulateLink: a host streams payloads through
// an encoding switch whose dictionary is learned on the fly by a
// simulated control plane — the full in-network deployment of the
// paper, timing included.
type LinkSimConfig struct {
	// Codec selects the GD operating point (zero value = paper's).
	Codec Config
	// ReplayPPS paces the sender (default 150,000 packets/s).
	ReplayPPS float64
	// Payloads returns the i-th payload, or nil to stop. Payloads
	// shorter than the chunk size pass through uncompressed.
	Payloads func(i int) []byte
	// Seed fixes simulation jitter (default 1).
	Seed int64
	// TTL, if positive, ages dictionary entries out after this many
	// nanoseconds of inactivity.
	TTL int64
}

// LinkSimResult reports what the far end of the link received.
type LinkSimResult struct {
	// Sent and Received count frames.
	Sent, Received uint64
	// InputPayloadBytes is the offered payload volume; OutputPayloadBytes
	// what crossed the compressed hop.
	InputPayloadBytes  uint64
	OutputPayloadBytes uint64
	// RawFrames, UncompressedFrames, CompressedFrames classify the
	// received traffic (paper packet types 1, 2, 3).
	RawFrames, UncompressedFrames, CompressedFrames uint64
	// BasesLearned is the number of dictionary entries installed by
	// the control plane.
	BasesLearned uint64
	// FirstCompressedNs is the virtual time of the first type 3
	// arrival (-1 if none), FirstUncompressedNs of the first type 2.
	FirstUncompressedNs, FirstCompressedNs int64
}

// Ratio returns output payload bytes over input payload bytes.
func (r LinkSimResult) Ratio() float64 {
	if r.InputPayloadBytes == 0 {
		return 0
	}
	return float64(r.OutputPayloadBytes) / float64(r.InputPayloadBytes)
}

// SimulateLink runs the in-network compression scenario to
// completion and returns the receiver's view. Deterministic for a
// given seed and payload sequence.
func SimulateLink(cfg LinkSimConfig) (LinkSimResult, error) {
	var res LinkSimResult
	if cfg.Payloads == nil {
		return res, fmt.Errorf("zipline: LinkSimConfig.Payloads is required")
	}
	ccfg := cfg.Codec.withDefaults()
	if err := ccfg.validate(); err != nil {
		return res, err
	}
	if cfg.ReplayPPS == 0 {
		cfg.ReplayPPS = 150_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	sim := netsim.NewSim(cfg.Seed)
	prog, err := zswitch.New(zswitch.Config{
		M:      ccfg.M,
		IDBits: ccfg.IDBits,
		TTLNs:  cfg.TTL,
		Roles:  map[tofino.Port]zswitch.Role{0: zswitch.RoleEncode},
		PortMap: map[tofino.Port]tofino.Port{
			0: 1,
		},
	})
	if err != nil {
		return res, err
	}
	pl, err := tofino.Load(tofino.Config{}, prog)
	if err != nil {
		return res, err
	}
	sw := netsim.NewSwitch(sim, netsim.SwitchConfig{}, pl)
	aNIC, swA := netsim.NewLink(sim, netsim.LinkConfig{}, "sender", "sw:0")
	bNIC, swB := netsim.NewLink(sim, netsim.LinkConfig{}, "receiver", "sw:1")
	src := packet.MAC{0x02, 0, 0, 0, 0, 0x0A}
	dst := packet.MAC{0x02, 0, 0, 0, 0, 0x0B}
	a := netsim.NewHost(sim, netsim.HostConfig{Name: "sender", MAC: src, MaxPPS: cfg.ReplayPPS}, aNIC)
	b := netsim.NewHost(sim, netsim.HostConfig{Name: "receiver", MAC: dst}, bNIC)
	sw.AttachPort(0, swA)
	sw.AttachPort(1, swB)

	cpCfg := controlplane.Config{IDBits: ccfg.IDBits}
	if cfg.TTL > 0 {
		cpCfg.SweepIntervalNs = cfg.TTL / 2
	}
	ctl, err := controlplane.New(sim, cpCfg, pl, pl, prog.Codec().BasisBits())
	if err != nil {
		return res, err
	}
	ctl.Bind(sw)

	var sent uint64
	var inBytes uint64
	a.Stream(0, 0, func(i uint64) []byte {
		p := cfg.Payloads(int(i))
		if p == nil {
			return nil
		}
		sent++
		inBytes += uint64(len(p))
		return packet.Frame(packet.Header{Dst: dst, Src: src, EtherType: packet.EtherTypeRaw}, p)
	})
	sim.Run()

	rx := b.Rx()
	res.Sent = sent
	res.Received = rx.Frames
	res.InputPayloadBytes = inBytes
	res.OutputPayloadBytes = rx.PayloadBytes
	res.RawFrames = rx.TypeFrames[packet.TypeRaw]
	res.UncompressedFrames = rx.TypeFrames[packet.TypeUncompressed]
	res.CompressedFrames = rx.TypeFrames[packet.TypeCompressed]
	res.BasesLearned = ctl.Stats().Learned
	res.FirstUncompressedNs = rx.FirstArrival[packet.TypeUncompressed]
	res.FirstCompressedNs = rx.FirstArrival[packet.TypeCompressed]
	return res, nil
}
