package zipline

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// --- Unified constructor / options -----------------------------------------

// TestUnifiedWriterWorkersOption: one Writer type serves both paths,
// selected by WithWorkers; every reader configuration decodes both.
func TestUnifiedWriterWorkersOption(t *testing.T) {
	data := sensorLikeData(2*defaultSegmentBytes+777, 51)
	for _, workers := range []int{1, 2, 5} {
		var buf bytes.Buffer
		zw, err := NewWriter(&buf, WithWorkers(workers), WithConfig(Config{}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		wantVersion := byte(streamV1)
		if workers > 1 {
			wantVersion = streamV2
		}
		if got := buf.Bytes()[4]; got != wantVersion {
			t.Fatalf("workers=%d: container version %d, want %d", workers, got, wantVersion)
		}
		back, err := DecompressBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("workers=%d: serial decode: %v", workers, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("workers=%d: round trip failed", workers)
		}
		zr, err := NewReader(bytes.NewReader(buf.Bytes()), WithWorkers(0))
		if err != nil {
			t.Fatal(err)
		}
		back, err = io.ReadAll(zr)
		if err != nil || !bytes.Equal(back, data) {
			t.Fatalf("workers=%d: parallel decode: %v", workers, err)
		}
	}
}

// TestConfigActsAsOption pins the compatibility contract: the
// pre-options call forms NewWriter(w, cfg) / positional Config still
// select the configuration.
func TestConfigActsAsOption(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, Config{M: 5, IDBits: 9})
	if err != nil {
		t.Fatal(err)
	}
	if zw.codec.cfg.M != 5 || zw.codec.cfg.IDBits != 9 {
		t.Fatalf("positional Config ignored: %+v", zw.codec.cfg)
	}
	if _, err := zw.Write([]byte("positional config")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[5] != 5 || buf.Bytes()[6] != 9 {
		t.Fatalf("header cfg = m%d id%d", buf.Bytes()[5], buf.Bytes()[6])
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := NewWriter(io.Discard, WithWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	dict := trainTestDict(t, Config{})
	if _, err := NewWriter(io.Discard, WithConfig(Config{M: 5}), WithDict(dict)); err == nil {
		t.Fatal("conflicting WithConfig+WithDict accepted")
	}
	// Matching explicit config is fine, in either order.
	if _, err := NewWriter(io.Discard, WithDict(dict), WithConfig(Config{})); err != nil {
		t.Fatal(err)
	}
	// Dict fixes the configuration when none is given.
	zw, err := NewWriter(io.Discard, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	if zw.codec.cfg != dict.Config() {
		t.Fatalf("writer cfg %+v != dict cfg %+v", zw.codec.cfg, dict.Config())
	}
}

// TestDeprecatedWrappersAreTheUnifiedTypes: the pre-options
// constructors return the same types, so pooled helpers written
// against either keep working.
func TestDeprecatedWrappersAreTheUnifiedTypes(t *testing.T) {
	pw, err := NewParallelWriter(io.Discard, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var _ *Writer = pw
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	comp, err := CompressBytesParallel([]byte("wrapper"), Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	var _ *Reader = pr
	defer pr.Close()
	back, err := io.ReadAll(pr)
	if err != nil || string(back) != "wrapper" {
		t.Fatalf("wrapper round trip: %q, %v", back, err)
	}
}

// TestNewParallelWriterKeepsEagerHeader pins the deprecated wrapper's
// original contract: the container header is written at construction
// and a failing destination surfaces there, not at the first Write.
func TestNewParallelWriterKeepsEagerHeader(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewParallelWriter(&buf, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 12 || buf.Bytes()[4] != streamV2 || buf.Bytes()[8] != 3 {
		t.Fatalf("header not written eagerly: %d bytes %x", buf.Len(), buf.Bytes())
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressBytes(buf.Bytes()); err != nil {
		t.Fatalf("empty eager-header stream: %v", err)
	}
	wantErr := errors.New("disk full")
	if _, err := NewParallelWriter(&failAfterWriter{n: 0, err: wantErr}, Config{}, 2); !errors.Is(err, wantErr) {
		t.Fatalf("constructor error = %v, want %v", err, wantErr)
	}
}

// --- Close/error-path audit -------------------------------------------------

// TestSerialWriterDoubleCloseReturnsFirstError pins the audit fix:
// a second Close must repeat the first flush error, not report
// success on a truncated stream.
func TestSerialWriterDoubleCloseReturnsFirstError(t *testing.T) {
	wantErr := errors.New("disk full")
	// The 8-byte v1 header fits; the block flush at Close fails.
	zw, err := NewWriter(&failAfterWriter{n: 8, err: wantErr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("first Close = %v, want %v", err, wantErr)
	}
	for i := 0; i < 2; i++ {
		if err := zw.Close(); !errors.Is(err, wantErr) {
			t.Fatalf("repeat Close = %v, want the first error", err)
		}
	}
}

// TestParallelWriterDoubleCloseReturnsFirstError: same contract on
// the sharded path, where the error is recorded by the collector.
func TestParallelWriterDoubleCloseReturnsFirstError(t *testing.T) {
	wantErr := errors.New("disk full")
	// The 12-byte v2 header fits; the first group write fails.
	zw, err := NewWriter(&failAfterWriter{n: 12, err: wantErr}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("first Close = %v, want %v", err, wantErr)
	}
	for i := 0; i < 2; i++ {
		if err := zw.Close(); !errors.Is(err, wantErr) {
			t.Fatalf("repeat Close = %v, want the first error", err)
		}
	}
}

// TestWriterDoubleCloseAfterSuccessStaysNil: the success side of
// idempotence, for both engines.
func TestWriterDoubleCloseAfterSuccessStaysNil(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var buf bytes.Buffer
		zw, err := NewWriter(&buf, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write([]byte("idempotent")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := zw.Close(); err != nil {
				t.Fatalf("workers=%d Close #%d: %v", workers, i+1, err)
			}
		}
		if back, err := DecompressBytes(buf.Bytes()); err != nil || string(back) != "idempotent" {
			t.Fatalf("workers=%d: %q, %v", workers, back, err)
		}
	}
}

// --- Pooled Reset ------------------------------------------------------------

func TestWriterResetServesNewStreams(t *testing.T) {
	for _, workers := range []int{1, 4} {
		zw, err := NewWriter(nil, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			data := sensorLikeData(defaultSegmentBytes+round*1000+13, int64(round+70))
			var buf bytes.Buffer
			zw.Reset(&buf)
			if _, err := zw.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			back, err := DecompressBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, round, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("workers=%d round %d: round trip failed", workers, round)
			}
			// Each stream must be self-contained: identical to a fresh
			// writer's output, so pooling can never leak dictionary
			// state between streams.
			fresh, err := NewWriter(nil, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			var fbuf bytes.Buffer
			fresh.Reset(&fbuf)
			fresh.Write(data)
			fresh.Close()
			if !bytes.Equal(buf.Bytes(), fbuf.Bytes()) {
				t.Fatalf("workers=%d round %d: pooled stream differs from fresh stream", workers, round)
			}
		}
	}
}

// TestWriterResetZeroAllocs pins the acceptance criterion: a pooled
// Reset + re-encode cycle with a warm shared dictionary allocates
// nothing in steady state.
func TestWriterResetZeroAllocs(t *testing.T) {
	corpus := sensorLikeData(1<<16, 81)
	dict := trainTestDict(t, Config{})
	zw, err := NewWriter(io.Discard, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	// Chunk-aligned all-hit payload: every basis is frozen in the dict.
	payload := corpus[:1<<15]
	cycle := func() {
		zw.Reset(io.Discard)
		if _, err := zw.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warmup: scratch growth is amortised setup, not steady state
	if zw.Stats.Misses != 0 {
		t.Fatalf("warm dictionary missed %d chunks — payload not covered by dict", zw.Stats.Misses)
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("pooled Reset+encode = %v allocs/op, want 0", allocs)
	}
}

func TestReaderResetReusesDecoders(t *testing.T) {
	data1 := sensorLikeData(100_000, 91)
	data2 := sensorLikeData(60_000, 92)
	comp1, _ := CompressBytes(data1, Config{})
	comp2, _ := CompressBytes(data2, Config{})
	zr, err := NewReader(bytes.NewReader(comp1))
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(back, data1) {
		t.Fatalf("first stream: %v", err)
	}
	decs := zr.decs
	zr.Reset(bytes.NewReader(comp2))
	if zr.Stats != (StreamStats{}) {
		t.Fatalf("Reset kept stats %+v", zr.Stats)
	}
	back, err = io.ReadAll(zr)
	if err != nil || !bytes.Equal(back, data2) {
		t.Fatalf("second stream: %v", err)
	}
	if len(zr.decs) != len(decs) || (decs[0] != nil && zr.decs[0] != decs[0]) {
		t.Fatal("Reset rebuilt decoders for a matching stream header")
	}
	// A different configuration must rebuild them.
	comp3, _ := CompressBytes(data2, Config{M: 5})
	zr.Reset(bytes.NewReader(comp3))
	back, err = io.ReadAll(zr)
	if err != nil || !bytes.Equal(back, data2) {
		t.Fatalf("third stream: %v", err)
	}
	if zr.codec.cfg.M != 5 {
		t.Fatalf("codec not rebuilt: %+v", zr.codec.cfg)
	}
}

// --- EncodeAll / DecodeAll ---------------------------------------------------

func TestEncodeAllMatchesStreamingOutput(t *testing.T) {
	data := sensorLikeData(70_000, 101)
	zw, err := NewWriter(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CompressBytes(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := zw.EncodeAll(data, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("EncodeAll differs from streaming output (%d vs %d bytes)", len(got), len(want))
	}
	// dst-append semantics preserve the prefix.
	prefix := []byte("prefix:")
	full := zw.EncodeAll(data, append([]byte(nil), prefix...))
	if !bytes.HasPrefix(full, prefix) || !bytes.Equal(full[len(prefix):], want) {
		t.Fatal("EncodeAll broke dst-append semantics")
	}
	zr, err := NewReader(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := zr.DecodeAll(got, []byte("out:"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(back, []byte("out:")) || !bytes.Equal(back[4:], data) {
		t.Fatal("DecodeAll round trip failed")
	}
	// Errors leave dst unextended.
	dst := []byte("keep")
	if out, err := zr.DecodeAll([]byte("not a stream"), dst); err == nil || !bytes.Equal(out, dst) {
		t.Fatalf("DecodeAll error path: out=%q err=%v", out, err)
	}
}

func TestEncodeAllOnParallelWriterStaysSerial(t *testing.T) {
	data := sensorLikeData(40_000, 111)
	zw, err := NewWriter(nil, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	comp := zw.EncodeAll(data, nil)
	if comp[4] != streamV1 {
		t.Fatalf("one-shot container version %d, want %d", comp[4], streamV1)
	}
	back, err := DecompressBytes(comp)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestDecodeAllReadsShardedStreams(t *testing.T) {
	data := sensorLikeData(3*defaultSegmentBytes+17, 121)
	comp, err := CompressBytesParallel(data, Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := NewReader(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := zr.DecodeAll(comp, nil)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("sharded DecodeAll: %v", err)
	}
}

// --- Shared pre-trained dictionaries ----------------------------------------

// trainTestDict trains a Dict covering the sensorLikeData generator's
// bases for a seed-81 corpus.
func trainTestDict(t testing.TB, cfg Config) *Dict {
	t.Helper()
	dict, err := TrainDict(sensorLikeData(1<<16, 81), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dict
}

func TestDictTrainSerializeLoad(t *testing.T) {
	dict := trainTestDict(t, Config{})
	if dict.Len() == 0 || dict.Len() > 1<<14 {
		t.Fatalf("dict holds %d bases", dict.Len())
	}
	raw := dict.Bytes()
	loaded, err := LoadDict(raw)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ID() != dict.ID() || loaded.Len() != dict.Len() || loaded.Config() != dict.Config() {
		t.Fatalf("loaded dict %#08x/%d != trained %#08x/%d", loaded.ID(), loaded.Len(), dict.ID(), dict.Len())
	}
	// Training is deterministic.
	again := trainTestDict(t, Config{})
	if again.ID() != dict.ID() {
		t.Fatal("training is not deterministic")
	}
	// Corrupt dictionaries are rejected.
	for name, mut := range map[string][]byte{
		"truncated":   raw[:len(raw)-5],
		"bad magic":   append([]byte("NOPE"), raw[4:]...),
		"bad version": append(append([]byte{}, raw[:4]...), append([]byte{9}, raw[5:]...)...),
		"bad count": func() []byte {
			c := append([]byte(nil), raw...)
			c[8], c[9], c[10], c[11] = 0xFF, 0xFF, 0xFF, 0xFF
			return c
		}(),
		"empty": {},
	} {
		if _, err := LoadDict(mut); err == nil {
			t.Errorf("%s: loaded successfully", name)
		}
	}
	if _, err := TrainDict([]byte("short"), Config{}); err == nil {
		t.Error("sub-chunk corpus accepted")
	}
}

// TestDictStreamRoundTripAndRejection pins the acceptance criterion:
// a dict-framed stream round-trips through readers holding the dict
// and is rejected cleanly by readers lacking (or holding the wrong)
// dict.
func TestDictStreamRoundTripAndRejection(t *testing.T) {
	dict := trainTestDict(t, Config{})
	data := sensorLikeData(2*defaultSegmentBytes+333, 82)
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		zw, err := NewWriter(&buf, WithDict(dict), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		comp := buf.Bytes()
		if comp[4] != streamV3 {
			t.Fatalf("workers=%d: version %d, want %d", workers, comp[4], streamV3)
		}
		// With the dict: serial and parallel readers, plus DecodeAll.
		for _, readWorkers := range []int{1, 3} {
			zr, err := NewReader(bytes.NewReader(comp), WithDict(dict), WithWorkers(readWorkers))
			if err != nil {
				t.Fatal(err)
			}
			back, err := io.ReadAll(zr)
			zr.Close()
			if err != nil || !bytes.Equal(back, data) {
				t.Fatalf("workers=%d read=%d: %v", workers, readWorkers, err)
			}
		}
		zr, _ := NewReader(nil, WithDict(dict))
		if back, err := zr.DecodeAll(comp, nil); err != nil || !bytes.Equal(back, data) {
			t.Fatalf("workers=%d DecodeAll: %v", workers, err)
		}
		// Without the dict: clean typed rejection.
		if _, err := DecompressBytes(comp); !errors.Is(err, ErrDictRequired) {
			t.Fatalf("workers=%d: dictless decode = %v, want ErrDictRequired", workers, err)
		}
		// With a different dict: mismatch.
		other, err := TrainDict(sensorLikeData(1<<15, 4242), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if other.ID() == dict.ID() {
			t.Fatal("distinct corpora trained identical dicts")
		}
		zr2, _ := NewReader(bytes.NewReader(comp), WithDict(other))
		if _, err := io.ReadAll(zr2); !errors.Is(err, ErrDictMismatch) {
			t.Fatalf("workers=%d: wrong-dict decode = %v, want ErrDictMismatch", workers, err)
		}
	}
}

// TestDictImprovesColdStart: the warm-dictionary regime of the paper —
// with the shared dict, the first occurrence of every hot basis is
// already a hit, so a short stream compresses like a long-lived one.
func TestDictImprovesColdStart(t *testing.T) {
	dict := trainTestDict(t, Config{})
	data := sensorLikeData(1<<12, 81) // short stream, bases covered by dict
	zwCold, _ := NewWriter(nil)
	zwWarm, _ := NewWriter(nil, WithDict(dict))
	cold := zwCold.EncodeAll(data, nil)
	warm := zwWarm.EncodeAll(data, nil)
	if len(warm) >= len(cold) {
		t.Fatalf("warm dict did not help: warm %d ≥ cold %d bytes", len(warm), len(cold))
	}
}

// TestSharedDictConcurrentEncodeAll is the -race hammer of the
// satellite list: one Dict, one Writer and one Reader shared by 8
// goroutines doing independent EncodeAll/DecodeAll round trips.
func TestSharedDictConcurrentEncodeAll(t *testing.T) {
	dict := trainTestDict(t, Config{})
	zw, err := NewWriter(nil, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	zr, err := NewReader(nil, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var comp, back []byte
			for i := 0; i < 30; i++ {
				data := sensorLikeData(4096+int(seed)*64, seed*100+int64(i))
				comp = zw.EncodeAll(data, comp[:0])
				var err error
				back, err = zr.DecodeAll(comp, back[:0])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", seed, i, err)
					return
				}
				if !bytes.Equal(back, data) {
					errs <- fmt.Errorf("goroutine %d iter %d: round trip mismatch", seed, i)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
