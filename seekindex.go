package zipline

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Seekable-container index (version 4, WithIndex). After the all-zero
// trailer group the Writer appends one footer:
//
//	"ZLIX" | u8 version (1) | u8 flags (0) | u16le reserved
//	u32le groupCount | u32le checkpointCount | u32le watermark
//	u64le uncompTotal | u64le trailerOff
//	groupCount      × { u64le compOff | u64le uncompOff }
//	checkpointCount × u32le groupIndex
//	u32le crc32 (IEEE, of every byte above)
//	u32le footerLen (whole footer, leading magic through trailing magic)
//	"XILZ"
//
// compOff is the byte offset of a group's header from the start of the
// container; uncompOff is the uncompressed offset of the group's first
// byte. trailerOff locates the end-of-stream trailer group, so the
// last group's extent is known without reading it. watermark is the
// frozen-prefix identifier watermark: at every checkpoint group the
// basis dictionary holds exactly the identifiers [0, watermark) of the
// shared pre-trained Dict (0 without one) — the Writer reset its
// dynamic entries there and marked the group with the in-band
// checkpoint group flag, so a checkpoint group can be decoded knowing
// nothing but the Dict. Checkpoints are what make the stream seekable
// and its decode parallel: any [checkpoint, next checkpoint) span of
// groups is independent of the rest of the stream.
//
// A reader finds the footer from the end of a seekable source: the
// last 8 bytes carry the footer length and a closing magic, and the
// CRC covers everything before them, so truncation or corruption
// anywhere in the footer is detected rather than misparsed. The
// footer sits after the trailer group, where a pre-index reader —
// which stops at the trailer — never reads, so indexed streams stay
// decodable by every stream-oriented consumer.
const (
	indexMagic    = "ZLIX"
	indexEndMagic = "XILZ"
	indexVersion  = 1

	indexFixedLen = 36 // leading magic through trailerOff
	indexTailLen  = 12 // crc | footerLen | closing magic

	// defaultCheckpointBytes is the uncompressed distance between
	// dictionary checkpoints under WithIndex(0): small enough that a
	// 64 KiB object fans out to four independent decode segments,
	// large enough that re-learning the dictionary after each reset
	// costs only a few percent on redundant workloads.
	defaultCheckpointBytes = 16 << 10

	// maxIndexGroups bounds attacker-declared footer sizes before any
	// allocation happens.
	maxIndexGroups = 1 << 26
)

// indexGroup locates one group: its header's byte offset in the
// compressed container and the uncompressed offset of its first byte.
type indexGroup struct{ compOff, uncompOff uint64 }

// streamIndex is a parsed (or, on the write side, accumulated) v4
// trailing index.
type streamIndex struct {
	watermark   uint32
	uncompTotal uint64
	trailerOff  uint64
	groups      []indexGroup
	checkpoints []uint32 // ascending group indices, [0] == 0 when groups exist
}

// appendFooter serializes the index in the trailing-footer layout.
func (ix *streamIndex) appendFooter(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, indexMagic...)
	dst = append(dst, indexVersion, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ix.groups)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ix.checkpoints)))
	dst = binary.LittleEndian.AppendUint32(dst, ix.watermark)
	dst = binary.LittleEndian.AppendUint64(dst, ix.uncompTotal)
	dst = binary.LittleEndian.AppendUint64(dst, ix.trailerOff)
	for _, g := range ix.groups {
		dst = binary.LittleEndian.AppendUint64(dst, g.compOff)
		dst = binary.LittleEndian.AppendUint64(dst, g.uncompOff)
	}
	for _, ck := range ix.checkpoints {
		dst = binary.LittleEndian.AppendUint32(dst, ck)
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dst)-start+8))
	return append(dst, indexEndMagic...)
}

// parseIndexFooter validates footer (the exact footer bytes) against
// the container's total size and returns the decoded index. Every
// structural invariant is checked up front — magics, CRC, length,
// monotonic offsets, checkpoint bounds — so decode paths can trust
// the offsets without re-validating.
func parseIndexFooter(footer []byte, streamSize uint64) (*streamIndex, error) {
	n := len(footer)
	if n < indexFixedLen+indexTailLen {
		return nil, fmt.Errorf("%w: index footer of %d bytes", ErrCorrupt, n)
	}
	if string(footer[n-4:]) != indexEndMagic || string(footer[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad index footer magic", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(footer[n-8:]); got != uint32(n) {
		return nil, fmt.Errorf("%w: index footer length %d, holding %d bytes", ErrCorrupt, got, n)
	}
	crcOff := n - indexTailLen
	if got, want := binary.LittleEndian.Uint32(footer[crcOff:]), crc32.ChecksumIEEE(footer[:crcOff]); got != want {
		return nil, fmt.Errorf("%w: index footer crc %#08x, want %#08x", ErrCorrupt, got, want)
	}
	if footer[4] != indexVersion {
		return nil, fmt.Errorf("%w: unsupported index version %d", ErrCorrupt, footer[4])
	}
	nGroups := binary.LittleEndian.Uint32(footer[8:])
	nCks := binary.LittleEndian.Uint32(footer[12:])
	ix := &streamIndex{
		watermark:   binary.LittleEndian.Uint32(footer[16:]),
		uncompTotal: binary.LittleEndian.Uint64(footer[20:]),
		trailerOff:  binary.LittleEndian.Uint64(footer[28:]),
	}
	if nGroups > maxIndexGroups || nCks > nGroups {
		return nil, fmt.Errorf("%w: index of %d groups, %d checkpoints", ErrCorrupt, nGroups, nCks)
	}
	if want := indexFixedLen + 16*int(nGroups) + 4*int(nCks) + indexTailLen; want != n {
		return nil, fmt.Errorf("%w: index footer is %d bytes, want %d for %d groups", ErrCorrupt, n, want, nGroups)
	}
	if ix.trailerOff > streamSize {
		return nil, fmt.Errorf("%w: index trailer offset %d beyond stream of %d bytes", ErrCorrupt, ix.trailerOff, streamSize)
	}
	off := indexFixedLen
	ix.groups = make([]indexGroup, nGroups)
	var prev indexGroup
	for i := range ix.groups {
		g := indexGroup{
			compOff:   binary.LittleEndian.Uint64(footer[off:]),
			uncompOff: binary.LittleEndian.Uint64(footer[off+8:]),
		}
		off += 16
		if g.compOff >= ix.trailerOff || (i > 0 && (g.compOff <= prev.compOff || g.uncompOff < prev.uncompOff)) {
			return nil, fmt.Errorf("%w: index group %d offsets out of order", ErrCorrupt, i)
		}
		ix.groups[i] = g
		prev = g
	}
	ix.checkpoints = make([]uint32, nCks)
	var prevCk uint32
	for i := range ix.checkpoints {
		ck := binary.LittleEndian.Uint32(footer[off:])
		off += 4
		if ck >= nGroups || (i > 0 && ck <= prevCk) {
			return nil, fmt.Errorf("%w: index checkpoint %d out of range", ErrCorrupt, i)
		}
		ix.checkpoints[i] = ck
		prevCk = ck
	}
	if nGroups > 0 {
		if nCks == 0 || ix.checkpoints[0] != 0 || ix.groups[0].uncompOff != 0 {
			return nil, fmt.Errorf("%w: index without a leading checkpoint", ErrCorrupt)
		}
		if last := ix.groups[nGroups-1].uncompOff; last > ix.uncompTotal {
			return nil, fmt.Errorf("%w: index group offsets exceed the recorded size", ErrCorrupt)
		}
	} else if ix.uncompTotal != 0 {
		return nil, fmt.Errorf("%w: empty index records %d uncompressed bytes", ErrCorrupt, ix.uncompTotal)
	}
	return ix, nil
}

// readIndexFooter loads and validates the trailing index of a
// seekable source whose container starts at origin and runs to the
// source's end. The read position is left undefined; callers
// reposition afterwards.
func readIndexFooter(rs io.ReadSeeker, origin int64) (*streamIndex, error) {
	end, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	size := end - origin
	if size < indexFixedLen+indexTailLen {
		return nil, fmt.Errorf("%w: no room for an index footer", ErrCorrupt)
	}
	if _, err := rs.Seek(end-8, io.SeekStart); err != nil {
		return nil, err
	}
	var tag [8]byte
	if _, err := io.ReadFull(rs, tag[:]); err != nil {
		return nil, fmt.Errorf("%w: index footer: %w", ErrCorrupt, truncErr(err))
	}
	if string(tag[4:]) != indexEndMagic {
		return nil, fmt.Errorf("%w: missing index footer (container truncated after the trailer?)", ErrCorrupt)
	}
	fl := int64(binary.LittleEndian.Uint32(tag[:4]))
	if fl < indexFixedLen+indexTailLen || fl > size {
		return nil, fmt.Errorf("%w: index footer length %d", ErrCorrupt, fl)
	}
	buf := make([]byte, fl)
	if _, err := rs.Seek(end-fl, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(rs, buf); err != nil {
		return nil, fmt.Errorf("%w: index footer: %w", ErrCorrupt, truncErr(err))
	}
	return parseIndexFooter(buf, uint64(size))
}

// consumeIndexFooter reads and validates the footer from a sequential
// source positioned just past the trailer group — the streaming
// reader's truncation check. A version-4 header promises a footer, so
// a container cut anywhere after the trailer must fail here instead of
// passing as a clean end of stream. The footer is front-parseable: the
// entry counts precede the entries, so the total length is known after
// the fixed prefix.
func consumeIndexFooter(r io.Reader) (*streamIndex, error) {
	var fixed [indexFixedLen]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: index footer: %w", ErrCorrupt, truncErr(err))
	}
	if string(fixed[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad index footer magic", ErrCorrupt)
	}
	nGroups := binary.LittleEndian.Uint32(fixed[8:])
	nCks := binary.LittleEndian.Uint32(fixed[12:])
	if nGroups > maxIndexGroups || nCks > nGroups {
		return nil, fmt.Errorf("%w: index of %d groups, %d checkpoints", ErrCorrupt, nGroups, nCks)
	}
	// Grow the footer buffer as bytes actually arrive: the declared
	// counts are attacker-controlled, so sizing the allocation to them
	// up front would let a 36-byte prefix demand a gigabyte.
	total := indexFixedLen + 16*int(nGroups) + 4*int(nCks) + indexTailLen
	buf := append(make([]byte, 0, indexFixedLen+4096), fixed[:]...)
	var chunk [4096]byte
	for len(buf) < total {
		n := total - len(buf)
		if n > len(chunk) {
			n = len(chunk)
		}
		m, err := io.ReadFull(r, chunk[:n])
		buf = append(buf, chunk[:m]...)
		if err != nil {
			return nil, fmt.Errorf("%w: index footer: %w", ErrCorrupt, truncErr(err))
		}
	}
	// No seekable end to bound trailerOff against in streaming mode;
	// the structural checks still apply.
	return parseIndexFooter(buf, ^uint64(0))
}

// checkpointAtOrBefore returns the group index and entry of the last
// checkpoint whose uncompressed offset is at or before target. ok is
// false for a zero-group index.
func (ix *streamIndex) checkpointAtOrBefore(target uint64) (uint32, indexGroup, bool) {
	if len(ix.checkpoints) == 0 {
		return 0, indexGroup{}, false
	}
	i := sort.Search(len(ix.checkpoints), func(i int) bool {
		return ix.groups[ix.checkpoints[i]].uncompOff > target
	}) - 1
	if i < 0 {
		i = 0
	}
	g := ix.checkpoints[i]
	return g, ix.groups[g], true
}

// idxSegment is one independently decodable span of an indexed stream:
// the groups from one checkpoint up to (not including) the next.
type idxSegment struct {
	firstGroup  uint32 // index of the first group == its sequence number
	nGroups     int
	compStart   uint64
	compEnd     uint64
	uncompStart uint64
	uncompEnd   uint64
}

// segments splits the indexed groups at checkpoint boundaries. Each
// segment starts at a dictionary reset, so any worker can decode it
// with a fresh dictionary, independent of every other segment.
func (ix *streamIndex) segments() []idxSegment {
	segs := make([]idxSegment, 0, len(ix.checkpoints))
	for i, ck := range ix.checkpoints {
		seg := idxSegment{
			firstGroup:  ck,
			nGroups:     len(ix.groups) - int(ck),
			compStart:   ix.groups[ck].compOff,
			uncompStart: ix.groups[ck].uncompOff,
			compEnd:     ix.trailerOff,
			uncompEnd:   ix.uncompTotal,
		}
		if i+1 < len(ix.checkpoints) {
			next := ix.checkpoints[i+1]
			seg.nGroups = int(next - ck)
			seg.compEnd = ix.groups[next].compOff
			seg.uncompEnd = ix.groups[next].uncompOff
		}
		segs = append(segs, seg)
	}
	return segs
}

// writerIndex accumulates the trailing index while a serial Writer
// emits a version-4 stream.
type writerIndex struct {
	every      int64 // uncompressed bytes between checkpoints (chunk multiple)
	groups     []indexGroup
	ckpts      []uint32
	pending    bool  // the next group starts at a dictionary reset
	nextCkpt   int64 // uncompressed offset that triggers the next checkpoint
	groupStart int64 // uncompressed offset of the current block's first chunk
}

// reset returns the accumulator to the start-of-stream state, keeping
// the entry slices for a pooled Writer. The stream's first group is
// always a checkpoint: the dictionary is empty (frozen prefix only)
// before the first chunk.
//
//zipline:noalloc
func (ix *writerIndex) reset() {
	ix.groups = ix.groups[:0]
	ix.ckpts = ix.ckpts[:0]
	ix.pending = true
	ix.nextCkpt = ix.every
	ix.groupStart = 0
}

// record registers the group about to be written at compressed offset
// compOff, consuming a pending checkpoint, and returns the group's
// header flags.
func (ix *writerIndex) record(compOff, uncompOff int64) byte {
	ix.groups = append(ix.groups, indexGroup{compOff: uint64(compOff), uncompOff: uint64(uncompOff)})
	if !ix.pending {
		return 0
	}
	ix.pending = false
	ix.ckpts = append(ix.ckpts, uint32(len(ix.groups)-1))
	return groupFlagCheckpoint
}

// decodeSegment replays one checkpoint segment: seg.nGroups groups
// whose sequence numbers start at seg.firstGroup, read from r
// (positioned at the segment's first group header). dec's dictionary
// must hold only the frozen prefix. body is reusable scratch for
// compressed group bodies; it is returned (possibly grown) for the
// next call. out must carry no prior segment bytes — the final length
// is checked against the segment's indexed extent.
func decodeSegment(r io.Reader, dec *blockDecoder, version uint8, shards int, seg idxSegment, body, out []byte) ([]byte, []byte, error) {
	seq := seg.firstGroup
	var hdr [16]byte
	for g := 0; g < seg.nGroups; g++ {
		byteLen, bitWord, shard, gflags, err := readBlockHeader(r, version, &seq, &hdr)
		if err != nil {
			return out, body, err
		}
		if byteLen == 0 {
			return out, body, fmt.Errorf("%w: early trailer inside indexed segment", ErrCorrupt)
		}
		if gflags&groupFlagCheckpoint != 0 {
			dec.dict.Reset()
		}
		if cap(body) < int(byteLen) {
			body = make([]byte, byteLen)
		}
		b := body[:byteLen]
		if _, err := io.ReadFull(r, b); err != nil {
			return out, body, fmt.Errorf("%w: block body: %w", ErrCorrupt, truncErr(err))
		}
		tail, isTail, err := classifyGroup(bitWord, shard, shards, b)
		if err != nil {
			return out, body, err
		}
		if isTail {
			dec.stats.TailBytes += uint64(len(tail))
			out = append(out, tail...)
			continue
		}
		if out, err = dec.decodeRecords(b, int(bitWord), out); err != nil {
			return out, body, err
		}
	}
	if want := seg.uncompEnd - seg.uncompStart; uint64(len(out)) != want {
		return out, body, fmt.Errorf("%w: indexed segment decoded to %d bytes, want %d", ErrCorrupt, len(out), want)
	}
	return out, body, nil
}

// decodeSegmentBytes is decodeSegment over an in-memory segment: group
// headers and bodies are sliced straight out of the compressed bytes
// with no intermediate reader or body copy — the one-shot fan-out hot
// path. Validation and error text mirror readBlockHeader and
// classifyGroup, so the fan-out rejects corrupt containers with the
// same diagnostics as a serial decode. Indexed streams are always
// version ≥ 4, so every group carries the 16-byte header.
func decodeSegmentBytes(comp []byte, dec *blockDecoder, shards int, seg idxSegment, out []byte) ([]byte, error) {
	seq := seg.firstGroup
	for g := 0; g < seg.nGroups; g++ {
		if len(comp) < 16 {
			return out, fmt.Errorf("%w: block header: %w", ErrCorrupt, io.ErrUnexpectedEOF)
		}
		byteLen := binary.LittleEndian.Uint32(comp[0:])
		bitWord := binary.LittleEndian.Uint32(comp[4:])
		if byteLen == 0 {
			return out, fmt.Errorf("%w: early trailer inside indexed segment", ErrCorrupt)
		}
		gseq := binary.LittleEndian.Uint32(comp[8:])
		if gseq != seq {
			return out, fmt.Errorf("%w: group %d out of order (want %d)", ErrCorrupt, gseq, seq)
		}
		seq++
		shard := comp[12]
		gflags := comp[13]
		if gflags&^byte(groupFlagCheckpoint) != 0 {
			return out, fmt.Errorf("%w: unknown group flags %#02x", ErrCorrupt, gflags)
		}
		if byteLen > maxBlockBytes {
			return out, fmt.Errorf("%w: block of %d bytes", ErrCorrupt, byteLen)
		}
		if gflags&groupFlagCheckpoint != 0 {
			dec.dict.Reset()
		}
		comp = comp[16:]
		if uint64(len(comp)) < uint64(byteLen) {
			return out, fmt.Errorf("%w: block body: %w", ErrCorrupt, io.ErrUnexpectedEOF)
		}
		b := comp[:byteLen]
		comp = comp[byteLen:]
		tail, isTail, err := classifyGroup(bitWord, shard, shards, b)
		if err != nil {
			return out, err
		}
		if isTail {
			dec.stats.TailBytes += uint64(len(tail))
			out = append(out, tail...)
			continue
		}
		if out, err = dec.decodeRecords(b, int(bitWord), out); err != nil {
			return out, err
		}
	}
	if want := seg.uncompEnd - seg.uncompStart; uint64(len(out)) != want {
		return out, fmt.Errorf("%w: indexed segment decoded to %d bytes, want %d", ErrCorrupt, len(out), want)
	}
	return out, nil
}

// decodeAllIndexed is the fan-out path behind DecodeAll for a Reader
// with workers > 1: when src carries a valid trailing index with at
// least two checkpoint segments, the segments are decoded concurrently
// into disjoint regions of one output buffer — no stitching copies.
// ok reports whether the fan-out applied; when false (not indexed,
// sharded container, or a single segment) the caller falls back to
// the serial pooled path, which reproduces any header error with the
// same text. A corrupt footer on an indexed stream is an error, not a
// fallback: the caller asked for index-driven decoding and the index
// is lying.
func (zr *Reader) decodeAllIndexed(src, dst []byte) (out []byte, ok bool, err error) {
	st, _ := zr.iPool.Get().(*idxDecState)
	if st == nil {
		st = &idxDecState{}
	}
	br := bytes.NewReader(src)
	var phdr [16]byte
	info, err := parseStreamHeader(br, st.codec, &phdr)
	if err != nil || !info.hasIndex || info.shards != 1 {
		zr.iPool.Put(st)
		return dst, false, nil
	}
	if info.codec != st.codec {
		// New or reconfigured codec: the pooled decoders carry stream
		// dictionaries keyed to the old one.
		st.codec = info.codec
		clear(st.decs)
	}
	dict, err := validateStreamDict(info, zr.set.dict)
	if err != nil {
		zr.iPool.Put(st)
		return dst, true, err
	}
	if dict != st.dict {
		// A dict-framed stream after a plain one (or vice versa): the
		// pooled stream dictionaries carry the wrong frozen prefix.
		st.dict = dict
		clear(st.decs)
	}
	ix, err := parseTrailingFooter(src)
	if err != nil {
		zr.iPool.Put(st)
		return dst, true, err
	}
	segs := ix.segments()
	if len(segs) < 2 {
		zr.iPool.Put(st)
		return dst, false, nil
	}
	// Sanity-bound the up-front allocation: a record costs at least
	// tag + deviation bits, so the recorded total cannot exceed what
	// the compressed payload could possibly expand to.
	cs := uint64(info.codec.ChunkSize())
	minRecordBits := uint64(info.codec.DeviationBits()) + 2
	if maxOut := (ix.trailerOff*8/minRecordBits+1)*cs + ix.trailerOff; ix.uncompTotal > maxOut {
		zr.iPool.Put(st)
		return dst, true, fmt.Errorf("%w: index records implausible %d uncompressed bytes", ErrCorrupt, ix.uncompTotal)
	}
	base := len(dst)
	need := base + int(ix.uncompTotal)
	if cap(dst) >= need {
		out = dst[:need]
	} else {
		out = make([]byte, need)
		copy(out, dst)
	}

	workers := zr.set.workers
	if workers > len(segs) {
		workers = len(segs)
	}
	for len(st.decs) < workers {
		st.decs = append(st.decs, nil)
	}
	errs := make([]error, len(segs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dec := st.decs[w]
		if dec == nil {
			var stats StreamStats
			dec = newBlockDecoder(info.codec, &stats, dict)
			st.decs[w] = dec
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(segs) {
					return
				}
				seg := segs[i]
				dec.dict.Reset()
				region := out[base+int(seg.uncompStart) : base+int(seg.uncompStart) : base+int(seg.uncompEnd)]
				res, err := decodeSegmentBytes(src[seg.compStart:seg.compEnd], dec, info.shards, seg, region[:0])
				if err != nil {
					errs[i] = err
					continue
				}
				// decodeSegmentBytes verified the length; a region
				// overrun would have forced a reallocation and tripped
				// it.
				_ = res
			}
		}()
	}
	wg.Wait()
	zr.iPool.Put(st)
	for _, err := range errs {
		if err != nil {
			return dst, true, err
		}
	}
	return out, true, nil
}

// idxDecState is the pooled per-call state of decodeAllIndexed: the
// parsed codec and one block decoder (stream dictionary included) per
// worker, so the steady state rebuilds neither transform tables nor
// dictionaries. Decoders are lazily (re)built when the worker count
// grows or the header's configuration changes.
type idxDecState struct {
	codec *Codec
	dict  *Dict
	decs  []*blockDecoder
}

// parseTrailingFooter locates and validates the index footer at the
// end of a complete in-memory container.
func parseTrailingFooter(src []byte) (*streamIndex, error) {
	if len(src) < indexFixedLen+indexTailLen {
		return nil, fmt.Errorf("%w: no room for an index footer", ErrCorrupt)
	}
	if string(src[len(src)-4:]) != indexEndMagic {
		return nil, fmt.Errorf("%w: missing index footer (container truncated after the trailer?)", ErrCorrupt)
	}
	fl := int(binary.LittleEndian.Uint32(src[len(src)-8:]))
	if fl < indexFixedLen+indexTailLen || fl > len(src) {
		return nil, fmt.Errorf("%w: index footer length %d", ErrCorrupt, fl)
	}
	return parseIndexFooter(src[len(src)-fl:], uint64(len(src)))
}
