package zipline

import (
	"fmt"

	"zipline/internal/bch"
	"zipline/internal/gd"
	"zipline/internal/hamming"
)

// Config selects a GD operating point. The zero value is the paper's
// deployment: m = 8 (Hamming(255, 247), 32-byte chunks) and 15-bit
// identifiers (32,768 dictionary entries).
type Config struct {
	// M is the Hamming parameter: chunks are 2^M bits, deviations M
	// bits, bases 2^M − M − 1 bits. Valid range 3..15.
	M int
	// IDBits sizes dictionary identifiers. Valid range 1..24.
	IDBits int
	// T is the transform's error radius. 1 (the default) selects the
	// paper's Hamming transform; 2 or 3 select the BCH transforms of
	// the paper's future work (§8): every basis then covers all
	// chunks within T bit flips of its codeword, at the cost of a
	// wider deviation (≤ T·M bits).
	T int
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 8
	}
	if c.IDBits == 0 {
		c.IDBits = 15
	}
	if c.T == 0 {
		c.T = 1
	}
	return c
}

func (c Config) validate() error {
	if c.M < hamming.MinM || c.M > hamming.MaxM {
		return fmt.Errorf("zipline: M=%d out of range [%d,%d]", c.M, hamming.MinM, hamming.MaxM)
	}
	if c.IDBits < 1 || c.IDBits > 24 {
		return fmt.Errorf("zipline: IDBits=%d out of range [1,24]", c.IDBits)
	}
	if c.T < 1 || c.T > 3 {
		return fmt.Errorf("zipline: T=%d out of range [1,3]", c.T)
	}
	return nil
}

// Split is the GD decomposition of one chunk.
type Split struct {
	// Basis is the dictionary key: BasisBits() bits, packed MSB-first
	// into ceil(BasisBits/8) bytes with zero tail padding.
	Basis []byte
	// Deviation is the Hamming syndrome (M bits): which single bit
	// separates the chunk from its basis's codeword.
	Deviation uint32
	// Extra is the carried chunk MSB (the paper's "one additional
	// bit to store the MSB of the raw data packet").
	Extra uint8
}

// Codec performs chunk-level generalized deduplication. Safe for
// concurrent use.
type Codec struct {
	cfg   Config
	inner *gd.Codec
}

// NewCodec builds a codec for the configuration.
func NewCodec(cfg Config) (*Codec, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var tr gd.Transform
	if cfg.T == 1 {
		h, err := gd.NewHammingM(cfg.M)
		if err != nil {
			return nil, err
		}
		tr = h
	} else {
		b, err := bch.NewTransform(cfg.M, cfg.T)
		if err != nil {
			return nil, err
		}
		tr = b
	}
	return &Codec{cfg: cfg, inner: gd.NewCodec(tr)}, nil
}

// MustCodec is NewCodec, panicking on error.
func MustCodec(cfg Config) *Codec {
	c, err := NewCodec(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the codec's configuration with defaults applied.
func (c *Codec) Config() Config { return c.cfg }

// ChunkSize returns the chunk size in bytes (2^(M−3)).
func (c *Codec) ChunkSize() int { return c.inner.ChunkBytes() }

// BasisBits returns the basis width in bits (2^M − M − 1).
func (c *Codec) BasisBits() int { return c.inner.BasisBits() }

// DeviationBits returns the deviation width in bits (M).
func (c *Codec) DeviationBits() int { return c.inner.DeviationBits() }

// Split decomposes one chunk of exactly ChunkSize bytes.
func (c *Codec) Split(chunk []byte) (Split, error) {
	var s Split
	err := c.SplitInto(chunk, &s)
	return s, err
}

// SplitInto is Split with caller-owned storage: the basis bits are
// written into s.Basis, reusing its capacity append-style. Reusing
// one Split across a loop makes the encode path allocation-free; the
// Codec itself stays safe for concurrent use because all scratch
// state lives in the caller's Split.
func (c *Codec) SplitInto(chunk []byte, s *Split) error {
	basis, dev, extra, err := c.inner.SplitChunkBytes(chunk, s.Basis)
	if err != nil {
		return err
	}
	s.Basis, s.Deviation, s.Extra = basis, dev, extra
	return nil
}

// Merge reconstructs the chunk from a Split, appending to dst. When
// dst has spare capacity the call allocates nothing.
func (c *Codec) Merge(s Split, dst []byte) ([]byte, error) {
	if len(s.Basis) != (c.BasisBits()+7)/8 {
		return dst, fmt.Errorf("zipline: basis is %d bytes, want %d", len(s.Basis), (c.BasisBits()+7)/8)
	}
	return c.inner.MergeChunkBytes(s.Basis, s.Deviation, s.Extra, dst)
}

// internalCodec hands the wrapped codec to sibling files.
func (c *Codec) internalCodec() *gd.Codec { return c.inner }
