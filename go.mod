module zipline

go 1.23
