module zipline

go 1.24
