package zipline

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// FuzzDecompressBytes: arbitrary input must never panic the stream
// decoder — it either round-fails with an error or decodes quietly.
func FuzzDecompressBytes(f *testing.F) {
	// Seed with valid streams of several shapes plus junk.
	for _, data := range [][]byte{
		nil,
		[]byte("not a stream"),
		bytes.Repeat([]byte{0xA5}, 100),
	} {
		f.Add(data)
	}
	if comp, err := CompressBytes(bytes.Repeat([]byte{1, 2, 3, 4}, 100), Config{}); err == nil {
		f.Add(comp)
	}
	if comp, err := CompressBytes([]byte("tail-only"), Config{M: 5}); err == nil {
		f.Add(comp)
	}
	// Sharded v2 containers: several shard counts, a multi-segment
	// stream (groups on more than one shard) and a tail-bearing one.
	if comp, err := CompressBytesParallel(bytes.Repeat([]byte{9, 8, 7, 6}, 100), Config{}, 3); err == nil {
		f.Add(comp)
	}
	if comp, err := CompressBytesParallel(bytes.Repeat([]byte{0xAB}, 2*defaultSegmentBytes+5), Config{}, 2); err == nil {
		f.Add(comp)
	}
	if comp, err := CompressBytesParallel([]byte("v2 tail-only"), Config{M: 5}, 4); err == nil {
		f.Add(comp)
	}
	// Dictionary-framed v3 containers: the dictless decoder must
	// reject them cleanly (ErrDictRequired), and mutated dict frames —
	// truncated header, flipped dict-ID — must never panic it.
	if comp := fuzzDictStream(); comp != nil {
		f.Add(comp)
		f.Add(append([]byte(nil), comp[:14]...)) // truncated inside the dict frame
		mut := append([]byte(nil), comp...)
		mut[12] ^= 0xFF // dict-ID byte
		f.Add(mut)
		mut = append([]byte(nil), comp...)
		mut[9] = 0xFE // unknown header flags
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressBytes(data)
		if err == nil && len(out) > 1<<26 {
			t.Fatalf("implausible expansion: %d bytes", len(out))
		}
	})
}

// fuzzDictStream builds a deterministic dictionary-framed stream for
// the decoder corpora.
func fuzzDictStream() []byte {
	corpus := sensorLikeData(1<<14, 77)
	dict, err := TrainDict(corpus, Config{})
	if err != nil {
		return nil
	}
	zw, err := NewWriter(nil, WithDict(dict))
	if err != nil {
		return nil
	}
	return zw.EncodeAll(corpus[:4096], nil)
}

// fuzzDictFor caches one trained dictionary per Hamming parameter so
// the fuzzer spends its budget on encode/decode, not on re-training.
var fuzzDicts sync.Map // m -> *Dict

func fuzzDictFor(m int) (*Dict, error) {
	if d, ok := fuzzDicts.Load(m); ok {
		return d.(*Dict), nil
	}
	dict, err := TrainDict(sensorLikeData(1<<13, 7), Config{M: m})
	if err != nil {
		return nil, err
	}
	fuzzDicts.Store(m, dict)
	return dict, nil
}

// FuzzEncodeAllDecodeAll: the one-shot path must round-trip every
// input under several configurations, with and without a shared
// dictionary, and must agree byte-for-byte with the streaming writer.
func FuzzEncodeAllDecodeAll(f *testing.F) {
	f.Add([]byte(nil), uint8(8), false)
	f.Add([]byte("one-shot"), uint8(3), true)
	f.Add(bytes.Repeat([]byte{0xAB}, 500), uint8(5), true)
	f.Add(bytes.Repeat([]byte("abcdefgh"), 64), uint8(12), false)
	f.Fuzz(func(t *testing.T, data []byte, m uint8, useDict bool) {
		cfg := Config{M: int(m%13) + 3}
		opts := []Option{WithConfig(cfg)}
		if useDict {
			dict, err := fuzzDictFor(cfg.M)
			if err != nil {
				t.Fatalf("train: %v", err)
			}
			opts = append(opts, WithDict(dict))
		}
		zw, err := NewWriter(nil, opts...)
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		zr, err := NewReader(nil, opts...)
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		comp := zw.EncodeAll(data, nil)
		// Twice, to cover the pooled steady state.
		if again := zw.EncodeAll(data, nil); !bytes.Equal(comp, again) {
			t.Fatal("pooled EncodeAll is not deterministic")
		}
		var buf bytes.Buffer
		sw, err := NewWriter(&buf, opts...)
		if err != nil {
			t.Fatalf("stream writer: %v", err)
		}
		if _, err := sw.Write(data); err != nil {
			t.Fatalf("stream write: %v", err)
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("stream close: %v", err)
		}
		if !bytes.Equal(comp, buf.Bytes()) {
			t.Fatal("EncodeAll differs from the streaming writer")
		}
		back, err := zr.DecodeAll(comp, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip failed for cfg %+v dict=%v", cfg, useDict)
		}
	})
}

// FuzzStreamRoundTrip: every input must compress and decompress back
// to itself under several configurations, through both the serial
// (v1) and sharded parallel (v2) containers.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint8(8), uint8(1), uint8(1))
	f.Add([]byte("hello zipline"), uint8(3), uint8(1), uint8(2))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint8(8), uint8(2), uint8(3))
	f.Add(bytes.Repeat([]byte("abcdefgh"), 64), uint8(5), uint8(1), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, m, tt, workers uint8) {
		cfg := Config{M: int(m%13) + 3, T: int(tt%2) + 1}
		comp, err := CompressBytes(data, cfg)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		back, err := DecompressBytes(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip failed for cfg %+v", cfg)
		}
		pcomp, err := CompressBytesParallel(data, cfg, int(workers%8)+1)
		if err != nil {
			t.Fatalf("parallel compress: %v", err)
		}
		back, err = DecompressBytes(pcomp)
		if err != nil {
			t.Fatalf("serial decode of v2: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("v2 round trip failed for cfg %+v", cfg)
		}
	})
}

// decompressParallel drains data through a ParallelReader, always
// releasing its goroutines.
func decompressParallel(data []byte) ([]byte, error) {
	pr, err := NewParallelReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer pr.Close()
	return io.ReadAll(pr)
}

// FuzzParallelReader: arbitrary input through the sharded decoder
// must never panic, deadlock or leak its workers — and whenever both
// the serial and the parallel decoder accept an input, they must
// produce identical bytes (the decoders share one format authority;
// this keeps them honest). The corpus seeds the interesting failure
// classes: truncation at every framing boundary and shard numbers
// that exceed the header's count.
func FuzzParallelReader(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("not a stream"))
	if comp, err := CompressBytes(bytes.Repeat([]byte("serial v1 stream!"), 50), Config{}); err == nil {
		f.Add(comp)
	}
	if comp, err := CompressBytesParallel(bytes.Repeat([]byte{1, 2, 3, 4}, 100), Config{}, 3); err == nil {
		f.Add(comp)
		// Truncations: inside the stream header, the v2 extension, the
		// first group header, a group body, and just short of the
		// trailer.
		for _, cut := range []int{3, 9, 20, len(comp) / 2, len(comp) - 1} {
			if cut >= 0 && cut < len(comp) {
				f.Add(append([]byte(nil), comp[:cut]...))
			}
		}
		// Shard mismatch: the first group's shard byte (stream header
		// 12 B + group header offset 12) bumped past the declared
		// shard count.
		if len(comp) > 25 {
			mut := append([]byte(nil), comp...)
			mut[24] = 0xFF
			f.Add(mut)
		}
		// Declared shard count zeroed and inflated.
		for _, shards := range []byte{0, 255} {
			mut := append([]byte(nil), comp...)
			mut[8] = shards
			f.Add(mut)
		}
	}
	// A multi-segment stream (several groups per shard) and a
	// tail-bearing one.
	if comp, err := CompressBytesParallel(sensorLikeData(2*defaultSegmentBytes+5, 9), Config{}, 4); err == nil {
		f.Add(comp)
		f.Add(append([]byte(nil), comp[:len(comp)-7]...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pOut, pErr := decompressParallel(data)
		if pErr == nil && len(pOut) > 1<<26 {
			t.Fatalf("implausible expansion: %d bytes", len(pOut))
		}
		sOut, sErr := DecompressBytes(data)
		if pErr == nil && sErr != nil {
			// The serial Reader decodes every container version; a
			// stream only the parallel decoder accepts is a format
			// divergence, not a feature.
			t.Fatalf("parallel decoder accepted what the serial decoder rejects: %v", sErr)
		}
		if pErr == nil && sErr == nil && !bytes.Equal(pOut, sOut) {
			t.Fatalf("serial and parallel decoders disagree: %d vs %d bytes", len(sOut), len(pOut))
		}
	})
}

// TestStreamRandomCorruptionNeverPanics flips random bits/bytes in
// valid streams; the decoder must return errors or data, never panic.
func TestStreamRandomCorruptionNeverPanics(t *testing.T) {
	base, err := CompressBytes(bytes.Repeat([]byte("sensor-reading-0123456789abcdef!"), 200), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(99)
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // flip a bit
				i := rng.Intn(len(corrupt))
				corrupt[i] ^= 1 << uint(rng.Intn(8))
			case 1: // truncate
				corrupt = corrupt[:rng.Intn(len(corrupt)+1)]
			case 2: // splice garbage
				if len(corrupt) > 4 {
					i := rng.Intn(len(corrupt) - 4)
					rng.Read(corrupt[i : i+4])
				}
			}
			if len(corrupt) == 0 {
				break
			}
		}
		// Must not panic; errors and silent wrong data are both
		// acceptable for a format without integrity checksums.
		DecompressBytes(corrupt)
	}
}
