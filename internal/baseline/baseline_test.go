package baseline

import (
	"testing"

	"zipline/internal/gd"
	"zipline/internal/trace"
)

func paperCodec(t *testing.T) *gd.Codec {
	t.Helper()
	tr, err := gd.NewHammingM(8)
	if err != nil {
		t.Fatal(err)
	}
	return gd.NewCodec(tr)
}

func TestGzipCompressesRepetitiveTrace(t *testing.T) {
	tr := trace.Sensor(trace.SensorConfig{Records: 100_000, Sensors: 200, Seed: 1})
	n, err := GzipSize(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(n) / float64(tr.TotalBytes())
	if ratio > 0.5 {
		t.Fatalf("gzip ratio = %.3f; sensor data should compress well", ratio)
	}
	if n == 0 {
		t.Fatal("empty output")
	}
}

func TestGzipRoundTripLossless(t *testing.T) {
	tr := trace.DNS(trace.DNSConfig{Queries: 20_000, Seed: 2})
	n, err := GzipRoundTrip(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.TotalBytes() {
		t.Fatalf("round trip size %d != %d", n, tr.TotalBytes())
	}
}

func TestDedupExactVsGD(t *testing.T) {
	// On glitchy codeword-snapped data GD needs far fewer dictionary
	// entries than exact dedup, and with a dictionary sized for the
	// basis working set, GD compresses while exact dedup thrashes.
	c := paperCodec(t)
	tr := trace.Sensor(trace.SensorConfig{
		Records: 100_000, Sensors: 100, Seed: 3,
		SnapCodec: c, GlitchProb: 0.5,
	})
	gdRes, err := DedupSize(tr, DedupConfig{Codec: c, IDBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	exactRes, err := DedupSize(tr, DedupConfig{IDBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if gdRes.DistinctKeys*2 > exactRes.DistinctKeys {
		t.Fatalf("GD keys %d vs exact keys %d: ball clustering missing",
			gdRes.DistinctKeys, exactRes.DistinctKeys)
	}
	if gdRes.OutputBytes >= exactRes.OutputBytes {
		t.Fatalf("GD %d B vs exact %d B: GD should win on glitchy data",
			gdRes.OutputBytes, exactRes.OutputBytes)
	}
	if gdRes.Records != 100_000 || gdRes.HitRecords+gdRes.MissRecords != gdRes.Records {
		t.Fatalf("accounting broken: %+v", gdRes)
	}
}

func TestDedupDictionaryThrash(t *testing.T) {
	// A dictionary much smaller than the working set must evict.
	c := paperCodec(t)
	tr := trace.Sensor(trace.SensorConfig{Records: 50_000, Sensors: 200, Seed: 4})
	small, err := DedupSize(tr, DedupConfig{Codec: c, IDBits: 4}) // 16 entries
	if err != nil {
		t.Fatal(err)
	}
	big, err := DedupSize(tr, DedupConfig{Codec: c, IDBits: 15})
	if err != nil {
		t.Fatal(err)
	}
	if small.EvictedKeys == 0 {
		t.Fatal("tiny dictionary never evicted")
	}
	if small.OutputBytes <= big.OutputBytes {
		t.Fatalf("smaller dictionary compressed better: %d <= %d",
			small.OutputBytes, big.OutputBytes)
	}
}

func TestDedupChunkSizeMismatch(t *testing.T) {
	c := paperCodec(t)
	tr := trace.NewTrace("x", 16, make([]byte, 160))
	if _, err := DedupSize(tr, DedupConfig{Codec: c, IDBits: 4}); err == nil {
		t.Fatal("mismatched record size accepted")
	}
}

func TestDedupRatio(t *testing.T) {
	res := DedupResult{OutputBytes: 50}
	if r := res.Ratio(100); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
}
