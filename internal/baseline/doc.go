// Package baseline implements the comparison points of the paper's
// Figure 3: gzip (DEFLATE — "an algorithm that doubtlessly cannot be
// implemented on our hardware P4 target due to its unbounded
// execution time") and, as an extra ablation, classic exact-match
// deduplication, to quantify what the GD transformation itself adds.
//
// Both baselines consume the same chunked datasets as the GD
// pipeline, so Figure 3 ratios are comparable by construction.
package baseline
