package baseline

import (
	"bytes"
	"compress/gzip"
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/trace"
)

// GzipSize compresses the trace's concatenated payloads with gzip at
// the given level (0 = gzip.DefaultCompression, as the paper's
// off-the-shelf invocation) and returns the compressed size in bytes.
// This is the Figure 3 "Gzip" bar: "we extract all payloads in a
// regular file that we compress with the gzip compression tool".
func GzipSize(t *trace.Trace, level int) (int, error) {
	if level == 0 {
		level = gzip.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	if _, err := w.Write(t.Bytes()); err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	if err := w.Close(); err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	return buf.Len(), nil
}

// GzipRoundTrip verifies losslessness of the gzip baseline and
// returns the decompressed byte count (tests use it; the harness
// trusts the stdlib).
func GzipRoundTrip(t *trace.Trace, level int) (int, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, normaliseLevel(level))
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(t.Bytes()); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	r, err := gzip.NewReader(&buf)
	if err != nil {
		return 0, err
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r); err != nil {
		return 0, err
	}
	if !bytes.Equal(out.Bytes(), t.Bytes()) {
		return 0, fmt.Errorf("baseline: gzip round trip mismatch")
	}
	return out.Len(), nil
}

func normaliseLevel(level int) int {
	if level == 0 {
		return gzip.DefaultCompression
	}
	return level
}

// DedupConfig parameterises a dictionary-compression run.
type DedupConfig struct {
	// Codec selects the transform. nil means classic exact-match
	// deduplication (the key is the whole chunk).
	Codec *gd.Codec
	// IDBits sizes the dictionary at 2^IDBits LRU slots (default 15,
	// the paper's).
	IDBits int
	// HitBytes is the payload cost of a dictionary hit. Default:
	// the aligned type 3 wire size for the codec (3 B at m=8, t=15),
	// or 2 + IDBits/8-rounded reference bytes for exact dedup.
	HitBytes int
	// MissBytes is the payload cost of a miss. Default: the aligned
	// type 2 wire size (33 B at m=8), or the record size for exact
	// dedup.
	MissBytes int
}

// DedupResult summarises a dictionary compression run at the payload
// level.
type DedupResult struct {
	Records       int
	HitRecords    int // emitted as short references
	MissRecords   int // emitted with full content
	OutputBytes   int
	DistinctKeys  int
	EvictedKeys   int
	DictionaryCap int
}

// Ratio returns output size over input size.
func (r DedupResult) Ratio(inputBytes int) float64 {
	return float64(r.OutputBytes) / float64(inputBytes)
}

// DedupSize runs dictionary compression over the trace. The
// dictionary holds 2^IDBits entries with LRU replacement — the same
// policy as the switch tables, but in-process and with instantaneous
// learning. It is the "static table meets finite memory" model used
// by the dictionary-size and transform ablations.
func DedupSize(t *trace.Trace, cfg DedupConfig) (DedupResult, error) {
	if cfg.IDBits == 0 {
		cfg.IDBits = 15
	}
	if cfg.Codec != nil && cfg.Codec.ChunkBytes() != t.RecordSize {
		return DedupResult{}, fmt.Errorf("baseline: chunk %d != record %d", cfg.Codec.ChunkBytes(), t.RecordSize)
	}
	if cfg.HitBytes == 0 {
		if cfg.Codec != nil {
			f, err := packet.NewFormat(cfg.Codec, cfg.IDBits, true)
			if err != nil {
				return DedupResult{}, err
			}
			cfg.HitBytes = f.Type3Len()
		} else {
			cfg.HitBytes = (cfg.IDBits + 7) / 8
		}
	}
	if cfg.MissBytes == 0 {
		if cfg.Codec != nil {
			f, err := packet.NewFormat(cfg.Codec, cfg.IDBits, true)
			if err != nil {
				return DedupResult{}, err
			}
			cfg.MissBytes = f.Type2Len()
		} else {
			cfg.MissBytes = t.RecordSize
		}
	}

	dict := gd.NewDictionary(cfg.IDBits)
	res := DedupResult{Records: t.Records(), DictionaryCap: dict.Capacity()}
	seen := make(map[string]struct{})
	for i := 0; i < t.Records(); i++ {
		rec := t.Record(i)
		var key *bitvec.Vector
		if cfg.Codec == nil {
			key = bitvec.FromBytes(rec, len(rec)*8)
		} else {
			s, err := cfg.Codec.SplitChunk(rec)
			if err != nil {
				return res, err
			}
			key = s.Basis
		}
		seen[key.Key()] = struct{}{}
		if _, hit := dict.Lookup(key); hit {
			res.HitRecords++
			res.OutputBytes += cfg.HitBytes
		} else {
			res.MissRecords++
			res.OutputBytes += cfg.MissBytes
			if _, evicted := dict.Insert(key); evicted != nil {
				res.EvictedKeys++
			}
		}
	}
	res.DistinctKeys = len(seen)
	return res, nil
}
