package scenario

import (
	"fmt"
	"io"

	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/stats"
	"zipline/internal/zswitch"
)

// TrafficTotals aggregates one side of the run's traffic.
type TrafficTotals struct {
	Frames       uint64 `json:"frames"`
	PayloadBytes uint64 `json:"payload_bytes"`
}

// HostReport is one host's receive-side view.
type HostReport struct {
	Host         string  `json:"host"`
	RxFrames     uint64  `json:"rx_frames"`
	PayloadBytes uint64  `json:"payload_bytes"`
	RawFrames    uint64  `json:"raw_frames"`
	Type2Frames  uint64  `json:"type2_frames"`
	Type3Frames  uint64  `json:"type3_frames"`
	GoodputGbps  float64 `json:"goodput_gbps"`
	// LearningDelayMs is the paper's receiver-side measurement — the
	// gap between this host's first type 2 and first type 3 arrival —
	// or -1 when the host never saw both types.
	LearningDelayMs float64 `json:"learning_delay_ms"`
}

// LinkReport is one transmit direction of one link.
type LinkReport struct {
	From         string `json:"from"`
	To           string `json:"to"`
	TxFrames     uint64 `json:"tx_frames"`
	TxBytes      uint64 `json:"tx_bytes"`
	PayloadBytes uint64 `json:"payload_bytes"`
	Lost         uint64 `json:"lost,omitempty"`
	Duplicated   uint64 `json:"duplicated,omitempty"`
	Reordered    uint64 `json:"reordered,omitempty"`
	// DownDrops counts frames eaten by a link flap (fault runs only;
	// omitted when zero so fault-free reports are byte-stable).
	DownDrops uint64 `json:"down_drops,omitempty"`
}

// FaultReport summarises a fault-armed run; nil in fault-free runs so
// their JSON stays byte-identical to the pre-fault engine.
type FaultReport struct {
	// StrandedCompressed counts compressed packets that reached a
	// decoder lacking their mapping. The control plane's quarantine
	// protocol guarantees this is zero under any fault schedule.
	StrandedCompressed uint64 `json:"stranded_compressed"`
	// BypassFrames counts raw frames forwarded uncompressed while an
	// encoder was quarantined.
	BypassFrames uint64 `json:"bypass_frames"`
	// Retransmits / Abandoned count reliable-channel retries and
	// messages dropped after the retry cap.
	Retransmits uint64 `json:"retransmits"`
	Abandoned   uint64 `json:"abandoned"`
	// StaleDigests counts digests discarded for a mismatched epoch.
	StaleDigests uint64 `json:"stale_digests"`
	// Resyncs counts restart reconciliations; RecoveryTimeNs is the
	// slowest crash→reconverged interval.
	Resyncs        uint64 `json:"resyncs"`
	RecoveryTimeNs int64  `json:"recovery_time_ns"`
	// ControlMsgsLost counts control-channel messages eaten by loss
	// draws; SwitchDownDrops counts frames dropped at crashed
	// switches.
	ControlMsgsLost uint64 `json:"control_msgs_lost"`
	SwitchDownDrops uint64 `json:"switch_down_drops"`
}

// PlacementReport records a topology expansion's dictionary-placement
// decision: the strategy, the identifier-space width, and each
// encoding switch's capacity share (plus the profiling signal that
// earned it, for the greedy strategy).
type PlacementReport struct {
	Strategy string             `json:"strategy"`
	IDBits   int                `json:"id_bits"`
	Encoders []EncoderPlacement `json:"encoders"`
}

// EncoderPlacement is one encoding switch's share of the identifier
// space.
type EncoderPlacement struct {
	Switch  string `json:"switch"`
	IDFirst uint32 `json:"id_first"`
	IDLimit uint32 `json:"id_limit"`
	// ProfileDigests is the greedy profiling pass's digest count for
	// this switch (omitted for signal-free strategies).
	ProfileDigests uint64 `json:"profile_digests,omitempty"`
}

// LearningReport summarises the control plane's work: how many bases
// were learned and how long each took from first digest to the
// encoder mapping going live. Identifier-ranged builds aggregate the
// counters and merge the delay samples of every controller.
type LearningReport struct {
	Learned     uint64  `json:"learned"`
	Recycled    uint64  `json:"recycled"`
	Expired     uint64  `json:"expired"`
	DigestsSeen uint64  `json:"digests_seen"`
	DigestBytes uint64  `json:"digest_bytes"`
	DelayN      int     `json:"delay_n"`
	DelayMeanMs float64 `json:"delay_mean_ms"`
	DelayP50Ms  float64 `json:"delay_p50_ms"`
	DelayP90Ms  float64 `json:"delay_p90_ms"`
	DelayP99Ms  float64 `json:"delay_p99_ms"`
}

// Report is one scenario run's metrics. Identical spec + seed ⇒
// identical report, so serialised reports double as regression
// fixtures.
type Report struct {
	Scenario  string  `json:"scenario"`
	Seed      int64   `json:"seed"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Events is the simulator's total scheduled-event count
	// (Sim.Scheduled) — the engine-load column of sweep matrices.
	Events uint64 `json:"events"`

	Offered   TrafficTotals `json:"offered"`
	Delivered TrafficTotals `json:"delivered"`
	// DeliveryRate is delivered over offered frames; loss pushes it
	// below 1, duplication above.
	DeliveryRate float64 `json:"delivery_rate"`

	// Encode aggregates the classification counters of every switch
	// pipeline in the scenario; CompressionRatio is its exact
	// payload-bytes-out over payload-bytes-in (1 = incompressible,
	// >1 = transform overhead dominating, paper Figure 3).
	Encode           zswitch.Stats `json:"encode"`
	CompressionRatio float64       `json:"compression_ratio"`

	// Placement records the topology expansion's dictionary placement;
	// nil for explicitly-declared scenarios, keeping their JSON
	// unchanged.
	Placement *PlacementReport `json:"placement,omitempty"`

	// Learning is nil when the scenario has no encoder (and thus no
	// control plane).
	Learning *LearningReport `json:"learning,omitempty"`

	// Faults is nil unless the spec armed a fault schedule.
	Faults *FaultReport `json:"faults,omitempty"`

	Hosts []HostReport `json:"hosts"`
	Links []LinkReport `json:"links"`
}

// report assembles the metrics after the event loop has finished.
func (sc *Scenario) report() Report {
	r := Report{
		Scenario:  sc.Spec.Name,
		Seed:      sc.Spec.Seed,
		ElapsedMs: float64(sc.Sim.Now()) / 1e6,
		Events:    sc.Sim.Scheduled(),
		Offered:   TrafficTotals{Frames: sc.offeredFrames, PayloadBytes: sc.offeredPayload},
	}
	elapsedNs := float64(sc.Sim.Now())

	for _, h := range sc.Spec.Hosts {
		rx := sc.hosts[h.Name].Rx()
		hr := HostReport{
			Host:            h.Name,
			RxFrames:        rx.Frames,
			PayloadBytes:    rx.PayloadBytes,
			RawFrames:       rx.TypeFrames[packet.TypeRaw],
			Type2Frames:     rx.TypeFrames[packet.TypeUncompressed],
			Type3Frames:     rx.TypeFrames[packet.TypeCompressed],
			LearningDelayMs: -1,
		}
		if elapsedNs > 0 {
			hr.GoodputGbps = float64(rx.PayloadBytes) * 8 / elapsedNs
		}
		t2 := rx.FirstArrival[packet.TypeUncompressed]
		t3 := rx.FirstArrival[packet.TypeCompressed]
		if t2 >= 0 && t3 >= 0 {
			hr.LearningDelayMs = float64(t3-t2) / 1e6
		}
		r.Delivered.Frames += rx.Frames
		r.Delivered.PayloadBytes += rx.PayloadBytes
		r.Hosts = append(r.Hosts, hr)
	}
	if r.Offered.Frames > 0 {
		r.DeliveryRate = float64(r.Delivered.Frames) / float64(r.Offered.Frames)
	}

	for _, sw := range sc.Spec.Switches {
		r.Encode.Add(zswitch.ReadStats(sc.pipes[sw.Name]))
	}
	if r.Encode.EncPayloadIn > 0 {
		r.CompressionRatio = float64(r.Encode.EncPayloadOut) / float64(r.Encode.EncPayloadIn)
	}

	r.Placement = sc.placement
	if len(sc.ctls) > 0 {
		lr := &LearningReport{}
		delays := stats.New()
		for _, ctl := range sc.ctls {
			st := ctl.Stats()
			lr.Learned += st.Learned
			lr.Recycled += st.Recycled
			lr.Expired += st.Expired
			lr.DigestsSeen += st.DigestsSeen
			lr.DigestBytes += st.DigestBytes
			delays.Add(ctl.LearningDelayMs().Values()...)
		}
		lr.DelayN = delays.N()
		lr.DelayMeanMs = delays.Mean()
		lr.DelayP50Ms = delays.Percentile(50)
		lr.DelayP90Ms = delays.Percentile(90)
		lr.DelayP99Ms = delays.Percentile(99)
		r.Learning = lr
	}

	if sc.faults != nil {
		fr := &FaultReport{
			StrandedCompressed: r.Encode.DecodeMiss,
			BypassFrames:       r.Encode.Bypass,
			ControlMsgsLost:    sc.faults.MsgsLost,
		}
		for _, ctl := range sc.ctls {
			st := ctl.Stats()
			fr.Retransmits += st.Retransmits
			fr.Abandoned += st.Abandoned
			fr.StaleDigests += st.StaleDigests
			fr.Resyncs += st.Resyncs
			if st.RecoveryNsMax > fr.RecoveryTimeNs {
				fr.RecoveryTimeNs = st.RecoveryNsMax
			}
		}
		for _, sw := range sc.Spec.Switches {
			fr.SwitchDownDrops += sc.switches[sw.Name].DownDrops
		}
		r.Faults = fr
	}

	for _, l := range sc.links {
		r.Links = append(r.Links,
			linkReport(l.aName, l.bName, l.a),
			linkReport(l.bName, l.aName, l.b))
	}
	return r
}

// linkReport summarises one transmit direction. Payload bytes are
// frame bytes minus one Ethernet header per frame — exact, since
// every simulated frame carries the 14-byte header.
func linkReport(from, to string, e *netsim.Endpoint) LinkReport {
	hdrBytes := uint64(packet.HeaderLen) * e.TxFrames
	var payload uint64
	if e.TxBytes > hdrBytes {
		payload = e.TxBytes - hdrBytes
	}
	return LinkReport{
		From:         from,
		To:           to,
		TxFrames:     e.TxFrames,
		TxBytes:      e.TxBytes,
		PayloadBytes: payload,
		Lost:         e.Stats.Lost,
		Duplicated:   e.Stats.Duplicated,
		Reordered:    e.Stats.Reordered,
		DownDrops:    e.Stats.DownDrops,
	}
}

// WriteText renders the report for humans.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario %s (seed %d): %.3f ms simulated\n", r.Scenario, r.Seed, r.ElapsedMs)
	fmt.Fprintf(w, "  offered   : %d frames, %d payload bytes\n", r.Offered.Frames, r.Offered.PayloadBytes)
	fmt.Fprintf(w, "  delivered : %d frames, %d payload bytes (rate %.4f)\n",
		r.Delivered.Frames, r.Delivered.PayloadBytes, r.DeliveryRate)
	if r.Encode.EncPayloadIn > 0 {
		fmt.Fprintf(w, "  encode    : %d→type2  %d→type3  ratio %.4f  (in %d B, out %d B)\n",
			r.Encode.RawToType2, r.Encode.RawToType3, r.CompressionRatio,
			r.Encode.EncPayloadIn, r.Encode.EncPayloadOut)
	}
	if p := r.Placement; p != nil {
		fmt.Fprintf(w, "  placement : %s, %d encoders over %d-bit identifiers\n",
			p.Strategy, len(p.Encoders), p.IDBits)
	}
	if l := r.Learning; l != nil {
		fmt.Fprintf(w, "  learning  : %d bases (recycled %d, expired %d), digests %d (%d B)\n",
			l.Learned, l.Recycled, l.Expired, l.DigestsSeen, l.DigestBytes)
		if l.DelayN > 0 {
			fmt.Fprintf(w, "  delay     : mean %.3f ms  p50 %.3f  p90 %.3f  p99 %.3f  (n=%d)\n",
				l.DelayMeanMs, l.DelayP50Ms, l.DelayP90Ms, l.DelayP99Ms, l.DelayN)
		}
	}
	if f := r.Faults; f != nil {
		fmt.Fprintf(w, "  faults    : stranded %d  bypass %d  retransmits %d  abandoned %d  msgs lost %d\n",
			f.StrandedCompressed, f.BypassFrames, f.Retransmits, f.Abandoned, f.ControlMsgsLost)
		fmt.Fprintf(w, "  recovery  : %d resyncs, slowest %.3f ms  (stale digests %d, crash drops %d)\n",
			f.Resyncs, float64(f.RecoveryTimeNs)/1e6, f.StaleDigests, f.SwitchDownDrops)
	}
	for _, h := range r.Hosts {
		fmt.Fprintf(w, "  host %-10s rx %8d frames (raw %d, t2 %d, t3 %d)  %.3f Gbit/s",
			h.Host, h.RxFrames, h.RawFrames, h.Type2Frames, h.Type3Frames, h.GoodputGbps)
		if h.LearningDelayMs >= 0 {
			fmt.Fprintf(w, "  t3−t2 %.3f ms", h.LearningDelayMs)
		}
		fmt.Fprintln(w)
	}
	for _, l := range r.Links {
		if l.TxFrames == 0 && l.Lost == 0 {
			continue
		}
		fmt.Fprintf(w, "  link %s→%s: %d frames, %d B", l.From, l.To, l.TxFrames, l.TxBytes)
		if l.Lost+l.Duplicated+l.Reordered > 0 {
			fmt.Fprintf(w, "  (lost %d, dup %d, reordered %d)", l.Lost, l.Duplicated, l.Reordered)
		}
		fmt.Fprintln(w)
	}
}
