package scenario

import "zipline/internal/netsim"

// Presets are ready-made scenarios: the paper's testbed, multi-switch
// chains, and degraded variants. Preset returns a copy, so callers
// may mutate freely (the CLI applies flag overrides on top).
func Preset(name string) (Spec, bool) {
	switch name {
	case "single":
		// The paper's §7 testbed: two servers through one switch
		// running the unified encode pipeline.
		return Spec{
			Name: "single",
			Hosts: []HostSpec{
				{Name: "sender", MaxPPS: 500_000},
				{Name: "sink"},
			},
			Switches: []SwitchSpec{
				{Name: "sw", Ports: []PortSpec{
					{Port: 0, Role: RoleEncode, Out: 1},
					{Port: 1, Role: RoleForward, Out: 0},
				}},
			},
			Links: []LinkSpec{
				{A: "sender", B: "sw:0"},
				{A: "sw:1", B: "sink"},
			},
			Traffic: []TrafficSpec{
				{From: "sender", To: "sink", Workload: WorkloadSensor, Records: 20_000},
			},
		}, true

	case "chain3":
		// Encoder → transit → decoder: the compressed hop spans a
		// plain forwarding switch, and the sink receives restored raw
		// traffic.
		return Spec{
			Name: "chain3",
			Hosts: []HostSpec{
				{Name: "sender", MaxPPS: 500_000},
				{Name: "sink"},
			},
			Switches: []SwitchSpec{
				{Name: "enc", Ports: []PortSpec{{Port: 0, Role: RoleEncode, Out: 1}}},
				{Name: "mid", Ports: []PortSpec{{Port: 0, Role: RoleForward, Out: 1}}},
				{Name: "dec", Ports: []PortSpec{{Port: 0, Role: RoleDecode, Out: 1}}},
			},
			Links: []LinkSpec{
				{A: "sender", B: "enc:0"},
				{A: "enc:1", B: "mid:0"},
				{A: "mid:1", B: "dec:0"},
				{A: "dec:1", B: "sink"},
			},
			Traffic: []TrafficSpec{
				{From: "sender", To: "sink", Workload: WorkloadSensor, Records: 20_000},
			},
		}, true

	case "lossy-chain3":
		// The chain with a degraded compressed hop: loss, duplication,
		// reordering and queueing jitter on both transit links. The
		// learning delay must still match the control plane's model —
		// impairments slow traffic, not BfRt writes.
		spec, _ := Preset("chain3")
		spec.Name = "lossy-chain3"
		spec.Links[1].LossProb = 0.01
		spec.Links[1].ReorderProb = 0.005
		spec.Links[1].ExtraLatencyNs = 2_000
		spec.Links[2].LossProb = 0.01
		spec.Links[2].DupProb = 0.005
		spec.Links[2].ExtraLatencyNs = 2_000
		return spec, true

	case "perf":
		// Wall-clock measurement scenario: encoder → decoder with
		// high-rate repeat-heavy sensor traffic, enough records that
		// packets/sec and events/sec of the engine itself are
		// measurable. The dataplane spends the run in the steady
		// (dictionary-warm, allocation-free) state the tentpole
		// optimises.
		return Spec{
			Name: "perf",
			Hosts: []HostSpec{
				{Name: "sender", MaxPPS: 5_000_000},
				{Name: "sink"},
			},
			Switches: []SwitchSpec{
				{Name: "enc", Ports: []PortSpec{{Port: 0, Role: RoleEncode, Out: 1}}},
				{Name: "dec", Ports: []PortSpec{{Port: 0, Role: RoleDecode, Out: 1}}},
			},
			Links: []LinkSpec{
				{A: "sender", B: "enc:0"},
				{A: "enc:1", B: "dec:0"},
				{A: "dec:1", B: "sink"},
			},
			Traffic: []TrafficSpec{
				{From: "sender", To: "sink", Workload: WorkloadSensor, Records: 200_000},
			},
		}, true

	case "lossy-control":
		// The self-healing demonstration: the chain3 pipeline under a
		// hostile control plane — every fifth control message lost, and
		// the decoder power-cycles mid-stream. The reliable
		// retransmit/quarantine protocol must deliver zero stranded
		// compressed packets and re-converge to the fault-free
		// compression ratio.
		spec, _ := Preset("chain3")
		spec.Name = "lossy-control"
		spec.Faults = &netsim.FaultSpec{
			ControlLossProb: 0.2,
			Restarts: []netsim.RestartSpec{
				{Switch: "dec", AtNs: 10_000_000, DownNs: 2_000_000},
			},
		}
		return spec, true

	case "fanin":
		// Two edge encoders share one core decoder and one controller:
		// a basis learned from either sender compresses traffic from
		// both (the network-wide placement of Beirami et al.).
		return Spec{
			Name: "fanin",
			Hosts: []HostSpec{
				{Name: "senderA", MaxPPS: 300_000},
				{Name: "senderB", MaxPPS: 300_000},
				{Name: "sink"},
			},
			Switches: []SwitchSpec{
				{Name: "encA", Ports: []PortSpec{{Port: 0, Role: RoleEncode, Out: 1}}},
				{Name: "encB", Ports: []PortSpec{{Port: 0, Role: RoleEncode, Out: 1}}},
				{Name: "core", Ports: []PortSpec{
					{Port: 0, Role: RoleDecode, Out: 2},
					{Port: 1, Role: RoleDecode, Out: 2},
				}},
			},
			Links: []LinkSpec{
				{A: "senderA", B: "encA:0"},
				{A: "senderB", B: "encB:0"},
				{A: "encA:1", B: "core:0"},
				{A: "encB:1", B: "core:1"},
				{A: "core:2", B: "sink"},
			},
			Traffic: []TrafficSpec{
				{From: "senderA", To: "sink", Workload: WorkloadSensor, Records: 10_000, Seed: 100},
				{From: "senderB", To: "sink", Workload: WorkloadSensor, Records: 10_000, Seed: 100},
			},
		}, true
	case "fat-tree":
		// A k=4 fat-tree (16 hosts, 20 switches) under flow churn
		// with greedy dictionary placement: the profiling pass
		// concentrates identifier shares on the switches that actually
		// observe raw redundancy — the edge tier, since the first
		// encode point on a path converts everything to type 2/3.
		return Spec{
			Name:      "fat-tree",
			Topology:  &TopologySpec{Kind: TopoFatTree, K: 4},
			Flows:     &FlowsSpec{Count: 64},
			Placement: &PlacementSpec{Strategy: "greedy"},
		}, true

	case "fat-tree-churn":
		// Datacenter scale: a k=8 fat-tree with 32 hosts per edge
		// switch — 1024 hosts, 80 switches, 1280 links — under heavier
		// churn with edge placement. The sharded event loop's width
		// test.
		return Spec{
			Name:      "fat-tree-churn",
			Topology:  &TopologySpec{Kind: TopoFatTree, K: 8, HostsPerEdge: 32},
			Flows:     &FlowsSpec{Count: 128},
			Placement: &PlacementSpec{Strategy: "edge"},
		}, true
	}
	return Spec{}, false
}

// PresetNames lists the built-in scenarios in display order.
func PresetNames() []string {
	return []string{"single", "chain3", "lossy-chain3", "lossy-control", "fanin", "perf", "fat-tree", "fat-tree-churn"}
}
