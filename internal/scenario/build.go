package scenario

import (
	"fmt"
	"math/rand"

	"zipline/internal/controlplane"
	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/tofino"
	"zipline/internal/trace"
	"zipline/internal/zswitch"
)

// builtLink keeps both directions of a wired link for reporting.
type builtLink struct {
	aName, bName string
	a, b         *netsim.Endpoint
}

// Scenario is a built, runnable simulation. Build wires everything
// and schedules the declared traffic; Run executes and reports.
// Experiments needing bespoke traffic or measurement can reach the
// components through Host, Switch and Pipeline before calling Run.
type Scenario struct {
	Spec Spec
	Sim  *netsim.Sim
	// Ctl is the shared control plane, nil when no port has the
	// encode role. Identifier-ranged builds run one controller per
	// encoding switch; Ctl is then the first (spec order) and ctls
	// holds them all.
	Ctl *controlplane.Controller

	ctls []*controlplane.Controller
	// placement records the topology expansion's dictionary placement
	// (nil for explicitly-declared scenarios).
	placement *PlacementReport

	hosts    map[string]*netsim.Host
	macs     map[string]packet.MAC
	switches map[string]*netsim.Switch
	pipes    map[string]*tofino.Pipeline
	prog     *zswitch.Program // first switch's program (shared codec config)
	encNames []string         // switches with an encode-role port, spec order
	links    []builtLink

	offeredFrames  uint64
	offeredPayload uint64

	// faults is the armed fault injector (nil in fault-free runs);
	// faultSpec is the schedule with defaults applied.
	faults    *netsim.Faults
	faultSpec netsim.FaultSpec
}

// Build validates the spec and wires the simulation. The returned
// scenario has all declared traffic scheduled but not yet run.
func Build(spec Spec) (*Scenario, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	var placeRep *PlacementReport
	if spec.Topology != nil {
		var err error
		spec, placeRep, err = expandTopology(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %q: expanded: %w", spec.Name, err)
		}
	}
	sc := &Scenario{
		Spec:     spec,
		Sim:      netsim.NewSim(spec.Seed),
		hosts:    make(map[string]*netsim.Host),
		macs:     make(map[string]packet.MAC),
		switches: make(map[string]*netsim.Switch),
		pipes:    make(map[string]*tofino.Pipeline),
	}
	sc.placement = placeRep
	if spec.Faults.Armed() {
		sc.faultSpec = spec.Faults.WithDefaults()
		// The injector's seed derives from the scenario seed so fault
		// runs are reproducible, but its draws come from a separate
		// stream so arming faults never perturbs the sim's jitter.
		sc.faults = netsim.NewFaults(spec.Seed ^ faultSeedSalt)
	}

	// Host MACs first: switch destination routes resolve against them.
	// The 24-bit index keeps addresses unique for topology-scale host
	// counts and is byte-identical to the old single-byte scheme for
	// the first 255 hosts.
	for i, h := range spec.Hosts {
		n := i + 1
		sc.macs[h.Name] = packet.MAC{0x02, 0x5A, 0x00, byte(n >> 16), byte(n >> 8), byte(n)}
	}

	// Switch programs and pipelines, in spec order.
	var encPipes, decPipes []*tofino.Pipeline
	var encSpecs []SwitchSpec
	chunkBytes := 32 // paper default; overwritten once a program loads
	for _, sw := range spec.Switches {
		roles := make(map[tofino.Port]zswitch.Role)
		portMap := make(map[tofino.Port]tofino.Port)
		var macMap map[packet.MAC]tofino.Port
		hasEnc, hasDec := false, false
		maxPort := 0
		for _, p := range sw.Ports {
			switch p.Role {
			case RoleEncode:
				roles[tofino.Port(p.Port)] = zswitch.RoleEncode
				hasEnc = true
			case RoleDecode:
				roles[tofino.Port(p.Port)] = zswitch.RoleDecode
				hasDec = true
			}
			if len(sw.Routes) == 0 {
				portMap[tofino.Port(p.Port)] = tofino.Port(p.Out)
				if p.Out > maxPort {
					maxPort = p.Out
				}
			}
			if p.Port > maxPort {
				maxPort = p.Port
			}
		}
		if len(sw.Routes) > 0 {
			macMap = make(map[packet.MAC]tofino.Port, len(sw.Routes))
			for _, r := range sw.Routes {
				macMap[sc.macs[r.Dst]] = tofino.Port(r.Out)
				if r.Out > maxPort {
					maxPort = r.Out
				}
			}
		}
		prog, err := zswitch.New(zswitch.Config{
			M:       spec.Codec.M,
			IDBits:  spec.Codec.IDBits,
			T:       spec.Codec.T,
			TTLNs:   spec.Controller.TTLNs,
			Roles:   roles,
			PortMap: portMap,
			MACMap:  macMap,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: switch %s: %w", spec.Name, sw.Name, err)
		}
		chunkBytes = prog.Codec().ChunkBytes()
		if sc.prog == nil {
			sc.prog = prog
		}
		ports := tofino.DefaultPorts
		if maxPort >= ports {
			ports = maxPort + 1
		}
		pl, err := tofino.Load(tofino.Config{Name: sw.Name, Ports: ports}, prog)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: switch %s: %w", spec.Name, sw.Name, err)
		}
		sc.switches[sw.Name] = netsim.NewSwitch(sc.Sim, netsim.SwitchConfig{
			Name:              sw.Name,
			PipelineLatencyNs: netsim.Time(sw.PipelineLatencyNs),
		}, pl)
		sc.pipes[sw.Name] = pl
		if hasEnc {
			encPipes = append(encPipes, pl)
			sc.encNames = append(sc.encNames, sw.Name)
			encSpecs = append(encSpecs, sw)
		}
		if hasDec {
			decPipes = append(decPipes, pl)
		}
	}

	// Links: create endpoints, attach switch ports, remember host NICs.
	hostNIC := make(map[string]*netsim.Endpoint)
	for _, l := range spec.Links {
		cfg := netsim.LinkConfig{
			RateBps:       l.RateBps,
			PropagationNs: netsim.Time(l.PropagationNs),
			Impair: netsim.Impairments{
				LossProb:       l.LossProb,
				DupProb:        l.DupProb,
				ReorderProb:    l.ReorderProb,
				ReorderDelayNs: netsim.Time(l.ReorderDelayNs),
				ExtraLatencyNs: netsim.Time(l.ExtraLatencyNs),
			},
		}
		ea, eb := netsim.NewLink(sc.Sim, cfg, l.A, l.B)
		sc.links = append(sc.links, builtLink{aName: l.A, bName: l.B, a: ea, b: eb})
		for _, end := range []struct {
			ref string
			ep  *netsim.Endpoint
		}{{l.A, ea}, {l.B, eb}} {
			ref, err := parseEndpointRef(end.ref)
			if err != nil {
				return nil, err // unreachable: Validate parsed it already
			}
			if ref.isHost {
				hostNIC[ref.host] = end.ep
			} else {
				sc.switches[ref.sw].AttachPort(tofino.Port(ref.port), end.ep)
			}
		}
	}

	// Hosts, in spec order, with the MACs generated above.
	for _, h := range spec.Hosts {
		sc.hosts[h.Name] = netsim.NewHost(sc.Sim, netsim.HostConfig{
			Name:   h.Name,
			MAC:    sc.macs[h.Name],
			MaxPPS: h.MaxPPS,
		}, hostNIC[h.Name])
	}

	// One control plane spans every encoder and decoder. A scenario
	// with encoders but no decoders is the unified single-pipeline
	// deployment: the encoders' own tables take the decoder installs.
	if len(encPipes) > 0 {
		if len(decPipes) == 0 {
			decPipes = encPipes
		}
		cpCfg := controlplane.Config{
			IDBits:          spec.Codec.IDBits,
			DigestLatencyNs: netsim.Time(spec.Controller.DigestLatencyNs),
			DecisionNs:      netsim.Time(spec.Controller.DecisionNs),
			WriteLatencyNs:  netsim.Time(spec.Controller.WriteLatencyNs),
			SweepIntervalNs: netsim.Time(spec.Controller.SweepIntervalNs),
		}
		if cpCfg.IDBits == 0 {
			cpCfg.IDBits = 15
		}
		if spec.Controller.TTLNs > 0 && cpCfg.SweepIntervalNs == 0 {
			cpCfg.SweepIntervalNs = netsim.Time(spec.Controller.TTLNs / 2)
		}
		if sc.faults != nil {
			cpCfg.Faults = sc.faults
			cpCfg.ControlLossProb = sc.faultSpec.ControlLossProb
			cpCfg.RetransmitTimeoutNs = netsim.Time(sc.faultSpec.RetransmitTimeoutNs)
			cpCfg.MaxRetries = sc.faultSpec.MaxRetries
		}
		// All programs share one codec configuration, so any of them
		// answers for the dictionary key width.
		basisBits := sc.prog.Codec().BasisBits()
		ranged := false
		for _, sw := range encSpecs {
			if sw.IDLimit > 0 {
				ranged = true
				break
			}
		}
		if !ranged {
			ctl, err := controlplane.NewMulti(sc.Sim, cpCfg, encPipes, decPipes, basisBits)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
			}
			for _, name := range sc.encNames {
				ctl.Bind(sc.switches[name])
			}
			sc.ctls = []*controlplane.Controller{ctl}
		} else {
			// Identifier-ranged encoders each get their own controller
			// scoped to the declared range, all writing every decoder
			// table: disjoint ranges keep the installs collision-free,
			// so the range IS the switch's dictionary capacity share.
			for i, sw := range encSpecs {
				cfg := cpCfg
				cfg.IDFirst, cfg.IDLimit = sw.IDFirst, sw.IDLimit
				ctl, err := controlplane.NewMulti(sc.Sim, cfg, encPipes[i:i+1], decPipes, basisBits)
				if err != nil {
					return nil, fmt.Errorf("scenario %q: switch %s: %w", spec.Name, sw.Name, err)
				}
				ctl.Bind(sc.switches[sw.Name])
				sc.ctls = append(sc.ctls, ctl)
			}
		}
		sc.Ctl = sc.ctls[0]
		if sc.faults != nil {
			// Reliable writes check the target switch's crash state at
			// delivery; decoder-only switches aren't Bound, so register
			// every switch explicitly.
			for _, ctl := range sc.ctls {
				for _, sw := range spec.Switches {
					ctl.RegisterSwitch(sc.switches[sw.Name])
				}
			}
		}
	}

	// Declared traffic.
	for i, tr := range spec.Traffic {
		if err := sc.attachTraffic(i, tr, chunkBytes); err != nil {
			return nil, fmt.Errorf("scenario %q: traffic %d: %w", spec.Name, i, err)
		}
	}

	if sc.faults != nil {
		sc.scheduleFaults()
	}
	return sc, nil
}

// Host returns a wired host by name (nil if absent).
func (sc *Scenario) Host(name string) *netsim.Host { return sc.hosts[name] }

// MAC returns a host's generated address (zero if absent) — the
// destination experiments need when streaming bespoke frames.
func (sc *Scenario) MAC(name string) packet.MAC { return sc.macs[name] }

// Switch returns a wired switch by name (nil if absent).
func (sc *Scenario) Switch(name string) *netsim.Switch { return sc.switches[name] }

// Pipeline returns a switch's loaded pipeline by name (nil if
// absent).
func (sc *Scenario) Pipeline(name string) *tofino.Pipeline { return sc.pipes[name] }

// CountOffered folds externally generated traffic (frames sent via
// Host().Stream by an experiment, bypassing the spec's Traffic list)
// into the report's offered-load totals.
func (sc *Scenario) CountOffered(frames, payloadBytes uint64) {
	sc.offeredFrames += frames
	sc.offeredPayload += payloadBytes
}

// attachTraffic schedules one declared flow on its source host.
func (sc *Scenario) attachTraffic(idx int, tr TrafficSpec, chunkBytes int) error {
	seed := tr.Seed
	if seed == 0 {
		seed = sc.Spec.Seed + int64(idx+1)*7919
	}
	records := tr.Records
	if records == 0 {
		records = DefaultTrafficRecords
	}
	var payload func(i int) []byte
	switch tr.Workload {
	case WorkloadRepeat:
		p := make([]byte, chunkBytes)
		rand.New(rand.NewSource(seed)).Read(p)
		payload = func(int) []byte { return p }
	case WorkloadRandom:
		rng := rand.New(rand.NewSource(seed))
		p := make([]byte, chunkBytes)
		payload = func(int) []byte { rng.Read(p); return p }
	case WorkloadSensor:
		ds := trace.Sensor(trace.SensorConfig{Records: records, Seed: seed})
		payload = ds.Record
	case WorkloadDNS:
		ds := trace.DNS(trace.DNSConfig{Queries: records, Seed: seed})
		payload = ds.Record
	case WorkloadTrace:
		return sc.attachTraceTraffic(tr)
	default:
		return fmt.Errorf("unknown workload %q", tr.Workload)
	}

	host := sc.hosts[tr.From]
	hdr := packet.Header{Dst: sc.macs[tr.To], Src: sc.macs[tr.From], EtherType: packet.EtherTypeRaw}
	pps := tr.PPS
	if pps == 0 {
		pps = host.Config().MaxPPS
	}
	host.StreamPaced(netsim.Time(tr.StartNs), netsim.Time(tr.StopNs), pps, func(i uint64) []byte {
		if i >= uint64(records) {
			return nil
		}
		p := payload(int(i))
		sc.offeredFrames++
		sc.offeredPayload += uint64(len(p))
		return packet.Frame(hdr, p)
	})
	return nil
}

// Run executes the simulation — to the configured duration, or to
// event-queue quiescence when none is set — and builds the report.
func (sc *Scenario) Run() Report {
	if d := sc.Spec.DurationNs; d > 0 {
		sc.Sim.RunUntil(netsim.Time(d))
	} else {
		sc.Sim.Run()
	}
	return sc.report()
}
