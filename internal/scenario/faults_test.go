package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"zipline/internal/netsim"
	"zipline/internal/zswitch"
)

// encodeReport renders a report exactly as the CLI's -json mode does,
// so byte comparisons against saved reports are meaningful.
func encodeReport(t *testing.T, r Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNoFaultReportsMatchPrefaultGoldens is the no-fault no-change
// guarantee: every pre-fault preset, run with an explicitly present
// but empty FaultSpec, must produce a report byte-identical to the
// golden captured before the fault machinery existed. Any extra
// event, random draw, or JSON field in the unarmed path fails this.
func TestNoFaultReportsMatchPrefaultGoldens(t *testing.T) {
	for _, name := range []string{"single", "chain3", "lossy-chain3", "fanin", "perf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if name == "perf" && testing.Short() {
				t.Skip("perf preset is slow; run without -short")
			}
			golden, err := os.ReadFile(filepath.Join("testdata", "prefault", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			spec := preset(t, name)
			spec.Faults = &netsim.FaultSpec{} // present but unarmed
			got := encodeReport(t, mustBuild(t, spec).Run())
			if !bytes.Equal(got, golden) {
				t.Fatalf("report diverged from pre-fault golden (%d vs %d bytes)", len(got), len(golden))
			}
		})
	}
}

// TestFaultRunsAreDeterministic: the same armed spec must produce the
// identical report on every run — fault injection draws from its own
// seeded stream, retransmit timers carry no jitter.
func TestFaultRunsAreDeterministic(t *testing.T) {
	run := func() []byte {
		return encodeReport(t, mustBuild(t, preset(t, "lossy-control")).Run())
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical fault specs produced different reports")
	}
}

// TestLossyControlRecovers: the shipping fault preset must survive a
// 20% lossy control channel plus a decoder power cycle with zero
// stranded compressed packets, a completed resync, and the losses it
// does take fully accounted as crash drops.
func TestLossyControlRecovers(t *testing.T) {
	r := mustBuild(t, preset(t, "lossy-control")).Run()
	f := r.Faults
	if f == nil {
		t.Fatal("armed run produced no fault report")
	}
	if f.StrandedCompressed != 0 {
		t.Fatalf("stranded compressed packets: %d", f.StrandedCompressed)
	}
	if f.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", f.Resyncs)
	}
	if f.BypassFrames == 0 || f.Retransmits == 0 || f.ControlMsgsLost == 0 {
		t.Fatalf("fault machinery idle: %+v", f)
	}
	if f.RecoveryTimeNs <= 2_000_000 {
		t.Fatalf("recovery %.3f ms cannot be shorter than the 2 ms reboot", float64(f.RecoveryTimeNs)/1e6)
	}
	// Every missing frame died in the crash window — nothing vanished
	// into a decoder miss or a stuck queue.
	if lost := r.Offered.Frames - r.Delivered.Frames; lost != f.SwitchDownDrops {
		t.Fatalf("offered−delivered = %d but crash drops = %d", lost, f.SwitchDownDrops)
	}
	if r.DeliveryRate < 0.7 {
		t.Fatalf("delivery rate %.3f collapsed", r.DeliveryRate)
	}
}

// forwardOnly strips every encode/decode role, turning the topology
// into a plain uncompressed network with no controller.
func forwardOnly(spec Spec) Spec {
	for si := range spec.Switches {
		for pi := range spec.Switches[si].Ports {
			spec.Switches[si].Ports[pi].Role = RoleForward
		}
	}
	return spec
}

// TestRestartDeliveryMatchesUncompressedBaseline pins the acceptance
// bound: with a decoder power cycle (and a lossless control channel),
// running ZipLine must not deliver fewer frames than the identical
// uncompressed network under the identical fault schedule — recovery
// overlaps the reboot, so compression costs no extra downtime.
func TestRestartDeliveryMatchesUncompressedBaseline(t *testing.T) {
	faults := &netsim.FaultSpec{
		Restarts: []netsim.RestartSpec{
			{Switch: "dec", AtNs: 10_000_000, DownNs: 5_000_000},
		},
	}
	zip := preset(t, "chain3")
	zip.Faults = faults
	zr := mustBuild(t, zip).Run()

	base := forwardOnly(preset(t, "chain3"))
	base.Faults = faults
	br := mustBuild(t, base).Run()

	if zr.Faults.StrandedCompressed != 0 {
		t.Fatalf("stranded: %d", zr.Faults.StrandedCompressed)
	}
	if br.Delivered.Frames >= br.Offered.Frames {
		t.Fatal("baseline lost nothing; the restart never bit")
	}
	if zr.Delivered.Frames < br.Delivered.Frames {
		t.Fatalf("compressed delivery %d < uncompressed baseline %d",
			zr.Delivered.Frames, br.Delivered.Frames)
	}
}

// tailRatio runs spec and returns its report plus the encode
// compression ratio measured only over [tailStart, end) — the
// post-recovery steady state, excluding the crash and bypass window.
func tailRatio(t *testing.T, spec Spec, tailStart netsim.Time) (Report, float64) {
	t.Helper()
	sc := mustBuild(t, spec)
	var inAt, outAt uint64
	sc.Sim.At(tailStart, func() {
		for _, name := range spec.switchNames() {
			st := zswitch.ReadStats(sc.Pipeline(name))
			inAt += st.EncPayloadIn
			outAt += st.EncPayloadOut
		}
	})
	r := sc.Run()
	var inEnd, outEnd uint64
	for _, name := range spec.switchNames() {
		st := zswitch.ReadStats(sc.Pipeline(name))
		inEnd += st.EncPayloadIn
		outEnd += st.EncPayloadOut
	}
	if inEnd == inAt {
		t.Fatalf("no encode traffic after %v", tailStart)
	}
	return r, float64(outEnd-outAt) / float64(inEnd-inAt)
}

// switchNames lists the spec's switches (test helper).
func (s Spec) switchNames() []string {
	names := make([]string, len(s.Switches))
	for i, sw := range s.Switches {
		names[i] = sw.Name
	}
	return names
}

// TestCompressionRatioRecovers pins the re-convergence acceptance
// bound: after the decoder restart is reconciled, the steady-state
// compression ratio must come back to within 5% of the fault-free
// run's over the same window. The schedule is restart-only — a
// *persistently* lossy control channel also slows the learning of
// new bases in the tail, which is channel cost, not failed recovery.
func TestCompressionRatioRecovers(t *testing.T) {
	// Crash at 10 ms, lossless control: recovery lands around 13.6 ms,
	// so [25 ms, end) is post-recovery steady state on both runs
	// (traffic flows to ≈40 ms).
	const tailStart = 25 * netsim.Millisecond

	clean := preset(t, "chain3")
	_, cleanTail := tailRatio(t, clean, tailStart)

	faulty := preset(t, "chain3")
	faulty.Faults = &netsim.FaultSpec{
		Restarts: []netsim.RestartSpec{
			{Switch: "dec", AtNs: 10_000_000, DownNs: 2_000_000},
		},
	}
	fr, faultyTail := tailRatio(t, faulty, tailStart)

	if fr.Faults.RecoveryTimeNs > int64(tailStart-10*netsim.Millisecond) {
		t.Fatalf("recovery %.3f ms ran past the tail window; widen the test margins",
			float64(fr.Faults.RecoveryTimeNs)/1e6)
	}
	if rel := (faultyTail - cleanTail) / cleanTail; rel > 0.05 || rel < -0.05 {
		t.Fatalf("post-recovery ratio %.4f vs fault-free %.4f (%.1f%% off, want ≤5%%)",
			faultyTail, cleanTail, rel*100)
	}
}

// hammerSpec derives a randomized-but-deterministic fault schedule
// for one hammer iteration: every switch may power-cycle (windows
// kept disjoint), the control channel may be lossy.
func hammerSpec(base Spec, rng *rand.Rand) Spec {
	f := &netsim.FaultSpec{
		ControlLossProb: []float64{0, 0.1, 0.3}[rng.Intn(3)],
	}
	at := int64(3+rng.Intn(3)) * 1_000_000
	for _, sw := range base.Switches {
		if rng.Intn(2) == 0 {
			continue
		}
		down := int64(1+rng.Intn(4)) * 1_000_000
		f.Restarts = append(f.Restarts, netsim.RestartSpec{
			Switch: sw.Name, AtNs: at, DownNs: down,
		})
		at += down + int64(rng.Intn(3))*1_000_000
	}
	if !f.Armed() {
		f.ControlLossProb = 0.1
	}
	base.Faults = f
	for i := range base.Traffic {
		base.Traffic[i].Records = 8_000
	}
	return base
}

// TestFaultScheduleHammer is the invariant hammer: randomized fault
// schedules across seeds and topologies, every one of which must end
// with zero stranded compressed packets, all bypasses released, and
// every scheduled reconciliation completed.
func TestFaultScheduleHammer(t *testing.T) {
	seeds := 32
	if testing.Short() {
		seeds = 8
	}
	for _, presetName := range []string{"chain3", "fanin"} {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			presetName, seed := presetName, seed
			t.Run(fmt.Sprintf("%s/seed%d", presetName, seed), func(t *testing.T) {
				t.Parallel()
				base := preset(t, presetName)
				base.Seed = seed
				spec := hammerSpec(base, rand.New(rand.NewSource(seed*31+int64(len(presetName)))))
				sc := mustBuild(t, spec)
				r := sc.Run()

				if r.Faults == nil {
					t.Fatal("armed hammer run produced no fault report")
				}
				if r.Faults.StrandedCompressed != 0 {
					t.Fatalf("stranded compressed packets: %d (schedule %+v)",
						r.Faults.StrandedCompressed, spec.Faults)
				}
				if r.Encode.DecodeMiss != 0 {
					t.Fatalf("decode misses: %d", r.Encode.DecodeMiss)
				}
				// Re-convergence: every quarantine was released...
				for _, name := range spec.switchNames() {
					if zswitch.Bypassing(sc.Pipeline(name)) {
						t.Fatalf("switch %s still bypassing at end of run", name)
					}
				}
				// ...and every managed restart completed its resync.
				managed := 0
				for _, rs := range spec.Faults.Restarts {
					if sc.Ctl.Manages(sc.Pipeline(rs.Switch)) {
						managed++
					}
				}
				if got := sc.Ctl.Stats().Resyncs; int(got) != managed {
					t.Fatalf("resyncs = %d, want %d (schedule %+v)", got, managed, spec.Faults)
				}
				// The strongest form of zero-stranded: every missing
				// frame is attributable to a down window (the preset
				// links themselves are lossless) — nothing vanished
				// into a miss, a stale table, or a stuck queue.
				var linkDown uint64
				for _, l := range r.Links {
					linkDown += l.DownDrops
				}
				lost := r.Offered.Frames - r.Delivered.Frames
				if lost != r.Faults.SwitchDownDrops+linkDown {
					t.Fatalf("offered−delivered = %d but down-window drops = %d+%d (schedule %+v)",
						lost, r.Faults.SwitchDownDrops, linkDown, spec.Faults)
				}
				if r.DeliveryRate < 0.15 {
					t.Fatalf("delivery rate %.3f collapsed under %+v", r.DeliveryRate, spec.Faults)
				}
			})
		}
	}
}

// TestLinkFlapDropsAndRecovers: a mid-chain link flap loses the
// window's frames in both directions and nothing else — no stranding,
// no stuck state.
func TestLinkFlapDropsAndRecovers(t *testing.T) {
	spec := preset(t, "chain3")
	spec.Faults = &netsim.FaultSpec{
		LinkFlaps: []netsim.FlapSpec{{Link: 2, AtNs: 10_000_000, DownNs: 2_000_000}},
	}
	r := mustBuild(t, spec).Run()
	if r.Faults.StrandedCompressed != 0 {
		t.Fatalf("stranded: %d", r.Faults.StrandedCompressed)
	}
	if r.Delivered.Frames >= r.Offered.Frames {
		t.Fatal("flap lost nothing")
	}
	var downDrops uint64
	for _, l := range r.Links {
		downDrops += l.DownDrops
	}
	if downDrops == 0 {
		t.Fatal("flap window not accounted in link down_drops")
	}
	if r.DeliveryRate < 0.9 {
		t.Fatalf("delivery rate %.3f, want a single flap window of loss", r.DeliveryRate)
	}
}

// TestValidateRejectsBadFaults: schedule validation runs inside
// Build.
func TestValidateRejectsBadFaults(t *testing.T) {
	cases := []netsim.FaultSpec{
		{ControlLossProb: 1.5},
		{Restarts: []netsim.RestartSpec{{Switch: "ghost"}}},
		{Restarts: []netsim.RestartSpec{{Switch: "sender"}}}, // a host, not a switch
		{LinkFlaps: []netsim.FlapSpec{{Link: 99}}},
	}
	for i := range cases {
		spec := preset(t, "chain3")
		spec.Faults = &cases[i]
		if _, err := Build(spec); err == nil {
			t.Errorf("case %d: bad fault schedule %+v accepted", i, cases[i])
		}
	}
}
