// Package scenario is the declarative layer over the discrete-event
// testbed: it turns a small JSON-serialisable Spec — hosts, switches
// with per-port ZipLine roles, links with impairments, traffic from
// the paper's workload generators — into a wired simulation with one
// shared control plane, runs it, and distils a metrics report
// (compression ratio, learning-delay percentiles, goodput, digest
// volume) from the run.
//
// This is the engine behind cmd/zipline-sim and the §7 end-to-end
// experiments: where the paper evaluates ZipLine on one switch and
// two servers, a Spec can place encoders and decoders across an
// arbitrary topology and degrade any link, the scenario axis the
// packet-level network-compression literature (Beirami et al.) shows
// matters for en-route compression. Every run is deterministic under
// its seed, so scenarios double as regression tests.
package scenario
