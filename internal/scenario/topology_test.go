package scenario

import (
	"bytes"
	"fmt"
	"testing"
)

// TestFatTreePresetDelivers: the generated k=4 fat-tree under churn
// must deliver every offered frame, decompressed by arrival, with one
// identifier-ranged controller per edge switch and a placement
// section in the report.
func TestFatTreePresetDelivers(t *testing.T) {
	sc := mustBuild(t, preset(t, "fat-tree"))
	r := sc.Run()
	if r.DeliveryRate != 1 {
		t.Fatalf("delivery rate %.4f, want 1", r.DeliveryRate)
	}
	for _, h := range r.Hosts {
		if h.Type2Frames+h.Type3Frames > 0 {
			t.Fatalf("host %s received %d compressed frames", h.Host, h.Type2Frames+h.Type3Frames)
		}
	}
	if r.Encode.RawToType3 == 0 {
		t.Fatal("no traffic was compressed")
	}
	if got, want := len(sc.ctls), 8; got != want {
		t.Fatalf("controllers = %d, want one per edge switch (%d)", got, want)
	}
	p := r.Placement
	if p == nil {
		t.Fatal("no placement section in the report")
	}
	if p.Strategy != "greedy" || len(p.Encoders) != 8 {
		t.Fatalf("placement = %s with %d encoders, want greedy with 8", p.Strategy, len(p.Encoders))
	}
	for _, e := range p.Encoders {
		if e.ProfileDigests == 0 {
			t.Errorf("encoder %s kept a share without profiling signal", e.Switch)
		}
	}
}

// TestGreedyBeatsUniform is the placement subsystem's headline claim:
// under scarce identifiers, weighting shares by observed redundancy
// compresses better than spreading them over switches that only see
// already-compressed traffic.
func TestGreedyBeatsUniform(t *testing.T) {
	run := func(strategy string) float64 {
		spec := preset(t, "fat-tree")
		spec.Codec.IDBits = 8
		spec.Placement.Strategy = strategy
		return mustBuild(t, spec).Run().CompressionRatio
	}
	greedy, uniform := run("greedy"), run("uniform")
	if greedy >= uniform {
		t.Fatalf("greedy ratio %.4f not below uniform %.4f", greedy, uniform)
	}
}

// TestISPTopologyDelivers: the seeded ISP generator expands and runs
// end to end.
func TestISPTopologyDelivers(t *testing.T) {
	spec := Spec{
		Name:     "isp-test",
		Topology: &TopologySpec{Kind: TopoISP, Switches: 10},
		Flows:    &FlowsSpec{Count: 16, MeanRecords: 50},
	}
	r := mustBuild(t, spec).Run()
	if r.DeliveryRate != 1 {
		t.Fatalf("delivery rate %.4f, want 1", r.DeliveryRate)
	}
	if r.Placement == nil || r.Placement.Strategy != "edge" {
		t.Fatalf("placement = %+v, want the edge default", r.Placement)
	}
}

// TestFatTreeChurnAtScale: the 1024-host k=8 preset must complete and
// deliver everything — the sharded event loop's width test.
func TestFatTreeChurnAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host build; run without -short")
	}
	r := mustBuild(t, preset(t, "fat-tree-churn")).Run()
	if got, want := len(r.Hosts), 1024; got != want {
		t.Fatalf("hosts = %d, want %d", got, want)
	}
	if r.DeliveryRate != 1 {
		t.Fatalf("delivery rate %.4f, want 1", r.DeliveryRate)
	}
	if r.Encode.RawToType3 == 0 {
		t.Fatal("no traffic was compressed")
	}
}

// TestFatTreeChurnSeedHammer: sixteen seeds of fat-tree churn, each
// run twice, must reproduce byte-for-byte. This is the race job's
// determinism hammer for the sharded event loop.
func TestFatTreeChurnSeedHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("32 churn runs; run without -short")
	}
	for seed := int64(1); seed <= 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() []byte {
				spec := preset(t, "fat-tree")
				spec.Seed = seed
				return encodeReport(t, mustBuild(t, spec).Run())
			}
			if a, b := run(), run(); !bytes.Equal(a, b) {
				t.Fatal("same seed produced different reports")
			}
		})
	}
}

// TestTopologySpecValidation: the block-level misuse cases fail
// loudly.
func TestTopologySpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"flows without topology", Spec{Name: "x", Flows: &FlowsSpec{Count: 1}}},
		{"placement without topology", Spec{Name: "x", Placement: &PlacementSpec{}}},
		{"unknown kind", Spec{Name: "x", Topology: &TopologySpec{Kind: "torus"}}},
		{"unknown strategy", Spec{Name: "x", Topology: &TopologySpec{Kind: TopoFatTree},
			Placement: &PlacementSpec{Strategy: "psychic"}}},
		{"trace flows", Spec{Name: "x", Topology: &TopologySpec{Kind: TopoFatTree},
			Flows: &FlowsSpec{Workload: WorkloadTrace}}},
		{"explicit hosts alongside topology", Spec{Name: "x", Topology: &TopologySpec{Kind: TopoFatTree},
			Hosts: []HostSpec{{Name: "h"}}}},
	}
	for _, c := range cases {
		if _, err := Build(c.spec); err == nil {
			t.Errorf("%s: Build accepted the spec", c.name)
		}
	}
}
