package scenario

import (
	"fmt"

	"zipline/internal/placement"
	"zipline/internal/topo"
)

// Topology kinds accepted by TopologySpec.Kind.
const (
	TopoFatTree = "fat-tree"
	TopoISP     = "isp"
)

// DefaultProfileRecords caps each flow during the greedy placement's
// profiling pass.
const DefaultProfileRecords = 64

// defaultHostMaxPPS paces generated hosts: fast enough that churn
// runs finish quickly, slow enough that later flows overlap the
// control plane's learning delay.
const defaultHostMaxPPS = 500_000

// TopologySpec generates the scenario's hosts, switches and links
// from a parameterized graph. Expansion is deterministic: the same
// spec and seed produce the identical explicit scenario.
type TopologySpec struct {
	// Kind selects the generator: "fat-tree" or "isp".
	Kind string `json:"kind"`
	// K is the fat-tree arity (even, default 4): k pods of k/2 edge
	// and k/2 aggregation switches under (k/2)² cores.
	K int `json:"k,omitempty"`
	// HostsPerEdge sizes each edge switch's host fan-out (fat-tree
	// default K/2, ISP default 2).
	HostsPerEdge int `json:"hosts_per_edge,omitempty"`
	// Switches sizes the ISP backbone (default 12).
	Switches int `json:"switches,omitempty"`
	// EdgeFrac is the fraction of ISP switches bearing hosts (default
	// 0.5); ExtraDegree adds random chords beyond the backbone ring
	// (default 1.0).
	EdgeFrac    float64 `json:"edge_frac,omitempty"`
	ExtraDegree float64 `json:"extra_degree,omitempty"`
	// LatencyMinNs/LatencyMaxNs bound the ISP's per-link propagation
	// draw (defaults 10 µs and 500 µs).
	LatencyMinNs int64 `json:"latency_min_ns,omitempty"`
	LatencyMaxNs int64 `json:"latency_max_ns,omitempty"`
	// Seed drives the ISP graph draw (default: scenario seed).
	Seed int64 `json:"seed,omitempty"`
	// HostMaxPPS caps every generated host's traffic generator
	// (default 500,000).
	HostMaxPPS float64 `json:"host_max_pps,omitempty"`
	// LinkRateBps sizes every generated link (0 = netsim default).
	LinkRateBps int64 `json:"link_rate_bps,omitempty"`
}

// FlowsSpec generates the scenario's traffic from the flow-churn
// model: seeded flow arrivals over host pairs with exponential
// inter-arrival and flow-size distributions.
type FlowsSpec struct {
	// Count is the number of flows (default 64).
	Count int `json:"count,omitempty"`
	// MeanInterArrivalNs is the mean gap between flow arrivals
	// (default 50 µs).
	MeanInterArrivalNs int64 `json:"mean_interarrival_ns,omitempty"`
	// MeanRecords is the mean flow size in records (default 200).
	MeanRecords int `json:"mean_records,omitempty"`
	// PPS paces each flow (0 = the host generator's cap).
	PPS float64 `json:"pps,omitempty"`
	// ContentStreams bounds the distinct payload streams flows draw
	// from (default 4) — the cross-flow redundancy network-wide
	// dictionaries exploit.
	ContentStreams int `json:"content_streams,omitempty"`
	// Workload names every flow's payload generator (default
	// "sensor"; "trace" cannot be generated).
	Workload string `json:"workload,omitempty"`
	// Seed drives the churn draw (default: scenario seed).
	Seed int64 `json:"seed,omitempty"`
}

// PlacementSpec decides which generated switches encode and how the
// identifier space splits across them.
type PlacementSpec struct {
	// Strategy is "uniform", "greedy", "edge" (default) or "core".
	Strategy string `json:"strategy,omitempty"`
	// ProfileRecords caps each flow during greedy's profiling pass
	// (default 64).
	ProfileRecords int `json:"profile_records,omitempty"`
}

// validateTopology checks the topology/flows/placement blocks; the
// expanded spec gets the full structural validation afterwards.
func (s Spec) validateTopology() error {
	t := s.Topology
	switch t.Kind {
	case TopoFatTree, TopoISP:
	default:
		return fmt.Errorf("topology: unknown kind %q", t.Kind)
	}
	if p := s.Placement; p != nil {
		if p.Strategy != "" && !placement.Strategy(p.Strategy).Valid() {
			return fmt.Errorf("placement: unknown strategy %q", p.Strategy)
		}
		if p.ProfileRecords < 0 {
			return fmt.Errorf("placement: negative profile_records")
		}
	}
	if f := s.Flows; f != nil {
		if f.Count < 0 {
			return fmt.Errorf("flows: negative count")
		}
		switch f.Workload {
		case "", WorkloadRepeat, WorkloadRandom, WorkloadSensor, WorkloadDNS:
		default:
			return fmt.Errorf("flows: workload %q cannot be generated", f.Workload)
		}
	}
	return nil
}

// expandTopology materialises a topology-block spec into an explicit
// one: graph → hosts/switches/links, churn → traffic, placement plan
// → port roles, destination routes and identifier ranges. Returns the
// expanded spec plus the placement decision for the report.
func expandTopology(spec Spec) (Spec, *PlacementReport, error) {
	g, err := topoGraph(spec.Topology, spec.Seed)
	if err != nil {
		return Spec{}, nil, err
	}
	flows, err := topoFlows(g, spec)
	if err != nil {
		return Spec{}, nil, err
	}
	strategy := placement.Edge
	profileRecords := DefaultProfileRecords
	if p := spec.Placement; p != nil {
		if p.Strategy != "" {
			strategy = placement.Strategy(p.Strategy)
		}
		if p.ProfileRecords > 0 {
			profileRecords = p.ProfileRecords
		}
	}
	idBits := spec.Codec.IDBits
	if idBits == 0 {
		idBits = 15 // the dataplane's default operating point
	}
	var scores map[string]uint64
	if strategy == placement.Greedy {
		scores, err = profileScores(spec, g, flows, idBits, profileRecords)
		if err != nil {
			return Spec{}, nil, fmt.Errorf("placement profiling: %w", err)
		}
	}
	plan, err := placement.Compute(g, strategy, idBits, scores)
	if err != nil {
		return Spec{}, nil, err
	}
	out := specFromPlan(spec, g, plan, flows, true)
	rep := &PlacementReport{Strategy: string(plan.Strategy), IDBits: plan.IDBits}
	for _, sp := range plan.Switches {
		if !sp.Encode {
			continue
		}
		rep.Encoders = append(rep.Encoders, EncoderPlacement{
			Switch:         sp.Name,
			IDFirst:        sp.IDFirst,
			IDLimit:        sp.IDLimit,
			ProfileDigests: scores[sp.Name],
		})
	}
	return out, rep, nil
}

// topoGraph builds the declared graph.
func topoGraph(t *TopologySpec, seed int64) (*topo.Graph, error) {
	switch t.Kind {
	case TopoFatTree:
		k := t.K
		if k == 0 {
			k = 4
		}
		return topo.FatTree(topo.FatTreeConfig{K: k, HostsPerEdge: t.HostsPerEdge})
	case TopoISP:
		n := t.Switches
		if n == 0 {
			n = 12
		}
		s := t.Seed
		if s == 0 {
			s = seed
		}
		return topo.ISP(topo.ISPConfig{
			Switches:     n,
			EdgeFrac:     t.EdgeFrac,
			HostsPerEdge: t.HostsPerEdge,
			ExtraDegree:  t.ExtraDegree,
			LatencyMinNs: t.LatencyMinNs,
			LatencyMaxNs: t.LatencyMaxNs,
		}, s)
	}
	return nil, fmt.Errorf("topology: unknown kind %q", t.Kind)
}

// topoFlows draws the churn flows (defaults applied here so the
// profiling pass and the real run share one draw).
func topoFlows(g *topo.Graph, spec Spec) ([]topo.Flow, error) {
	f := spec.Flows
	if f == nil {
		f = &FlowsSpec{}
	}
	count := f.Count
	if count == 0 {
		count = 64
	}
	seed := f.Seed
	if seed == 0 {
		seed = spec.Seed
	}
	return topo.Churn(g, seed, topo.ChurnConfig{
		Flows:              count,
		MeanInterArrivalNs: f.MeanInterArrivalNs,
		MeanRecords:        f.MeanRecords,
		PPS:                f.PPS,
		ContentStreams:     f.ContentStreams,
		Workload:           f.Workload,
	})
}

// specFromPlan renders an explicit spec from the generated graph, the
// placement plan and the churn flows. withRanges=false omits the
// per-switch identifier ranges: the profiling pass shares one
// controller across every candidate encoder, so per-switch digest
// counts attribute cleanly without range exhaustion skewing them.
func specFromPlan(spec Spec, g *topo.Graph, plan *placement.Plan, flows []topo.Flow, withRanges bool) Spec {
	out := spec
	out.Topology, out.Flows, out.Placement = nil, nil, nil
	t := spec.Topology

	maxPPS := t.HostMaxPPS
	if maxPPS == 0 {
		maxPPS = defaultHostMaxPPS
	}
	out.Hosts = make([]HostSpec, len(g.Hosts))
	for i, h := range g.Hosts {
		out.Hosts[i] = HostSpec{Name: h.Name, MaxPPS: maxPPS}
	}

	out.Switches = make([]SwitchSpec, len(g.Switches))
	for i, sw := range g.Switches {
		sp := plan.Switches[i] // plan is in graph switch order
		ss := SwitchSpec{Name: sw.Name}
		for j, p := range sw.Ports {
			ss.Ports = append(ss.Ports, PortSpec{
				Port: p.Num,
				Role: roleName(sp.Roles[j].Role),
				Out:  p.Num, // ignored: Routes forward by destination
			})
		}
		for _, r := range sw.Routes {
			ss.Routes = append(ss.Routes, RouteSpec{Dst: r.Dst, Out: r.Out})
		}
		if withRanges && sp.Encode {
			ss.IDFirst, ss.IDLimit = sp.IDFirst, sp.IDLimit
		}
		out.Switches[i] = ss
	}

	out.Links = make([]LinkSpec, len(g.Links))
	for i, l := range g.Links {
		out.Links[i] = LinkSpec{
			A:             l.A,
			B:             l.B,
			RateBps:       t.LinkRateBps,
			PropagationNs: l.PropagationNs,
		}
	}

	out.Traffic = make([]TrafficSpec, len(flows))
	for i, f := range flows {
		out.Traffic[i] = TrafficSpec{
			From:     f.From,
			To:       f.To,
			Workload: f.Workload,
			Records:  f.Records,
			PPS:      f.PPS,
			StartNs:  f.StartNs,
			Seed:     f.Seed,
		}
	}
	return out
}

// roleName maps a placement role to the spec's role string.
func roleName(r placement.Role) string {
	switch r {
	case placement.RoleEncode:
		return RoleEncode
	case placement.RoleDecode:
		return RoleDecode
	}
	return RoleForward
}

// profileScores runs the truncated profiling pass greedy placement
// weighs shares by: the same topology under the uniform candidate
// placement (greedy without a signal), every flow capped at
// profileRecords, one controller spanning all candidates. Only the
// first encode point on a path ever sees raw frames — everything
// downstream arrives as type 2/3 — so the digest counts land exactly
// where raw redundancy is observed. Deterministic per spec.
func profileScores(spec Spec, g *topo.Graph, flows []topo.Flow, idBits, profileRecords int) (map[string]uint64, error) {
	plan, err := placement.Compute(g, placement.Greedy, idBits, nil)
	if err != nil {
		return nil, err
	}
	short := make([]topo.Flow, len(flows))
	copy(short, flows)
	for i := range short {
		if short[i].Records > profileRecords {
			short[i].Records = profileRecords
		}
	}
	pspec := specFromPlan(spec, g, plan, short, false)
	pspec.Name = spec.Name + "-profile"
	pspec.Faults = nil
	sc, err := Build(pspec)
	if err != nil {
		return nil, err
	}
	sc.Run()
	scores := make(map[string]uint64, len(plan.Switches))
	for _, sp := range plan.Switches {
		if sp.Encode {
			scores[sp.Name] = sc.Ctl.DigestsFrom(sc.pipes[sp.Name])
		}
	}
	return scores, nil
}
