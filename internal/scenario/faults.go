package scenario

import (
	"fmt"

	"zipline/internal/netsim"
	"zipline/internal/zswitch"
)

// faultSeedSalt decorrelates the fault injector's random stream from
// the simulator's jitter stream while keeping both derived from the
// one scenario seed.
const faultSeedSalt = 0x5A1BF00D

// scheduleFaults turns the validated fault schedule into simulator
// events. Called once from Build, only when the schedule is armed, so
// fault-free runs schedule nothing extra.
func (sc *Scenario) scheduleFaults() {
	for _, r := range sc.faultSpec.Restarts {
		sw := sc.switches[r.Switch]
		pl := sc.pipes[r.Switch]
		at := netsim.Time(r.AtNs)
		up := at + netsim.Time(r.DownNs)
		managed := sc.Ctl != nil && sc.Ctl.Manages(pl)
		holdDown := managed && sc.Ctl.IsDecoder(pl)
		sc.Sim.At(at, func() {
			// The crash: dataplane down, tables and queued digests
			// lost, epoch bumped so post-reboot digests are
			// distinguishable from pre-crash ones still in flight. The
			// controller detects the crash when the BfRt session
			// breaks — i.e. now — so reconciliation overlaps the
			// reboot instead of extending the outage.
			sw.SetDown(true)
			if _, err := zswitch.Restart(pl); err != nil {
				panic(fmt.Sprintf("scenario: restart %s: %v", sw.Pipeline().Config().Name, err))
			}
			switch {
			case holdDown:
				// A restarted decoder's ports come back at the later
				// of reboot completion and encoder quarantine — the
				// zero-stranded-packets interlock. The controller owns
				// the re-enable.
				sc.Ctl.SwitchRestarted(pl, at, up, func() { sw.SetDown(false) })
			case managed:
				// An encoder with empty tables is safe as soon as it
				// reboots (everything forwards uncompressed); the
				// controller repopulates its dictionary in the
				// background.
				sc.Ctl.SwitchRestarted(pl, at, up, nil)
			}
		})
		if !holdDown {
			sc.Sim.At(up, func() { sw.SetDown(false) })
		}
	}

	for _, fl := range sc.faultSpec.LinkFlaps {
		l := sc.links[fl.Link]
		at := netsim.Time(fl.AtNs)
		up := at + netsim.Time(fl.DownNs)
		sc.Sim.At(at, func() {
			l.a.SetDown(true)
			l.b.SetDown(true)
		})
		sc.Sim.At(up, func() {
			l.a.SetDown(false)
			l.b.SetDown(false)
		})
	}
}
