package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zipline/internal/netsim"
	"zipline/internal/zswitch"
)

func mustBuild(t *testing.T, spec Spec) *Scenario {
	t.Helper()
	sc, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func preset(t *testing.T, name string) Spec {
	t.Helper()
	spec, ok := Preset(name)
	if !ok {
		t.Fatalf("missing preset %q", name)
	}
	return spec
}

// TestChain3EndToEnd: encoder → transit → decoder must deliver every
// payload restored to raw, with the middle hop compressed.
func TestChain3EndToEnd(t *testing.T) {
	r := mustBuild(t, preset(t, "chain3")).Run()

	if r.Delivered.Frames != r.Offered.Frames {
		t.Fatalf("delivered %d of %d frames on ideal links", r.Delivered.Frames, r.Offered.Frames)
	}
	if r.Delivered.PayloadBytes != r.Offered.PayloadBytes {
		t.Fatalf("payload bytes: delivered %d, offered %d", r.Delivered.PayloadBytes, r.Offered.PayloadBytes)
	}
	sink := r.Hosts[1]
	if sink.Host != "sink" || sink.RawFrames != r.Offered.Frames || sink.Type2Frames != 0 || sink.Type3Frames != 0 {
		t.Fatalf("sink must see only restored raw traffic: %+v", sink)
	}
	if r.Encode.RawToType3 == 0 {
		t.Fatal("no compression on the chain")
	}
	if r.Encode.DecodeMiss != 0 {
		t.Fatalf("decode misses: %d", r.Encode.DecodeMiss)
	}
	if r.CompressionRatio <= 0 || r.CompressionRatio >= 1 {
		t.Fatalf("compression ratio = %.4f, want (0,1) for the sensor workload", r.CompressionRatio)
	}
	if r.Learning == nil || r.Learning.Learned == 0 {
		t.Fatalf("learning report missing or empty: %+v", r.Learning)
	}
}

// TestLossyChain3: under loss, duplication and reordering the system
// must degrade gracefully — no decode misses, no panics, delivery
// close to but below the offered load — and the control-plane
// learning delay must stay on the paper's model.
func TestLossyChain3(t *testing.T) {
	r := mustBuild(t, preset(t, "lossy-chain3")).Run()

	if r.DeliveryRate >= 1.0 || r.DeliveryRate < 0.93 {
		t.Fatalf("delivery rate = %.4f, want a few percent of loss", r.DeliveryRate)
	}
	if r.Encode.DecodeMiss != 0 {
		t.Fatalf("decode misses under impairment: %d", r.Encode.DecodeMiss)
	}
	var lost, dup, reordered uint64
	for _, l := range r.Links {
		lost += l.Lost
		dup += l.Duplicated
		reordered += l.Reordered
	}
	if lost == 0 || dup == 0 || reordered == 0 {
		t.Fatalf("impairments inactive: lost=%d dup=%d reordered=%d", lost, dup, reordered)
	}
	if r.Learning.DelayN == 0 {
		t.Fatal("no learning delays sampled")
	}
	if m := r.Learning.DelayMeanMs; m < 1.6 || m > 1.95 {
		t.Fatalf("learning delay mean = %.3f ms, want ≈1.77", m)
	}
}

// TestDeterminism: same spec and seed must produce the identical
// report, field for field — the property that lets scenarios serve
// as regression tests.
func TestDeterminism(t *testing.T) {
	for _, name := range PresetNames() {
		a := mustBuild(t, preset(t, name)).Run()
		b := mustBuild(t, preset(t, name)).Run()
		if !reflect.DeepEqual(a, b) {
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			t.Fatalf("preset %s diverged:\n%s\n%s", name, aj, bj)
		}
	}
}

// TestSeedChangesOutcome: a different seed must actually change an
// impaired run (otherwise "deterministic" would just mean frozen).
func TestSeedChangesOutcome(t *testing.T) {
	spec := preset(t, "lossy-chain3")
	a := mustBuild(t, spec).Run()
	spec.Seed = 2
	b := mustBuild(t, spec).Run()
	if reflect.DeepEqual(a, b) {
		t.Fatal("seed change produced the identical report")
	}
}

// TestFaninSharedController: two encoders share the controller, so a
// basis digested by either compresses traffic from both, and the
// second encoder's digests are deduplicated.
func TestFaninSharedController(t *testing.T) {
	sc := mustBuild(t, preset(t, "fanin"))
	r := sc.Run()

	if r.Encode.RawToType3 == 0 {
		t.Fatal("no compressed traffic")
	}
	for _, name := range []string{"encA", "encB"} {
		st := zswitch.ReadStats(sc.Pipeline(name))
		if st.RawToType3 == 0 {
			t.Fatalf("encoder %s never compressed (shared dictionary not installed?)", name)
		}
	}
	if r.Learning.DigestsSeen <= r.Learning.Learned {
		t.Fatalf("expected duplicate digests across encoders: seen %d, learned %d",
			r.Learning.DigestsSeen, r.Learning.Learned)
	}
	sink := r.Hosts[2]
	if sink.RawFrames != r.Offered.Frames {
		t.Fatalf("sink saw %d raw frames of %d offered", sink.RawFrames, r.Offered.Frames)
	}
}

// TestRepeatWorkloadLearningDelay: the paper's dynamic-learning
// measurement on the engine — a single unified switch, one repeated
// payload, receiver-side t3−t2 ≈ 1.77 ms.
func TestRepeatWorkloadLearningDelay(t *testing.T) {
	spec := preset(t, "single")
	spec.Hosts[0].MaxPPS = 7_000_000
	spec.Traffic = []TrafficSpec{{
		From: "sender", To: "sink", Workload: WorkloadRepeat,
		Records: 100_000, StopNs: 5 * int64(netsim.Millisecond),
	}}
	r := mustBuild(t, spec).Run()

	sink := r.Hosts[1]
	if sink.LearningDelayMs < 1.6 || sink.LearningDelayMs > 1.95 {
		t.Fatalf("receiver-side learning delay = %.3f ms, want ≈1.77", sink.LearningDelayMs)
	}
	if r.Learning.Learned != 1 {
		t.Fatalf("learned %d bases from one repeated payload", r.Learning.Learned)
	}
}

// TestJSONRoundTrip: a spec survives disk, and the loaded copy builds
// and runs to the same report as the original.
func TestJSONRoundTrip(t *testing.T) {
	spec := preset(t, "lossy-chain3")
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a := mustBuild(t, spec).Run()
	b := mustBuild(t, loaded).Run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("loaded spec ran to a different report")
	}
}

// TestValidateRejects: structural errors must be caught before any
// wiring happens.
func TestValidateRejects(t *testing.T) {
	base := func() Spec { return preset(t, "chain3") }
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"duplicate name", func(s *Spec) { s.Hosts[1].Name = "enc" }},
		{"unknown link host", func(s *Spec) { s.Links[0].A = "ghost" }},
		{"unwired host", func(s *Spec) { s.Hosts = append(s.Hosts, HostSpec{Name: "idle"}) }},
		{"double-wired port", func(s *Spec) { s.Links[3].A = "enc:0" }},
		{"undeclared switch port", func(s *Spec) { s.Links[1].A = "enc:40" }},
		{"bad role", func(s *Spec) { s.Switches[0].Ports[0].Role = "transmogrify" }},
		{"bad workload", func(s *Spec) { s.Traffic[0].Workload = "cat videos" }},
		{"bad probability", func(s *Spec) { s.Links[1].LossProb = 1.5 }},
		{"unknown traffic host", func(s *Spec) { s.Traffic[0].To = "ghost" }},
		{"sweep without duration", func(s *Spec) { s.Controller.TTLNs = 1000 }},
	}
	for _, tc := range cases {
		spec := base()
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

// TestTTLAgingInScenario: with TTL aging and a bounded duration,
// mappings for a workload that stops must expire and return
// identifiers to the pool.
func TestTTLAgingInScenario(t *testing.T) {
	spec := preset(t, "single")
	spec.Name = "single-ttl"
	spec.DurationNs = 40 * int64(netsim.Millisecond)
	spec.Controller.TTLNs = 5 * int64(netsim.Millisecond)
	spec.Traffic = []TrafficSpec{{
		From: "sender", To: "sink", Workload: WorkloadSensor,
		Records: 2_000, StopNs: 10 * int64(netsim.Millisecond),
	}}
	r := mustBuild(t, spec).Run()
	if r.Learning.Learned == 0 {
		t.Fatal("nothing learned")
	}
	if r.Learning.Expired == 0 {
		t.Fatalf("nothing expired after 30 ms idle with a 5 ms TTL: %+v", r.Learning)
	}
}
