package scenario

import (
	"testing"
)

// BenchmarkScenarioChain3 measures the end-to-end engine rate: one
// full chain3 run (build, traffic, control plane, report) per
// iteration, reporting simulator events/s and delivered frames/s of
// wall-clock — the whole-system number the dataplane refactor moves.
func BenchmarkScenarioChain3(b *testing.B) {
	spec, ok := Preset("chain3")
	if !ok {
		b.Fatal("chain3 preset missing")
	}
	spec.Traffic[0].Records = 5_000
	b.ReportAllocs()
	var events, frames uint64
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		sc, err := Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		r := sc.Run()
		if r.Delivered.Frames == 0 {
			b.Fatal("no traffic delivered")
		}
		events += sc.Sim.Scheduled()
		frames += r.Delivered.Frames
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(events)/sec, "events/s")
	b.ReportMetric(float64(frames)/sec, "frames/s")
}
