package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/pcap"
)

// replayTrace is a loaded pcap capture ready for replay: one payload
// per captured frame, plus each frame's departure offset from the
// first capture timestamp. Loaded traces are shared (and cached)
// across concurrent scenario builds, so the contents are read-only.
type replayTrace struct {
	payloads [][]byte
	offsets  []netsim.Time
}

// cachedTrace pairs a parsed capture with the file identity it was
// read from, so edits on disk invalidate the entry.
type cachedTrace struct {
	size  int64
	mtime time.Time
	rt    *replayTrace
}

// traceCache deduplicates capture loading: a sweep runs the same pcap
// through every grid cell, and re-reading a multi-hundred-MB file once
// per cell (times one copy per worker) would dominate the sweep. It is
// a plain map under a mutex — ziplint bans sync.Map in deterministic
// packages because its internal promotion order is scheduling-derived.
var (
	traceMu    sync.Mutex
	traceCache = make(map[string]*cachedTrace)
)

// loadReplayTrace returns the parsed capture at path, reading it only
// when the cache has no entry for the file's current size+mtime.
func loadReplayTrace(path string) (*replayTrace, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	traceMu.Lock()
	if ct, ok := traceCache[path]; ok && ct.size == st.Size() && ct.mtime.Equal(st.ModTime()) {
		traceMu.Unlock()
		return ct.rt, nil
	}
	traceMu.Unlock()
	rt, err := readReplayTrace(path)
	if err != nil {
		return nil, err
	}
	// Concurrent loaders may race between the lookup and this store;
	// the parse is deterministic, so last-write-wins is fine.
	traceMu.Lock()
	traceCache[path] = &cachedTrace{size: st.Size(), mtime: st.ModTime(), rt: rt}
	traceMu.Unlock()
	return rt, nil
}

// readReplayTrace reads an Ethernet pcap (cmd/tracegen's output, or
// any capture of raw ZipLine traffic) into replayable form.
func readReplayTrace(path string) (*replayTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	if rd.LinkType() != pcap.LinkTypeEthernet {
		return nil, fmt.Errorf("pcap %s: link type %d, want Ethernet (%d)", path, rd.LinkType(), pcap.LinkTypeEthernet)
	}
	rt := &replayTrace{}
	var ts0 int64
	for i := 0; ; i++ {
		ts, frame, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pcap %s: %w", path, err)
		}
		_, payload, err := packet.ParseHeader(frame)
		if err != nil {
			return nil, fmt.Errorf("pcap %s: frame %d: %w", path, i, err)
		}
		if i == 0 {
			ts0 = ts
		}
		off := netsim.Time(ts - ts0)
		// Host.StreamTimed requires non-decreasing departure offsets;
		// reject out-of-order captures (merged multi-source pcaps)
		// here rather than silently clamp their timing.
		if n := len(rt.offsets); n > 0 && off < rt.offsets[n-1] {
			return nil, fmt.Errorf("pcap %s: frame %d: timestamp goes backwards (replay needs a time-ordered capture)", path, i)
		}
		rt.payloads = append(rt.payloads, payload)
		rt.offsets = append(rt.offsets, off)
	}
	if len(rt.payloads) == 0 {
		return nil, fmt.Errorf("pcap %s: no frames", path)
	}
	return rt, nil
}

// attachTraceTraffic schedules one trace-replay flow. The capture
// supplies payloads (headers are rebuilt with the scenario's MACs, so
// a tracegen pcap behaves exactly like its synthetic counterpart);
// pacing comes from PPS like every other workload, or from the
// capture's own timestamps when TraceTiming is set.
func (sc *Scenario) attachTraceTraffic(tr TrafficSpec) error {
	rt, err := loadReplayTrace(tr.Trace)
	if err != nil {
		return err
	}
	records := tr.Records
	if records == 0 || (tr.TraceTiming && records > len(rt.payloads)) {
		records = len(rt.payloads)
	}

	host := sc.hosts[tr.From]
	hdr := packet.Header{Dst: sc.macs[tr.To], Src: sc.macs[tr.From], EtherType: packet.EtherTypeRaw}
	emit := func(i uint64) []byte {
		p := rt.payloads[int(i)%len(rt.payloads)]
		sc.offeredFrames++
		sc.offeredPayload += uint64(len(p))
		return packet.Frame(hdr, p)
	}

	if tr.TraceTiming {
		host.StreamTimed(netsim.Time(tr.StartNs), netsim.Time(tr.StopNs),
			func(i uint64) (netsim.Time, bool) {
				if i >= uint64(records) {
					return 0, false
				}
				return rt.offsets[i], true
			},
			func(i uint64) []byte { return emit(i) })
		return nil
	}

	pps := tr.PPS
	if pps == 0 {
		pps = host.Config().MaxPPS
	}
	host.StreamPaced(netsim.Time(tr.StartNs), netsim.Time(tr.StopNs), pps, func(i uint64) []byte {
		if i >= uint64(records) {
			return nil
		}
		return emit(i)
	})
	return nil
}
