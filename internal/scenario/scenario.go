package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"zipline/internal/netsim"
	"zipline/internal/zswitch"
)

// MaxPort bounds switch port numbers, mirroring the dataplane's
// dense per-port dispatch (zswitch.MaxPort).
const MaxPort = zswitch.MaxPort

// Role names accepted by PortSpec.Role.
const (
	RoleForward = "forward"
	RoleEncode  = "encode"
	RoleDecode  = "decode"
)

// Workload names accepted by TrafficSpec.Workload.
const (
	// WorkloadRepeat replays one seeded random chunk-size payload —
	// the paper's dynamic-learning workload ("we repeatedly send the
	// same data packet as fast as possible").
	WorkloadRepeat = "repeat"
	// WorkloadRandom draws a fresh random payload per frame: nothing
	// repeats, the adversarial floor for any deduplicator.
	WorkloadRandom = "random"
	// WorkloadSensor replays the synthetic sensor dataset (§7).
	WorkloadSensor = "sensor"
	// WorkloadDNS replays the campus-DNS dataset (§7).
	WorkloadDNS = "dns"
	// WorkloadTrace replays the payloads of a pcap capture
	// (TrafficSpec.Trace) — the artifact cmd/tracegen emits and the
	// paper replays at the switch.
	WorkloadTrace = "trace"
)

// Spec declares one simulation scenario. The zero values of most
// fields take the paper's operating point.
type Spec struct {
	// Name identifies the scenario in reports.
	Name string `json:"name"`
	// Seed drives every random draw of the run (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DurationNs bounds virtual time; 0 runs until the event queue
	// drains (requires no periodic controller sweep).
	DurationNs int64 `json:"duration_ns,omitempty"`
	// Codec selects the GD operating point for every switch.
	Codec CodecSpec `json:"codec,omitempty"`
	// Controller overrides control-plane timing.
	Controller ControllerSpec `json:"controller,omitempty"`

	Hosts    []HostSpec    `json:"hosts"`
	Switches []SwitchSpec  `json:"switches"`
	Links    []LinkSpec    `json:"links"`
	Traffic  []TrafficSpec `json:"traffic,omitempty"`

	// Topology, when set, generates Hosts, Switches and Links from a
	// parameterized graph instead of explicit declarations — the spec
	// must then declare none of them. Flows generates Traffic from the
	// flow-churn model, and Placement decides which generated switches
	// encode and how the identifier space splits across them; both
	// require Topology.
	Topology  *TopologySpec  `json:"topology,omitempty"`
	Flows     *FlowsSpec     `json:"flows,omitempty"`
	Placement *PlacementSpec `json:"placement,omitempty"`

	// Faults schedules switch restarts, link flaps and control-channel
	// loss. Nil (or an all-zero schedule) keeps the run on the legacy
	// fault-free code paths, byte-identical to the pre-fault engine.
	Faults *netsim.FaultSpec `json:"faults,omitempty"`
}

// CodecSpec selects the GD code (defaults: the paper's m=8, 15-bit
// identifiers, Hamming transform).
type CodecSpec struct {
	M      int `json:"m,omitempty"`
	IDBits int `json:"id_bits,omitempty"`
	T      int `json:"t,omitempty"`
}

// ControllerSpec overrides the control plane's modelled timing. Zero
// values take the defaults that sum to the paper's 1.77 ms learning
// delay.
type ControllerSpec struct {
	DigestLatencyNs int64 `json:"digest_latency_ns,omitempty"`
	DecisionNs      int64 `json:"decision_ns,omitempty"`
	WriteLatencyNs  int64 `json:"write_latency_ns,omitempty"`
	// TTLNs ages encoder dictionary entries out after this idle time;
	// 0 disables aging.
	TTLNs int64 `json:"ttl_ns,omitempty"`
	// SweepIntervalNs polls the idle timers (default TTLNs/2 when TTL
	// is set). Requires DurationNs, since sweeps recur forever.
	SweepIntervalNs int64 `json:"sweep_interval_ns,omitempty"`
}

// HostSpec declares one server.
type HostSpec struct {
	Name string `json:"name"`
	// MaxPPS caps the host's traffic generator (0 = line rate).
	MaxPPS float64 `json:"max_pps,omitempty"`
}

// SwitchSpec declares one programmable switch running the ZipLine
// program.
type SwitchSpec struct {
	Name  string     `json:"name"`
	Ports []PortSpec `json:"ports"`
	// PipelineLatencyNs overrides the constant traversal latency.
	PipelineLatencyNs int64 `json:"pipeline_latency_ns,omitempty"`
	// Routes forward by destination host instead of static port maps:
	// a frame whose Ethernet destination is Dst's MAC egresses on Out.
	// When any route is declared the switch forwards exclusively by
	// destination (PortSpec.Out is ignored) — what multi-path
	// topologies need, where one ingress fans out to many egresses.
	Routes []RouteSpec `json:"routes,omitempty"`
	// IDFirst/IDLimit scope this switch's dictionary to the half-open
	// identifier range [IDFirst, IDLimit) — its capacity share. Any
	// switch declaring a range gives every encoding switch its own
	// controller over its declared range; disjoint ranges share the
	// network's decoder tables without collisions.
	IDFirst uint32 `json:"id_first,omitempty"`
	IDLimit uint32 `json:"id_limit,omitempty"`
}

// RouteSpec is one destination-based forwarding entry.
type RouteSpec struct {
	Dst string `json:"dst"`
	Out int    `json:"out"`
}

// PortSpec assigns a role and static forwarding to one ingress port.
type PortSpec struct {
	Port int `json:"port"`
	// Role is "forward" (default), "encode" or "decode".
	Role string `json:"role,omitempty"`
	// Out is the egress port for traffic arriving on Port.
	Out int `json:"out"`
}

// LinkSpec wires two attachment points. Each end is either a host
// name ("sender") or a switch port ("sw1:0").
type LinkSpec struct {
	A string `json:"a"`
	B string `json:"b"`
	// RateBps (default 100 Gbit/s) and PropagationNs (default 5 ns)
	// size the link.
	RateBps       int64 `json:"rate_bps,omitempty"`
	PropagationNs int64 `json:"propagation_ns,omitempty"`
	// Impairments, applied to both directions independently.
	LossProb       float64 `json:"loss_prob,omitempty"`
	DupProb        float64 `json:"dup_prob,omitempty"`
	ReorderProb    float64 `json:"reorder_prob,omitempty"`
	ReorderDelayNs int64   `json:"reorder_delay_ns,omitempty"`
	ExtraLatencyNs int64   `json:"extra_latency_ns,omitempty"`
}

// TrafficSpec drives one flow from a host's generator.
type TrafficSpec struct {
	// From and To name hosts; To supplies the destination MAC.
	From string `json:"from"`
	To   string `json:"to"`
	// Workload selects the payload generator.
	Workload string `json:"workload"`
	// Records bounds the number of frames (default 10,000); the
	// sensor and DNS workloads also size their datasets with it.
	Records int `json:"records,omitempty"`
	// PPS paces this flow (0 = the host's MaxPPS).
	PPS float64 `json:"pps,omitempty"`
	// StartNs/StopNs window the flow (StopNs 0 = unbounded).
	StartNs int64 `json:"start_ns,omitempty"`
	StopNs  int64 `json:"stop_ns,omitempty"`
	// Seed salts this flow's generator (default: scenario seed + flow
	// index).
	Seed int64 `json:"seed,omitempty"`
	// Trace is the pcap file replayed when Workload is "trace". Each
	// captured frame contributes its Ethernet payload; Records beyond
	// the capture wrap around to the start.
	Trace string `json:"trace,omitempty"`
	// TraceTiming replays frames at the capture's recorded inter-frame
	// gaps instead of PPS pacing (Records then caps at the capture
	// length instead of wrapping). Only meaningful with Workload
	// "trace".
	TraceTiming bool `json:"trace_timing,omitempty"`
}

// DefaultTrafficRecords bounds flows that leave Records zero.
const DefaultTrafficRecords = 10_000

// Load reads and validates a Spec from a JSON file.
func Load(path string) (Spec, error) {
	var spec Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("scenario: parsing %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return spec, nil
}

// withDefaults fills the spec-level defaults (not the per-component
// ones, which the builders own).
func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Name == "" {
		s.Name = "unnamed"
	}
	return s
}

// endpointRef is a parsed link attachment point.
type endpointRef struct {
	host   string // host name, or
	sw     string // switch name +
	port   int    // port number
	isHost bool
}

func parseEndpointRef(s string) (endpointRef, error) {
	if name, port, ok := strings.Cut(s, ":"); ok {
		p, err := strconv.Atoi(port)
		if err != nil || p < 0 {
			return endpointRef{}, fmt.Errorf("bad switch port in %q", s)
		}
		return endpointRef{sw: name, port: p}, nil
	}
	if s == "" {
		return endpointRef{}, fmt.Errorf("empty link endpoint")
	}
	return endpointRef{host: s, isHost: true}, nil
}

// Validate checks the spec's internal consistency; Build calls it,
// but callers constructing specs programmatically can run it early.
func (s Spec) Validate() error {
	if s.Topology != nil {
		// Topology specs are validated structurally here and in full
		// after expansion (Build validates the expanded spec too).
		if len(s.Hosts)+len(s.Switches)+len(s.Links)+len(s.Traffic) > 0 {
			return fmt.Errorf("topology expansion generates hosts/switches/links/traffic: declare none")
		}
		return s.validateTopology()
	}
	if s.Flows != nil {
		return fmt.Errorf("flows block requires a topology block")
	}
	if s.Placement != nil {
		return fmt.Errorf("placement block requires a topology block")
	}
	names := make(map[string]string)
	for _, h := range s.Hosts {
		if h.Name == "" {
			return fmt.Errorf("host with empty name")
		}
		if prev := names[h.Name]; prev != "" {
			return fmt.Errorf("name %q used by both a %s and a host", h.Name, prev)
		}
		names[h.Name] = "host"
	}
	roles := map[string]bool{RoleForward: true, RoleEncode: true, RoleDecode: true, "": true}
	knownPorts := make(map[string]map[int]bool) // switch → declared ingress/egress ports
	for _, sw := range s.Switches {
		if sw.Name == "" {
			return fmt.Errorf("switch with empty name")
		}
		if prev := names[sw.Name]; prev != "" {
			return fmt.Errorf("name %q used by both a %s and a switch", sw.Name, prev)
		}
		names[sw.Name] = "switch"
		if len(sw.Ports) == 0 {
			return fmt.Errorf("switch %q has no ports", sw.Name)
		}
		seen := make(map[int]bool)
		known := make(map[int]bool)
		for _, p := range sw.Ports {
			if p.Port < 0 || p.Out < 0 {
				return fmt.Errorf("switch %q: negative port", sw.Name)
			}
			if p.Port > MaxPort || p.Out > MaxPort {
				return fmt.Errorf("switch %q: port %d exceeds %d", sw.Name, max(p.Port, p.Out), MaxPort)
			}
			if seen[p.Port] {
				return fmt.Errorf("switch %q: port %d declared twice", sw.Name, p.Port)
			}
			seen[p.Port] = true
			known[p.Port], known[p.Out] = true, true
			if !roles[p.Role] {
				return fmt.Errorf("switch %q port %d: unknown role %q", sw.Name, p.Port, p.Role)
			}
		}
		if len(sw.Routes) > 0 {
			dsts := make(map[string]bool, len(sw.Routes))
			for _, r := range sw.Routes {
				if names[r.Dst] != "host" {
					return fmt.Errorf("switch %q: route to unknown host %q", sw.Name, r.Dst)
				}
				if dsts[r.Dst] {
					return fmt.Errorf("switch %q: duplicate route to %q", sw.Name, r.Dst)
				}
				dsts[r.Dst] = true
				if r.Out < 0 || r.Out > MaxPort {
					return fmt.Errorf("switch %q: route egress %d outside [0,%d]", sw.Name, r.Out, MaxPort)
				}
				known[r.Out] = true
			}
		}
		if sw.IDLimit > 0 && sw.IDFirst >= sw.IDLimit {
			return fmt.Errorf("switch %q: identifier range [%d,%d) is empty", sw.Name, sw.IDFirst, sw.IDLimit)
		}
		knownPorts[sw.Name] = known
	}
	// Per-switch identifier ranges are all-or-nothing across encoders:
	// a ranged build gives each encoding switch its own controller, so
	// an unranged encoder would have no identifier budget at all.
	ranged := false
	for _, sw := range s.Switches {
		if sw.IDLimit > 0 {
			ranged = true
			break
		}
	}
	if ranged {
		for _, sw := range s.Switches {
			hasEnc := false
			for _, p := range sw.Ports {
				if p.Role == RoleEncode {
					hasEnc = true
					break
				}
			}
			if hasEnc && sw.IDLimit == 0 {
				return fmt.Errorf("switch %q encodes without an identifier range while others declare one", sw.Name)
			}
		}
	}

	hostLinks := make(map[string]int)
	swPorts := make(map[string]bool)
	for i, l := range s.Links {
		for _, end := range []string{l.A, l.B} {
			ref, err := parseEndpointRef(end)
			if err != nil {
				return fmt.Errorf("link %d: %w", i, err)
			}
			if ref.isHost {
				if names[ref.host] != "host" {
					return fmt.Errorf("link %d: unknown host %q", i, ref.host)
				}
				hostLinks[ref.host]++
			} else {
				if names[ref.sw] != "switch" {
					return fmt.Errorf("link %d: unknown switch %q", i, ref.sw)
				}
				if !knownPorts[ref.sw][ref.port] {
					return fmt.Errorf("link %d: switch %q declares no port %d (neither ingress nor egress)",
						i, ref.sw, ref.port)
				}
				key := fmt.Sprintf("%s:%d", ref.sw, ref.port)
				if swPorts[key] {
					return fmt.Errorf("link %d: %s already wired", i, key)
				}
				swPorts[key] = true
			}
		}
		for _, p := range []float64{l.LossProb, l.DupProb, l.ReorderProb} {
			if p < 0 || p > 1 {
				return fmt.Errorf("link %d: probability %v out of [0,1]", i, p)
			}
		}
	}
	for _, h := range s.Hosts {
		if hostLinks[h.Name] != 1 {
			return fmt.Errorf("host %q wired to %d links, want exactly 1", h.Name, hostLinks[h.Name])
		}
	}

	workloads := map[string]bool{WorkloadRepeat: true, WorkloadRandom: true, WorkloadSensor: true, WorkloadDNS: true, WorkloadTrace: true}
	for i, tr := range s.Traffic {
		if names[tr.From] != "host" {
			return fmt.Errorf("traffic %d: unknown source host %q", i, tr.From)
		}
		if names[tr.To] != "host" {
			return fmt.Errorf("traffic %d: unknown destination host %q", i, tr.To)
		}
		if !workloads[tr.Workload] {
			return fmt.Errorf("traffic %d: unknown workload %q", i, tr.Workload)
		}
		if tr.Records < 0 {
			return fmt.Errorf("traffic %d: negative record count", i)
		}
		if tr.Workload == WorkloadTrace && tr.Trace == "" {
			return fmt.Errorf("traffic %d: trace workload needs a pcap path", i)
		}
		if tr.Workload != WorkloadTrace && (tr.Trace != "" || tr.TraceTiming) {
			return fmt.Errorf("traffic %d: trace/trace_timing only apply to the trace workload", i)
		}
	}

	if s.Controller.TTLNs > 0 || s.Controller.SweepIntervalNs > 0 {
		if s.DurationNs <= 0 {
			return fmt.Errorf("TTL aging sweeps recur forever: set duration_ns")
		}
	}

	if err := s.Faults.Validate(func(name string) bool { return names[name] == "switch" }, len(s.Links)); err != nil {
		return err
	}
	return nil
}
