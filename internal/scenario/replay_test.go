package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"zipline/internal/packet"
	"zipline/internal/pcap"
	"zipline/internal/trace"
)

// writePcap captures a trace dataset the way cmd/tracegen does.
func writePcap(t *testing.T, tr *trace.Trace, nsPerPacket int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x01}
	dst := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x02}
	if err := tr.WritePcap(w, src, dst, nsPerPacket); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceReplayMatchesSensorWorkload: replaying a pcap of the sensor
// dataset must produce the byte-identical report to generating the
// same dataset in-process — the trace workload is a first-class peer
// of the synthetic generators, not an approximation.
func TestTraceReplayMatchesSensorWorkload(t *testing.T) {
	const records = 3_000
	spec := preset(t, "chain3")
	spec.Seed = 1 // make the workload seed derivation explicit below
	spec.Traffic[0].Records = records

	synthetic := mustBuild(t, spec).Run()

	// The sensor flow at traffic index 0 derives seed base+1×7919; a
	// capture of that exact dataset replayed through the same
	// topology must be indistinguishable.
	ds := trace.Sensor(trace.SensorConfig{Records: records, Seed: spec.Seed + 7919})
	replaySpec := preset(t, "chain3")
	replaySpec.Traffic[0] = TrafficSpec{
		From: "sender", To: "sink",
		Workload: WorkloadTrace, Trace: writePcap(t, ds, 2_000),
		Records: records,
	}
	replayed := mustBuild(t, replaySpec).Run()

	if !reflect.DeepEqual(synthetic, replayed) {
		aj, _ := json.Marshal(synthetic)
		bj, _ := json.Marshal(replayed)
		t.Fatalf("replayed trace diverged from in-process generator:\n%s\n%s", aj, bj)
	}
}

// TestTraceReplayWraps: records beyond the capture length cycle back
// to the start.
func TestTraceReplayWraps(t *testing.T) {
	ds := trace.Sensor(trace.SensorConfig{Records: 100, Seed: 3})
	spec := preset(t, "single")
	spec.Traffic = []TrafficSpec{{
		From: "sender", To: "sink",
		Workload: WorkloadTrace, Trace: writePcap(t, ds, 2_000),
		Records: 250,
	}}
	r := mustBuild(t, spec).Run()
	if r.Offered.Frames != 250 {
		t.Fatalf("offered %d frames, want 250 (100-frame capture wrapped)", r.Offered.Frames)
	}
	if r.Delivered.Frames != 250 {
		t.Fatalf("delivered %d of 250", r.Delivered.Frames)
	}
}

// TestTraceTiming: with trace_timing the capture's inter-frame gaps
// pace the replay, so a 1 ms-spaced capture takes ≈N ms of virtual
// time where PPS pacing would take microseconds.
func TestTraceTiming(t *testing.T) {
	const frames = 5
	ds := trace.Sensor(trace.SensorConfig{Records: frames, Seed: 3})
	pcapPath := writePcap(t, ds, 1_000_000) // 1 ms apart

	spec := preset(t, "single")
	spec.Traffic = []TrafficSpec{{
		From: "sender", To: "sink",
		Workload: WorkloadTrace, Trace: pcapPath, TraceTiming: true,
	}}
	timed := mustBuild(t, spec).Run()
	if timed.Offered.Frames != frames {
		t.Fatalf("offered %d frames, want %d", timed.Offered.Frames, frames)
	}
	if timed.ElapsedMs < 4.0 {
		t.Fatalf("timed replay finished in %.3f ms, want ≥ 4 (recorded gaps ignored?)", timed.ElapsedMs)
	}

	spec.Traffic[0].TraceTiming = false
	paced := mustBuild(t, spec).Run()
	if paced.ElapsedMs >= timed.ElapsedMs {
		t.Fatalf("PPS-paced replay (%.3f ms) not faster than recorded-gap replay (%.3f ms)",
			paced.ElapsedMs, timed.ElapsedMs)
	}
}

// TestTraceTimingStopWindow: a burst capture (all recorded offsets 0)
// replayed with trace_timing is clamped to wire availability, and the
// StopNs window must still cut it off in virtual time — only the
// frame already in flight may straggle past the boundary.
func TestTraceTimingStopWindow(t *testing.T) {
	const frames = 200
	ds := trace.Sensor(trace.SensorConfig{Records: frames, Seed: 3})
	pcapPath := writePcap(t, ds, 0) // every offset 0: pure burst

	spec := preset(t, "single")
	spec.Traffic = []TrafficSpec{{
		From: "sender", To: "sink",
		Workload: WorkloadTrace, Trace: pcapPath, TraceTiming: true,
		StopNs: 2_000,
	}}
	r := mustBuild(t, spec).Run()
	if r.Offered.Frames == 0 {
		t.Fatal("window closed before any frame left")
	}
	if r.Offered.Frames >= frames {
		t.Fatalf("offered %d frames: StopNs ignored under wire-clamped burst replay", r.Offered.Frames)
	}
}

// TestTraceValidation: spec-level trace errors are caught by Validate,
// and file-level ones by Build.
func TestTraceValidation(t *testing.T) {
	spec := preset(t, "single")
	spec.Traffic = []TrafficSpec{{From: "sender", To: "sink", Workload: WorkloadTrace}}
	if err := spec.Validate(); err == nil {
		t.Error("trace workload without a path validated")
	}
	spec.Traffic[0].Workload = WorkloadSensor
	spec.Traffic[0].Trace = "x.pcap"
	if err := spec.Validate(); err == nil {
		t.Error("sensor workload with a trace path validated")
	}
	spec.Traffic[0] = TrafficSpec{From: "sender", To: "sink", Workload: WorkloadTrace, Trace: filepath.Join(t.TempDir(), "missing.pcap")}
	if _, err := Build(spec); err == nil {
		t.Error("missing pcap built")
	}

	// An out-of-order capture (merged multi-source pcap) violates the
	// replay's non-decreasing-offset contract and must fail at build.
	unordered := filepath.Join(t.TempDir(), "unordered.pcap")
	f, err := os.Create(unordered)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 32))
	for _, ts := range []int64{2_000, 1_000} {
		if err := w.WritePacket(ts, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	spec.Traffic[0].Trace = unordered
	if _, err := Build(spec); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Errorf("out-of-order capture built: %v", err)
	}
}

// TestReportJSONStable: the report must round-trip through JSON to
// identical bytes (no map-keyed sections, stable field order) — the
// property that makes sweep matrices diffable.
func TestReportJSONStable(t *testing.T) {
	r := mustBuild(t, preset(t, "lossy-chain3")).Run()
	if r.Events == 0 {
		t.Fatal("report events counter empty")
	}
	a, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("report JSON not stable under round-trip:\n%s\n---\n%s", a, b)
	}
	for _, key := range []string{`"events"`, `"raw_to_type3"`, `"enc_payload_in"`} {
		if !bytes.Contains(a, []byte(key)) {
			t.Errorf("report JSON missing %s:\n%s", key, a)
		}
	}
}
