package crc

// RemainderBitwise exposes the bit-serial reference implementation to
// tests so the table fast path can be checked against it.
func (e *Engine) RemainderBitwise(data []byte, nbits int) uint32 {
	return e.remainderBitwise(data, nbits)
}
