package crc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zipline/internal/bitvec"
)

// table2 reproduces paper Table 2b: CRC-3 (generator x^3+x+1, param
// 0x3) of the seven single-bit 7-bit sequences.
var table2 = []struct {
	seq  string
	want uint32
}{
	{"0000001", 0b001}, // x^0
	{"0000010", 0b010}, // x^1
	{"0000100", 0b100}, // x^2
	{"0001000", 0b011}, // x^3
	{"0010000", 0b110}, // x^4
	{"0100000", 0b111}, // x^5
	{"1000000", 0b101}, // x^6
}

func TestPaperTable2(t *testing.T) {
	e := MustNew(3, 0x3)
	for _, tc := range table2 {
		v := bitvec.MustParse(tc.seq)
		if got := e.RemainderVector(v); got != tc.want {
			t.Errorf("CRC-3(%s) = %03b, want %03b", tc.seq, got, tc.want)
		}
	}
}

func TestPaperTable2ViaPowX(t *testing.T) {
	// The syndrome of the single-bit sequence x^j must equal
	// rem(x^j); this is the identity that builds the syndrome
	// lookup table.
	e := MustNew(3, 0x3)
	for j, tc := range table2 {
		if got := e.PowX(j); got != tc.want {
			t.Errorf("PowX(%d) = %03b, want %03b", j, got, tc.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := New(32, 1); err == nil {
		t.Error("width 32 accepted")
	}
	if _, err := New(3, 0x8); err == nil {
		t.Error("param wider than width accepted")
	}
	if _, err := New(3, 0x6); err == nil {
		t.Error("param with zero constant term accepted")
	}
	if _, err := New(3, 0x3); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestLinearity(t *testing.T) {
	// CRC(A XOR B) == CRC(A) XOR CRC(B): the property §2 relies on.
	e := MustNew(8, 0x1D)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := make([]byte, 32)
		b := make([]byte, 32)
		rng.Read(a)
		rng.Read(b)
		ab := make([]byte, 32)
		for i := range ab {
			ab[i] = a[i] ^ b[i]
		}
		nbits := 255
		if got, want := e.Remainder(ab, nbits), e.Remainder(a, nbits)^e.Remainder(b, nbits); got != want {
			t.Fatalf("trial %d: CRC(A^B)=%x != CRC(A)^CRC(B)=%x", trial, got, want)
		}
	}
}

func TestTableMatchesBitwise(t *testing.T) {
	widths := []struct {
		m     int
		param uint32
	}{
		{3, 0x3}, {4, 0x3}, {5, 0x05}, {6, 0x03}, {7, 0x09},
		{8, 0x1D}, {9, 0x011}, {10, 0x009}, {11, 0x005},
		{12, 0x053}, {13, 0x01B}, {14, 0x143}, {15, 0x003},
	}
	rng := rand.New(rand.NewSource(99))
	for _, w := range widths {
		e := MustNew(w.m, w.param)
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(64)
			data := make([]byte, n)
			rng.Read(data)
			nbits := 1 + rng.Intn(n*8)
			fast := e.Remainder(data, nbits)
			slow := e.RemainderBitwise(data, nbits)
			if fast != slow {
				t.Fatalf("m=%d trial=%d nbits=%d: table %x != bitwise %x", w.m, trial, nbits, fast, slow)
			}
		}
	}
}

func TestMatrixFormMatches(t *testing.T) {
	// CRC(B) = B·Hᵀ: the XOR-of-precomputed-columns formulation.
	e := MustNew(8, 0x1D)
	rows := e.Matrix(255)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		got := RemainderByMatrix(rows, data, 255)
		want := e.Remainder(data, 255)
		if got != want {
			t.Fatalf("trial %d: matrix %x != direct %x", trial, got, want)
		}
	}
}

func TestShiftUnshiftInverse(t *testing.T) {
	e := MustNew(8, 0x1D)
	f := func(r uint32) bool {
		r &= 0xFF
		return e.Unshift(e.Shift(r)) == r && e.Shift(e.Unshift(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftNUnshiftN(t *testing.T) {
	e := MustNew(15, 0x003)
	r := uint32(0x5A5A & 0x7FFF)
	if got := e.UnshiftN(e.ShiftN(r, 100), 100); got != r {
		t.Fatalf("UnshiftN(ShiftN(r)) = %x, want %x", got, r)
	}
}

func TestPowXAgreesWithIteratedShift(t *testing.T) {
	e := MustNew(8, 0x1D)
	r := uint32(1)
	for j := 0; j < 600; j++ {
		if got := e.PowX(j); got != r {
			t.Fatalf("PowX(%d) = %x, want %x", j, got, r)
		}
		r = e.Shift(r)
	}
}

func TestXNIsOneForHammingGenerators(t *testing.T) {
	// x^n ≡ 1 (mod g) for a primitive degree-m g with n = 2^m - 1.
	// This identity is what makes the Figure 2 decoding trick
	// (parity = CRC(basis · x^m)) work.
	for _, w := range []struct {
		m     int
		param uint32
	}{{3, 0x3}, {4, 0x3}, {8, 0x1D}, {15, 0x003}} {
		e := MustNew(w.m, w.param)
		n := 1<<uint(w.m) - 1
		if got := e.PowX(n); got != 1 {
			t.Errorf("m=%d: x^%d mod g = %x, want 1", w.m, n, got)
		}
	}
}

func TestMulModDistributes(t *testing.T) {
	e := MustNew(8, 0x1D)
	f := func(a, b, c uint32) bool {
		a &= 0xFF
		b &= 0xFF
		c &= 0xFF
		left := e.MulMod(a, b^c)
		right := e.MulMod(a, b) ^ e.MulMod(a, c)
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemainderOfGeneratorIsZero(t *testing.T) {
	// g(x) mod g(x) == 0, fed in as a bit string of m+1 bits.
	e := MustNew(8, 0x1D)
	g := e.Generator() // 9 bits
	data := []byte{byte(g >> 1), byte(g << 7)}
	if got := e.Remainder(data, 9); got != 0 {
		t.Fatalf("rem(g) = %x, want 0", got)
	}
}

func TestEmptyMessage(t *testing.T) {
	e := MustNew(8, 0x1D)
	if got := e.Remainder(nil, 0); got != 0 {
		t.Fatalf("rem(empty) = %x, want 0", got)
	}
}

func TestRemainderPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(8, 0x1D).Remainder([]byte{0}, 9)
}

func BenchmarkRemainder255Bits(b *testing.B) {
	e := MustNew(8, 0x1D)
	data := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Remainder(data, 255)
	}
}

// TestSlicingBoundaries walks the lengths around the 64-bit slicing
// block edges, where the block loop hands off to the byte and bit
// tails, for narrow, byte-wide and extra-wide generators.
func TestSlicingBoundaries(t *testing.T) {
	widths := []struct {
		m     int
		param uint32
	}{
		{3, 0x3}, {7, 0x09}, {8, 0x1D}, {15, 0x003},
		{16, 0x1021}, {24, 0x00065B}, {31, 0x04C11DB7 & 0x7FFFFFFF},
	}
	data := make([]byte, 64)
	rand.New(rand.NewSource(41)).Read(data)
	for _, w := range widths {
		e, err := New(w.m, w.param|1) // force odd constant term
		if err != nil {
			t.Fatalf("m=%d: %v", w.m, err)
		}
		for _, nbits := range []int{
			1, 7, 8, 63, 64, 65, 71, 72, 127, 128, 129,
			191, 192, 193, 255, 256, 320, 384, 448, 512,
		} {
			fast := e.Remainder(data, nbits)
			slow := e.RemainderBitwise(data, nbits)
			if fast != slow {
				t.Fatalf("m=%d nbits=%d: slicing %x != bitwise %x", w.m, nbits, fast, slow)
			}
		}
	}
}

// TestRemainderAllocFree pins the hot path at zero allocations: the
// 32-byte chunk CRC is the innermost loop of every switch encode.
func TestRemainderAllocFree(t *testing.T) {
	e := MustNew(8, 0x1D)
	data := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(data)
	var r uint32
	if n := testing.AllocsPerRun(200, func() {
		r = e.Remainder(data, 256)
	}); n != 0 {
		t.Fatalf("Remainder allocates %.1f per run, want 0", n)
	}
	_ = r
}

// BenchmarkRemainderChunk measures the paper operating point: CRC-8
// over one 32-byte chunk, the per-packet cost of the encode syndrome.
func BenchmarkRemainderChunk(b *testing.B) {
	e := MustNew(8, 0x1D)
	data := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(32)
	b.ReportAllocs()
	var r uint32
	for i := 0; i < b.N; i++ {
		r = e.Remainder(data, 256)
	}
	_ = r
}
