// Package crc implements bit-granular cyclic redundancy checks in the
// plain-polynomial-remainder convention used by ZipLine.
//
// The Tofino switch exposes a native CRC engine; ZipLine programs it
// with the generator polynomial of a Hamming code so that the CRC of
// an n-bit chunk equals the chunk's Hamming syndrome (paper §2,
// Tables 1 and 2). That equivalence only holds under the *plain*
// convention:
//
//	CRC(B) = B(x) mod g(x)
//
// with zero initial value, no final XOR, no bit reflection and no
// implicit x^m augmentation. This differs from most off-the-shelf
// CRCs (e.g. hash/crc32), which compute rem(B(x)·x^m / g(x)) with
// reflection; those conventions would break the syndrome mapping in
// paper Table 2. Unit tests pin the convention to the published
// table.
//
// Bit-order convention: messages are processed MSB first. A message
// of L bits is the polynomial B(x) = b_{L-1}·x^{L-1} + … + b_0, where
// b_{L-1} is the first bit on the wire — identical to the paper's §2.
package crc
