package crc

import (
	"fmt"

	"zipline/internal/bitvec"
)

// MaxWidth is the widest supported CRC. Table 1 of the paper stops at
// m = 15; we allow up to 31 so that the BCH extension can reuse the
// engine.
const MaxWidth = 31

// Engine computes width-m CRCs for a fixed generator polynomial.
// It is safe for concurrent use after construction.
type Engine struct {
	width int
	param uint32 // generator low bits, i.e. g(x) - x^m
	full  uint32 // g(x) including the x^m term
	mask  uint32 // m low bits set
	tab   [256]uint32
	// Slicing tables for the 8-byte block path: tab0[v] = rem(v) and
	// tab8[k][v] = rem(v·x^{8(k+1)}). A 64-bit block contributes eight
	// data bytes at x^8..x^56 (k = 0..6 plus tab0 for the last byte)
	// and the four carried remainder bytes land at x^64..x^88
	// (k = 7..10), so eleven shifted tables cover every term.
	tab0 [256]uint32
	tab8 [11][256]uint32
}

// New returns an engine for the width-m generator polynomial
// g(x) = x^m + param(x), where bit i of param is the coefficient of
// x^i. For example the Hamming(7,4) generator x^3 + x + 1 is
// New(3, 0b011).
func New(width int, param uint32) (*Engine, error) {
	if width < 1 || width > MaxWidth {
		return nil, fmt.Errorf("crc: width %d out of range [1,%d]", width, MaxWidth)
	}
	if param>>uint(width) != 0 {
		return nil, fmt.Errorf("crc: parameter %#x wider than %d bits", param, width)
	}
	if param&1 == 0 {
		// A generator with zero constant term is divisible by x; it
		// cannot detect low-order errors and breaks the x-inverse
		// used in decoding. All Hamming/BCH generators have g(0)=1.
		return nil, fmt.Errorf("crc: parameter %#x has zero constant term", param)
	}
	e := &Engine{
		width: width,
		param: param,
		full:  1<<uint(width) | param,
		mask:  1<<uint(width) - 1,
	}
	// tab[h] = rem(h(x)·x^m / g): the contribution of the remainder
	// bits that overflow when eight new message bits are appended.
	// Built by feeding the eight bits of h followed by m zeros.
	for h := 0; h < 256; h++ {
		r := uint32(0)
		for i := 7; i >= 0; i-- {
			r = e.shiftInBit(r, h>>uint(i)&1 == 1)
		}
		for i := 0; i < width; i++ {
			r = e.shiftInBit(r, false)
		}
		e.tab[h] = r
	}
	// Slicing tables: reduce each byte value, then walk it up eight
	// bit positions per table. tab0 is the identity for width ≥ 8
	// (a degree-<8 polynomial is already reduced) and a true
	// reduction for narrower generators.
	for v := 0; v < 256; v++ {
		r := uint32(0)
		for i := 7; i >= 0; i-- {
			r = e.shiftInBit(r, v>>uint(i)&1 == 1)
		}
		e.tab0[v] = r
		for k := 0; k < len(e.tab8); k++ {
			for i := 0; i < 8; i++ {
				r = e.shiftInBit(r, false)
			}
			e.tab8[k][v] = r
		}
	}
	return e, nil
}

// MustNew is New, panicking on error. For registry initialisers.
func MustNew(width int, param uint32) *Engine {
	e, err := New(width, param)
	if err != nil {
		panic(err)
	}
	return e
}

// Width returns the CRC width m in bits.
func (e *Engine) Width() int { return e.width }

// Param returns the generator's low bits (the Table 1 "parameter for
// CRC-m" column value).
func (e *Engine) Param() uint32 { return e.param }

// Generator returns the full generator polynomial including the x^m
// term, as a bit mask.
func (e *Engine) Generator() uint32 { return e.full }

// shiftInBit appends one message bit: r' = rem((r·x + b) mod g).
func (e *Engine) shiftInBit(r uint32, b bool) uint32 {
	top := r >> uint(e.width-1) & 1
	r = r << 1 & e.mask
	if b {
		r |= 1
	}
	if top == 1 {
		r ^= e.param
	}
	return r
}

// Remainder computes B(x) mod g(x) over the first nbits of data,
// MSB first. Eight-byte blocks take the slicing path (twelve
// independent table lookups XORed together, no loop-carried
// dependency inside a block); remaining complete bytes use the
// byte table; a trailing partial byte is folded bit by bit.
//
//zipline:noalloc
func (e *Engine) Remainder(data []byte, nbits int) uint32 {
	if nbits > len(data)*8 {
		panic(fmt.Sprintf("crc: %d bits requested, %d available", nbits, len(data)*8))
	}
	var r uint32
	i := 0
	// Slicing-by-8: appending 64 bits turns the state into
	// r·x^64 + D, a 96-bit polynomial whose twelve bytes reduce
	// through one shifted table each.
	for ; nbits-i >= 64; i += 64 {
		p := data[i>>3:]
		_ = p[7] // one bounds check for the block
		r = e.tab8[10][byte(r>>24)] ^
			e.tab8[9][byte(r>>16)] ^
			e.tab8[8][byte(r>>8)] ^
			e.tab8[7][byte(r)] ^
			e.tab8[6][p[0]] ^
			e.tab8[5][p[1]] ^
			e.tab8[4][p[2]] ^
			e.tab8[3][p[3]] ^
			e.tab8[2][p[4]] ^
			e.tab8[1][p[5]] ^
			e.tab8[0][p[6]] ^
			e.tab0[p[7]]
	}
	for ; nbits-i >= 8; i += 8 {
		r = e.appendByte(r, data[i>>3])
	}
	if t := nbits - i; t > 0 {
		// Trailing partial byte: append the t bits padded to a full
		// byte with zeros (one table step computes rem((R·x^t ⊕ v)·
		// x^{8-t})), then divide the x^{8-t} pad back out — g(0) = 1
		// makes x invertible, so UnshiftN is exact.
		r = e.appendByte(r, data[i>>3]&(0xFF<<uint(8-t)))
		r = e.UnshiftN(r, 8-t)
	}
	return r
}

// appendByte returns the remainder after appending eight message bits:
// rem(r·x^8 + b). The top 8 bits of r·x^8 (at positions m..m+7) reduce
// through the table; the rest shift up in place.
//
//zipline:noalloc
func (e *Engine) appendByte(r uint32, b byte) uint32 {
	if e.width >= 8 {
		hi := r >> uint(e.width-8)
		return (r<<8|uint32(b))&e.mask ^ e.tab[hi]
	}
	// r is narrower than a byte: everything overflows.
	hi := r<<uint(8-e.width) | uint32(b)>>uint(e.width)
	return uint32(b)&e.mask ^ e.tab[hi&0xFF]
}

// RemainderVector computes the CRC of a bit vector.
func (e *Engine) RemainderVector(v *bitvec.Vector) uint32 {
	return e.Remainder(v.Bytes(), v.Len())
}

// remainderBitwise is the reference implementation: one shift per
// message bit. Exposed to tests through export_test.go.
func (e *Engine) remainderBitwise(data []byte, nbits int) uint32 {
	var r uint32
	for i := 0; i < nbits; i++ {
		r = e.shiftInBit(r, data[i>>3]>>(7-uint(i&7))&1 == 1)
	}
	return r
}

// Shift returns rem(r·x mod g): one step of the CRC LFSR with a zero
// input bit.
func (e *Engine) Shift(r uint32) uint32 { return e.shiftInBit(r&e.mask, false) }

// ShiftN returns rem(r·x^n mod g). Whole bytes of shift take one
// table step each (appending a zero byte is exactly r·x^8 mod g).
//
//zipline:noalloc
func (e *Engine) ShiftN(r uint32, n int) uint32 {
	r &= e.mask
	for ; n >= 8; n -= 8 {
		r = e.appendByte(r, 0)
	}
	for i := 0; i < n; i++ {
		r = e.Shift(r)
	}
	return r
}

// Unshift returns rem(r·x^{-1} mod g), the inverse of Shift. It is
// well defined because g(0) = 1.
func (e *Engine) Unshift(r uint32) uint32 {
	r &= e.mask
	if r&1 == 1 {
		r ^= e.full
	}
	return r >> 1
}

// UnshiftN returns rem(r·x^{-n} mod g).
func (e *Engine) UnshiftN(r uint32, n int) uint32 {
	for i := 0; i < n; i++ {
		r = e.Unshift(r)
	}
	return r
}

// PowX returns rem(x^j mod g). Successive values of PowX enumerate
// the columns of the Hamming parity-check matrix H; the syndrome
// lookup table of paper Figure 1 is exactly {PowX(j) → bit j}.
func (e *Engine) PowX(j int) uint32 {
	if j < 0 {
		panic("crc: negative exponent")
	}
	r := uint32(1)
	// Square-and-multiply over GF(2)[x]/g keeps trace generation
	// cheap even for j near 2^15.
	for bit := 30; bit >= 0; bit-- {
		r = e.MulMod(r, r)
		if j>>uint(bit)&1 == 1 {
			r = e.Shift(r)
		}
	}
	return r
}

// MulMod returns rem(a(x)·b(x) mod g): carry-less multiplication
// followed by reduction. Used by PowX and by the BCH extension.
func (e *Engine) MulMod(a, b uint32) uint32 {
	a &= e.mask
	b &= e.mask
	var r uint32
	for b != 0 {
		if b&1 == 1 {
			r ^= a
		}
		a = e.Shift(a)
		b >>= 1
	}
	return r
}

// Matrix returns the CRC as a linear operator: row j (0-based from
// the lowest degree) is rem(x^j), so that
// CRC(B) = XOR over set bits b_j of Matrix()[j].
// This is the matrix form CRC(B) = B·Hᵀ from paper §2; tests assert
// it agrees with Remainder on random inputs.
func (e *Engine) Matrix(nbits int) []uint32 {
	rows := make([]uint32, nbits)
	r := uint32(1)
	for j := 0; j < nbits; j++ {
		rows[j] = r
		r = e.Shift(r)
	}
	return rows
}

// RemainderByMatrix computes the CRC using the precomputed matrix
// rows; it exists to demonstrate and test the XOR-of-columns
// formulation that the paper uses to explain the Tofino
// implementation.
func RemainderByMatrix(rows []uint32, data []byte, nbits int) uint32 {
	if nbits > len(rows) {
		panic("crc: matrix smaller than message")
	}
	var r uint32
	for i := 0; i < nbits; i++ {
		// Bit i in wire order is the coefficient of x^{nbits-1-i}.
		if data[i>>3]>>(7-uint(i&7))&1 == 1 {
			r ^= rows[nbits-1-i]
		}
	}
	return r
}
