// Package placement decides where compression capacity sits in a
// generated topology: which switch ports encode, where decompression
// happens, and how the global dictionary identifier space is split
// across the encoding switches.
//
// A strategy maps a topo.Graph to a Plan — per-port roles plus a
// half-open identifier range per switch. Disjoint ranges let one
// control-plane controller per encoding switch share the network's
// decoder tables without collisions, so a switch's range IS its
// dictionary capacity share.
//
// Strategies:
//
//   - uniform: every candidate tier encodes (edge host-facing ports,
//     agg down-facing ports, all core ports) and the identifier space
//     splits evenly across all encoding switches — including the ones
//     deep in the fabric that mostly see already-compressed traffic
//     and waste their share.
//   - edge: only edge switches encode, splitting the space evenly.
//   - core: only core switches encode; intra-pod traffic is never
//     compressed.
//   - greedy: candidate roles as uniform, but shares are proportional
//     to each switch's observed redundancy (control-plane digest
//     counts from a profiling run); zero-signal switches drop their
//     encode role entirely, concentrating capacity where compressible
//     traffic actually appears.
//
// Decompression is strategy-independent: every edge switch decodes on
// its fabric-facing ingress ports, so traffic is always raw by the
// time it reaches a host.
//
// # Determinism
//
// Plans are pure functions of (graph, strategy, idBits, scores):
// no randomness, no time, no map iteration — identifier ranges are
// assigned in the graph's switch order and proportional splits use
// largest-remainder rounding with index tie-breaks. Byte-stable
// scenario reports depend on this.
package placement
