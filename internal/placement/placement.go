package placement

import (
	"fmt"

	"zipline/internal/topo"
)

// Strategy names a dictionary-placement policy.
type Strategy string

// Placement strategies.
const (
	Uniform Strategy = "uniform"
	Greedy  Strategy = "greedy"
	Edge    Strategy = "edge"
	Core    Strategy = "core"
)

// Strategies lists the valid strategy names in display order.
func Strategies() []Strategy { return []Strategy{Uniform, Greedy, Edge, Core} }

// Valid reports whether s names a known strategy.
func (s Strategy) Valid() bool {
	for _, k := range Strategies() {
		if s == k {
			return true
		}
	}
	return false
}

// Role is a port's compression role in a plan.
type Role int

// Port roles, mirroring the dataplane's.
const (
	RoleForward Role = iota
	RoleEncode
	RoleDecode
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleForward:
		return "forward"
	case RoleEncode:
		return "encode"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// PortRole assigns a role to one ingress port.
type PortRole struct {
	Port int
	Role Role
}

// SwitchPlan is one switch's slice of the plan: per-port roles in the
// graph's port order, and — when the switch encodes — its half-open
// identifier range [IDFirst, IDLimit), its dictionary capacity share.
type SwitchPlan struct {
	Name    string
	Encode  bool
	Roles   []PortRole
	IDFirst uint32
	IDLimit uint32
}

// Plan is a complete placement decision over a graph, switches in the
// graph's order.
type Plan struct {
	Strategy Strategy
	IDBits   int
	Switches []SwitchPlan
}

// Encoders returns the names of switches holding an encode role, in
// plan order.
func (p *Plan) Encoders() []string {
	var names []string
	for _, sp := range p.Switches {
		if sp.Encode {
			names = append(names, sp.Name)
		}
	}
	return names
}

// candidate reports whether a port is an encode candidate for the
// full (uniform/greedy) placement: edge switches compress what their
// hosts send, deeper tiers compress whatever reaches them raw.
func candidate(tier topo.Tier, dir topo.Dir) bool {
	switch tier {
	case topo.TierEdge:
		return dir == topo.DirHost
	case topo.TierAgg:
		return dir == topo.DirDown
	case topo.TierCore:
		return true
	}
	return false
}

// Compute maps a graph and strategy to a plan. idBits sizes the
// global identifier space at 2^idBits. scores carries the per-switch
// redundancy signal (observed digest counts) that Greedy weighs
// shares by; the other strategies ignore it. A Greedy plan without
// scores (nil or all-zero) degrades to the uniform weighting, so the
// profiling run itself can be built with the same code path.
func Compute(g *topo.Graph, s Strategy, idBits int, scores map[string]uint64) (*Plan, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("placement: unknown strategy %q", s)
	}
	if idBits < 1 || idBits > 24 {
		return nil, fmt.Errorf("placement: idBits %d out of range [1,24]", idBits)
	}
	plan := &Plan{Strategy: s, IDBits: idBits}

	// Pass 1: roles. Decode is strategy-independent (edge fabric
	// ingress); encode candidacy depends on the strategy.
	encodes := func(sw topo.Switch, p topo.Port) bool {
		switch s {
		case Uniform, Greedy:
			return candidate(sw.Tier, p.Dir)
		case Edge:
			return sw.Tier == topo.TierEdge && p.Dir == topo.DirHost
		case Core:
			return sw.Tier == topo.TierCore
		}
		return false
	}
	for _, sw := range g.Switches {
		sp := SwitchPlan{Name: sw.Name}
		for _, p := range sw.Ports {
			role := RoleForward
			switch {
			case sw.Tier == topo.TierEdge && p.Dir != topo.DirHost:
				role = RoleDecode
			case encodes(sw, p):
				role = RoleEncode
				sp.Encode = true
			}
			sp.Roles = append(sp.Roles, PortRole{Port: p.Num, Role: role})
		}
		plan.Switches = append(plan.Switches, sp)
	}

	// Pass 2: weights per encoding switch. Greedy weighs by observed
	// redundancy and drops zero-signal encoders; everything else is
	// even. An all-zero greedy signal degrades to even weighting.
	weights := make([]uint64, len(plan.Switches))
	anySignal := false
	for i, sp := range plan.Switches {
		if !sp.Encode {
			continue
		}
		if s == Greedy && scores != nil {
			weights[i] = scores[sp.Name]
			if weights[i] > 0 {
				anySignal = true
			}
		} else {
			weights[i] = 1
		}
	}
	if s == Greedy && !anySignal {
		for i, sp := range plan.Switches {
			if sp.Encode {
				weights[i] = 1
			}
		}
	}

	// Pass 3: split the identifier space by largest-remainder
	// rounding, ranges assigned contiguously in switch order. A
	// switch whose share rounds to zero loses its encode role: a
	// zero-capacity encoder would digest forever and never learn.
	shares := split(1<<uint(idBits), weights)
	next := uint32(0)
	for i := range plan.Switches {
		sp := &plan.Switches[i]
		if !sp.Encode {
			continue
		}
		if shares[i] == 0 {
			sp.Encode = false
			for j, pr := range sp.Roles {
				if pr.Role == RoleEncode {
					sp.Roles[j].Role = RoleForward
				}
			}
			continue
		}
		sp.IDFirst = next
		sp.IDLimit = next + uint32(shares[i])
		next = sp.IDLimit
	}
	if len(plan.Encoders()) == 0 {
		return nil, fmt.Errorf("placement: strategy %q places no encoders on %s", s, g.Kind)
	}
	return plan, nil
}

// split divides n identifiers proportionally to weights using
// largest-remainder rounding; ties break toward the lower index.
// Zero-weight entries get zero.
func split(n int, weights []uint64) []int {
	out := make([]int, len(weights))
	var total uint64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return out
	}
	type rem struct {
		idx  int
		frac uint64 // remainder numerator, larger = earlier claim
	}
	rems := make([]rem, 0, len(weights))
	used := 0
	for i, w := range weights {
		if w == 0 {
			continue
		}
		q := uint64(n) * w
		out[i] = int(q / total)
		used += out[i]
		rems = append(rems, rem{idx: i, frac: q % total})
	}
	// Hand the leftover identifiers to the largest remainders; the
	// insertion-order scan with strict > keeps index order on ties.
	for n-used > 0 {
		best := -1
		for j, r := range rems {
			if best < 0 || r.frac > rems[best].frac {
				best = j
			}
		}
		out[rems[best].idx]++
		rems[best].frac = 0
		used++
	}
	return out
}
