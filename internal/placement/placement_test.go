package placement

import (
	"reflect"
	"testing"

	"zipline/internal/topo"
)

func fatTree(t *testing.T, k int) *topo.Graph {
	t.Helper()
	g, err := topo.FatTree(topo.FatTreeConfig{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// byName indexes a plan's switches.
func byName(p *Plan) map[string]SwitchPlan {
	m := make(map[string]SwitchPlan, len(p.Switches))
	for _, sp := range p.Switches {
		m[sp.Name] = sp
	}
	return m
}

func TestUniformCoversAllTiersEvenly(t *testing.T) {
	g := fatTree(t, 4)
	p, err := Compute(g, Uniform, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.Encoders()), len(g.Switches); got != want {
		t.Fatalf("uniform placed %d encoders, want every switch (%d)", got, want)
	}
	// Ranges must partition [0, 2^8) without gaps or overlap, in
	// switch order.
	next := uint32(0)
	for _, sp := range p.Switches {
		if sp.IDFirst != next {
			t.Fatalf("switch %s range starts at %d, want %d", sp.Name, sp.IDFirst, next)
		}
		if sp.IDLimit <= sp.IDFirst {
			t.Fatalf("switch %s has empty range", sp.Name)
		}
		next = sp.IDLimit
	}
	if next != 256 {
		t.Fatalf("ranges cover [0,%d), want [0,256)", next)
	}
}

func TestEdgeAndCoreRestrictEncoders(t *testing.T) {
	g := fatTree(t, 4)
	tiers := make(map[string]topo.Tier)
	for _, sw := range g.Switches {
		tiers[sw.Name] = sw.Tier
	}
	edgePlan, err := Compute(g, Edge, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range edgePlan.Encoders() {
		if tiers[name] != topo.TierEdge {
			t.Errorf("edge strategy placed encoder on %s tier %v", name, tiers[name])
		}
	}
	corePlan, err := Compute(g, Core, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range corePlan.Encoders() {
		if tiers[name] != topo.TierCore {
			t.Errorf("core strategy placed encoder on %s tier %v", name, tiers[name])
		}
	}
}

func TestEveryEdgeDecodesFabricIngress(t *testing.T) {
	g := fatTree(t, 4)
	dirs := make(map[string]map[int]topo.Dir)
	for _, sw := range g.Switches {
		dirs[sw.Name] = make(map[int]topo.Dir)
		for _, p := range sw.Ports {
			dirs[sw.Name][p.Num] = p.Dir
		}
	}
	for _, s := range Strategies() {
		p, err := Compute(g, s, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range g.Switches {
			if sw.Tier != topo.TierEdge {
				continue
			}
			sp := byName(p)[sw.Name]
			for _, pr := range sp.Roles {
				if dirs[sw.Name][pr.Port] != topo.DirHost && pr.Role != RoleDecode {
					t.Errorf("%s: edge %s port %d role %v, want decode", s, sw.Name, pr.Port, pr.Role)
				}
			}
		}
	}
}

func TestGreedyConcentratesByScore(t *testing.T) {
	g := fatTree(t, 4)
	// Signal: only edge switches saw digests (what a profiling run
	// produces — deeper tiers only see already-compressed frames).
	scores := make(map[string]uint64)
	for _, sw := range g.Switches {
		if sw.Tier == topo.TierEdge {
			scores[sw.Name] = 100
		}
	}
	p, err := Compute(g, Greedy, 8, scores)
	if err != nil {
		t.Fatal(err)
	}
	tiers := make(map[string]topo.Tier)
	for _, sw := range g.Switches {
		tiers[sw.Name] = sw.Tier
	}
	total := uint32(0)
	for _, name := range p.Encoders() {
		if tiers[name] != topo.TierEdge {
			t.Errorf("greedy kept zero-signal encoder %s", name)
		}
	}
	for _, sp := range p.Switches {
		total += sp.IDLimit - sp.IDFirst
	}
	if total != 256 {
		t.Errorf("greedy shares total %d, want 256", total)
	}
	// Weighted: one switch with double signal gets roughly double.
	scores["e0-0"] = 200
	p2, err := Compute(g, Greedy, 8, scores)
	if err != nil {
		t.Fatal(err)
	}
	m := byName(p2)
	big := m["e0-0"].IDLimit - m["e0-0"].IDFirst
	small := m["e0-1"].IDLimit - m["e0-1"].IDFirst
	if big <= small {
		t.Errorf("share(e0-0)=%d not above share(e0-1)=%d despite double signal", big, small)
	}
}

func TestGreedyWithoutSignalDegradesToUniform(t *testing.T) {
	g := fatTree(t, 4)
	greedy, err := Compute(g, Greedy, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Compute(g, Uniform, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy.Strategy = uniform.Strategy
	if !reflect.DeepEqual(greedy, uniform) {
		t.Fatal("signal-free greedy plan differs from uniform")
	}
}

func TestScarceIdentifiersDropEncoders(t *testing.T) {
	g := fatTree(t, 4) // 20 switches, all uniform candidates
	p, err := Compute(g, Uniform, 4, nil)
	if err != nil {
		t.Fatal(err) // 16 identifiers across 20 switches
	}
	if n := len(p.Encoders()); n == 0 || n > 16 {
		t.Fatalf("encoders = %d, want 1..16", n)
	}
	for _, sp := range p.Switches {
		if sp.Encode && sp.IDLimit == sp.IDFirst {
			t.Errorf("encoder %s kept an empty range", sp.Name)
		}
		if !sp.Encode {
			for _, pr := range sp.Roles {
				if pr.Role == RoleEncode {
					t.Errorf("demoted switch %s kept encode port %d", sp.Name, pr.Port)
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	g, err := topo.ISP(topo.ISPConfig{Switches: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		a, err := Compute(g, s, 10, map[string]uint64{"s0": 5})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Compute(g, s, 10, map[string]uint64{"s0": 5})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s plan is not deterministic", s)
		}
	}
}
