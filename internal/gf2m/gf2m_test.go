package gf2m

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	f := MustNew(8, 0x1D)
	order := uint32(f.Order())
	chk := func(a, b, c uint32) bool {
		a, b, c = a%order+0, b%order, c%order // arbitrary elements incl. 0? keep raw
		a &= order
		b &= order
		c &= order
		// Distributivity: a(b+c) = ab + ac.
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			return false
		}
		// Commutativity and associativity of Mul.
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		return true
	}
	if err := quick.Check(chk, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	f := MustNew(5, 0x05)
	for a := uint32(1); a < 32; a++ {
		if got := f.Mul(a, f.Inv(a)); got != 1 {
			t.Fatalf("a·a⁻¹ = %#x for a=%#x", got, a)
		}
		if f.Div(a, a) != 1 {
			t.Fatalf("a/a != 1 for a=%#x", a)
		}
	}
}

func TestAlphaCycle(t *testing.T) {
	f := MustNew(4, 0x3)
	seen := map[uint32]bool{}
	for i := 0; i < f.Order(); i++ {
		x := f.Alpha(i)
		if seen[x] {
			t.Fatalf("α^%d repeats", i)
		}
		seen[x] = true
		if f.Log(x) != i {
			t.Fatalf("Log(α^%d) = %d", i, f.Log(x))
		}
	}
	// Negative exponents wrap.
	if f.Alpha(-1) != f.Alpha(f.Order()-1) {
		t.Fatal("negative exponent broken")
	}
	if f.Alpha(f.Order()) != 1 {
		t.Fatal("α^order != 1")
	}
}

func TestPow(t *testing.T) {
	f := MustNew(4, 0x3)
	a := f.Alpha(3)
	want := uint32(1)
	for e := 0; e < 40; e++ {
		if got := f.Pow(a, e); got != want {
			t.Fatalf("Pow(α³, %d) = %#x, want %#x", e, got, want)
		}
		want = f.Mul(want, a)
	}
	if f.Pow(0, 0) != 1 || f.Pow(0, 5) != 0 {
		t.Fatal("zero-base powers broken")
	}
}

func TestEvalPoly(t *testing.T) {
	f := MustNew(4, 0x3)
	// p(x) = x^3 + x + 1 evaluated at α must be zero: α is a root of
	// its minimal... no — the primitive polynomial here is x^4+x+1;
	// evaluate THAT at α.
	if got := f.EvalPoly(0b10011, f.Alpha(1)); got != 0 {
		t.Fatalf("primitive poly at α = %#x, want 0", got)
	}
	// p(x) = x + 1 at α^0 = 1: 1+1 = 0.
	if got := f.EvalPoly(0b11, 1); got != 0 {
		t.Fatalf("x+1 at 1 = %#x", got)
	}
	// p(x) = x² at α: α².
	if got := f.EvalPoly(0b100, f.Alpha(1)); got != f.Alpha(2) {
		t.Fatalf("x² at α = %#x, want α²", got)
	}
}

func TestMinimalPoly(t *testing.T) {
	f := MustNew(4, 0x3)
	// Known minimal polynomials for GF(16) with x^4+x+1:
	// α:  x^4+x+1       (0b10011)
	// α³: x^4+x³+x²+x+1 (0b11111)
	// α⁵: x²+x+1        (0b111)
	// α⁷: x^4+x³+1      (0b11001)
	cases := map[int]uint64{
		1: 0b10011,
		3: 0b11111,
		5: 0b111,
		7: 0b11001,
		0: 0b11, // x+1 for α^0 = 1
	}
	for i, want := range cases {
		if got := f.MinimalPoly(i); got != want {
			t.Errorf("MinimalPoly(α^%d) = %#b, want %#b", i, got, want)
		}
	}
	// Every element's minimal polynomial must vanish at the element.
	for i := 0; i < f.Order(); i++ {
		mp := f.MinimalPoly(i)
		if got := f.EvalPoly(mp, f.Alpha(i)); got != 0 {
			t.Fatalf("minpoly(α^%d) does not vanish: %#x", i, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := New(17, 1); err == nil {
		t.Error("m=17 accepted")
	}
	if _, err := New(4, 0x2); err == nil {
		t.Error("even polynomial accepted")
	}
	// x^4+x³+x²+x+1 has order 5: not primitive.
	if _, err := New(4, 0xF); err == nil {
		t.Error("non-primitive polynomial accepted")
	}
}

func TestLogPanics(t *testing.T) {
	f := MustNew(4, 0x3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Log(0)
}

func TestInvPanics(t *testing.T) {
	f := MustNew(4, 0x3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Inv(0)
}
