package gf2m

import "fmt"

// MaxM bounds the supported field sizes (table size 2^m).
const MaxM = 16

// Field is GF(2^m) with a fixed primitive polynomial. Safe for
// concurrent use after construction.
type Field struct {
	m     int
	param uint32 // primitive polynomial minus the x^m term
	size  int    // 2^m
	// exp[i] = α^i for i in [0, 2^m-2], extended to double length to
	// avoid modular reduction in Mul; log[x] = i with α^i = x.
	exp []uint32
	log []int32
}

// New constructs GF(2^m) from the primitive polynomial
// g(x) = x^m + param(x). It fails if g is not primitive.
func New(m int, param uint32) (*Field, error) {
	if m < 2 || m > MaxM {
		return nil, fmt.Errorf("gf2m: m=%d out of range [2,%d]", m, MaxM)
	}
	if param>>uint(m) != 0 || param&1 == 0 {
		return nil, fmt.Errorf("gf2m: invalid polynomial parameter %#x", param)
	}
	f := &Field{m: m, param: param, size: 1 << uint(m)}
	order := f.size - 1
	f.exp = make([]uint32, 2*order)
	f.log = make([]int32, f.size)
	for i := range f.log {
		f.log[i] = -1
	}
	x := uint32(1)
	for i := 0; i < order; i++ {
		if f.log[x] != -1 {
			return nil, fmt.Errorf("gf2m: polynomial %#x of degree %d is not primitive", param, m)
		}
		f.exp[i] = x
		f.exp[i+order] = x
		f.log[x] = int32(i)
		// multiply by α (i.e. by x, reducing mod g).
		x <<= 1
		if x>>uint(m)&1 == 1 {
			x ^= 1<<uint(m) | param
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf2m: polynomial %#x has composite order", param)
	}
	return f, nil
}

// MustNew is New, panicking on error.
func MustNew(m int, param uint32) *Field {
	f, err := New(m, param)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the field's extension degree.
func (f *Field) M() int { return f.m }

// Order returns the multiplicative group order, 2^m − 1.
func (f *Field) Order() int { return f.size - 1 }

// Alpha returns the generator α^i.
func (f *Field) Alpha(i int) uint32 {
	i %= f.Order()
	if i < 0 {
		i += f.Order()
	}
	return f.exp[i]
}

// Log returns i such that α^i = x. It panics on zero, which has no
// logarithm.
func (f *Field) Log(x uint32) int {
	if x == 0 || int(x) >= f.size {
		panic(fmt.Sprintf("gf2m: Log(%#x) undefined", x))
	}
	return int(f.log[x])
}

// Add returns a + b (XOR in characteristic two).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a·b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns a^{-1}; it panics on zero.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf2m: inverse of zero")
	}
	return f.exp[f.Order()-int(f.log[a])]
}

// Div returns a/b; it panics when b is zero.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf2m: division by zero")
	}
	if a == 0 {
		return 0
	}
	l := int(f.log[a]) - int(f.log[b])
	if l < 0 {
		l += f.Order()
	}
	return f.exp[l]
}

// Pow returns a^e (with 0^0 = 1).
func (f *Field) Pow(a uint32, e int) uint32 {
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	l := (int(f.log[a]) * e) % f.Order()
	if l < 0 {
		l += f.Order()
	}
	return f.exp[l]
}

// EvalPoly evaluates a GF(2)-coefficient polynomial (bit i of poly =
// coefficient of x^i) at the field element a — used for computing
// BCH syndromes S_j = r(α^j) from a CRC remainder.
func (f *Field) EvalPoly(poly uint64, a uint32) uint32 {
	var acc uint32
	// Horner from the highest bit down.
	for i := 63; i >= 0; i-- {
		if poly>>uint(i) == 0 && acc == 0 {
			continue
		}
		acc = f.Mul(acc, a)
		if poly>>uint(i)&1 == 1 {
			acc ^= 1
		}
	}
	return acc
}

// MinimalPoly returns the minimal polynomial over GF(2) of α^i, as a
// bit mask (bit j = coefficient of x^j). The minimal polynomial is
// the product of (x − α^{i·2^k}) over the conjugacy class of α^i.
func (f *Field) MinimalPoly(i int) uint64 {
	order := f.Order()
	i %= order
	if i < 0 {
		i += order
	}
	if i == 0 {
		return 0b11 // x + 1
	}
	// Collect the cyclotomic coset {i, 2i, 4i, ...} mod (2^m − 1).
	var coset []int
	e := i
	for {
		coset = append(coset, e)
		e = e * 2 % order
		if e == i {
			break
		}
	}
	// Multiply out prod (x + α^e) with coefficients in the field;
	// the result has GF(2) coefficients by construction.
	coeffs := []uint32{1} // constant polynomial 1
	for _, e := range coset {
		root := f.Alpha(e)
		next := make([]uint32, len(coeffs)+1)
		for j, c := range coeffs {
			next[j+1] ^= c            // x · c_j
			next[j] ^= f.Mul(c, root) // root · c_j
		}
		coeffs = next
	}
	var out uint64
	for j, c := range coeffs {
		switch c {
		case 0:
		case 1:
			out |= 1 << uint(j)
		default:
			panic(fmt.Sprintf("gf2m: minimal polynomial has non-binary coefficient %#x", c))
		}
	}
	return out
}
