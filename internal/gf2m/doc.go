// Package gf2m implements arithmetic in the finite fields GF(2^m),
// the substrate for the BCH transforms the paper names as future work
// (§8: "the CRC module in Tofino switches opens the door to …
// BCH codes").
//
// Elements are represented as polynomials over GF(2) packed into
// uint32 (bit i = coefficient of x^i), reduced modulo a primitive
// polynomial. Multiplication uses log/antilog tables, the classical
// O(1) construction.
package gf2m
