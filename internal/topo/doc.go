// Package topo generates parameterized network topologies — fat-tree
// datacenters and ISP-like random graphs — plus a flow-churn traffic
// model, as pure data for the scenario engine to expand into its
// host/switch/link model.
//
// # Determinism
//
// Every generator is a pure function of its configuration and seed:
// the same inputs always produce the same graph, the same routes in
// the same order, and the same flow list. Randomized generators (ISP
// graphs, churn) draw exclusively from a rand.Rand seeded by the
// caller — never from global rand, wall-clock time, or map iteration
// order. This is load-bearing: scenario reports are byte-stable per
// seed, and a topology that varied across runs would break that
// invariant for every experiment built on it.
//
// # Routing
//
// Graphs carry explicit destination-based routing tables (host →
// egress port, per switch), computed at generation time. Fat-tree
// routes spread traffic across the fabric deterministically by
// destination index (ECMP-by-destination); ISP routes follow BFS
// shortest paths with lowest-index tie-breaks. Both are loop-free by
// construction.
//
// # Compression roles
//
// topo does not assign encode/decode roles — it only labels each
// switch with a tier (edge/agg/core) and each port with a direction
// (host/down/up). The placement package maps those labels to per-port
// roles and dictionary capacity shares.
package topo
