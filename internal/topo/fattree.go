package topo

import "fmt"

// FatTreeConfig parameterizes the canonical k-ary fat-tree: k pods,
// each with k/2 edge and k/2 aggregation switches, and (k/2)² core
// switches. Hosts hang off the edge tier.
type FatTreeConfig struct {
	// K is the pod count and switch radix basis; even, ≥ 2.
	K int
	// HostsPerEdge oversubscribes the edge tier: hosts per edge
	// switch (default K/2, the canonical non-oversubscribed tree).
	HostsPerEdge int
}

func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.HostsPerEdge == 0 {
		c.HostsPerEdge = c.K / 2
	}
	return c
}

// FatTree generates a k-ary fat-tree. The graph, port numbering, and
// routing tables are pure functions of the configuration: no
// randomness at all.
//
// Port layout: edge switches use ports [0,H) for hosts and [H, H+k/2)
// up to their pod's aggregation switches; aggregation switch i uses
// [0,k/2) down to the pod's edges and [k/2, k) up to core group i;
// core switch j uses port p toward pod p.
//
// Routing is ECMP-by-destination: upward hops pick among the k/2
// uplinks by the destination host's global index, so distinct
// destinations spread across the fabric while each destination's path
// is deterministic and loop-free.
func FatTree(cfg FatTreeConfig) (*Graph, error) {
	cfg = cfg.withDefaults()
	k, h := cfg.K, cfg.HostsPerEdge
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree k %d must be even and ≥ 2", k)
	}
	if h < 1 {
		return nil, fmt.Errorf("topo: fat-tree hosts-per-edge %d must be ≥ 1", h)
	}
	half := k / 2
	g := &Graph{Kind: fmt.Sprintf("fat-tree:k=%d", k)}

	edgeName := func(pod, i int) string { return fmt.Sprintf("e%d-%d", pod, i) }
	aggName := func(pod, i int) string { return fmt.Sprintf("a%d-%d", pod, i) }
	coreName := func(j int) string { return fmt.Sprintf("c%d", j) }
	hostName := func(pod, e, j int) string { return fmt.Sprintf("h%d-%d-%d", pod, e, j) }

	// Hosts in global order: pod-major, then edge, then host slot.
	// Global index drives both MAC assignment (in the scenario
	// expansion) and ECMP spreading here.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for j := 0; j < h; j++ {
				g.Hosts = append(g.Hosts, Host{Name: hostName(pod, e, j), Edge: edgeName(pod, e), Port: j})
			}
		}
	}
	// hostPod/hostEdge/hostSlot recover a host's coordinates from its
	// global index gidx = ((pod*half)+e)*h + j.
	hostPod := func(gidx int) int { return gidx / (half * h) }
	hostEdge := func(gidx int) int { return (gidx / h) % half }
	hostSlot := func(gidx int) int { return gidx % h }

	// Edge switches.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			sw := Switch{Name: edgeName(pod, e), Tier: TierEdge}
			for j := 0; j < h; j++ {
				sw.Ports = append(sw.Ports, Port{Num: j, Dir: DirHost})
			}
			for i := 0; i < half; i++ {
				sw.Ports = append(sw.Ports, Port{Num: h + i, Dir: DirUp})
			}
			for gidx, host := range g.Hosts {
				if hostPod(gidx) == pod && hostEdge(gidx) == e {
					sw.Routes = append(sw.Routes, Route{Dst: host.Name, Out: hostSlot(gidx)})
				} else {
					sw.Routes = append(sw.Routes, Route{Dst: host.Name, Out: h + gidx%half})
				}
			}
			g.Switches = append(g.Switches, sw)
		}
	}
	// Aggregation switches.
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			sw := Switch{Name: aggName(pod, i), Tier: TierAgg}
			for e := 0; e < half; e++ {
				sw.Ports = append(sw.Ports, Port{Num: e, Dir: DirDown})
			}
			for j := 0; j < half; j++ {
				sw.Ports = append(sw.Ports, Port{Num: half + j, Dir: DirUp})
			}
			for gidx, host := range g.Hosts {
				if hostPod(gidx) == pod {
					sw.Routes = append(sw.Routes, Route{Dst: host.Name, Out: hostEdge(gidx)})
				} else {
					sw.Routes = append(sw.Routes, Route{Dst: host.Name, Out: half + gidx%half})
				}
			}
			g.Switches = append(g.Switches, sw)
		}
	}
	// Core switches: core j belongs to group j/half, port p faces pod p.
	for j := 0; j < half*half; j++ {
		sw := Switch{Name: coreName(j), Tier: TierCore}
		for p := 0; p < k; p++ {
			sw.Ports = append(sw.Ports, Port{Num: p, Dir: DirDown})
		}
		for gidx, host := range g.Hosts {
			sw.Routes = append(sw.Routes, Route{Dst: host.Name, Out: hostPod(gidx)})
		}
		g.Switches = append(g.Switches, sw)
	}

	// Links: host↔edge, edge↔agg (intra-pod), agg↔core.
	for gidx, host := range g.Hosts {
		g.Links = append(g.Links, Link{
			A: host.Name,
			B: fmt.Sprintf("%s:%d", host.Edge, hostSlot(gidx)),
		})
	}
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for i := 0; i < half; i++ {
				g.Links = append(g.Links, Link{
					A: fmt.Sprintf("%s:%d", edgeName(pod, e), h+i),
					B: fmt.Sprintf("%s:%d", aggName(pod, i), e),
				})
			}
		}
	}
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				g.Links = append(g.Links, Link{
					A: fmt.Sprintf("%s:%d", aggName(pod, i), half+j),
					B: fmt.Sprintf("%s:%d", coreName(i*half+j), pod),
				})
			}
		}
	}
	return g, nil
}
