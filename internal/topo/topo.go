package topo

import "fmt"

// Tier classifies a switch's position in the topology. Placement
// strategies key on it.
type Tier int

// Switch tiers. Edge switches bear hosts; core switches sit deepest
// in the fabric; agg is the fat-tree middle tier (unused by ISP
// graphs).
const (
	TierEdge Tier = iota
	TierAgg
	TierCore
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierAgg:
		return "agg"
	case TierCore:
		return "core"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Dir is a switch port's facing: toward a host, toward the hosts
// (down), or toward the core (up).
type Dir int

// Port directions.
const (
	DirHost Dir = iota
	DirDown
	DirUp
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case DirHost:
		return "host"
	case DirDown:
		return "down"
	case DirUp:
		return "up"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Port is one switch port and its facing.
type Port struct {
	Num int
	Dir Dir
}

// Route forwards traffic for one destination host out of one port.
type Route struct {
	Dst string // destination host name
	Out int    // egress port
}

// Switch is one generated switch: tier label, ports with facings, and
// a complete destination-based routing table (one Route per host in
// the graph, in global host order).
type Switch struct {
	Name   string
	Tier   Tier
	Ports  []Port
	Routes []Route
}

// Host is one generated host and its attachment point.
type Host struct {
	Name string
	Edge string // attached edge switch
	Port int    // the edge switch port it wires to
}

// Link wires two attachment points, in the scenario engine's endpoint
// syntax: a bare host name or "switch:port".
type Link struct {
	A, B          string
	PropagationNs int64
}

// Graph is a generated topology.
type Graph struct {
	// Kind records the generator and parameters ("fat-tree:k=4").
	Kind     string
	Hosts    []Host
	Switches []Switch
	Links    []Link
}

// HostNames returns the hosts' names in global order.
func (g *Graph) HostNames() []string {
	names := make([]string, len(g.Hosts))
	for i, h := range g.Hosts {
		names[i] = h.Name
	}
	return names
}
