package topo

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// wire maps each "switch:port" attachment to the far end of its link,
// for walking routes hop by hop.
func wire(t *testing.T, g *Graph) map[string]string {
	t.Helper()
	m := make(map[string]string)
	for _, l := range g.Links {
		m[l.A] = l.B
		m[l.B] = l.A
	}
	return m
}

// routeTables indexes g's routing tables: switch → destination →
// egress port.
func routeTables(g *Graph) map[string]map[string]int {
	routes := make(map[string]map[string]int)
	for _, sw := range g.Switches {
		rt := make(map[string]int, len(sw.Routes))
		for _, r := range sw.Routes {
			rt[r.Dst] = r.Out
		}
		routes[sw.Name] = rt
	}
	return routes
}

// walk follows g's routing tables from src toward dst and returns the
// hop count, failing if the path loops or dead-ends.
func walk(t *testing.T, g *Graph, w map[string]string, routes map[string]map[string]int, src, dst Host) int {
	t.Helper()
	at := src.Edge
	for hops := 1; hops <= len(g.Switches)+1; hops++ {
		out, ok := routes[at][dst.Name]
		if !ok {
			t.Fatalf("switch %s has no route to %s", at, dst.Name)
		}
		far, ok := w[fmt.Sprintf("%s:%d", at, out)]
		if !ok {
			t.Fatalf("switch %s port %d is not wired", at, out)
		}
		if far == dst.Name {
			return hops
		}
		next, _, ok := strings.Cut(far, ":")
		if !ok {
			t.Fatalf("route from %s to %s left the fabric at %q", src.Name, dst.Name, far)
		}
		at = next
	}
	t.Fatalf("route from %s to %s did not terminate", src.Name, dst.Name)
	return 0
}

func TestFatTreeShape(t *testing.T) {
	g, err := FatTree(FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Hosts), 16; got != want {
		t.Errorf("hosts = %d, want %d", got, want)
	}
	if got, want := len(g.Switches), 20; got != want {
		t.Errorf("switches = %d, want %d", got, want)
	}
	// 16 host links + 16 edge-agg + 16 agg-core.
	if got, want := len(g.Links), 48; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	for _, sw := range g.Switches {
		if got, want := len(sw.Routes), len(g.Hosts); got != want {
			t.Errorf("switch %s has %d routes, want %d", sw.Name, got, want)
		}
	}
}

func TestFatTreeRoutesDeliver(t *testing.T) {
	for _, cfg := range []FatTreeConfig{{K: 4}, {K: 4, HostsPerEdge: 4}, {K: 8}} {
		g, err := FatTree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := wire(t, g)
		routes := routeTables(g)
		for _, src := range g.Hosts {
			for _, dst := range g.Hosts {
				if src.Name == dst.Name {
					continue
				}
				if hops := walk(t, g, w, routes, src, dst); hops > 5 {
					t.Fatalf("%s: %s→%s took %d switch hops, want ≤ 5", g.Kind, src.Name, dst.Name, hops)
				}
			}
		}
	}
}

func TestFatTreeDeterministic(t *testing.T) {
	a, err := FatTree(FatTreeConfig{K: 8, HostsPerEdge: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FatTree(FatTreeConfig{K: 8, HostsPerEdge: 8})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fat-tree generation is not deterministic")
	}
}

func TestISPRoutesDeliverAndDeterministic(t *testing.T) {
	cfg := ISPConfig{Switches: 12}
	g, err := ISP(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts) == 0 {
		t.Fatal("ISP graph has no hosts")
	}
	w := wire(t, g)
	routes := routeTables(g)
	for _, src := range g.Hosts {
		for _, dst := range g.Hosts {
			if src.Name != dst.Name {
				walk(t, g, w, routes, src, dst)
			}
		}
	}
	again, _ := ISP(cfg, 7)
	if !reflect.DeepEqual(g, again) {
		t.Fatal("ISP generation is not deterministic for one seed")
	}
	other, _ := ISP(cfg, 8)
	if reflect.DeepEqual(g.Links, other.Links) {
		t.Fatal("ISP generation ignores the seed")
	}
}

func TestChurn(t *testing.T) {
	g, err := FatTree(FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	edgeOf := make(map[string]string)
	for _, h := range g.Hosts {
		edgeOf[h.Name] = h.Edge
	}
	cfg := ChurnConfig{Flows: 64}
	flows, err := Churn(g, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 64 {
		t.Fatalf("flows = %d, want 64", len(flows))
	}
	seeds := make(map[int64]bool)
	last := int64(-1)
	for i, f := range flows {
		if edgeOf[f.From] == edgeOf[f.To] {
			t.Errorf("flow %d: %s→%s shares edge switch %s", i, f.From, f.To, edgeOf[f.From])
		}
		if f.StartNs < last {
			t.Errorf("flow %d arrives at %d, before flow %d", i, f.StartNs, i-1)
		}
		last = f.StartNs
		if f.Records < 1 {
			t.Errorf("flow %d has %d records", i, f.Records)
		}
		seeds[f.Seed] = true
	}
	if len(seeds) != cfg.withDefaults().ContentStreams {
		t.Errorf("distinct content seeds = %d, want %d", len(seeds), cfg.withDefaults().ContentStreams)
	}
	again, _ := Churn(g, 42, cfg)
	if !reflect.DeepEqual(flows, again) {
		t.Fatal("churn is not deterministic for one seed")
	}
}
