package topo

import (
	"fmt"
	"math/rand"
)

// ISPConfig parameterizes the ISP-like random graph: a ring backbone
// (guaranteeing connectivity) plus seeded random chords, with
// per-link latency drawn from a configurable range and hosts hanging
// off a spread-out subset of edge switches.
type ISPConfig struct {
	// Switches is the backbone size (≥ 2).
	Switches int
	// EdgeFrac is the fraction of switches bearing hosts (default
	// 0.5, minimum one).
	EdgeFrac float64
	// HostsPerEdge attaches this many hosts to each edge switch
	// (default 2).
	HostsPerEdge int
	// ExtraDegree adds ⌊Switches·ExtraDegree/2⌋ random chords beyond
	// the ring (default 1.0, i.e. average degree ≈ 3).
	ExtraDegree float64
	// LatencyMinNs/LatencyMaxNs bound the per-link propagation draw
	// (defaults 10 µs and 500 µs — metro to regional fibre spans).
	LatencyMinNs int64
	LatencyMaxNs int64
}

func (c ISPConfig) withDefaults() ISPConfig {
	if c.EdgeFrac == 0 {
		c.EdgeFrac = 0.5
	}
	if c.HostsPerEdge == 0 {
		c.HostsPerEdge = 2
	}
	if c.ExtraDegree == 0 {
		c.ExtraDegree = 1.0
	}
	if c.LatencyMinNs == 0 {
		c.LatencyMinNs = 10_000
	}
	if c.LatencyMaxNs == 0 {
		c.LatencyMaxNs = 500_000
	}
	return c
}

// ISP generates an ISP-like seeded random graph. All randomness comes
// from the given seed; the same (cfg, seed) pair always yields the
// same graph, byte for byte.
//
// Switches bearing hosts are TierEdge (spread evenly around the
// ring); the rest are TierCore. Routing follows BFS shortest paths
// with lowest-index tie-breaks.
func ISP(cfg ISPConfig, seed int64) (*Graph, error) {
	cfg = cfg.withDefaults()
	n := cfg.Switches
	if n < 2 {
		return nil, fmt.Errorf("topo: ISP graph needs ≥ 2 switches, got %d", n)
	}
	if cfg.LatencyMinNs < 0 || cfg.LatencyMaxNs < cfg.LatencyMinNs {
		return nil, fmt.Errorf("topo: ISP latency range [%d,%d] invalid", cfg.LatencyMinNs, cfg.LatencyMaxNs)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Kind: fmt.Sprintf("isp:n=%d", n)}

	numEdge := int(float64(n) * cfg.EdgeFrac)
	if numEdge < 1 {
		numEdge = 1
	}
	if numEdge > n {
		numEdge = n
	}
	isEdge := make([]bool, n)
	step := n / numEdge
	for j := 0; j < numEdge; j++ {
		isEdge[j*step] = true
	}

	swName := func(i int) string {
		if isEdge[i] {
			return fmt.Sprintf("s%d", i)
		}
		return fmt.Sprintf("b%d", i)
	}

	// Backbone links: the ring, then random chords (no self-loops, no
	// parallel links). Latencies draw per link, in creation order.
	type edge struct{ a, b int }
	var edges []edge
	haveLink := make(map[edge]bool)
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if haveLink[edge{a, b}] {
			return false
		}
		haveLink[edge{a, b}] = true
		edges = append(edges, edge{a, b})
		return true
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	chords := int(float64(n) * cfg.ExtraDegree / 2)
	for c := 0; c < chords; c++ {
		// Bounded retry keeps generation total even on tiny dense
		// graphs; a failed draw just yields one fewer chord.
		for attempt := 0; attempt < 8; attempt++ {
			if addEdge(rng.Intn(n), rng.Intn(n)) {
				break
			}
		}
	}

	// Port assignment in link-creation order; adjacency for routing.
	type adjEntry struct{ peer, port int }
	nextPort := make([]int, n)
	adj := make([][]adjEntry, n)
	for _, e := range edges {
		pa, pb := nextPort[e.a], nextPort[e.b]
		nextPort[e.a]++
		nextPort[e.b]++
		adj[e.a] = append(adj[e.a], adjEntry{peer: e.b, port: pa})
		adj[e.b] = append(adj[e.b], adjEntry{peer: e.a, port: pb})
		lat := cfg.LatencyMinNs
		if cfg.LatencyMaxNs > cfg.LatencyMinNs {
			lat += rng.Int63n(cfg.LatencyMaxNs - cfg.LatencyMinNs + 1)
		}
		g.Links = append(g.Links, Link{
			A:             fmt.Sprintf("%s:%d", swName(e.a), pa),
			B:             fmt.Sprintf("%s:%d", swName(e.b), pb),
			PropagationNs: lat,
		})
	}

	// Hosts on edge switches, in switch order.
	hostEdgeIdx := make([]int, 0) // host global index → edge switch index
	for i := 0; i < n; i++ {
		if !isEdge[i] {
			continue
		}
		for j := 0; j < cfg.HostsPerEdge; j++ {
			name := fmt.Sprintf("h%d-%d", i, j)
			port := nextPort[i]
			nextPort[i]++
			g.Hosts = append(g.Hosts, Host{Name: name, Edge: swName(i), Port: port})
			hostEdgeIdx = append(hostEdgeIdx, i)
			g.Links = append(g.Links, Link{A: name, B: fmt.Sprintf("%s:%d", swName(i), port)})
		}
	}

	// nextHopPort[t][s]: the port switch s forwards on toward switch
	// t, from a BFS rooted at t exploring neighbors in adjacency
	// (creation) order — deterministic shortest paths.
	nextHopPort := make([][]int, n)
	for t := 0; t < n; t++ {
		dist := make([]int, n)
		hop := make([]int, n)
		for i := range dist {
			dist[i], hop[i] = -1, -1
		}
		dist[t] = 0
		queue := []int{t}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range adj[u] {
				if dist[a.peer] < 0 {
					dist[a.peer] = dist[u] + 1
					hop[a.peer] = a.port // a.peer's port toward u is found below
					queue = append(queue, a.peer)
					// Record the peer's egress port toward u.
					for _, back := range adj[a.peer] {
						if back.peer == u {
							hop[a.peer] = back.port
							break
						}
					}
				}
			}
		}
		nextHopPort[t] = hop
	}

	// Routing tables: every switch routes every host, local hosts to
	// their access port, remote hosts along the BFS next hop toward
	// the host's edge switch.
	hostAccessPort := make([]int, len(g.Hosts))
	for gidx, h := range g.Hosts {
		hostAccessPort[gidx] = h.Port
	}
	for i := 0; i < n; i++ {
		tier := TierCore
		if isEdge[i] {
			tier = TierEdge
		}
		sw := Switch{Name: swName(i), Tier: tier}
		for _, a := range adj[i] {
			dir := DirDown
			if isEdge[i] {
				dir = DirUp
			}
			sw.Ports = append(sw.Ports, Port{Num: a.port, Dir: dir})
		}
		for p := len(adj[i]); p < nextPort[i]; p++ {
			sw.Ports = append(sw.Ports, Port{Num: p, Dir: DirHost})
		}
		for gidx, h := range g.Hosts {
			t := hostEdgeIdx[gidx]
			if t == i {
				sw.Routes = append(sw.Routes, Route{Dst: h.Name, Out: hostAccessPort[gidx]})
			} else {
				sw.Routes = append(sw.Routes, Route{Dst: h.Name, Out: nextHopPort[t][i]})
			}
		}
		g.Switches = append(g.Switches, sw)
	}
	return g, nil
}
