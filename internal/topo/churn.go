package topo

import (
	"fmt"
	"math/rand"
)

// ChurnConfig parameterizes the flow-churn model: seeded flow
// arrivals over host pairs with configurable inter-arrival and
// flow-size distributions. A flow departs implicitly when its record
// budget is spent.
type ChurnConfig struct {
	// Flows is the number of flows to generate (≥ 1).
	Flows int
	// MeanInterArrivalNs is the mean of the exponential gap between
	// consecutive flow arrivals (default 50 µs).
	MeanInterArrivalNs int64
	// MeanRecords is the mean of the exponential flow-size
	// distribution, in records (default 200, minimum 1 per flow).
	MeanRecords int
	// PPS paces each flow (0 = the host generator's ceiling).
	PPS float64
	// ContentStreams bounds the number of distinct payload streams:
	// flow i draws its generator seed from stream i mod
	// ContentStreams, so flows share content — the cross-flow
	// redundancy network-wide dictionaries exist to exploit (default
	// 4).
	ContentStreams int
	// Workload names the payload generator for every flow (default
	// "sensor").
	Workload string
	// StartNs offsets the first arrival (default 0).
	StartNs int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.MeanInterArrivalNs == 0 {
		c.MeanInterArrivalNs = 50_000
	}
	if c.MeanRecords == 0 {
		c.MeanRecords = 200
	}
	if c.ContentStreams == 0 {
		c.ContentStreams = 4
	}
	if c.Workload == "" {
		c.Workload = "sensor"
	}
	return c
}

// Flow is one generated flow, ready to become a scenario traffic
// entry.
type Flow struct {
	From, To string
	Workload string
	StartNs  int64
	Records  int
	PPS      float64
	// Seed drives the flow's payload generator; flows in the same
	// content stream share it.
	Seed int64
}

// Churn generates cfg.Flows seeded flows over g's host pairs. Source
// and destination are uniform over hosts, redrawn so the pair never
// shares an edge switch: cross-fabric traffic traverses an encode and
// a decode point, so delivered payloads are always decompressed.
// Deterministic per (g, seed, cfg).
func Churn(g *Graph, seed int64, cfg ChurnConfig) ([]Flow, error) {
	cfg = cfg.withDefaults()
	if cfg.Flows < 1 {
		return nil, fmt.Errorf("topo: churn needs ≥ 1 flow, got %d", cfg.Flows)
	}
	if len(g.Hosts) < 2 {
		return nil, fmt.Errorf("topo: churn needs ≥ 2 hosts, got %d", len(g.Hosts))
	}
	edges := make(map[string]bool)
	for _, h := range g.Hosts {
		edges[h.Edge] = true
	}
	if len(edges) < 2 {
		return nil, fmt.Errorf("topo: churn needs hosts on ≥ 2 edge switches")
	}
	rng := rand.New(rand.NewSource(seed))
	flows := make([]Flow, 0, cfg.Flows)
	at := cfg.StartNs
	for i := 0; i < cfg.Flows; i++ {
		src := g.Hosts[rng.Intn(len(g.Hosts))]
		dst := src
		for dst.Edge == src.Edge {
			dst = g.Hosts[rng.Intn(len(g.Hosts))]
		}
		records := 1 + int(rng.ExpFloat64()*float64(cfg.MeanRecords))
		stream := int64(i%cfg.ContentStreams) + 1
		flows = append(flows, Flow{
			From:     src.Name,
			To:       dst.Name,
			Workload: cfg.Workload,
			StartNs:  at,
			Records:  records,
			PPS:      cfg.PPS,
			// 104729 (a prime) spreads stream seeds; the generator
			// seed never collides with the scenario's default
			// per-flow salting.
			Seed: seed + 104729*stream,
		})
		at += int64(rng.ExpFloat64() * float64(cfg.MeanInterArrivalNs))
	}
	return flows, nil
}
