package bch

import (
	"math/rand"
	"testing"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
	"zipline/internal/hamming"
)

func TestGeneratorDegrees(t *testing.T) {
	// Classic BCH parameters: (15,11,1), (15,7,2), (15,5,3),
	// (255,247,1), (255,239,2), (255,231,3).
	cases := []struct{ m, t, wantK int }{
		{4, 1, 11}, {4, 2, 7}, {4, 3, 5},
		{8, 1, 247}, {8, 2, 239}, {8, 3, 231},
		{5, 2, 21},
	}
	for _, c := range cases {
		code, err := New(c.m, c.t)
		if err != nil {
			t.Fatalf("m=%d t=%d: %v", c.m, c.t, err)
		}
		if code.K() != c.wantK {
			t.Errorf("BCH(m=%d,t=%d): k=%d, want %d", c.m, c.t, code.K(), c.wantK)
		}
	}
}

func TestT1MatchesHamming(t *testing.T) {
	// BCH with t=1 *is* the Hamming code: same generator, same
	// syndromes, same corrections.
	for _, m := range []int{3, 4, 8} {
		code := MustNew(m, 1)
		ham := hamming.MustByM(m)
		if uint32(code.Generator()) != ham.Engine().Generator() {
			t.Fatalf("m=%d: generator %#x != hamming %#x", m, code.Generator(), ham.Engine().Generator())
		}
		rng := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 30; trial++ {
			word := randomVector(rng, code.N())
			if code.Syndrome(word) != ham.SyndromeVector(word) {
				t.Fatalf("m=%d: syndrome mismatch", m)
			}
		}
	}
}

func TestErrorPositionsUpToT(t *testing.T) {
	for _, tc := range []struct{ m, t int }{{4, 2}, {5, 2}, {8, 2}, {8, 3}} {
		code := MustNew(tc.m, tc.t)
		rng := rand.New(rand.NewSource(int64(tc.m*10 + tc.t)))
		for trial := 0; trial < 60; trial++ {
			// Start from a random codeword.
			basis := randomVector(rng, code.K())
			w := bitvec.NewWriter((code.N() + 7) / 8)
			w.WriteUint(uint64(code.Parity(basis)), code.SyndromeBits())
			w.WriteVector(basis)
			cw := bitvec.FromBytes(w.Bytes(), code.N())
			if code.Syndrome(cw) != 0 {
				t.Fatalf("m=%d t=%d: parity construction broken", tc.m, tc.t)
			}
			// Inject 0..t distinct errors.
			nerr := rng.Intn(tc.t + 1)
			want := map[int]bool{}
			recv := cw.Clone()
			for len(want) < nerr {
				p := rng.Intn(code.N())
				if !want[p] {
					want[p] = true
					recv.Flip(p)
				}
			}
			got, ok := code.ErrorPositions(code.Syndrome(recv))
			if !ok {
				t.Fatalf("m=%d t=%d trial %d: %d injected errors not decoded", tc.m, tc.t, trial, nerr)
			}
			if len(got) != nerr {
				t.Fatalf("m=%d t=%d: decoded %d errors, want %d", tc.m, tc.t, len(got), nerr)
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("m=%d t=%d: spurious position %d", tc.m, tc.t, p)
				}
			}
		}
	}
}

func TestBeyondRadiusIsDetected(t *testing.T) {
	// t+1 errors must either fail decoding (ok=false) or decode to
	// some ≤t-error pattern with the same syndrome — never panic,
	// and the transform fallback must keep Split/Merge bijective
	// (checked by the round-trip test below).
	code := MustNew(4, 2)
	rng := rand.New(rand.NewSource(77))
	undecodable := 0
	for trial := 0; trial < 200; trial++ {
		v := bitvec.New(code.N())
		for injected := 0; injected < 3; {
			p := rng.Intn(code.N())
			if !v.Bit(p) {
				v.Set(p, true)
				injected++
			}
		}
		if _, ok := code.ErrorPositions(code.Syndrome(v)); !ok {
			undecodable++
		}
	}
	if undecodable == 0 {
		t.Fatal("no 3-error pattern was flagged undecodable for a t=2 code")
	}
}

func TestTransformRoundTrip(t *testing.T) {
	for _, tc := range []struct{ m, t int }{{4, 2}, {5, 2}, {8, 2}} {
		tr, err := NewTransform(tc.m, tc.t)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(tc.m)))
		for trial := 0; trial < 100; trial++ {
			word := randomVector(rng, tr.WordBits())
			basis, dev := tr.Split(word)
			back, err := tr.Merge(basis, dev)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(word) {
				t.Fatalf("m=%d t=%d trial %d: round trip failed", tc.m, tc.t, trial)
			}
		}
	}
}

func TestTransformExhaustive15_7(t *testing.T) {
	// BCH(15,7,2): all 32,768 words round trip, and the number of
	// distinct bases is exactly 2^7 = 128.
	tr, err := NewTransform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bases := map[string]bool{}
	for w := 0; w < 1<<15; w++ {
		word := bitvec.FromUint(uint64(w), 15)
		basis, dev := tr.Split(word)
		bases[basis.Key()] = true
		back, err := tr.Merge(basis, dev)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(word) {
			t.Fatalf("word %015b: round trip failed", w)
		}
	}
	if len(bases) != 128 {
		t.Fatalf("distinct bases = %d, want 128", len(bases))
	}
}

func TestTransformClusterRadius2(t *testing.T) {
	// Words within distance ≤2 of a codeword share its basis — the
	// "more chunks mapped to each basis" gain over Hamming.
	tr, _ := NewTransform(8, 2)
	rng := rand.New(rand.NewSource(5))
	basis0 := randomVector(rng, tr.BasisBits())
	cw, err := tr.Merge(basis0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		perturbed := cw.Clone()
		p1 := rng.Intn(tr.WordBits())
		p2 := rng.Intn(tr.WordBits())
		perturbed.Flip(p1)
		if p2 != p1 {
			perturbed.Flip(p2)
		}
		b, _ := tr.Split(perturbed)
		if !b.Equal(basis0) {
			t.Fatalf("2-bit perturbation (%d,%d) changed basis", p1, p2)
		}
	}
}

func TestTransformViaCodec(t *testing.T) {
	// The BCH transform plugs into the generic chunk codec: 32-byte
	// chunks, 239-bit basis, 16-bit deviation.
	tr, _ := NewTransform(8, 2)
	c := gd.NewCodec(tr)
	if c.ChunkBytes() != 32 || c.BasisBits() != 239 || c.DeviationBits() != 16 {
		t.Fatalf("geometry: chunk=%d basis=%d dev=%d", c.ChunkBytes(), c.BasisBits(), c.DeviationBits())
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		chunk := make([]byte, 32)
		rng.Read(chunk)
		s, err := c.SplitChunk(chunk)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.MergeChunk(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != chunk[i] {
				t.Fatalf("trial %d: codec round trip failed", trial)
			}
		}
	}
}

func TestMergeValidation(t *testing.T) {
	tr, _ := NewTransform(4, 2)
	if _, err := tr.Merge(bitvec.New(3), 0); err == nil {
		t.Error("bad basis length accepted")
	}
	if _, err := tr.Merge(bitvec.New(7), 1<<9); err == nil {
		t.Error("oversized deviation accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(99, 1); err == nil {
		t.Error("bad m accepted")
	}
	// t=8 at m=4 consumes every root of x^15−1: no message bits left.
	if _, err := New(4, 8); err == nil {
		t.Error("degenerate code (no message bits) accepted")
	}
}

func randomVector(rng *rand.Rand, n int) *bitvec.Vector {
	data := make([]byte, (n+7)/8)
	rng.Read(data)
	return bitvec.FromBytes(data, n)
}

func BenchmarkSplitBCH255T2(b *testing.B) {
	tr, _ := NewTransform(8, 2)
	rng := rand.New(rand.NewSource(1))
	word := randomVector(rng, tr.WordBits())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Split(word)
	}
}
