// Package bch implements binary BCH codes and the corresponding GD
// transform — the paper's future-work direction (§8): "computation of
// more complex transformations, e.g., BCH codes, by using different
// generator polynomial parameters. These allow for more chunks to be
// mapped to each basis, albeit at the cost of a larger deviation."
//
// A t-error-correcting BCH code of length n = 2^m − 1 has generator
// g(x) = lcm of the minimal polynomials of α, α³, …, α^{2t−1}. Its
// syndrome — like the Hamming special case t = 1 — is just the CRC of
// the word with g as the polynomial, so the transform still fits the
// switch's CRC engine; only the syndrome width (deg g ≤ t·m bits) and
// the flip table change.
//
// The GD transform built here is total: syndromes whose coset leader
// the t-error decoder cannot identify fall back to a canonical
// deterministic leader (the syndrome embedded in the parity
// positions), so Split/Merge remain a bijection and compression is
// simply absent for such words.
package bch
