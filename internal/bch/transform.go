package bch

import (
	"fmt"

	"zipline/internal/bitvec"
)

// Transform is the GD transform over a BCH code: deviation = the
// deg(g)-bit syndrome, basis = the message bits of the nearest
// codeword within radius t (or of the canonical coset representative
// when no codeword is that near). It implements gd.Transform.
type Transform struct {
	code *Code
}

// NewTransform builds the GD transform for BCH(2^m − 1, t).
func NewTransform(m, t int) (*Transform, error) {
	code, err := New(m, t)
	if err != nil {
		return nil, err
	}
	return &Transform{code: code}, nil
}

// Code exposes the underlying BCH code.
func (tr *Transform) Code() *Code { return tr.code }

// WordBits returns n.
func (tr *Transform) WordBits() int { return tr.code.n }

// BasisBits returns k = n − deg g.
func (tr *Transform) BasisBits() int { return tr.code.k }

// DeviationBits returns deg g (≤ t·m).
func (tr *Transform) DeviationBits() int { return tr.code.genDeg }

// leaderPositions returns the wire positions of the coset leader for
// syndrome s: the ≤ t error positions when the syndrome is within
// the decoding radius, else the canonical fallback (the syndrome
// embedded in the parity-bit positions, which always has syndrome s).
func (tr *Transform) leaderPositions(s uint32) []int {
	if pos, ok := tr.code.ErrorPositions(s); ok {
		return pos
	}
	var pos []int
	for j := 0; j < tr.code.genDeg; j++ {
		if s>>uint(j)&1 == 1 {
			pos = append(pos, tr.code.n-1-j)
		}
	}
	return pos
}

// Split maps a word to (basis, deviation).
func (tr *Transform) Split(word *bitvec.Vector) (*bitvec.Vector, uint32) {
	if word.Len() != tr.code.n {
		panic(fmt.Sprintf("bch: word length %d != n=%d", word.Len(), tr.code.n))
	}
	s := tr.code.Syndrome(word)
	cw := word
	if s != 0 {
		cw = word.Clone()
		for _, p := range tr.leaderPositions(s) {
			cw.Flip(p)
		}
	}
	return cw.Slice(tr.code.genDeg, tr.code.k), s
}

// Merge reconstructs the word from (basis, deviation).
func (tr *Transform) Merge(basis *bitvec.Vector, deviation uint32) (*bitvec.Vector, error) {
	if basis.Len() != tr.code.k {
		return nil, fmt.Errorf("bch: basis length %d != k=%d", basis.Len(), tr.code.k)
	}
	if tr.code.genDeg < 32 && deviation >= 1<<uint(tr.code.genDeg) {
		return nil, fmt.Errorf("bch: deviation %#x wider than %d bits", deviation, tr.code.genDeg)
	}
	p := tr.code.Parity(basis)
	w := bitvec.NewWriter((tr.code.n + 7) / 8)
	w.WriteUint(uint64(p), tr.code.genDeg)
	w.WriteVector(basis)
	word := bitvec.FromBytes(w.Bytes(), tr.code.n)
	if deviation != 0 {
		for _, pos := range tr.leaderPositions(deviation) {
			word.Flip(pos)
		}
	}
	return word, nil
}

// String implements fmt.Stringer.
func (tr *Transform) String() string {
	return fmt.Sprintf("gd-bch(%d,%d,t=%d)", tr.code.n, tr.code.k, tr.code.t)
}
