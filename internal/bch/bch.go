package bch

import (
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/crc"
	"zipline/internal/gf2m"
	"zipline/internal/hamming"
)

// Code is a binary BCH(n, k) code with design distance 2t+1.
type Code struct {
	m, n, k, t int
	gen        uint64 // generator polynomial bit mask
	genDeg     int
	field      *gf2m.Field
	eng        *crc.Engine
}

// New constructs the t-error-correcting BCH code of length 2^m − 1,
// using the Table 1 primitive polynomial for GF(2^m). t must be at
// least 1; t = 1 yields the Hamming code.
func New(m, t int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("bch: t=%d must be ≥ 1", t)
	}
	spec, err := hamming.SpecByM(m)
	if err != nil {
		return nil, fmt.Errorf("bch: %w", err)
	}
	field, err := gf2m.New(m, spec.Param)
	if err != nil {
		return nil, fmt.Errorf("bch: %w", err)
	}
	n := 1<<uint(m) - 1

	// g = lcm of minimal polynomials of α^1, α^3, …, α^{2t−1}.
	// Distinct cyclotomic cosets have coprime minimal polynomials, so
	// the lcm is the product over distinct polynomials.
	gen := uint64(1)
	seen := map[uint64]bool{}
	for j := 1; j <= 2*t-1; j += 2 {
		mp := field.MinimalPoly(j)
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen = mulPoly(gen, mp)
	}
	genDeg := degree(gen)
	if genDeg >= n {
		return nil, fmt.Errorf("bch: generator degree %d leaves no message bits (m=%d t=%d)", genDeg, m, t)
	}
	if genDeg > 31 {
		return nil, fmt.Errorf("bch: generator degree %d exceeds the 31-bit syndrome limit", genDeg)
	}
	eng, err := crc.New(genDeg, uint32(gen&^(1<<uint(genDeg))))
	if err != nil {
		return nil, fmt.Errorf("bch: %w", err)
	}
	return &Code{
		m: m, n: n, k: n - genDeg, t: t,
		gen: gen, genDeg: genDeg,
		field: field, eng: eng,
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(m, t int) *Code {
	c, err := New(m, t)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the code length in bits.
func (c *Code) N() int { return c.n }

// K returns the message length in bits.
func (c *Code) K() int { return c.k }

// T returns the design error-correction radius.
func (c *Code) T() int { return c.t }

// SyndromeBits returns deg g — the deviation width of the GD
// transform.
func (c *Code) SyndromeBits() int { return c.genDeg }

// Generator returns the generator polynomial as a bit mask.
func (c *Code) Generator() uint64 { return c.gen }

// Syndrome computes rem(word(x) mod g(x)) over an n-bit word.
func (c *Code) Syndrome(v *bitvec.Vector) uint32 {
	if v.Len() != c.n {
		panic(fmt.Sprintf("bch: word length %d != n=%d", v.Len(), c.n))
	}
	return c.eng.RemainderVector(v)
}

// Parity returns the genDeg parity bits p such that [p | u] is a
// codeword, via p = rem(u·x^{deg g}) — the same x^n ≡ 1 trick the
// Hamming decoder uses (g divides x^n − 1 for every cyclic code).
func (c *Code) Parity(basis *bitvec.Vector) uint32 {
	if basis.Len() != c.k {
		panic(fmt.Sprintf("bch: basis length %d != k=%d", basis.Len(), c.k))
	}
	return c.eng.ShiftN(c.eng.RemainderVector(basis), c.genDeg)
}

// ErrorPositions maps a syndrome to the wire positions of the coset
// leader the bounded-distance decoder identifies: 0, 1 or up to t
// positions. ok is false when the syndrome is outside the decoding
// radius (more than t errors); callers then use the canonical
// fallback leader.
func (c *Code) ErrorPositions(s uint32) (pos []int, ok bool) {
	if s == 0 {
		return nil, true
	}
	// Power-sum syndromes S_j = s(α^j), j = 1..2t−1 (odd), extended
	// with the even ones S_{2j} = S_j² required by Berlekamp–Massey.
	S := make([]uint32, 2*c.t+1) // 1-indexed
	for j := 1; j <= 2*c.t; j++ {
		S[j] = c.field.EvalPoly(uint64(s), c.field.Alpha(j))
	}
	sigma := c.berlekampMassey(S)
	deg := len(sigma) - 1
	if deg == 0 {
		return nil, false
	}
	// Chien search: roots of σ(x) among α^{-i}; a root at α^{-i}
	// locates an error at polynomial degree i, wire position n−1−i.
	for i := 0; i < c.n; i++ {
		x := c.field.Alpha(-i)
		var acc uint32
		for d := deg; d >= 0; d-- {
			acc = c.field.Mul(acc, x)
			acc ^= sigma[d]
		}
		if acc == 0 {
			pos = append(pos, c.n-1-i)
		}
	}
	if len(pos) != deg {
		// σ does not split over the field: uncorrectable.
		return nil, false
	}
	return pos, true
}

// berlekampMassey computes the error-locator polynomial
// σ(x) = σ₀ + σ₁x + … (σ₀ = 1) from power-sum syndromes S[1..2t].
func (c *Code) berlekampMassey(S []uint32) []uint32 {
	twoT := len(S) - 1
	sigma := []uint32{1}
	prev := []uint32{1}
	var l int
	shift := 1
	prevDisc := uint32(1)
	for r := 1; r <= twoT; r++ {
		// Discrepancy d = S_r + Σ σ_i S_{r−i}.
		var d uint32
		for i := 0; i <= l && r-i >= 1; i++ {
			if i < len(sigma) {
				d ^= c.field.Mul(sigma[i], S[r-i])
			}
		}
		if d == 0 {
			shift++
			continue
		}
		// sigma' = sigma − (d/prevDisc)·x^shift·prev
		scale := c.field.Div(d, prevDisc)
		next := make([]uint32, maxInt(len(sigma), len(prev)+shift))
		copy(next, sigma)
		for i, p := range prev {
			next[i+shift] ^= c.field.Mul(scale, p)
		}
		if 2*l <= r-1 {
			prev = sigma
			prevDisc = d
			l = r - l
			shift = 1
		} else {
			shift++
		}
		sigma = next
	}
	// Trim trailing zeros.
	last := len(sigma) - 1
	for last > 0 && sigma[last] == 0 {
		last--
	}
	return sigma[:last+1]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mulPoly multiplies two GF(2) polynomials (carry-less).
func mulPoly(a, b uint64) uint64 {
	var out uint64
	for b != 0 {
		if b&1 == 1 {
			out ^= a
		}
		a <<= 1
		b >>= 1
	}
	return out
}

func degree(p uint64) int {
	d := -1
	for i := 0; i < 64; i++ {
		if p>>uint(i)&1 == 1 {
			d = i
		}
	}
	return d
}
