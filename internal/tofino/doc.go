// Package tofino models the slice of the Barefoot Tofino / TNA
// architecture that ZipLine relies on (paper §5, §6):
//
//   - a match-action pipeline with a constant per-packet traversal
//     latency, independent of program complexity — the architectural
//     contract behind "any P4 program that compiles runs at line
//     rate";
//   - exact-match tables whose entries are installed and removed only
//     by the control plane, with per-entry idle timeouts (TTLs) that
//     notify the control plane, as TNA provides;
//   - digests, the data-plane→control-plane message channel used to
//     report unknown bases;
//   - registers and counters;
//   - an SRAM resource model that bounds table sizes the way the
//     hardware does (the reason the paper settles on 15-bit IDs).
//
// The model is deliberately not a P4 interpreter: programs are Go
// code implementing the Program interface, but they may only touch
// state through the Ctx handles, which enforce the architecture's
// restrictions (single apply per table per pass, no data-plane table
// writes, bounded per-packet work).
package tofino
