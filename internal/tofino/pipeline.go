package tofino

import (
	"fmt"
)

// Port identifies a front-panel port of the modelled switch.
type Port int

// Emit is one output packet produced by a program pass: a frame to
// transmit on a port. A pass returning no emissions drops the packet.
type Emit struct {
	Port  Port
	Frame []byte
}

// Digest is a data-plane→control-plane message (TNA digests). ZipLine
// uses them to report unknown bases (paper §5: "unknown bases are
// sent up by means of digests").
type Digest struct {
	Name      string
	Data      []byte
	EmittedAt int64 // virtual ns
}

// Program is the P4 program loaded into a pipeline. Declare runs once
// at load time and must allocate every table, register and counter
// the program will touch; Process runs per packet and may only reach
// state through the Ctx. This mirrors how P4 fixes all resources at
// compile time.
type Program interface {
	// Name identifies the program in diagnostics.
	Name() string
	// Declare allocates the program's pipeline resources.
	Declare(a *Alloc) error
	// Process handles one packet arriving on ingress, appending the
	// frames to emit onto out and returning the extended slice. It
	// must do bounded work: the Ctx enforces at most one apply per
	// table per pass and forbids recirculation. Emitted frames may
	// alias program-owned scratch that the next Process call on the
	// same program reuses; callers that keep a frame longer must copy
	// it first.
	Process(ctx *Ctx, frame []byte, ingress Port, out []Emit) []Emit
}

// Config sizes a pipeline.
type Config struct {
	// Name identifies the pipeline (diagnostics only).
	Name string
	// Ports is the number of front-panel ports (Wedge100BF-32X: 32).
	Ports int
	// SRAMBudgetBits bounds the total table SRAM a program may
	// declare. The default (64 Mbit) approximates the share of a
	// Tofino pipe available for MAU table data and is what makes the
	// paper's 15-bit identifier the largest feasible aligned choice.
	SRAMBudgetBits int64
}

// Defaults for Config fields left zero.
const (
	DefaultPorts          = 32
	DefaultSRAMBudgetBits = 64 << 20 // 64 Mbit
)

// MaxTables bounds the tables one program may declare: the per-pass
// applied set is a 64-bit mask, and a real Tofino pipe runs out of
// match-action stages long before sixty-four tables anyway.
const MaxTables = 64

// Pipeline is a loaded program plus its resources. Handles resolve to
// dense indices at Declare time, so the per-packet path indexes flat
// slices instead of hashing names. It has no clock of its own:
// callers pass virtual timestamps in, which keeps the model
// deterministic under the discrete-event simulator.
type Pipeline struct {
	cfg  Config
	prog Program

	tables   []*Table
	regs     [][]uint32
	counters []uint64

	tableIdx   map[string]int
	regIdx     map[string]int
	counterIdx map[string]int

	digests []Digest
	sram    int64

	ctx Ctx // reused across packets: Process is single-threaded
}

// Load builds a pipeline: it runs the program's Declare phase and
// verifies the resource budget, the moral equivalent of a successful
// Tofino compile.
func Load(cfg Config, prog Program) (*Pipeline, error) {
	if cfg.Ports == 0 {
		cfg.Ports = DefaultPorts
	}
	if cfg.SRAMBudgetBits == 0 {
		cfg.SRAMBudgetBits = DefaultSRAMBudgetBits
	}
	if cfg.Ports < 1 {
		return nil, fmt.Errorf("tofino: %d ports", cfg.Ports)
	}
	p := &Pipeline{
		cfg:        cfg,
		prog:       prog,
		tableIdx:   make(map[string]int),
		regIdx:     make(map[string]int),
		counterIdx: make(map[string]int),
	}
	if err := prog.Declare(&Alloc{p: p}); err != nil {
		return nil, fmt.Errorf("tofino: declaring %s: %w", prog.Name(), err)
	}
	if p.sram > cfg.SRAMBudgetBits {
		return nil, fmt.Errorf("tofino: program %s needs %d SRAM bits, budget is %d",
			prog.Name(), p.sram, cfg.SRAMBudgetBits)
	}
	return p, nil
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Program returns the loaded program (control-plane and
// fault-injection access to program-level state such as epochs).
func (p *Pipeline) Program() Program { return p.prog }

// SRAMBits reports the SRAM the loaded program consumes under the
// resource model.
func (p *Pipeline) SRAMBits() int64 { return p.sram }

// ProcessAppend runs one packet through the program at virtual time
// now, appending the emitted frames onto out and returning the
// extended slice. With a caller-reused out slice the steady-state
// path allocates nothing. Emitted frames may alias program scratch
// valid only until the next ProcessAppend call on this pipeline;
// callers that retain frames longer must copy them.
//
//zipline:noalloc
func (p *Pipeline) ProcessAppend(now int64, frame []byte, ingress Port, out []Emit) []Emit {
	p.ctx = Ctx{p: p, now: now}
	base := len(out)
	out = p.prog.Process(&p.ctx, frame, ingress, out)
	for _, e := range out[base:] {
		if int(e.Port) < 0 || int(e.Port) >= p.cfg.Ports {
			panic(fmt.Sprintf("tofino: program %s emitted on invalid port %d", p.prog.Name(), e.Port))
		}
	}
	return out
}

// Process runs one packet and returns durable emissions: every frame
// is cloned out of program scratch, so the result stays valid
// indefinitely. Hot paths use ProcessAppend with a reused scratch
// slice instead.
func (p *Pipeline) Process(now int64, frame []byte, ingress Port) []Emit {
	//ziplint:allow emitbuf Process is the documented one-shot cloning wrapper; hot paths use ProcessAppend with reused scratch
	out := p.ProcessAppend(now, frame, ingress, nil)
	for i := range out {
		out[i].Frame = append([]byte(nil), out[i].Frame...)
	}
	return out
}

// Table exposes a table to the control plane by name.
func (p *Pipeline) Table(name string) (*Table, bool) {
	i, ok := p.tableIdx[name]
	if !ok {
		return nil, false
	}
	return p.tables[i], true
}

// Counter returns a counter's current value.
func (p *Pipeline) Counter(name string) uint64 {
	i, ok := p.counterIdx[name]
	if !ok {
		return 0
	}
	return p.counters[i]
}

// Counters returns a copy of all counters.
func (p *Pipeline) Counters() map[string]uint64 {
	out := make(map[string]uint64, len(p.counterIdx))
	for name, i := range p.counterIdx {
		out[name] = p.counters[i]
	}
	return out
}

// DrainDigests removes and returns all queued digests. The control
// plane (or the simulator acting for it) calls this; delivery latency
// is the caller's concern.
func (p *Pipeline) DrainDigests() []Digest {
	d := p.digests
	p.digests = nil
	return d
}

// PendingDigests reports how many digests are queued.
func (p *Pipeline) PendingDigests() int { return len(p.digests) }

// Alloc is handed to Program.Declare to allocate resources.
type Alloc struct {
	p *Pipeline
}

// Table allocates an exact-match table and returns its handle.
func (a *Alloc) Table(spec TableSpec) (TableHandle, error) {
	if _, dup := a.p.tableIdx[spec.Name]; dup {
		return TableHandle{}, fmt.Errorf("tofino: duplicate table %q", spec.Name)
	}
	if len(a.p.tables) >= MaxTables {
		return TableHandle{}, fmt.Errorf("tofino: program declares more than %d tables", MaxTables)
	}
	t, err := newTable(spec)
	if err != nil {
		return TableHandle{}, err
	}
	a.p.tableIdx[spec.Name] = len(a.p.tables)
	a.p.tables = append(a.p.tables, t)
	a.p.sram += t.sramBits()
	return TableHandle{name: spec.Name, idx: len(a.p.tables) - 1}, nil
}

// Register allocates an array of 32-bit registers.
func (a *Alloc) Register(name string, size int) (RegisterHandle, error) {
	if size <= 0 {
		return RegisterHandle{}, fmt.Errorf("tofino: register %s size %d", name, size)
	}
	if _, dup := a.p.regIdx[name]; dup {
		return RegisterHandle{}, fmt.Errorf("tofino: duplicate register %q", name)
	}
	a.p.regIdx[name] = len(a.p.regs)
	a.p.regs = append(a.p.regs, make([]uint32, size))
	a.p.sram += int64(size) * 32
	// Register handles are 1-based so the zero RegisterHandle is
	// invalid rather than silently aliasing the first register.
	return RegisterHandle{name: name, idx: len(a.p.regs)}, nil
}

// Counter allocates a named 64-bit counter. Counters are free in the
// resource model (they live in dedicated stats SRAM on hardware).
func (a *Alloc) Counter(name string) (CounterHandle, error) {
	if _, dup := a.p.counterIdx[name]; dup {
		return CounterHandle{}, fmt.Errorf("tofino: duplicate counter %q", name)
	}
	a.p.counterIdx[name] = len(a.p.counters)
	a.p.counters = append(a.p.counters, 0)
	// Counter handles are 1-based so the zero CounterHandle is
	// invalid rather than silently aliasing the first counter.
	return CounterHandle{name: name, idx: len(a.p.counters)}, nil
}

// TableHandle is a program's reference to a declared table, resolved
// to a dense index at Declare time.
type TableHandle struct {
	name string
	idx  int
}

// RegisterHandle is a program's reference to a declared register.
type RegisterHandle struct {
	name string
	idx  int
}

// CounterHandle is a program's reference to a declared counter.
type CounterHandle struct {
	name string
	idx  int
}

// Ctx is the per-packet view of the pipeline given to Process. It
// enforces the architectural restrictions: each table applies at most
// once per pass (P4 pipelines are feed-forward) and the data plane
// cannot write tables.
type Ctx struct {
	p       *Pipeline
	now     int64
	applied uint64 // bitmask over table indices
}

// Now returns the packet's virtual arrival timestamp in nanoseconds.
func (c *Ctx) Now() int64 { return c.now }

// checkApply enforces the single-apply-per-pass rule and resolves the
// handle. A handle whose index doesn't match this pipeline's table of
// the same position belongs to a different Load and panics.
func (c *Ctx) checkApply(h TableHandle) *Table {
	if h.idx < 0 || h.idx >= len(c.p.tables) || c.p.tables[h.idx].name != h.name {
		panic(fmt.Sprintf("tofino: apply of undeclared table %q", h.name))
	}
	bit := uint64(1) << uint(h.idx)
	if c.applied&bit != 0 {
		panic(fmt.Sprintf("tofino: table %q applied twice in one pass (pipelines are feed-forward)", h.name))
	}
	c.applied |= bit
	return c.p.tables[h.idx]
}

// Apply looks the key up in a table, at most once per pass.
func (c *Ctx) Apply(h TableHandle, key string) (any, bool) {
	return c.checkApply(h).lookup(key, c.now)
}

// ApplyBytes is Apply with a byte-slice key: the data-plane match on
// a header field. It allocates nothing (the map lookup uses the
// compiler's string-conversion elision).
//
//zipline:noalloc
func (c *Ctx) ApplyBytes(h TableHandle, key []byte) (any, bool) {
	return c.checkApply(h).lookupBytes(key, c.now)
}

// Count increments a counter by n.
//
//zipline:noalloc
func (c *Ctx) Count(h CounterHandle, n uint64) {
	if h.idx < 1 || h.idx > len(c.p.counters) {
		panic(fmt.Sprintf("tofino: undeclared counter %q", h.name))
	}
	c.p.counters[h.idx-1] += n
}

// checkReg validates a register handle against this pipeline.
func (c *Ctx) checkReg(h RegisterHandle) []uint32 {
	if h.idx < 1 || h.idx > len(c.p.regs) {
		panic(fmt.Sprintf("tofino: undeclared register %q", h.name))
	}
	return c.p.regs[h.idx-1]
}

// ReadReg reads a register cell.
func (c *Ctx) ReadReg(h RegisterHandle, idx int) uint32 {
	return c.checkReg(h)[idx]
}

// WriteReg writes a register cell (registers, unlike tables, are
// data-plane writable on Tofino).
func (c *Ctx) WriteReg(h RegisterHandle, idx int, v uint32) {
	c.checkReg(h)[idx] = v
}

// Digest queues a digest for the control plane.
func (c *Ctx) Digest(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.p.digests = append(c.p.digests, Digest{Name: name, Data: cp, EmittedAt: c.now})
}
