package tofino

import (
	"fmt"
)

// Port identifies a front-panel port of the modelled switch.
type Port int

// Emit is one output packet produced by a program pass: a frame to
// transmit on a port. A pass returning no emissions drops the packet.
type Emit struct {
	Port  Port
	Frame []byte
}

// Digest is a data-plane→control-plane message (TNA digests). ZipLine
// uses them to report unknown bases (paper §5: "unknown bases are
// sent up by means of digests").
type Digest struct {
	Name      string
	Data      []byte
	EmittedAt int64 // virtual ns
}

// Program is the P4 program loaded into a pipeline. Declare runs once
// at load time and must allocate every table, register and counter
// the program will touch; Process runs per packet and may only reach
// state through the Ctx. This mirrors how P4 fixes all resources at
// compile time.
type Program interface {
	// Name identifies the program in diagnostics.
	Name() string
	// Declare allocates the program's pipeline resources.
	Declare(a *Alloc) error
	// Process handles one packet arriving on ingress and returns the
	// frames to emit. It must do bounded work: the Ctx enforces at
	// most one apply per table per pass and forbids recirculation.
	Process(ctx *Ctx, frame []byte, ingress Port) []Emit
}

// Config sizes a pipeline.
type Config struct {
	// Name identifies the pipeline (diagnostics only).
	Name string
	// Ports is the number of front-panel ports (Wedge100BF-32X: 32).
	Ports int
	// SRAMBudgetBits bounds the total table SRAM a program may
	// declare. The default (64 Mbit) approximates the share of a
	// Tofino pipe available for MAU table data and is what makes the
	// paper's 15-bit identifier the largest feasible aligned choice.
	SRAMBudgetBits int64
}

// Defaults for Config fields left zero.
const (
	DefaultPorts          = 32
	DefaultSRAMBudgetBits = 64 << 20 // 64 Mbit
)

// Pipeline is a loaded program plus its resources. It has no clock of
// its own: callers pass virtual timestamps in, which keeps the model
// deterministic under the discrete-event simulator.
type Pipeline struct {
	cfg      Config
	prog     Program
	tables   map[string]*Table
	regs     map[string][]uint32
	counters map[string]uint64
	digests  []Digest
	sram     int64
}

// Load builds a pipeline: it runs the program's Declare phase and
// verifies the resource budget, the moral equivalent of a successful
// Tofino compile.
func Load(cfg Config, prog Program) (*Pipeline, error) {
	if cfg.Ports == 0 {
		cfg.Ports = DefaultPorts
	}
	if cfg.SRAMBudgetBits == 0 {
		cfg.SRAMBudgetBits = DefaultSRAMBudgetBits
	}
	if cfg.Ports < 1 {
		return nil, fmt.Errorf("tofino: %d ports", cfg.Ports)
	}
	p := &Pipeline{
		cfg:      cfg,
		prog:     prog,
		tables:   make(map[string]*Table),
		regs:     make(map[string][]uint32),
		counters: make(map[string]uint64),
	}
	if err := prog.Declare(&Alloc{p: p}); err != nil {
		return nil, fmt.Errorf("tofino: declaring %s: %w", prog.Name(), err)
	}
	if p.sram > cfg.SRAMBudgetBits {
		return nil, fmt.Errorf("tofino: program %s needs %d SRAM bits, budget is %d",
			prog.Name(), p.sram, cfg.SRAMBudgetBits)
	}
	return p, nil
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// SRAMBits reports the SRAM the loaded program consumes under the
// resource model.
func (p *Pipeline) SRAMBits() int64 { return p.sram }

// Process runs one packet through the program at virtual time now.
func (p *Pipeline) Process(now int64, frame []byte, ingress Port) []Emit {
	ctx := Ctx{p: p, now: now}
	out := p.prog.Process(&ctx, frame, ingress)
	for _, e := range out {
		if int(e.Port) < 0 || int(e.Port) >= p.cfg.Ports {
			panic(fmt.Sprintf("tofino: program %s emitted on invalid port %d", p.prog.Name(), e.Port))
		}
	}
	return out
}

// Table exposes a table to the control plane by name.
func (p *Pipeline) Table(name string) (*Table, bool) {
	t, ok := p.tables[name]
	return t, ok
}

// Counter returns a counter's current value.
func (p *Pipeline) Counter(name string) uint64 { return p.counters[name] }

// Counters returns a copy of all counters.
func (p *Pipeline) Counters() map[string]uint64 {
	out := make(map[string]uint64, len(p.counters))
	for k, v := range p.counters {
		out[k] = v
	}
	return out
}

// DrainDigests removes and returns all queued digests. The control
// plane (or the simulator acting for it) calls this; delivery latency
// is the caller's concern.
func (p *Pipeline) DrainDigests() []Digest {
	d := p.digests
	p.digests = nil
	return d
}

// PendingDigests reports how many digests are queued.
func (p *Pipeline) PendingDigests() int { return len(p.digests) }

// Alloc is handed to Program.Declare to allocate resources.
type Alloc struct {
	p *Pipeline
}

// Table allocates an exact-match table and returns its handle.
func (a *Alloc) Table(spec TableSpec) (TableHandle, error) {
	if _, dup := a.p.tables[spec.Name]; dup {
		return TableHandle{}, fmt.Errorf("tofino: duplicate table %q", spec.Name)
	}
	t, err := newTable(spec)
	if err != nil {
		return TableHandle{}, err
	}
	a.p.tables[spec.Name] = t
	a.p.sram += t.sramBits()
	return TableHandle{name: spec.Name}, nil
}

// Register allocates an array of 32-bit registers.
func (a *Alloc) Register(name string, size int) (RegisterHandle, error) {
	if size <= 0 {
		return RegisterHandle{}, fmt.Errorf("tofino: register %s size %d", name, size)
	}
	if _, dup := a.p.regs[name]; dup {
		return RegisterHandle{}, fmt.Errorf("tofino: duplicate register %q", name)
	}
	a.p.regs[name] = make([]uint32, size)
	a.p.sram += int64(size) * 32
	return RegisterHandle{name: name}, nil
}

// Counter allocates a named 64-bit counter. Counters are free in the
// resource model (they live in dedicated stats SRAM on hardware).
func (a *Alloc) Counter(name string) (CounterHandle, error) {
	if _, dup := a.p.counters[name]; dup {
		return CounterHandle{}, fmt.Errorf("tofino: duplicate counter %q", name)
	}
	a.p.counters[name] = 0
	return CounterHandle{name: name}, nil
}

// TableHandle is a program's reference to a declared table.
type TableHandle struct{ name string }

// RegisterHandle is a program's reference to a declared register.
type RegisterHandle struct{ name string }

// CounterHandle is a program's reference to a declared counter.
type CounterHandle struct{ name string }

// Ctx is the per-packet view of the pipeline given to Process. It
// enforces the architectural restrictions: each table applies at most
// once per pass (P4 pipelines are feed-forward) and the data plane
// cannot write tables.
type Ctx struct {
	p       *Pipeline
	now     int64
	applied map[string]bool
}

// Now returns the packet's virtual arrival timestamp in nanoseconds.
func (c *Ctx) Now() int64 { return c.now }

// Apply looks the key up in a table, at most once per pass.
func (c *Ctx) Apply(h TableHandle, key string) (any, bool) {
	if c.applied == nil {
		c.applied = make(map[string]bool, 4)
	}
	if c.applied[h.name] {
		panic(fmt.Sprintf("tofino: table %q applied twice in one pass (pipelines are feed-forward)", h.name))
	}
	c.applied[h.name] = true
	t, ok := c.p.tables[h.name]
	if !ok {
		panic(fmt.Sprintf("tofino: apply of undeclared table %q", h.name))
	}
	return t.lookup(key, c.now)
}

// Count increments a counter by n.
func (c *Ctx) Count(h CounterHandle, n uint64) {
	if _, ok := c.p.counters[h.name]; !ok {
		panic(fmt.Sprintf("tofino: undeclared counter %q", h.name))
	}
	c.p.counters[h.name] += n
}

// ReadReg reads a register cell.
func (c *Ctx) ReadReg(h RegisterHandle, idx int) uint32 {
	return c.p.regs[h.name][idx]
}

// WriteReg writes a register cell (registers, unlike tables, are
// data-plane writable on Tofino).
func (c *Ctx) WriteReg(h RegisterHandle, idx int, v uint32) {
	c.p.regs[h.name][idx] = v
}

// Digest queues a digest for the control plane.
func (c *Ctx) Digest(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.p.digests = append(c.p.digests, Digest{Name: name, Data: cp, EmittedAt: c.now})
}
