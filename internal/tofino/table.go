package tofino

import (
	"fmt"
	"sort"
)

// Table is an exact-match match-action table. The data plane may only
// look entries up; installation, deletion and capacity are control
// plane business, exactly as on the hardware (paper §6: "we settled
// on storing basis-ID pairs in regular match-action tables and manage
// them with the control plane").
type Table struct {
	name     string
	keyBits  int
	actBits  int
	capacity int
	// idleTimeoutNs > 0 enables TNA-style per-entry aging.
	idleTimeoutNs int64
	entries       map[string]*tableEntry
}

type tableEntry struct {
	action  any
	lastHit int64
}

// TableSpec declares a table's geometry at program Declare time.
type TableSpec struct {
	Name string
	// KeyBits and ActionBits size the SRAM cost model.
	KeyBits    int
	ActionBits int
	// Capacity is the maximum number of entries.
	Capacity int
	// IdleTimeoutNs enables per-entry aging: entries not hit for this
	// long show up in ExpiredKeys. Zero disables aging.
	IdleTimeoutNs int64
}

func newTable(s TableSpec) (*Table, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("tofino: table needs a name")
	}
	if s.KeyBits <= 0 || s.Capacity <= 0 {
		return nil, fmt.Errorf("tofino: table %s: key bits and capacity must be positive", s.Name)
	}
	if s.ActionBits < 0 || s.IdleTimeoutNs < 0 {
		return nil, fmt.Errorf("tofino: table %s: negative action bits or idle timeout", s.Name)
	}
	return &Table{
		name:          s.Name,
		keyBits:       s.KeyBits,
		actBits:       s.ActionBits,
		capacity:      s.Capacity,
		idleTimeoutNs: s.IdleTimeoutNs,
		entries:       make(map[string]*tableEntry),
	}, nil
}

// Name returns the table's declared name.
func (t *Table) Name() string { return t.name }

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Capacity returns the declared maximum entry count.
func (t *Table) Capacity() int { return t.capacity }

// lookup is the data-plane path: a hit refreshes the entry's idle
// timer (TNA resets the TTL on data-plane match).
func (t *Table) lookup(key string, now int64) (any, bool) {
	e, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	e.lastHit = now
	return e.action, true
}

// lookupBytes is lookup keyed by a byte slice. The map index uses the
// string(key) conversion directly so the compiler elides the string
// allocation — the per-packet match costs a hash, not a copy.
//
//zipline:noalloc
func (t *Table) lookupBytes(key []byte, now int64) (any, bool) {
	e, ok := t.entries[string(key)]
	if !ok {
		return nil, false
	}
	e.lastHit = now
	return e.action, true
}

// Install adds or replaces an entry. Control-plane API.
func (t *Table) Install(key string, action any, now int64) error {
	if _, exists := t.entries[key]; !exists && len(t.entries) >= t.capacity {
		return fmt.Errorf("tofino: table %s full (%d entries)", t.name, t.capacity)
	}
	t.entries[key] = &tableEntry{action: action, lastHit: now}
	return nil
}

// Clear removes every entry, returning how many were dropped — the
// state a power cycle loses. Control-plane / fault-injection API.
func (t *Table) Clear() int {
	n := len(t.entries)
	clear(t.entries)
	return n
}

// Delete removes an entry, reporting whether it existed.
// Control-plane API.
func (t *Table) Delete(key string) bool {
	if _, ok := t.entries[key]; !ok {
		return false
	}
	delete(t.entries, key)
	return true
}

// Get returns an entry's action without refreshing its idle timer.
// Control-plane API (BfRt reads do not count as hits).
func (t *Table) Get(key string) (any, bool) {
	e, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	return e.action, true
}

// ExpiredKeys returns the keys whose idle timers have lapsed at time
// now, in sorted order (map iteration alone would leak scheduling
// nondeterminism into the control plane). The model notifies but does
// not auto-delete: on TNA the aging notification goes to the control
// plane, which decides.
func (t *Table) ExpiredKeys(now int64) []string {
	if t.idleTimeoutNs == 0 {
		return nil
	}
	var out []string
	for k, e := range t.entries {
		if now-e.lastHit >= t.idleTimeoutNs {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// IdleTime returns how long ago the entry was last hit, and whether
// it exists.
func (t *Table) IdleTime(key string, now int64) (int64, bool) {
	e, ok := t.entries[key]
	if !ok {
		return 0, false
	}
	return now - e.lastHit, true
}

// LeastRecentlyHit returns the entry whose data-plane idle time is
// longest (ties broken by key order for determinism). The control
// plane uses it to pick eviction victims, the "LRU policy" of paper
// §5. ok is false when the table is empty.
func (t *Table) LeastRecentlyHit() (key string, lastHit int64, ok bool) {
	first := true
	for k, e := range t.entries {
		if first || e.lastHit < lastHit || (e.lastHit == lastHit && k < key) {
			key, lastHit, ok = k, e.lastHit, true
			first = false
		}
	}
	return
}

// sramBits is the table's cost in the resource model: each entry
// burns key + action bits plus fixed per-entry overhead (match
// overhead, version bits, pointers), approximated at 64 bits.
func (t *Table) sramBits() int64 {
	const entryOverheadBits = 64
	return int64(t.capacity) * int64(t.keyBits+t.actBits+entryOverheadBits)
}
