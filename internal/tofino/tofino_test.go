package tofino

import (
	"strings"
	"testing"
)

// echoProg is a minimal test program: counts packets, looks keys up
// in one table, reports misses via digests, and reflects frames.
type echoProg struct {
	tbl    TableHandle
	hits   CounterHandle
	misses CounterHandle
	reg    RegisterHandle

	applyTwice bool // fault injection: violate the one-apply rule
}

func (p *echoProg) Name() string { return "echo" }

func (p *echoProg) Declare(a *Alloc) error {
	var err error
	if p.tbl, err = a.Table(TableSpec{
		Name: "map", KeyBits: 32, ActionBits: 16, Capacity: 4, IdleTimeoutNs: 1000,
	}); err != nil {
		return err
	}
	if p.hits, err = a.Counter("hits"); err != nil {
		return err
	}
	if p.misses, err = a.Counter("misses"); err != nil {
		return err
	}
	p.reg, err = a.Register("seen", 8)
	return err
}

func (p *echoProg) Process(ctx *Ctx, frame []byte, ingress Port, out []Emit) []Emit {
	key := string(frame[:4])
	if _, ok := ctx.Apply(p.tbl, key); ok {
		ctx.Count(p.hits, 1)
	} else {
		ctx.Count(p.misses, 1)
		ctx.Digest("unknown", frame[:4])
	}
	if p.applyTwice {
		ctx.Apply(p.tbl, key)
	}
	ctx.WriteReg(p.reg, 0, ctx.ReadReg(p.reg, 0)+1)
	return append(out, Emit{Port: ingress ^ 1, Frame: frame})
}

func load(t *testing.T, prog Program) *Pipeline {
	t.Helper()
	p, err := Load(Config{Name: "test"}, prog)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineBasicFlow(t *testing.T) {
	prog := &echoProg{}
	p := load(t, prog)

	frame := []byte{1, 2, 3, 4, 5, 6}
	out := p.Process(100, frame, 3)
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("emit = %+v", out)
	}
	if p.Counter("misses") != 1 || p.Counter("hits") != 0 {
		t.Fatalf("counters = %v", p.Counters())
	}
	if p.PendingDigests() != 1 {
		t.Fatalf("digests = %d", p.PendingDigests())
	}

	// Control plane learns the key; next packet hits.
	tbl, ok := p.Table("map")
	if !ok {
		t.Fatal("table not found")
	}
	if err := tbl.Install(string(frame[:4]), uint16(7), 150); err != nil {
		t.Fatal(err)
	}
	p.Process(200, frame, 3)
	if p.Counter("hits") != 1 {
		t.Fatalf("counters = %v", p.Counters())
	}

	ds := p.DrainDigests()
	if len(ds) != 1 || ds[0].Name != "unknown" || ds[0].EmittedAt != 100 {
		t.Fatalf("digests = %+v", ds)
	}
	if p.PendingDigests() != 0 {
		t.Fatal("drain did not clear")
	}
}

func TestDigestDataIsCopied(t *testing.T) {
	prog := &echoProg{}
	p := load(t, prog)
	frame := []byte{9, 9, 9, 9}
	p.Process(0, frame, 0)
	frame[0] = 1 // mutate after emission
	d := p.DrainDigests()
	if d[0].Data[0] != 9 {
		t.Fatal("digest aliases caller memory")
	}
}

func TestTableCapacityAndDelete(t *testing.T) {
	tbl, err := newTable(TableSpec{Name: "t", KeyBits: 8, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install("a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install("b", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Install("c", 3, 0); err == nil {
		t.Fatal("over-capacity install accepted")
	}
	// Replacing an existing key is fine at capacity.
	if err := tbl.Install("a", 9, 0); err != nil {
		t.Fatal(err)
	}
	if !tbl.Delete("a") || tbl.Delete("a") {
		t.Fatal("delete semantics broken")
	}
	if err := tbl.Install("c", 3, 0); err != nil {
		t.Fatalf("install after delete: %v", err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableIdleTimeout(t *testing.T) {
	tbl, err := newTable(TableSpec{Name: "t", KeyBits: 8, Capacity: 4, IdleTimeoutNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install("a", 1, 0)
	tbl.Install("b", 2, 0)
	// Data-plane hit on a at t=50 refreshes its timer.
	if _, ok := tbl.lookup("a", 50); !ok {
		t.Fatal("lookup miss")
	}
	exp := tbl.ExpiredKeys(120)
	if len(exp) != 1 || exp[0] != "b" {
		t.Fatalf("expired = %v, want [b]", exp)
	}
	// Control-plane Get must not refresh.
	tbl.Get("b")
	if got := tbl.ExpiredKeys(120); len(got) != 1 {
		t.Fatalf("Get refreshed idle timer: %v", got)
	}
	if idle, ok := tbl.IdleTime("a", 120); !ok || idle != 70 {
		t.Fatalf("IdleTime = %d,%v", idle, ok)
	}
}

func TestTableNoAgingWhenDisabled(t *testing.T) {
	tbl, _ := newTable(TableSpec{Name: "t", KeyBits: 8, Capacity: 4})
	tbl.Install("a", 1, 0)
	if exp := tbl.ExpiredKeys(1 << 60); exp != nil {
		t.Fatalf("expired = %v with aging disabled", exp)
	}
}

func TestSRAMBudgetEnforced(t *testing.T) {
	// 32k entries of 247-bit keys fit the default budget...
	big := &tableProg{spec: TableSpec{Name: "bases", KeyBits: 247, ActionBits: 16, Capacity: 1 << 15}}
	if _, err := Load(Config{}, big); err != nil {
		t.Fatalf("paper-sized table rejected: %v", err)
	}
	// ...but the next byte-aligned identifier width (23 bits → 8M
	// entries) does not: the resource-model justification for t=15.
	huge := &tableProg{spec: TableSpec{Name: "bases", KeyBits: 247, ActionBits: 24, Capacity: 1 << 23}}
	if _, err := Load(Config{}, huge); err == nil {
		t.Fatal("8M-entry table fit the SRAM budget")
	} else if !strings.Contains(err.Error(), "SRAM") {
		t.Fatalf("unexpected error: %v", err)
	}
}

type tableProg struct {
	spec TableSpec
	h    TableHandle
}

func (p *tableProg) Name() string { return "tableProg" }
func (p *tableProg) Declare(a *Alloc) error {
	var err error
	p.h, err = a.Table(p.spec)
	return err
}
func (p *tableProg) Process(ctx *Ctx, frame []byte, ingress Port, out []Emit) []Emit { return out }

func TestDoubleApplyPanics(t *testing.T) {
	prog := &echoProg{applyTwice: true}
	p := load(t, prog)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "applied twice") {
			t.Fatalf("recover = %v", r)
		}
	}()
	p.Process(0, []byte{1, 2, 3, 4}, 0)
}

func TestInvalidEmitPortPanics(t *testing.T) {
	p := load(t, &badPortProg{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Process(0, []byte{1}, 0)
}

type badPortProg struct{}

func (badPortProg) Name() string           { return "badport" }
func (badPortProg) Declare(a *Alloc) error { return nil }
func (badPortProg) Process(ctx *Ctx, frame []byte, ingress Port, out []Emit) []Emit {
	return append(out, Emit{Port: 99, Frame: frame})
}

func TestDeclareValidation(t *testing.T) {
	cases := []TableSpec{
		{Name: "", KeyBits: 8, Capacity: 1},
		{Name: "x", KeyBits: 0, Capacity: 1},
		{Name: "x", KeyBits: 8, Capacity: 0},
		{Name: "x", KeyBits: 8, Capacity: 1, ActionBits: -1},
		{Name: "x", KeyBits: 8, Capacity: 1, IdleTimeoutNs: -5},
	}
	for i, spec := range cases {
		if _, err := Load(Config{}, &tableProg{spec: spec}); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	// Duplicate declarations.
	if _, err := Load(Config{}, &dupProg{}); err == nil {
		t.Error("duplicate table accepted")
	}
}

type dupProg struct{}

func (dupProg) Name() string { return "dup" }
func (dupProg) Declare(a *Alloc) error {
	if _, err := a.Table(TableSpec{Name: "t", KeyBits: 8, Capacity: 1}); err != nil {
		return err
	}
	_, err := a.Table(TableSpec{Name: "t", KeyBits: 8, Capacity: 1})
	return err
}
func (dupProg) Process(ctx *Ctx, frame []byte, ingress Port, out []Emit) []Emit { return out }

func TestRegisterStatePersists(t *testing.T) {
	prog := &echoProg{}
	p := load(t, prog)
	for i := 0; i < 5; i++ {
		p.Process(int64(i), []byte{0, 0, 0, 0}, 0)
	}
	// Register cell 0 should have counted the packets.
	ctx := Ctx{p: p, now: 99}
	if got := ctx.ReadReg(prog.reg, 0); got != 5 {
		t.Fatalf("register = %d, want 5", got)
	}
}

func TestPipelineAccessors(t *testing.T) {
	prog := &echoProg{}
	p := load(t, prog)
	if p.Config().Ports != DefaultPorts {
		t.Fatalf("Config = %+v", p.Config())
	}
	if p.SRAMBits() <= 0 {
		t.Fatal("SRAM accounting missing")
	}
	p.Process(0, []byte{1, 2, 3, 4}, 0)
	all := p.Counters()
	if all["misses"] != 1 {
		t.Fatalf("Counters() = %v", all)
	}
	// Counters() returns a copy.
	all["misses"] = 99
	if p.Counter("misses") != 1 {
		t.Fatal("Counters() aliases internal state")
	}
	tbl, _ := p.Table("map")
	if tbl.Name() != "map" || tbl.Capacity() != 4 {
		t.Fatalf("table accessors: %s/%d", tbl.Name(), tbl.Capacity())
	}
	if _, ok := tbl.Get("nope"); ok {
		t.Fatal("Get hit on missing key")
	}
	if _, _, ok := tbl.LeastRecentlyHit(); ok {
		t.Fatal("LRU hit on empty table")
	}
	tbl.Install("aaaa", 1, 10)
	tbl.Install("bbbb", 2, 20)
	if k, at, ok := tbl.LeastRecentlyHit(); !ok || k != "aaaa" || at != 10 {
		t.Fatalf("LRU = %q@%d,%v", k, at, ok)
	}
	if _, ok := tbl.IdleTime("nope", 30); ok {
		t.Fatal("IdleTime hit on missing key")
	}
}

func TestCtxNowAndUndeclaredPanics(t *testing.T) {
	prog := &echoProg{}
	p := load(t, prog)
	ctx := Ctx{p: p, now: 77}
	if ctx.Now() != 77 {
		t.Fatal("Now broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("undeclared counter accepted")
			}
		}()
		ctx.Count(CounterHandle{name: "ghost"}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("undeclared table accepted")
			}
		}()
		(&Ctx{p: p}).Apply(TableHandle{name: "ghost"}, "k")
	}()
}

func TestRegisterValidation(t *testing.T) {
	if _, err := Load(Config{}, &badRegProg{size: 0}); err == nil {
		t.Error("zero-size register accepted")
	}
	if _, err := Load(Config{}, &badRegProg{size: 4, dup: true}); err == nil {
		t.Error("duplicate register accepted")
	}
	if _, err := Load(Config{Ports: -1}, &echoProg{}); err == nil {
		t.Error("negative port count accepted")
	}
}

type badRegProg struct {
	size int
	dup  bool
}

func (p *badRegProg) Name() string { return "badreg" }
func (p *badRegProg) Declare(a *Alloc) error {
	if _, err := a.Register("r", p.size); err != nil {
		return err
	}
	if p.dup {
		if _, err := a.Register("r", p.size); err != nil {
			return err
		}
	}
	return nil
}
func (p *badRegProg) Process(ctx *Ctx, frame []byte, ingress Port, out []Emit) []Emit { return out }
