package hamming

import (
	"math/rand"
	"testing"

	"zipline/internal/bitvec"
)

func TestTable1AllConstructible(t *testing.T) {
	// Every polynomial printed in paper Table 1 must be primitive
	// and yield a working code.
	for _, s := range Table1 {
		c, err := New(s.M, s.Param)
		if err != nil {
			t.Errorf("Table 1 row m=%d poly=%s: %v", s.M, s.Poly, err)
			continue
		}
		if c.N() != s.N() || c.K() != s.K() {
			t.Errorf("m=%d: (n,k)=(%d,%d), want (%d,%d)", s.M, c.N(), c.K(), s.N(), s.K())
		}
	}
}

func TestTable1PaperParamMismatch(t *testing.T) {
	// Documented deviation: the printed CRC parameters for the two
	// (511, 502) rows are not primitive — they cannot realise a
	// Hamming code. All other rows' printed parameters match the
	// printed polynomials.
	for _, s := range Table1 {
		if s.Param == s.PaperParam {
			continue
		}
		if s.M != 9 {
			t.Errorf("unexpected param mismatch at m=%d", s.M)
		}
		if _, err := New(s.M, s.PaperParam); err == nil {
			t.Errorf("paper-printed param %#x for m=9 unexpectedly primitive", s.PaperParam)
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(2, 0x3); err == nil {
		t.Error("m=2 accepted")
	}
	if _, err := New(16, 0x3); err == nil {
		t.Error("m=16 accepted")
	}
	// x^4+x^3+x^2+x+1 divides x^5-1: period 5, not primitive.
	if _, err := New(4, 0xF); err == nil {
		t.Error("non-primitive generator accepted")
	}
}

func TestPaperTable2Syndromes(t *testing.T) {
	// Table 2a: Hamming(7,4) syndromes for each single-bit error.
	// "Error i" in the paper is the set bit of the printed sequence,
	// i.e. polynomial degree i, at wire position n-1-i.
	c := MustByM(3)
	want := []uint32{0b001, 0b010, 0b100, 0b011, 0b110, 0b111, 0b101}
	for deg, s := range want {
		pos := c.n - 1 - deg
		if got := c.SyndromeOfPosition(pos); got != s {
			t.Errorf("error %d: syndrome %03b, want %03b", deg, got, s)
		}
		if got := c.ErrorPosition(s); got != pos {
			t.Errorf("syndrome %03b: position %d, want %d", s, got, pos)
		}
		// And end-to-end: the syndrome of the actual one-bit word.
		v := bitvec.New(7)
		v.Set(pos, true)
		if got := c.SyndromeVector(v); got != s {
			t.Errorf("word with bit %d: syndrome %03b, want %03b", pos, got, s)
		}
	}
	if c.ErrorPosition(0) != -1 {
		t.Error("syndrome 0 should map to no error")
	}
}

func TestEncodeProducesCodewords(t *testing.T) {
	for _, m := range []int{3, 4, 5, 8} {
		c := MustByM(m)
		rng := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 50; trial++ {
			msg := randomVector(rng, c.K())
			cw := c.Encode(msg)
			if cw.Len() != c.N() {
				t.Fatalf("m=%d: codeword length %d != %d", m, cw.Len(), c.N())
			}
			if !c.IsCodeword(cw) {
				t.Fatalf("m=%d trial %d: Encode output not a codeword (syndrome %x)", m, trial, c.SyndromeVector(cw))
			}
			// Systematic: message embedded at positions m..n-1.
			if !cw.Slice(c.M(), c.K()).Equal(msg) {
				t.Fatalf("m=%d: message not embedded systematically", m)
			}
		}
	}
}

func TestDecodeCorrectsSingleErrors(t *testing.T) {
	c := MustByM(4) // Hamming(15,11)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		msg := randomVector(rng, c.K())
		cw := c.Encode(msg)
		pos := rng.Intn(c.N())
		recv := cw.Clone()
		recv.Flip(pos)
		got, fixed := c.Decode(recv)
		if fixed != pos {
			t.Fatalf("trial %d: corrected position %d, want %d", trial, fixed, pos)
		}
		if !got.Equal(msg) {
			t.Fatalf("trial %d: decoded %s, want %s", trial, got, msg)
		}
		// Input must not be mutated.
		if cwAgain := cw.Clone(); !cwAgain.Equal(cw) {
			t.Fatal("input mutated")
		}
	}
}

func TestDecodeCleanWord(t *testing.T) {
	c := MustByM(3)
	msg := bitvec.MustParse("1010")
	cw := c.Encode(msg)
	got, fixed := c.Decode(cw)
	if fixed != -1 {
		t.Fatalf("clean word reported error at %d", fixed)
	}
	if !got.Equal(msg) {
		t.Fatalf("decoded %s, want %s", got, msg)
	}
}

func TestPerfectCodeTiling(t *testing.T) {
	// Hamming codes are perfect: every n-bit word is within distance
	// one of exactly one codeword. Exhaustive for (7,4).
	c := MustByM(3)
	seen := make(map[string]int)
	for w := 0; w < 128; w++ {
		v := bitvec.FromUint(uint64(w), 7)
		s := c.SyndromeVector(v)
		pos := c.ErrorPosition(s)
		cw := v.Clone()
		if pos >= 0 {
			cw.Flip(pos)
		}
		if !c.IsCodeword(cw) {
			t.Fatalf("word %07b: nearest word %s is not a codeword", w, cw)
		}
		seen[cw.Key()]++
	}
	if len(seen) != 16 {
		t.Fatalf("reached %d codewords, want 16", len(seen))
	}
	for k, cnt := range seen {
		if cnt != 8 {
			t.Fatalf("codeword %q covers %d words, want 8 (ball of radius 1)", k, cnt)
		}
	}
}

func TestParityMatchesEncode(t *testing.T) {
	// Figure 2's trick: parity = CRC(basis · x^m). Cross-check
	// against brute-force search over all 2^m parity candidates.
	c := MustByM(4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		msg := randomVector(rng, c.K())
		p := c.Parity(msg)
		found := -1
		for cand := 0; cand < 1<<uint(c.M()); cand++ {
			w := bitvec.NewWriter(2)
			w.WriteUint(uint64(cand), c.M())
			w.WriteVector(msg)
			if c.Syndrome(w.Bytes()) == 0 {
				found = cand
				break
			}
		}
		if found != int(p) {
			t.Fatalf("trial %d: Parity=%x, brute force=%x", trial, p, found)
		}
	}
}

func TestParityBytesMatchesParity(t *testing.T) {
	c := MustByM(8)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		msg := randomVector(rng, c.K())
		if got, want := c.ParityBytes(msg.Bytes()), c.Parity(msg); got != want {
			t.Fatalf("ParityBytes %x != Parity %x", got, want)
		}
	}
}

// TestParityBytesTableAllM pins the per-byte parity tables against the
// LFSR reference for every code size — including the m < padding codes
// (e.g. m=4, k=11) whose last-byte table takes the inverse-shift
// branch — and checks tail padding bits are ignored.
func TestParityBytesTableAllM(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for m := MinM; m <= MaxM; m++ {
		c := MustByM(m)
		nb := (c.K() + 7) / 8
		for trial := 0; trial < 10; trial++ {
			buf := make([]byte, nb)
			rng.Read(buf)
			if pad := 8*nb - c.K(); pad > 0 {
				buf[nb-1] &= 0xFF << uint(pad)
			}
			want := c.eng.ShiftN(c.eng.Remainder(buf, c.K()), m)
			if got := c.ParityBytes(buf); got != want {
				t.Fatalf("m=%d trial %d: table parity %#x != reference %#x", m, trial, got, want)
			}
			// Dirty padding bits must not change the parity.
			dirty := append([]byte(nil), buf...)
			dirty[nb-1] |= byte(1<<uint(8*nb-c.K()) - 1)
			if got := c.ParityBytes(dirty); got != want {
				t.Fatalf("m=%d trial %d: padding bits leaked into parity", m, trial)
			}
		}
	}
}

func TestSyndromePositionRoundTripAllM(t *testing.T) {
	for m := MinM; m <= MaxM; m++ {
		c := MustByM(m)
		// Probe a spread of positions rather than all 32k for m=15.
		step := c.N()/64 + 1
		for pos := 0; pos < c.N(); pos += step {
			s := c.SyndromeOfPosition(pos)
			if got := c.ErrorPosition(s); got != pos {
				t.Fatalf("m=%d pos=%d: round trip gave %d", m, pos, got)
			}
		}
	}
}

func TestGHOrthogonality(t *testing.T) {
	// G_s · Hᵀ = 0: every generator row (codeword) has zero
	// syndrome; and all single-bit syndromes are distinct — the two
	// defining properties of the construction.
	c := MustByM(5)
	for i := 0; i < c.K(); i++ {
		e := bitvec.New(c.K())
		e.Set(i, true)
		if !c.IsCodeword(c.Encode(e)) {
			t.Fatalf("generator row %d not orthogonal to H", i)
		}
	}
	seen := make(map[uint32]bool)
	for pos := 0; pos < c.N(); pos++ {
		s := c.SyndromeOfPosition(pos)
		if s == 0 || seen[s] {
			t.Fatalf("column %d of H repeats or is zero", pos)
		}
		seen[s] = true
	}
}

func TestByMUnknown(t *testing.T) {
	if _, err := ByM(16); err == nil {
		t.Error("ByM(16) should fail")
	}
	if _, err := SpecByM(2); err == nil {
		t.Error("SpecByM(2) should fail")
	}
}

func randomVector(rng *rand.Rand, n int) *bitvec.Vector {
	data := make([]byte, (n+7)/8)
	rng.Read(data)
	return bitvec.FromBytes(data, n)
}

func BenchmarkSyndrome255(b *testing.B) {
	c := MustByM(8)
	data := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Syndrome(data)
	}
}

func BenchmarkParity247(b *testing.B) {
	c := MustByM(8)
	data := make([]byte, 31)
	rand.New(rand.NewSource(1)).Read(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ParityBytes(data)
	}
}
