// Package hamming implements the binary Hamming codes that drive
// ZipLine's generalized-deduplication transform.
//
// A Hamming code with m parity bits has n = 2^m − 1 total bits and
// k = n − m message bits. ZipLine uses the cyclic construction: the
// code is the set of multiples of a primitive degree-m generator
// polynomial g(x), so the syndrome of a word B is simply
// B(x) mod g(x) — a width-m CRC with g as the polynomial (paper §2).
// Because the code is perfect (Hamming balls of radius one tile the
// whole space), *every* n-bit word is at distance ≤ 1 from exactly
// one codeword; GD therefore maps any chunk to exactly one basis.
//
// Wire-order convention: bit position 0 of a word is the first bit on
// the wire and the coefficient of x^{n−1}; position n−1 is the
// coefficient of x^0. A systematic codeword carries the m parity bits
// first (positions 0..m−1) followed by the k message bits — the
// G_s = [P I_k] form the paper adopts because "it matches the output
// of CRC functions".
package hamming
