// Package stats provides the summary statistics the paper's
// methodology uses: "each measurement is repeated 10 times, and we
// show the average and the 95 % confidence interval" (§7): mean,
// sample standard deviation, Student-t confidence intervals and
// percentiles over small samples. Pure functions of their input
// slices — no global state — so experiment reports stay
// deterministic.
package stats
