package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStddev(t *testing.T) {
	s := New(2, 4, 4, 4, 5, 5, 7, 9)
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(s.Stddev(), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev = %v", s.Stddev())
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	e := New()
	if e.Mean() != 0 || e.Stddev() != 0 || e.CI95() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Fatal("empty sample not all-zero")
	}
	one := New(42)
	if one.Mean() != 42 || one.Stddev() != 0 || one.CI95() != 0 {
		t.Fatal("single sample broken")
	}
	if one.Percentile(50) != 42 {
		t.Fatal("percentile of single")
	}
}

func TestMinMaxPercentile(t *testing.T) {
	s := New(10, 20, 30, 40, 50)
	if s.Min() != 10 || s.Max() != 50 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Percentile(0), 10, 1e-12) || !almost(s.Percentile(100), 50, 1e-12) {
		t.Fatal("extreme percentiles")
	}
	if !almost(s.Percentile(50), 30, 1e-12) {
		t.Fatalf("median = %v", s.Percentile(50))
	}
	if !almost(s.Percentile(25), 20, 1e-12) {
		t.Fatalf("p25 = %v", s.Percentile(25))
	}
	// Interpolated.
	if !almost(s.Percentile(10), 14, 1e-12) {
		t.Fatalf("p10 = %v", s.Percentile(10))
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=10 (df=9): t = 2.262. For stddev σ and n=10,
	// CI = 2.262 σ / sqrt(10).
	s := New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	want := 2.262 * s.Stddev() / math.Sqrt(10)
	if !almost(s.CI95(), want, 1e-9) {
		t.Fatalf("ci = %v, want %v", s.CI95(), want)
	}
}

func TestTValueMonotone(t *testing.T) {
	// The critical value decreases with df toward the normal 1.96.
	prev := math.Inf(1)
	for _, df := range []int{1, 2, 3, 5, 9, 20, 40, 60, 100, 1000} {
		v := tValue95(df)
		if v > prev {
			t.Fatalf("t(%d) = %v rose above %v", df, v, prev)
		}
		prev = v
	}
	if tValue95(10000) != 1.960 {
		t.Fatalf("asymptote = %v", tValue95(10000))
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		finite := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				finite = append(finite, x)
			}
		}
		if len(finite) == 0 {
			return true
		}
		s := New(finite...)
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	s := New(1, 2, 3)
	if got := s.String(); got == "" {
		t.Fatal("empty string")
	}
}
