package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a set of repeated measurements.
type Sample struct {
	xs []float64
}

// New builds a sample from values.
func New(xs ...float64) *Sample {
	s := &Sample{}
	s.Add(xs...)
	return s
}

// Add appends measurements.
func (s *Sample) Add(xs ...float64) { s.xs = append(s.xs, xs...) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the measurements in insertion order, for
// merging samples.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the sample standard deviation (n−1 denominator).
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest measurement.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest measurement.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if n == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// CI95 returns the half-width of the 95 % confidence interval of the
// mean, using Student's t distribution (two-sided, matching the
// paper's error bars).
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tValue95(n-1) * s.Stddev() / math.Sqrt(float64(n))
}

// String renders "mean ± ci95".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// tValue95 returns the two-sided 95 % critical value of Student's t
// for the given degrees of freedom.
func tValue95(df int) float64 {
	// Exact table for small df (the regime the paper's 10 repeats
	// live in), asymptote beyond.
	table := []float64{
		0:  0, // unused
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
		25: 2.060,
		30: 2.042,
		40: 2.021,
		60: 2.000,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) && table[df] != 0 {
		return table[df]
	}
	// Nearest smaller tabulated df, else the normal limit.
	best := 1.960
	for d, v := range table {
		if v != 0 && d <= df && d > 0 {
			best = v
			if d == df {
				break
			}
		}
	}
	if df > 60 {
		best = 1.960
	}
	return best
}
