package controlplane

import (
	"math/rand"
	"testing"

	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/zswitch"
)

// armedConfig returns a fault-armed Config with the given control
// channel loss probability.
func armedConfig(seed int64, loss float64) Config {
	return Config{
		Faults:          netsim.NewFaults(seed),
		ControlLossProb: loss,
	}
}

// TestArmedZeroLossStillLearns: arming the fault model with a
// lossless control channel must leave learning intact — the reliable
// protocol is a superset, not a different behavior.
func TestArmedZeroLossStillLearns(t *testing.T) {
	tb := newTestbed(t, zswitch.Config{}, armedConfig(1, 0))
	payload := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(payload)
	tb.a.Stream(0, 20*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payload) })
	tb.sim.Run()

	st := tb.ctl.Stats()
	if st.Learned != 1 {
		t.Fatalf("learned = %d, want 1 (stats %+v)", st.Learned, st)
	}
	if st.Retransmits != 0 || st.Abandoned != 0 {
		t.Fatalf("lossless channel retransmitted: %+v", st)
	}
	if rx := tb.b.Rx(); rx.TypeFrames[packet.TypeCompressed] == 0 {
		t.Fatal("no compressed frames after learning")
	}
}

// TestLossyChannelRetransmitsAndLearns: with a 30% lossy control
// channel the digests and writes must retry until the mapping lands.
func TestLossyChannelRetransmitsAndLearns(t *testing.T) {
	tb := newTestbed(t, zswitch.Config{}, armedConfig(2, 0.3))
	payload := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(payload)
	tb.a.Stream(0, 40*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payload) })
	tb.sim.Run()

	st := tb.ctl.Stats()
	if st.Learned != 1 {
		t.Fatalf("learned = %d, want 1 (stats %+v)", st.Learned, st)
	}
	if st.Retransmits == 0 {
		t.Fatal("30% loss produced no retransmits")
	}
	if tb.cfgFaults().MsgsLost == 0 {
		t.Fatal("fault injector recorded no losses")
	}
	if rx := tb.b.Rx(); rx.TypeFrames[packet.TypeCompressed] == 0 {
		t.Fatal("mapping never became usable")
	}
	if len(tb.ctl.inflight) != 0 {
		t.Fatalf("inflight not drained: %d entries", len(tb.ctl.inflight))
	}
}

// TestInflightReapedOnAbandonment pins the map-hygiene contract: an
// install chain abandoned by the retry cap must delete its inflight
// entry (so a later digest can re-learn the basis) rather than pin it
// forever.
func TestInflightReapedOnAbandonment(t *testing.T) {
	cfg := armedConfig(3, 0.8)
	cfg.MaxRetries = 1
	tb := newTestbed(t, zswitch.Config{}, cfg)
	// Several distinct bases so multiple chains start; at 80% loss
	// with one retry most of them abandon mid-chain.
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = make([]byte, 32)
		rand.New(rand.NewSource(int64(i + 10))).Read(payloads[i])
	}
	tb.a.Stream(0, 30*netsim.Millisecond, func(i uint64) []byte {
		return rawFrame(payloads[i%uint64(len(payloads))])
	})
	tb.sim.Run()

	st := tb.ctl.Stats()
	if st.Abandoned == 0 {
		t.Fatalf("80%% loss with MaxRetries=1 abandoned nothing: %+v", st)
	}
	if len(tb.ctl.inflight) != 0 {
		t.Fatalf("abandoned chains pinned %d inflight entries", len(tb.ctl.inflight))
	}
	// Identifiers from chains that died before any encoder write must
	// be back in the pool: the free list plus live and mid-flight
	// mappings can never exceed the pool, and abandonment must not
	// leak the whole pool away.
	if len(tb.ctl.free) == 0 {
		t.Fatal("identifier pool drained by abandonment")
	}
}

// TestStaleEpochDigestDiscarded: a digest stamped with an epoch other
// than the emitting switch's current one (emitted before a crash,
// delivered after) is dropped, not learned.
func TestStaleEpochDigestDiscarded(t *testing.T) {
	tb := newTestbed(t, zswitch.Config{}, armedConfig(4, 0))
	pl := tb.sw.Pipeline()

	basisBytes := (tb.ctl.basisBits + 7) / 8
	data := make([]byte, basisBytes+4)
	data[basisBytes+3] = 9 // epoch 9; the switch is on epoch 0
	tb.ctl.handleDigestFrom(pl, data, 0)

	st := tb.ctl.Stats()
	if st.StaleDigests != 1 {
		t.Fatalf("StaleDigests = %d, want 1", st.StaleDigests)
	}
	if len(tb.ctl.inflight) != 0 || tb.ctl.Mappings() != 0 {
		t.Fatal("stale digest started an install")
	}

	// The same bytes with the correct (zero) epoch are accepted.
	tb.ctl.handleDigestFrom(pl, data[:basisBytes+4-4], 0)
	if len(tb.ctl.inflight) != 1 {
		t.Fatalf("current-epoch digest not accepted: inflight=%d", len(tb.ctl.inflight))
	}
}

// cfgFaults exposes the testbed's injector for assertions.
func (tb *testbed) cfgFaults() *netsim.Faults {
	return tb.ctl.cfg.Faults
}
