package controlplane

import (
	"math/rand"
	"testing"

	"zipline/internal/netsim"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// loadPipeline builds an encode- or decode-role pipeline for direct
// (linkless) controller tests.
func loadPipeline(t *testing.T, role zswitch.Role) (*zswitch.Program, *tofino.Pipeline) {
	t.Helper()
	prog, err := zswitch.New(zswitch.Config{
		Roles:   map[tofino.Port]zswitch.Role{0: role},
		PortMap: map[tofino.Port]tofino.Port{0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tofino.Load(tofino.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, pl
}

// TestMultiSwitchInstallOrder: with two encoders and two decoders,
// one digest must install the mapping in every decoder before any
// encoder, and end with all four pipelines programmed.
func TestMultiSwitchInstallOrder(t *testing.T) {
	sim := netsim.NewSim(3)
	prog, enc1 := loadPipeline(t, zswitch.RoleEncode)
	_, enc2 := loadPipeline(t, zswitch.RoleEncode)
	_, dec1 := loadPipeline(t, zswitch.RoleDecode)
	_, dec2 := loadPipeline(t, zswitch.RoleDecode)

	ctl, err := NewMulti(sim, Config{},
		[]*tofino.Pipeline{enc1, enc2}, []*tofino.Pipeline{dec1, dec2},
		prog.Codec().BasisBits())
	if err != nil {
		t.Fatal(err)
	}

	chunk := make([]byte, prog.Codec().ChunkBytes())
	chunk[0] = 0x5A
	s, err := prog.Codec().SplitChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	sim.At(0, func() { ctl.HandleDigestNow(s.Basis) })

	// Invariant checked at every event boundary: an encoder never
	// knows a basis whose ID any decoder cannot resolve.
	check := func() {
		for _, enc := range []*tofino.Pipeline{enc1, enc2} {
			encTbl, _ := enc.Table(zswitch.TableBasisToID)
			if _, hit := encTbl.Get(s.Basis.Key()); !hit {
				continue
			}
			for _, dec := range []*tofino.Pipeline{dec1, dec2} {
				decTbl, _ := dec.Table(zswitch.TableIDToBasis)
				if decTbl.Len() == 0 {
					t.Fatal("encoder mapping live before decoder install")
				}
			}
		}
	}
	for sim.Pending() > 0 {
		sim.RunUntil(sim.Now() + 10*netsim.Microsecond)
		check()
	}

	if ctl.Stats().Learned != 1 {
		t.Fatalf("learned = %d", ctl.Stats().Learned)
	}
	for i, pl := range []*tofino.Pipeline{enc1, enc2} {
		tbl, _ := pl.Table(zswitch.TableBasisToID)
		if tbl.Len() != 1 {
			t.Fatalf("encoder %d has %d mappings, want 1", i, tbl.Len())
		}
	}
	for i, pl := range []*tofino.Pipeline{dec1, dec2} {
		tbl, _ := pl.Table(zswitch.TableIDToBasis)
		if tbl.Len() != 1 {
			t.Fatalf("decoder %d has %d mappings, want 1", i, tbl.Len())
		}
	}
}

// TestLearningDelaySample: the controller's per-basis delay sample
// must model the paper's ≈1.77 ms when digests arrive through a
// bound switch.
func TestLearningDelaySample(t *testing.T) {
	tb := newTestbed(t, zswitch.Config{}, Config{})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		payload := make([]byte, 32)
		rng.Read(payload)
		frame := rawFrame(payload)
		tb.sim.At(netsim.Time(i)*netsim.Microsecond, func() { tb.a.Send(frame) })
	}
	tb.sim.Run()

	d := tb.ctl.LearningDelayMs()
	if d.N() != 8 {
		t.Fatalf("delay sample n = %d, want 8", d.N())
	}
	if m := d.Mean(); m < 1.6 || m > 1.95 {
		t.Fatalf("mean learning delay = %.3f ms, want ≈1.77", m)
	}
	if tb.ctl.Stats().DigestBytes == 0 {
		t.Fatal("digest byte volume not counted")
	}
}
