package controlplane

import (
	"fmt"
	"sort"

	"zipline/internal/bitvec"
	"zipline/internal/netsim"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// This file is the fault-era control plane: a reliable control
// channel (acks, deterministic timeout + capped exponential backoff
// retransmit, capped retries with abandonment) and the restart
// reconciliation protocol built on it. None of it runs — and none of
// its random draws or events happen — unless Config.Faults is set, so
// the fault-free schedule stays byte-identical to the pre-fault
// engine.
//
// The safety argument for the zero-stranded-packets guarantee:
//
//   - A crash clears a switch's tables and bumps its epoch instantly;
//     its ports stay down through the reboot, so in-flight compressed
//     frames die as crash loss, never as decode misses.
//   - A restarted decoder's ports stay down until every encoder has
//     acknowledged quarantine (bypass on + dictionary cleared) plus a
//     drain margin longer than any dataplane flight time. From that
//     point no encoder can emit a compressed frame.
//   - Install chains are tagged with the controller generation (gen),
//     bumped on every decoder restart. A write from a stale chain is
//     discarded at delivery, closing the race where a pre-crash
//     encoder install lands after the quarantine wipe.
//   - Encoder mappings come back only after the restarted decoder has
//     acknowledged its full ID→basis reinstall — decoders-first,
//     network-wide, across any fault schedule.

// retryForever marks correctness-critical messages (restart
// notifications, quarantine and reinstall writes) that retransmit
// without cap.
const retryForever = -1

// drainMarginNs is how long reconciliation waits after the last
// quarantine ack before re-enabling a restarted decoder's ports:
// longer than any link+pipeline flight time, so compressed frames
// emitted before the quarantine landed have drained.
const drainMarginNs = 100 * netsim.Microsecond

// relMsg is one reliable control message. apply runs exactly once, at
// the first successful delivery; resolve runs exactly once, with true
// after an acknowledged delivery or false on abandonment.
type relMsg struct {
	// target is the switch whose liveness gates delivery; nil for
	// messages terminating at the (always-up) controller.
	target  *netsim.Switch
	latency netsim.Time
	// maxRetries caps retransmissions (retryForever = none).
	maxRetries int
	attempt    int
	applied    bool
	apply      func()
	resolve    func(acked bool)
}

// send attempts one delivery of m, drawing the in-flight and ack loss
// decisions from the fault injector.
func (c *Controller) send(m *relMsg) {
	if c.cfg.Faults.Drop(c.cfg.ControlLossProb) {
		c.timeout(m) // lost in flight; the sender times out
		return
	}
	c.sim.AfterLane(c.lane, c.sim.Jitter(m.latency, c.cfg.JitterFrac), func() {
		if m.target != nil && m.target.Down() {
			c.timeout(m) // delivered into a dead switch: no ack
			return
		}
		if !m.applied {
			m.applied = true
			m.apply()
		}
		if c.cfg.Faults.Drop(c.cfg.ControlLossProb) {
			c.timeout(m) // applied, but the ack was lost
			return
		}
		if m.resolve != nil {
			m.resolve(true)
		}
	})
}

// timeout schedules m's retransmission under the capped exponential
// backoff, or abandons it once the retry cap is exhausted.
func (c *Controller) timeout(m *relMsg) {
	if m.maxRetries >= 0 && m.attempt >= m.maxRetries {
		c.stats.Abandoned++
		if m.resolve != nil {
			m.resolve(false)
		}
		return
	}
	wait := netsim.Backoff(c.cfg.RetransmitTimeoutNs, m.attempt)
	m.attempt++
	c.sim.AfterLane(c.lane, wait, func() {
		c.stats.Retransmits++
		c.send(m)
	})
}

// switchOf returns the simulated switch hosting pl, nil when
// unregistered (delivery then never observes a crash).
func (c *Controller) switchOf(pl *tofino.Pipeline) *netsim.Switch {
	return c.switches[pl]
}

// sendDigest carries one digest over the lossy control channel: the
// switch-side digest agent retransmits on timeout, capped — an
// abandoned digest is re-emitted naturally by the next miss for the
// same basis.
func (c *Controller) sendDigest(src *tofino.Pipeline, data []byte, emitted netsim.Time) {
	c.send(&relMsg{
		latency:    c.cfg.DigestLatencyNs,
		maxRetries: c.cfg.MaxRetries,
		apply:      func() { c.handleDigestFrom(src, data, emitted) },
	})
}

// handleDigestFrom is the armed digest sink: it strips the epoch tag
// and discards digests emitted by an earlier incarnation of the
// switch (drained queues make these rare — only messages already in
// flight at the crash).
func (c *Controller) handleDigestFrom(src *tofino.Pipeline, data []byte, emitted netsim.Time) {
	c.stats.DigestsSeen++
	c.stats.DigestBytes += uint64(len(data))
	basis, epoch := zswitch.SplitDigest(data, (c.basisBits+7)/8)
	if epoch != zswitch.Epoch(src) {
		c.stats.StaleDigests++
		return
	}
	c.acceptDigest(basis, emitted)
}

// armedAllocate is allocateAndInstall for the fault era: same
// identifier policy, but every table touch is a reliable write and
// the chain is tagged with the current generation.
func (c *Controller) armedAllocate(key string, basis *bitvec.Vector) {
	gen := c.gen
	if len(c.free) > 0 {
		id := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.armedInstallDecoders(key, basis, id, gen)
		return
	}
	victimKey := c.pickVictim()
	if victimKey == "" {
		c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			c.armedAllocate(key, basis)
		})
		return
	}
	victim := c.byKey[victimKey]
	c.recycling[victimKey] = true
	// Phase 0: stop every encoder from using the identifier. Eviction
	// must land (a half-evicted identifier could be recycled into a
	// conflicting mapping), so it retries without cap.
	remaining := len(c.encs)
	for _, enc := range c.encs {
		enc := enc
		c.send(&relMsg{
			target:     c.switchOf(enc),
			latency:    c.cfg.WriteLatencyNs,
			maxRetries: retryForever,
			apply:      func() { zswitch.DeleteBasisToID(enc, victim.basis) },
			resolve: func(bool) {
				remaining--
				if remaining > 0 {
					return
				}
				delete(c.byKey, victimKey)
				delete(c.recycling, victimKey)
				c.stats.Recycled++
				c.armedInstallDecoders(key, basis, victim.id, gen)
			},
		})
	}
}

// armedInstallDecoders is phase 1: one reliable write per decoder.
// The chain advances to the encoders only once every decoder has
// acknowledged — the paper's invariant, now ack-enforced.
func (c *Controller) armedInstallDecoders(key string, basis *bitvec.Vector, id uint32, gen uint64) {
	remaining := len(c.decs)
	failed := false
	for _, dec := range c.decs {
		dec := dec
		c.send(&relMsg{
			target:     c.switchOf(dec),
			latency:    c.cfg.WriteLatencyNs,
			maxRetries: c.cfg.MaxRetries,
			apply: func() {
				if c.gen != gen {
					return // stale chain: discard at delivery
				}
				if err := zswitch.InstallIDToBasis(dec, id, basis, c.sim.Now()); err != nil {
					panic(fmt.Sprintf("controlplane: decoder install: %v", err))
				}
			},
			resolve: func(acked bool) {
				if !acked {
					failed = true
				}
				remaining--
				if remaining > 0 {
					return
				}
				if failed || c.gen != gen {
					// Abandoned or staled before any encoder write:
					// no encoder maps the basis, so the identifier is
					// safe to reuse (a future chain overwrites the
					// decoders first). Reap the inflight entry so the
					// next digest re-learns.
					delete(c.inflight, key)
					c.free = append(c.free, id)
					return
				}
				c.armedInstallEncoders(key, basis, id, gen)
			},
		})
	}
}

// armedInstallEncoders is phase 2: the mapping goes live on every
// encoder, then commits to byKey.
func (c *Controller) armedInstallEncoders(key string, basis *bitvec.Vector, id uint32, gen uint64) {
	remaining := len(c.encs)
	failed := false
	for _, enc := range c.encs {
		enc := enc
		c.send(&relMsg{
			target:     c.switchOf(enc),
			latency:    c.cfg.WriteLatencyNs,
			maxRetries: c.cfg.MaxRetries,
			apply: func() {
				if c.gen != gen {
					return // stale chain: discard at delivery
				}
				if err := zswitch.InstallBasisToID(enc, basis, id, c.sim.Now()); err != nil {
					panic(fmt.Sprintf("controlplane: encoder install: %v", err))
				}
			},
			resolve: func(acked bool) {
				if !acked {
					failed = true
				}
				remaining--
				if remaining > 0 {
					return
				}
				if failed || c.gen != gen {
					// Some encoders may hold the mapping; every
					// decoder does (phase 1 completed), so it decodes
					// fine — but it never commits, so the identifier
					// is retired rather than returned to the pool: a
					// reuse would re-point decoder entries while the
					// orphaned encoder entries still compress against
					// the old basis.
					delete(c.inflight, key)
					return
				}
				c.byKey[key] = mapping{id: id, basis: basis}
				if emitted, ok := c.inflight[key]; ok {
					c.delays.Add(float64(c.sim.Now()-emitted) / 1e6)
				}
				delete(c.inflight, key)
				c.stats.Learned++
			},
		})
	}
}

// SwitchRestarted notifies the controller that a managed switch
// crashed at downSince (losing its tables and bumping its epoch) and
// will finish rebooting at upAt. The crash is detected when the BfRt
// session breaks, so reconciliation overlaps the reboot rather than
// waiting for it. enable, when non-nil, is invoked when the switch's
// dataplane may come back up: no earlier than upAt, and for a decoder
// no earlier than quarantine + drain. The notification itself crosses
// the lossy control channel and retries without cap.
func (c *Controller) SwitchRestarted(pl *tofino.Pipeline, downSince, upAt netsim.Time, enable func()) {
	c.send(&relMsg{
		latency:    c.cfg.DigestLatencyNs,
		maxRetries: retryForever,
		apply:      func() { c.resync(pl, downSince, upAt, enable) },
	})
}

// resync reconciles a restarted switch. Encoders-only restarts are
// benign (an empty dictionary just stops compressing) and only need
// their mappings repopulated; a restarted decoder triggers the full
// quarantine protocol.
func (c *Controller) resync(pl *tofino.Pipeline, downSince, upAt netsim.Time, enable func()) {
	c.stats.Resyncs++
	if !c.IsDecoder(pl) {
		if enable != nil {
			enable()
		}
		c.send(&relMsg{
			target:     c.switchOf(pl),
			latency:    c.cfg.WriteLatencyNs,
			maxRetries: retryForever,
			apply:      func() { c.installAllBasisToID(pl) },
			resolve:    func(bool) { c.recordRecovery(downSince) },
		})
		return
	}

	// Any install chain begun before this point could land an encoder
	// mapping the restarted decoder lacks; stale it.
	c.gen++

	// Phase A — quarantine: every *other* encoder goes into bypass
	// with a wiped dictionary (the restarted switch's own encoder
	// side is already empty). Refcounted, so overlapping resyncs keep
	// bypass up until the last one finishes.
	quarantine := make([]*tofino.Pipeline, 0, len(c.encs))
	for _, enc := range c.encs {
		if enc != pl {
			quarantine = append(quarantine, enc)
		}
	}
	remaining := len(quarantine)
	proceed := func() {
		// Ports open at the later of reboot completion and
		// quarantine + drain — when quarantine finishes inside the
		// reboot window (the common case), recovery costs no downtime
		// beyond the reboot itself.
		delay := upAt - c.sim.Now()
		if delay < drainMarginNs {
			delay = drainMarginNs
		}
		c.sim.AfterLane(c.lane, delay, func() {
			if enable != nil {
				enable()
			}
			c.reinstallDecoder(pl, quarantine, downSince)
		})
	}
	if remaining == 0 {
		proceed()
		return
	}
	for _, enc := range quarantine {
		enc := enc
		c.bypassHolds[enc]++
		c.send(&relMsg{
			target:     c.switchOf(enc),
			latency:    c.cfg.WriteLatencyNs,
			maxRetries: retryForever,
			apply: func() {
				if err := zswitch.SetBypass(enc, true); err != nil {
					panic(fmt.Sprintf("controlplane: quarantine: %v", err))
				}
				if t, ok := enc.Table(zswitch.TableBasisToID); ok {
					t.Clear()
				}
			},
			resolve: func(bool) {
				remaining--
				if remaining == 0 {
					proceed()
				}
			},
		})
	}
}

// reinstallDecoder is phases B and C of decoder reconciliation: the
// restarted decoder gets its full ID→basis dictionary back first;
// only after it acknowledges do the quarantined encoders get their
// mappings (and their traffic) back.
func (c *Controller) reinstallDecoder(pl *tofino.Pipeline, quarantined []*tofino.Pipeline, downSince netsim.Time) {
	c.send(&relMsg{
		target:     c.switchOf(pl),
		latency:    c.cfg.WriteLatencyNs,
		maxRetries: retryForever,
		apply:      func() { c.installAllIDToBasis(pl) },
		resolve: func(bool) {
			if len(quarantined) == 0 {
				c.recordRecovery(downSince)
				return
			}
			remaining := len(quarantined)
			for _, enc := range quarantined {
				enc := enc
				c.send(&relMsg{
					target:     c.switchOf(enc),
					latency:    c.cfg.WriteLatencyNs,
					maxRetries: retryForever,
					apply: func() {
						c.installAllBasisToID(enc)
						c.bypassHolds[enc]--
						if c.bypassHolds[enc] == 0 {
							if err := zswitch.SetBypass(enc, false); err != nil {
								panic(fmt.Sprintf("controlplane: bypass release: %v", err))
							}
						}
					},
					resolve: func(bool) {
						remaining--
						if remaining == 0 {
							c.recordRecovery(downSince)
						}
					},
				})
			}
		},
	})
}

// sortedKeys snapshots byKey's keys in deterministic order.
func (c *Controller) sortedKeys() []string {
	keys := make([]string, 0, len(c.byKey))
	for k := range c.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// installAllIDToBasis repopulates a decoder's dictionary from the
// controller's cache — one batched reliable write's worth of entries.
func (c *Controller) installAllIDToBasis(pl *tofino.Pipeline) {
	for _, k := range c.sortedKeys() {
		m := c.byKey[k]
		if err := zswitch.InstallIDToBasis(pl, m.id, m.basis, c.sim.Now()); err != nil {
			panic(fmt.Sprintf("controlplane: decoder reinstall: %v", err))
		}
	}
}

// installAllBasisToID repopulates an encoder's dictionary from the
// controller's cache.
func (c *Controller) installAllBasisToID(pl *tofino.Pipeline) {
	for _, k := range c.sortedKeys() {
		m := c.byKey[k]
		if err := zswitch.InstallBasisToID(pl, m.basis, m.id, c.sim.Now()); err != nil {
			panic(fmt.Sprintf("controlplane: encoder reinstall: %v", err))
		}
	}
}

// recordRecovery folds one completed reconciliation into the stats.
func (c *Controller) recordRecovery(downSince netsim.Time) {
	if r := int64(c.sim.Now() - downSince); r > c.stats.RecoveryNsMax {
		c.stats.RecoveryNsMax = r
	}
}
