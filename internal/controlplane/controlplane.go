// Package controlplane implements ZipLine's controller: the Python/
// BfRt component of the paper (§5, §6) that owns the identifier pool
// and the dictionary tables in the switches.
//
// Responsibilities, mirroring the paper:
//
//   - receive digests reporting bases unknown to an encoder;
//   - pick an identifier: an unused one if available, otherwise
//     recycle the least recently used entry (as observed by the
//     data plane's idle timers);
//   - install the reverse (ID→basis) mapping in the decoder switch
//     FIRST, so compressed packets can always be uncompressed, then
//     the forward (basis→ID) mapping in the encoder switch;
//   - age entries out via TNA-style per-entry TTLs.
//
// Every step pays a modelled latency (digest delivery, decision time,
// one BfRt write per table touched). The defaults sum to the paper's
// measured learning delay: a new basis becomes compressible
// (1.77 ± 0.08) ms after its first appearance. Writes for distinct
// bases proceed concurrently — BfRt batches table programming — so
// learning throughput is not serialised on the write latency, only
// each mapping's visibility is delayed by it.
package controlplane

import (
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/netsim"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// Config models the controller's timing and pool size.
type Config struct {
	// IDBits sizes the identifier pool at 2^IDBits (default 15).
	IDBits int
	// DigestLatencyNs is the data-plane→controller delivery delay,
	// covering hardware digest batching and the BfRt stream channel
	// (default 150 µs).
	DigestLatencyNs netsim.Time
	// DecisionNs is the controller's processing time per new basis
	// (default 20 µs).
	DecisionNs netsim.Time
	// WriteLatencyNs is one BfRt table write (default 800 µs).
	// A fresh mapping takes two writes: decoder first, then encoder.
	WriteLatencyNs netsim.Time
	// JitterFrac adds uniform noise to every latency component
	// (default 0.03).
	JitterFrac float64
	// SweepIntervalNs polls the encoder's idle timers for TTL expiry
	// (0 disables aging sweeps).
	SweepIntervalNs netsim.Time
}

// Defaults chosen so that DigestLatency + Decision + 2×Write =
// 1.77 ms, the paper's measured learning delay.
const (
	DefaultDigestLatencyNs = 150 * netsim.Microsecond
	DefaultDecisionNs      = 20 * netsim.Microsecond
	DefaultWriteLatencyNs  = 800 * netsim.Microsecond
)

func (c Config) withDefaults() Config {
	if c.IDBits == 0 {
		c.IDBits = 15
	}
	if c.DigestLatencyNs == 0 {
		c.DigestLatencyNs = DefaultDigestLatencyNs
	}
	if c.DecisionNs == 0 {
		c.DecisionNs = DefaultDecisionNs
	}
	if c.WriteLatencyNs == 0 {
		c.WriteLatencyNs = DefaultWriteLatencyNs
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.03
	}
	return c
}

// Stats counts controller activity.
type Stats struct {
	// DigestsSeen is every digest delivered, including duplicates.
	DigestsSeen uint64
	// Learned is the number of fresh basis→ID mappings installed.
	Learned uint64
	// Recycled counts identifiers taken from live mappings via LRU.
	Recycled uint64
	// Expired counts mappings removed by TTL sweeps.
	Expired uint64
	// Duplicates counts digests ignored because the basis was
	// already mapped or mid-installation.
	Duplicates uint64
}

// mapping is one live dictionary entry from the controller's view.
type mapping struct {
	id    uint32
	basis *bitvec.Vector
}

// Controller is the simulated control plane bound to one encoder
// pipeline and one decoder pipeline (which may be the same pipeline
// in a unified single-switch deployment).
type Controller struct {
	sim *netsim.Sim
	cfg Config
	enc *tofino.Pipeline
	dec *tofino.Pipeline

	basisBits int

	free      []uint32
	byKey     map[string]mapping // installed encoder mappings
	inflight  map[string]bool    // digest accepted, writes pending
	recycling map[string]bool    // victims with a pending eviction

	stats Stats
}

// New builds a controller for an encoder/decoder pipeline pair.
// basisBits is the dictionary key width (Codec.BasisBits()).
func New(sim *netsim.Sim, cfg Config, enc, dec *tofino.Pipeline, basisBits int) (*Controller, error) {
	cfg = cfg.withDefaults()
	if basisBits <= 0 {
		return nil, fmt.Errorf("controlplane: basisBits %d", basisBits)
	}
	if cfg.IDBits < 1 || cfg.IDBits > 24 {
		return nil, fmt.Errorf("controlplane: IDBits %d out of range", cfg.IDBits)
	}
	c := &Controller{
		sim:       sim,
		cfg:       cfg,
		enc:       enc,
		dec:       dec,
		basisBits: basisBits,
		byKey:     make(map[string]mapping),
		inflight:  make(map[string]bool),
		recycling: make(map[string]bool),
	}
	n := 1 << uint(cfg.IDBits)
	c.free = make([]uint32, 0, n)
	for id := n - 1; id >= 0; id-- {
		c.free = append(c.free, uint32(id))
	}
	if cfg.SweepIntervalNs > 0 {
		sim.After(cfg.SweepIntervalNs, c.sweep)
	}
	return c, nil
}

// Stats returns a snapshot of controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// Mappings reports the number of live basis→ID mappings.
func (c *Controller) Mappings() int { return len(c.byKey) }

// Bind subscribes the controller to a switch's digests, paying the
// digest delivery latency for each.
func (c *Controller) Bind(sw *netsim.Switch) {
	prev := sw.OnDigest
	sw.OnDigest = func(ds []tofino.Digest) {
		if prev != nil {
			prev(ds)
		}
		for _, d := range ds {
			if d.Name != zswitch.DigestNewBasis {
				continue
			}
			data := d.Data
			c.sim.After(c.sim.Jitter(c.cfg.DigestLatencyNs, c.cfg.JitterFrac), func() {
				c.handleDigest(data)
			})
		}
	}
}

// HandleDigestNow injects a digest directly (test and tooling hook);
// the digest latency is NOT applied.
func (c *Controller) HandleDigestNow(basis *bitvec.Vector) {
	c.handleDigest(basis.Bytes())
}

func (c *Controller) handleDigest(data []byte) {
	c.stats.DigestsSeen++
	basis := bitvec.FromBytes(data, c.basisBits)
	key := basis.Key()
	if c.inflight[key] {
		c.stats.Duplicates++
		return
	}
	if _, known := c.byKey[key]; known {
		c.stats.Duplicates++
		return
	}
	c.inflight[key] = true
	c.sim.After(c.sim.Jitter(c.cfg.DecisionNs, c.cfg.JitterFrac), func() {
		c.allocateAndInstall(key, basis)
	})
}

// allocateAndInstall runs the paper's two-phase protocol for one new
// basis. Each table touch costs one write latency; phases chain
// sequentially: (optional evict from encoder) → decoder install →
// encoder install.
func (c *Controller) allocateAndInstall(key string, basis *bitvec.Vector) {
	if len(c.free) > 0 {
		id := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.installDecoderThenEncoder(key, basis, id)
		return
	}
	// Pool exhausted: recycle the least recently used installed
	// mapping, as seen by the data plane's idle timers. Victims with
	// an eviction already in flight are skipped so two learns never
	// recycle the same identifier; if every mapping is mid-flight
	// (a burst larger than the pool), retry after a write interval.
	encTbl, ok := c.enc.Table(zswitch.TableBasisToID)
	if !ok {
		panic("controlplane: encoder pipeline lacks dictionary table")
	}
	victimKey := ""
	victimIdle := int64(-1)
	for k := range c.byKey {
		if c.recycling[k] {
			continue
		}
		idle, live := encTbl.IdleTime(k, c.sim.Now())
		if !live {
			continue
		}
		if idle > victimIdle || (idle == victimIdle && k < victimKey) {
			victimKey, victimIdle = k, idle
		}
	}
	if victimKey == "" {
		c.sim.After(c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			c.allocateAndInstall(key, basis)
		})
		return
	}
	id := c.byKey[victimKey].id
	c.recycling[victimKey] = true
	// Phase 0: stop the encoder from using the identifier.
	c.sim.After(c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
		encTbl.Delete(victimKey)
		delete(c.byKey, victimKey)
		delete(c.recycling, victimKey)
		c.stats.Recycled++
		c.installDecoderThenEncoder(key, basis, id)
	})
}

func (c *Controller) installDecoderThenEncoder(key string, basis *bitvec.Vector, id uint32) {
	// Phase 1: decoder first, so that compressed packets can always
	// be uncompressed (paper §5).
	c.sim.After(c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
		if err := zswitch.InstallIDToBasis(c.dec, id, basis, c.sim.Now()); err != nil {
			panic(fmt.Sprintf("controlplane: decoder install: %v", err))
		}
		// Phase 2: encoder mapping goes live.
		c.sim.After(c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			if err := zswitch.InstallBasisToID(c.enc, basis, id, c.sim.Now()); err != nil {
				panic(fmt.Sprintf("controlplane: encoder install: %v", err))
			}
			c.byKey[key] = mapping{id: id, basis: basis}
			delete(c.inflight, key)
			c.stats.Learned++
		})
	})
}

// sweep ages out mappings whose encoder-side idle timers lapsed.
func (c *Controller) sweep() {
	for _, key := range zswitch.ExpiredBases(c.enc, c.sim.Now()) {
		m, known := c.byKey[key]
		if !known || c.recycling[key] {
			continue
		}
		c.recycling[key] = true
		basis := m.basis
		// One write per table: encoder entry out first, then the
		// decoder entry, then the identifier returns to the pool.
		keyCopy, idCopy := key, m.id
		c.sim.After(c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			zswitch.DeleteBasisToID(c.enc, basis)
			delete(c.byKey, keyCopy)
			delete(c.recycling, keyCopy)
			c.sim.After(c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
				zswitch.DeleteIDToBasis(c.dec, idCopy)
				c.free = append(c.free, idCopy)
				c.stats.Expired++
			})
		})
	}
	c.sim.After(c.cfg.SweepIntervalNs, c.sweep)
}
