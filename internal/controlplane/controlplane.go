package controlplane

import (
	"fmt"
	"sort"

	"zipline/internal/bitvec"
	"zipline/internal/netsim"
	"zipline/internal/stats"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// Config models the controller's timing and pool size.
type Config struct {
	// IDBits sizes the identifier pool at 2^IDBits (default 15).
	IDBits int
	// IDFirst and IDLimit restrict this controller's allocations to
	// the half-open identifier range [IDFirst, IDLimit) within the
	// 2^IDBits pool. Zero IDLimit means the whole pool. Disjoint
	// ranges let several controllers — one per encoder domain — share
	// a network's decoder tables without identifier collisions: this
	// is how dictionary capacity is split across encoding switches in
	// placement experiments.
	IDFirst uint32
	IDLimit uint32
	// DigestLatencyNs is the data-plane→controller delivery delay,
	// covering hardware digest batching and the BfRt stream channel
	// (default 150 µs).
	DigestLatencyNs netsim.Time
	// DecisionNs is the controller's processing time per new basis
	// (default 20 µs).
	DecisionNs netsim.Time
	// WriteLatencyNs is one BfRt table write (default 800 µs).
	// A fresh mapping takes two writes: decoder first, then encoder.
	WriteLatencyNs netsim.Time
	// JitterFrac adds uniform noise to every latency component
	// (default 0.03).
	JitterFrac float64
	// SweepIntervalNs polls the encoder's idle timers for TTL expiry
	// (0 disables aging sweeps).
	SweepIntervalNs netsim.Time

	// Faults, when non-nil, arms the fault model: every control
	// message (digest, table write, ack, restart notification) draws
	// a loss decision from it, and the controller switches from the
	// fire-and-forget install path to the reliable ack/retransmit
	// protocol. Nil keeps the legacy event schedule byte-identical.
	Faults *netsim.Faults
	// ControlLossProb drops control messages i.i.d. per message
	// (armed runs only).
	ControlLossProb float64
	// RetransmitTimeoutNs is the base retransmit timeout; attempt k
	// waits netsim.Backoff(base, k) — deterministic, no jitter
	// (default netsim.DefaultRetransmitTimeoutNs).
	RetransmitTimeoutNs netsim.Time
	// MaxRetries caps retransmissions of digests and install writes
	// (default netsim.DefaultMaxRetries). Resync traffic — restart
	// notifications, quarantine and reinstall writes — retries
	// without cap: the zero-stranded guarantee depends on it landing.
	MaxRetries int
}

// Defaults chosen so that DigestLatency + Decision + 2×Write =
// 1.77 ms, the paper's measured learning delay.
const (
	DefaultDigestLatencyNs = 150 * netsim.Microsecond
	DefaultDecisionNs      = 20 * netsim.Microsecond
	DefaultWriteLatencyNs  = 800 * netsim.Microsecond
)

func (c Config) withDefaults() Config {
	if c.IDBits == 0 {
		c.IDBits = 15
	}
	if c.DigestLatencyNs == 0 {
		c.DigestLatencyNs = DefaultDigestLatencyNs
	}
	if c.DecisionNs == 0 {
		c.DecisionNs = DefaultDecisionNs
	}
	if c.WriteLatencyNs == 0 {
		c.WriteLatencyNs = DefaultWriteLatencyNs
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.03
	}
	if c.Faults != nil {
		if c.RetransmitTimeoutNs == 0 {
			c.RetransmitTimeoutNs = netsim.DefaultRetransmitTimeoutNs
		}
		if c.MaxRetries == 0 {
			c.MaxRetries = netsim.DefaultMaxRetries
		}
	}
	return c
}

// Stats counts controller activity.
type Stats struct {
	// DigestsSeen is every digest delivered, including duplicates.
	DigestsSeen uint64 `json:"digests_seen"`
	// DigestBytes is the payload volume those digests carried — the
	// data-plane→control-plane channel cost a deployment budgets for.
	DigestBytes uint64 `json:"digest_bytes"`
	// Learned is the number of fresh basis→ID mappings installed.
	Learned uint64 `json:"learned"`
	// Recycled counts identifiers taken from live mappings via LRU.
	Recycled uint64 `json:"recycled"`
	// Expired counts mappings removed by TTL sweeps.
	Expired uint64 `json:"expired"`
	// Duplicates counts digests ignored because the basis was
	// already mapped or mid-installation.
	Duplicates uint64 `json:"duplicates"`

	// Fault-era counters, all zero (and omitted from JSON) in
	// fault-free runs.

	// Retransmits counts control messages re-sent after a timeout.
	Retransmits uint64 `json:"retransmits,omitempty"`
	// Abandoned counts control messages dropped after the retry cap;
	// the install they belonged to is reaped from inflight so a later
	// digest can re-learn the basis.
	Abandoned uint64 `json:"abandoned,omitempty"`
	// StaleDigests counts digests discarded because their epoch no
	// longer matched the emitting switch (emitted before a restart,
	// delivered after).
	StaleDigests uint64 `json:"stale_digests,omitempty"`
	// Resyncs counts restart reconciliations run.
	Resyncs uint64 `json:"resyncs,omitempty"`
	// RecoveryNsMax is the slowest crash→reconverged interval
	// observed across restarts.
	RecoveryNsMax int64 `json:"recovery_ns_max,omitempty"`
}

// mapping is one live dictionary entry from the controller's view.
type mapping struct {
	id    uint32
	basis *bitvec.Vector
}

// Controller is the simulated control plane bound to one or more
// encoder pipelines and one or more decoder pipelines (which may be
// the same pipeline in a unified single-switch deployment). All
// encoders share one dictionary keyed by identifier, so a basis
// learned from any encoder becomes compressible on every encoder —
// the multi-switch deployment of §8's network-wide discussion.
type Controller struct {
	sim  *netsim.Sim
	lane netsim.Lane
	cfg  Config
	encs []*tofino.Pipeline
	decs []*tofino.Pipeline

	basisBits int

	free      []uint32
	byKey     map[string]mapping     // installed encoder mappings
	inflight  map[string]netsim.Time // digest accepted (value: first emit time), writes pending
	recycling map[string]bool        // victims with a pending eviction

	// Fault-era state (see reliable.go). switches maps a managed
	// pipeline to its simulated switch so reliable writes can observe
	// crash state at delivery; gen bumps on every decoder restart and
	// stales any install chain begun under an older value;
	// bypassHolds refcounts overlapping resyncs holding an encoder in
	// bypass.
	switches    map[*tofino.Pipeline]*netsim.Switch
	gen         uint64
	bypassHolds map[*tofino.Pipeline]int

	stats  Stats
	delays *stats.Sample // per-basis learning delay, milliseconds

	// digestsBy attributes digests to the pipeline that emitted them,
	// counted at the Bind tap (before delivery latency, so the count
	// is schedule-neutral). Placement strategies read it as the
	// per-switch redundancy signal.
	digestsBy map[*tofino.Pipeline]uint64
}

// New builds a controller for an encoder/decoder pipeline pair.
// basisBits is the dictionary key width (Codec.BasisBits()).
func New(sim *netsim.Sim, cfg Config, enc, dec *tofino.Pipeline, basisBits int) (*Controller, error) {
	return NewMulti(sim, cfg, []*tofino.Pipeline{enc}, []*tofino.Pipeline{dec}, basisBits)
}

// NewMulti builds a controller owning the dictionaries of several
// encoder and decoder pipelines. Each install phase programs every
// pipeline of its tier in one batched BfRt write: all decoders first,
// then all encoders, preserving the paper's invariant that a
// compressed packet can always be uncompressed — now network-wide.
func NewMulti(sim *netsim.Sim, cfg Config, encs, decs []*tofino.Pipeline, basisBits int) (*Controller, error) {
	cfg = cfg.withDefaults()
	if basisBits <= 0 {
		return nil, fmt.Errorf("controlplane: basisBits %d", basisBits)
	}
	if cfg.IDBits < 1 || cfg.IDBits > 24 {
		return nil, fmt.Errorf("controlplane: IDBits %d out of range", cfg.IDBits)
	}
	if len(encs) == 0 || len(decs) == 0 {
		return nil, fmt.Errorf("controlplane: need at least one encoder and one decoder pipeline")
	}
	c := &Controller{
		sim:         sim,
		lane:        sim.NewLane(),
		cfg:         cfg,
		encs:        encs,
		decs:        decs,
		basisBits:   basisBits,
		byKey:       make(map[string]mapping),
		inflight:    make(map[string]netsim.Time),
		recycling:   make(map[string]bool),
		switches:    make(map[*tofino.Pipeline]*netsim.Switch),
		bypassHolds: make(map[*tofino.Pipeline]int),
		delays:      stats.New(),
		digestsBy:   make(map[*tofino.Pipeline]uint64),
	}
	n := 1 << uint(cfg.IDBits)
	first, limit := int(cfg.IDFirst), int(cfg.IDLimit)
	if limit == 0 {
		limit = n
	}
	if first >= limit || limit > n {
		return nil, fmt.Errorf("controlplane: identifier range [%d,%d) invalid for IDBits %d", first, limit, cfg.IDBits)
	}
	c.free = make([]uint32, 0, limit-first)
	for id := limit - 1; id >= first; id-- {
		c.free = append(c.free, uint32(id))
	}
	if cfg.SweepIntervalNs > 0 {
		sim.AfterLane(c.lane, cfg.SweepIntervalNs, c.sweep)
	}
	return c, nil
}

// Stats returns a snapshot of controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// LearningDelayMs is the sample of per-basis learning delays: for
// each learned basis, the time from its first digest leaving the data
// plane to the encoder mapping going live, in milliseconds. With the
// default timing its mean models the paper's (1.77 ± 0.08) ms.
func (c *Controller) LearningDelayMs() *stats.Sample { return c.delays }

// Mappings reports the number of live basis→ID mappings.
func (c *Controller) Mappings() int { return len(c.byKey) }

// DigestsFrom reports how many new-basis digests the given pipeline
// has emitted through this controller's Bind tap — the per-switch
// redundancy signal placement strategies rank on.
func (c *Controller) DigestsFrom(pl *tofino.Pipeline) uint64 { return c.digestsBy[pl] }

// Bind subscribes the controller to a switch's digests, paying the
// digest delivery latency for each. RegisterSwitch is implied: the
// fault machinery learns which switch hosts the pipeline.
func (c *Controller) Bind(sw *netsim.Switch) {
	c.RegisterSwitch(sw)
	pl := sw.Pipeline()
	prev := sw.OnDigest
	sw.OnDigest = func(ds []tofino.Digest) {
		if prev != nil {
			prev(ds)
		}
		for _, d := range ds {
			if d.Name != zswitch.DigestNewBasis {
				continue
			}
			c.digestsBy[pl]++
			data, emitted := d.Data, d.EmittedAt
			if c.armed() {
				c.sendDigest(pl, data, emitted)
				continue
			}
			c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.DigestLatencyNs, c.cfg.JitterFrac), func() {
				c.handleDigest(data, emitted)
			})
		}
	}
}

// RegisterSwitch tells the controller which simulated switch hosts a
// pipeline, so reliable control messages can observe crash state at
// delivery time. Idempotent; schedules nothing.
func (c *Controller) RegisterSwitch(sw *netsim.Switch) {
	c.switches[sw.Pipeline()] = sw
}

// IsDecoder reports whether the controller manages pl as a decoder
// (restart reconciliation must then hold its ports down until the
// encoders are quarantined).
func (c *Controller) IsDecoder(pl *tofino.Pipeline) bool {
	for _, dec := range c.decs {
		if dec == pl {
			return true
		}
	}
	return false
}

// Manages reports whether pl is one of the controller's encoder or
// decoder pipelines.
func (c *Controller) Manages(pl *tofino.Pipeline) bool {
	if c.IsDecoder(pl) {
		return true
	}
	for _, enc := range c.encs {
		if enc == pl {
			return true
		}
	}
	return false
}

// armed reports whether the fault model is active; unarmed
// controllers stay on the legacy fire-and-forget code paths so the
// fault-free event schedule is byte-identical to the pre-fault
// engine.
func (c *Controller) armed() bool { return c.cfg.Faults != nil }

// HandleDigestNow injects a digest directly (test and tooling hook);
// the digest latency is NOT applied.
func (c *Controller) HandleDigestNow(basis *bitvec.Vector) {
	c.handleDigest(basis.Bytes(), c.sim.Now())
}

func (c *Controller) handleDigest(data []byte, emitted netsim.Time) {
	c.stats.DigestsSeen++
	c.stats.DigestBytes += uint64(len(data))
	c.acceptDigest(data, emitted)
}

// acceptDigest dedups a delivered digest and, when fresh, schedules
// the allocation decision. Shared by the legacy and reliable digest
// channels; the armed branch inside the decision callback is the only
// divergence, and it costs no extra event or random draw when
// unarmed.
func (c *Controller) acceptDigest(data []byte, emitted netsim.Time) {
	basis := bitvec.FromBytes(data, c.basisBits)
	key := zswitch.BasisKey(basis)
	if _, pending := c.inflight[key]; pending {
		c.stats.Duplicates++
		return
	}
	if _, known := c.byKey[key]; known {
		c.stats.Duplicates++
		return
	}
	c.inflight[key] = emitted
	c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.DecisionNs, c.cfg.JitterFrac), func() {
		if c.armed() {
			c.armedAllocate(key, basis)
			return
		}
		c.allocateAndInstall(key, basis)
	})
}

// allocateAndInstall runs the paper's two-phase protocol for one new
// basis. Each table touch costs one write latency; phases chain
// sequentially: (optional evict from encoder) → decoder install →
// encoder install.
func (c *Controller) allocateAndInstall(key string, basis *bitvec.Vector) {
	if len(c.free) > 0 {
		id := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.installDecoderThenEncoder(key, basis, id)
		return
	}
	// Pool exhausted: recycle the least recently used installed
	// mapping, as seen by the data plane's idle timers. If every
	// mapping is mid-flight (a burst larger than the pool), retry
	// after a write interval.
	victimKey := c.pickVictim()
	if victimKey == "" {
		c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			c.allocateAndInstall(key, basis)
		})
		return
	}
	id := c.byKey[victimKey].id
	c.recycling[victimKey] = true
	// Phase 0: stop every encoder from using the identifier (one
	// batched write).
	c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
		basisVictim := c.byKey[victimKey].basis
		for _, enc := range c.encs {
			zswitch.DeleteBasisToID(enc, basisVictim)
		}
		delete(c.byKey, victimKey)
		delete(c.recycling, victimKey)
		c.stats.Recycled++
		c.installDecoderThenEncoder(key, basis, id)
	})
}

// pickVictim selects the least recently used installed mapping, as
// seen by the data plane's idle timers. With several encoders an
// entry is as recent as its most recent hit anywhere, so its
// effective idle time is the minimum across encoders. Victims with an
// eviction already in flight are skipped so two learns never recycle
// the same identifier; "" means every candidate is mid-flight.
func (c *Controller) pickVictim() string {
	victimKey := ""
	victimIdle := int64(-1)
	//ziplint:allow determinism min-idle reduction with lexicographic tie-break is iteration-order-insensitive
	for k := range c.byKey {
		if c.recycling[k] {
			continue
		}
		idle, live := c.idleAcrossEncoders(k)
		if !live {
			continue
		}
		if idle > victimIdle || (idle == victimIdle && k < victimKey) {
			victimKey, victimIdle = k, idle
		}
	}
	return victimKey
}

// idleAcrossEncoders reports how long key has been idle on every
// encoder that holds it (minimum idle — one recent hit anywhere keeps
// the entry warm), and whether any encoder holds it at all.
func (c *Controller) idleAcrossEncoders(key string) (int64, bool) {
	minIdle, live := int64(0), false
	for _, enc := range c.encs {
		tbl, ok := enc.Table(zswitch.TableBasisToID)
		if !ok {
			panic("controlplane: encoder pipeline lacks dictionary table")
		}
		idle, present := tbl.IdleTime(key, c.sim.Now())
		if !present {
			continue
		}
		if !live || idle < minIdle {
			minIdle = idle
		}
		live = true
	}
	return minIdle, live
}

func (c *Controller) installDecoderThenEncoder(key string, basis *bitvec.Vector, id uint32) {
	// Phase 1: every decoder first, so that compressed packets can
	// always be uncompressed (paper §5) — one batched BfRt write.
	c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
		for _, dec := range c.decs {
			if err := zswitch.InstallIDToBasis(dec, id, basis, c.sim.Now()); err != nil {
				panic(fmt.Sprintf("controlplane: decoder install: %v", err))
			}
		}
		// Phase 2: the encoder mappings go live.
		c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			for _, enc := range c.encs {
				if err := zswitch.InstallBasisToID(enc, basis, id, c.sim.Now()); err != nil {
					panic(fmt.Sprintf("controlplane: encoder install: %v", err))
				}
			}
			c.byKey[key] = mapping{id: id, basis: basis}
			if emitted, ok := c.inflight[key]; ok {
				c.delays.Add(float64(c.sim.Now()-emitted) / 1e6)
			}
			delete(c.inflight, key)
			c.stats.Learned++
		})
	})
}

// sweep ages out mappings whose encoder-side idle timers lapsed. A
// mapping expires only when every encoder that holds it reports it
// idle — one recent hit anywhere keeps it alive network-wide.
func (c *Controller) sweep() {
	now := c.sim.Now()
	expired := make(map[string]int)
	for _, enc := range c.encs {
		for _, key := range zswitch.ExpiredBases(enc, now) {
			expired[key]++
		}
	}
	if len(expired) == 0 {
		c.sim.AfterLane(c.lane, c.cfg.SweepIntervalNs, c.sweep)
		return
	}
	// A key only expires when every encoder holding it reports it
	// idle; count presence for the expired candidates alone.
	keys := make([]string, 0, len(expired))
	for key, n := range expired {
		present := 0
		for _, enc := range c.encs {
			if tbl, ok := enc.Table(zswitch.TableBasisToID); ok {
				if _, holds := tbl.IdleTime(key, now); holds {
					present++
				}
			}
		}
		if n == present {
			keys = append(keys, key)
		}
	}
	// Deterministic victim order despite map iteration above.
	sort.Strings(keys)
	for _, key := range keys {
		m, known := c.byKey[key]
		if !known || c.recycling[key] {
			continue
		}
		c.recycling[key] = true
		basis := m.basis
		// One write per tier: encoder entries out first, then the
		// decoder entries, then the identifier returns to the pool.
		keyCopy, idCopy := key, m.id
		c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
			for _, enc := range c.encs {
				zswitch.DeleteBasisToID(enc, basis)
			}
			delete(c.byKey, keyCopy)
			delete(c.recycling, keyCopy)
			c.sim.AfterLane(c.lane, c.sim.Jitter(c.cfg.WriteLatencyNs, c.cfg.JitterFrac), func() {
				for _, dec := range c.decs {
					zswitch.DeleteIDToBasis(dec, idCopy)
				}
				c.free = append(c.free, idCopy)
				c.stats.Expired++
			})
		})
	}
	c.sim.AfterLane(c.lane, c.cfg.SweepIntervalNs, c.sweep)
}
