// Package controlplane implements ZipLine's controller: the Python/
// BfRt component of the paper (§5, §6) that owns the identifier pool
// and the dictionary tables in the switches.
//
// Responsibilities, mirroring the paper:
//
//   - receive digests reporting bases unknown to an encoder;
//   - pick an identifier: an unused one if available, otherwise
//     recycle the least recently used entry (as observed by the
//     data plane's idle timers);
//   - install the reverse (ID→basis) mapping in the decoder switch
//     FIRST, so compressed packets can always be uncompressed, then
//     the forward (basis→ID) mapping in the encoder switch;
//   - age entries out via TNA-style per-entry TTLs.
//
// Every step pays a modelled latency (digest delivery, decision time,
// one BfRt write per table touched). The defaults sum to the paper's
// measured learning delay: a new basis becomes compressible
// (1.77 ± 0.08) ms after its first appearance. Writes for distinct
// bases proceed concurrently — BfRt batches table programming — so
// learning throughput is not serialised on the write latency, only
// each mapping's visibility is delayed by it.
package controlplane
