package controlplane

import (
	"math/rand"
	"testing"

	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// testbed is host A → encoder switch → host B with a bound
// controller managing the encoder's unified pipeline (encode at
// ingress port 0, decode unused).
type testbed struct {
	sim  *netsim.Sim
	prog *zswitch.Program
	sw   *netsim.Switch
	ctl  *Controller
	a, b *netsim.Host
}

func newTestbed(t *testing.T, swCfg zswitch.Config, cpCfg Config) *testbed {
	t.Helper()
	sim := netsim.NewSim(99)
	if swCfg.Roles == nil {
		swCfg.Roles = map[tofino.Port]zswitch.Role{0: zswitch.RoleEncode}
		swCfg.PortMap = map[tofino.Port]tofino.Port{0: 1}
	}
	prog, err := zswitch.New(swCfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tofino.Load(tofino.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	sw := netsim.NewSwitch(sim, netsim.SwitchConfig{}, pl)
	aNIC, swA := netsim.NewLink(sim, netsim.LinkConfig{}, "a", "sw0")
	bNIC, swB := netsim.NewLink(sim, netsim.LinkConfig{}, "b", "sw1")
	a := netsim.NewHost(sim, netsim.HostConfig{Name: "a", MaxPPS: 1_000_000}, aNIC)
	b := netsim.NewHost(sim, netsim.HostConfig{Name: "b"}, bNIC)
	sw.AttachPort(0, swA)
	sw.AttachPort(1, swB)
	ctl, err := New(sim, cpCfg, pl, pl, prog.Codec().BasisBits())
	if err != nil {
		t.Fatal(err)
	}
	ctl.Bind(sw)
	return &testbed{sim: sim, prog: prog, sw: sw, ctl: ctl, a: a, b: b}
}

func rawFrame(payload []byte) []byte {
	return packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, payload)
}

func TestLearningDelayMatchesPaper(t *testing.T) {
	// The paper's dynamic-learning experiment: repeatedly send the
	// same payload as fast as possible; the gap between the first
	// type 2 and the first type 3 arrival is (1.77 ± 0.08) ms.
	tb := newTestbed(t, zswitch.Config{}, Config{})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(payload)
	tb.a.Stream(0, 20*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payload) })
	tb.sim.Run()

	rx := tb.b.Rx()
	t2 := rx.FirstArrival[packet.TypeUncompressed]
	t3 := rx.FirstArrival[packet.TypeCompressed]
	if t2 < 0 || t3 < 0 {
		t.Fatalf("missing packet types: %+v", rx.FirstArrival)
	}
	gap := t3 - t2
	// Expect ≈1.77 ms within the jitter envelope (±3% per stage plus
	// packet pacing granularity).
	if gap < 1_600_000 || gap > 1_950_000 {
		t.Fatalf("learning delay = %.3f ms, want ≈1.77 ms", float64(gap)/1e6)
	}
	if tb.ctl.Stats().Learned != 1 {
		t.Fatalf("controller stats = %+v", tb.ctl.Stats())
	}
	// Every packet after the mapping went live must be compressed.
	if rx.TypeFrames[packet.TypeCompressed] == 0 || rx.TypeFrames[packet.TypeRaw] != 0 {
		t.Fatalf("type counts = %+v", rx.TypeFrames)
	}
}

func TestDuplicateDigestsIgnored(t *testing.T) {
	tb := newTestbed(t, zswitch.Config{}, Config{})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(payload)
	// Many packets with the same basis arrive long before the first
	// mapping can be installed; only one mapping must be learned.
	tb.a.Stream(0, 5*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payload) })
	tb.sim.Run()
	st := tb.ctl.Stats()
	if st.Learned != 1 {
		t.Fatalf("learned %d mappings, want 1 (stats %+v)", st.Learned, st)
	}
	if st.Duplicates == 0 {
		t.Fatal("expected duplicate digests to be counted")
	}
	if tb.ctl.Mappings() != 1 {
		t.Fatalf("mappings = %d", tb.ctl.Mappings())
	}
}

func TestDistinctBasesLearnConcurrently(t *testing.T) {
	// Two different bases digested back to back must not serialise:
	// both mappings appear ≈1.77 ms after their own digest, not
	// 2×1.77 ms.
	tb := newTestbed(t, zswitch.Config{}, Config{JitterFrac: 1e-9})
	p1 := make([]byte, 32)
	p2 := make([]byte, 32)
	rand.New(rand.NewSource(7)).Read(p1)
	rand.New(rand.NewSource(8)).Read(p2)
	alt := func(i uint64) []byte {
		if i%2 == 0 {
			return rawFrame(p1)
		}
		return rawFrame(p2)
	}
	tb.a.Stream(0, 10*netsim.Millisecond, func(i uint64) []byte { return alt(i) })
	tb.sim.Run()
	if tb.ctl.Stats().Learned != 2 {
		t.Fatalf("learned = %d", tb.ctl.Stats().Learned)
	}
	rx := tb.b.Rx()
	t3 := rx.FirstArrival[packet.TypeCompressed]
	if t3 > 2_100_000 {
		t.Fatalf("first compressed at %.2f ms: learning serialised", float64(t3)/1e6)
	}
}

func TestLRURecyclingWhenPoolExhausted(t *testing.T) {
	// A 1-bit pool (2 identifiers) with three bases forces one LRU
	// recycle.
	tb := newTestbed(t, zswitch.Config{IDBits: 1}, Config{IDBits: 1})
	payloads := make([][]byte, 3)
	rng := rand.New(rand.NewSource(9))
	for i := range payloads {
		payloads[i] = make([]byte, 32)
		rng.Read(payloads[i])
	}
	// Send bases 0 and 1 until learned; then keep 1 warm while
	// introducing basis 2.
	tb.a.Stream(0, 8*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payloads[i%2]) })
	tb.sim.RunUntil(10 * netsim.Millisecond)
	if tb.ctl.Mappings() != 2 {
		t.Fatalf("mappings = %d, want 2", tb.ctl.Mappings())
	}
	// Keep basis 1 hot, then digest basis 2: basis 0 must be evicted.
	tb.a.Stream(10*netsim.Millisecond, 12*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payloads[1]) })
	tb.a.Stream(12*netsim.Millisecond, 16*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payloads[2]) })
	tb.sim.Run()

	st := tb.ctl.Stats()
	if st.Recycled != 1 || st.Learned != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if tb.ctl.Mappings() != 2 {
		t.Fatalf("mappings = %d, want 2", tb.ctl.Mappings())
	}
	// Evicted basis 0 now re-encodes as type 2 again.
	s0, _ := tb.prog.Codec().SplitChunk(payloads[0])
	tbl, _ := tb.sw.Pipeline().Table(zswitch.TableBasisToID)
	if _, live := tbl.Get(s0.Basis.Key()); live {
		t.Fatal("LRU victim still installed")
	}
}

func TestTTLSweepExpiresIdleMappings(t *testing.T) {
	tb := newTestbed(t,
		zswitch.Config{TTLNs: 5 * netsim.Millisecond},
		Config{SweepIntervalNs: netsim.Millisecond})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(10)).Read(payload)
	tb.a.Stream(0, 4*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payload) })
	// Let the stream end, then idle well past the TTL.
	tb.sim.RunUntil(30 * netsim.Millisecond)
	st := tb.ctl.Stats()
	if st.Learned != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if tb.ctl.Mappings() != 0 {
		t.Fatalf("mappings = %d after expiry", tb.ctl.Mappings())
	}
	// And the identifier is reusable: a fresh basis learns cleanly.
	p2 := make([]byte, 32)
	rand.New(rand.NewSource(11)).Read(p2)
	tb.a.Stream(tb.sim.Now(), tb.sim.Now()+4*netsim.Millisecond, func(i uint64) []byte { return rawFrame(p2) })
	tb.sim.RunUntil(tb.sim.Now() + 10*netsim.Millisecond)
	if tb.ctl.Stats().Learned != 2 {
		t.Fatalf("stats = %+v", tb.ctl.Stats())
	}
}

func TestDecoderInstalledBeforeEncoder(t *testing.T) {
	// The two-phase protocol: at no point may the encoder table hold
	// a mapping whose identifier the decoder cannot resolve.
	tb := newTestbed(t, zswitch.Config{}, Config{})
	encTbl, _ := tb.sw.Pipeline().Table(zswitch.TableBasisToID)
	decTbl, _ := tb.sw.Pipeline().Table(zswitch.TableIDToBasis)

	payload := make([]byte, 32)
	rand.New(rand.NewSource(12)).Read(payload)
	tb.a.Stream(0, 5*netsim.Millisecond, func(i uint64) []byte { return rawFrame(payload) })

	// Probe the invariant at fine granularity across the learning
	// window.
	for at := netsim.Time(0); at < 6*netsim.Millisecond; at += 50 * netsim.Microsecond {
		tb.sim.RunUntil(at)
		if encTbl.Len() > decTbl.Len() {
			t.Fatalf("at %dus: encoder has %d entries, decoder %d — compressed packets could be stranded",
				at/1000, encTbl.Len(), decTbl.Len())
		}
	}
	tb.sim.Run()
	if ReadMiss := zswitch.ReadStats(tb.sw.Pipeline()).DecodeMiss; ReadMiss != 0 {
		t.Fatalf("decode misses: %d", ReadMiss)
	}
}

func TestConfigValidation(t *testing.T) {
	sim := netsim.NewSim(1)
	if _, err := New(sim, Config{}, nil, nil, 0); err == nil {
		t.Error("basisBits 0 accepted")
	}
	if _, err := New(sim, Config{IDBits: 30}, nil, nil, 247); err == nil {
		t.Error("IDBits 30 accepted")
	}
}
