package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"zipline"
	"zipline/ziphttp"
)

// perfGateway measures the PR-9 deployment surfaces end to end: the
// HTTP middleware's compress-and-respond path, a full
// middleware+transport round trip over a real loopback connection,
// and sustained streaming through a TCP proxy bridge pair. The
// workload is the same 64 KiB dictionary-covered sensor payload as
// the encoder rows, so gateway-encode overhead reads directly against
// pooled-reset-encode.
func perfGateway(seed int64, budget time.Duration) ([]PerfResult, error) {
	rng := rand.New(rand.NewSource(seed))
	bases := make([][]byte, 8)
	for i := range bases {
		bases[i] = make([]byte, 32)
		rng.Read(bases[i])
	}
	payload := make([]byte, 0, 64<<10)
	for len(payload) < 64<<10 {
		chunk := append([]byte(nil), bases[rng.Intn(len(bases))]...)
		chunk[rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
		payload = append(payload, chunk...)
	}
	dict, err := zipline.TrainDict(payload, zipline.Config{})
	if err != nil {
		return nil, err
	}

	var out []PerfResult

	// gateway-encode: the middleware's full response path — pool
	// acquire, negotiation, gating, compress, trailer, pool release —
	// against an in-memory ResponseRecorder.
	wrap, err := ziphttp.NewMiddleware(ziphttp.WithDict(dict))
	if err != nil {
		return nil, err
	}
	handler := wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(payload); err != nil {
			return
		}
	}))
	req := httptest.NewRequest("GET", "/perf", nil)
	req.Header.Set("Accept-Encoding", ziphttp.ContentEncoding)
	req.Header.Set(ziphttp.DictHeader, ziphttp.FormatDictID(dict.ID()))
	var encoded int
	r := measure("gateway-encode", budget, 20, func() {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		encoded = rec.Body.Len()
	})
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	r.Ratio = float64(encoded) / float64(len(payload))
	out = append(out, r)

	// gateway-roundtrip: handler + transport over a live loopback HTTP
	// connection — what a caller of the gateway actually experiences.
	srv := httptest.NewServer(handler)
	defer srv.Close()
	base := srv.Client().Transport.(*http.Transport)
	tr, err := ziphttp.NewTransport(base, ziphttp.WithDict(dict))
	if err != nil {
		return nil, err
	}
	client := &http.Client{Transport: tr}
	var rerr error
	r = measure("gateway-roundtrip", budget, 10, func() {
		resp, err := client.Get(srv.URL)
		if err != nil {
			rerr = err
			return
		}
		n, err := io.Copy(io.Discard, resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			rerr = err
			return
		}
		if n != int64(len(payload)) {
			rerr = fmt.Errorf("perf: round trip returned %d bytes, want %d", n, len(payload))
		}
	})
	if rerr != nil {
		return nil, rerr
	}
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	// proxy-stream: sustained throughput through a bridged TCP proxy
	// pair, one 64 KiB segment per op (write plain, read plain on the
	// far side; compression and decompression ride the link between).
	res, err := perfProxyStream(payload, dict, budget)
	if err != nil {
		return nil, err
	}
	return append(out, res), nil
}

// perfProxyStream wires app ↔ encode proxy ↔ link ↔ decode proxy ↔
// app over loopback TCP and measures one 64 KiB segment per op
// through the live bridges.
func perfProxyStream(payload []byte, dict *zipline.Dict, budget time.Duration) (PerfResult, error) {
	pair := func() (net.Conn, net.Conn, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		defer func() {
			if cerr := ln.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		type accepted struct {
			c   net.Conn
			err error
		}
		ac := make(chan accepted, 1)
		go func() {
			c, err := ln.Accept()
			ac <- accepted{c, err}
		}()
		d, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		a := <-ac
		if a.err != nil {
			d.Close()
			return nil, nil, a.err
		}
		return d, a.c, nil
	}

	pEnc, err := ziphttp.NewProxy(ziphttp.WithDict(dict))
	if err != nil {
		return PerfResult{}, err
	}
	pDec, err := ziphttp.NewProxy(ziphttp.WithDict(dict))
	if err != nil {
		return PerfResult{}, err
	}
	appA, innerA, err := pair()
	if err != nil {
		return PerfResult{}, err
	}
	linkA, linkB, err := pair()
	if err != nil {
		return PerfResult{}, err
	}
	appB, innerB, err := pair()
	if err != nil {
		return PerfResult{}, err
	}
	go pEnc.Bridge(innerA, linkA)
	go pDec.Bridge(innerB, linkB)
	defer func() {
		// Tearing down the app conns unwinds both bridges.
		appA.Close()
		appB.Close()
	}()

	buf := make([]byte, len(payload))
	var serr error
	r := measure("proxy-stream", budget, 5, func() {
		if _, err := appA.Write(payload); err != nil {
			serr = err
			return
		}
		if _, err := io.ReadFull(appB, buf); err != nil {
			serr = err
		}
	})
	if serr != nil {
		return PerfResult{}, serr
	}
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	return r, nil
}
