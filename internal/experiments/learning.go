package experiments

import (
	"fmt"
	"math/rand"

	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/stats"
)

// LearningResult is the §7 "Dynamic learning" measurement: the time
// between the arrival of the first type 2 packet and the arrival of
// the first type 3 packet for a previously unknown basis. The paper
// reports (1.77 ± 0.08) ms.
type LearningResult struct {
	// DelayMs collects one measurement per repeat, in milliseconds.
	DelayMs *stats.Sample
}

// LearningConfig parameterises the experiment.
type LearningConfig struct {
	// Repeats (default 10, as in the paper).
	Repeats int
	// GeneratorPPS: "we repeatedly send the same data packet as fast
	// as possible" (default 7 Mpkt/s).
	GeneratorPPS float64
	// WindowNs bounds each run (default 20 ms, comfortably past the
	// expected delay).
	WindowNs netsim.Time
	// Seed bases per-repeat seeds.
	Seed int64
}

func (c LearningConfig) withDefaults() LearningConfig {
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	if c.GeneratorPPS == 0 {
		c.GeneratorPPS = 7_000_000
	}
	if c.WindowNs == 0 {
		c.WindowNs = 20 * netsim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 41
	}
	return c
}

// Learning measures the dynamic-learning delay.
func Learning(cfg LearningConfig) (LearningResult, error) {
	cfg = cfg.withDefaults()
	res := LearningResult{DelayMs: stats.New()}
	for rep := 0; rep < cfg.Repeats; rep++ {
		seed := cfg.Seed + int64(rep)*7919
		tb, err := NewTestbed(TestbedConfig{
			Seed:           seed,
			Op:             OpEncode,
			HostA:          netsim.HostConfig{MaxPPS: cfg.GeneratorPPS},
			WithController: true,
		})
		if err != nil {
			return res, err
		}
		payload := make([]byte, tb.Prog.Codec().ChunkBytes())
		rand.New(rand.NewSource(seed)).Read(payload)
		frame := RawFrame(payload)
		tb.A.Stream(0, cfg.WindowNs, func(i uint64) []byte { return frame })
		tb.Sim.Run()

		rx := tb.B.Rx()
		t2 := rx.FirstArrival[packet.TypeUncompressed]
		t3 := rx.FirstArrival[packet.TypeCompressed]
		if t2 < 0 || t3 < 0 {
			return res, fmt.Errorf("rep %d: learning did not complete (t2=%d t3=%d)", rep, t2, t3)
		}
		res.DelayMs.Add(float64(t3-t2) / 1e6)
	}
	return res, nil
}
