package experiments

import (
	"fmt"

	"zipline/internal/netsim"
	"zipline/internal/scenario"
	"zipline/internal/stats"
)

// LearningResult is the §7 "Dynamic learning" measurement: the time
// between the arrival of the first type 2 packet and the arrival of
// the first type 3 packet for a previously unknown basis. The paper
// reports (1.77 ± 0.08) ms.
type LearningResult struct {
	// DelayMs collects one measurement per repeat, in milliseconds.
	DelayMs *stats.Sample
}

// LearningConfig parameterises the experiment.
type LearningConfig struct {
	// Repeats (default 10, as in the paper).
	Repeats int
	// GeneratorPPS: "we repeatedly send the same data packet as fast
	// as possible" (default 7 Mpkt/s).
	GeneratorPPS float64
	// WindowNs bounds each run (default 20 ms, comfortably past the
	// expected delay).
	WindowNs netsim.Time
	// Seed bases per-repeat seeds.
	Seed int64
}

func (c LearningConfig) withDefaults() LearningConfig {
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	if c.GeneratorPPS == 0 {
		c.GeneratorPPS = 7_000_000
	}
	if c.WindowNs == 0 {
		c.WindowNs = 20 * netsim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 41
	}
	return c
}

// Learning measures the dynamic-learning delay on the scenario
// engine: one unified encode switch, one repeated unknown payload per
// repeat, receiver-side first-t3 minus first-t2.
func Learning(cfg LearningConfig) (LearningResult, error) {
	cfg = cfg.withDefaults()
	res := LearningResult{DelayMs: stats.New()}
	for rep := 0; rep < cfg.Repeats; rep++ {
		seed := cfg.Seed + int64(rep)*7919
		sc, err := scenario.Build(scenario.Spec{
			Name: "learning",
			Seed: seed,
			Hosts: []scenario.HostSpec{
				{Name: "sender", MaxPPS: cfg.GeneratorPPS},
				{Name: "sink"},
			},
			Switches: []scenario.SwitchSpec{
				{Name: "sw", Ports: []scenario.PortSpec{{Port: 0, Role: scenario.RoleEncode, Out: 1}}},
			},
			Links: []scenario.LinkSpec{
				{A: "sender", B: "sw:0"},
				{A: "sw:1", B: "sink"},
			},
			Traffic: []scenario.TrafficSpec{{
				From: "sender", To: "sink",
				Workload: scenario.WorkloadRepeat,
				Records:  1 << 30, // the window, not the count, ends the flow
				StopNs:   int64(cfg.WindowNs),
				Seed:     seed,
			}},
		})
		if err != nil {
			return res, err
		}
		r := sc.Run()
		delay := r.Hosts[1].LearningDelayMs
		if delay < 0 {
			return res, fmt.Errorf("rep %d: learning did not complete (report %+v)", rep, r.Hosts[1])
		}
		res.DelayMs.Add(delay)
	}
	return res, nil
}
