package experiments

import (
	"testing"

	"zipline/internal/netsim"
	"zipline/internal/trace"
)

func TestTable1Regeneration(t *testing.T) {
	rows := Table1()
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15", len(rows))
	}
	mismatches := 0
	for _, r := range rows {
		if !r.Primitive {
			t.Errorf("(%d,%d) %s: polynomial not primitive", r.N, r.K, r.Poly)
		}
		if r.Param != r.PaperParam {
			mismatches++
			if r.PaperParamPrimitive {
				t.Errorf("(%d,%d): paper param %#x unexpectedly valid", r.N, r.K, r.PaperParam)
			}
			if r.N != 511 {
				t.Errorf("unexpected erratum row (%d,%d)", r.N, r.K)
			}
		}
	}
	if mismatches != 2 {
		t.Fatalf("found %d param errata, want the two (511,502) rows", mismatches)
	}
}

func TestTable2Regeneration(t *testing.T) {
	if err := Table2Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3SmallScale(t *testing.T) {
	// A scaled-down synthetic dataset must show the paper's ordering:
	// no-table ≈ 1.03, static ≈ 0.094, dynamic between static and
	// no-table, gzip < 0.5.
	ds := trace.Sensor(trace.SensorConfig{Records: 60_000, Sensors: 100, Seed: 2})
	res, err := Figure3(ds, Figure3Config{ReplayPPS: 150_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 4 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	byName := map[string]Figure3Case{}
	for _, c := range res.Cases {
		byName[c.Name] = c
	}
	noTable := byName["No table"]
	static := byName["Static table"]
	dynamic := byName["Dynamic learning"]
	gz := byName["Gzip"]
	if noTable.Ratio < 1.025 || noTable.Ratio > 1.04 {
		t.Errorf("no table ratio = %.4f, want ≈1.03", noTable.Ratio)
	}
	if static.NA {
		t.Fatalf("static n/a: %s", static.Detail)
	}
	if static.Ratio < 0.09 || static.Ratio > 0.10 {
		t.Errorf("static ratio = %.4f, want ≈0.094", static.Ratio)
	}
	if dynamic.Ratio <= static.Ratio || dynamic.Ratio >= noTable.Ratio {
		t.Errorf("dynamic ratio = %.4f not between static %.4f and no-table %.4f",
			dynamic.Ratio, static.Ratio, noTable.Ratio)
	}
	if gz.Ratio > 0.5 {
		t.Errorf("gzip ratio = %.4f, suspiciously poor", gz.Ratio)
	}
}

func TestFigure3StaticNAWhenOverflowing(t *testing.T) {
	// A tiny dictionary cannot preload a large working set: static
	// must be n/a, like the paper's DNS dataset.
	ds := trace.Sensor(trace.SensorConfig{Records: 20_000, Sensors: 100, Seed: 4})
	res, err := Figure3(ds, Figure3Config{IDBits: 2, ReplayPPS: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cases {
		if c.Name == "Static table" && !c.NA {
			t.Fatalf("static should be n/a with a 4-entry dictionary: %+v", c)
		}
	}
}

func TestFigure4Shapes(t *testing.T) {
	cells, err := Figure4(Figure4Config{
		WindowNs: 2 * netsim.Millisecond,
		Repeats:  3,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(op Op, size int) Figure4Cell {
		for _, c := range cells {
			if c.Op == op && c.FrameSize == size {
				return c
			}
		}
		t.Fatalf("missing cell %v/%d", op, size)
		return Figure4Cell{}
	}
	for _, op := range []Op{OpNoOp, OpEncode, OpDecode} {
		// Small and medium frames are generator-bound at ≈7 Mpkt/s.
		for _, size := range []int{64, 1500} {
			c := get(op, size)
			if m := c.Mpps.Mean(); m < 6.5 || m > 7.5 {
				t.Errorf("%v/%dB: %.2f Mpkt/s, want ≈7", op, size, m)
			}
		}
		// Jumbo frames reach line rate.
		c := get(op, 9000)
		if g := c.Gbps.Mean(); g < 97 || g > 101 {
			t.Errorf("%v/9000B: %.1f Gbit/s, want ≈99.7", op, g)
		}
	}
	// The headline claim: encode and decode match no-op within CI.
	for _, size := range []int{64, 1500, 9000} {
		base := get(OpNoOp, size).Gbps.Mean()
		for _, op := range []Op{OpEncode, OpDecode} {
			if g := get(op, size).Gbps.Mean(); g < base*0.93 || g > base*1.07 {
				t.Errorf("%v/%dB: %.2f Gbit/s deviates from no-op %.2f", op, size, g, base)
			}
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	cells, err := Figure5(Figure5Config{Probes: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	base := cells[0].RTTMicros.Mean()
	for _, c := range cells {
		m := c.RTTMicros.Mean()
		// Single-digit microseconds, like paper Figure 5.
		if m < 3 || m > 15 {
			t.Errorf("%v: RTT %.2f µs outside the paper's band", c.Op, m)
		}
		// And equal across operations within a few percent.
		if m < base*0.95 || m > base*1.05 {
			t.Errorf("%v: RTT %.2f µs deviates from no-op %.2f µs", c.Op, m, base)
		}
	}
}

func TestLearningDelay(t *testing.T) {
	res, err := Learning(LearningConfig{Repeats: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := res.DelayMs.Mean()
	if m < 1.6 || m > 1.95 {
		t.Fatalf("learning delay = %.3f ms, want ≈1.77", m)
	}
	if res.DelayMs.N() != 5 {
		t.Fatalf("n = %d", res.DelayMs.N())
	}
}
