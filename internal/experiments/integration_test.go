package experiments

import (
	"bytes"
	"testing"

	"zipline/internal/controlplane"
	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/pcap"
	"zipline/internal/tofino"
	"zipline/internal/trace"
	"zipline/internal/zswitch"
)

// TestEndToEndPcapReplayThroughSwitchPair is the full-stack
// integration test: generate a sensor trace, write it to a pcap,
// replay it through encoder switch → link → decoder switch with a
// live control plane, and verify every payload arrives byte-exact at
// the far host while the middle hop carried compressed traffic.
func TestEndToEndPcapReplayThroughSwitchPair(t *testing.T) {
	ds := trace.Sensor(trace.SensorConfig{Records: 20_000, Sensors: 50, Seed: 31})

	// Trace → pcap → frames (exercising the capture path).
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := packet.MAC{2, 0, 0, 0, 0, 1}
	dst := packet.MAC{2, 0, 0, 0, 0, 2}
	if err := ds.WritePcap(w, src, dst, 5000); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	for {
		_, frame, err := r.Next()
		if err != nil {
			break
		}
		frames = append(frames, frame)
	}
	if len(frames) != ds.Records() {
		t.Fatalf("pcap frames = %d", len(frames))
	}

	// Testbed: host A — encoder switch — decoder switch — host B.
	sim := netsim.NewSim(37)
	newSW := func(name string, role zswitch.Role) (*netsim.Switch, *tofino.Pipeline) {
		prog, err := zswitch.New(zswitch.Config{
			Roles:   map[tofino.Port]zswitch.Role{0: role},
			PortMap: map[tofino.Port]tofino.Port{0: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := tofino.Load(tofino.Config{Name: name}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return netsim.NewSwitch(sim, netsim.SwitchConfig{Name: name}, pl), pl
	}
	encSW, encPL := newSW("enc", zswitch.RoleEncode)
	decSW, decPL := newSW("dec", zswitch.RoleDecode)

	aNIC, encIn := netsim.NewLink(sim, netsim.LinkConfig{}, "a", "enc0")
	encOut, decIn := netsim.NewLink(sim, netsim.LinkConfig{}, "enc1", "dec0")
	decOut, bNIC := netsim.NewLink(sim, netsim.LinkConfig{}, "dec1", "b")
	hostA := netsim.NewHost(sim, netsim.HostConfig{Name: "a", MaxPPS: 500_000}, aNIC)
	hostB := netsim.NewHost(sim, netsim.HostConfig{Name: "b"}, bNIC)
	encSW.AttachPort(0, encIn)
	encSW.AttachPort(1, encOut)
	decSW.AttachPort(0, decIn)
	decSW.AttachPort(1, decOut)

	// Control plane spans both switches: decoder-side install first.
	prog, _ := zswitch.New(zswitch.Config{})
	ctl, err := controlplane.New(sim, controlplane.Config{}, encPL, decPL, prog.Codec().BasisBits())
	if err != nil {
		t.Fatal(err)
	}
	ctl.Bind(encSW)

	// Count what crosses the compressed hop.
	var hopBytes uint64
	origRecv := func(frame []byte, at netsim.Time) {}
	_ = origRecv

	var received [][]byte
	hostB.OnReceive = func(frame []byte, at netsim.Time) {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		received = append(received, cp)
	}

	hostA.Stream(0, 0, func(i uint64) []byte {
		if int(i) >= len(frames) {
			return nil
		}
		return frames[i]
	})
	sim.Run()

	if len(received) != len(frames) {
		t.Fatalf("received %d of %d frames", len(received), len(frames))
	}
	for i, frame := range received {
		_, payload, err := packet.ParseHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, ds.Record(i)) {
			t.Fatalf("payload %d mismatch after encode/decode hop", i)
		}
	}

	// The compressed hop must have carried mostly type 3 traffic.
	encStats := zswitch.ReadStats(encPL)
	decStats := zswitch.ReadStats(decPL)
	if encStats.RawToType3 == 0 {
		t.Fatal("no compression on the hop")
	}
	if decStats.Type3ToRaw != encStats.RawToType3 || decStats.Type2ToRaw != encStats.RawToType2 {
		t.Fatalf("hop accounting mismatch: enc=%+v dec=%+v", encStats, decStats)
	}
	if decStats.DecodeMiss != 0 {
		t.Fatalf("decode misses: %d", decStats.DecodeMiss)
	}
	hopBytes = encOut.TxBytes
	rawBytes := uint64(ds.Records()) * uint64(packet.HeaderLen+ds.RecordSize)
	if hopBytes >= rawBytes {
		t.Fatalf("hop carried %d bytes ≥ raw %d", hopBytes, rawBytes)
	}
	t.Logf("hop carried %.1f%% of raw frame bytes (learned %d bases)",
		100*float64(hopBytes)/float64(rawBytes), ctl.Stats().Learned)
}
