package experiments

import (
	"fmt"

	"zipline/internal/baseline"
	"zipline/internal/bch"
	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/trace"
)

// A1PaddingRow compares the Tofino byte-aligned wire layout with the
// ideal bit-packed one — quantifying the 3 % "no table" overhead the
// paper attributes to container alignment.
type A1PaddingRow struct {
	Layout   string
	Type2Len int
	Type3Len int
	// NoTableRatio is Type2Len over the chunk size: the Figure 3
	// "no table" bar under each layout.
	NoTableRatio float64
	// StaticRatio is Type3Len over the chunk size.
	StaticRatio float64
}

// AblationPadding regenerates the padding ablation (A1).
func AblationPadding() ([]A1PaddingRow, error) {
	tr, err := gd.NewHammingM(8)
	if err != nil {
		return nil, err
	}
	codec := gd.NewCodec(tr)
	var rows []A1PaddingRow
	for _, aligned := range []bool{true, false} {
		f, err := packet.NewFormat(codec, 15, aligned)
		if err != nil {
			return nil, err
		}
		name := "packed (ideal)"
		if aligned {
			name = "aligned (Tofino artifact)"
		}
		rows = append(rows, A1PaddingRow{
			Layout:       name,
			Type2Len:     f.Type2Len(),
			Type3Len:     f.Type3Len(),
			NoTableRatio: float64(f.Type2Len()) / float64(codec.ChunkBytes()),
			StaticRatio:  float64(f.Type3Len()) / float64(codec.ChunkBytes()),
		})
	}
	return rows, nil
}

// A2MSweepRow is one code size of the m-sweep ablation: wire-format
// efficiency and dictionary reach as functions of the Hamming
// parameter m.
type A2MSweepRow struct {
	M          int
	ChunkBytes int
	// Type2Ratio and Type3Ratio are the aligned wire sizes over the
	// chunk size (lower is better; both improve with m).
	Type2Ratio float64
	Type3Ratio float64
	// ChunksPerBasis is 2^m: how many distinct chunks one dictionary
	// entry can stand for.
	ChunksPerBasis int
	// Bases counts distinct bases when the reference sensor stream
	// is re-chunked at this size (dictionary pressure).
	Bases int
	// StaticOK reports whether those bases fit the 15-bit dictionary.
	StaticOK bool
}

// AblationMSweep regenerates the m-sweep ablation (A2) over a sensor
// stream of streamBytes bytes (default 4 MB if zero).
func AblationMSweep(streamBytes int, seed int64) ([]A2MSweepRow, error) {
	if streamBytes == 0 {
		streamBytes = 4 << 20
	}
	base := trace.Sensor(trace.SensorConfig{
		Records: streamBytes / 32, Sensors: 100, Seed: seed,
	})
	stream := base.Bytes()

	var rows []A2MSweepRow
	for m := 3; m <= 15; m++ {
		tr, err := gd.NewHammingM(m)
		if err != nil {
			return nil, err
		}
		codec := gd.NewCodec(tr)
		f, err := packet.NewFormat(codec, 15, true)
		if err != nil {
			return nil, err
		}
		cb := codec.ChunkBytes()
		usable := len(stream) / cb * cb
		rechunked := trace.NewTrace(fmt.Sprintf("m%d", m), cb, stream[:usable])
		bases, err := rechunked.DistinctBases(codec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, A2MSweepRow{
			M:              m,
			ChunkBytes:     cb,
			Type2Ratio:     float64(f.Type2Len()) / float64(cb),
			Type3Ratio:     float64(f.Type3Len()) / float64(cb),
			ChunksPerBasis: 1 << uint(m),
			Bases:          bases,
			StaticOK:       bases <= 1<<15,
		})
	}
	return rows, nil
}

// A3DictRow is one dictionary size of the LRU-pressure ablation.
type A3DictRow struct {
	IDBits   int
	Capacity int
	Ratio    float64
	Evicted  int
	Distinct int
}

// AblationDictSize regenerates the dictionary-size ablation (A3):
// compression under dictionaries from far-too-small to ample,
// demonstrating LRU thrash — and, by contrast with DEFLATE's fixed
// ≥3 kB requirement, GD's graceful degradation under tiny memory.
func AblationDictSize(records int, seed int64) ([]A3DictRow, error) {
	if records == 0 {
		records = 400_000
	}
	tr, err := gd.NewHammingM(8)
	if err != nil {
		return nil, err
	}
	codec := gd.NewCodec(tr)
	ds := trace.Sensor(trace.SensorConfig{Records: records, Sensors: 200, Seed: seed})
	var rows []A3DictRow
	for _, idBits := range []int{4, 6, 8, 10, 12, 14, 15, 16} {
		res, err := baseline.DedupSize(ds, baseline.DedupConfig{Codec: codec, IDBits: idBits})
		if err != nil {
			return nil, err
		}
		rows = append(rows, A3DictRow{
			IDBits:   idBits,
			Capacity: res.DictionaryCap,
			Ratio:    res.Ratio(ds.TotalBytes()),
			Evicted:  res.EvictedKeys,
			Distinct: res.DistinctKeys,
		})
	}
	return rows, nil
}

// A5BCHRow compares the Hamming transform with the future-work BCH
// transform on data whose glitches flip one or two bits per record.
type A5BCHRow struct {
	Dataset   string
	Transform string
	Ratio     float64
	Distinct  int
	// HitBytes shows the per-chunk compressed cost (BCH pays a wider
	// deviation).
	HitBytes int
}

// AblationBCH regenerates the BCH ablation (A5): with 2-bit glitches,
// Hamming bases explode while BCH(t=2) keeps one basis per baseline —
// "more chunks mapped to each basis, albeit at the cost of a larger
// deviation" (paper §8).
func AblationBCH(records int, seed int64) ([]A5BCHRow, error) {
	if records == 0 {
		records = 120_000
	}
	hammingTr, err := gd.NewHammingM(8)
	if err != nil {
		return nil, err
	}
	hammingCodec := gd.NewCodec(hammingTr)
	bchTr, err := bch.NewTransform(8, 2)
	if err != nil {
		return nil, err
	}
	bchCodec := gd.NewCodec(bchTr)

	datasets := []struct {
		name string
		tr   *trace.Trace
	}{
		// Each dataset's baselines are snapped to the codewords of
		// the code under test's own grid? No — to compare fairly,
		// both datasets snap to the BCH grid (every BCH codeword is
		// in some Hamming ball too, so Hamming still handles 1-bit
		// glitches around BCH codewords only when the flipped word
		// stays in the codeword's Hamming ball).
		{"1-bit glitches", trace.Sensor(trace.SensorConfig{
			Records: records, Sensors: 100, Seed: seed,
			SnapCodec: bchCodec, GlitchProb: 0.6, GlitchBits: 1,
		})},
		{"2-bit glitches", trace.Sensor(trace.SensorConfig{
			Records: records, Sensors: 100, Seed: seed + 1,
			SnapCodec: bchCodec, GlitchProb: 0.6, GlitchBits: 2,
		})},
	}
	transforms := []struct {
		name  string
		codec *gd.Codec
	}{
		{"GD hamming(255,247)", hammingCodec},
		{"GD bch(255,239,t=2)", bchCodec},
	}
	var rows []A5BCHRow
	for _, ds := range datasets {
		for _, tf := range transforms {
			f, err := packet.NewFormat(tf.codec, 15, true)
			if err != nil {
				return nil, err
			}
			res, err := baseline.DedupSize(ds.tr, baseline.DedupConfig{Codec: tf.codec, IDBits: 15})
			if err != nil {
				return nil, err
			}
			rows = append(rows, A5BCHRow{
				Dataset:   ds.name,
				Transform: tf.name,
				Ratio:     res.Ratio(ds.tr.TotalBytes()),
				Distinct:  res.DistinctKeys,
				HitBytes:  f.Type3Len(),
			})
		}
	}
	return rows, nil
}

// A4TransformRow compares transforms on one dataset.
type A4TransformRow struct {
	Dataset   string
	Transform string
	Ratio     float64
	Distinct  int
	Evicted   int
}

// AblationTransforms regenerates the transform ablation (A4):
// exact-match deduplication vs Hamming GD vs the low-bits transform
// on three data regimes — exact repetition, single-bit glitches
// around codeword-aligned baselines, and low-order measurement noise.
func AblationTransforms(records int, seed int64) ([]A4TransformRow, error) {
	if records == 0 {
		records = 200_000
	}
	hamming8, err := gd.NewHammingM(8)
	if err != nil {
		return nil, err
	}
	hammingCodec := gd.NewCodec(hamming8)
	lowbitsCodec := gd.NewCodec(gd.LowBits{Bits: 255, Dev: 16})

	datasets := []struct {
		name string
		tr   *trace.Trace
	}{
		{"exact-repeat", trace.Sensor(trace.SensorConfig{
			Records: records, Sensors: 100, Seed: seed,
		})},
		{"1-bit glitches", trace.Sensor(trace.SensorConfig{
			Records: records, Sensors: 100, Seed: seed + 1,
			SnapCodec: hammingCodec, GlitchProb: 0.3,
		})},
		{"low-bit noise", trace.Sensor(trace.SensorConfig{
			Records: records, Sensors: 100, Seed: seed + 2,
			NoiseBits: 12,
		})},
	}
	transforms := []struct {
		name  string
		codec *gd.Codec
	}{
		{"dedup (identity)", nil},
		{"GD hamming(255,247)", hammingCodec},
		{"GD lowbits(dev=17)", lowbitsCodec},
	}

	var rows []A4TransformRow
	for _, ds := range datasets {
		for _, tf := range transforms {
			res, err := baseline.DedupSize(ds.tr, baseline.DedupConfig{Codec: tf.codec, IDBits: 15})
			if err != nil {
				return nil, err
			}
			rows = append(rows, A4TransformRow{
				Dataset:   ds.name,
				Transform: tf.name,
				Ratio:     res.Ratio(ds.tr.TotalBytes()),
				Distinct:  res.DistinctKeys,
				Evicted:   res.EvictedKeys,
			})
		}
	}
	return rows, nil
}
