package experiments

import (
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/hamming"
)

// Table1Row is one row of the regenerated paper Table 1.
type Table1Row struct {
	N, K int
	Poly string
	// Param is the CRC parameter derived from the polynomial.
	Param uint32
	// PaperParam is the value printed in the paper.
	PaperParam uint32
	// Primitive reports whether the polynomial passes the
	// constructive validity check (it must, for a Hamming code).
	Primitive bool
	// PaperParamPrimitive reports whether the PAPER's printed
	// parameter would construct a valid code — false for the two
	// (511, 502) rows, a documented erratum.
	PaperParamPrimitive bool
}

// Table1 regenerates paper Table 1 from the code registry, validating
// every polynomial constructively.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, s := range hamming.Table1 {
		row := Table1Row{
			N: s.N(), K: s.K(), Poly: s.Poly,
			Param: s.Param, PaperParam: s.PaperParam,
		}
		_, err := hamming.New(s.M, s.Param)
		row.Primitive = err == nil
		if s.Param == s.PaperParam {
			row.PaperParamPrimitive = row.Primitive
		} else {
			_, err := hamming.New(s.M, s.PaperParam)
			row.PaperParamPrimitive = err == nil
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2Row is one row of the regenerated paper Table 2: the
// (7,4) Hamming syndrome of each single-bit error pattern and the
// CRC-3 of the same bit sequence, which must coincide.
type Table2Row struct {
	Error    int    // bit index (polynomial degree)
	Sequence string // the 7-bit pattern
	Syndrome uint32 // from the Hamming machinery
	CRC3     uint32 // from the CRC engine
}

// Table2 regenerates paper Table 2.
func Table2() ([]Table2Row, error) {
	code, err := hamming.ByM(3)
	if err != nil {
		return nil, err
	}
	eng := code.Engine()
	var rows []Table2Row
	for deg := 0; deg < 7; deg++ {
		v := bitvec.New(7)
		pos := 6 - deg // wire position of polynomial degree deg
		v.Set(pos, true)
		rows = append(rows, Table2Row{
			Error:    deg,
			Sequence: v.String(),
			Syndrome: code.SyndromeOfPosition(pos),
			CRC3:     eng.RemainderVector(v),
		})
	}
	return rows, nil
}

// Table2Verify returns an error unless every row's syndrome equals
// its CRC and matches the paper's published values.
func Table2Verify() error {
	want := []uint32{0b001, 0b010, 0b100, 0b011, 0b110, 0b111, 0b101}
	rows, err := Table2()
	if err != nil {
		return err
	}
	for i, r := range rows {
		if r.Syndrome != r.CRC3 {
			return fmt.Errorf("table2: error %d: syndrome %03b != crc %03b", r.Error, r.Syndrome, r.CRC3)
		}
		if r.Syndrome != want[i] {
			return fmt.Errorf("table2: error %d: syndrome %03b != paper %03b", r.Error, r.Syndrome, want[i])
		}
	}
	return nil
}
