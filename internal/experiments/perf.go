package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"zipline"
	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/scenario"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// PerfResult is one micro- or macro-benchmark measurement of the
// software dataplane — the repo's perf trajectory entries
// (BENCH_*.json).
type PerfResult struct {
	// Name identifies the measured path, e.g. "switch-encode".
	Name string `json:"name"`
	// Ops is how many operations the timing loop executed.
	Ops int `json:"ops"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is payload throughput, where the operation has one.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// PktsPerS is packet rate, for the per-packet paths.
	PktsPerS float64 `json:"pkts_per_s,omitempty"`
	// EventsPerS is the simulator event rate, for scenario runs.
	EventsPerS float64 `json:"events_per_s,omitempty"`
	// AllocsPerOp is heap allocations per operation (0 pins the
	// zero-allocation steady state).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Ratio carries a compression ratio where the run yields one.
	Ratio float64 `json:"ratio,omitempty"`
}

// measure times fn over enough iterations to fill the budget,
// reporting ns/op and allocs/op. fn must be one operation.
func measure(name string, budget time.Duration, warmup int, fn func()) PerfResult {
	for i := 0; i < warmup; i++ {
		fn()
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops := 0
	batch := 1024
	for time.Since(start) < budget {
		for i := 0; i < batch; i++ {
			fn()
		}
		ops += batch
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return PerfResult{
		Name:        name,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
	}
}

// PerfSuite measures the dataplane hot paths end to end: chunk codec,
// CRC, the three switch roles through tofino.Pipeline.ProcessAppend,
// and a full scenario run. quick shrinks the timing budgets for smoke
// runs.
func PerfSuite(seed int64, quick bool) ([]PerfResult, error) {
	budget := 400 * time.Millisecond
	if quick {
		budget = 20 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(seed))
	var out []PerfResult

	// Chunk codec, allocation-free byte paths.
	tr, err := gd.NewHammingM(8)
	if err != nil {
		return nil, err
	}
	codec := gd.NewCodec(tr)
	chunk := make([]byte, codec.ChunkBytes())
	rng.Read(chunk)

	var basis []byte
	var dev uint32
	var extra uint8
	r := measure("codec-encode", budget, 100, func() {
		basis, dev, extra, err = codec.SplitChunkBytes(chunk, basis)
	})
	if err != nil {
		return nil, err
	}
	r.MBPerS = float64(len(chunk)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	mergeDst := make([]byte, 0, codec.ChunkBytes())
	r = measure("codec-decode", budget, 100, func() {
		mergeDst, err = codec.MergeChunkBytes(basis, dev, extra, mergeDst[:0])
	})
	if err != nil {
		return nil, err
	}
	r.MBPerS = float64(len(chunk)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	// The CRC engine alone: the innermost loop of every encode.
	eng := tr.Code().Engine()
	var crcv uint32
	r = measure("crc-remainder-32B", budget, 100, func() {
		crcv = eng.Remainder(chunk, codec.ChunkBits())
	})
	_ = crcv
	r.MBPerS = float64(len(chunk)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	// Switch roles, steady state.
	for _, role := range []zswitch.Role{zswitch.RoleEncode, zswitch.RoleDecode, zswitch.RoleForward} {
		res, err := perfSwitchRole(role, rng.Int63(), budget)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// End-to-end scenario engine.
	res, err := perfScenario(seed, quick)
	if err != nil {
		return nil, err
	}
	out = append(out, res)

	// Reusable encoder API: one-shot EncodeAll/DecodeAll and the
	// pooled Reset+re-encode cycle, all against a shared pre-trained
	// dictionary (the short-stream gateway hot path).
	api, err := perfEncoderAPI(rng.Int63(), budget)
	if err != nil {
		return nil, err
	}
	out = append(out, api...)

	gw, err := perfGateway(rng.Int63(), budget)
	if err != nil {
		return nil, err
	}
	out = append(out, gw...)
	return out, nil
}

// perfEncoderAPI measures the package-level reusable encoder surface:
// EncodeAll and DecodeAll through their per-call pools, and a pooled
// Writer re-serving streams via Reset. The workload is a 64 KiB
// sensor-shaped payload whose bases are all frozen in a shared Dict,
// so the rows capture the warm steady state (pooled-reset-encode is
// pinned at 0 allocs/op by the root alloc-regression test).
func perfEncoderAPI(seed int64, budget time.Duration) ([]PerfResult, error) {
	rng := rand.New(rand.NewSource(seed))
	bases := make([][]byte, 8)
	for i := range bases {
		bases[i] = make([]byte, 32)
		rng.Read(bases[i])
	}
	payload := make([]byte, 0, 64<<10)
	for len(payload) < 64<<10 {
		// Single-bit glitches keep the basis (Hamming ball), the
		// workload GD is built for.
		chunk := append([]byte(nil), bases[rng.Intn(len(bases))]...)
		chunk[rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
		payload = append(payload, chunk...)
	}
	dict, err := zipline.TrainDict(payload, zipline.Config{})
	if err != nil {
		return nil, err
	}
	enc, err := zipline.NewWriter(io.Discard, zipline.WithDict(dict))
	if err != nil {
		return nil, err
	}
	dec, err := zipline.NewReader(nil, zipline.WithDict(dict))
	if err != nil {
		return nil, err
	}

	var out []PerfResult
	var comp []byte
	r := measure("encodeall-64k", budget, 20, func() {
		comp = enc.EncodeAll(payload, comp[:0])
	})
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	r.Ratio = float64(len(comp)) / float64(len(payload))
	out = append(out, r)

	var back []byte
	var derr error
	r = measure("decodeall-64k", budget, 20, func() {
		back, derr = dec.DecodeAll(comp, back[:0])
	})
	if derr != nil {
		return nil, derr
	}
	if len(back) != len(payload) {
		return nil, fmt.Errorf("perf: DecodeAll returned %d bytes, want %d", len(back), len(payload))
	}
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	var werr error
	r = measure("pooled-reset-encode", budget, 20, func() {
		enc.Reset(io.Discard)
		if _, err := enc.Write(payload); err != nil {
			werr = err
			return
		}
		if err := enc.Close(); err != nil {
			werr = err
		}
	})
	if werr != nil {
		return nil, werr
	}
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	idx, err := perfIndexedAPI(payload, dict, budget)
	if err != nil {
		return nil, err
	}
	return append(out, idx...), nil
}

// perfIndexedAPI measures the v4 indexed-container surface added in
// PR 7: segment-parallel DecodeAll of an indexed serial-written stream
// (the fan-out that finally lets decode scale with cores), and
// checkpoint-seek random access. Same 64 KiB payload and shared Dict
// as the encoder rows, so decodeall-indexed-64k is directly comparable
// to decodeall-64k.
func perfIndexedAPI(payload []byte, dict *zipline.Dict, budget time.Duration) ([]PerfResult, error) {
	ienc, err := zipline.NewWriter(io.Discard, zipline.WithDict(dict), zipline.WithIndex(0))
	if err != nil {
		return nil, err
	}
	comp := ienc.EncodeAll(payload, nil)

	dec, err := zipline.NewReader(nil, zipline.WithDict(dict), zipline.WithWorkers(4))
	if err != nil {
		return nil, err
	}

	var out []PerfResult
	var back []byte
	var derr error
	r := measure("decodeall-indexed-64k", budget, 20, func() {
		back, derr = dec.DecodeAll(comp, back[:0])
	})
	if derr != nil {
		return nil, derr
	}
	if len(back) != len(payload) {
		return nil, fmt.Errorf("perf: indexed DecodeAll returned %d bytes, want %d", len(back), len(payload))
	}
	r.MBPerS = float64(len(payload)) / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)

	// Random access: Seek to a rotating offset and read 4 KiB. One op
	// is jump-to-checkpoint + replay + read, the HTTP-range pattern.
	skr, err := zipline.NewReader(bytes.NewReader(comp), zipline.WithDict(dict))
	if err != nil {
		return nil, err
	}
	const span = 4 << 10
	buf := make([]byte, span)
	offs := [...]int64{0, 11111, 22222, 33333, 44444, int64(len(payload) - span)}
	n := 0
	var serr error
	r = measure("seek-read-64k", budget, 20, func() {
		off := offs[n%len(offs)]
		n++
		if _, err := skr.Seek(off, io.SeekStart); err != nil {
			serr = err
			return
		}
		if _, err := io.ReadFull(skr, buf); err != nil {
			serr = err
		}
	})
	if serr != nil {
		return nil, serr
	}
	r.MBPerS = span / r.NsPerOp * 1e9 / 1e6
	out = append(out, r)
	return out, nil
}

// perfSwitchRole measures one role's packets/sec through a loaded
// pipeline with a warm dictionary.
func perfSwitchRole(role zswitch.Role, seed int64, budget time.Duration) (PerfResult, error) {
	newPipeline := func(r zswitch.Role) (*zswitch.Program, *tofino.Pipeline, error) {
		prog, err := zswitch.New(zswitch.Config{
			Roles:   map[tofino.Port]zswitch.Role{0: r},
			PortMap: map[tofino.Port]tofino.Port{0: 1},
		})
		if err != nil {
			return nil, nil, err
		}
		pl, err := tofino.Load(tofino.Config{Name: "perf"}, prog)
		return prog, pl, err
	}
	encProg, encPl, err := newPipeline(zswitch.RoleEncode)
	if err != nil {
		return PerfResult{}, err
	}
	payload := make([]byte, encProg.Codec().ChunkBytes())
	rand.New(rand.NewSource(seed)).Read(payload)
	raw := packet.Frame(packet.Header{
		Dst:       packet.MAC{2, 0, 0, 0, 0, 2},
		Src:       packet.MAC{2, 0, 0, 0, 0, 1},
		EtherType: packet.EtherTypeRaw,
	}, payload)
	s, err := encProg.Codec().SplitChunk(payload)
	if err != nil {
		return PerfResult{}, err
	}
	if err := zswitch.InstallBasisToID(encPl, s.Basis, 1, 0); err != nil {
		return PerfResult{}, err
	}

	var pl *tofino.Pipeline
	frame := raw
	switch role {
	case zswitch.RoleEncode:
		pl = encPl
	case zswitch.RoleDecode:
		emits := encPl.Process(0, raw, 0)
		if len(emits) != 1 {
			return PerfResult{}, fmt.Errorf("perf: encode emitted %d frames", len(emits))
		}
		frame = emits[0].Frame
		encPl.DrainDigests()
		var decPl *tofino.Pipeline
		if _, decPl, err = newPipeline(zswitch.RoleDecode); err != nil {
			return PerfResult{}, err
		}
		if err := zswitch.InstallIDToBasis(decPl, 1, s.Basis, 0); err != nil {
			return PerfResult{}, err
		}
		pl = decPl
	default:
		if _, pl, err = newPipeline(zswitch.RoleForward); err != nil {
			return PerfResult{}, err
		}
	}

	scratch := make([]tofino.Emit, 0, 4)
	now := int64(0)
	r := measure("switch-"+role.String(), budget, 100, func() {
		now++
		scratch = pl.ProcessAppend(now, frame, 0, scratch[:0])
	})
	if len(scratch) != 1 {
		return PerfResult{}, fmt.Errorf("perf: %s emitted %d frames", role, len(scratch))
	}
	r.PktsPerS = 1e9 / r.NsPerOp
	r.MBPerS = float64(len(frame)) / r.NsPerOp * 1e9 / 1e6
	return r, nil
}

// perfScenario runs the perf preset once and reports wall-clock event
// and packet rates plus the run's compression ratio.
func perfScenario(seed int64, quick bool) (PerfResult, error) {
	spec, ok := scenario.Preset("perf")
	if !ok {
		return PerfResult{}, fmt.Errorf("perf: preset missing")
	}
	spec.Seed = seed
	if quick {
		for i := range spec.Traffic {
			spec.Traffic[i].Records = 10_000
		}
	}
	sc, err := scenario.Build(spec)
	if err != nil {
		return PerfResult{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	rep := sc.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	events := sc.Sim.Scheduled()
	return PerfResult{
		Name:        "scenario-perf",
		Ops:         int(events),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(events),
		EventsPerS:  float64(events) / elapsed.Seconds(),
		PktsPerS:    float64(rep.Delivered.Frames) / elapsed.Seconds(),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(events),
		Ratio:       rep.CompressionRatio,
	}, nil
}
