package experiments

import (
	"fmt"

	"zipline/internal/controlplane"
	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

// MACs of the two testbed servers.
var (
	macA = packet.MAC{0x02, 0x5A, 0x00, 0x00, 0x00, 0x01}
	macB = packet.MAC{0x02, 0x5A, 0x00, 0x00, 0x00, 0x02}
)

// Op selects what the switch does in the raw-performance experiments
// (paper Figure 4/5: "no op", "encode", "decode").
type Op int

// The three measured operations.
const (
	OpNoOp Op = iota
	OpEncode
	OpDecode
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpNoOp:
		return "No op"
	case OpEncode:
		return "Encode"
	case OpDecode:
		return "Decode"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

func (o Op) role() zswitch.Role {
	switch o {
	case OpEncode:
		return zswitch.RoleEncode
	case OpDecode:
		return zswitch.RoleDecode
	default:
		return zswitch.RoleForward
	}
}

// Testbed is the §7 setup: two servers connected through one
// programmable switch (ports 0 and 1).
type Testbed struct {
	Sim    *netsim.Sim
	Prog   *zswitch.Program
	Switch *netsim.Switch
	A, B   *netsim.Host
	Ctl    *controlplane.Controller // nil unless WithController
}

// TestbedConfig assembles a testbed.
type TestbedConfig struct {
	Seed int64
	// Op is applied to traffic arriving on port 0 (A→B direction).
	Op Op
	// Switch overrides the default ZipLine program configuration
	// (roles/portmap are filled in from Op).
	Switch zswitch.Config
	// HostA/HostB override host parameters.
	HostA, HostB netsim.HostConfig
	// WithController binds a simulated control plane.
	WithController bool
	// Controller overrides control-plane timing.
	Controller controlplane.Config
	// Loopback wires the switch to send port-0 traffic back to host
	// A (the paper's RTT setup: "one server sending packets to
	// itself via the programmable switch").
	Loopback bool
}

// NewTestbed wires hosts, links, switch and (optionally) the control
// plane.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	sim := netsim.NewSim(cfg.Seed)

	swCfg := cfg.Switch
	if swCfg.Roles == nil {
		swCfg.Roles = map[tofino.Port]zswitch.Role{0: cfg.Op.role()}
	}
	if swCfg.PortMap == nil {
		if cfg.Loopback {
			swCfg.PortMap = map[tofino.Port]tofino.Port{0: 0}
		} else {
			swCfg.PortMap = map[tofino.Port]tofino.Port{0: 1, 1: 0}
		}
	}
	prog, err := zswitch.New(swCfg)
	if err != nil {
		return nil, err
	}
	pl, err := tofino.Load(tofino.Config{Name: "wedge100bf"}, prog)
	if err != nil {
		return nil, err
	}
	sw := netsim.NewSwitch(sim, netsim.SwitchConfig{Name: "sw"}, pl)

	aNIC, swA := netsim.NewLink(sim, netsim.LinkConfig{}, "hostA", "sw:0")
	bNIC, swB := netsim.NewLink(sim, netsim.LinkConfig{}, "hostB", "sw:1")
	hostACfg := cfg.HostA
	hostACfg.Name, hostACfg.MAC = "A", macA
	hostBCfg := cfg.HostB
	hostBCfg.Name, hostBCfg.MAC = "B", macB
	a := netsim.NewHost(sim, hostACfg, aNIC)
	b := netsim.NewHost(sim, hostBCfg, bNIC)
	sw.AttachPort(0, swA)
	sw.AttachPort(1, swB)

	tb := &Testbed{Sim: sim, Prog: prog, Switch: sw, A: a, B: b}
	if cfg.WithController {
		if cfg.Controller.IDBits == 0 {
			// The identifier pool must match the switch dictionary.
			cfg.Controller.IDBits = prog.Config().IDBits
		}
		ctl, err := controlplane.New(sim, cfg.Controller, pl, pl, prog.Codec().BasisBits())
		if err != nil {
			return nil, err
		}
		ctl.Bind(sw)
		tb.Ctl = ctl
	}
	return tb, nil
}

// RawFrame builds an A→B type-1 frame with the given payload.
func RawFrame(payload []byte) []byte {
	return packet.Frame(packet.Header{Dst: macB, Src: macA, EtherType: packet.EtherTypeRaw}, payload)
}
