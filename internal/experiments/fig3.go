package experiments

import (
	"fmt"

	"zipline/internal/baseline"
	"zipline/internal/packet"
	"zipline/internal/scenario"
	"zipline/internal/tofino"
	"zipline/internal/trace"
	"zipline/internal/zswitch"
)

// Figure3Case is one bar of paper Figure 3.
type Figure3Case struct {
	Name string
	// Bytes is the total payload size after processing (the bar).
	Bytes int64
	// Ratio is Bytes over the original dataset size (the number the
	// paper prints beside each bar).
	Ratio float64
	// NA marks a case that is not applicable (static table for the
	// DNS dataset in the paper).
	NA bool
	// Detail carries per-case diagnostics (packet-type counts etc.).
	Detail string
}

// Figure3Result is one dataset's group of bars.
type Figure3Result struct {
	Dataset       string
	OriginalBytes int64
	Cases         []Figure3Case
}

// Figure3Config parameterises the compression experiment.
type Figure3Config struct {
	// ReplayPPS is the dynamic-learning replay rate (default
	// 150,000 packets/s — a tcpreplay-style moderate rate; the
	// paper does not publish theirs).
	ReplayPPS float64
	// Seed for the simulated run.
	Seed int64
	// IDBits sizes the dictionary (default 15 as deployed).
	IDBits int
	// SkipStatic marks the static-table case n/a (the paper does
	// this for the DNS dataset).
	SkipStatic bool
	// GzipLevel for the baseline (0 = default level).
	GzipLevel int
}

func (c Figure3Config) withDefaults() Figure3Config {
	if c.ReplayPPS == 0 {
		c.ReplayPPS = 150_000
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	if c.IDBits == 0 {
		c.IDBits = 15
	}
	return c
}

// Figure3 reproduces one dataset group of paper Figure 3: payload
// size after processing with no table, a statically preloaded table,
// dynamic learning, and gzip.
func Figure3(ds *trace.Trace, cfg Figure3Config) (Figure3Result, error) {
	cfg = cfg.withDefaults()
	res := Figure3Result{Dataset: ds.Name, OriginalBytes: int64(ds.TotalBytes())}

	noTable, err := fig3NoTable(ds, cfg)
	if err != nil {
		return res, fmt.Errorf("no table: %w", err)
	}
	res.Cases = append(res.Cases, noTable)

	static, err := fig3Static(ds, cfg)
	if err != nil {
		return res, fmt.Errorf("static: %w", err)
	}
	res.Cases = append(res.Cases, static)

	dynamic, err := fig3Dynamic(ds, cfg)
	if err != nil {
		return res, fmt.Errorf("dynamic: %w", err)
	}
	res.Cases = append(res.Cases, dynamic)

	gz, err := baseline.GzipSize(ds, cfg.GzipLevel)
	if err != nil {
		return res, fmt.Errorf("gzip: %w", err)
	}
	res.Cases = append(res.Cases, Figure3Case{
		Name:  "Gzip",
		Bytes: int64(gz),
		Ratio: float64(gz) / float64(ds.TotalBytes()),
	})
	return res, nil
}

// fig3Pipeline builds an encode-only pipeline for offline (timing-
// free) replay.
func fig3Pipeline(cfg Figure3Config) (*zswitch.Program, *tofino.Pipeline, error) {
	prog, err := zswitch.New(zswitch.Config{
		IDBits:  cfg.IDBits,
		Roles:   map[tofino.Port]zswitch.Role{0: zswitch.RoleEncode},
		PortMap: map[tofino.Port]tofino.Port{0: 1},
	})
	if err != nil {
		return nil, nil, err
	}
	pl, err := tofino.Load(tofino.Config{}, prog)
	if err != nil {
		return nil, nil, err
	}
	return prog, pl, nil
}

// replayOffline pushes every record through the pipeline without a
// clock (learning timing plays no role) and sums emitted payload
// bytes.
func replayOffline(ds *trace.Trace, pl *tofino.Pipeline) (payloadBytes int64, byType [4]uint64, err error) {
	hdr := packet.Header{Dst: macB, Src: macA, EtherType: packet.EtherTypeRaw}
	frame := make([]byte, 0, packet.HeaderLen+ds.RecordSize)
	for i := 0; i < ds.Records(); i++ {
		frame = packet.AppendHeader(frame[:0], hdr)
		frame = append(frame, ds.Record(i)...)
		emits := pl.Process(int64(i), frame, 0)
		if len(emits) != 1 {
			return 0, byType, fmt.Errorf("record %d: %d emissions", i, len(emits))
		}
		h, payload, perr := packet.ParseHeader(emits[0].Frame)
		if perr != nil {
			return 0, byType, perr
		}
		payloadBytes += int64(len(payload))
		byType[h.Type()]++
		if pl.PendingDigests() > 4096 {
			pl.DrainDigests()
		}
	}
	pl.DrainDigests()
	return payloadBytes, byType, nil
}

// fig3NoTable: the compression table stays empty; every packet
// becomes type 2. Measures pure transformation overhead (the paper's
// 1.03 padding cost).
func fig3NoTable(ds *trace.Trace, cfg Figure3Config) (Figure3Case, error) {
	_, pl, err := fig3Pipeline(cfg)
	if err != nil {
		return Figure3Case{}, err
	}
	bytes, byType, err := replayOffline(ds, pl)
	if err != nil {
		return Figure3Case{}, err
	}
	return Figure3Case{
		Name:   "No table",
		Bytes:  bytes,
		Ratio:  float64(bytes) / float64(ds.TotalBytes()),
		Detail: fmt.Sprintf("type2=%d", byType[packet.TypeUncompressed]),
	}, nil
}

// fig3Static: "we pre-compute the basis of each payload and add a
// corresponding mapping in the compression table before we start the
// experiment" — the idealistic case. If the working set exceeds the
// table, the case is n/a (as the paper marks the DNS dataset).
func fig3Static(ds *trace.Trace, cfg Figure3Config) (Figure3Case, error) {
	if cfg.SkipStatic {
		return Figure3Case{Name: "Static table", NA: true, Detail: "not applicable (paper: n/a)"}, nil
	}
	prog, pl, err := fig3Pipeline(cfg)
	if err != nil {
		return Figure3Case{}, err
	}
	// Preload every basis.
	codec := prog.Codec()
	seen := make(map[string]bool)
	nextID := uint32(0)
	capacity := uint32(1) << uint(cfg.IDBits)
	for i := 0; i < ds.Records(); i++ {
		s, err := codec.SplitChunk(ds.Record(i))
		if err != nil {
			return Figure3Case{}, err
		}
		key := s.Basis.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if nextID >= capacity {
			return Figure3Case{
				Name: "Static table", NA: true,
				Detail: fmt.Sprintf("working set %d exceeds %d identifiers", len(seen), capacity),
			}, nil
		}
		if err := zswitch.InstallBasisToID(pl, s.Basis, nextID, 0); err != nil {
			return Figure3Case{}, err
		}
		nextID++
	}
	bytes, byType, err := replayOffline(ds, pl)
	if err != nil {
		return Figure3Case{}, err
	}
	return Figure3Case{
		Name:   "Static table",
		Bytes:  bytes,
		Ratio:  float64(bytes) / float64(ds.TotalBytes()),
		Detail: fmt.Sprintf("bases=%d type3=%d", nextID, byType[packet.TypeCompressed]),
	}, nil
}

// fig3Dynamic: the full system with an empty table filled by the
// control plane as unknown bases stream past — learning latency and
// first-packet costs included. Runs on the scenario engine: one
// unified encode switch, the dataset replayed record by record.
func fig3Dynamic(ds *trace.Trace, cfg Figure3Config) (Figure3Case, error) {
	sc, err := scenario.Build(scenario.Spec{
		Name:  "fig3-dynamic",
		Seed:  cfg.Seed,
		Codec: scenario.CodecSpec{IDBits: cfg.IDBits},
		Hosts: []scenario.HostSpec{
			{Name: "sender", MaxPPS: cfg.ReplayPPS},
			{Name: "sink"},
		},
		Switches: []scenario.SwitchSpec{
			{Name: "sw", Ports: []scenario.PortSpec{{Port: 0, Role: scenario.RoleEncode, Out: 1}}},
		},
		Links: []scenario.LinkSpec{
			{A: "sender", B: "sw:0"},
			{A: "sw:1", B: "sink"},
		},
	})
	if err != nil {
		return Figure3Case{}, err
	}
	records := ds.Records()
	hdr := packet.Header{Dst: sc.MAC("sink"), Src: sc.MAC("sender"), EtherType: packet.EtherTypeRaw}
	sc.Host("sender").Stream(0, 0, func(i uint64) []byte {
		if i >= uint64(records) {
			return nil
		}
		rec := ds.Record(int(i))
		sc.CountOffered(1, uint64(len(rec)))
		return packet.Frame(hdr, rec)
	})
	r := sc.Run()

	sink := r.Hosts[1]
	if sink.RxFrames != uint64(records) {
		return Figure3Case{}, fmt.Errorf("received %d of %d frames", sink.RxFrames, records)
	}
	return Figure3Case{
		Name:  "Dynamic learning",
		Bytes: int64(sink.PayloadBytes),
		Ratio: float64(sink.PayloadBytes) / float64(ds.TotalBytes()),
		Detail: fmt.Sprintf("type2=%d type3=%d learned=%d",
			sink.Type2Frames, sink.Type3Frames, r.Learning.Learned),
	}, nil
}
