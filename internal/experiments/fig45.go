package experiments

import (
	"fmt"

	"zipline/internal/gd"
	"zipline/internal/netsim"
	"zipline/internal/packet"
	"zipline/internal/stats"
)

// Figure4Cell is one bar of paper Figure 4: throughput for one
// (operation, frame size) pair, across repeats.
type Figure4Cell struct {
	Op        Op
	FrameSize int
	// Gbps is received goodput in frame bytes (mean ± CI over
	// repeats), the left plot.
	Gbps *stats.Sample
	// Mpps is received packet rate, the right plot.
	Mpps *stats.Sample
}

// Figure4Config parameterises the throughput experiment.
type Figure4Config struct {
	// FrameSizes to sweep (default 64, 1500, 9000 — the paper's).
	FrameSizes []int
	// Ops to sweep (default no-op, encode, decode).
	Ops []Op
	// WindowNs is the measured traffic window per run (default
	// 20 ms; the paper transfers for 10 s, which only narrows the
	// confidence intervals).
	WindowNs netsim.Time
	// Repeats per cell (default 10, as in the paper).
	Repeats int
	// GeneratorPPS is the server traffic-generator ceiling (default
	// 7 Mpkt/s, the paper's observed bottleneck).
	GeneratorPPS float64
	// Seed bases the per-repeat seeds.
	Seed int64
}

func (c Figure4Config) withDefaults() Figure4Config {
	if c.FrameSizes == nil {
		c.FrameSizes = []int{64, 1500, 9000}
	}
	if c.Ops == nil {
		c.Ops = []Op{OpNoOp, OpEncode, OpDecode}
	}
	if c.WindowNs == 0 {
		c.WindowNs = 20 * netsim.Millisecond
	}
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	if c.GeneratorPPS == 0 {
		c.GeneratorPPS = 7_000_000
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// Figure4 measures raw throughput with the switch performing each
// operation on each frame size.
func Figure4(cfg Figure4Config) ([]Figure4Cell, error) {
	cfg = cfg.withDefaults()
	var out []Figure4Cell
	for _, op := range cfg.Ops {
		for _, size := range cfg.FrameSizes {
			cell := Figure4Cell{Op: op, FrameSize: size, Gbps: stats.New(), Mpps: stats.New()}
			for rep := 0; rep < cfg.Repeats; rep++ {
				gbps, mpps, err := fig4Run(cfg, op, size, cfg.Seed+int64(rep)*1001)
				if err != nil {
					return nil, fmt.Errorf("%v/%dB rep %d: %w", op, size, rep, err)
				}
				cell.Gbps.Add(gbps)
				cell.Mpps.Add(mpps)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func fig4Run(cfg Figure4Config, op Op, frameSize int, seed int64) (gbps, mpps float64, err error) {
	tb, err := NewTestbed(TestbedConfig{
		Seed:  seed,
		Op:    op,
		HostA: netsim.HostConfig{MaxPPS: cfg.GeneratorPPS},
	})
	if err != nil {
		return 0, 0, err
	}
	frame, err := testFrame(tb.Prog.Codec(), op, frameSize)
	if err != nil {
		return 0, 0, err
	}
	tb.A.Stream(0, cfg.WindowNs, func(i uint64) []byte { return frame })
	tb.Sim.Run()

	rx := tb.B.Rx()
	if rx.Frames == 0 {
		return 0, 0, fmt.Errorf("no traffic received")
	}
	// Measure over the actual span the receiver saw traffic; the
	// paper computes rate over its 10 s transfer the same way.
	span := rx.LastArrival - rx.FirstFrame
	if span <= 0 {
		return 0, 0, fmt.Errorf("degenerate window")
	}
	gbps = float64(rx.FrameBytes) * 8 / float64(span)
	mpps = float64(rx.Frames) * 1e3 / float64(span)
	return gbps, mpps, nil
}

// testFrame builds the frame the generator repeats: raw traffic for
// no-op and encode, a ZipLine type 2 frame for decode (decodable
// without dictionary state).
func testFrame(codec *gd.Codec, op Op, frameSize int) ([]byte, error) {
	payloadLen := frameSize - packet.HeaderLen
	if payloadLen < 0 {
		return nil, fmt.Errorf("frame size %d below header", frameSize)
	}
	switch op {
	case OpDecode:
		f := packet.MustFormat(codec, 15, true)
		if payloadLen < f.Type2Len() {
			return nil, fmt.Errorf("frame size %d cannot carry a type 2 payload", frameSize)
		}
		chunk := make([]byte, codec.ChunkBytes())
		for i := range chunk {
			chunk[i] = byte(i*37 + 11)
		}
		s, err := codec.SplitChunk(chunk)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 0, frameSize)
		out := packet.AppendHeader(buf, packet.Header{
			Dst: macB, Src: macA, EtherType: packet.EtherTypeUncompressed,
		})
		out = f.AppendType2(out, s)
		for len(out) < frameSize {
			out = append(out, 0x5A)
		}
		return out, nil
	default:
		payload := make([]byte, payloadLen)
		for i := range payload {
			payload[i] = byte(i*29 + 3)
		}
		return RawFrame(payload), nil
	}
}

// Figure5Cell is one bar of paper Figure 5: end-to-end RTT for one
// operation.
type Figure5Cell struct {
	Op Op
	// RTTMicros collects per-probe round-trip times in microseconds.
	RTTMicros *stats.Sample
}

// Figure5Config parameterises the latency experiment.
type Figure5Config struct {
	// Ops to sweep (default all three).
	Ops []Op
	// Probes per operation (default 1000).
	Probes int
	// GapNs between probes (default 10 µs: one in flight at a time).
	GapNs netsim.Time
	// FrameSize of the probe frames (default 64 B).
	FrameSize int
	// Seed bases the run's jitter.
	Seed int64
}

func (c Figure5Config) withDefaults() Figure5Config {
	if c.Ops == nil {
		c.Ops = []Op{OpNoOp, OpEncode, OpDecode}
	}
	if c.Probes == 0 {
		c.Probes = 1000
	}
	if c.GapNs == 0 {
		c.GapNs = 10 * netsim.Microsecond
	}
	if c.FrameSize == 0 {
		c.FrameSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 31
	}
	return c
}

// Figure5 measures the RTT of the paper's self-loop setup: host A
// sends to itself through the switch, which applies each operation.
func Figure5(cfg Figure5Config) ([]Figure5Cell, error) {
	cfg = cfg.withDefaults()
	var out []Figure5Cell
	for _, op := range cfg.Ops {
		tb, err := NewTestbed(TestbedConfig{Seed: cfg.Seed, Op: op, Loopback: true})
		if err != nil {
			return nil, err
		}
		frame, err := testFrame(tb.Prog.Codec(), op, cfg.FrameSize)
		if err != nil {
			return nil, err
		}
		cell := Figure5Cell{Op: op, RTTMicros: stats.New()}
		// Self-clocking probes: each reply triggers the next send
		// after a quiet gap, so exactly one probe is in flight.
		var sentAt netsim.Time
		var probe func()
		probe = func() {
			sentAt = tb.Sim.Now()
			tb.A.Send(frame)
		}
		tb.A.OnReceive = func(f []byte, at netsim.Time) {
			cell.RTTMicros.Add(float64(at-sentAt) / 1e3)
			if cell.RTTMicros.N() < cfg.Probes {
				tb.Sim.After(cfg.GapNs, probe)
			}
		}
		tb.Sim.At(0, probe)
		tb.Sim.Run()
		if cell.RTTMicros.N() != cfg.Probes {
			return nil, fmt.Errorf("%v: %d of %d probes returned", op, cell.RTTMicros.N(), cfg.Probes)
		}
		out = append(out, cell)
	}
	return out, nil
}
