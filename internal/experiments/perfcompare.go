package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchArtifact is the machine-readable measurement file zipline-bench
// -json writes — the repo's perf trajectory (BENCH_*.json at the root
// is the committed baseline; CI regenerates a fresh one per run and
// diffs the two with ComparePerf).
type BenchArtifact struct {
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick"`
	// Perf holds dataplane measurements (ns/op, MB/s, pkts/s,
	// events/s, allocs/op) from the perf experiment.
	Perf []PerfResult `json:"perf,omitempty"`
	// CompressionRatios holds the Figure 3 ratio table when fig3 ran.
	CompressionRatios []RatioEntry `json:"compression_ratios,omitempty"`
}

// RatioEntry is one Figure 3 compression-ratio measurement.
type RatioEntry struct {
	Dataset string  `json:"dataset"`
	Case    string  `json:"case"`
	Ratio   float64 `json:"ratio"`
}

// LoadBenchArtifact reads a BENCH_*.json / bench-perf.json file.
func LoadBenchArtifact(path string) (BenchArtifact, error) {
	var a BenchArtifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("parsing %s: %w", path, err)
	}
	return a, nil
}

// WriteFile writes the artifact as indented JSON.
func (a BenchArtifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PerfDelta is one baseline-vs-fresh comparison row.
type PerfDelta struct {
	// Name is the measured path (PerfResult.Name).
	Name string `json:"name"`
	// Metric names the throughput column compared (pkts_per_s,
	// mb_per_s, events_per_s, or ops_per_s derived from ns/op).
	Metric string `json:"metric"`
	// Old and New are the metric values (higher is better).
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Change is (new−old)/old; negative means slower.
	Change float64 `json:"change"`
	// Regressed marks rows past the tolerance, and baseline rows
	// missing from the fresh run.
	Regressed bool `json:"regressed"`
	// Missing marks a baseline entry the fresh run did not produce.
	Missing bool `json:"missing"`
}

// throughput picks the comparison metric for one result: the most
// specific throughput figure it carries, falling back to inverse
// latency. All are higher-is-better.
func throughput(r PerfResult) (string, float64) {
	switch {
	case r.PktsPerS > 0:
		return "pkts_per_s", r.PktsPerS
	case r.MBPerS > 0:
		return "mb_per_s", r.MBPerS
	case r.EventsPerS > 0:
		return "events_per_s", r.EventsPerS
	case r.NsPerOp > 0:
		return "ops_per_s", 1e9 / r.NsPerOp
	}
	return "ops_per_s", 0
}

// metricValue reads the named throughput metric from a result, so
// baseline and fresh rows always compare the same column.
func metricValue(r PerfResult, metric string) float64 {
	switch metric {
	case "pkts_per_s":
		return r.PktsPerS
	case "mb_per_s":
		return r.MBPerS
	case "events_per_s":
		return r.EventsPerS
	default:
		if r.NsPerOp > 0 {
			return 1e9 / r.NsPerOp
		}
		return 0
	}
}

// ComparePerf diffs a fresh perf run against a committed baseline:
// one delta per baseline entry, in baseline order, flagging every
// path whose throughput fell more than tolerance (fraction, e.g. 0.15)
// below the baseline and every baseline path the fresh run lost.
// Fresh-only entries are ignored (new measurements are not
// regressions). The second result reports whether anything regressed.
func ComparePerf(old, fresh []PerfResult, tolerance float64) ([]PerfDelta, bool) {
	byName := make(map[string]PerfResult, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var deltas []PerfDelta
	regressed := false
	for _, o := range old {
		metric, ov := throughput(o)
		d := PerfDelta{Name: o.Name, Metric: metric, Old: ov}
		n, ok := byName[o.Name]
		if !ok {
			d.Missing, d.Regressed = true, true
		} else {
			nv := metricValue(n, metric)
			d.New = nv
			if ov > 0 {
				d.Change = (nv - ov) / ov
			}
			d.Regressed = nv < ov*(1-tolerance)
		}
		regressed = regressed || d.Regressed
		deltas = append(deltas, d)
	}
	return deltas, regressed
}
