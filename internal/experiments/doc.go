// Package experiments reproduces every table and figure of the
// paper's evaluation (§7) on the simulated testbed, plus the ablation
// studies DESIGN.md calls out. Each experiment is a pure function
// returning structured results; cmd/zipline-bench renders them in
// paper layout and bench_test.go wraps them as Go benchmarks.
//
// Two invariants hold across the suite. Determinism: every experiment
// is a function of its seed — same seed, same tables, bit for bit —
// so published numbers are reproducible and diffs in EXPERIMENTS.md
// are meaningful. Measured, not asserted: PerfSuite rows (dataplane
// pkts/s, encoder MB/s, the ziphttp gateway and proxy paths) are
// wall-clock measurements with allocs/op from the runtime, written as
// the committed BENCH_PR*.json baselines that CI's perf-regression
// gate compares against.
package experiments
