package experiments

import (
	"testing"
)

func TestAblationPadding(t *testing.T) {
	rows, err := AblationPadding()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	aligned, packed := rows[0], rows[1]
	if aligned.Type2Len != 33 || aligned.Type3Len != 3 {
		t.Fatalf("aligned sizes = %d/%d", aligned.Type2Len, aligned.Type3Len)
	}
	if packed.Type2Len != 32 {
		t.Fatalf("packed type2 = %d", packed.Type2Len)
	}
	// The 1.03 vs 1.00 story.
	if aligned.NoTableRatio < 1.03 || packed.NoTableRatio != 1.0 {
		t.Fatalf("ratios = %.4f / %.4f", aligned.NoTableRatio, packed.NoTableRatio)
	}
}

func TestAblationMSweep(t *testing.T) {
	rows, err := AblationMSweep(1<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Type 3 ratio strictly improves with m; m=8 matches the paper's
	// 3/32.
	for i := 1; i < len(rows); i++ {
		if rows[i].Type3Ratio >= rows[i-1].Type3Ratio {
			t.Fatalf("type3 ratio not improving at m=%d", rows[i].M)
		}
	}
	for _, r := range rows {
		if r.M == 8 {
			if r.Type3Ratio < 0.09 || r.Type3Ratio > 0.10 {
				t.Fatalf("m=8 type3 ratio = %.4f", r.Type3Ratio)
			}
			if r.ChunksPerBasis != 256 {
				t.Fatalf("m=8 chunks/basis = %d", r.ChunksPerBasis)
			}
		}
	}
}

func TestAblationDictSize(t *testing.T) {
	rows, err := AblationDictSize(60_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio must not degrade as the dictionary grows through the
	// working-set size, and tiny dictionaries must thrash.
	if rows[0].IDBits != 4 || rows[0].Evicted == 0 {
		t.Fatalf("tiny dictionary did not thrash: %+v", rows[0])
	}
	var r15, r4 float64
	for _, r := range rows {
		switch r.IDBits {
		case 4:
			r4 = r.Ratio
		case 15:
			r15 = r.Ratio
		}
	}
	if r15 >= r4 {
		t.Fatalf("15-bit dictionary (%.3f) not better than 4-bit (%.3f)", r15, r4)
	}
}

func TestAblationTransforms(t *testing.T) {
	rows, err := AblationTransforms(40_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	get := func(ds, tf string) A4TransformRow {
		for _, r := range rows {
			if r.Dataset == ds && r.Transform == tf {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", ds, tf)
		return A4TransformRow{}
	}
	// Hamming GD beats exact dedup on 1-bit glitch data.
	if g, d := get("1-bit glitches", "GD hamming(255,247)"), get("1-bit glitches", "dedup (identity)"); g.Ratio >= d.Ratio {
		t.Fatalf("hamming %.3f !< dedup %.3f on glitches", g.Ratio, d.Ratio)
	}
	// LowBits beats Hamming on low-bit noise.
	if l, g := get("low-bit noise", "GD lowbits(dev=17)"), get("low-bit noise", "GD hamming(255,247)"); l.Ratio >= g.Ratio {
		t.Fatalf("lowbits %.3f !< hamming %.3f on noise", l.Ratio, g.Ratio)
	}
}

func TestAblationBCH(t *testing.T) {
	rows, err := AblationBCH(40_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	get := func(ds, tf string) A5BCHRow {
		for _, r := range rows {
			if r.Dataset == ds && r.Transform == tf {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", ds, tf)
		return A5BCHRow{}
	}
	// With 2-bit glitches the Hamming dictionary explodes while BCH
	// holds one basis per baseline — the §8 claim.
	ham := get("2-bit glitches", "GD hamming(255,247)")
	bch := get("2-bit glitches", "GD bch(255,239,t=2)")
	if bch.Distinct*10 > ham.Distinct {
		t.Fatalf("bch bases %d not ≪ hamming bases %d", bch.Distinct, ham.Distinct)
	}
	if bch.Ratio >= ham.Ratio {
		t.Fatalf("bch %.3f !< hamming %.3f on 2-bit glitches", bch.Ratio, ham.Ratio)
	}
	// And BCH pays the wider deviation: one extra hit byte.
	if bch.HitBytes <= ham.HitBytes {
		t.Fatalf("bch hit bytes %d not > hamming %d", bch.HitBytes, ham.HitBytes)
	}
}
