package lint

import (
	"go/ast"
	"go/types"
)

// StreamCloseTypes are the stream types whose Close/Flush errors carry
// data-integrity information: PR 5's Close audit made the serial writer
// repeat its first flush error and poisoned reads after Reader.Close,
// so discarding these errors discards a truncated-output signal.
var StreamCloseTypes = map[string]bool{
	"Writer": true, "Reader": true,
	"ParallelWriter": true, "ParallelReader": true,
}

// streamClosePkg is the package whose stream types are checked — the
// module root.
const streamClosePkg = "zipline"

// StreamClose requires every Close/Flush error on a zipline stream type
// to be checked in main packages (cmd/ and examples/): no bare
// statement calls, no bare defers, no blank assignments.
var StreamClose = &Analyzer{
	Name: "streamclose",
	Doc:  "require checked Close/Flush errors on zipline stream types in main packages",
	Run:  runStreamClose,
}

func runStreamClose(pass *Pass) {
	if pass.Pkg.Name() != "main" {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if name, method, ok := streamCloseCall(pass.Info, n.X); ok {
					pass.Reportf(n.Pos(), "error from (*%s.%s).%s is discarded; a dropped %s error hides truncated output", streamClosePkg, name, method, method)
				}
			case *ast.DeferStmt:
				if name, method, ok := streamCloseCall(pass.Info, n.Call); ok {
					pass.Reportf(n.Pos(), "deferred (*%s.%s).%s discards its error; close explicitly and check it", streamClosePkg, name, method)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				name, method, ok := streamCloseCall(pass.Info, n.Rhs[0])
				if !ok {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, isIdent := lhs.(*ast.Ident); !isIdent || id.Name != "_" {
						return true
					}
				}
				pass.Reportf(n.Pos(), "error from (*%s.%s).%s assigned to blank; check it", streamClosePkg, name, method)
			}
			return true
		})
	}
}

// streamCloseCall reports whether e is a Close/Flush call on one of the
// zipline stream types, returning the type and method names.
func streamCloseCall(info *types.Info, e ast.Expr) (typeName, method string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	fn := funcObj(info, call)
	if fn == nil {
		return "", "", false
	}
	if fn.Name() != "Close" && fn.Name() != "Flush" {
		return "", "", false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return "", "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != streamClosePkg || !StreamCloseTypes[obj.Name()] {
		return "", "", false
	}
	// Only error-returning signatures carry a checkable signal.
	if sig.Results().Len() != 1 || sig.Results().At(0).Type().String() != "error" {
		return "", "", false
	}
	return obj.Name(), fn.Name(), true
}
