package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// Analyzers is the ziplint suite, in reporting order.
var Analyzers = []*Analyzer{Noalloc, Determinism, StreamClose, Emitbuf}

// VetConfig is the JSON configuration the go command hands a
// -vettool for each package unit — the unitchecker protocol. Field
// names and semantics follow cmd/go/internal/work's vet config.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzers on one vet unit described by cfgFile
// and returns the process exit code: 0 clean, 2 with findings, 1 on
// driver errors. Diagnostics go to stderr in plain mode or stdout as
// JSON, matching what the go command expects from a vettool.
func RunUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	// The go command requires the facts file to exist after every run,
	// including fact-only runs for dependencies. ziplint's analyzers
	// exchange no facts, so the file is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "ziplint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := checkVetUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "ziplint:", err)
		return 1
	}
	diags := Run([]*Package{pkg}, analyzers)

	if jsonOut {
		return printJSONDiagnostics(stdout, cfg.ImportPath, diags)
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printJSONDiagnostics emits the vettool JSON shape:
// {"pkgpath": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSONDiagnostics(w io.Writer, importPath string, diags []Diagnostic) int {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{importPath: byAnalyzer}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		return 1
	}
	fmt.Fprintln(w, string(data))
	return 0
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}

// checkVetUnit parses and type-checks the unit's files with imports
// satisfied from the export data the go command already built.
func checkVetUnit(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewTypesInfo()
	conf := types.Config{Importer: vetImporter{cfg: cfg, comp: compImp}}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// vetImporter applies the unit's vendor/import map before delegating to
// the compiler export-data importer.
type vetImporter struct {
	cfg  *VetConfig
	comp types.Importer
}

func (v vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return v.comp.Import(path)
}
