package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"zipline/internal/lint"
)

// Run loads the fixture package at testdata/src/<path> (recursively
// loading any fixture packages it imports) and checks the analyzer's
// diagnostics against the package's want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, path string) {
	t.Helper()
	ld := newLoader(testdata)
	l, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	pkg := &lint.Package{Fset: ld.fset, Files: l.files, Pkg: l.pkg, Info: l.info}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})

	wants, err := collectWants(ld.fset, l.files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", path, err)
	}
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// loader resolves import paths fixture-first, then from GOROOT source.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*loaded
	fallback types.Importer
}

type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(testdata string) *loader {
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loaded),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	return ld
}

// Import satisfies types.Importer for the fixture type-checker.
func (ld *loader) Import(path string) (*types.Package, error) {
	l, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return l.pkg, nil
}

func (ld *loader) load(path string) (*loaded, error) {
	if l, ok := ld.pkgs[path]; ok {
		return l, nil
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		pkg, err := ld.fallback.Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: not a fixture and not importable: %w", path, err)
		}
		l := &loaded{pkg: pkg}
		ld.pkgs[path] = l
		return l, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files", path)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	l := &loaded{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = l
	return l, nil
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantPattern extracts the quoted regexps of one want comment.
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				text, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantPattern.FindAllString(text, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					var pat string
					if m[0] == '`' {
						pat = m[1 : len(m)-1]
					} else {
						var err error
						if pat, err = strconv.Unquote(m); err != nil {
							return nil, fmt.Errorf("%s:%d: bad want string %s", pos.Filename, pos.Line, m)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, m, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// claimWant marks the first unmatched want on the diagnostic's line
// whose regexp matches the message.
func claimWant(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
