// Package linttest runs ziplint analyzers over fixture packages and
// compares the diagnostics against expectations written in the fixture
// source — a dependency-free analogue of go/analysis/analysistest.
//
// Fixtures live under testdata/src/<importpath>/ and form a miniature
// GOPATH: an import of "zipline" from a fixture resolves to
// testdata/src/zipline, while standard-library imports fall back to
// compiling the real packages from GOROOT source. Expected diagnostics
// are trailing comments of the form
//
//	expr // want "regexp" "another regexp"
//
// one quoted regexp per expected diagnostic on that line. A fixture
// line that produces a diagnostic with no matching want, or a want that
// matches no diagnostic, fails the test.
package linttest
