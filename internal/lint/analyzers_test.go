package lint_test

import (
	"testing"

	"zipline/internal/lint"
	"zipline/internal/lint/linttest"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.Noalloc, "noallocfix")
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", lint.Determinism, "zipline/internal/netsim")
}

func TestDeterminismTopo(t *testing.T) {
	linttest.Run(t, "testdata", lint.Determinism, "zipline/internal/topo")
}

func TestDeterminismPlacement(t *testing.T) {
	linttest.Run(t, "testdata", lint.Determinism, "zipline/internal/placement")
}

func TestStreamClose(t *testing.T) {
	linttest.Run(t, "testdata", lint.StreamClose, "zipline/cmd/ziptool")
}

func TestEmitbuf(t *testing.T) {
	linttest.Run(t, "testdata", lint.Emitbuf, "emituser")
}
