package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoallocAnnotation marks a function that must not allocate in steady
// state. It appears on its own line inside the function's doc comment:
//
//	// Process handles one packet.
//	//
//	//zipline:noalloc
//	func (p *Program) Process(...)
//
// The annotation is transitive through intra-package calls: every
// function a //zipline:noalloc function calls within its own package is
// checked under the same rules, so a hot path cannot hide an allocation
// behind a helper.
const NoallocAnnotation = "//zipline:noalloc"

// Noalloc flags allocating constructs inside //zipline:noalloc
// functions: make/new, slice and map literals, &T{...} composite
// literals, string↔[]byte conversions outside the map[string(b)] lookup
// idiom, interface boxing at call sites, closures that capture local
// variables, string concatenation, go statements, and any call into fmt
// or errors.New. Arguments to panic are exempt (a panic is a crash
// path, not a hot path); genuine cold branches — error-return
// validation, amortized scratch growth — carry //ziplint:allow noalloc
// with a reason.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flag allocating constructs in //zipline:noalloc hot paths (transitive through intra-package calls)",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) {
	// Map every function object declared in this package to its body,
	// so annotation transitivity can chase intra-package calls.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.IsTestFile(f.Decls[0].Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if hasNoallocAnnotation(fd) {
				roots = append(roots, fd)
			}
		}
	}

	// Breadth-first over intra-package calls, remembering which
	// annotated root pulled each function into the checked set.
	type item struct {
		decl *ast.FuncDecl
		root string
	}
	seen := make(map[*ast.FuncDecl]bool)
	var queue []item
	for _, r := range roots {
		queue = append(queue, item{r, r.Name.Name})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if seen[it.decl] {
			continue
		}
		seen[it.decl] = true
		callees := checkNoallocFunc(pass, it.decl, it.root)
		for _, fn := range callees {
			if fd, ok := decls[fn]; ok && !seen[fd] {
				queue = append(queue, item{fd, it.root})
			}
		}
	}
}

func hasNoallocAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == NoallocAnnotation {
			return true
		}
	}
	return false
}

// noallocWalker carries the per-function state of the check.
type noallocWalker struct {
	pass *Pass
	// where names the function in diagnostics, including the
	// annotation root when the function is only transitively checked.
	where string
	// exemptConv holds string(b)-style conversions appearing directly
	// as map-index keys, which the compiler does not materialize.
	exemptConv map[ast.Expr]bool
	callees    []*types.Func
}

// checkNoallocFunc scans one function body, reporting allocating
// constructs and returning the intra-package callees to check next.
func checkNoallocFunc(pass *Pass, fd *ast.FuncDecl, root string) []*types.Func {
	where := fd.Name.Name
	if where != root {
		where = fmt.Sprintf("%s (reached from %s %s)", fd.Name.Name, NoallocAnnotation, root)
	} else {
		where = fmt.Sprintf("%s %s", NoallocAnnotation, where)
	}
	w := &noallocWalker{pass: pass, where: where, exemptConv: make(map[ast.Expr]bool)}
	w.walk(fd.Body, false)
	return w.callees
}

func (w *noallocWalker) walk(n ast.Node, inPanic bool) {
	if n == nil {
		return
	}
	pass := w.pass
	switch n := n.(type) {
	case *ast.GoStmt:
		pass.Reportf(n.Pos(), "go statement in %s: spawning a goroutine allocates", w.where)

	case *ast.IndexExpr:
		// m[string(b)] — the compiler elides the conversion when the
		// index of a map access is a direct string(bytes) conversion.
		if t, ok := pass.Info.Types[n.X]; ok {
			if _, isMap := t.Type.Underlying().(*types.Map); isMap {
				if conv, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok && isStringBytesConv(pass.Info, conv) {
					w.exemptConv[conv] = true
				}
			}
		}

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&composite literal in %s escapes to the heap", w.where)
			}
		}

	case *ast.CompositeLit:
		if t, ok := pass.Info.Types[n]; ok {
			switch t.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in %s allocates its backing array", w.where)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in %s allocates", w.where)
			}
		}

	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t, ok := pass.Info.Types[n]; ok {
				if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "string concatenation in %s allocates", w.where)
				}
			}
		}

	case *ast.FuncLit:
		w.checkCapture(n)
		// The literal's own body is not part of the hot path unless it
		// is itself called on it; captures are the allocation.
		return

	case *ast.CallExpr:
		if w.checkCall(n, inPanic) {
			return // panic(...): descend with the exemption set
		}
	}

	// Generic descent.
	children(n, func(c ast.Node) {
		w.walk(c, inPanic)
	})
}

// checkCall inspects one call; it returns true when the call is a panic
// whose arguments were already walked with the cold-path exemption.
func (w *noallocWalker) checkCall(call *ast.CallExpr, inPanic bool) bool {
	pass := w.pass

	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in %s allocates", w.where)
			case "new":
				pass.Reportf(call.Pos(), "new in %s allocates", w.where)
			case "panic":
				// Terminal: allocation on a crash path is irrelevant.
				for _, a := range call.Args {
					w.walk(a, true)
				}
				return true
			}
			return false
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if isStringBytesConv(pass.Info, call) && !w.exemptConv[call] && !inPanic {
			pass.Reportf(call.Pos(), "string↔[]byte conversion in %s allocates (only the m[string(b)] map-lookup idiom is free)", w.where)
		}
		return false
	}

	fn := funcObj(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && !inPanic {
		switch {
		case fn.Pkg().Path() == "fmt":
			pass.Reportf(call.Pos(), "call to fmt.%s in %s allocates", fn.Name(), w.where)
		case fn.Pkg().Path() == "errors" && fn.Name() == "New":
			pass.Reportf(call.Pos(), "call to errors.New in %s allocates", w.where)
		case fn.Pkg() == pass.Pkg:
			w.callees = append(w.callees, fn)
		}
	}

	// Interface boxing at the call site: a concrete argument passed to
	// an interface-typed parameter is heap-boxed by the callee ABI.
	if !inPanic {
		w.checkBoxing(call)
	}
	return false
}

func (w *noallocWalker) checkBoxing(call *ast.CallExpr) {
	pass := w.pass
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if b, ok := at.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if types.IsInterface(at.Type) {
			continue
		}
		// Pointers and other word-sized direct interfaces do not
		// allocate when boxed.
		switch at.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Signature:
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxed into interface %s in %s allocates", pt, w.where)
	}
}

// checkCapture flags closures that capture variables from the enclosing
// function by reference — captured locals escape to the heap.
func (w *noallocWalker) checkCapture(lit *ast.FuncLit) {
	pass := w.pass
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Parent().Parent() == types.Universe {
			return true // package-level variable: no capture
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		pass.Reportf(lit.Pos(), "closure in %s captures %q from the enclosing function (escapes to heap)", w.where, id.Name)
		return false
	})
}

// isStringBytesConv reports whether call is a string([]byte) or
// []byte(string) conversion.
func isStringBytesConv(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	at, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isStringType(tv.Type) && isByteSlice(at.Type)) ||
		(isByteSlice(tv.Type) && isStringType(at.Type))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// children invokes fn for each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
