package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //ziplint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects a package and reports diagnostics through the pass.
	Run func(*Pass)
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed non-test files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
	allow map[allowKey]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

type allowKey struct {
	file string
	line int
	name string
}

// Reportf records a diagnostic at pos unless a //ziplint:allow comment
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow[allowKey{position.Filename, position.Line, p.Analyzer.Name}] ||
		p.allow[allowKey{position.Filename, position.Line - 1, p.Analyzer.Name}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The invariants ziplint enforces are production-code invariants;
// every analyzer skips test files so that e.g. a bench harness may pass
// a fresh buffer or read the wall clock.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
				allow:    allow,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// collectAllows indexes //ziplint:allow comments by (file, line,
// analyzer).
func collectAllows(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allow := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ziplint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				allow[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return allow
}

// funcObj resolves the called function object of a call expression, or
// nil when the callee is not a named function or method (builtins,
// conversions, func-typed variables, interface-typed dynamic calls).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether a call resolves to the package-level
// function path.name (not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	fn := funcObj(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
