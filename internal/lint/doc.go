// Package lint is ziplint's analysis framework: a small, dependency-free
// equivalent of golang.org/x/tools/go/analysis, sized to what ZipLine's
// invariant checkers need.
//
// ZipLine's performance claims rest on source-level invariants that PRs
// 3–5 established by hand: 0 allocs/op on the dataplane and pooled-Reset
// hot paths, byte-stable simulation reports for any worker count, and
// stream Close errors that always reach an exit code. The analyzers in
// this package enforce those invariants mechanically so that future
// churn (batched kernels, sharded event loops, the ziphttp gateway)
// cannot silently regress them.
//
// The framework mirrors go/analysis deliberately — Analyzer, Pass,
// Diagnostic — so the checkers port to the real framework unchanged if
// x/tools ever becomes a dependency. Two drivers exist: a standalone
// loader backed by `go list -export` (load.go) and the `go vet
// -vettool` unit-checker protocol (unit.go).
//
// # Suppression
//
// A diagnostic is suppressed by a comment on the flagged line or the
// line above it:
//
//	//ziplint:allow <analyzer> <reason>
//
// The reason is mandatory by convention (it is the audit trail for why
// the invariant does not apply — e.g. a cold validation branch inside a
// //zipline:noalloc function) but not enforced syntactically.
package lint
