// Fixture for the emitbuf analyzer: call sites of the zipline
// append-style APIs with fresh and reused destinations.
package emituser

import "zipline"

func fresh() {
	zipline.ProcessAppend(nil, 1)                 // want `nil passed as the append destination of zipline\.ProcessAppend`
	zipline.ProcessAppend([]byte{}, 1)            // want `a fresh literal passed as the append destination of zipline\.ProcessAppend`
	zipline.ProcessAppend(make([]byte, 0, 64), 1) // want `a fresh make passed as the append destination of zipline\.ProcessAppend`
	zipline.AppendFrame(nil, 2)                   // want `nil passed as the append destination of zipline\.AppendFrame`
}

func reused() {
	buf := make([]byte, 0, 64)
	buf = zipline.ProcessAppend(buf[:0], 1) // caller-owned scratch: not flagged
	buf = zipline.AppendFrame(buf, 2)
	_ = buf
	_ = zipline.AppendCount(3) // no slice destination: not flagged
}

func allowed() {
	//ziplint:allow emitbuf one-shot call in a cold path
	_ = zipline.ProcessAppend(nil, 1)
}
