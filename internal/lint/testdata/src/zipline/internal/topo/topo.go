// Fixture for the determinism analyzer: topology generation feeds the
// scenario expander, so graph construction must be byte-stable for a
// given seed.
package topo

import (
	"math/rand"
	"sort"
	"time"
)

func seededGraph(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // threaded generator: not flagged
}

func jitter() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

func shuffledHosts() int {
	return rand.Intn(4) // want `global math/rand\.Intn in a deterministic package`
}

// sortedPorts is the negative corpus: collect-then-sort keeps the port
// numbering independent of map layout.
func sortedPorts(degree map[string]int) []string {
	var names []string
	for n := range degree {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func unsortedPorts(degree map[string]int) []string {
	var names []string
	for n := range degree { // want `map iteration order leaks into a deterministic package`
		names = append(names, n)
	}
	return names
}
