// Fixture for the determinism analyzer: this path is one of the
// packages whose output must be byte-stable for a given seed.
package netsim

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

func globalRand() int {
	return rand.Int() // want `global math/rand\.Int in a deterministic package`
}

func seeded(r *rand.Rand) float64 {
	return r.Float64() // method on a threaded generator: not flagged
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors build the seeded generator: not flagged
}

var registry sync.Map // want `sync\.Map in a deterministic package`

// sortedReport is the negative corpus: collect-then-sort makes the map
// iteration order irrelevant.
func sortedReport(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedReport(counts map[string]int) []string {
	var keys []string
	for k := range counts { // want `map iteration order leaks into a deterministic package`
		keys = append(keys, k)
	}
	return keys
}

func allowedReduction(counts map[string]int) int {
	max := 0
	//ziplint:allow determinism max-reduction is iteration-order-insensitive
	for _, v := range counts {
		if v > max {
			max = v
		}
	}
	return max
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // slices iterate in order: not flagged
		total += v
	}
	return total
}
