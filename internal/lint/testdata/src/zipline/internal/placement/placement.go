// Fixture for the determinism analyzer: dictionary placement splits
// identifier ranges across encoders, so share computation must not
// depend on map layout or wall time.
package placement

import (
	"sort"
	"sync"
)

var shares sync.Map // want `sync\.Map in a deterministic package`

// rankedScores is the negative corpus: scores sort before any range is
// cut, so the digest map's layout never reaches the plan.
func rankedScores(scores map[string]uint64) []string {
	var names []string
	for n := range scores {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func unstableSplit(scores map[string]uint64) uint64 {
	var first uint64
	for _, s := range scores { // want `map iteration order leaks into a deterministic package`
		first = s
		break
	}
	return first
}

func allowedTotal(scores map[string]uint64) uint64 {
	var sum uint64
	//ziplint:allow determinism sum is iteration-order-insensitive
	for _, s := range scores {
		sum += s
	}
	return sum
}
