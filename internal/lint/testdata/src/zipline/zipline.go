// Package zipline is a fixture stub of the real module root: just
// enough surface for the streamclose and emitbuf analyzers to resolve
// the types and functions they match on.
package zipline

// Writer mimics the stream writer: Close and Flush return errors that
// callers must check.
type Writer struct{}

func (*Writer) Close() error                { return nil }
func (*Writer) Flush() error                { return nil }
func (*Writer) Write(p []byte) (int, error) { return len(p), nil }

// Reader mimics the stream reader.
type Reader struct{}

func (*Reader) Close() error { return nil }

// ParallelWriter mirrors the deprecated alias in the real module.
type ParallelWriter = Writer

// NewWriter returns a stub writer.
func NewWriter() *Writer { return &Writer{} }

// NewReader returns a stub reader.
func NewReader() *Reader { return &Reader{} }

// ProcessAppend mimics the dataplane append API: out is the
// caller-owned destination, returned extended.
func ProcessAppend(out []byte, b byte) []byte { return append(out, b) }

// AppendFrame mimics the packet append APIs.
func AppendFrame(dst []byte, b byte) []byte { return append(dst, b) }

// AppendCount has no slice destination; emitbuf must ignore it.
func AppendCount(n int) int { return n + 1 }
