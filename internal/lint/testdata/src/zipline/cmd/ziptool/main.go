// Fixture for the streamclose analyzer: a command using the stream
// types every way the analyzer distinguishes.
package main

import "zipline"

type otherCloser struct{}

func (otherCloser) Close() error { return nil }

func discarded() {
	w := zipline.NewWriter()
	w.Close()       // want `error from \(\*zipline\.Writer\)\.Close is discarded`
	defer w.Close() // want `deferred \(\*zipline\.Writer\)\.Close discards its error`

	r := zipline.NewReader()
	r.Close() // want `error from \(\*zipline\.Reader\)\.Close is discarded`

	var pw zipline.ParallelWriter
	pw.Flush() // want `error from \(\*zipline\.Writer\)\.Flush is discarded`

	_ = w.Close() // want `error from \(\*zipline\.Writer\)\.Close assigned to blank`
}

func checked() error {
	w := zipline.NewWriter()
	if err := w.Close(); err != nil { // checked: not flagged
		return err
	}
	err := w.Flush() // named variable: not flagged
	return err
}

func unrelated() {
	var c otherCloser
	c.Close() // not a zipline stream type: not flagged
	defer c.Close()
}

func allowed() {
	w := zipline.NewWriter()
	//ziplint:allow streamclose fixture demonstrates the escape hatch
	w.Close()
}

func main() {
	discarded()
	_ = checked()
	unrelated()
	allowed()
}
