// Fixture for the noalloc analyzer: every construct the annotation
// bans, plus the negative corpus it must leave alone.
package noallocfix

import (
	"errors"
	"fmt"
)

//zipline:noalloc
func mapIdiom(m map[string]int, b []byte) int {
	return m[string(b)] // map-index conversion idiom is allocation-free: not flagged
}

//zipline:noalloc
func badConversion(b []byte) string {
	return string(b) // want `string↔\[\]byte conversion in //zipline:noalloc badConversion`
}

//zipline:noalloc
func badMake(n int) []int {
	return make([]int, n) // want `make in //zipline:noalloc badMake`
}

//zipline:noalloc
func badNew() *int {
	return new(int) // want `new in //zipline:noalloc badNew`
}

//zipline:noalloc
func badSliceLit() []int {
	return []int{1, 2} // want `slice literal in //zipline:noalloc badSliceLit`
}

//zipline:noalloc
func badMapLit() map[int]int {
	return map[int]int{} // want `map literal in //zipline:noalloc badMapLit`
}

type node struct{ v int }

//zipline:noalloc
func badEscape() *node {
	return &node{v: 1} // want `&composite literal in //zipline:noalloc badEscape`
}

//zipline:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation in //zipline:noalloc badConcat`
}

//zipline:noalloc
func badFmt(x int) {
	fmt.Println(x) // want `call to fmt\.Println in //zipline:noalloc badFmt` `argument boxed into interface`
}

//zipline:noalloc
func badErrors() error {
	return errors.New("boom") // want `call to errors\.New in //zipline:noalloc badErrors`
}

func sink(v any) { _ = v }

//zipline:noalloc
func badBoxing(x int) {
	sink(x) // want `argument boxed into interface any in //zipline:noalloc badBoxing`
}

//zipline:noalloc
func pointerNotBoxed(p *node) {
	sink(p) // pointers are word-sized and box without allocating: not flagged
}

//zipline:noalloc
func interfaceForwarding(v any) {
	sink(v) // already an interface: not flagged
}

//zipline:noalloc
func badClosure() func() int {
	x := 1
	return func() int { return x } // want `closure in //zipline:noalloc badClosure captures "x"`
}

//zipline:noalloc
func freeClosure() func() int {
	return func() int { return 42 } // captures nothing: not flagged
}

//zipline:noalloc
func badGo() {
	go freeClosure() // want `go statement in //zipline:noalloc badGo`
}

//zipline:noalloc
func panicPath(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // terminal crash path: not flagged
	}
}

//zipline:noalloc
func callsHelper(n int) *int {
	return helper(n)
}

// helper is unannotated but reached from callsHelper, so the
// requirement is transitive.
func helper(n int) *int {
	return new(int) // want `new in helper \(reached from //zipline:noalloc callsHelper\)`
}

//zipline:noalloc
func allowedGrowth(buf []byte, n int) []byte {
	if cap(buf) < n {
		//ziplint:allow noalloc grow-to-fit demonstration
		buf = make([]byte, n)
	}
	return buf[:n]
}

func coldFunc() *int { return new(int) } // unannotated and unreached: not flagged
