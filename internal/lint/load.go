package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load builds and type-checks the packages matching patterns (resolved
// in dir) for analysis. It shells out to `go list -export -deps` so
// dependencies come from the build cache as compiled export data — the
// same loading strategy go vet uses, without an x/tools dependency.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}

	var targets []*listPackage
	exports := make(map[string]string) // import path -> export file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source, with
// imports satisfied from compiled export data.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// NewTypesInfo allocates the types.Info maps the analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// exportImporter satisfies imports from a map of compiled export files,
// the way the gc toolchain's own tools resolve dependencies.
type exportImporter struct {
	gc    types.ImporterFrom
	paths map[string]string
}

// NewExportImporter returns an importer resolving import paths through
// export data files (as produced by `go list -export` or handed to a
// vet tool via its config's PackageFile map).
func NewExportImporter(fset *token.FileSet, paths map[string]string) types.ImporterFrom {
	return newExportImporter(fset, paths)
}

func newExportImporter(fset *token.FileSet, paths map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := paths[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:    importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		paths: paths,
	}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, dir, mode)
}
