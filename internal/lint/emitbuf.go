package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Emitbuf enforces the caller-owned scratch contract of ZipLine's
// append-style APIs (tofino.Pipeline.ProcessAppend,
// packet.Format.AppendType2Bytes and friends): the destination slice —
// the parameter the callee appends into and returns — must be a
// reusable variable, not a fresh literal, make call, or nil passed at
// the call site. A fresh buffer per call re-introduces exactly the
// per-packet allocation PR 3 removed.
var Emitbuf = &Analyzer{
	Name: "emitbuf",
	Doc:  "require reused caller-owned scratch slices at append-API call sites",
	Run:  runEmitbuf,
}

func runEmitbuf(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkEmitbufCall(pass, call)
			return true
		})
	}
}

func checkEmitbufCall(pass *Pass, call *ast.CallExpr) {
	fn := funcObj(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "zipline" && !strings.HasPrefix(path, "zipline/") {
		return
	}
	name := fn.Name()
	if name != "ProcessAppend" && !strings.HasPrefix(name, "Append") {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return
	}
	resType, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return
	}
	// The destination is the first parameter whose type is the returned
	// slice type — the append contract's dst.
	dst := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if types.Identical(sig.Params().At(i).Type(), sig.Results().At(0).Type()) {
			dst = i
			break
		}
	}
	if dst < 0 || dst >= len(call.Args) {
		return
	}
	arg := ast.Unparen(call.Args[dst])
	var what string
	switch a := arg.(type) {
	case *ast.CompositeLit:
		what = "a fresh literal"
	case *ast.CallExpr:
		if id, isIdent := ast.Unparen(a.Fun).(*ast.Ident); isIdent {
			if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "make" {
				what = "a fresh make"
			}
		}
	case *ast.Ident:
		if a.Name == "nil" {
			if tv, hasType := pass.Info.Types[arg]; hasType {
				if b, isBasic := tv.Type.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
					what = "nil"
				}
			}
		}
	}
	if what == "" {
		return
	}
	pass.Reportf(call.Args[dst].Pos(), "%s passed as the append destination of %s.%s: reuse a caller-owned scratch %s across calls", what, pass.relPath(path), name, resType)
}

// relPath trims the module prefix for readable diagnostics.
func (p *Pass) relPath(path string) string {
	if rest, ok := strings.CutPrefix(path, "zipline/"); ok {
		return rest
	}
	return path
}
