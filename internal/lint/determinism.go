package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismPackages lists the import paths whose reports must be
// byte-stable for a given seed regardless of worker count or map
// layout. The sweep CI gate compares matrices with cmp; any
// nondeterminism in these packages breaks it only when a bench happens
// to catch it, so the sources of nondeterminism are banned at the
// source level instead.
var DeterminismPackages = map[string]bool{
	"zipline/internal/netsim":       true,
	"zipline/internal/scenario":     true,
	"zipline/internal/sweep":        true,
	"zipline/internal/controlplane": true,
	// The fault-era dataplane hooks (epoch-tagged digests, bypass,
	// restart) put zswitch on the byte-stability critical path too.
	"zipline/internal/zswitch": true,
	// Topology generation and dictionary placement feed the scenario
	// expander: a map-ordered graph walk or share split would shuffle
	// ports, identifier ranges, and ultimately whole reports.
	"zipline/internal/topo":      true,
	"zipline/internal/placement": true,
}

// Determinism bans nondeterminism sources inside the simulation and
// report packages: time.Now (virtual time only), the global math/rand
// functions (a seeded *rand.Rand must be threaded through), sync.Map
// (scheduling-order-dependent), and iteration over a map unless the
// loop only collects into a slice that is sorted afterwards in the same
// function. An order-insensitive map loop carries
// //ziplint:allow determinism with a reason.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "ban wall-clock, global rand, sync.Map and unsorted map iteration in simulation/report packages",
	Run:  runDeterminism,
}

// randConstructors are the math/rand functions that build the seeded
// generators the determinism contract requires; everything else at
// package level draws from the global, racy, seed-ignoring source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	if !DeterminismPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminismFunc(pass, fd)
		}
		checkSyncMap(pass, f)
	}
}

func checkDeterminismFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(pass.Info, n, "time", "Now") {
				pass.Reportf(n.Pos(), "time.Now in a deterministic package: use the simulation's virtual clock")
			}
			if fn := funcObj(pass.Info, n); fn != nil && fn.Pkg() != nil {
				path := fn.Pkg().Path()
				if (path == "math/rand" || path == "math/rand/v2") &&
					fn.Type().(*types.Signature).Recv() == nil &&
					!randConstructors[fn.Name()] {
					pass.Reportf(n.Pos(), "global %s.%s in a deterministic package: thread a seeded *rand.Rand instead", path, fn.Name())
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

// checkSyncMap flags any use of the sync.Map type: its iteration and
// internal promotion order depend on goroutine scheduling.
func checkSyncMap(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tn, ok := pass.Info.Uses[sel.Sel].(*types.TypeName); ok &&
			tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "Map" &&
			!pass.IsTestFile(sel.Pos()) {
			pass.Reportf(sel.Pos(), "sync.Map in a deterministic package: use a plain map under a mutex so iteration can be sorted")
		}
		return true
	})
}

// checkMapRange enforces the collect-then-sort discipline: a range over
// a map is allowed only when a variable written inside the loop is
// passed to a sort function later in the same enclosing function.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Variables assigned (or appended to) inside the loop body.
	written := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if obj := rootObject(pass.Info, lhs); obj != nil {
				written[obj] = true
			}
		}
		return true
	})

	// A sort call after the loop on one of those variables makes the
	// iteration order irrelevant.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		fn := funcObj(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		isSort := path == "sort" || (path == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(pass.Info, arg); obj != nil && written[obj] {
				sorted = true
			}
		}
		return true
	})
	if !sorted {
		pass.Reportf(rng.Pos(), "map iteration order leaks into a deterministic package: collect into a slice and sort it, or justify with //ziplint:allow determinism")
	}
}

// rootObject resolves an lvalue-ish expression (x, x.f, x[i], *x) to
// its base variable.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
