package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"zipline/internal/netsim"
	"zipline/internal/placement"
	"zipline/internal/scenario"
)

// MaxCells bounds a sweep's grid (a typo in an axis list should not
// schedule a million simulations).
const MaxCells = 4096

// Spec declares one sweep: a base scenario and the axes to vary.
type Spec struct {
	// Name identifies the sweep in the matrix.
	Name string `json:"name"`
	// Preset names a scenario preset as the base topology; Base
	// inlines a full scenario spec instead. Exactly one must be set.
	Preset string         `json:"preset,omitempty"`
	Base   *scenario.Spec `json:"base,omitempty"`
	// Seed overrides the base scenario's seed before per-cell
	// derivation (0 keeps the base's own seed).
	Seed int64 `json:"seed,omitempty"`
	// SeedStride derives each cell's seed as base + stride×index.
	// The default 0 runs every cell under the identical seed, so the
	// axes are the only difference between cells.
	SeedStride int64 `json:"seed_stride,omitempty"`
	// Axes span the grid; cell order is row-major with the first axis
	// slowest. An empty list is a single-cell sweep of the base.
	Axes []Axis `json:"axes"`
}

// Axis is one swept parameter and its values.
type Axis struct {
	// Param names the swept parameter (see ParamNames).
	Param string `json:"param"`
	// Values are the axis points, in sweep order.
	Values []Value `json:"values"`
	// Links restricts link-impairment params to these indices into
	// the scenario's Links list. Empty targets every switch-to-switch
	// link, or every link when the topology has none.
	Links []int `json:"links,omitempty"`
}

// Value is one axis point: a JSON number or string.
type Value struct {
	Num   float64
	Str   string
	IsStr bool
}

// Num64 builds a numeric axis value.
func Num64(v float64) Value { return Value{Num: v} }

// Str builds a string axis value.
func Str(s string) Value { return Value{Str: s, IsStr: true} }

// Nums builds a numeric axis value list.
func Nums(vs ...float64) []Value {
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = Num64(v)
	}
	return out
}

// String renders the value the way cell names and matrices print it.
func (v Value) String() string {
	if v.IsStr {
		return v.Str
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// MarshalJSON emits the bare number or string.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.IsStr {
		return json.Marshal(v.Str)
	}
	return json.Marshal(v.Num)
}

// UnmarshalJSON accepts a number or a string.
func (v *Value) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		// json.Unmarshal of null into a float64 is a silent no-op;
		// reject it rather than run a grid cell at a zero the spec
		// never asked for.
		return fmt.Errorf("sweep: axis value is null")
	}
	var n float64
	if err := json.Unmarshal(data, &n); err == nil {
		*v = Value{Num: n}
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("sweep: axis value %s is neither number nor string", data)
	}
	*v = Value{Str: s, IsStr: true}
	return nil
}

// Param is one applied (param, value) coordinate of a cell.
type Param struct {
	Param string `json:"param"`
	Value Value  `json:"value"`
}

// Cell is one expanded grid point: a runnable scenario spec plus the
// coordinates that produced it.
type Cell struct {
	// Index is the cell's row-major position (first axis slowest) —
	// and its position in the matrix, independent of execution order.
	Index int `json:"index"`
	// Name joins the coordinates, e.g. "loss_prob=0.01,id_bits=8".
	Name string `json:"name"`
	// Params lists the coordinates in axis order.
	Params []Param `json:"params"`
	// Seed is the derived per-cell seed.
	Seed int64 `json:"seed"`

	// Spec is the fully-applied scenario (not serialised; the
	// coordinates reproduce it).
	Spec scenario.Spec `json:"-"`
}

// Load reads and expand-checks a sweep Spec from a JSON file. The
// check materialises the grid once and discards it — deliberate: a
// bad spec should fail at load (e.g. under -dump-spec, which never
// runs), and with the MaxCells cap the duplicate expansion before Run
// is noise next to a single cell's simulation.
func Load(path string) (Spec, error) {
	var spec Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("sweep: parsing %s: %w", path, err)
	}
	if _, err := Expand(spec); err != nil {
		return spec, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return spec, nil
}

// ResolveBase returns a deep copy of the sweep's base scenario — the
// named preset, or the inlined spec.
func (s Spec) ResolveBase() (scenario.Spec, error) {
	if (s.Preset == "") == (s.Base == nil) {
		return scenario.Spec{}, fmt.Errorf("exactly one of preset or base must be set")
	}
	if s.Preset != "" {
		base, ok := scenario.Preset(s.Preset)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("unknown scenario preset %q", s.Preset)
		}
		return base, nil
	}
	return cloneScenario(*s.Base), nil
}

// cloneScenario deep-copies a scenario spec through JSON (the spec is
// designed to round-trip losslessly).
func cloneScenario(sp scenario.Spec) scenario.Spec {
	data, err := json.Marshal(sp)
	if err != nil {
		panic(fmt.Sprintf("sweep: cloning scenario: %v", err))
	}
	var out scenario.Spec
	if err := json.Unmarshal(data, &out); err != nil {
		panic(fmt.Sprintf("sweep: cloning scenario: %v", err))
	}
	return out
}

// ParamNames lists the sweepable parameters in display order.
func ParamNames() []string {
	return []string{
		"preset", "seed", "records", "pps", "workload", "trace",
		"placement", "k",
		"id_bits", "m", "t", "ttl_ms", "ttl_ns", "duration_ms",
		"loss_prob", "dup_prob", "reorder_prob", "reorder_delay_ns", "extra_latency_ns",
		"control_loss_prob", "restart_down_ms",
	}
}

var knownParams = func() map[string]bool {
	m := make(map[string]bool)
	for _, p := range ParamNames() {
		m[p] = true
	}
	return m
}()

// impairmentParams are the axes Axis.Links may scope.
var impairmentParams = map[string]bool{
	"loss_prob": true, "dup_prob": true, "reorder_prob": true,
	"reorder_delay_ns": true, "extra_latency_ns": true,
}

// Expand validates the sweep and materialises the grid: the cartesian
// product of the axes in row-major order (first axis slowest), each
// cell a deep copy of the base with its coordinates applied in axis
// order.
func Expand(s Spec) ([]Cell, error) {
	base, err := s.ResolveBase()
	if err != nil {
		return nil, err
	}
	if s.Seed != 0 {
		base.Seed = s.Seed
	}
	if base.Seed == 0 {
		base.Seed = 1
	}

	total := 1
	for i, ax := range s.Axes {
		if !knownParams[ax.Param] {
			return nil, fmt.Errorf("axis %d: unknown param %q (known: %s)", i, ax.Param, strings.Join(ParamNames(), ", "))
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("axis %d (%s): no values", i, ax.Param)
		}
		if ax.Param == "preset" && i != 0 {
			return nil, fmt.Errorf("axis %d: the preset axis replaces the whole topology and must come first", i)
		}
		if len(ax.Links) > 0 && !impairmentParams[ax.Param] {
			return nil, fmt.Errorf("axis %d: links only scopes link-impairment params, not %q", i, ax.Param)
		}
		for j := range s.Axes[:i] {
			if s.Axes[j].Param == ax.Param {
				return nil, fmt.Errorf("axis %d: param %q repeated", i, ax.Param)
			}
		}
		if total > MaxCells/len(ax.Values) {
			return nil, fmt.Errorf("grid exceeds %d cells", MaxCells)
		}
		total *= len(ax.Values)
	}

	cells := make([]Cell, 0, total)
	coords := make([]int, len(s.Axes))
	for idx := 0; idx < total; idx++ {
		// Decode idx into per-axis indices, first axis slowest.
		rem := idx
		for a := len(s.Axes) - 1; a >= 0; a-- {
			coords[a] = rem % len(s.Axes[a].Values)
			rem /= len(s.Axes[a].Values)
		}
		cell := Cell{Index: idx, Spec: cloneScenario(base)}
		var nameParts []string
		for a, ax := range s.Axes {
			p := Param{Param: ax.Param, Value: ax.Values[coords[a]]}
			cell.Params = append(cell.Params, p)
			nameParts = append(nameParts, p.Param+"="+p.Value.String())
			if err := applyParam(&cell.Spec, ax, p.Value); err != nil {
				return nil, fmt.Errorf("cell %d (%s): %w", idx, strings.Join(nameParts, ","), err)
			}
		}
		cell.Name = strings.Join(nameParts, ",")
		cell.Seed = cell.Spec.Seed + s.SeedStride*int64(idx)
		cell.Spec.Seed = cell.Seed
		if cell.Name != "" {
			cell.Spec.Name = base.Name + "/" + cell.Name
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// wantNum extracts a numeric axis value or explains the mismatch.
func wantNum(param string, v Value) (float64, error) {
	if v.IsStr {
		return 0, fmt.Errorf("param %q wants a number, got %q", param, v.Str)
	}
	return v.Num, nil
}

// wantInt additionally requires an integer.
func wantInt(param string, v Value) (int, error) {
	n, err := wantNum(param, v)
	if err != nil {
		return 0, err
	}
	if n != math.Trunc(n) {
		return 0, fmt.Errorf("param %q wants an integer, got %v", param, n)
	}
	return int(n), nil
}

// wantStr extracts a string axis value.
func wantStr(param string, v Value) (string, error) {
	if !v.IsStr {
		return "", fmt.Errorf("param %q wants a string, got %v", param, v.Num)
	}
	return v.Str, nil
}

// applyParam writes one coordinate into a scenario spec.
func applyParam(sp *scenario.Spec, ax Axis, v Value) error {
	switch ax.Param {
	case "preset":
		name, err := wantStr(ax.Param, v)
		if err != nil {
			return err
		}
		repl, ok := scenario.Preset(name)
		if !ok {
			return fmt.Errorf("unknown scenario preset %q", name)
		}
		repl.Seed = sp.Seed
		*sp = repl
	case "seed":
		n, err := wantInt(ax.Param, v)
		if err != nil {
			return err
		}
		sp.Seed = int64(n)
	case "records":
		n, err := wantInt(ax.Param, v)
		if err != nil {
			return err
		}
		for i := range sp.Traffic {
			sp.Traffic[i].Records = n
		}
	case "pps":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		for i := range sp.Traffic {
			sp.Traffic[i].PPS = n
		}
	case "workload":
		name, err := wantStr(ax.Param, v)
		if err != nil {
			return err
		}
		for i := range sp.Traffic {
			sp.Traffic[i].Workload = name
		}
	case "trace":
		path, err := wantStr(ax.Param, v)
		if err != nil {
			return err
		}
		for i := range sp.Traffic {
			sp.Traffic[i].Workload = scenario.WorkloadTrace
			sp.Traffic[i].Trace = path
		}
	case "placement":
		name, err := wantStr(ax.Param, v)
		if err != nil {
			return err
		}
		if !placement.Strategy(name).Valid() {
			return fmt.Errorf("param %q: unknown strategy %q", ax.Param, name)
		}
		if sp.Topology == nil {
			return fmt.Errorf("param %q needs a base scenario with a topology block", ax.Param)
		}
		if sp.Placement == nil {
			sp.Placement = &scenario.PlacementSpec{}
		}
		sp.Placement.Strategy = name
	case "k":
		n, err := wantInt(ax.Param, v)
		if err != nil {
			return err
		}
		if sp.Topology == nil {
			return fmt.Errorf("param %q needs a base scenario with a topology block", ax.Param)
		}
		sp.Topology.K = n
	case "id_bits":
		n, err := wantInt(ax.Param, v)
		if err != nil {
			return err
		}
		sp.Codec.IDBits = n
	case "m":
		n, err := wantInt(ax.Param, v)
		if err != nil {
			return err
		}
		sp.Codec.M = n
	case "t":
		n, err := wantInt(ax.Param, v)
		if err != nil {
			return err
		}
		sp.Codec.T = n
	case "ttl_ms":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		sp.Controller.TTLNs = int64(n * 1e6)
	case "ttl_ns":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		sp.Controller.TTLNs = int64(n)
	case "duration_ms":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		sp.DurationNs = int64(n * 1e6)
	case "control_loss_prob":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		if sp.Faults == nil {
			sp.Faults = &netsim.FaultSpec{}
		}
		sp.Faults.ControlLossProb = n
	case "restart_down_ms":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		if sp.Faults == nil || len(sp.Faults.Restarts) == 0 {
			return fmt.Errorf("param %q needs a base scenario with scheduled restarts", ax.Param)
		}
		for i := range sp.Faults.Restarts {
			sp.Faults.Restarts[i].DownNs = int64(n * 1e6)
		}
	case "loss_prob", "dup_prob", "reorder_prob", "reorder_delay_ns", "extra_latency_ns":
		n, err := wantNum(ax.Param, v)
		if err != nil {
			return err
		}
		return impairLinks(sp, ax, n)
	default:
		return fmt.Errorf("unknown param %q", ax.Param)
	}
	return nil
}

// impairLinks applies one impairment value to the axis's target links:
// the explicit indices, every switch-to-switch link, or — in
// topologies with no transit hop — every link.
func impairLinks(sp *scenario.Spec, ax Axis, v float64) error {
	idx := ax.Links
	if len(idx) == 0 {
		for i, l := range sp.Links {
			if strings.Contains(l.A, ":") && strings.Contains(l.B, ":") {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			for i := range sp.Links {
				idx = append(idx, i)
			}
		}
	}
	for _, i := range idx {
		if i < 0 || i >= len(sp.Links) {
			return fmt.Errorf("param %q: link index %d out of range (topology has %d links)", ax.Param, i, len(sp.Links))
		}
		l := &sp.Links[i]
		switch ax.Param {
		case "loss_prob":
			l.LossProb = v
		case "dup_prob":
			l.DupProb = v
		case "reorder_prob":
			l.ReorderProb = v
		case "reorder_delay_ns":
			l.ReorderDelayNs = int64(v)
		case "extra_latency_ns":
			l.ExtraLatencyNs = int64(v)
		}
	}
	return nil
}
