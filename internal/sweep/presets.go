package sweep

// Preset returns a built-in sweep. Each is a copy, so callers may
// mutate freely (the CLI applies flag overrides on top).
func Preset(name string) (Spec, bool) {
	switch name {
	case "loss-sensitivity":
		// The paper's loss-sensitivity family: the chain topology with
		// the compressed hop degraded from lossless to 10 % loss.
		// Delivery rate falls with loss while the learning delay stays
		// pinned to the control-plane model (BfRt writes don't
		// traverse the data path) — the claim §7 makes for one
		// operating point, swept across the axis.
		return Spec{
			Name:   "loss-sensitivity",
			Preset: "chain3",
			Axes: []Axis{
				{Param: "records", Values: Nums(10_000)},
				{Param: "loss_prob", Values: Nums(0, 0.001, 0.01, 0.02, 0.05, 0.1)},
			},
		}, true

	case "dict-size":
		// The dictionary-size family (paper Figure 3 / ablation A3):
		// compression ratio of the sensor workload as the identifier
		// width — and so the encoder dictionary capacity 2^id_bits —
		// shrinks below the workload's working set. LRU pressure turns
		// type-3 hits back into type-2 traffic.
		return Spec{
			Name:   "dict-size",
			Preset: "single",
			Axes: []Axis{
				{Param: "records", Values: Nums(40_000)},
				{Param: "id_bits", Values: Nums(6, 8, 10, 12, 15)},
			},
		}, true

	case "ttl":
		// Dictionary aging: a bounded run with traffic that stops
		// early, swept across TTLs. Short TTLs expire the learned
		// mappings (identifiers return to the pool), long ones keep
		// them warm.
		return Spec{
			Name:   "ttl",
			Preset: "single",
			Axes: []Axis{
				{Param: "records", Values: Nums(4_000)},
				{Param: "duration_ms", Values: Nums(40)},
				{Param: "ttl_ms", Values: Nums(2, 5, 10, 50)},
			},
		}, true

	case "chaos":
		// The fault grid: control-channel loss × decoder reboot time on
		// the lossy-control topology. Every cell must report zero
		// stranded compressed packets, and the matrix must stay
		// byte-identical across worker counts and repeat runs (the CI
		// chaos-smoke job asserts both).
		return Spec{
			Name:   "chaos",
			Preset: "lossy-control",
			Axes: []Axis{
				{Param: "records", Values: Nums(8_000)},
				{Param: "control_loss_prob", Values: Nums(0, 0.1, 0.3)},
				{Param: "restart_down_ms", Values: Nums(1, 2, 5, 10)},
			},
		}, true

	case "smoke":
		// The CI grid: 2×2 cells small enough to run twice per push,
		// asserting the matrix is byte-identical across runs and
		// worker counts.
		return Spec{
			Name:   "smoke",
			Preset: "chain3",
			Axes: []Axis{
				{Param: "records", Values: Nums(2_000)},
				{Param: "loss_prob", Values: Nums(0, 0.01)},
				{Param: "id_bits", Values: Nums(8, 15)},
			},
		}, true
	case "placement":
		// The dictionary-placement matrix: every placement strategy ×
		// identifier scarcity on the k=4 fat-tree under churn. Greedy
		// must beat uniform on aggregate compression ratio wherever
		// identifiers are scarce — uniform wastes shares on deep-fabric
		// switches that only ever see already-compressed traffic. The
		// CI topo-smoke job asserts the matrix is byte-identical across
		// worker counts and repeat runs.
		return Spec{
			Name:   "placement",
			Preset: "fat-tree",
			Axes: []Axis{
				{Param: "placement", Values: []Value{Str("uniform"), Str("greedy"), Str("edge"), Str("core")}},
				{Param: "id_bits", Values: Nums(6, 8, 10, 15)},
			},
		}, true
	}
	return Spec{}, false
}

// PresetNames lists the built-in sweeps in display order.
func PresetNames() []string {
	return []string{"loss-sensitivity", "dict-size", "ttl", "chaos", "smoke", "placement"}
}
