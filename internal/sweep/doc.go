// Package sweep runs families of scenarios: a declarative sweep spec
// names a base scenario and a set of axes (loss rate, dictionary
// size, TTL, workload, topology preset, …), expands to the cartesian
// grid of scenario Specs, and executes the cells concurrently across
// a worker pool. Every cell is a self-contained deterministic
// simulation, so N cells scale near-linearly with cores and the
// aggregated matrix is byte-identical for any worker count.
//
// This is the engine behind `zipline-sim sweep` and the multi-run
// families of the paper's evaluation (§7): compression ratio and
// learning delay are properties of parameter ranges, not single runs,
// and the network-wide picture of Packet-Level Network Compression
// (Beirami et al.) only emerges from such sweeps.
package sweep
