package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"zipline/internal/scenario"
)

// Options tunes sweep execution.
type Options struct {
	// Workers sizes the pool (0 = GOMAXPROCS). Each cell is one
	// self-contained deterministic simulation, so the matrix is
	// byte-identical for every worker count.
	Workers int
	// Progress, when set, observes each completed cell (called from
	// worker goroutines; done counts completions, not indices).
	Progress func(done, total int)
}

// Derived is the per-cell analysis row: the headline columns the
// paper's figures plot, computed from the cell's report.
type Derived struct {
	// CompressionRatio is encode payload bytes out over in.
	CompressionRatio float64 `json:"compression_ratio"`
	// DeliveryRate is delivered over offered frames.
	DeliveryRate float64 `json:"delivery_rate"`
	// GoodputGbps sums the receive goodput of every host.
	GoodputGbps float64 `json:"goodput_gbps"`
	// LearningDelayP50Ms/P99Ms are the control plane's per-basis
	// learning-delay percentiles (-1 when nothing was learned).
	LearningDelayP50Ms float64 `json:"learning_delay_p50_ms"`
	LearningDelayP99Ms float64 `json:"learning_delay_p99_ms"`
	// DigestOverhead is control-plane digest bytes per delivered
	// payload byte — the tax the learning loop adds to the network.
	DigestOverhead float64 `json:"digest_overhead"`
	// Events is the simulator's scheduled-event count (engine load).
	Events uint64 `json:"events"`
}

// CellResult is one completed grid point.
type CellResult struct {
	Index   int             `json:"index"`
	Name    string          `json:"name"`
	Params  []Param         `json:"params"`
	Seed    int64           `json:"seed"`
	Derived Derived         `json:"derived"`
	Report  scenario.Report `json:"report"`
}

// Matrix is the sweep's aggregated output: cells in grid order, so
// identical sweeps serialise to identical bytes no matter how many
// workers ran them.
type Matrix struct {
	Sweep string       `json:"sweep"`
	Seed  int64        `json:"seed"`
	Axes  []Axis       `json:"axes"`
	Cells []CellResult `json:"cells"`
}

// Run expands the sweep and executes every cell across the worker
// pool.
func Run(spec Spec, opt Options) (*Matrix, error) {
	cells, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	cellErrs := make([]error, len(cells))
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				results[i], cellErrs[i] = runCell(cells[i])
				if opt.Progress != nil {
					opt.Progress(int(done.Add(1)), len(cells))
				}
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(cellErrs...); err != nil {
		return nil, err
	}

	name := spec.Name
	if name == "" {
		name = "unnamed"
	}
	seed := spec.Seed
	if len(cells) > 0 {
		seed = cells[0].Seed
	}
	return &Matrix{Sweep: name, Seed: seed, Axes: spec.Axes, Cells: results}, nil
}

// runCell builds and runs one cell's scenario and derives its row.
func runCell(c Cell) (CellResult, error) {
	sc, err := scenario.Build(c.Spec)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell %d (%s): %w", c.Index, c.Name, err)
	}
	rep := sc.Run()
	return CellResult{
		Index:   c.Index,
		Name:    c.Name,
		Params:  c.Params,
		Seed:    c.Seed,
		Derived: derive(rep),
		Report:  rep,
	}, nil
}

// derive computes the analysis columns from one report.
func derive(r scenario.Report) Derived {
	d := Derived{
		CompressionRatio:   r.CompressionRatio,
		DeliveryRate:       r.DeliveryRate,
		LearningDelayP50Ms: -1,
		LearningDelayP99Ms: -1,
		Events:             r.Events,
	}
	for _, h := range r.Hosts {
		d.GoodputGbps += h.GoodputGbps
	}
	if l := r.Learning; l != nil {
		if l.DelayN > 0 {
			d.LearningDelayP50Ms = l.DelayP50Ms
			d.LearningDelayP99Ms = l.DelayP99Ms
		}
		if r.Delivered.PayloadBytes > 0 {
			d.DigestOverhead = float64(l.DigestBytes) / float64(r.Delivered.PayloadBytes)
		}
	}
	return d
}

// MarshalIndent renders the matrix as stable, diff-friendly JSON (no
// map-keyed sections anywhere in the tree, so the byte stream is a
// pure function of sweep spec and seed).
func (m *Matrix) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteText renders the matrix for humans: one row per cell with the
// derived columns.
func (m *Matrix) WriteText(w io.Writer) {
	fmt.Fprintf(w, "sweep %s (seed %d): %d cells\n", m.Sweep, m.Seed, len(m.Cells))
	fmt.Fprintf(w, "%-4s %-40s %8s %9s %9s %8s %8s %10s %10s\n",
		"idx", "cell", "ratio", "delivery", "goodput", "p50ms", "p99ms", "digest/B", "events")
	for _, c := range m.Cells {
		name := c.Name
		if name == "" {
			name = "(base)"
		}
		pct := func(v float64) string {
			if v < 0 {
				return "-"
			}
			return fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(w, "%-4d %-40s %8.4f %9.4f %9.4f %8s %8s %10.5f %10d\n",
			c.Index, name, c.Derived.CompressionRatio, c.Derived.DeliveryRate,
			c.Derived.GoodputGbps, pct(c.Derived.LearningDelayP50Ms),
			pct(c.Derived.LearningDelayP99Ms), c.Derived.DigestOverhead, c.Derived.Events)
	}
}
