package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"zipline/internal/packet"
	"zipline/internal/pcap"
	"zipline/internal/scenario"
	"zipline/internal/trace"
)

// smokeSpec is a fast 2×2 grid for executor tests.
func smokeSpec() Spec {
	return Spec{
		Name:   "test",
		Preset: "chain3",
		Axes: []Axis{
			{Param: "records", Values: Nums(1_000)},
			{Param: "loss_prob", Values: Nums(0, 0.01)},
			{Param: "id_bits", Values: Nums(8, 15)},
		},
	}
}

// TestExpandGrid: cell count is the axis product, order is row-major
// with the first axis slowest, and params land in axis order.
func TestExpandGrid(t *testing.T) {
	spec := Spec{
		Preset: "chain3",
		Axes: []Axis{
			{Param: "loss_prob", Values: Nums(0, 0.01, 0.1)},
			{Param: "id_bits", Values: Nums(8, 15)},
		},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	wantNames := []string{
		"loss_prob=0,id_bits=8", "loss_prob=0,id_bits=15",
		"loss_prob=0.01,id_bits=8", "loss_prob=0.01,id_bits=15",
		"loss_prob=0.1,id_bits=8", "loss_prob=0.1,id_bits=15",
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d: index %d", i, c.Index)
		}
		if c.Name != wantNames[i] {
			t.Errorf("cell %d: name %q, want %q", i, c.Name, wantNames[i])
		}
		if len(c.Params) != 2 || c.Params[0].Param != "loss_prob" || c.Params[1].Param != "id_bits" {
			t.Errorf("cell %d: params out of axis order: %+v", i, c.Params)
		}
		if c.Spec.Codec.IDBits != int(c.Params[1].Value.Num) {
			t.Errorf("cell %d: id_bits not applied: spec %d, param %v", i, c.Spec.Codec.IDBits, c.Params[1].Value)
		}
		// chain3's two inter-switch links carry the impairment; the
		// host links stay clean.
		want := c.Params[0].Value.Num
		if c.Spec.Links[1].LossProb != want || c.Spec.Links[2].LossProb != want {
			t.Errorf("cell %d: loss not on transit links: %+v", i, c.Spec.Links)
		}
		if c.Spec.Links[0].LossProb != 0 || c.Spec.Links[3].LossProb != 0 {
			t.Errorf("cell %d: loss leaked onto host links", i)
		}
	}
}

// TestExpandSeedDerivation: stride 0 keeps every cell on the base
// seed; a stride spreads them; a seed axis overrides the base.
func TestExpandSeedDerivation(t *testing.T) {
	spec := Spec{
		Preset: "chain3",
		Seed:   42,
		Axes:   []Axis{{Param: "loss_prob", Values: Nums(0, 0.01, 0.1)}},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if c.Seed != 42 || c.Spec.Seed != 42 {
			t.Errorf("cell %d: seed %d, want 42 (stride 0)", i, c.Seed)
		}
	}

	spec.SeedStride = 7
	cells, err = Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if want := int64(42 + 7*i); c.Seed != want || c.Spec.Seed != want {
			t.Errorf("cell %d: seed %d, want %d", i, c.Seed, want)
		}
	}

	seedAxis := Spec{
		Preset: "chain3",
		Axes:   []Axis{{Param: "seed", Values: Nums(5, 6)}},
	}
	cells, err = Expand(seedAxis)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Seed != 5 || cells[1].Seed != 6 {
		t.Fatalf("seed axis ignored: %d, %d", cells[0].Seed, cells[1].Seed)
	}
}

// TestExpandRejects: structural sweep errors surface at expansion.
func TestExpandRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no base", Spec{Axes: []Axis{{Param: "loss_prob", Values: Nums(0)}}}},
		{"both bases", Spec{Preset: "chain3", Base: &scenario.Spec{}, Axes: nil}},
		{"unknown preset", Spec{Preset: "nope"}},
		{"unknown param", Spec{Preset: "chain3", Axes: []Axis{{Param: "warp_factor", Values: Nums(9)}}}},
		{"empty values", Spec{Preset: "chain3", Axes: []Axis{{Param: "loss_prob"}}}},
		{"repeated param", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "loss_prob", Values: Nums(0)}, {Param: "loss_prob", Values: Nums(1)}}}},
		{"preset axis not first", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "loss_prob", Values: Nums(0)}, {Param: "preset", Values: []Value{Str("single")}}}}},
		{"string for numeric param", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "loss_prob", Values: []Value{Str("lots")}}}}},
		{"float for integer param", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "id_bits", Values: Nums(8.5)}}}},
		{"number for string param", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "workload", Values: Nums(3)}}}},
		{"link index out of range", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "loss_prob", Values: Nums(0.1), Links: []int{9}}}}},
		{"links on non-impairment param", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "records", Values: Nums(100), Links: []int{1}}}}},
		{"grid too large", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "loss_prob", Values: Nums(make([]float64, 100)...)},
			{Param: "dup_prob", Values: Nums(make([]float64, 100)...)}}}},
		{"placement axis without topology", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "placement", Values: []Value{Str("greedy")}}}}},
		{"k axis without topology", Spec{Preset: "chain3", Axes: []Axis{
			{Param: "k", Values: Nums(4)}}}},
		{"unknown placement strategy", Spec{Preset: "fat-tree", Axes: []Axis{
			{Param: "placement", Values: []Value{Str("psychic")}}}}},
	}
	for _, tc := range cases {
		if _, err := Expand(tc.spec); err == nil {
			t.Errorf("%s: expansion passed", tc.name)
		}
	}
}

// TestNullAxisValueRejected: a null in an axis value list must fail
// the load, not run a cell at an unrequested zero.
func TestNullAxisValueRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	spec := `{"name":"x","preset":"chain3","axes":[{"param":"loss_prob","values":[0.1,null]}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "null") {
		t.Fatalf("null axis value loaded: %v", err)
	}
}

// TestExpandPresetAxis: a preset axis swaps the whole topology per
// cell, and later axes apply on top of it.
func TestExpandPresetAxis(t *testing.T) {
	spec := Spec{
		Preset: "chain3",
		Axes: []Axis{
			{Param: "preset", Values: []Value{Str("single"), Str("chain3")}},
			{Param: "records", Values: Nums(500)},
		},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells[0].Spec.Switches) != 1 || len(cells[1].Spec.Switches) != 3 {
		t.Fatalf("preset axis did not swap topologies: %d and %d switches",
			len(cells[0].Spec.Switches), len(cells[1].Spec.Switches))
	}
	for i, c := range cells {
		if c.Spec.Traffic[0].Records != 500 {
			t.Errorf("cell %d: records axis not applied over preset", i)
		}
	}
}

// TestPlacementAxes: the placement and k axes rewrite the topology
// block per cell, and the built-in placement preset spans every
// strategy × identifier width.
func TestPlacementAxes(t *testing.T) {
	cells, err := Expand(Spec{
		Preset: "fat-tree",
		Axes: []Axis{
			{Param: "placement", Values: []Value{Str("uniform"), Str("core")}},
			{Param: "k", Values: Nums(4, 8)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for i, want := range []struct {
		strategy string
		k        int
	}{{"uniform", 4}, {"uniform", 8}, {"core", 4}, {"core", 8}} {
		c := cells[i]
		if c.Spec.Placement.Strategy != want.strategy || c.Spec.Topology.K != want.k {
			t.Errorf("cell %d: placement=%s k=%d, want %s k=%d",
				i, c.Spec.Placement.Strategy, c.Spec.Topology.K, want.strategy, want.k)
		}
	}

	preset, ok := Preset("placement")
	if !ok {
		t.Fatal("placement sweep preset missing")
	}
	cells, err = Expand(preset)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("placement preset expands to %d cells, want 16", len(cells))
	}
}

// TestRunWorkersIdentical: the acceptance bar — the matrix must be
// byte-identical between a serial and a 4-worker run of the same
// sweep.
func TestRunWorkersIdentical(t *testing.T) {
	spec := smokeSpec()
	serial, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("workers=1 and workers=4 diverged:\n%s\n---\n%s", a, b)
	}
}

// TestRunDerivedColumns: the loss axis must show up in the derived
// delivery column, and lossless cells must deliver everything.
func TestRunDerivedColumns(t *testing.T) {
	m, err := Run(Spec{
		Preset: "chain3",
		Axes: []Axis{
			{Param: "records", Values: Nums(2_000)},
			{Param: "loss_prob", Values: Nums(0, 0.2)},
		},
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean, lossy := m.Cells[0].Derived, m.Cells[1].Derived
	if clean.DeliveryRate != 1 {
		t.Fatalf("lossless delivery = %v", clean.DeliveryRate)
	}
	if lossy.DeliveryRate >= clean.DeliveryRate {
		t.Fatalf("20%% loss did not reduce delivery: %v vs %v", lossy.DeliveryRate, clean.DeliveryRate)
	}
	for i, c := range m.Cells {
		d := c.Derived
		if d.CompressionRatio <= 0 || d.CompressionRatio >= 1 {
			t.Errorf("cell %d: compression ratio %v", i, d.CompressionRatio)
		}
		if d.LearningDelayP50Ms < 1.6 || d.LearningDelayP50Ms > 1.95 {
			t.Errorf("cell %d: p50 learning delay %v ms, want ≈1.77", i, d.LearningDelayP50Ms)
		}
		if d.Events == 0 || d.Events != c.Report.Events {
			t.Errorf("cell %d: events column %d (report %d)", i, d.Events, c.Report.Events)
		}
		if d.GoodputGbps <= 0 || d.DigestOverhead <= 0 {
			t.Errorf("cell %d: goodput %v, digest overhead %v", i, d.GoodputGbps, d.DigestOverhead)
		}
	}
}

// TestRunProgress: every completed cell reports once.
func TestRunProgress(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	spec := smokeSpec()
	if _, err := Run(spec, Options{Workers: 2, Progress: func(done, total int) {
		mu.Lock()
		calls++
		mu.Unlock()
		if total != 4 || done < 1 || done > 4 {
			t.Errorf("progress(%d, %d)", done, total)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("progress called %d times, want 4", calls)
	}
}

// TestRunBuildErrorPropagates: a cell whose scenario cannot build
// fails the sweep with the cell named.
func TestRunBuildErrorPropagates(t *testing.T) {
	_, err := Run(Spec{
		Preset: "chain3",
		// TTL without a bounded duration is rejected by the scenario
		// validator.
		Axes: []Axis{{Param: "ttl_ms", Values: Nums(5)}},
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("sweep with unbuildable cell succeeded")
	}
	if !strings.Contains(err.Error(), "cell 0") {
		t.Fatalf("error does not name the cell: %v", err)
	}
}

// TestSpecJSONRoundTrip: a sweep spec survives disk, including mixed
// numeric and string axis values.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Name:   "rt",
		Preset: "chain3",
		Axes: []Axis{
			{Param: "workload", Values: []Value{Str("sensor"), Str("dns")}},
			{Param: "loss_prob", Values: Nums(0, 0.01), Links: []int{1}},
		},
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, loaded) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", spec, loaded)
	}
}

// TestTraceWorkloadSweep: a sweep over a tracegen-style pcap replays
// the capture through the grid — the trace-driven workload axis.
func TestTraceWorkloadSweep(t *testing.T) {
	pcapPath := writeSensorPcap(t, 1_500)
	m, err := Run(Spec{
		Name: "trace",
		Base: &scenario.Spec{
			Name: "trace-base",
			Hosts: []scenario.HostSpec{
				{Name: "sender", MaxPPS: 500_000},
				{Name: "sink"},
			},
			Switches: []scenario.SwitchSpec{
				{Name: "sw", Ports: []scenario.PortSpec{
					{Port: 0, Role: scenario.RoleEncode, Out: 1},
					{Port: 1, Role: scenario.RoleForward, Out: 0},
				}},
			},
			Links: []scenario.LinkSpec{
				{A: "sender", B: "sw:0"},
				{A: "sw:1", B: "sink"},
			},
			Traffic: []scenario.TrafficSpec{{
				From: "sender", To: "sink",
				Workload: scenario.WorkloadTrace, Trace: pcapPath,
			}},
		},
		Axes: []Axis{{Param: "loss_prob", Values: Nums(0, 0.05)}},
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Cells {
		if c.Report.Offered.Frames != 1_500 {
			t.Errorf("cell %d: offered %d frames, want the full 1500-frame capture", i, c.Report.Offered.Frames)
		}
		if c.Report.Encode.RawToType3 == 0 {
			t.Errorf("cell %d: replayed trace never compressed", i)
		}
	}
	if m.Cells[1].Derived.DeliveryRate >= m.Cells[0].Derived.DeliveryRate {
		t.Fatal("loss axis inert under trace replay")
	}
}

// writeSensorPcap emits a small tracegen-equivalent capture.
func writeSensorPcap(t *testing.T, records int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sensor.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Sensor(trace.SensorConfig{Records: records, Seed: 1})
	src := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x01}
	dst := packet.MAC{0x02, 0x5A, 0, 0, 0, 0x02}
	if err := tr.WritePcap(w, src, dst, 2_000); err != nil {
		t.Fatal(err)
	}
	return path
}
