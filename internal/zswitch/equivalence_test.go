package zswitch

import (
	"bytes"
	"math/rand"
	"testing"

	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/tofino"
)

// End-to-end dataplane/library equivalence: a chunk transformed by
// the switch program's Encode role must decode identically through
// the library codec (internal/gd), and a packet assembled with the
// library codec must decode identically through the Decode role. The
// switch and the software stack share one codec by construction;
// these tests pin the property at the wire-format boundary where the
// two implementations could drift.

// processOne pushes a frame through a pipeline's port 0 and returns
// the single emitted frame.
func processOne(t *testing.T, pl *tofino.Pipeline, frame []byte) []byte {
	t.Helper()
	emits := pl.Process(0, frame, 0)
	if len(emits) != 1 {
		t.Fatalf("%d emissions, want 1", len(emits))
	}
	return emits[0].Frame
}

// TestEncodeRoleDecodesViaLibrary: switch-encoded type 2 and type 3
// payloads must reconstruct through gd.Codec.MergeChunk alone.
func TestEncodeRoleDecodesViaLibrary(t *testing.T) {
	for _, cfg := range []Config{{}, {M: 6, IDBits: 7}, {M: 8, T: 2}} {
		encProg, _, enc, _ := loadPair(t, cfg)
		codec := encProg.Codec()
		format := encProg.Format()
		rng := rand.New(rand.NewSource(77))

		for trial := 0; trial < 50; trial++ {
			chunk := make([]byte, codec.ChunkBytes())
			rng.Read(chunk)
			tail := make([]byte, rng.Intn(16))
			rng.Read(tail)

			// Unknown basis: the encoder emits type 2.
			out := processOne(t, enc, rawFrame(append(append([]byte(nil), chunk...), tail...)))
			hdr, payload, err := packet.ParseHeader(out)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Type() != packet.TypeUncompressed {
				t.Fatalf("trial %d: type %v, want type 2", trial, hdr.Type())
			}
			s, gotTail, err := format.ParseType2(payload)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := codec.MergeChunk(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged, chunk) || !bytes.Equal(gotTail, tail) {
				t.Fatalf("trial %d: library decode of switch type 2 diverged", trial)
			}

			// Known basis: install the mapping, re-send, expect type 3.
			id := uint32(trial)
			if err := InstallBasisToID(enc, s.Basis, id, 0); err != nil {
				t.Fatal(err)
			}
			out = processOne(t, enc, rawFrame(append(append([]byte(nil), chunk...), tail...)))
			hdr, payload, err = packet.ParseHeader(out)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Type() != packet.TypeCompressed {
				t.Fatalf("trial %d: type %v after install, want type 3", trial, hdr.Type())
			}
			c, gotTail, err := format.ParseType3(payload)
			if err != nil {
				t.Fatal(err)
			}
			if c.ID != id {
				t.Fatalf("trial %d: identifier %d, want %d", trial, c.ID, id)
			}
			merged, err = codec.MergeChunk(gd.Split{
				Basis: s.Basis, Deviation: c.Deviation, Extra: c.Extra,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged, chunk) || !bytes.Equal(gotTail, tail) {
				t.Fatalf("trial %d: library decode of switch type 3 diverged", trial)
			}
		}
	}
}

// TestLibraryEncodesDecodeRole: frames assembled from gd.Codec splits
// with packet.Format must reconstruct through the switch Decode role.
func TestLibraryEncodesDecodeRole(t *testing.T) {
	for _, cfg := range []Config{{}, {M: 6, IDBits: 7}, {M: 8, T: 2}} {
		prog, err := New(Config{
			M: cfg.M, IDBits: cfg.IDBits, T: cfg.T,
			Roles:   map[tofino.Port]Role{0: RoleDecode},
			PortMap: map[tofino.Port]tofino.Port{0: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := tofino.Load(tofino.Config{Name: "dec-lib"}, prog)
		if err != nil {
			t.Fatal(err)
		}
		codec := prog.Codec()
		format := prog.Format()
		rng := rand.New(rand.NewSource(78))

		for trial := 0; trial < 50; trial++ {
			chunk := make([]byte, codec.ChunkBytes())
			rng.Read(chunk)
			tail := make([]byte, rng.Intn(16))
			rng.Read(tail)
			s, err := codec.SplitChunk(chunk)
			if err != nil {
				t.Fatal(err)
			}

			// Library-built type 2 through the switch decoder.
			p := packet.AppendHeader(nil, packet.Header{
				Dst: testMACs.b, Src: testMACs.a, EtherType: packet.EtherTypeUncompressed,
			})
			p = format.AppendType2(p, s)
			p = append(p, tail...)
			out := processOne(t, pl, p)
			hdr, payload, err := packet.ParseHeader(out)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.EtherType != packet.EtherTypeRaw {
				t.Fatalf("trial %d: decoded EtherType %#x", trial, hdr.EtherType)
			}
			if !bytes.Equal(payload, append(append([]byte(nil), chunk...), tail...)) {
				t.Fatalf("trial %d: switch decode of library type 2 diverged", trial)
			}

			// Library-built type 3, after installing the dictionary
			// entry the decoder needs.
			id := uint32(trial)
			if err := InstallIDToBasis(pl, id, s.Basis, 0); err != nil {
				t.Fatal(err)
			}
			p = packet.AppendHeader(nil, packet.Header{
				Dst: testMACs.b, Src: testMACs.a, EtherType: packet.EtherTypeCompressed,
			})
			p = format.AppendType3(p, packet.Compressed{
				Deviation: s.Deviation, Extra: s.Extra, ID: id,
			})
			p = append(p, tail...)
			out = processOne(t, pl, p)
			hdr, payload, err = packet.ParseHeader(out)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.EtherType != packet.EtherTypeRaw {
				t.Fatalf("trial %d: decoded EtherType %#x", trial, hdr.EtherType)
			}
			if !bytes.Equal(payload, append(append([]byte(nil), chunk...), tail...)) {
				t.Fatalf("trial %d: switch decode of library type 3 diverged", trial)
			}
		}
	}
}
