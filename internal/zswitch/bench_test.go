package zswitch_test

import (
	"math/rand"
	"testing"

	"zipline/internal/packet"
	"zipline/internal/tofino"
	. "zipline/internal/zswitch"
)

// Dataplane hot-path benchmarks: packets per second through
// Program.Process for each role, steady state (dictionary warm, no
// digests). These are the numbers the tentpole optimises; the
// matching alloc-regression tests in alloc_test.go pin them at
// 0 allocs/op.

// benchPipeline loads a pipeline with one port in the given role.
func benchPipeline(b *testing.B, role Role) (*Program, *tofino.Pipeline) {
	b.Helper()
	prog, err := New(Config{
		Roles:   map[tofino.Port]Role{0: role},
		PortMap: map[tofino.Port]tofino.Port{0: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	pl, err := tofino.Load(tofino.Config{Name: "bench"}, prog)
	if err != nil {
		b.Fatal(err)
	}
	return prog, pl
}

func benchRawFrame(prog *Program, seed int64) []byte {
	payload := make([]byte, prog.Codec().ChunkBytes())
	rand.New(rand.NewSource(seed)).Read(payload)
	return packet.Frame(packet.Header{
		Dst:       packet.MAC{2, 0, 0, 0, 0, 2},
		Src:       packet.MAC{2, 0, 0, 0, 0, 1},
		EtherType: packet.EtherTypeRaw,
	}, payload)
}

// BenchmarkSwitchEncode measures the steady-state encode path: the
// basis is installed, so every packet takes the type-3 branch
// (syndrome + dictionary hit + compressed frame build).
func BenchmarkSwitchEncode(b *testing.B) {
	prog, pl := benchPipeline(b, RoleEncode)
	frame := benchRawFrame(prog, 1)
	// Warm the dictionary so the hot loop is pure type-3.
	emits := pl.Process(0, frame, 0)
	if len(emits) != 1 {
		b.Fatal("warmup emit count")
	}
	pl.DrainDigests()
	_, payload, err := packet.ParseHeader(frame)
	if err != nil {
		b.Fatal(err)
	}
	s, err := prog.Codec().SplitChunk(payload[:prog.Codec().ChunkBytes()])
	if err != nil {
		b.Fatal(err)
	}
	if err := InstallBasisToID(pl, s.Basis, 42, 0); err != nil {
		b.Fatal(err)
	}

	var scratch []tofino.Emit
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = pl.ProcessAppend(int64(i), frame, 0, scratch[:0])
		if len(scratch) != 1 {
			b.Fatal("emit count")
		}
	}
	reportPktsPerSec(b)
}

// BenchmarkSwitchDecode measures the steady-state decode path: a
// type-3 frame whose identifier is installed in the decoder table.
func BenchmarkSwitchDecode(b *testing.B) {
	encProg, encPl := benchPipeline(b, RoleEncode)
	raw := benchRawFrame(encProg, 2)
	_, payload, _ := packet.ParseHeader(raw)
	s, err := encProg.Codec().SplitChunk(payload[:encProg.Codec().ChunkBytes()])
	if err != nil {
		b.Fatal(err)
	}
	if err := InstallBasisToID(encPl, s.Basis, 7, 0); err != nil {
		b.Fatal(err)
	}
	emits := encPl.Process(0, raw, 0)
	if len(emits) != 1 {
		b.Fatal("encode emit count")
	}
	frame := append([]byte(nil), emits[0].Frame...)

	_, decPl := benchPipeline(b, RoleDecode)
	if err := InstallIDToBasis(decPl, 7, s.Basis, 0); err != nil {
		b.Fatal(err)
	}

	var scratch []tofino.Emit
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = decPl.ProcessAppend(int64(i), frame, 0, scratch[:0])
		if len(scratch) != 1 {
			b.Fatal("emit count")
		}
	}
	reportPktsPerSec(b)
}

// BenchmarkSwitchForward measures the no-op baseline: plain port
// forwarding of a raw frame.
func BenchmarkSwitchForward(b *testing.B) {
	prog, pl := benchPipeline(b, RoleForward)
	frame := benchRawFrame(prog, 3)

	var scratch []tofino.Emit
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = pl.ProcessAppend(int64(i), frame, 0, scratch[:0])
		if len(scratch) != 1 {
			b.Fatal("emit count")
		}
	}
	reportPktsPerSec(b)
}

func reportPktsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}
