// Package zswitch is the ZipLine switch program: the P4₁₆/TNA data
// plane of the paper (§4, §5) expressed against the tofino model.
//
// Per ingress port the program acts in one of three roles:
//
//   - Encode (paper Figure 1): compute the chunk's syndrome with the
//     CRC engine, flip the indicated bit, truncate to the basis; if
//     the basis→ID table knows the basis, emit a compressed type 3
//     packet, otherwise emit a type 2 packet and digest the unknown
//     basis up to the control plane.
//   - Decode (paper Figure 2): recover the basis (for type 3 via the
//     ID→basis table), restore the parity bits by running the
//     zero-padded basis through the same CRC, and flip the
//     syndrome-indicated bit to reconstruct the original chunk.
//   - Forward: plain switching, the "no op" baseline of §7.
//
// The program never writes its own tables: unknown bases travel to
// the control plane as digests and mappings come back through the
// control-plane API, with the latency consequences §7 measures
// (the 1.77 ms learning delay).
package zswitch

import (
	"encoding/binary"
	"fmt"

	"zipline/internal/bch"
	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/tofino"
)

// Role is the per-port behaviour of the program.
type Role int

// Port roles.
const (
	RoleForward Role = iota // no op: plain Ethernet switching
	RoleEncode              // compress arriving raw packets
	RoleDecode              // decompress arriving type 2/3 packets
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleForward:
		return "forward"
	case RoleEncode:
		return "encode"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Table and digest names, part of the control-plane contract.
const (
	// TableBasisToID is the encoder dictionary (basis → identifier).
	TableBasisToID = "basis_to_id"
	// TableIDToBasis is the decoder dictionary (identifier → basis).
	TableIDToBasis = "id_to_basis"
	// DigestNewBasis reports a basis missing from the encoder
	// dictionary.
	DigestNewBasis = "new_basis"
)

// Counter names. Packets are classified by how they are transformed
// (paper §5: "we add counters to our program to provide
// easily-accessible statistics").
const (
	CounterRawToType2 = "raw_to_type2" // encoded, basis unknown
	CounterRawToType3 = "raw_to_type3" // encoded and compressed
	CounterType2ToRaw = "type2_to_raw" // decoded from full basis
	CounterType3ToRaw = "type3_to_raw" // decoded via dictionary
	CounterForwarded  = "forwarded"    // no-op role or non-ZipLine
	CounterTooShort   = "too_short"    // payload smaller than a chunk
	CounterDecodeMiss = "decode_miss"  // type 3 with unknown ID (dropped)
	CounterDigests    = "digests"      // new-basis reports emitted
)

// Byte counters on the encode path. They count payload bytes entering
// and leaving the encode role for type-1 (raw) traffic, so
// out ÷ in is the exact compression ratio of the hop the encoder
// feeds — the quantity Figure 3 reports per dataset.
const (
	CounterEncPayloadIn  = "enc_payload_in_bytes"
	CounterEncPayloadOut = "enc_payload_out_bytes"
)

// Config parameterises the program; zero values take the paper's
// operating point.
type Config struct {
	// M selects the code size (default 8 → 32-byte chunks).
	M int
	// T is the transform's error radius: 1 (default) is the paper's
	// Hamming transform, 2..3 the future-work BCH transforms. Wider
	// radii need correspondingly wider syndrome fields on the wire.
	T int
	// IDBits sizes the dictionary identifiers (default 15 → 32,768
	// bases, the largest aligned value that fits the resource
	// budget).
	IDBits int
	// Packed selects the bit-packed wire layout instead of the
	// Tofino byte-aligned one (default false = aligned, as deployed).
	Packed bool
	// TTLNs is the basis-table idle timeout; zero disables aging.
	TTLNs int64
	// Roles assigns a role to each ingress port; unlisted ports
	// forward.
	Roles map[tofino.Port]Role
	// PortMap is static forwarding: ingress port → egress port.
	// Packets arriving on unmapped ports are dropped.
	PortMap map[tofino.Port]tofino.Port
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 8
	}
	if c.IDBits == 0 {
		c.IDBits = 15
	}
	if c.T == 0 {
		c.T = 1
	}
	return c
}

// Program is the ZipLine data plane program. Load it into a
// tofino.Pipeline; it is not usable before that.
type Program struct {
	cfg   Config
	codec *gd.Codec
	fmt   packet.Format

	basisToID tofino.TableHandle
	idToBasis tofino.TableHandle
	counters  map[string]tofino.CounterHandle
}

// New builds the program (the compile-time half; resources are bound
// at pipeline Load).
func New(cfg Config) (*Program, error) {
	cfg = cfg.withDefaults()
	var tr gd.Transform
	if cfg.T == 1 {
		h, err := gd.NewHammingM(cfg.M)
		if err != nil {
			return nil, fmt.Errorf("zswitch: %w", err)
		}
		tr = h
	} else {
		b, err := bch.NewTransform(cfg.M, cfg.T)
		if err != nil {
			return nil, fmt.Errorf("zswitch: %w", err)
		}
		tr = b
	}
	codec := gd.NewCodec(tr)
	f, err := packet.NewFormat(codec, cfg.IDBits, !cfg.Packed)
	if err != nil {
		return nil, fmt.Errorf("zswitch: %w", err)
	}
	return &Program{cfg: cfg, codec: codec, fmt: f}, nil
}

// Name implements tofino.Program.
func (p *Program) Name() string { return "zipline" }

// Codec exposes the chunk codec (shared with the control plane and
// test harnesses).
func (p *Program) Codec() *gd.Codec { return p.codec }

// Format exposes the wire format.
func (p *Program) Format() packet.Format { return p.fmt }

// Config returns the program's configuration with defaults applied.
func (p *Program) Config() Config { return p.cfg }

// Declare implements tofino.Program: the encoder and decoder
// dictionaries plus classification counters.
func (p *Program) Declare(a *tofino.Alloc) error {
	capacity := 1 << uint(p.cfg.IDBits)
	var err error
	if p.basisToID, err = a.Table(tofino.TableSpec{
		Name:          TableBasisToID,
		KeyBits:       p.codec.BasisBits(),
		ActionBits:    p.cfg.IDBits,
		Capacity:      capacity,
		IdleTimeoutNs: p.cfg.TTLNs,
	}); err != nil {
		return err
	}
	if p.idToBasis, err = a.Table(tofino.TableSpec{
		Name:       TableIDToBasis,
		KeyBits:    p.cfg.IDBits,
		ActionBits: p.codec.BasisBits(),
		Capacity:   capacity,
	}); err != nil {
		return err
	}
	p.counters = make(map[string]tofino.CounterHandle)
	for _, name := range []string{
		CounterRawToType2, CounterRawToType3, CounterType2ToRaw,
		CounterType3ToRaw, CounterForwarded, CounterTooShort,
		CounterDecodeMiss, CounterDigests,
		CounterEncPayloadIn, CounterEncPayloadOut,
	} {
		h, err := a.Counter(name)
		if err != nil {
			return err
		}
		p.counters[name] = h
	}
	return nil
}

// Process implements tofino.Program.
func (p *Program) Process(ctx *tofino.Ctx, frame []byte, ingress tofino.Port) []tofino.Emit {
	egress, ok := p.cfg.PortMap[ingress]
	if !ok {
		return nil // unmapped port: drop
	}
	switch p.cfg.Roles[ingress] {
	case RoleEncode:
		return p.encode(ctx, frame, egress)
	case RoleDecode:
		return p.decode(ctx, frame, egress)
	default:
		ctx.Count(p.counters[CounterForwarded], 1)
		return []tofino.Emit{{Port: egress, Frame: frame}}
	}
}

// encode is the Figure 1 path. Only frames tagged EtherTypeRaw are
// compressed: the paper transforms "any Ethernet packet" but does not
// specify how the original EtherType would be restored on decode, so
// this implementation makes the conservative choice of compressing
// exactly the traffic the decoder can reconstruct losslessly
// (documented in DESIGN.md).
func (p *Program) encode(ctx *tofino.Ctx, frame []byte, egress tofino.Port) []tofino.Emit {
	hdr, payload, err := packet.ParseHeader(frame)
	if err != nil || hdr.EtherType != packet.EtherTypeRaw || len(payload) < p.codec.ChunkBytes() {
		// Not compressible: forward unchanged.
		if err == nil && hdr.EtherType == packet.EtherTypeRaw && len(payload) < p.codec.ChunkBytes() {
			ctx.Count(p.counters[CounterTooShort], 1)
			ctx.Count(p.counters[CounterEncPayloadIn], uint64(len(payload)))
			ctx.Count(p.counters[CounterEncPayloadOut], uint64(len(payload)))
		} else {
			ctx.Count(p.counters[CounterForwarded], 1)
		}
		return []tofino.Emit{{Port: egress, Frame: frame}}
	}
	ctx.Count(p.counters[CounterEncPayloadIn], uint64(len(payload)))

	chunk := payload[:p.codec.ChunkBytes()]
	tail := payload[p.codec.ChunkBytes():]
	s, err := p.codec.SplitChunk(chunk)
	if err != nil {
		// Unreachable by construction (chunk length checked above);
		// treat as forward to stay total.
		ctx.Count(p.counters[CounterForwarded], 1)
		ctx.Count(p.counters[CounterEncPayloadOut], uint64(len(payload)))
		return []tofino.Emit{{Port: egress, Frame: frame}}
	}

	if act, hit := ctx.Apply(p.basisToID, s.Basis.Key()); hit {
		id := act.(uint32)
		out := make([]byte, 0, packet.HeaderLen+p.fmt.Type3Len()+len(tail))
		out = packet.AppendHeader(out, packet.Header{
			Dst: hdr.Dst, Src: hdr.Src, EtherType: packet.EtherTypeCompressed,
		})
		out = p.fmt.AppendType3(out, packet.Compressed{
			Deviation: s.Deviation, Extra: s.Extra, ID: id,
		})
		out = append(out, tail...)
		ctx.Count(p.counters[CounterRawToType3], 1)
		ctx.Count(p.counters[CounterEncPayloadOut], uint64(len(out)-packet.HeaderLen))
		return []tofino.Emit{{Port: egress, Frame: out}}
	}

	// Unknown basis: report to the control plane and emit type 2.
	ctx.Digest(DigestNewBasis, s.Basis.Bytes())
	ctx.Count(p.counters[CounterDigests], 1)
	out := make([]byte, 0, packet.HeaderLen+p.fmt.Type2Len()+len(tail))
	out = packet.AppendHeader(out, packet.Header{
		Dst: hdr.Dst, Src: hdr.Src, EtherType: packet.EtherTypeUncompressed,
	})
	out = p.fmt.AppendType2(out, s)
	out = append(out, tail...)
	ctx.Count(p.counters[CounterRawToType2], 1)
	ctx.Count(p.counters[CounterEncPayloadOut], uint64(len(out)-packet.HeaderLen))
	return []tofino.Emit{{Port: egress, Frame: out}}
}

// decode is the Figure 2 path.
func (p *Program) decode(ctx *tofino.Ctx, frame []byte, egress tofino.Port) []tofino.Emit {
	hdr, payload, err := packet.ParseHeader(frame)
	if err != nil {
		return nil
	}
	var (
		s    gd.Split
		tail []byte
		cnt  string
	)
	switch hdr.Type() {
	case packet.TypeUncompressed:
		s, tail, err = p.fmt.ParseType2(payload)
		if err != nil {
			return nil
		}
		cnt = CounterType2ToRaw
	case packet.TypeCompressed:
		var c packet.Compressed
		c, tail, err = p.fmt.ParseType3(payload)
		if err != nil {
			return nil
		}
		act, hit := ctx.Apply(p.idToBasis, IDKey(c.ID))
		if !hit {
			// The two-phase install protocol makes this impossible
			// in steady state; count and drop if it ever happens.
			ctx.Count(p.counters[CounterDecodeMiss], 1)
			return nil
		}
		basis := act.(basisAction)
		s = gd.Split{Basis: basis.v, Deviation: c.Deviation, Extra: c.Extra}
		cnt = CounterType3ToRaw
	default:
		ctx.Count(p.counters[CounterForwarded], 1)
		return []tofino.Emit{{Port: egress, Frame: frame}}
	}

	out := make([]byte, 0, packet.HeaderLen+p.codec.ChunkBytes()+len(tail))
	out = packet.AppendHeader(out, packet.Header{
		Dst: hdr.Dst, Src: hdr.Src, EtherType: packet.EtherTypeRaw,
	})
	out, err = p.codec.MergeChunk(s, out)
	if err != nil {
		return nil
	}
	out = append(out, tail...)
	ctx.Count(p.counters[cnt], 1)
	return []tofino.Emit{{Port: egress, Frame: out}}
}

// IDKey renders a dictionary identifier as the table key string used
// by TableIDToBasis.
func IDKey(id uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	return string(b[:])
}
