package zswitch

import (
	"encoding/binary"
	"fmt"

	"zipline/internal/bch"
	"zipline/internal/bitvec"
	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/tofino"
)

// Role is the per-port behaviour of the program.
type Role int

// Port roles.
const (
	RoleForward Role = iota // no op: plain Ethernet switching
	RoleEncode              // compress arriving raw packets
	RoleDecode              // decompress arriving type 2/3 packets
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleForward:
		return "forward"
	case RoleEncode:
		return "encode"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Table and digest names, part of the control-plane contract.
const (
	// TableBasisToID is the encoder dictionary (basis → identifier).
	// Keys are the raw basis bytes (ceil(BasisBits/8), zero tail
	// padding) — exactly the bits the hardware matches on.
	TableBasisToID = "basis_to_id"
	// TableIDToBasis is the decoder dictionary (identifier → basis).
	// Keys are the 4-byte big-endian identifier (IDKey).
	TableIDToBasis = "id_to_basis"
	// DigestNewBasis reports a basis missing from the encoder
	// dictionary.
	DigestNewBasis = "new_basis"
)

// Counter names. Packets are classified by how they are transformed
// (paper §5: "we add counters to our program to provide
// easily-accessible statistics").
const (
	CounterRawToType2 = "raw_to_type2" // encoded, basis unknown
	CounterRawToType3 = "raw_to_type3" // encoded and compressed
	CounterType2ToRaw = "type2_to_raw" // decoded from full basis
	CounterType3ToRaw = "type3_to_raw" // decoded via dictionary
	CounterForwarded  = "forwarded"    // no-op role or non-ZipLine
	CounterTooShort   = "too_short"    // payload smaller than a chunk
	CounterDecodeMiss = "decode_miss"  // type 3 with unknown ID (dropped)
	CounterDigests    = "digests"      // new-basis reports emitted
	CounterBypass     = "bypass"       // raw frames forwarded under the bypass gate
)

// Byte counters on the encode path. They count payload bytes entering
// and leaving the encode role for type-1 (raw) traffic, so
// out ÷ in is the exact compression ratio of the hop the encoder
// feeds — the quantity Figure 3 reports per dataset.
const (
	CounterEncPayloadIn  = "enc_payload_in_bytes"
	CounterEncPayloadOut = "enc_payload_out_bytes"
)

// Config parameterises the program; zero values take the paper's
// operating point.
type Config struct {
	// M selects the code size (default 8 → 32-byte chunks).
	M int
	// T is the transform's error radius: 1 (default) is the paper's
	// Hamming transform, 2..3 the future-work BCH transforms. Wider
	// radii need correspondingly wider syndrome fields on the wire.
	T int
	// IDBits sizes the dictionary identifiers (default 15 → 32,768
	// bases, the largest aligned value that fits the resource
	// budget).
	IDBits int
	// Packed selects the bit-packed wire layout instead of the
	// Tofino byte-aligned one (default false = aligned, as deployed).
	Packed bool
	// TTLNs is the basis-table idle timeout; zero disables aging.
	TTLNs int64
	// Roles assigns a role to each ingress port; unlisted ports
	// forward.
	Roles map[tofino.Port]Role
	// PortMap is static forwarding: ingress port → egress port.
	// Packets arriving on unmapped ports are dropped.
	PortMap map[tofino.Port]tofino.Port
	// MACMap is destination-based forwarding: a frame whose Ethernet
	// destination appears here egresses on the mapped port, overriding
	// PortMap. Frames matching neither map are dropped. The ingress
	// role still applies (roles are per ingress port, not per route),
	// and compressed type 2/3 frames carry the original Dst MAC in
	// their Ethernet header, so destination routing works on them
	// unchanged. This is what multi-path topologies (fat-trees, ISP
	// graphs) need: one ingress port fans out to many egresses.
	MACMap map[packet.MAC]tofino.Port
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 8
	}
	if c.IDBits == 0 {
		c.IDBits = 15
	}
	if c.T == 0 {
		c.T = 1
	}
	return c
}

// MaxPort bounds the port numbers a PortMap may reference: the
// per-ingress dispatch is a dense slice sized by the largest mapped
// port, and no modelled chassis has more front-panel ports than this.
const MaxPort = 4095

// portEntry is the per-ingress-port action, resolved from the Roles
// and PortMap maps at construction so the per-packet path indexes a
// dense slice instead of hashing twice.
type portEntry struct {
	egress tofino.Port
	role   Role
	mapped bool
}

// counterSet holds the resolved counter handles, one struct field per
// classification bucket — the Declare-time analogue of P4's
// compile-time counter identifiers.
type counterSet struct {
	rawToType2, rawToType3      tofino.CounterHandle
	type2ToRaw, type3ToRaw      tofino.CounterHandle
	forwarded, tooShort         tofino.CounterHandle
	decodeMiss, digests         tofino.CounterHandle
	encPayloadIn, encPayloadOut tofino.CounterHandle
	bypass                      tofino.CounterHandle
}

// scratch is the program's per-packet working memory, reused across
// Process calls (the model of the pipeline's PHV and header buffers:
// fixed resources, no allocator).
type scratch struct {
	basis  []byte // SplitChunkBytes output / packed type-2 parse buffer
	frame  []byte // output frame arena, one frame per pass
	digest []byte // epoch-tagged digest payload (fault-era digests only)
	idKey  [4]byte
}

// Program is the ZipLine data plane program. Load it into a
// tofino.Pipeline; it is not usable before that. A Program instance
// must not be shared across concurrently processing pipelines: its
// scratch is per-packet state.
type Program struct {
	cfg   Config
	codec *gd.Codec
	fmt   packet.Format
	ports []portEntry
	// macRoutes is the resolved MACMap; the per-packet lookup converts
	// the frame's Dst bytes to the array key in place, so destination
	// routing costs one map probe and no allocation.
	macRoutes map[packet.MAC]tofino.Port

	basisToID tofino.TableHandle
	idToBasis tofino.TableHandle
	ctr       counterSet

	// epoch counts dataplane restarts. It rides in every digest once
	// non-zero, so the controller can tell pre- and post-reboot state
	// apart; epoch 0 keeps the compact pre-fault digest layout (and so
	// the pre-fault report bytes) until the first restart.
	epoch uint32
	// bypass, while set by the control plane, forwards raw traffic
	// uncompressed instead of encoding it — graceful degradation while
	// a downstream decoder's state is unconfirmed.
	bypass bool

	scr scratch
}

// New builds the program (the compile-time half; resources are bound
// at pipeline Load).
func New(cfg Config) (*Program, error) {
	cfg = cfg.withDefaults()
	var tr gd.Transform
	if cfg.T == 1 {
		h, err := gd.NewHammingM(cfg.M)
		if err != nil {
			return nil, fmt.Errorf("zswitch: %w", err)
		}
		tr = h
	} else {
		b, err := bch.NewTransform(cfg.M, cfg.T)
		if err != nil {
			return nil, fmt.Errorf("zswitch: %w", err)
		}
		tr = b
	}
	codec := gd.NewCodec(tr)
	f, err := packet.NewFormat(codec, cfg.IDBits, !cfg.Packed)
	if err != nil {
		return nil, fmt.Errorf("zswitch: %w", err)
	}
	p := &Program{cfg: cfg, codec: codec, fmt: f}
	maxIngress := -1
	//ziplint:allow determinism max reduction is iteration-order-insensitive
	for in, out := range cfg.PortMap {
		if in < 0 || out < 0 || int(in) > MaxPort || int(out) > MaxPort {
			return nil, fmt.Errorf("zswitch: port mapping %d→%d outside [0,%d]", in, out, MaxPort)
		}
		if int(in) > maxIngress {
			maxIngress = int(in)
		}
	}
	// Role-only ports (routed by MACMap, never statically forwarded)
	// still need a dense-slice entry for the role dispatch.
	//ziplint:allow determinism max reduction is iteration-order-insensitive
	for in := range cfg.Roles {
		if in < 0 || int(in) > MaxPort {
			return nil, fmt.Errorf("zswitch: role port %d outside [0,%d]", in, MaxPort)
		}
		if int(in) > maxIngress {
			maxIngress = int(in)
		}
	}
	p.ports = make([]portEntry, maxIngress+1)
	//ziplint:allow determinism dense-slice fill writes disjoint indices, order-insensitive
	for in, role := range cfg.Roles {
		p.ports[in].role = role
	}
	//ziplint:allow determinism dense-slice fill writes disjoint indices, order-insensitive
	for in, out := range cfg.PortMap {
		p.ports[in].egress = out
		p.ports[in].mapped = true
	}
	if len(cfg.MACMap) > 0 {
		p.macRoutes = make(map[packet.MAC]tofino.Port, len(cfg.MACMap))
		//ziplint:allow determinism map-to-map copy is iteration-order-insensitive
		for mac, out := range cfg.MACMap {
			if out < 0 || int(out) > MaxPort {
				return nil, fmt.Errorf("zswitch: MAC route %s→%d outside [0,%d]", mac, out, MaxPort)
			}
			p.macRoutes[mac] = out
		}
	}
	return p, nil
}

// Name implements tofino.Program.
func (p *Program) Name() string { return "zipline" }

// Codec exposes the chunk codec (shared with the control plane and
// test harnesses).
func (p *Program) Codec() *gd.Codec { return p.codec }

// Format exposes the wire format.
func (p *Program) Format() packet.Format { return p.fmt }

// Config returns the program's configuration with defaults applied.
func (p *Program) Config() Config { return p.cfg }

// Declare implements tofino.Program: the encoder and decoder
// dictionaries plus classification counters.
func (p *Program) Declare(a *tofino.Alloc) error {
	capacity := 1 << uint(p.cfg.IDBits)
	var err error
	if p.basisToID, err = a.Table(tofino.TableSpec{
		Name:          TableBasisToID,
		KeyBits:       p.codec.BasisBits(),
		ActionBits:    p.cfg.IDBits,
		Capacity:      capacity,
		IdleTimeoutNs: p.cfg.TTLNs,
	}); err != nil {
		return err
	}
	if p.idToBasis, err = a.Table(tofino.TableSpec{
		Name:       TableIDToBasis,
		KeyBits:    p.cfg.IDBits,
		ActionBits: p.codec.BasisBits(),
		Capacity:   capacity,
	}); err != nil {
		return err
	}
	for _, c := range []struct {
		name string
		h    *tofino.CounterHandle
	}{
		{CounterRawToType2, &p.ctr.rawToType2},
		{CounterRawToType3, &p.ctr.rawToType3},
		{CounterType2ToRaw, &p.ctr.type2ToRaw},
		{CounterType3ToRaw, &p.ctr.type3ToRaw},
		{CounterForwarded, &p.ctr.forwarded},
		{CounterTooShort, &p.ctr.tooShort},
		{CounterDecodeMiss, &p.ctr.decodeMiss},
		{CounterDigests, &p.ctr.digests},
		{CounterEncPayloadIn, &p.ctr.encPayloadIn},
		{CounterEncPayloadOut, &p.ctr.encPayloadOut},
		{CounterBypass, &p.ctr.bypass},
	} {
		if *c.h, err = a.Counter(c.name); err != nil {
			return err
		}
	}
	return nil
}

// Process implements tofino.Program.
//
//zipline:noalloc
func (p *Program) Process(ctx *tofino.Ctx, frame []byte, ingress tofino.Port, out []tofino.Emit) []tofino.Emit {
	if p.macRoutes != nil {
		return p.processRouted(ctx, frame, ingress, out)
	}
	if int(ingress) < 0 || int(ingress) >= len(p.ports) || !p.ports[ingress].mapped {
		return out // unmapped port: drop
	}
	pe := p.ports[ingress]
	switch pe.role {
	case RoleEncode:
		return p.encode(ctx, frame, pe.egress, out)
	case RoleDecode:
		return p.decode(ctx, frame, pe.egress, out)
	default:
		ctx.Count(p.ctr.forwarded, 1)
		return append(out, tofino.Emit{Port: pe.egress, Frame: frame})
	}
}

// processRouted is the destination-routed slow(er) path, split out so
// statically-forwarded switches keep the original three-compare entry.
//
//zipline:noalloc
func (p *Program) processRouted(ctx *tofino.Ctx, frame []byte, ingress tofino.Port, out []tofino.Emit) []tofino.Emit {
	if int(ingress) < 0 {
		return out // unknown port: drop
	}
	// An ingress beyond the dense slice carries no role and no static
	// map; with destination routes it still forwards (a MAC-routed
	// switch may have forward-role ports it never declared).
	var pe portEntry
	if int(ingress) < len(p.ports) {
		pe = p.ports[ingress]
	}
	egress, routed := pe.egress, pe.mapped
	if len(frame) >= packet.HeaderLen {
		if port, ok := p.macRoutes[packet.MAC(frame[0:6])]; ok {
			egress, routed = port, true
		}
	}
	if !routed {
		return out // neither a static nor a destination route: drop
	}
	switch pe.role {
	case RoleEncode:
		return p.encode(ctx, frame, egress, out)
	case RoleDecode:
		return p.decode(ctx, frame, egress, out)
	default:
		ctx.Count(p.ctr.forwarded, 1)
		return append(out, tofino.Emit{Port: egress, Frame: frame})
	}
}

// frameScratch returns the output frame arena, emptied, with capacity
// for at least n bytes.
func (p *Program) frameScratch(n int) []byte {
	if cap(p.scr.frame) < n {
		//ziplint:allow noalloc arena grows to its high-water mark once; steady state reuses it
		p.scr.frame = make([]byte, 0, n)
	}
	return p.scr.frame[:0]
}

// digestScratch returns the epoch-tagged digest buffer, emptied, with
// capacity for at least n bytes.
func (p *Program) digestScratch(n int) []byte {
	if cap(p.scr.digest) < n {
		//ziplint:allow noalloc grows to its high-water mark once; steady state reuses it
		p.scr.digest = make([]byte, 0, n)
	}
	return p.scr.digest[:0]
}

// Epoch reports how many times the dataplane has restarted.
func (p *Program) Epoch() uint32 { return p.epoch }

// Bypassing reports whether the control-plane bypass gate is set.
func (p *Program) Bypassing() bool { return p.bypass }

// encode is the Figure 1 path. Only frames tagged EtherTypeRaw are
// compressed: the paper transforms "any Ethernet packet" but does not
// specify how the original EtherType would be restored on decode, so
// this implementation makes the conservative choice of compressing
// exactly the traffic the decoder can reconstruct losslessly
// (documented in DESIGN.md).
func (p *Program) encode(ctx *tofino.Ctx, frame []byte, egress tofino.Port, out []tofino.Emit) []tofino.Emit {
	// The header fields are read in place (no Header struct, no MAC
	// copies): only the EtherType gates the path, and the rewritten
	// frame reuses the original Dst/Src bytes verbatim.
	if len(frame) < packet.HeaderLen ||
		binary.BigEndian.Uint16(frame[12:14]) != packet.EtherTypeRaw ||
		len(frame)-packet.HeaderLen < p.codec.ChunkBytes() {
		// Not compressible: forward unchanged.
		if len(frame) >= packet.HeaderLen &&
			binary.BigEndian.Uint16(frame[12:14]) == packet.EtherTypeRaw {
			n := uint64(len(frame) - packet.HeaderLen)
			ctx.Count(p.ctr.tooShort, 1)
			ctx.Count(p.ctr.encPayloadIn, n)
			ctx.Count(p.ctr.encPayloadOut, n)
		} else {
			ctx.Count(p.ctr.forwarded, 1)
		}
		return append(out, tofino.Emit{Port: egress, Frame: frame})
	}
	payload := frame[packet.HeaderLen:]
	if p.bypass {
		// Control-plane bypass gate: a downstream decoder's state is
		// unconfirmed, so deliverable beats compressible — forward the
		// raw frame untouched (ratio degrades, delivery holds).
		ctx.Count(p.ctr.bypass, 1)
		ctx.Count(p.ctr.encPayloadIn, uint64(len(payload)))
		ctx.Count(p.ctr.encPayloadOut, uint64(len(payload)))
		return append(out, tofino.Emit{Port: egress, Frame: frame})
	}
	ctx.Count(p.ctr.encPayloadIn, uint64(len(payload)))

	chunk := payload[:p.codec.ChunkBytes()]
	tail := payload[p.codec.ChunkBytes():]
	basis, dev, extra, err := p.codec.SplitChunkBytes(chunk, p.scr.basis)
	p.scr.basis = basis
	if err != nil {
		// Unreachable by construction (chunk length checked above);
		// treat as forward to stay total.
		ctx.Count(p.ctr.forwarded, 1)
		ctx.Count(p.ctr.encPayloadOut, uint64(len(payload)))
		return append(out, tofino.Emit{Port: egress, Frame: frame})
	}

	if act, hit := ctx.ApplyBytes(p.basisToID, basis); hit {
		id := act.(uint32)
		buf := p.frameScratch(packet.HeaderLen + p.fmt.Type3Len() + len(tail))
		buf = append(buf, frame[:12]...)
		buf = binary.BigEndian.AppendUint16(buf, packet.EtherTypeCompressed)
		buf = p.fmt.AppendType3(buf, packet.Compressed{
			Deviation: dev, Extra: extra, ID: id,
		})
		buf = append(buf, tail...)
		p.scr.frame = buf
		ctx.Count(p.ctr.rawToType3, 1)
		ctx.Count(p.ctr.encPayloadOut, uint64(len(buf)-packet.HeaderLen))
		return append(out, tofino.Emit{Port: egress, Frame: buf})
	}

	// Unknown basis: report to the control plane and emit type 2.
	if p.epoch == 0 {
		ctx.Digest(DigestNewBasis, basis)
	} else {
		// Post-restart digests carry the epoch so the controller can
		// spot a reboot even before (or without) its notification.
		d := p.digestScratch(len(basis) + 4)
		d = append(d, basis...)
		d = binary.BigEndian.AppendUint32(d, p.epoch)
		p.scr.digest = d
		ctx.Digest(DigestNewBasis, d)
	}
	ctx.Count(p.ctr.digests, 1)
	buf := p.frameScratch(packet.HeaderLen + p.fmt.Type2Len() + len(tail))
	buf = append(buf, frame[:12]...)
	buf = binary.BigEndian.AppendUint16(buf, packet.EtherTypeUncompressed)
	buf = p.fmt.AppendType2Bytes(buf, basis, dev, extra)
	buf = append(buf, tail...)
	p.scr.frame = buf
	ctx.Count(p.ctr.rawToType2, 1)
	ctx.Count(p.ctr.encPayloadOut, uint64(len(buf)-packet.HeaderLen))
	return append(out, tofino.Emit{Port: egress, Frame: buf})
}

// decode is the Figure 2 path.
func (p *Program) decode(ctx *tofino.Ctx, frame []byte, egress tofino.Port, out []tofino.Emit) []tofino.Emit {
	// Like encode, the header is read in place: the EtherType picks
	// the parse, and the rebuilt frame reuses the Dst/Src bytes.
	if len(frame) < packet.HeaderLen {
		return out
	}
	payload := frame[packet.HeaderLen:]
	var (
		basis []byte
		dev   uint32
		extra uint8
		tail  []byte
		cnt   tofino.CounterHandle
		err   error
	)
	switch packet.TypeOf(binary.BigEndian.Uint16(frame[12:14])) {
	case packet.TypeUncompressed:
		basis, dev, extra, tail, err = p.fmt.ParseType2Bytes(payload, p.scr.basis)
		if err != nil {
			return out
		}
		if !p.fmt.Aligned() {
			p.scr.basis = basis // packed layout parses into the scratch
		}
		cnt = p.ctr.type2ToRaw
	case packet.TypeCompressed:
		var c packet.Compressed
		c, tail, err = p.fmt.ParseType3(payload)
		if err != nil {
			return out
		}
		binary.BigEndian.PutUint32(p.scr.idKey[:], c.ID)
		act, hit := ctx.ApplyBytes(p.idToBasis, p.scr.idKey[:])
		if !hit {
			// The two-phase install protocol makes this impossible
			// in steady state; count and drop if it ever happens.
			ctx.Count(p.ctr.decodeMiss, 1)
			return out
		}
		basis = act.(basisAction).b
		dev, extra = c.Deviation, c.Extra
		cnt = p.ctr.type3ToRaw
	default:
		ctx.Count(p.ctr.forwarded, 1)
		return append(out, tofino.Emit{Port: egress, Frame: frame})
	}

	buf := p.frameScratch(packet.HeaderLen + p.codec.ChunkBytes() + len(tail))
	buf = append(buf, frame[:12]...)
	buf = binary.BigEndian.AppendUint16(buf, packet.EtherTypeRaw)
	buf, err = p.codec.MergeChunkBytes(basis, dev, extra, buf)
	if err != nil {
		return out
	}
	buf = append(buf, tail...)
	p.scr.frame = buf
	ctx.Count(cnt, 1)
	return append(out, tofino.Emit{Port: egress, Frame: buf})
}

// BasisKey renders a basis as the raw-byte table key used by
// TableBasisToID: the basis bytes themselves, no framing.
func BasisKey(basis *bitvec.Vector) string { return string(basis.Bytes()) }

// IDKey renders a dictionary identifier as the table key string used
// by TableIDToBasis.
func IDKey(id uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	return string(b[:])
}
