package zswitch

import (
	"bytes"
	"math/rand"
	"testing"

	"zipline/internal/packet"
	"zipline/internal/tofino"
)

var testMACs = struct{ a, b packet.MAC }{
	a: packet.MAC{0x02, 0, 0, 0, 0, 1},
	b: packet.MAC{0x02, 0, 0, 0, 0, 2},
}

// loadPair builds the canonical two-switch testbed: encoder pipeline
// (port 0 encode → port 1) and decoder pipeline (port 0 decode →
// port 1).
func loadPair(t *testing.T, cfg Config) (encProg, decProg *Program, enc, dec *tofino.Pipeline) {
	t.Helper()
	encCfg := cfg
	encCfg.Roles = map[tofino.Port]Role{0: RoleEncode}
	encCfg.PortMap = map[tofino.Port]tofino.Port{0: 1}
	decCfg := cfg
	decCfg.Roles = map[tofino.Port]Role{0: RoleDecode}
	decCfg.PortMap = map[tofino.Port]tofino.Port{0: 1}

	var err error
	encProg, err = New(encCfg)
	if err != nil {
		t.Fatal(err)
	}
	decProg, err = New(decCfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err = tofino.Load(tofino.Config{Name: "enc"}, encProg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = tofino.Load(tofino.Config{Name: "dec"}, decProg)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func rawFrame(payload []byte) []byte {
	return packet.Frame(packet.Header{
		Dst: testMACs.b, Src: testMACs.a, EtherType: packet.EtherTypeRaw,
	}, payload)
}

func TestEncodeUnknownBasisProducesType2(t *testing.T) {
	_, _, enc, dec := loadPair(t, Config{})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(payload)
	frame := rawFrame(payload)

	out := enc.Process(0, frame, 0)
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("emit = %+v", out)
	}
	hdr, encPayload, err := packet.ParseHeader(out[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type() != packet.TypeUncompressed {
		t.Fatalf("type = %v, want type 2", hdr.Type())
	}
	if len(encPayload) != 33 {
		t.Fatalf("type 2 payload = %d bytes, want 33", len(encPayload))
	}
	if enc.PendingDigests() != 1 {
		t.Fatalf("digests = %d, want 1", enc.PendingDigests())
	}
	st := ReadStats(enc)
	if st.RawToType2 != 1 || st.RawToType3 != 0 || st.Digests != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// The type 2 packet decodes without any dictionary state.
	back := dec.Process(10, out[0].Frame, 0)
	if len(back) != 1 {
		t.Fatalf("decode emit = %+v", back)
	}
	gotHdr, gotPayload, _ := packet.ParseHeader(back[0].Frame)
	if gotHdr.Type() != packet.TypeRaw || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("decode mismatch: %v %x", gotHdr.Type(), gotPayload)
	}
	if ReadStats(dec).Type2ToRaw != 1 {
		t.Fatalf("decoder stats = %+v", ReadStats(dec))
	}
}

func TestEncodeKnownBasisProducesType3(t *testing.T) {
	encProg, _, enc, dec := loadPair(t, Config{})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(2)).Read(payload)
	frame := rawFrame(payload)

	// Learn the basis (simulating the control plane): decoder first.
	s, err := encProg.Codec().SplitChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	const id = 1234
	if err := InstallIDToBasis(dec, id, s.Basis, 0); err != nil {
		t.Fatal(err)
	}
	if err := InstallBasisToID(enc, s.Basis, id, 0); err != nil {
		t.Fatal(err)
	}

	out := enc.Process(0, frame, 0)
	hdr, encPayload, _ := packet.ParseHeader(out[0].Frame)
	if hdr.Type() != packet.TypeCompressed {
		t.Fatalf("type = %v, want type 3", hdr.Type())
	}
	if len(encPayload) != 3 {
		t.Fatalf("type 3 payload = %d bytes, want 3", len(encPayload))
	}
	if ReadStats(enc).RawToType3 != 1 {
		t.Fatalf("stats = %+v", ReadStats(enc))
	}

	back := dec.Process(1, out[0].Frame, 0)
	_, gotPayload, _ := packet.ParseHeader(back[0].Frame)
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("round trip failed: %x != %x", gotPayload, payload)
	}
	if ReadStats(dec).Type3ToRaw != 1 {
		t.Fatalf("decoder stats = %+v", ReadStats(dec))
	}
}

func TestEncodePreservesTail(t *testing.T) {
	// Payload longer than one chunk: the tail rides along verbatim
	// in both directions.
	_, _, enc, dec := loadPair(t, Config{})
	payload := make([]byte, 50)
	rand.New(rand.NewSource(3)).Read(payload)
	out := enc.Process(0, rawFrame(payload), 0)
	back := dec.Process(1, out[0].Frame, 0)
	_, gotPayload, _ := packet.ParseHeader(back[0].Frame)
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("tail lost in translation")
	}
}

func TestShortPayloadForwarded(t *testing.T) {
	_, _, enc, _ := loadPair(t, Config{})
	payload := []byte{1, 2, 3}
	frame := rawFrame(payload)
	out := enc.Process(0, frame, 0)
	if !bytes.Equal(out[0].Frame, frame) {
		t.Fatal("short frame modified")
	}
	if st := ReadStats(enc); st.TooShort != 1 || st.Encoded() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDecodeMissDropsAndCounts(t *testing.T) {
	_, decProg, _, dec := loadPair(t, Config{})
	// Hand-craft a type 3 frame with an unmapped ID.
	f := decProg.Format()
	out := packet.AppendHeader(nil, packet.Header{
		Dst: testMACs.b, Src: testMACs.a, EtherType: packet.EtherTypeCompressed,
	})
	out = f.AppendType3(out, packet.Compressed{Deviation: 5, Extra: 0, ID: 77})
	emits := dec.Process(0, out, 0)
	if len(emits) != 0 {
		t.Fatalf("unmapped type 3 was emitted: %+v", emits)
	}
	if ReadStats(dec).DecodeMiss != 1 {
		t.Fatalf("stats = %+v", ReadStats(dec))
	}
}

func TestForwardRoleIsNoOp(t *testing.T) {
	cfg := Config{
		Roles:   map[tofino.Port]Role{},
		PortMap: map[tofino.Port]tofino.Port{0: 1, 1: 0},
	}
	prog, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tofino.Load(tofino.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1500)
	frame := rawFrame(payload)
	out := pl.Process(0, frame, 0)
	if len(out) != 1 || !bytes.Equal(out[0].Frame, frame) || out[0].Port != 1 {
		t.Fatal("no-op forwarding altered the frame")
	}
	if ReadStats(pl).Forwarded != 1 {
		t.Fatalf("stats = %+v", ReadStats(pl))
	}
}

func TestUnmappedPortDrops(t *testing.T) {
	_, _, enc, _ := loadPair(t, Config{})
	if out := enc.Process(0, rawFrame(make([]byte, 32)), 7); out != nil {
		t.Fatal("packet on unmapped port not dropped")
	}
}

func TestNonRawTrafficPassesEncoder(t *testing.T) {
	// Already-processed packets (or any foreign EtherType) pass the
	// encode role untouched.
	_, _, enc, _ := loadPair(t, Config{})
	frame := packet.Frame(packet.Header{
		Dst: testMACs.b, Src: testMACs.a, EtherType: 0x0800,
	}, make([]byte, 64))
	out := enc.Process(0, frame, 0)
	if !bytes.Equal(out[0].Frame, frame) {
		t.Fatal("foreign frame modified")
	}
}

func TestManyChunksRoundTripThroughPair(t *testing.T) {
	encProg, _, enc, dec := loadPair(t, Config{TTLNs: 0})
	rng := rand.New(rand.NewSource(4))
	nextID := uint32(0)
	for i := 0; i < 300; i++ {
		payload := make([]byte, 32)
		rng.Read(payload)
		if i%3 == 0 {
			// Pre-learn a third of the bases.
			s, _ := encProg.Codec().SplitChunk(payload)
			InstallIDToBasis(dec, nextID, s.Basis, int64(i))
			InstallBasisToID(enc, s.Basis, nextID, int64(i))
			nextID++
		}
		out := enc.Process(int64(i), rawFrame(payload), 0)
		back := dec.Process(int64(i), out[0].Frame, 0)
		_, got, _ := packet.ParseHeader(back[0].Frame)
		if !bytes.Equal(got, payload) {
			t.Fatalf("packet %d did not round trip", i)
		}
	}
	st := ReadStats(enc)
	if st.RawToType3 != 100 || st.RawToType2 != 200 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPackedModeSmallerOnWire(t *testing.T) {
	_, _, encA, _ := loadPair(t, Config{})
	_, _, encP, _ := loadPair(t, Config{Packed: true})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(payload)
	a := encA.Process(0, rawFrame(payload), 0)
	p := encP.Process(0, rawFrame(payload), 0)
	if lenA, lenP := len(a[0].Frame), len(p[0].Frame); lenA-lenP != 1 {
		t.Fatalf("aligned %dB vs packed %dB, want 1 byte difference", lenA, lenP)
	}
}

func TestExpiredBasesSurface(t *testing.T) {
	encProg, _, enc, _ := loadPair(t, Config{TTLNs: 1000})
	payload := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(payload)
	s, _ := encProg.Codec().SplitChunk(payload)
	InstallBasisToID(enc, s.Basis, 1, 0)
	if exp := ExpiredBases(enc, 500); len(exp) != 0 {
		t.Fatalf("premature expiry: %v", exp)
	}
	// A data-plane hit refreshes the timer.
	enc.Process(900, rawFrame(payload), 0)
	if exp := ExpiredBases(enc, 1500); len(exp) != 0 {
		t.Fatalf("hit did not refresh TTL: %v", exp)
	}
	if exp := ExpiredBases(enc, 2500); len(exp) != 1 {
		t.Fatalf("expiry missing: %v", exp)
	}
}

func TestInstallOnWrongPipeline(t *testing.T) {
	// A pipeline loaded with a non-ZipLine program has no dictionary
	// tables; the control-plane API must fail loudly.
	pl, err := tofino.Load(tofino.Config{}, &nopProgram{})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := New(Config{})
	s, _ := prog.Codec().SplitChunk(make([]byte, 32))
	if err := InstallBasisToID(pl, s.Basis, 1, 0); err == nil {
		t.Error("install on foreign pipeline succeeded")
	}
	if err := InstallIDToBasis(pl, 1, s.Basis, 0); err == nil {
		t.Error("install on foreign pipeline succeeded")
	}
	if DeleteBasisToID(pl, s.Basis) || DeleteIDToBasis(pl, 1) {
		t.Error("delete on foreign pipeline succeeded")
	}
	if ExpiredBases(pl, 0) != nil {
		t.Error("expiry on foreign pipeline returned keys")
	}
}

type nopProgram struct{}

func (nopProgram) Name() string                  { return "nop" }
func (nopProgram) Declare(a *tofino.Alloc) error { return nil }
func (nopProgram) Process(ctx *tofino.Ctx, frame []byte, in tofino.Port, out []tofino.Emit) []tofino.Emit {
	return out
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{M: 99}); err == nil {
		t.Error("bad M accepted")
	}
	if _, err := New(Config{IDBits: 30}); err == nil {
		t.Error("bad IDBits accepted")
	}
}

func BenchmarkEncodePath(b *testing.B) {
	prog, _ := New(Config{
		Roles:   map[tofino.Port]Role{0: RoleEncode},
		PortMap: map[tofino.Port]tofino.Port{0: 1},
	})
	pl, _ := tofino.Load(tofino.Config{}, prog)
	payload := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(payload)
	frame := rawFrame(payload)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Process(int64(i), frame, 0)
		if pl.PendingDigests() > 1000 {
			pl.DrainDigests()
		}
	}
}

func TestBCHModeRoundTrips(t *testing.T) {
	// T=2 loads the future-work BCH transform into the switch: wider
	// syndrome on the wire, same end-to-end losslessness.
	_, _, enc, dec := loadPair(t, Config{T: 2})
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		payload := make([]byte, 32)
		rng.Read(payload)
		out := enc.Process(int64(i), rawFrame(payload), 0)
		back := dec.Process(int64(i), out[0].Frame, 0)
		_, got, _ := packet.ParseHeader(back[0].Frame)
		if !bytes.Equal(got, payload) {
			t.Fatalf("packet %d did not round trip in BCH mode", i)
		}
	}
	// Type 2 payload is one byte wider than Hamming's (16-bit
	// syndrome, 239-bit basis + pad byte): 2 + 1 + 30 = 33 bytes.
	payload := make([]byte, 32)
	rng.Read(payload)
	out := enc.Process(999, rawFrame(payload), 0)
	_, encPayload, _ := packet.ParseHeader(out[0].Frame)
	if len(encPayload) != 33 {
		t.Fatalf("BCH type 2 payload = %d bytes", len(encPayload))
	}
}
