package zswitch

import (
	"encoding/binary"
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/tofino"
)

// basisAction is the decoder table's action data: the raw bytes of
// the basis to substitute for the matched identifier, ready for
// Codec.MergeChunkBytes without an intermediate bit vector.
type basisAction struct {
	b []byte
}

// InstallBasisToID adds an encoder dictionary entry (basis → id) to a
// loaded pipeline. Control-plane API; now stamps the entry's idle
// timer.
func InstallBasisToID(pl *tofino.Pipeline, basis *bitvec.Vector, id uint32, now int64) error {
	t, ok := pl.Table(TableBasisToID)
	if !ok {
		return fmt.Errorf("zswitch: pipeline has no %s table", TableBasisToID)
	}
	return t.Install(BasisKey(basis), id, now)
}

// DeleteBasisToID removes an encoder dictionary entry.
func DeleteBasisToID(pl *tofino.Pipeline, basis *bitvec.Vector) bool {
	t, ok := pl.Table(TableBasisToID)
	if !ok {
		return false
	}
	return t.Delete(BasisKey(basis))
}

// InstallIDToBasis adds a decoder dictionary entry (id → basis).
// Control-plane API. Per the paper's protocol this must complete
// before the corresponding InstallBasisToID so that compressed
// packets can always be uncompressed.
func InstallIDToBasis(pl *tofino.Pipeline, id uint32, basis *bitvec.Vector, now int64) error {
	t, ok := pl.Table(TableIDToBasis)
	if !ok {
		return fmt.Errorf("zswitch: pipeline has no %s table", TableIDToBasis)
	}
	return t.Install(IDKey(id), basisAction{b: append([]byte(nil), basis.Bytes()...)}, now)
}

// DeleteIDToBasis removes a decoder dictionary entry.
func DeleteIDToBasis(pl *tofino.Pipeline, id uint32) bool {
	t, ok := pl.Table(TableIDToBasis)
	if !ok {
		return false
	}
	return t.Delete(IDKey(id))
}

// loadedProgram extracts the ZipLine program from a loaded pipeline.
func loadedProgram(pl *tofino.Pipeline) (*Program, error) {
	p, ok := pl.Program().(*Program)
	if !ok {
		return nil, fmt.Errorf("zswitch: pipeline runs %q, not the zipline program", pl.Program().Name())
	}
	return p, nil
}

// Restart models a dataplane power cycle: both dictionary tables are
// cleared, queued digests are lost, the bypass gate resets, and the
// program's epoch bumps. It returns the new epoch; subsequent digests
// carry it, letting the controller distinguish pre- and post-reboot
// state. Fault-injection / control-plane API.
func Restart(pl *tofino.Pipeline) (uint32, error) {
	p, err := loadedProgram(pl)
	if err != nil {
		return 0, err
	}
	for _, name := range []string{TableBasisToID, TableIDToBasis} {
		if t, ok := pl.Table(name); ok {
			t.Clear()
		}
	}
	pl.DrainDigests() // queued reports die with the reboot
	p.bypass = false
	p.epoch++
	return p.epoch, nil
}

// SetBypass sets or clears the encoder bypass gate: while set, the
// encode role forwards raw traffic uncompressed. One BfRt register
// write from the controller's perspective.
func SetBypass(pl *tofino.Pipeline, on bool) error {
	p, err := loadedProgram(pl)
	if err != nil {
		return err
	}
	p.bypass = on
	return nil
}

// Bypassing reads the encoder bypass gate (false for non-zswitch
// pipelines). Tests use it to assert reconciliation released every
// quarantine.
func Bypassing(pl *tofino.Pipeline) bool {
	p, err := loadedProgram(pl)
	if err != nil {
		return false
	}
	return p.bypass
}

// Epoch reads a pipeline's restart epoch (0 = never restarted).
func Epoch(pl *tofino.Pipeline) uint32 {
	p, err := loadedProgram(pl)
	if err != nil {
		return 0
	}
	return p.epoch
}

// SplitDigest separates a new-basis digest payload into the basis
// bytes and the emitting program's epoch. Pre-restart digests carry
// the bare basis (epoch 0); post-restart digests append a 4-byte
// big-endian epoch.
func SplitDigest(data []byte, basisBytes int) (basis []byte, epoch uint32) {
	if len(data) == basisBytes+4 {
		return data[:basisBytes], binary.BigEndian.Uint32(data[basisBytes:])
	}
	return data, 0
}

// ExpiredBases returns the basis keys whose encoder-table idle
// timeout has lapsed (the TNA aging notification feed).
func ExpiredBases(pl *tofino.Pipeline, now int64) []string {
	t, ok := pl.Table(TableBasisToID)
	if !ok {
		return nil
	}
	return t.ExpiredKeys(now)
}

// Stats is a snapshot of the program's classification counters. The
// JSON field names are stable (scenario reports and sweep matrices
// embed this struct and must diff cleanly).
type Stats struct {
	RawToType2 uint64 `json:"raw_to_type2"`
	RawToType3 uint64 `json:"raw_to_type3"`
	Type2ToRaw uint64 `json:"type2_to_raw"`
	Type3ToRaw uint64 `json:"type3_to_raw"`
	Forwarded  uint64 `json:"forwarded"`
	TooShort   uint64 `json:"too_short"`
	DecodeMiss uint64 `json:"decode_miss"`
	Digests    uint64 `json:"digests"`
	// EncPayloadIn/EncPayloadOut count payload bytes entering and
	// leaving the encode role for raw traffic; their ratio is the
	// hop's exact compression ratio.
	EncPayloadIn  uint64 `json:"enc_payload_in"`
	EncPayloadOut uint64 `json:"enc_payload_out"`
	// Bypass counts raw frames forwarded uncompressed under the
	// control-plane bypass gate (omitted from JSON when zero so
	// fault-free reports keep their pre-fault bytes).
	Bypass uint64 `json:"bypass,omitempty"`
}

// ReadStats snapshots the counters of a loaded pipeline.
func ReadStats(pl *tofino.Pipeline) Stats {
	return Stats{
		RawToType2:    pl.Counter(CounterRawToType2),
		RawToType3:    pl.Counter(CounterRawToType3),
		Type2ToRaw:    pl.Counter(CounterType2ToRaw),
		Type3ToRaw:    pl.Counter(CounterType3ToRaw),
		Forwarded:     pl.Counter(CounterForwarded),
		TooShort:      pl.Counter(CounterTooShort),
		DecodeMiss:    pl.Counter(CounterDecodeMiss),
		Digests:       pl.Counter(CounterDigests),
		EncPayloadIn:  pl.Counter(CounterEncPayloadIn),
		EncPayloadOut: pl.Counter(CounterEncPayloadOut),
		Bypass:        pl.Counter(CounterBypass),
	}
}

// Add accumulates o into s (aggregating several pipelines' views).
func (s *Stats) Add(o Stats) {
	s.RawToType2 += o.RawToType2
	s.RawToType3 += o.RawToType3
	s.Type2ToRaw += o.Type2ToRaw
	s.Type3ToRaw += o.Type3ToRaw
	s.Forwarded += o.Forwarded
	s.TooShort += o.TooShort
	s.DecodeMiss += o.DecodeMiss
	s.Digests += o.Digests
	s.EncPayloadIn += o.EncPayloadIn
	s.EncPayloadOut += o.EncPayloadOut
	s.Bypass += o.Bypass
}

// Encoded reports the total packets the encoder path transformed.
func (s Stats) Encoded() uint64 { return s.RawToType2 + s.RawToType3 }

// Decoded reports the total packets the decoder path restored.
func (s Stats) Decoded() uint64 { return s.Type2ToRaw + s.Type3ToRaw }
