package zswitch_test

import (
	"math/rand"
	"testing"

	"zipline/internal/packet"
	"zipline/internal/tofino"
	. "zipline/internal/zswitch"
)

// Alloc-regression tests: the steady-state dataplane must not touch
// the allocator (tentpole of the zero-allocation refactor). Any
// change that reintroduces a per-packet allocation — a string table
// key, a fresh emit slice, a frame make — fails here rather than
// silently eroding the benchmarks.

// allocsSteadyState measures allocations per ProcessAppend call after
// a warmup pass that lets scratch buffers reach their steady size.
func allocsSteadyState(t *testing.T, pl *tofino.Pipeline, frame []byte) float64 {
	t.Helper()
	scratch := make([]tofino.Emit, 0, 4)
	now := int64(0)
	process := func() {
		now++
		scratch = pl.ProcessAppend(now, frame, 0, scratch[:0])
	}
	process() // warmup: scratch growth is amortised setup, not steady state
	return testing.AllocsPerRun(500, process)
}

func TestEncodeSteadyStateZeroAllocs(t *testing.T) {
	for _, cfg := range []Config{{}, {Packed: true}} {
		prog, pl := loadRole(t, cfg, RoleEncode)
		frame := testRawFrame(prog, 11)
		// Install the basis so the steady state is the type-3 path.
		_, payload, _ := packet.ParseHeader(frame)
		s, err := prog.Codec().SplitChunk(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := InstallBasisToID(pl, s.Basis, 3, 0); err != nil {
			t.Fatal(err)
		}
		if n := allocsSteadyState(t, pl, frame); n != 0 {
			t.Errorf("cfg %+v: encode allocates %.1f per packet, want 0", cfg, n)
		}
	}
}

func TestDecodeSteadyStateZeroAllocs(t *testing.T) {
	for _, cfg := range []Config{{}, {Packed: true}} {
		encProg, encPl := loadRole(t, cfg, RoleEncode)
		raw := testRawFrame(encProg, 12)
		_, payload, _ := packet.ParseHeader(raw)
		s, err := encProg.Codec().SplitChunk(payload)
		if err != nil {
			t.Fatal(err)
		}

		// Type 3 steady state.
		if err := InstallBasisToID(encPl, s.Basis, 9, 0); err != nil {
			t.Fatal(err)
		}
		t3 := clonedEmit(t, encPl, raw)
		_, decPl := loadRole(t, cfg, RoleDecode)
		if err := InstallIDToBasis(decPl, 9, s.Basis, 0); err != nil {
			t.Fatal(err)
		}
		if n := allocsSteadyState(t, decPl, t3); n != 0 {
			t.Errorf("cfg %+v: type-3 decode allocates %.1f per packet, want 0", cfg, n)
		}

		// Type 2 steady state (no dictionary involved).
		encProg2, encPl2 := loadRole(t, cfg, RoleEncode)
		t2 := clonedEmit(t, encPl2, testRawFrame(encProg2, 13))
		_, decPl2 := loadRole(t, cfg, RoleDecode)
		if n := allocsSteadyState(t, decPl2, t2); n != 0 {
			t.Errorf("cfg %+v: type-2 decode allocates %.1f per packet, want 0", cfg, n)
		}
	}
}

func TestForwardSteadyStateZeroAllocs(t *testing.T) {
	prog, pl := loadRole(t, Config{}, RoleForward)
	frame := testRawFrame(prog, 14)
	if n := allocsSteadyState(t, pl, frame); n != 0 {
		t.Errorf("forward allocates %.1f per packet, want 0", n)
	}
}

// loadRole builds a one-port pipeline in the given role.
func loadRole(t *testing.T, cfg Config, role Role) (*Program, *tofino.Pipeline) {
	t.Helper()
	cfg.Roles = map[tofino.Port]Role{0: role}
	cfg.PortMap = map[tofino.Port]tofino.Port{0: 1}
	prog, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tofino.Load(tofino.Config{Name: "alloc"}, prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, pl
}

func testRawFrame(prog *Program, seed int64) []byte {
	payload := make([]byte, prog.Codec().ChunkBytes())
	rand.New(rand.NewSource(seed)).Read(payload)
	return packet.Frame(packet.Header{
		Dst:       packet.MAC{2, 0, 0, 0, 0, 2},
		Src:       packet.MAC{2, 0, 0, 0, 0, 1},
		EtherType: packet.EtherTypeRaw,
	}, payload)
}

// clonedEmit runs one frame through the pipeline and returns a
// durable copy of the single emitted frame.
func clonedEmit(t *testing.T, pl *tofino.Pipeline, frame []byte) []byte {
	t.Helper()
	emits := pl.Process(0, frame, 0)
	if len(emits) != 1 {
		t.Fatalf("%d emissions, want 1", len(emits))
	}
	pl.DrainDigests()
	return emits[0].Frame
}
