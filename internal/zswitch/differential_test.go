package zswitch_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/tofino"
	. "zipline/internal/zswitch"
)

// Differential test of the zero-allocation dataplane against an
// independent reference model built on the generic (bit-vector)
// codec paths and plain maps — the semantics the pre-refactor
// implementation had. Randomized traffic with dictionary install /
// delete / TTL churn must yield byte-identical output frames,
// identical counters, identical digests and identical TTL expiry
// sets.

var diffMACs = struct{ a, b packet.MAC }{
	a: packet.MAC{0x02, 0, 0, 0, 0, 1},
	b: packet.MAC{0x02, 0, 0, 0, 0, 2},
}

// refModel reimplements the program's semantics the slow way.
type refModel struct {
	codec *gd.Codec
	fmt   packet.Format
	ttlNs int64

	basisToID map[string]uint32
	idToBasis map[uint32]*bitvec.Vector
	lastHit   map[string]int64

	counters map[string]uint64
	digests  [][]byte
}

func newRefModel(prog *Program) *refModel {
	return &refModel{
		codec:     prog.Codec(),
		fmt:       prog.Format(),
		ttlNs:     prog.Config().TTLNs,
		basisToID: make(map[string]uint32),
		idToBasis: make(map[uint32]*bitvec.Vector),
		lastHit:   make(map[string]int64),
		counters:  make(map[string]uint64),
	}
}

func (m *refModel) install(basis *bitvec.Vector, id uint32, now int64) {
	m.basisToID[BasisKey(basis)] = id
	m.idToBasis[id] = basis.Clone()
	m.lastHit[BasisKey(basis)] = now
}

func (m *refModel) deleteBasis(basis *bitvec.Vector) {
	key := BasisKey(basis)
	if id, ok := m.basisToID[key]; ok {
		delete(m.basisToID, key)
		delete(m.idToBasis, id)
		delete(m.lastHit, key)
	}
}

func (m *refModel) expired(now int64) map[string]bool {
	out := make(map[string]bool)
	if m.ttlNs == 0 {
		return out
	}
	for key, at := range m.lastHit {
		if now-at >= m.ttlNs {
			out[key] = true
		}
	}
	return out
}

// encode mirrors the Figure 1 path via Codec.SplitChunk and the
// Split-based Format appenders.
func (m *refModel) encode(now int64, frame []byte) [][]byte {
	hdr, payload, err := packet.ParseHeader(frame)
	if err != nil || hdr.EtherType != packet.EtherTypeRaw || len(payload) < m.codec.ChunkBytes() {
		if err == nil && hdr.EtherType == packet.EtherTypeRaw && len(payload) < m.codec.ChunkBytes() {
			m.counters[CounterTooShort]++
			m.counters[CounterEncPayloadIn] += uint64(len(payload))
			m.counters[CounterEncPayloadOut] += uint64(len(payload))
		} else {
			m.counters[CounterForwarded]++
		}
		return [][]byte{frame}
	}
	m.counters[CounterEncPayloadIn] += uint64(len(payload))
	chunk := payload[:m.codec.ChunkBytes()]
	tail := payload[m.codec.ChunkBytes():]
	s, err := m.codec.SplitChunk(chunk)
	if err != nil {
		m.counters[CounterForwarded]++
		m.counters[CounterEncPayloadOut] += uint64(len(payload))
		return [][]byte{frame}
	}
	if id, hit := m.basisToID[BasisKey(s.Basis)]; hit {
		m.lastHit[BasisKey(s.Basis)] = now
		out := packet.AppendHeader(nil, packet.Header{
			Dst: hdr.Dst, Src: hdr.Src, EtherType: packet.EtherTypeCompressed,
		})
		out = m.fmt.AppendType3(out, packet.Compressed{
			Deviation: s.Deviation, Extra: s.Extra, ID: id,
		})
		out = append(out, tail...)
		m.counters[CounterRawToType3]++
		m.counters[CounterEncPayloadOut] += uint64(len(out) - packet.HeaderLen)
		return [][]byte{out}
	}
	m.digests = append(m.digests, append([]byte(nil), s.Basis.Bytes()...))
	m.counters[CounterDigests]++
	out := packet.AppendHeader(nil, packet.Header{
		Dst: hdr.Dst, Src: hdr.Src, EtherType: packet.EtherTypeUncompressed,
	})
	out = m.fmt.AppendType2(out, s)
	out = append(out, tail...)
	m.counters[CounterRawToType2]++
	m.counters[CounterEncPayloadOut] += uint64(len(out) - packet.HeaderLen)
	return [][]byte{out}
}

// decode mirrors the Figure 2 path via the Split-based parsers and
// Codec.MergeChunk.
func (m *refModel) decode(frame []byte) [][]byte {
	hdr, payload, err := packet.ParseHeader(frame)
	if err != nil {
		return nil
	}
	var (
		s    gd.Split
		tail []byte
		cnt  string
	)
	switch hdr.Type() {
	case packet.TypeUncompressed:
		s, tail, err = m.fmt.ParseType2(payload)
		if err != nil {
			return nil
		}
		cnt = CounterType2ToRaw
	case packet.TypeCompressed:
		var c packet.Compressed
		c, tail, err = m.fmt.ParseType3(payload)
		if err != nil {
			return nil
		}
		basis, hit := m.idToBasis[c.ID]
		if !hit {
			m.counters[CounterDecodeMiss]++
			return nil
		}
		s = gd.Split{Basis: basis, Deviation: c.Deviation, Extra: c.Extra}
		cnt = CounterType3ToRaw
	default:
		m.counters[CounterForwarded]++
		return [][]byte{frame}
	}
	out := packet.AppendHeader(nil, packet.Header{
		Dst: hdr.Dst, Src: hdr.Src, EtherType: packet.EtherTypeRaw,
	})
	out, err = m.codec.MergeChunk(s, out)
	if err != nil {
		return nil
	}
	out = append(out, tail...)
	m.counters[cnt]++
	return [][]byte{out}
}

// TestDifferentialDataplane drives the real encoder and decoder
// pipelines and the reference model with the same randomized traffic
// and dictionary churn, comparing every emission.
func TestDifferentialDataplane(t *testing.T) {
	for _, cfg := range []Config{
		{TTLNs: 5_000},
		{Packed: true, TTLNs: 5_000},
		{M: 6, IDBits: 7, TTLNs: 5_000},
	} {
		t.Run(fmt.Sprintf("m%d-packed%v", cfg.M, cfg.Packed), func(t *testing.T) {
			encProg, _, enc, dec := loadPairD(t, cfg)
			ref := newRefModel(encProg)
			codec := encProg.Codec()
			rng := rand.New(rand.NewSource(1234))
			nextID := uint32(0)
			maxID := uint32(1) << uint(encProg.Config().IDBits)

			// A pool of recurring payloads so dictionary hits happen.
			pool := make([][]byte, 24)
			for i := range pool {
				p := make([]byte, codec.ChunkBytes()+rng.Intn(12))
				rng.Read(p)
				pool[i] = p
			}
			var learned []*bitvec.Vector

			for step := 0; step < 4_000; step++ {
				now := int64(step) * 10

				// Dictionary churn.
				switch r := rng.Float64(); {
				case r < 0.02 && nextID < maxID:
					// Learn the basis of a random pool payload.
					p := pool[rng.Intn(len(pool))]
					s, err := codec.SplitChunk(p[:codec.ChunkBytes()])
					if err != nil {
						t.Fatal(err)
					}
					if _, dup := ref.basisToID[BasisKey(s.Basis)]; !dup {
						if err := InstallIDToBasis(dec, nextID, s.Basis, now); err != nil {
							t.Fatal(err)
						}
						if err := InstallBasisToID(enc, s.Basis, nextID, now); err != nil {
							t.Fatal(err)
						}
						ref.install(s.Basis, nextID, now)
						learned = append(learned, s.Basis)
						nextID++
					}
				case r < 0.03 && len(learned) > 0:
					// Delete a random learned mapping (both tiers).
					i := rng.Intn(len(learned))
					basis := learned[i]
					if id, ok := ref.basisToID[BasisKey(basis)]; ok {
						DeleteBasisToID(enc, basis)
						DeleteIDToBasis(dec, id)
						ref.deleteBasis(basis)
					}
					learned = append(learned[:i], learned[i+1:]...)
				}

				// TTL expiry comparison and synchronized eviction.
				if step%250 == 249 {
					gotExp := ExpiredBases(enc, now)
					wantExp := ref.expired(now)
					if len(gotExp) != len(wantExp) {
						t.Fatalf("step %d: expired %d keys, reference %d", step, len(gotExp), len(wantExp))
					}
					for _, key := range gotExp {
						if !wantExp[key] {
							t.Fatalf("step %d: key expired in dataplane but not reference", step)
						}
						basis := bitvec.FromBytes([]byte(key), codec.BasisBits())
						if id, ok := ref.basisToID[key]; ok {
							DeleteBasisToID(enc, basis)
							DeleteIDToBasis(dec, id)
							ref.deleteBasis(basis)
							for i, b := range learned {
								if BasisKey(b) == key {
									learned = append(learned[:i], learned[i+1:]...)
									break
								}
							}
						}
					}
				}

				// Traffic: mostly pool payloads, some fresh random, some
				// malformed.
				var frame []byte
				switch r := rng.Float64(); {
				case r < 0.70:
					frame = rawFrameD(pool[rng.Intn(len(pool))])
				case r < 0.85:
					p := make([]byte, codec.ChunkBytes()+rng.Intn(8))
					rng.Read(p)
					frame = rawFrameD(p)
				case r < 0.90:
					frame = rawFrameD(make([]byte, rng.Intn(codec.ChunkBytes()))) // too short
				case r < 0.95:
					frame = packet.Frame(packet.Header{
						Dst: diffMACs.b, Src: diffMACs.a, EtherType: 0x0800,
					}, make([]byte, 40)) // foreign ethertype
				default:
					// Bogus type 3 with a random (likely unmapped) ID.
					hdrOut := packet.AppendHeader(nil, packet.Header{
						Dst: diffMACs.b, Src: diffMACs.a, EtherType: packet.EtherTypeCompressed,
					})
					frame = encProg.Format().AppendType3(hdrOut, packet.Compressed{
						Deviation: rng.Uint32() & 0x1F,
						ID:        rng.Uint32() % maxID,
					})
				}

				// Through the encoder, then everything emitted through
				// the decoder; compare at both hops.
				gotEnc := enc.Process(now, frame, 0)
				wantEnc := ref.encode(now, frame)
				compareEmits(t, step, "encode", gotEnc, wantEnc)
				for i, e := range gotEnc {
					gotDec := dec.Process(now, e.Frame, 0)
					wantDec := ref.decode(wantEnc[i])
					compareEmits(t, step, "decode", gotDec, wantDec)
				}
			}

			// Counters must agree exactly (encoder + decoder vs model).
			sum := make(map[string]uint64)
			for name, v := range enc.Counters() {
				sum[name] += v
			}
			for name, v := range dec.Counters() {
				sum[name] += v
			}
			for name, want := range ref.counters {
				if sum[name] != want {
					t.Errorf("counter %s = %d, reference %d", name, sum[name], want)
				}
			}
			for name, got := range sum {
				if got != ref.counters[name] {
					t.Errorf("counter %s = %d, reference %d", name, got, ref.counters[name])
				}
			}

			// Digests must agree in order and content.
			ds := enc.DrainDigests()
			if len(ds) != len(ref.digests) {
				t.Fatalf("%d digests, reference %d", len(ds), len(ref.digests))
			}
			for i, d := range ds {
				if d.Name != DigestNewBasis || !bytes.Equal(d.Data, ref.digests[i]) {
					t.Fatalf("digest %d diverged", i)
				}
			}
		})
	}
}

func compareEmits(t *testing.T, step int, stage string, got []tofino.Emit, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d %s: %d emissions, reference %d", step, stage, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Frame, want[i]) {
			t.Fatalf("step %d %s: frame %d diverged\n got  %x\n want %x",
				step, stage, i, got[i].Frame, want[i])
		}
	}
}

func loadPairD(t *testing.T, cfg Config) (encProg, decProg *Program, enc, dec *tofino.Pipeline) {
	t.Helper()
	encCfg := cfg
	encCfg.Roles = map[tofino.Port]Role{0: RoleEncode}
	encCfg.PortMap = map[tofino.Port]tofino.Port{0: 1}
	decCfg := cfg
	decCfg.Roles = map[tofino.Port]Role{0: RoleDecode}
	decCfg.PortMap = map[tofino.Port]tofino.Port{0: 1}
	var err error
	if encProg, err = New(encCfg); err != nil {
		t.Fatal(err)
	}
	if decProg, err = New(decCfg); err != nil {
		t.Fatal(err)
	}
	if enc, err = tofino.Load(tofino.Config{Name: "enc"}, encProg); err != nil {
		t.Fatal(err)
	}
	if dec, err = tofino.Load(tofino.Config{Name: "dec"}, decProg); err != nil {
		t.Fatal(err)
	}
	return
}

func rawFrameD(payload []byte) []byte {
	return packet.Frame(packet.Header{
		Dst: diffMACs.b, Src: diffMACs.a, EtherType: packet.EtherTypeRaw,
	}, payload)
}
