// Package zswitch is the ZipLine switch program: the P4₁₆/TNA data
// plane of the paper (§4, §5) expressed against the tofino model.
//
// Per ingress port the program acts in one of three roles:
//
//   - Encode (paper Figure 1): compute the chunk's syndrome with the
//     CRC engine, flip the indicated bit, truncate to the basis; if
//     the basis→ID table knows the basis, emit a compressed type 3
//     packet, otherwise emit a type 2 packet and digest the unknown
//     basis up to the control plane.
//   - Decode (paper Figure 2): recover the basis (for type 3 via the
//     ID→basis table), restore the parity bits by running the
//     zero-padded basis through the same CRC, and flip the
//     syndrome-indicated bit to reconstruct the original chunk.
//   - Forward: plain switching, the "no op" baseline of §7.
//
// The program never writes its own tables: unknown bases travel to
// the control plane as digests and mappings come back through the
// control-plane API, with the latency consequences §7 measures
// (the 1.77 ms learning delay).
//
// The per-packet path is allocation-free in steady state: the basis
// buffer and the output frame live in program-owned scratch that each
// Process call reuses, table lookups match on raw header bytes, and
// counters resolve to dense indices at Declare time — mirroring how
// the hardware pipeline touches no allocator at line rate. The
// consequence, as on hardware, is that emitted frames are valid only
// until the next packet enters the same program; callers that keep a
// frame longer must copy it (tofino.Pipeline.Process does).
package zswitch
