// Package netsim is a deterministic discrete-event network simulator:
// the stand-in for the paper's evaluation testbed (an Edgecore
// Wedge100BF-32X switch and two PowerEdge R7515 servers linked at
// 100 Gbit/s through Mellanox ConnectX-5 NICs, §7).
//
// Everything runs on a virtual nanosecond clock with seeded jitter,
// so every experiment is reproducible bit for bit. The components
// model exactly the quantities the paper's figures depend on:
//
//   - links with configurable rate, propagation delay and per-frame
//     wire overhead (preamble + IFG + FCS), giving serialization
//     delays and line-rate ceilings (Figure 4);
//   - hosts with a packet-per-second generator ceiling — the ≈7 Mpkt/s
//     server bottleneck the paper observes — and fixed TX/RX stack
//     latencies (Figures 4 and 5);
//   - a switch device that runs a tofino.Pipeline with a constant
//     traversal latency independent of the loaded program, the
//     architectural contract behind "encode and decode run at line
//     rate" (Figures 4 and 5);
//   - hooks that hand digests to a control-plane agent after a
//     modelled delivery delay (the learning-delay experiment).
package netsim
