package netsim

import (
	"fmt"

	"zipline/internal/tofino"
)

// SwitchConfig models the programmable switch's timing.
type SwitchConfig struct {
	// Name for diagnostics.
	Name string
	// PipelineLatencyNs is the constant port-to-port traversal time.
	// On Tofino this is fixed by the stage count regardless of the
	// loaded program — the property that makes encode and decode
	// indistinguishable from no-op in Figures 4 and 5. Default
	// 600 ns (typical published Tofino cut-through figure).
	PipelineLatencyNs Time
	// LatencyJitterFrac adds uniform noise to the traversal time.
	// Default 0.02.
	LatencyJitterFrac float64
}

// DefaultPipelineLatencyNs is the default switch traversal latency.
const DefaultPipelineLatencyNs = 600

func (c SwitchConfig) withDefaults() SwitchConfig {
	if c.PipelineLatencyNs == 0 {
		c.PipelineLatencyNs = DefaultPipelineLatencyNs
	}
	if c.LatencyJitterFrac == 0 {
		c.LatencyJitterFrac = 0.02
	}
	return c
}

// Switch is a simulated programmable switch: front-panel ports wired
// to link endpoints, a loaded tofino pipeline, and a digest tap for
// the control plane.
type Switch struct {
	sim   *Sim
	cfg   SwitchConfig
	pl    *tofino.Pipeline
	ports map[tofino.Port]*Endpoint

	// OnDigest, when set, receives digests drained after each
	// processed packet. The control plane applies its own delivery
	// latency; the tap itself is immediate.
	OnDigest func(ds []tofino.Digest)
}

// NewSwitch wraps a loaded pipeline.
func NewSwitch(sim *Sim, cfg SwitchConfig, pl *tofino.Pipeline) *Switch {
	return &Switch{sim: sim, cfg: cfg.withDefaults(), pl: pl, ports: make(map[tofino.Port]*Endpoint)}
}

// Pipeline exposes the loaded pipeline (control-plane access).
func (sw *Switch) Pipeline() *tofino.Pipeline { return sw.pl }

// AttachPort wires a link endpoint to a front-panel port.
func (sw *Switch) AttachPort(p tofino.Port, e *Endpoint) {
	if int(p) < 0 || int(p) >= sw.pl.Config().Ports {
		panic(fmt.Sprintf("netsim: switch %s has no port %d", sw.cfg.Name, p))
	}
	if _, dup := sw.ports[p]; dup {
		panic(fmt.Sprintf("netsim: switch %s port %d already attached", sw.cfg.Name, p))
	}
	sw.ports[p] = e
	e.SetReceiver(func(frame []byte, at Time) { sw.ingress(p, frame) })
}

func (sw *Switch) ingress(p tofino.Port, frame []byte) {
	// Constant traversal latency, independent of what the program
	// does with the packet.
	d := sw.sim.Jitter(sw.cfg.PipelineLatencyNs, sw.cfg.LatencyJitterFrac)
	sw.sim.After(d, func() {
		emits := sw.pl.Process(sw.sim.Now(), frame, p)
		for _, e := range emits {
			out, ok := sw.ports[e.Port]
			if !ok {
				continue // unattached port: black hole
			}
			out.Send(e.Frame)
		}
		if sw.OnDigest != nil && sw.pl.PendingDigests() > 0 {
			sw.OnDigest(sw.pl.DrainDigests())
		}
	})
}
