package netsim

import (
	"fmt"

	"zipline/internal/tofino"
)

// SwitchConfig models the programmable switch's timing.
type SwitchConfig struct {
	// Name for diagnostics.
	Name string
	// PipelineLatencyNs is the constant port-to-port traversal time.
	// On Tofino this is fixed by the stage count regardless of the
	// loaded program — the property that makes encode and decode
	// indistinguishable from no-op in Figures 4 and 5. Default
	// 600 ns (typical published Tofino cut-through figure).
	PipelineLatencyNs Time
	// LatencyJitterFrac adds uniform noise to the traversal time.
	// Default 0.02.
	LatencyJitterFrac float64
}

// DefaultPipelineLatencyNs is the default switch traversal latency.
const DefaultPipelineLatencyNs = 600

func (c SwitchConfig) withDefaults() SwitchConfig {
	if c.PipelineLatencyNs == 0 {
		c.PipelineLatencyNs = DefaultPipelineLatencyNs
	}
	if c.LatencyJitterFrac == 0 {
		c.LatencyJitterFrac = 0.02
	}
	return c
}

// Switch is a simulated programmable switch: front-panel ports wired
// to link endpoints, a loaded tofino pipeline, and a digest tap for
// the control plane.
type Switch struct {
	sim   *Sim
	lane  Lane
	cfg   SwitchConfig
	pl    *tofino.Pipeline
	ports map[tofino.Port]*Endpoint

	// emits is the reused scratch for Pipeline.ProcessAppend; arena
	// is the current frame block emitted frames are copied into (see
	// retain).
	emits []tofino.Emit
	arena []byte

	// down gates the dataplane: a crashed (or rebooting, or
	// control-plane-unreconciled) switch drops every arriving frame.
	down bool

	// DownDrops counts frames that arrived while the switch was down.
	DownDrops uint64

	// OnDigest, when set, receives digests drained after each
	// processed packet. The control plane applies its own delivery
	// latency; the tap itself is immediate.
	OnDigest func(ds []tofino.Digest)
}

// NewSwitch wraps a loaded pipeline. Each switch gets its own event
// lane: traversal events shard per switch and merge deterministically.
func NewSwitch(sim *Sim, cfg SwitchConfig, pl *tofino.Pipeline) *Switch {
	return &Switch{sim: sim, lane: sim.NewLane(), cfg: cfg.withDefaults(), pl: pl, ports: make(map[tofino.Port]*Endpoint)}
}

// Pipeline exposes the loaded pipeline (control-plane access).
func (sw *Switch) Pipeline() *tofino.Pipeline { return sw.pl }

// SetDown crashes or revives the dataplane. While down, frames
// arriving on any port are dropped; frames already inside the
// pipeline's traversal window are dropped at completion (the crash
// loses them too). Fault-schedule API.
func (sw *Switch) SetDown(down bool) { sw.down = down }

// Down reports whether the dataplane is down.
func (sw *Switch) Down() bool { return sw.down }

// AttachPort wires a link endpoint to a front-panel port.
func (sw *Switch) AttachPort(p tofino.Port, e *Endpoint) {
	if int(p) < 0 || int(p) >= sw.pl.Config().Ports {
		panic(fmt.Sprintf("netsim: switch %s has no port %d", sw.cfg.Name, p))
	}
	if _, dup := sw.ports[p]; dup {
		panic(fmt.Sprintf("netsim: switch %s port %d already attached", sw.cfg.Name, p))
	}
	sw.ports[p] = e
	e.SetReceiver(func(frame []byte, at Time) { sw.ingress(p, frame) })
}

func (sw *Switch) ingress(p tofino.Port, frame []byte) {
	if sw.down {
		sw.DownDrops++
		return
	}
	// Constant traversal latency, independent of what the program
	// does with the packet.
	d := sw.sim.Jitter(sw.cfg.PipelineLatencyNs, sw.cfg.LatencyJitterFrac)
	sw.sim.AfterLane(sw.lane, d, func() {
		if sw.down {
			// Crashed mid-traversal: the packet is lost with the
			// pipeline state.
			sw.DownDrops++
			return
		}
		sw.emits = sw.pl.ProcessAppend(sw.sim.Now(), frame, p, sw.emits[:0])
		for _, e := range sw.emits {
			out, ok := sw.ports[e.Port]
			if !ok {
				continue // unattached port: black hole
			}
			if sameSlice(e.Frame, frame) {
				// Forwarded unchanged: the input frame already has
				// link-delivery lifetime, pass it straight through.
				out.Send(e.Frame)
				continue
			}
			out.Send(sw.retain(e.Frame))
		}
		if sw.OnDigest != nil && sw.pl.PendingDigests() > 0 {
			sw.OnDigest(sw.pl.DrainDigests())
		}
	})
}

// arenaBlockSize sizes the switch's frame blocks: big enough to
// amortise thousands of MTU-scale frames per allocation, small enough
// that retired blocks return to the GC as their in-flight frames die.
const arenaBlockSize = 64 << 10

// retain copies a frame out of pipeline scratch (valid only until the
// next ProcessAppend) into the switch's current frame block, giving
// it the lifetime link delivery needs. One allocation covers
// thousands of frames instead of one each; a full block is dropped
// and stays alive only while frames inside it are still in flight.
func (sw *Switch) retain(frame []byte) []byte {
	if len(frame) > arenaBlockSize {
		return append([]byte(nil), frame...)
	}
	if len(sw.arena)+len(frame) > cap(sw.arena) {
		sw.arena = make([]byte, 0, arenaBlockSize)
	}
	base := len(sw.arena)
	sw.arena = append(sw.arena, frame...)
	return sw.arena[base:len(sw.arena):len(sw.arena)]
}

// sameSlice reports whether a and b are the identical slice (same
// base pointer and length).
func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}
