package netsim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation
// start.
type Time = int64

// Common durations in nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

// eventLess is the simulator's total execution order: timestamp, then
// global scheduling sequence. seq is unique across all lanes, so two
// events never compare equal and the order is independent of how
// events are sharded.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// laneQueue is one shard of the event loop: a binary min-heap over
// (at, seq). Sharding keeps each per-component heap small and hot in
// cache, and the typed slice avoids container/heap's per-event
// interface boxing (one allocation per scheduled event in the old
// single-heap engine).
type laneQueue struct {
	events []event
	// pos is this lane's index in the merge heap, -1 while the lane
	// is empty (and so absent from the merge).
	pos int
}

// push inserts an event and reports whether it became the lane's new
// head (the merge heap must then re-rank the lane).
func (q *laneQueue) push(e event) bool {
	q.events = append(q.events, e)
	i := len(q.events) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&q.events[i], &q.events[p]) {
			break
		}
		q.events[i], q.events[p] = q.events[p], q.events[i]
		i = p
	}
	return i == 0
}

// pop removes and returns the lane's head event.
func (q *laneQueue) pop() event {
	e := q.events[0]
	n := len(q.events) - 1
	q.events[0] = q.events[n]
	q.events[n].fn = nil // release the closure to the GC
	q.events = q.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && eventLess(&q.events[l], &q.events[m]) {
			m = l
		}
		if r < n && eventLess(&q.events[r], &q.events[m]) {
			m = r
		}
		if m == i {
			break
		}
		q.events[i], q.events[m] = q.events[m], q.events[i]
		i = m
	}
	return e
}

// Lane identifies one shard of the event loop. Components that
// schedule heavily (switches, links, hosts, the control plane) each
// take a lane of their own; DefaultLane serves everything else.
type Lane int

// DefaultLane is the lane At and After schedule on. Every simulator
// has it from birth.
const DefaultLane Lane = 0

// Sim is the event loop, sharded into per-component lanes merged
// deterministically by (timestamp, scheduling sequence). Not safe for
// concurrent use: the simulation is single-threaded by design
// (determinism). The execution order is identical to a single global
// heap — lane assignment is a performance choice, never a semantic
// one — so reports are byte-stable across engine versions for a
// given seed.
type Sim struct {
	now     Time
	lanes   []*laneQueue
	merge   []int // indexed heap of non-empty lanes, ranked by head event
	pending int
	seq     uint64
	rng     *rand.Rand
}

// NewSim creates a simulator whose jitter sources derive from seed.
func NewSim(seed int64) *Sim {
	s := &Sim{rng: rand.New(rand.NewSource(seed))}
	s.lanes = append(s.lanes, &laneQueue{pos: -1}) // DefaultLane
	return s
}

// NewLane adds an event-queue shard and returns its handle. Lanes are
// cheap; one per simulated component keeps every heap small.
func (s *Sim) NewLane() Lane {
	s.lanes = append(s.lanes, &laneQueue{pos: -1})
	return Lane(len(s.lanes) - 1)
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's seeded random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute time t (not before now) on the default
// lane.
func (s *Sim) At(t Time, fn func()) { s.AtLane(DefaultLane, t, fn) }

// After schedules fn d nanoseconds from now on the default lane.
func (s *Sim) After(d Time, fn func()) { s.AfterLane(DefaultLane, d, fn) }

// AtLane schedules fn at absolute time t (not before now) on lane l.
func (s *Sim) AtLane(l Lane, t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling into the past (%d < %d)", t, s.now))
	}
	s.seq++
	q := s.lanes[l]
	wasEmpty := len(q.events) == 0
	headChanged := q.push(event{at: t, seq: s.seq, fn: fn})
	s.pending++
	if wasEmpty {
		s.mergeAdd(int(l))
	} else if headChanged {
		s.mergeUp(q.pos)
	}
}

// AfterLane schedules fn d nanoseconds from now on lane l.
func (s *Sim) AfterLane(l Lane, d Time, fn func()) {
	if d < 0 {
		panic("netsim: negative delay")
	}
	s.AtLane(l, s.now+d, fn)
}

// Jitter returns a duration drawn uniformly from
// [d·(1−frac), d·(1+frac)], the simulator's model of measurement
// noise.
func (s *Sim) Jitter(d Time, frac float64) Time {
	if d == 0 || frac == 0 {
		return d
	}
	lo := float64(d) * (1 - frac)
	hi := float64(d) * (1 + frac)
	return Time(lo + s.rng.Float64()*(hi-lo))
}

// laneLess ranks two merge-heap entries by their lanes' head events.
func (s *Sim) laneLess(a, b int) bool {
	return eventLess(&s.lanes[a].events[0], &s.lanes[b].events[0])
}

// mergeSwap exchanges two merge-heap slots and fixes the lanes'
// back-pointers.
func (s *Sim) mergeSwap(i, j int) {
	s.merge[i], s.merge[j] = s.merge[j], s.merge[i]
	s.lanes[s.merge[i]].pos = i
	s.lanes[s.merge[j]].pos = j
}

func (s *Sim) mergeUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.laneLess(s.merge[i], s.merge[p]) {
			return
		}
		s.mergeSwap(i, p)
		i = p
	}
}

func (s *Sim) mergeDown(i int) {
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(s.merge) && s.laneLess(s.merge[l], s.merge[m]) {
			m = l
		}
		if r < len(s.merge) && s.laneLess(s.merge[r], s.merge[m]) {
			m = r
		}
		if m == i {
			return
		}
		s.mergeSwap(i, m)
		i = m
	}
}

// mergeAdd registers a newly non-empty lane in the merge heap.
func (s *Sim) mergeAdd(lane int) {
	s.lanes[lane].pos = len(s.merge)
	s.merge = append(s.merge, lane)
	s.mergeUp(s.lanes[lane].pos)
}

// mergeRemove drops a newly empty lane from the merge heap.
func (s *Sim) mergeRemove(lane int) {
	i := s.lanes[lane].pos
	last := len(s.merge) - 1
	s.mergeSwap(i, last)
	s.merge = s.merge[:last]
	s.lanes[lane].pos = -1
	if i < last {
		s.mergeDown(i)
		s.mergeUp(i)
	}
}

// popNext removes and returns the globally earliest event: the head
// of the best-ranked lane in the merge heap.
func (s *Sim) popNext() (event, bool) {
	if len(s.merge) == 0 {
		return event{}, false
	}
	lane := s.merge[0]
	q := s.lanes[lane]
	e := q.pop()
	s.pending--
	if len(q.events) == 0 {
		s.mergeRemove(lane)
	} else {
		s.mergeDown(0)
	}
	return e, true
}

// head returns the globally earliest pending event without removing
// it (nil when the queues are drained).
func (s *Sim) head() *event {
	if len(s.merge) == 0 {
		return nil
	}
	return &s.lanes[s.merge[0]].events[0]
}

// Run executes events until every lane drains.
func (s *Sim) Run() {
	for {
		e, ok := s.popNext()
		if !ok {
			return
		}
		s.now = e.at
		e.fn()
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances
// the clock to the deadline. Later events stay queued.
func (s *Sim) RunUntil(deadline Time) {
	for h := s.head(); h != nil && h.at <= deadline; h = s.head() {
		e, _ := s.popNext()
		s.now = e.at
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events across all lanes.
func (s *Sim) Pending() int { return s.pending }

// Scheduled reports the total number of events scheduled since the
// simulator was created — the denominator for events-per-second
// wall-clock measurements of the engine itself.
func (s *Sim) Scheduled() uint64 { return s.seq }
