package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation
// start.
type Time = int64

// Common durations in nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop. Not safe for concurrent use: the simulation
// is single-threaded by design (determinism).
type Sim struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *rand.Rand
}

// NewSim creates a simulator whose jitter sources derive from seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's seeded random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute time t (not before now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling into the past (%d < %d)", t, s.now))
	}
	s.seq++
	heap.Push(&s.heap, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		panic("netsim: negative delay")
	}
	s.At(s.now+d, fn)
}

// Jitter returns a duration drawn uniformly from
// [d·(1−frac), d·(1+frac)], the simulator's model of measurement
// noise.
func (s *Sim) Jitter(d Time, frac float64) Time {
	if d == 0 || frac == 0 {
		return d
	}
	lo := float64(d) * (1 - frac)
	hi := float64(d) * (1 + frac)
	return Time(lo + s.rng.Float64()*(hi-lo))
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(event)
		s.now = e.at
		e.fn()
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances
// the clock to the deadline. Later events stay queued.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		e := heap.Pop(&s.heap).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.heap) }

// Scheduled reports the total number of events scheduled since the
// simulator was created — the denominator for events-per-second
// wall-clock measurements of the engine itself.
func (s *Sim) Scheduled() uint64 { return s.seq }
