package netsim

import (
	"strings"
	"testing"

	"zipline/internal/packet"
)

func TestFaultSpecArmed(t *testing.T) {
	var nilSpec *FaultSpec
	if nilSpec.Armed() {
		t.Fatal("nil spec must be unarmed")
	}
	if (&FaultSpec{}).Armed() {
		t.Fatal("zero spec must be unarmed")
	}
	if (&FaultSpec{RetransmitTimeoutNs: 1, MaxRetries: 3}).Armed() {
		t.Fatal("tuning knobs alone must not arm the fault model")
	}
	for _, s := range []*FaultSpec{
		{ControlLossProb: 0.1},
		{Restarts: []RestartSpec{{Switch: "sw"}}},
		{LinkFlaps: []FlapSpec{{Link: 0}}},
	} {
		if !s.Armed() {
			t.Fatalf("spec %+v must be armed", s)
		}
	}
}

func TestFaultSpecWithDefaults(t *testing.T) {
	f := FaultSpec{
		Restarts:  []RestartSpec{{Switch: "a"}, {Switch: "b", DownNs: 7}},
		LinkFlaps: []FlapSpec{{Link: 0}},
	}.WithDefaults()
	if f.RetransmitTimeoutNs != int64(DefaultRetransmitTimeoutNs) {
		t.Fatalf("RetransmitTimeoutNs = %d", f.RetransmitTimeoutNs)
	}
	if f.MaxRetries != DefaultMaxRetries {
		t.Fatalf("MaxRetries = %d", f.MaxRetries)
	}
	if f.Restarts[0].DownNs != int64(DefaultRestartDownNs) || f.Restarts[1].DownNs != 7 {
		t.Fatalf("restart defaults: %+v", f.Restarts)
	}
	if f.LinkFlaps[0].DownNs != int64(DefaultFlapDownNs) {
		t.Fatalf("flap default: %+v", f.LinkFlaps[0])
	}
}

func TestFaultSpecValidate(t *testing.T) {
	swOK := func(name string) bool { return name == "enc" || name == "dec" }
	cases := []struct {
		name string
		spec FaultSpec
		want string // substring of the error, "" for valid
	}{
		{"valid", FaultSpec{
			ControlLossProb: 0.5,
			Restarts:        []RestartSpec{{Switch: "dec", AtNs: 10, DownNs: 5}},
			LinkFlaps:       []FlapSpec{{Link: 1, AtNs: 3, DownNs: 2}},
		}, ""},
		{"loss out of range", FaultSpec{ControlLossProb: 1}, "out of [0,1)"},
		{"negative loss", FaultSpec{ControlLossProb: -0.1}, "out of [0,1)"},
		{"unknown switch", FaultSpec{Restarts: []RestartSpec{{Switch: "nope"}}}, "unknown switch"},
		{"negative restart time", FaultSpec{Restarts: []RestartSpec{{Switch: "dec", AtNs: -1}}}, "negative time"},
		{"overlapping restarts", FaultSpec{Restarts: []RestartSpec{
			{Switch: "dec", AtNs: 0, DownNs: 10},
			{Switch: "dec", AtNs: 5, DownNs: 10},
		}}, "overlap"},
		{"overlap via default down", FaultSpec{Restarts: []RestartSpec{
			{Switch: "dec", AtNs: 0}, // DownNs 0 → 5 ms default
			{Switch: "dec", AtNs: int64(Millisecond)},
		}}, "overlap"},
		{"same window different switches", FaultSpec{Restarts: []RestartSpec{
			{Switch: "dec", AtNs: 0, DownNs: 10},
			{Switch: "enc", AtNs: 0, DownNs: 10},
		}}, ""},
		{"flap index out of range", FaultSpec{LinkFlaps: []FlapSpec{{Link: 2}}}, "out of range"},
		{"negative flap time", FaultSpec{LinkFlaps: []FlapSpec{{Link: 0, AtNs: -1}}}, "negative time"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate(swOK, 2)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFaultsDrop(t *testing.T) {
	var nilFaults *Faults
	if nilFaults.Drop(0.999) {
		t.Fatal("nil injector must never drop")
	}
	f := NewFaults(1)
	if f.Drop(0) {
		t.Fatal("p=0 must never drop")
	}
	drops := 0
	for i := 0; i < 10_000; i++ {
		if f.Drop(0.3) {
			drops++
		}
	}
	if f.MsgsLost != uint64(drops) {
		t.Fatalf("MsgsLost = %d, drew %d drops", f.MsgsLost, drops)
	}
	if drops < 2_700 || drops > 3_300 {
		t.Fatalf("drop rate %d/10000 far from p=0.3", drops)
	}

	// Same seed, same decisions: the loss pattern is part of the
	// byte-stability contract.
	a, b := NewFaults(42), NewFaults(42)
	for i := 0; i < 1_000; i++ {
		if a.Drop(0.5) != b.Drop(0.5) {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
}

func TestBackoff(t *testing.T) {
	base := Time(2 * Millisecond)
	want := []Time{base, 2 * base, 4 * base, 8 * base, 8 * base, 8 * base}
	for k, w := range want {
		if got := Backoff(base, k); got != w {
			t.Fatalf("Backoff(base, %d) = %v, want %v", k, got, w)
		}
	}
}

// TestSwitchDownDropsFrames: frames arriving at a downed switch are
// dropped and counted; bringing it back restores forwarding.
func TestSwitchDownDropsFrames(t *testing.T) {
	s := NewSim(5)
	ha, sw, hb := buildHostSwitchHost(t, s, noopProgram{}, HostConfig{})
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 50))

	s.At(0, func() { sw.SetDown(true) })
	ha.Stream(0, 0, func(i uint64) []byte {
		if i >= 10 {
			return nil
		}
		return frame
	})
	s.Run()
	if got := hb.Rx().Frames; got != 0 {
		t.Fatalf("downed switch forwarded %d frames", got)
	}
	if sw.DownDrops != 10 {
		t.Fatalf("DownDrops = %d, want 10", sw.DownDrops)
	}

	sw.SetDown(false)
	ha.Stream(s.Now(), 0, func(i uint64) []byte {
		if i >= 10 {
			return nil
		}
		return frame
	})
	s.Run()
	if got := hb.Rx().Frames; got != 10 {
		t.Fatalf("restored switch delivered %d of 10 frames", got)
	}
}

// TestEndpointDownDropsFrames: a downed link endpoint models a flap —
// transmissions in the window are lost and counted.
func TestEndpointDownDropsFrames(t *testing.T) {
	s := NewSim(6)
	aNIC, bNIC := NewLink(s, LinkConfig{}, "a", "b")
	ha := NewHost(s, HostConfig{Name: "a"}, aNIC)
	hb := NewHost(s, HostConfig{Name: "b"}, bNIC)
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 50))

	bNIC.SetDown(true)
	s.At(0, func() { ha.Send(frame) })
	s.Run()
	if hb.Rx().Frames != 0 {
		t.Fatal("frame crossed a downed endpoint")
	}
	if bNIC.Stats.DownDrops == 0 {
		t.Fatal("down drop not counted")
	}

	bNIC.SetDown(false)
	s.At(s.Now(), func() { ha.Send(frame) })
	s.Run()
	if hb.Rx().Frames != 1 {
		t.Fatalf("restored endpoint delivered %d frames, want 1", hb.Rx().Frames)
	}
}
