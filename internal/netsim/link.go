package netsim

import "fmt"

// Ethernet wire overhead per frame beyond the frame bytes themselves:
// 7 B preamble + 1 B SFD + 12 B inter-frame gap + 4 B FCS.
const WireOverheadBytes = 24

// LinkConfig sizes one full-duplex link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (default 100 Gbit/s,
	// the testbed's links).
	RateBps int64
	// PropagationNs is the one-way propagation delay (default 5 ns,
	// about a metre of fibre).
	PropagationNs Time
}

// Default link parameters (the paper's testbed).
const (
	DefaultRateBps       = 100_000_000_000 // 100 Gbit/s
	DefaultPropagationNs = 5
)

func (c LinkConfig) withDefaults() LinkConfig {
	if c.RateBps == 0 {
		c.RateBps = DefaultRateBps
	}
	if c.PropagationNs == 0 {
		c.PropagationNs = DefaultPropagationNs
	}
	return c
}

// Endpoint is one side of a link: frames sent here appear at the
// other side's receiver after serialization and propagation. An
// Endpoint models the egress queue of a port: back-to-back sends
// queue behind one another at line rate (drop-free, as the testbed's
// flow control keeps the paper's measurements loss-free).
type Endpoint struct {
	sim  *Sim
	cfg  LinkConfig
	name string

	peer *Endpoint
	recv func(frame []byte, at Time)

	busyUntil Time

	// TxFrames and TxBytes count transmitted traffic (frame bytes,
	// excluding wire overhead — the quantity Figure 4 reports).
	TxFrames uint64
	TxBytes  uint64
}

// NewLink wires two endpoints together and returns them. Receivers
// are attached afterwards with SetReceiver.
func NewLink(sim *Sim, cfg LinkConfig, nameA, nameB string) (*Endpoint, *Endpoint) {
	cfg = cfg.withDefaults()
	a := &Endpoint{sim: sim, cfg: cfg, name: nameA}
	b := &Endpoint{sim: sim, cfg: cfg, name: nameB}
	a.peer, b.peer = b, a
	return a, b
}

// SetReceiver registers the delivery callback invoked when a frame
// fully arrives at this endpoint.
func (e *Endpoint) SetReceiver(fn func(frame []byte, at Time)) { e.recv = fn }

// Rate returns the link rate in bits per second.
func (e *Endpoint) Rate() int64 { return e.cfg.RateBps }

// SerializationDelay returns how long a frame of n bytes occupies the
// wire, including overhead.
func (e *Endpoint) SerializationDelay(n int) Time {
	bits := int64(n+WireOverheadBytes) * 8
	return Time(bits * Second / e.cfg.RateBps)
}

// Send queues a frame for transmission towards the peer endpoint. The
// frame is owned by the simulator after the call. It returns the time
// transmission will finish (serialization complete at the sender).
func (e *Endpoint) Send(frame []byte) Time {
	if e.peer == nil {
		panic(fmt.Sprintf("netsim: endpoint %s is not wired", e.name))
	}
	start := e.sim.Now()
	if e.busyUntil > start {
		start = e.busyUntil // queue behind the frame on the wire
	}
	done := start + e.SerializationDelay(len(frame))
	e.busyUntil = done
	e.TxFrames++
	e.TxBytes += uint64(len(frame))

	arrive := done + e.cfg.PropagationNs
	peer := e.peer
	e.sim.At(arrive, func() {
		if peer.recv != nil {
			peer.recv(frame, arrive)
		}
	})
	return done
}

// QueueDelay reports how long a frame sent now would wait before its
// first bit hits the wire.
func (e *Endpoint) QueueDelay() Time {
	if e.busyUntil > e.sim.Now() {
		return e.busyUntil - e.sim.Now()
	}
	return 0
}
