package netsim

import "fmt"

// Ethernet wire overhead per frame beyond the frame bytes themselves:
// 7 B preamble + 1 B SFD + 12 B inter-frame gap + 4 B FCS.
const WireOverheadBytes = 24

// Impairments degrades a link the way a congested or faulty network
// segment would. All probabilities are per transmitted frame and all
// draws come from the simulation's seeded random source, so impaired
// runs stay reproducible bit for bit. The zero value is the ideal
// (testbed) link the paper measures on.
type Impairments struct {
	// LossProb drops a frame after serialization, i.i.d.
	LossProb float64
	// DupProb delivers a second copy of a frame, DupDelayNs after the
	// original (a retransmitting segment or an L2 loop).
	DupProb float64
	// DupDelayNs spaces the duplicate copy (default 2 µs).
	DupDelayNs Time
	// ReorderProb holds a frame back by ReorderDelayNs so later frames
	// overtake it.
	ReorderProb float64
	// ReorderDelayNs is the hold-back applied to reordered frames
	// (default 5 µs).
	ReorderDelayNs Time
	// ExtraLatencyNs adds a per-frame latency drawn uniformly from
	// [0, ExtraLatencyNs] — standing queueing on an overloaded path.
	ExtraLatencyNs Time
}

// Default impairment delays, applied when the matching probability is
// positive but the delay is left zero.
const (
	DefaultDupDelayNs     = 2 * Microsecond
	DefaultReorderDelayNs = 5 * Microsecond
)

func (im Impairments) withDefaults() Impairments {
	if im.DupProb > 0 && im.DupDelayNs == 0 {
		im.DupDelayNs = DefaultDupDelayNs
	}
	if im.ReorderProb > 0 && im.ReorderDelayNs == 0 {
		im.ReorderDelayNs = DefaultReorderDelayNs
	}
	return im
}

// active reports whether any impairment is configured.
func (im Impairments) active() bool {
	return im.LossProb > 0 || im.DupProb > 0 || im.ReorderProb > 0 || im.ExtraLatencyNs > 0
}

// LinkStats counts what an endpoint's impairments did to its traffic.
type LinkStats struct {
	// Lost frames were serialized but never delivered.
	Lost uint64
	// Duplicated frames were delivered twice.
	Duplicated uint64
	// Reordered frames were held back past later traffic.
	Reordered uint64
	// DownDrops counts frames offered while the link was
	// administratively down (a fault-schedule flap).
	DownDrops uint64
}

// LinkConfig sizes one full-duplex link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (default 100 Gbit/s,
	// the testbed's links).
	RateBps int64
	// PropagationNs is the one-way propagation delay (default 5 ns,
	// about a metre of fibre).
	PropagationNs Time
	// Impair degrades frames in both directions; zero means the
	// ideal loss-free link of the paper's testbed.
	Impair Impairments
}

// Default link parameters (the paper's testbed).
const (
	DefaultRateBps       = 100_000_000_000 // 100 Gbit/s
	DefaultPropagationNs = 5
)

func (c LinkConfig) withDefaults() LinkConfig {
	if c.RateBps == 0 {
		c.RateBps = DefaultRateBps
	}
	if c.PropagationNs == 0 {
		c.PropagationNs = DefaultPropagationNs
	}
	c.Impair = c.Impair.withDefaults()
	return c
}

// Endpoint is one side of a link: frames sent here appear at the
// other side's receiver after serialization and propagation. An
// Endpoint models the egress queue of a port: back-to-back sends
// queue behind one another at line rate (drop-free, as the testbed's
// flow control keeps the paper's measurements loss-free).
type Endpoint struct {
	sim  *Sim
	lane Lane
	cfg  LinkConfig
	name string

	peer *Endpoint
	recv func(frame []byte, at Time)

	busyUntil Time
	down      bool

	// TxFrames and TxBytes count transmitted traffic (frame bytes,
	// excluding wire overhead — the quantity Figure 4 reports).
	TxFrames uint64
	TxBytes  uint64

	// Stats counts what this endpoint's impairments did to the frames
	// it transmitted.
	Stats LinkStats
}

// NewLink wires two endpoints together and returns them. Receivers
// are attached afterwards with SetReceiver. Both directions share one
// event lane: delivery events shard per link and merge
// deterministically.
func NewLink(sim *Sim, cfg LinkConfig, nameA, nameB string) (*Endpoint, *Endpoint) {
	cfg = cfg.withDefaults()
	lane := sim.NewLane()
	a := &Endpoint{sim: sim, lane: lane, cfg: cfg, name: nameA}
	b := &Endpoint{sim: sim, lane: lane, cfg: cfg, name: nameB}
	a.peer, b.peer = b, a
	return a, b
}

// SetReceiver registers the delivery callback invoked when a frame
// fully arrives at this endpoint.
func (e *Endpoint) SetReceiver(fn func(frame []byte, at Time)) { e.recv = fn }

// Rate returns the link rate in bits per second.
func (e *Endpoint) Rate() int64 { return e.cfg.RateBps }

// SetDown flaps this transmit direction: while down, offered frames
// are dropped (carrier loss). Fault-schedule API; flap both endpoints
// to take a full-duplex link down.
func (e *Endpoint) SetDown(down bool) { e.down = down }

// Down reports whether this transmit direction is administratively
// down.
func (e *Endpoint) Down() bool { return e.down }

// SerializationDelay returns how long a frame of n bytes occupies the
// wire, including overhead.
func (e *Endpoint) SerializationDelay(n int) Time {
	bits := int64(n+WireOverheadBytes) * 8
	return Time(bits * Second / e.cfg.RateBps)
}

// Send queues a frame for transmission towards the peer endpoint. The
// frame is owned by the simulator after the call. It returns the time
// transmission will finish (serialization complete at the sender).
func (e *Endpoint) Send(frame []byte) Time {
	if e.peer == nil {
		panic(fmt.Sprintf("netsim: endpoint %s is not wired", e.name))
	}
	if e.down {
		e.Stats.DownDrops++
		return e.sim.Now() // no carrier: the frame never hits the wire
	}
	start := e.sim.Now()
	if e.busyUntil > start {
		start = e.busyUntil // queue behind the frame on the wire
	}
	done := start + e.SerializationDelay(len(frame))
	e.busyUntil = done
	e.TxFrames++
	e.TxBytes += uint64(len(frame))

	arrive := done + e.cfg.PropagationNs
	if im := e.cfg.Impair; im.active() {
		rng := e.sim.Rand()
		if im.LossProb > 0 && rng.Float64() < im.LossProb {
			e.Stats.Lost++
			return done // serialized, then lost on the wire
		}
		if im.ExtraLatencyNs > 0 {
			arrive += Time(rng.Int63n(int64(im.ExtraLatencyNs) + 1))
		}
		if im.ReorderProb > 0 && rng.Float64() < im.ReorderProb {
			e.Stats.Reordered++
			arrive += im.ReorderDelayNs
		}
		if im.DupProb > 0 && rng.Float64() < im.DupProb {
			e.Stats.Duplicated++
			e.deliver(frame, arrive+im.DupDelayNs)
		}
	}
	e.deliver(frame, arrive)
	return done
}

// deliver schedules the frame's arrival at the peer. A peer that is
// down at arrival time loses the frame — it was in flight when the
// flap started.
func (e *Endpoint) deliver(frame []byte, arrive Time) {
	peer := e.peer
	e.sim.AtLane(e.lane, arrive, func() {
		if peer.down {
			peer.Stats.DownDrops++
			return
		}
		if peer.recv != nil {
			peer.recv(frame, arrive)
		}
	})
}

// QueueDelay reports how long a frame sent now would wait before its
// first bit hits the wire.
func (e *Endpoint) QueueDelay() Time {
	if e.busyUntil > e.sim.Now() {
		return e.busyUntil - e.sim.Now()
	}
	return 0
}
