package netsim

import (
	"testing"

	"zipline/internal/packet"
	"zipline/internal/tofino"
	"zipline/internal/zswitch"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	// Same timestamp: FIFO.
	s.At(20, func() { order = append(order, 4) })
	s.Run()
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d", s.Now())
	}
}

func TestSchedulingPastPanics(t *testing.T) {
	s := NewSim(1)
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.RunUntil(15)
	if fired != 1 || s.Now() != 15 || s.Pending() != 1 {
		t.Fatalf("fired=%d now=%d pending=%d", fired, s.Now(), s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired=%d", fired)
	}
}

func TestJitterBounds(t *testing.T) {
	s := NewSim(7)
	for i := 0; i < 1000; i++ {
		d := s.Jitter(1000, 0.1)
		if d < 900 || d > 1100 {
			t.Fatalf("jitter %d outside ±10%%", d)
		}
	}
	if s.Jitter(0, 0.5) != 0 || s.Jitter(1000, 0) != 1000 {
		t.Fatal("degenerate jitter broken")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewSim(42)
		var out []Time
		for i := 0; i < 50; i++ {
			s.After(s.Jitter(1000, 0.2), func() { out = append(out, s.Now()) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestLinkSerializationAndQueueing(t *testing.T) {
	s := NewSim(1)
	a, b := NewLink(s, LinkConfig{RateBps: 1_000_000_000}, "a", "b") // 1 Gbit/s
	var arrivals []Time
	b.SetReceiver(func(frame []byte, at Time) { arrivals = append(arrivals, at) })

	// 100-byte frame: (100+24)*8 = 992 ns serialization + 5 ns prop.
	frame := make([]byte, 100)
	s.At(0, func() {
		a.Send(frame)
		a.Send(frame) // queues behind the first
	})
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 997 {
		t.Fatalf("first arrival = %d, want 997", arrivals[0])
	}
	if arrivals[1] != 997+992 {
		t.Fatalf("second arrival = %d, want %d (queued)", arrivals[1], 997+992)
	}
	if a.TxFrames != 2 || a.TxBytes != 200 {
		t.Fatalf("tx stats = %d frames %d bytes", a.TxFrames, a.TxBytes)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	s := NewSim(1)
	a, b := NewLink(s, LinkConfig{RateBps: 1_000_000_000}, "a", "b")
	var atA, atB Time
	a.SetReceiver(func(_ []byte, at Time) { atA = at })
	b.SetReceiver(func(_ []byte, at Time) { atB = at })
	s.At(0, func() {
		a.Send(make([]byte, 100))
		b.Send(make([]byte, 100)) // opposite direction: no queueing
	})
	s.Run()
	if atA != atB || atA != 997 {
		t.Fatalf("duplex broken: %d %d", atA, atB)
	}
}

// noopProgram forwards port 0 <-> 1 unconditionally.
type noopProgram struct{}

func (noopProgram) Name() string                { return "noop" }
func (noopProgram) Declare(*tofino.Alloc) error { return nil }
func (noopProgram) Process(ctx *tofino.Ctx, frame []byte, in tofino.Port, out []tofino.Emit) []tofino.Emit {
	return append(out, tofino.Emit{Port: in ^ 1, Frame: frame})
}

// buildHostSwitchHost wires host A — switch — host B and returns them.
func buildHostSwitchHost(t *testing.T, s *Sim, prog tofino.Program, hostCfg HostConfig) (*Host, *Switch, *Host) {
	t.Helper()
	pl, err := tofino.Load(tofino.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(s, SwitchConfig{Name: "sw"}, pl)
	aNIC, swA := NewLink(s, LinkConfig{}, "hostA", "sw:0")
	bNIC, swB := NewLink(s, LinkConfig{}, "hostB", "sw:1")
	cfgA, cfgB := hostCfg, hostCfg
	cfgA.Name, cfgB.Name = "A", "B"
	ha := NewHost(s, cfgA, aNIC)
	hb := NewHost(s, cfgB, bNIC)
	sw.AttachPort(0, swA)
	sw.AttachPort(1, swB)
	return ha, sw, hb
}

func TestEndToEndForwarding(t *testing.T) {
	s := NewSim(1)
	ha, _, hb := buildHostSwitchHost(t, s, noopProgram{}, HostConfig{})
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 50))
	var rtt Time
	sent := Time(0)
	hb.OnReceive = func(f []byte, at Time) { rtt = at - sent }
	s.At(0, func() { ha.Send(frame) })
	s.Run()
	if hb.Rx().Frames != 1 {
		t.Fatalf("rx = %+v", hb.Rx())
	}
	// One-way: ~1.5µs tx + ~5ns wire + ~600ns pipe + ~5ns + ~1.5µs rx.
	if rtt < 3*Microsecond || rtt > 5*Microsecond {
		t.Fatalf("one-way latency %d ns outside plausible band", rtt)
	}
	if hb.Rx().TypeFrames[packet.TypeRaw] != 1 {
		t.Fatalf("type buckets = %+v", hb.Rx().TypeFrames)
	}
}

func TestStreamGeneratorCeiling(t *testing.T) {
	// 7 Mpkt/s generator, 64-byte frames, 10 ms: about 70k frames
	// must arrive — the Figure 4 small-frame bottleneck.
	s := NewSim(1)
	ha, _, hb := buildHostSwitchHost(t, s, noopProgram{}, HostConfig{MaxPPS: 7_000_000})
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 50))
	ha.Stream(0, 10*Millisecond, func(i uint64) []byte { return frame })
	s.Run()
	got := hb.Rx().Frames
	if got < 69_000 || got > 71_000 {
		t.Fatalf("frames = %d, want ≈70000", got)
	}
}

func TestStreamLineRateCeiling(t *testing.T) {
	// 9000-byte frames with no pps cap: line rate (100 Gbit/s over
	// 9024 wire bytes → ≈1.385 Mpkt/s → ≈13856 frames in 10 ms).
	s := NewSim(1)
	ha, _, hb := buildHostSwitchHost(t, s, noopProgram{}, HostConfig{})
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 9000-packet.HeaderLen))
	ha.Stream(0, 10*Millisecond, func(i uint64) []byte { return frame })
	s.Run()
	got := hb.Rx().Frames
	if got < 13_600 || got > 14_100 {
		t.Fatalf("frames = %d, want ≈13856", got)
	}
	// Goodput in frame bytes: ≈99.7 Gbit/s.
	gbps := float64(hb.Rx().FrameBytes) * 8 / float64(10*Millisecond)
	if gbps < 98 || gbps > 100 {
		t.Fatalf("throughput = %.1f Gbit/s", gbps)
	}
}

func TestStreamStopsOnNil(t *testing.T) {
	s := NewSim(1)
	ha, _, hb := buildHostSwitchHost(t, s, noopProgram{}, HostConfig{})
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 50))
	ha.Stream(0, 0 /* no deadline */, func(i uint64) []byte {
		if i == 5 {
			return nil
		}
		return frame
	})
	s.Run()
	if hb.Rx().Frames != 5 {
		t.Fatalf("frames = %d, want 5", hb.Rx().Frames)
	}
}

func TestSwitchDigestTap(t *testing.T) {
	s := NewSim(1)
	prog, err := zswitch.New(zswitch.Config{
		Roles:   map[tofino.Port]zswitch.Role{0: zswitch.RoleEncode},
		PortMap: map[tofino.Port]tofino.Port{0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ha, sw, hb := buildHostSwitchHost(t, s, prog, HostConfig{})
	var digests []tofino.Digest
	sw.OnDigest = func(ds []tofino.Digest) { digests = append(digests, ds...) }
	payload := make([]byte, 32)
	payload[0] = 0xAB
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, payload)
	s.At(0, func() { ha.Send(frame) })
	s.Run()
	if len(digests) != 1 || digests[0].Name != zswitch.DigestNewBasis {
		t.Fatalf("digests = %+v", digests)
	}
	if hb.Rx().TypeFrames[packet.TypeUncompressed] != 1 {
		t.Fatalf("rx types = %+v", hb.Rx().TypeFrames)
	}
	if hb.Rx().FirstArrival[packet.TypeUncompressed] < 0 {
		t.Fatal("first-arrival timestamp missing")
	}
}

func TestHostResetRx(t *testing.T) {
	s := NewSim(1)
	ha, _, hb := buildHostSwitchHost(t, s, noopProgram{}, HostConfig{})
	frame := packet.Frame(packet.Header{EtherType: packet.EtherTypeRaw}, make([]byte, 32))
	s.At(0, func() { ha.Send(frame) })
	s.Run()
	hb.ResetRx()
	if hb.Rx().Frames != 0 || hb.Rx().FirstArrival[1] != -1 {
		t.Fatalf("reset incomplete: %+v", hb.Rx())
	}
}

func TestLinkLoss(t *testing.T) {
	s := NewSim(5)
	a, b := NewLink(s, LinkConfig{Impair: Impairments{LossProb: 0.3}}, "a", "b")
	var got int
	b.SetReceiver(func(_ []byte, _ Time) { got++ })
	const n = 10_000
	frame := make([]byte, 64)
	for i := 0; i < n; i++ {
		s.At(Time(i)*Microsecond, func() { a.Send(frame) })
	}
	s.Run()
	if got+int(a.Stats.Lost) != n {
		t.Fatalf("delivered %d + lost %d != sent %d", got, a.Stats.Lost, n)
	}
	if a.Stats.Lost < 2_700 || a.Stats.Lost > 3_300 {
		t.Fatalf("lost %d of %d, want ≈30%%", a.Stats.Lost, n)
	}
}

func TestLinkDuplication(t *testing.T) {
	s := NewSim(6)
	a, b := NewLink(s, LinkConfig{Impair: Impairments{DupProb: 1}}, "a", "b")
	var got int
	b.SetReceiver(func(_ []byte, _ Time) { got++ })
	frame := make([]byte, 64)
	s.At(0, func() { a.Send(frame) })
	s.Run()
	if got != 2 || a.Stats.Duplicated != 1 {
		t.Fatalf("delivered %d (dups %d), want 2 (1)", got, a.Stats.Duplicated)
	}
}

func TestLinkReordering(t *testing.T) {
	// First frame held back by 5 µs; the second, sent right after,
	// must overtake it.
	s := NewSim(7)
	a, b := NewLink(s, LinkConfig{Impair: Impairments{ReorderProb: 1}}, "a", "b")
	var order []byte
	b.SetReceiver(func(f []byte, _ Time) { order = append(order, f[0]) })
	s.At(0, func() { a.Send([]byte{1}) })
	s.At(10, func() {
		// Disable reordering for the chaser so only frame 1 is held.
		a.cfg.Impair.ReorderProb = 0
		a.Send([]byte{2})
	})
	s.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("arrival order = %v, want [2 1]", order)
	}
	if a.Stats.Reordered != 1 {
		t.Fatalf("reordered = %d", a.Stats.Reordered)
	}
}

func TestImpairedLinkDeterminism(t *testing.T) {
	run := func() (uint64, []Time) {
		s := NewSim(99)
		a, b := NewLink(s, LinkConfig{Impair: Impairments{
			LossProb: 0.1, DupProb: 0.1, ReorderProb: 0.1, ExtraLatencyNs: 3 * Microsecond,
		}}, "a", "b")
		var arrivals []Time
		b.SetReceiver(func(_ []byte, at Time) { arrivals = append(arrivals, at) })
		frame := make([]byte, 128)
		for i := 0; i < 500; i++ {
			s.At(Time(i)*Microsecond, func() { a.Send(frame) })
		}
		s.Run()
		return a.Stats.Lost, arrivals
	}
	lostA, arrA := run()
	lostB, arrB := run()
	if lostA != lostB || len(arrA) != len(arrB) {
		t.Fatalf("impaired runs diverged: lost %d vs %d, arrivals %d vs %d",
			lostA, lostB, len(arrA), len(arrB))
	}
	for i := range arrA {
		if arrA[i] != arrB[i] {
			t.Fatalf("arrival %d: %d vs %d", i, arrA[i], arrB[i])
		}
	}
}

func TestAttachPortValidation(t *testing.T) {
	s := NewSim(1)
	pl, _ := tofino.Load(tofino.Config{}, noopProgram{})
	sw := NewSwitch(s, SwitchConfig{}, pl)
	_, e := NewLink(s, LinkConfig{}, "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad port")
		}
	}()
	sw.AttachPort(99, e)
}
