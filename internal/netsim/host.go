package netsim

import (
	"zipline/internal/packet"
)

// HostConfig models one testbed server.
type HostConfig struct {
	// Name for diagnostics.
	Name string
	// MAC is the host's address (used when building frames).
	MAC packet.MAC
	// MaxPPS caps the traffic generator. The paper's servers top out
	// around 7 Mpkt/s ("bottlenecked at around 7 Mpkt/s by the server
	// generating the traffic"); zero means unlimited (line rate).
	MaxPPS float64
	// TxLatencyNs is the fixed host-side cost from the application's
	// send to the first bit entering the NIC (driver + PCIe + NIC
	// pipeline). Default 1500 ns.
	TxLatencyNs Time
	// RxLatencyNs is the symmetric receive-side cost. Default 1500 ns.
	RxLatencyNs Time
	// LatencyJitterFrac adds uniform ±fraction noise to the host
	// latencies (measurement noise). Default 0.05.
	LatencyJitterFrac float64
}

// Default host latency parameters, calibrated so that the no-op RTT
// lands in the single-digit-microsecond band of paper Figure 5.
const (
	DefaultTxLatencyNs = 1500
	DefaultRxLatencyNs = 1500
	defaultHostJitter  = 0.05
)

func (c HostConfig) withDefaults() HostConfig {
	if c.TxLatencyNs == 0 {
		c.TxLatencyNs = DefaultTxLatencyNs
	}
	if c.RxLatencyNs == 0 {
		c.RxLatencyNs = DefaultRxLatencyNs
	}
	if c.LatencyJitterFrac == 0 {
		c.LatencyJitterFrac = defaultHostJitter
	}
	return c
}

// RxStats aggregates what a host has received, bucketed the way the
// compression experiment needs (payload bytes per ZipLine packet
// type).
type RxStats struct {
	Frames       uint64
	FrameBytes   uint64
	PayloadBytes uint64
	// ByType buckets payload bytes and frame counts by packet type.
	TypeFrames  [4]uint64 // index packet.Type (1..3); 0 unused
	TypePayload [4]uint64
	// FirstArrival[t] is the arrival time of the first frame of type
	// t, or -1 — the learning-delay experiment measures
	// FirstArrival[3] − FirstArrival[2].
	FirstArrival [4]Time
	// FirstFrame is the arrival time of the first frame of any kind
	// (-1 before any traffic); LastArrival the most recent.
	FirstFrame  Time
	LastArrival Time
}

// Host is a testbed server: traffic generator and sink.
type Host struct {
	sim  *Sim
	lane Lane
	cfg  HostConfig
	nic  *Endpoint

	// OnReceive, when set, observes every delivered frame.
	OnReceive func(frame []byte, at Time)

	rx RxStats
}

// NewHost builds a host and attaches it to its NIC endpoint. Each
// host gets its own event lane: generator and receive events shard
// per host and merge deterministically.
func NewHost(sim *Sim, cfg HostConfig, nic *Endpoint) *Host {
	h := &Host{sim: sim, lane: sim.NewLane(), cfg: cfg.withDefaults(), nic: nic}
	h.resetRxMarks()
	nic.SetReceiver(h.receive)
	return h
}

func (h *Host) resetRxMarks() {
	for i := range h.rx.FirstArrival {
		h.rx.FirstArrival[i] = -1
	}
	h.rx.FirstFrame = -1
}

// Config returns the host configuration with defaults applied.
func (h *Host) Config() HostConfig { return h.cfg }

// NIC exposes the host's link endpoint (for TX statistics).
func (h *Host) NIC() *Endpoint { return h.nic }

// Rx returns a snapshot of receive statistics.
func (h *Host) Rx() RxStats { return h.rx }

// ResetRx clears receive statistics.
func (h *Host) ResetRx() {
	h.rx = RxStats{}
	h.resetRxMarks()
}

func (h *Host) receive(frame []byte, at Time) {
	// Host-side receive cost: the frame is visible to the
	// application a little after the wire delivered it.
	delay := h.sim.Jitter(h.cfg.RxLatencyNs, h.cfg.LatencyJitterFrac)
	h.sim.AfterLane(h.lane, delay, func() {
		now := h.sim.Now()
		h.rx.Frames++
		h.rx.FrameBytes += uint64(len(frame))
		if h.rx.FirstFrame < 0 {
			h.rx.FirstFrame = now
		}
		h.rx.LastArrival = now
		if hdr, payload, err := packet.ParseHeader(frame); err == nil {
			h.rx.PayloadBytes += uint64(len(payload))
			t := hdr.Type()
			h.rx.TypeFrames[t]++
			h.rx.TypePayload[t] += uint64(len(payload))
			if h.rx.FirstArrival[t] < 0 {
				h.rx.FirstArrival[t] = now
			}
		}
		if h.OnReceive != nil {
			h.OnReceive(frame, now)
		}
	})
}

// Send transmits one frame, paying the host TX cost first.
func (h *Host) Send(frame []byte) {
	delay := h.sim.Jitter(h.cfg.TxLatencyNs, h.cfg.LatencyJitterFrac)
	h.sim.AfterLane(h.lane, delay, func() {
		h.nic.Send(frame)
	})
}

// Stream generates frames back to back from start until stop (or
// until next returns nil), respecting the generator's MaxPPS ceiling
// and the NIC's line rate. next is called with the frame index and
// must return a fresh frame each time.
func (h *Host) Stream(start, stop Time, next func(i uint64) []byte) {
	h.StreamPaced(start, stop, h.cfg.MaxPPS, next)
}

// StreamPaced is Stream with an explicit generator rate, letting one
// host carry several flows at different rates. pps == 0 means no
// generator ceiling (the NIC's line rate governs).
func (h *Host) StreamPaced(start, stop Time, pps float64, next func(i uint64) []byte) {
	var interval Time
	if pps > 0 {
		interval = Time(float64(Second) / pps)
	}
	var i uint64
	var tick func()
	tick = func() {
		if stop > 0 && h.sim.Now() >= stop {
			return
		}
		frame := next(i)
		if frame == nil {
			return
		}
		i++
		h.nic.Send(frame)
		// Next departure: generator pacing or wire availability,
		// whichever is later.
		nextAt := h.sim.Now() + interval
		if wire := h.sim.Now() + h.nic.QueueDelay(); wire > nextAt {
			nextAt = wire
		}
		if nextAt == h.sim.Now() {
			nextAt++ // guarantee progress even with no pacing
		}
		h.sim.AtLane(h.lane, nextAt, tick)
	}
	h.sim.AtLane(h.lane, start, func() {
		// The first frame pays the host TX cost; subsequent frames
		// stream from the NIC without re-paying it (the generator
		// keeps the NIC fed, as raw_ethernet_bw does).
		h.sim.AfterLane(h.lane, h.sim.Jitter(h.cfg.TxLatencyNs, h.cfg.LatencyJitterFrac), tick)
	})
}

// StreamTimed replays frames at recorded departure offsets — the
// trace-replay path, where inter-frame gaps come from a capture file
// instead of a packets-per-second pacer. offsetAt returns frame i's
// recorded offset from the stream start (offsets must be
// non-decreasing; ok=false ends the stream); next builds frame i (nil
// also ends the stream) and is called in the same event that
// transmits it, so generator-side accounting always matches what went
// on the wire, exactly as in StreamPaced. A frame whose recorded
// departure has already passed — or whose NIC is still serialising
// the previous frame — goes out as soon as the wire frees up, so a
// trace captured faster than the link plays back at line rate. stop
// windows the flow like StreamPaced (0 = unbounded): no frame departs
// at or after it.
func (h *Host) StreamTimed(start, stop Time, offsetAt func(i uint64) (Time, bool), next func(i uint64) []byte) {
	var i uint64
	var step func()
	step = func() {
		off, ok := offsetAt(i)
		if !ok {
			return
		}
		sendAt := start + off
		if now := h.sim.Now(); sendAt < now {
			sendAt = now
		}
		if wire := h.sim.Now() + h.nic.QueueDelay(); wire > sendAt {
			sendAt = wire
		}
		h.sim.AtLane(h.lane, sendAt, func() {
			if stop > 0 && h.sim.Now() >= stop {
				return
			}
			frame := next(i)
			if frame == nil {
				return
			}
			i++
			h.nic.Send(frame)
			step()
		})
	}
	h.sim.AtLane(h.lane, start, func() {
		// Like StreamPaced, only the first frame pays the host TX cost.
		h.sim.AfterLane(h.lane, h.sim.Jitter(h.cfg.TxLatencyNs, h.cfg.LatencyJitterFrac), step)
	})
}
