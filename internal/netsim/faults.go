package netsim

import (
	"fmt"
	"math/rand"
)

// FaultSpec is the JSON-declarable fault schedule of one simulation:
// timed switch crash/restart events, link down/up flaps, and a loss
// probability on every switch↔controller control channel. The zero
// value (and a nil pointer) is the fault-free world every pre-fault
// scenario ran in; Armed reports whether any fault source is active,
// which is the gate the control plane uses to decide between the
// legacy fire-and-forget install path and the reliable
// ack/retransmit protocol — so a spec with an empty FaultSpec
// produces the byte-identical event schedule of the pre-fault engine.
type FaultSpec struct {
	// ControlLossProb drops control-channel messages (digests, table
	// writes, acks, restart notifications) i.i.d. per message.
	ControlLossProb float64 `json:"control_loss_prob,omitempty"`
	// RetransmitTimeoutNs is the base retransmit timeout for reliable
	// control messages (default 2 ms); attempt k waits
	// min(base<<k, 8×base) — deterministic capped exponential backoff,
	// no jitter, so fault runs stay byte-stable per seed.
	RetransmitTimeoutNs int64 `json:"retransmit_timeout_ns,omitempty"`
	// MaxRetries caps retransmissions of digests and table writes
	// (default 6); an install abandoned after the cap is reaped and
	// re-learned from a later digest. Restart notifications retry
	// without cap (a switch reconnects forever).
	MaxRetries int `json:"max_retries,omitempty"`
	// Restarts schedules switch crash/restart events.
	Restarts []RestartSpec `json:"restarts,omitempty"`
	// LinkFlaps schedules link down/up events.
	LinkFlaps []FlapSpec `json:"link_flaps,omitempty"`
}

// RestartSpec crashes one switch at AtNs: its dataplane tables and
// epoch-stamped state are lost instantly, frames arriving while down
// are dropped, and the switch comes back DownNs later with empty
// tables and a bumped epoch. A switch running an encoder or decoder
// role re-enables its ports only after the control plane has
// reconciled (quarantine acked), preserving the decoders-first
// invariant across the reboot.
type RestartSpec struct {
	// Switch names the switch (scenario switch name).
	Switch string `json:"switch"`
	// AtNs is the crash time.
	AtNs int64 `json:"at_ns"`
	// DownNs is the reboot duration (default 5 ms).
	DownNs int64 `json:"down_ns,omitempty"`
}

// FlapSpec takes one link down at AtNs and back up DownNs later;
// frames sent in the window are lost in both directions.
type FlapSpec struct {
	// Link indexes the scenario's Links list.
	Link int `json:"link"`
	// AtNs is the down time.
	AtNs int64 `json:"at_ns"`
	// DownNs is the outage duration (default 1 ms).
	DownNs int64 `json:"down_ns,omitempty"`
}

// Default fault-schedule parameters.
const (
	DefaultRetransmitTimeoutNs = 2 * Millisecond
	DefaultMaxRetries          = 6
	DefaultRestartDownNs       = 5 * Millisecond
	DefaultFlapDownNs          = 1 * Millisecond
	// BackoffCap bounds the exponential backoff multiplier: attempt k
	// waits min(base<<k, BackoffCap×base).
	BackoffCap = 8
)

// Armed reports whether any fault source is active. An unarmed spec
// must leave the engine on the legacy code paths so the no-fault
// event schedule — and therefore every report byte — is unchanged.
func (f *FaultSpec) Armed() bool {
	if f == nil {
		return false
	}
	return f.ControlLossProb > 0 || len(f.Restarts) > 0 || len(f.LinkFlaps) > 0
}

// WithDefaults fills the schedule-level defaults.
func (f FaultSpec) WithDefaults() FaultSpec {
	if f.RetransmitTimeoutNs == 0 {
		f.RetransmitTimeoutNs = DefaultRetransmitTimeoutNs
	}
	if f.MaxRetries == 0 {
		f.MaxRetries = DefaultMaxRetries
	}
	for i := range f.Restarts {
		if f.Restarts[i].DownNs == 0 {
			f.Restarts[i].DownNs = DefaultRestartDownNs
		}
	}
	for i := range f.LinkFlaps {
		if f.LinkFlaps[i].DownNs == 0 {
			f.LinkFlaps[i].DownNs = DefaultFlapDownNs
		}
	}
	return f
}

// Validate checks the schedule against the topology: switchOK reports
// whether a switch name exists, numLinks bounds flap indices.
func (f *FaultSpec) Validate(switchOK func(string) bool, numLinks int) error {
	if f == nil {
		return nil
	}
	if f.ControlLossProb < 0 || f.ControlLossProb >= 1 {
		return fmt.Errorf("faults: control_loss_prob %v out of [0,1)", f.ControlLossProb)
	}
	if f.RetransmitTimeoutNs < 0 || f.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retransmit timeout or retry cap")
	}
	for i, r := range f.Restarts {
		if !switchOK(r.Switch) {
			return fmt.Errorf("faults: restart %d: unknown switch %q", i, r.Switch)
		}
		if r.AtNs < 0 || r.DownNs < 0 {
			return fmt.Errorf("faults: restart %d: negative time", i)
		}
		for j, prev := range f.Restarts[:i] {
			if prev.Switch != r.Switch {
				continue
			}
			pd, rd := prev.DownNs, r.DownNs
			if pd == 0 {
				pd = int64(DefaultRestartDownNs)
			}
			if rd == 0 {
				rd = int64(DefaultRestartDownNs)
			}
			if r.AtNs < prev.AtNs+pd && prev.AtNs < r.AtNs+rd {
				return fmt.Errorf("faults: restarts %d and %d overlap on switch %q", j, i, r.Switch)
			}
		}
	}
	for i, fl := range f.LinkFlaps {
		if fl.Link < 0 || fl.Link >= numLinks {
			return fmt.Errorf("faults: flap %d: link index %d out of range (topology has %d links)", i, fl.Link, numLinks)
		}
		if fl.AtNs < 0 || fl.DownNs < 0 {
			return fmt.Errorf("faults: flap %d: negative time", i)
		}
	}
	return nil
}

// Faults is the armed fault injector: the seeded random source every
// control-channel loss draw comes from, kept separate from the
// simulation's jitter source so arming faults never perturbs the
// draws — and therefore the timing — of the fault-free schedule.
// A nil *Faults never drops anything.
type Faults struct {
	rng *rand.Rand

	// MsgsLost counts control-channel messages eaten by loss draws.
	MsgsLost uint64
}

// NewFaults builds the injector; derive seed deterministically from
// the scenario seed so fault runs stay reproducible.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// Drop draws one loss decision for a control-channel message.
func (f *Faults) Drop(p float64) bool {
	if f == nil || p <= 0 {
		return false
	}
	if f.rng.Float64() < p {
		f.MsgsLost++
		return true
	}
	return false
}

// Backoff returns attempt k's retransmit delay under the capped
// exponential schedule (k counts from 0). Deterministic: retransmit
// timers draw no jitter, so they cannot perturb the event schedule
// beyond the faults that armed them.
func Backoff(base Time, attempt int) Time {
	d := base
	for i := 0; i < attempt; i++ {
		d <<= 1
		if d >= base*BackoffCap {
			return base * BackoffCap
		}
	}
	return d
}
