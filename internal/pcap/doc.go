// Package pcap reads and writes classic libpcap capture files
// (the .pcap format, version 2.4). The paper's datasets are "converted
// to a pcap trace of Ethernet packets" and replayed at the switch;
// this package lets the workload generators produce the same artifact
// and the harness replay it.
//
// Both microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) timestamp
// flavours are supported, in either byte order.
package pcap
