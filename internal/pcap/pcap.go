package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// LinkTypeEthernet is the only link type ZipLine traces use.
const LinkTypeEthernet = 1

const (
	magicMicros = 0xA1B2C3D4
	magicNanos  = 0xA1B23C4D
)

// Writer emits a pcap file with nanosecond timestamps.
type Writer struct {
	w       io.Writer
	snaplen uint32
}

// NewWriter writes the global header and returns a packet writer.
func NewWriter(w io.Writer, snaplen int) (*Writer, error) {
	if snaplen <= 0 {
		snaplen = 262144
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:], uint32(snaplen))
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return &Writer{w: w, snaplen: uint32(snaplen)}, nil
}

// WritePacket appends one captured frame with the given timestamp in
// nanoseconds since the epoch.
func (w *Writer) WritePacket(tsNs int64, frame []byte) error {
	capLen := uint32(len(frame))
	if capLen > w.snaplen {
		capLen = w.snaplen
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(tsNs/1_000_000_000))
	binary.LittleEndian.PutUint32(rec[4:], uint32(tsNs%1_000_000_000))
	binary.LittleEndian.PutUint32(rec[8:], capLen)
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcap: writing record body: %w", err)
	}
	return nil
}

// Reader iterates packets of a pcap file.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	snaplen  uint32
	linkType uint32
}

// NewReader parses the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:])
	magicBE := binary.BigEndian.Uint32(hdr[0:])
	switch {
	case magicLE == magicMicros:
		rd.order = binary.LittleEndian
	case magicLE == magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		rd.order = binary.BigEndian
	case magicBE == magicNanos:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", magicLE)
	}
	rd.snaplen = rd.order.Uint32(hdr[16:])
	rd.linkType = rd.order.Uint32(hdr[20:])
	return rd, nil
}

// LinkType returns the file's link type (1 = Ethernet).
func (r *Reader) LinkType() int { return int(r.linkType) }

// Next returns the next frame and its timestamp in nanoseconds. It
// returns io.EOF cleanly at the end of the file.
func (r *Reader) Next() (tsNs int64, frame []byte, err error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := int64(r.order.Uint32(rec[0:]))
	sub := int64(r.order.Uint32(rec[4:]))
	capLen := r.order.Uint32(rec[8:])
	if capLen > r.snaplen && r.snaplen > 0 {
		return 0, nil, fmt.Errorf("pcap: record length %d exceeds snaplen %d", capLen, r.snaplen)
	}
	frame = make([]byte, capLen)
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return 0, nil, fmt.Errorf("pcap: reading record body: %w", err)
	}
	if r.nanos {
		return sec*1_000_000_000 + sub, frame, nil
	}
	return sec*1_000_000_000 + sub*1_000, frame, nil
}
