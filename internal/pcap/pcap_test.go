package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		{1, 2, 3},
		bytes.Repeat([]byte{0xAB}, 1500),
		{},
	}
	times := []int64{0, 1_500_000_000, 86_400_000_000_123}
	for i := range frames {
		if err := w.WritePacket(times[i], frames[i]); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type = %d", r.LinkType())
	}
	for i := range frames {
		ts, frame, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if ts != times[i] {
			t.Fatalf("packet %d: ts = %d, want %d", i, ts, times[i])
		}
		if !bytes.Equal(frame, frames[i]) {
			t.Fatalf("packet %d: frame mismatch", i)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	_, frame, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 10 {
		t.Fatalf("captured %d bytes, want 10", len(frame))
	}
}

func TestReaderMicrosecondAndBigEndian(t *testing.T) {
	// Hand-build a big-endian microsecond file with one packet.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:], 0xA1B2C3D4)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], 1)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:], 1)   // 1 s
	binary.BigEndian.PutUint32(rec[4:], 250) // 250 µs
	binary.BigEndian.PutUint32(rec[8:], 4)
	binary.BigEndian.PutUint32(rec[12:], 4)
	buf.Write(rec[:])
	buf.Write([]byte{9, 8, 7, 6})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, frame, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 1_000_250_000 {
		t.Fatalf("ts = %d", ts)
	}
	if !bytes.Equal(frame, []byte{9, 8, 7, 6}) {
		t.Fatalf("frame = %v", frame)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderTruncatedFile(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 5))); err == nil {
		t.Fatal("truncated header accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(0, []byte{1, 2, 3})
	trunc := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want mid-record failure", err)
	}
}
