package bitvec

import (
	"math/rand"
	"testing"
)

// copyBitsSlow is the obviously-correct reference.
func copyBitsSlow(dst []byte, dstOff int, src []byte, srcOff, nbits int) {
	for i := 0; i < nbits; i++ {
		b := src[(srcOff+i)>>3]>>(7-uint((srcOff+i)&7))&1 == 1
		mask := byte(1) << (7 - uint((dstOff+i)&7))
		if b {
			dst[(dstOff+i)>>3] |= mask
		} else {
			dst[(dstOff+i)>>3] &^= mask
		}
	}
}

func TestCopyBitsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		src := make([]byte, 1+rng.Intn(40))
		rng.Read(src)
		dstA := make([]byte, 1+rng.Intn(40))
		rng.Read(dstA)
		dstB := append([]byte(nil), dstA...)
		maxSrc := len(src) * 8
		maxDst := len(dstA) * 8
		srcOff := rng.Intn(maxSrc + 1)
		dstOff := rng.Intn(maxDst + 1)
		n := 0
		if lim := min(maxSrc-srcOff, maxDst-dstOff); lim > 0 {
			n = rng.Intn(lim + 1)
		}
		CopyBits(dstA, dstOff, src, srcOff, n)
		copyBitsSlow(dstB, dstOff, src, srcOff, n)
		for i := range dstA {
			if dstA[i] != dstB[i] {
				t.Fatalf("trial %d (srcOff=%d dstOff=%d n=%d): byte %d differs %02x != %02x",
					trial, srcOff, dstOff, n, i, dstA[i], dstB[i])
			}
		}
	}
}

func TestCopyBitsPreservesSurroundings(t *testing.T) {
	dst := []byte{0xFF, 0xFF, 0xFF}
	src := []byte{0x00, 0x00}
	CopyBits(dst, 5, src, 3, 10) // clears bits 5..14
	want := []byte{0xF8, 0x01, 0xFF}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst = %x, want %x", dst, want)
		}
	}
}

func TestCopyBitsPanics(t *testing.T) {
	for _, tc := range []struct{ dstOff, srcOff, n int }{
		{0, 0, 99}, {0, 9, 8}, {9, 0, 8}, {0, 0, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", tc)
				}
			}()
			CopyBits(make([]byte, 2), tc.dstOff, make([]byte, 2), tc.srcOff, tc.n)
		}()
	}
}

func TestWrap(t *testing.T) {
	buf := []byte{0xAB, 0xFF}
	v := Wrap(buf, 12)
	if v.Len() != 12 {
		t.Fatalf("Len = %d", v.Len())
	}
	// Tail bits must have been cleared in the shared buffer.
	if buf[1] != 0xF0 {
		t.Fatalf("tail not cleared: %02x", buf[1])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	Wrap(buf, 20)
}

func BenchmarkCopyBitsUnaligned(b *testing.B) {
	src := make([]byte, 32)
	dst := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(31)
	for i := 0; i < b.N; i++ {
		CopyBits(dst, 0, src, 9, 247)
	}
}
