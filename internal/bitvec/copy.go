package bitvec

// CopyBits copies nbits bits from src starting at bit srcOff into dst
// starting at bit dstOff, overwriting the destination bits and
// leaving all other dst bits untouched. Offsets are MSB-first bit
// positions. It processes a destination byte at a time, so arbitrary
// misalignment costs roughly one shift per byte rather than per bit.
func CopyBits(dst []byte, dstOff int, src []byte, srcOff, nbits int) {
	if nbits < 0 {
		panic("bitvec: negative bit count")
	}
	if srcOff+nbits > len(src)*8 || dstOff+nbits > len(dst)*8 {
		panic("bitvec: CopyBits out of range")
	}
	// Fully byte-aligned fast path.
	if dstOff&7 == 0 && srcOff&7 == 0 {
		n := nbits >> 3
		copy(dst[dstOff>>3:dstOff>>3+n], src[srcOff>>3:srcOff>>3+n])
		if rem := nbits & 7; rem != 0 {
			mask := byte(0xFF) << (8 - uint(rem))
			di := dstOff>>3 + n
			dst[di] = dst[di]&^mask | src[srcOff>>3+n]&mask
		}
		return
	}
	for nbits > 0 {
		db := dstOff & 7
		w := 8 - db
		if w > nbits {
			w = nbits
		}
		v := extractBits(src, srcOff, w)
		shift := uint(8 - db - w)
		mask := byte(1<<uint(w)-1) << shift
		di := dstOff >> 3
		dst[di] = dst[di]&^mask | byte(v<<shift)&mask
		dstOff += w
		srcOff += w
		nbits -= w
	}
}

// extractBits returns w (≤ 8) bits of src starting at bit off,
// right-aligned in the result.
func extractBits(src []byte, off, w int) byte {
	si := off >> 3
	v := uint16(src[si]) << 8
	if si+1 < len(src) {
		v |= uint16(src[si+1])
	}
	v <<= uint(off & 7)
	return byte(v >> (16 - uint(w)))
}

// Wrap builds an n-bit vector that takes ownership of data (no copy).
// The caller must not reuse data afterwards, and data must be exactly
// ceil(n/8) bytes with any trailing pad bits already zero. It exists
// for hot paths that have just assembled a fresh buffer.
func Wrap(data []byte, n int) *Vector {
	if len(data) != (n+7)/8 {
		panic("bitvec: Wrap buffer size mismatch")
	}
	v := &Vector{data: data, n: n}
	v.clearTail()
	return v
}
