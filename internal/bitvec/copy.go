package bitvec

import "encoding/binary"

// CopyBits copies nbits bits from src starting at bit srcOff into dst
// starting at bit dstOff, overwriting the destination bits and
// leaving all other dst bits untouched. Offsets are MSB-first bit
// positions. Once the destination is byte-aligned, interior bits move
// eight bytes per step (a shifted 64-bit load/store), so arbitrary
// misalignment costs roughly one shift per word rather than per byte.
//
//zipline:noalloc
func CopyBits(dst []byte, dstOff int, src []byte, srcOff, nbits int) {
	if nbits < 0 {
		panic("bitvec: negative bit count")
	}
	if srcOff+nbits > len(src)*8 || dstOff+nbits > len(dst)*8 {
		panic("bitvec: CopyBits out of range")
	}
	// Fully byte-aligned fast path.
	if dstOff&7 == 0 && srcOff&7 == 0 {
		n := nbits >> 3
		copy(dst[dstOff>>3:dstOff>>3+n], src[srcOff>>3:srcOff>>3+n])
		if rem := nbits & 7; rem != 0 {
			mask := byte(0xFF) << (8 - uint(rem))
			di := dstOff>>3 + n
			dst[di] = dst[di]&^mask | src[srcOff>>3+n]&mask
		}
		return
	}
	// Align the destination to a byte boundary (at most one partial
	// byte), then stream whole words: each output word is one shifted
	// 64-bit source load plus the spill byte that the shift exposes.
	if db := dstOff & 7; db != 0 && nbits >= 8 {
		w := 8 - db
		v := extractBits(src, srcOff, w)
		mask := byte(1<<uint(w) - 1)
		di := dstOff >> 3
		dst[di] = dst[di]&^mask | byte(v)&mask
		dstOff += w
		srcOff += w
		nbits -= w
	}
	if dstOff&7 == 0 {
		sh := uint(srcOff & 7)
		si, di := srcOff>>3, dstOff>>3
		for nbits >= 64 && si+9 <= len(src) {
			v := binary.BigEndian.Uint64(src[si:])
			if sh > 0 {
				v = v<<sh | uint64(src[si+8])>>(8-sh)
			}
			binary.BigEndian.PutUint64(dst[di:], v)
			si += 8
			di += 8
			srcOff += 64
			dstOff += 64
			nbits -= 64
		}
		// A 32-bit stride picks up most of what the word loop leaves
		// when the source runs out of spill headroom near its end.
		for nbits >= 32 && si+5 <= len(src) {
			v := binary.BigEndian.Uint32(src[si:])
			if sh > 0 {
				v = v<<sh | uint32(src[si+4])>>(8-sh)
			}
			binary.BigEndian.PutUint32(dst[di:], v)
			si += 4
			di += 4
			srcOff += 32
			dstOff += 32
			nbits -= 32
		}
	}
	for nbits > 0 {
		db := dstOff & 7
		w := 8 - db
		if w > nbits {
			w = nbits
		}
		v := extractBits(src, srcOff, w)
		shift := uint(8 - db - w)
		mask := byte(1<<uint(w)-1) << shift
		di := dstOff >> 3
		dst[di] = dst[di]&^mask | byte(v<<shift)&mask
		dstOff += w
		srcOff += w
		nbits -= w
	}
}

// extractBits returns w (≤ 8) bits of src starting at bit off,
// right-aligned in the result.
func extractBits(src []byte, off, w int) byte {
	si := off >> 3
	v := uint16(src[si]) << 8
	if si+1 < len(src) {
		v |= uint16(src[si+1])
	}
	v <<= uint(off & 7)
	return byte(v >> (16 - uint(w)))
}

// Wrap builds an n-bit vector that takes ownership of data (no copy).
// The caller must not reuse data afterwards, and data must be exactly
// ceil(n/8) bytes with any trailing pad bits already zero. It exists
// for hot paths that have just assembled a fresh buffer.
func Wrap(data []byte, n int) *Vector {
	if len(data) != (n+7)/8 {
		panic("bitvec: Wrap buffer size mismatch")
	}
	v := &Vector{data: data, n: n}
	v.clearTail()
	return v
}
