package bitvec

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestWriterBasic(t *testing.T) {
	var w Writer
	w.WriteBit(true)
	w.WriteBit(false)
	w.WriteUint(0b1011, 4)
	if w.Len() != 6 {
		t.Fatalf("Len = %d, want 6", w.Len())
	}
	// Bits: 1 0 1011 -> 101011xx
	if got := w.Bytes()[0]; got != 0b10101100 {
		t.Fatalf("bytes = %08b", got)
	}
}

func TestWriterPad(t *testing.T) {
	var w Writer
	w.WriteUint(0b111, 3)
	if n := w.Pad(); n != 5 {
		t.Fatalf("Pad = %d, want 5", n)
	}
	if w.Len() != 8 {
		t.Fatalf("Len = %d, want 8", w.Len())
	}
	if n := w.Pad(); n != 0 {
		t.Fatalf("Pad on aligned = %d, want 0", n)
	}
	if got := w.Bytes()[0]; got != 0b11100000 {
		t.Fatalf("bytes = %08b", got)
	}
}

func TestWriterVectorAlignedFast(t *testing.T) {
	var w Writer
	v := MustParse("10110011101") // 11 bits
	w.WriteVector(v)              // aligned path
	w.WriteVector(v)              // unaligned path
	r := NewReaderBits(w.Bytes(), w.Len())
	for i := 0; i < 2; i++ {
		got, err := r.ReadVector(11)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Fatalf("read %d = %s, want %s", i, got, v)
		}
	}
}

func TestWriterBytesUnaligned(t *testing.T) {
	var w Writer
	w.WriteBit(true)
	w.WriteBytes([]byte{0xAB, 0xCD})
	r := NewReaderBits(w.Bytes(), w.Len())
	if b, _ := r.ReadBit(); !b {
		t.Fatal("first bit lost")
	}
	x, err := r.ReadUint(16)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0xABCD {
		t.Fatalf("bytes = %04x, want abcd", x)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteUint(0xFF, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("reset did not clear")
	}
	w.WriteUint(0x1, 1)
	if got := w.Bytes()[0]; got != 0x80 {
		t.Fatalf("stale data after reset: %02x", got)
	}
}

func TestReaderErrors(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadUint(9); err != ErrShortBuffer {
		t.Fatalf("ReadUint(9) err = %v, want ErrShortBuffer", err)
	}
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrShortBuffer {
		t.Fatalf("ReadBit at end err = %v", err)
	}
	if _, err := r.ReadVector(1); err != ErrShortBuffer {
		t.Fatalf("ReadVector at end err = %v", err)
	}
}

func TestReaderRemaining(t *testing.T) {
	r := NewReaderBits([]byte{0xAA, 0xBB}, 12)
	if r.Remaining() != 12 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadUint(5)
	if r.Remaining() != 7 || r.Pos() != 5 {
		t.Fatalf("Remaining = %d Pos = %d", r.Remaining(), r.Pos())
	}
}

func TestWriterReaderRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var w Writer
		type op struct {
			kind  int
			x     uint64
			width int
			v     *Vector
			bs    []byte
		}
		var ops []op
		for i := 0; i < 20; i++ {
			switch k := rng.Intn(4); k {
			case 0:
				ops = append(ops, op{kind: 0, x: uint64(rng.Intn(2))})
				w.WriteBit(ops[len(ops)-1].x == 1)
			case 1:
				width := 1 + rng.Intn(33)
				x := rng.Uint64() & (1<<uint(width) - 1)
				ops = append(ops, op{kind: 1, x: x, width: width})
				w.WriteUint(x, width)
			case 2:
				nb := rng.Intn(40)
				v := New(nb)
				for j := 0; j < nb; j++ {
					v.Set(j, rng.Intn(2) == 1)
				}
				ops = append(ops, op{kind: 2, v: v})
				w.WriteVector(v)
			case 3:
				bs := make([]byte, rng.Intn(5))
				rng.Read(bs)
				ops = append(ops, op{kind: 3, bs: bs})
				w.WriteBytes(bs)
			}
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for i, o := range ops {
			switch o.kind {
			case 0:
				b, err := r.ReadBit()
				if err != nil || (b != (o.x == 1)) {
					t.Fatalf("trial %d op %d: bit mismatch (%v, %v)", trial, i, b, err)
				}
			case 1:
				x, err := r.ReadUint(o.width)
				if err != nil || x != o.x {
					t.Fatalf("trial %d op %d: uint %x != %x (%v)", trial, i, x, o.x, err)
				}
			case 2:
				v, err := r.ReadVector(o.v.Len())
				if err != nil || !v.Equal(o.v) {
					t.Fatalf("trial %d op %d: vector mismatch (%v)", trial, i, err)
				}
			case 3:
				got := make([]byte, len(o.bs))
				for j := range got {
					x, err := r.ReadUint(8)
					if err != nil {
						t.Fatalf("trial %d op %d: %v", trial, i, err)
					}
					got[j] = byte(x)
				}
				if !bytes.Equal(got, o.bs) {
					t.Fatalf("trial %d op %d: bytes mismatch", trial, i)
				}
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: %d bits left over", trial, r.Remaining())
		}
	}
}
