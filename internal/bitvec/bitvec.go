package bitvec

import (
	"fmt"
	"strings"
)

// Vector is a fixed-length sequence of bits backed by a byte slice.
// Bits are packed MSB-first: position 0 is bit 7 of data[0]. Unused
// trailing bits in the final byte are always kept zero, so two equal
// vectors have byte-for-byte equal backing stores and Key is usable
// as a map key.
//
// The zero value is an empty (length 0) vector ready for use.
type Vector struct {
	data []byte
	n    int // length in bits
}

// New returns a zeroed vector of n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{data: make([]byte, (n+7)/8), n: n}
}

// FromBytes builds an n-bit vector from the first n bits of data
// (MSB-first). The bytes are copied; data may be reused by the
// caller. It panics if data holds fewer than n bits.
func FromBytes(data []byte, n int) *Vector {
	if len(data)*8 < n {
		panic(fmt.Sprintf("bitvec: need %d bits, have %d", n, len(data)*8))
	}
	v := New(n)
	copy(v.data, data[:(n+7)/8])
	v.clearTail()
	return v
}

// FromUint returns an n-bit vector holding x, with the least
// significant bit of x at position n-1 (i.e. x is right-aligned, the
// natural reading of an integer written in binary). Bits of x above
// position n-1 are ignored.
func FromUint(x uint64, n int) *Vector {
	v := New(n)
	for i := 0; i < n && i < 64; i++ {
		if x>>uint(i)&1 == 1 {
			v.Set(n-1-i, true)
		}
	}
	return v
}

// Parse builds a vector from a binary string such as "0100110".
// Characters other than '0' and '1' (e.g. spaces, underscores) are
// ignored, so "0100 110" parses as seven bits.
func Parse(s string) (*Vector, error) {
	var bits []bool
	for _, r := range s {
		switch r {
		case '0':
			bits = append(bits, false)
		case '1':
			bits = append(bits, true)
		case ' ', '_', '|':
			// separators are allowed anywhere
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q in %q", r, s)
		}
	}
	v := New(len(bits))
	for i, b := range bits {
		v.Set(i, b)
	}
	return v, nil
}

// MustParse is Parse, panicking on error. Intended for constants in
// tests and table initialisers.
func MustParse(s string) *Vector {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Bytes returns the backing store: ceil(n/8) bytes, MSB-first, with
// zero padding bits at the tail. The slice aliases the vector; treat
// it as read-only or Clone first.
func (v *Vector) Bytes() []byte { return v.data }

// AppendBytes appends the vector's backing bytes to dst.
func (v *Vector) AppendBytes(dst []byte) []byte { return append(dst, v.data...) }

// Bit reports the bit at position i (0 = most significant).
func (v *Vector) Bit(i int) bool {
	v.check(i)
	return v.data[i>>3]>>(7-uint(i&7))&1 == 1
}

// Set sets the bit at position i to b.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	mask := byte(1) << (7 - uint(i&7))
	if b {
		v.data[i>>3] |= mask
	} else {
		v.data[i>>3] &^= mask
	}
}

// Flip inverts the bit at position i.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.data[i>>3] ^= 1 << (7 - uint(i&7))
}

// Xor sets v to v XOR u. The vectors must have equal length.
func (v *Vector) Xor(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: xor length mismatch %d != %d", v.n, u.n))
	}
	for i := range v.data {
		v.data[i] ^= u.data[i]
	}
}

// Equal reports whether v and u have the same length and bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.data {
		if v.data[i] != u.data[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.data, v.data)
	return c
}

// Reset reinitialises v to a zeroed n-bit vector, reusing the backing
// array when it has capacity. It exists for hot loops that refill the
// same scratch vector instead of allocating a fresh one per item.
//
//zipline:noalloc
func (v *Vector) Reset(n int) {
	if n < 0 {
		panic("bitvec: negative length")
	}
	nb := (n + 7) / 8
	if cap(v.data) >= nb {
		v.data = v.data[:nb]
		clear(v.data)
	} else {
		//ziplint:allow noalloc grow-to-fit when caller scratch is short; reused scratch never reallocates
		v.data = make([]byte, nb)
	}
	v.n = n
}

// Zero reports whether every bit is clear.
func (v *Vector) Zero() bool {
	for _, b := range v.data {
		if b != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits (the Hamming weight).
func (v *Vector) OnesCount() int {
	n := 0
	for _, b := range v.data {
		n += popcount(b)
	}
	return n
}

// Slice returns a new vector holding bits [start, start+length) of v.
func (v *Vector) Slice(start, length int) *Vector {
	if start < 0 || length < 0 || start+length > v.n {
		panic(fmt.Sprintf("bitvec: slice [%d,%d+%d) out of range 0..%d", start, start, length, v.n))
	}
	out := New(length)
	CopyBits(out.data, 0, v.data, start, length)
	return out
}

// Concat returns a new vector holding v followed by u.
func (v *Vector) Concat(u *Vector) *Vector {
	out := New(v.n + u.n)
	copy(out.data, v.data)
	CopyBits(out.data, v.n, u.data, 0, u.n)
	return out
}

// Uint returns the vector interpreted as an unsigned integer with
// position n-1 as the least significant bit. It panics if n > 64.
func (v *Vector) Uint() uint64 {
	if v.n > 64 {
		panic(fmt.Sprintf("bitvec: %d bits do not fit in uint64", v.n))
	}
	var x uint64
	for i := 0; i < v.n; i++ {
		x <<= 1
		if v.Bit(i) {
			x |= 1
		}
	}
	return x
}

// Key returns a string usable as a map key. Vectors are equal iff
// their Keys are equal (length is encoded alongside the bits).
func (v *Vector) Key() string {
	var sb strings.Builder
	sb.Grow(len(v.data) + 2)
	sb.WriteByte(byte(v.n >> 8))
	sb.WriteByte(byte(v.n))
	sb.Write(v.data)
	return sb.String()
}

// String renders the vector as a binary string, MSB first.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// clearTail zeroes the unused bits of the final byte so that backing
// stores of equal vectors compare equal.
func (v *Vector) clearTail() {
	if r := v.n & 7; r != 0 && len(v.data) > 0 {
		v.data[len(v.data)-1] &= byte(0xFF) << (8 - uint(r))
	}
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}
