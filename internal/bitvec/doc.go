// Package bitvec provides fixed-length bit vectors and MSB-first bit
// readers and writers.
//
// ZipLine's coding layer works on Hamming code words whose lengths
// (n = 2^m - 1 bits) are never multiples of eight, so every module
// above the CRC engine manipulates data at bit granularity. This
// package is the single home for that logic.
//
// Bit addressing convention: position 0 is the most significant bit
// of the first byte ("network order", matching how bits appear on the
// wire). The coding packages translate between positional indexing
// and polynomial coefficient indexing (where bit j is the coefficient
// of x^j and the highest-degree coefficient is transmitted first).
package bitvec
