package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(13)
	if v.Len() != 13 {
		t.Fatalf("Len = %d, want 13", v.Len())
	}
	if !v.Zero() {
		t.Fatalf("new vector not zero: %s", v)
	}
	if got := len(v.Bytes()); got != 2 {
		t.Fatalf("backing bytes = %d, want 2", got)
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(10)
	v.Set(0, true)
	v.Set(9, true)
	if !v.Bit(0) || !v.Bit(9) || v.Bit(5) {
		t.Fatalf("unexpected bits: %s", v)
	}
	v.Flip(9)
	if v.Bit(9) {
		t.Fatalf("flip did not clear bit 9: %s", v)
	}
	v.Flip(5)
	if !v.Bit(5) {
		t.Fatalf("flip did not set bit 5: %s", v)
	}
	if got := v.String(); got != "1000010000" {
		t.Fatalf("String = %q, want 1000010000", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0100110", "1111111000000001", "10101010101"} {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip %q -> %q", s, v.String())
		}
	}
	if _, err := Parse("01x"); err == nil {
		t.Fatal("Parse accepted invalid character")
	}
	v := MustParse("0100 110")
	if v.Len() != 7 {
		t.Fatalf("separator not ignored, len %d", v.Len())
	}
}

func TestFromUint(t *testing.T) {
	v := FromUint(0b101, 7)
	if got := v.String(); got != "0000101" {
		t.Fatalf("FromUint = %s, want 0000101", got)
	}
	if v.Uint() != 5 {
		t.Fatalf("Uint = %d, want 5", v.Uint())
	}
	// Bits above the width are dropped.
	v = FromUint(0xFF, 3)
	if v.Uint() != 7 {
		t.Fatalf("Uint = %d, want 7", v.Uint())
	}
}

func TestFromBytesTailClearing(t *testing.T) {
	// 0xFF holds 8 set bits, but a 5-bit vector must zero the tail.
	v := FromBytes([]byte{0xFF}, 5)
	if got := v.Bytes()[0]; got != 0xF8 {
		t.Fatalf("tail not cleared: %08b", got)
	}
	if v.OnesCount() != 5 {
		t.Fatalf("OnesCount = %d, want 5", v.OnesCount())
	}
}

func TestXorEqualClone(t *testing.T) {
	a := MustParse("1100110")
	b := MustParse("1010101")
	c := a.Clone()
	a.Xor(b)
	if got := a.String(); got != "0110011" {
		t.Fatalf("xor = %s, want 0110011", got)
	}
	if a.Equal(c) {
		t.Fatal("xor mutated clone or Equal broken")
	}
	a.Xor(b)
	if !a.Equal(c) {
		t.Fatal("double xor is not identity")
	}
}

func TestXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Xor(New(5))
}

func TestSliceConcat(t *testing.T) {
	v := MustParse("110100101100")
	left := v.Slice(0, 5)
	right := v.Slice(5, 7)
	if left.String() != "11010" || right.String() != "0101100" {
		t.Fatalf("slices = %s / %s", left, right)
	}
	if got := left.Concat(right); !got.Equal(v) {
		t.Fatalf("concat = %s, want %s", got, v)
	}
	// Unaligned slice.
	mid := v.Slice(3, 6)
	if mid.String() != "100101" {
		t.Fatalf("mid = %s, want 100101", mid)
	}
}

func TestKeyDistinguishesLengths(t *testing.T) {
	a := New(8)  // 00000000
	b := New(16) // 0000000000000000
	if a.Key() == b.Key() {
		t.Fatal("keys collide across lengths")
	}
	c := MustParse("10")
	d := MustParse("10")
	if c.Key() != d.Key() {
		t.Fatal("equal vectors have different keys")
	}
}

func TestUintPanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(65).Uint()
}

func TestSlicePropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(raw []byte) bool {
		n := len(raw) * 8
		v := FromBytes(raw, n)
		if n == 0 {
			return true
		}
		cut := rng.Intn(n + 1)
		return v.Slice(0, cut).Concat(v.Slice(cut, n-cut)).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXorSelfInverseProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		n := min(len(a), len(b)) * 8
		va := FromBytes(a, n)
		vb := FromBytes(b, n)
		orig := va.Clone()
		va.Xor(vb)
		va.Xor(vb)
		return va.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
