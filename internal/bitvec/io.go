package bitvec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader when a read runs past the end
// of the underlying data.
var ErrShortBuffer = errors.New("bitvec: read past end of buffer")

// Writer packs bits MSB-first into a growing byte slice. It is the
// serialisation half of ZipLine's non-byte-aligned wire formats.
// The zero value is ready for use.
type Writer struct {
	buf  []byte
	nbit int
}

// NewWriter returns a Writer with capacity preallocated for sizeHint
// bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit>>3] |= 1 << (7 - uint(w.nbit&7))
	}
	w.nbit++
}

// WriteUint appends the low n bits of x, most significant first.
func (w *Writer) WriteUint(x uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitvec: WriteUint width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(x>>uint(i)&1 == 1)
	}
}

// WriteVector appends every bit of v.
func (w *Writer) WriteVector(v *Vector) {
	// Fast path when the writer is byte aligned.
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, v.data...)
		w.nbit += v.n
		w.clearTail()
		return
	}
	need := (w.nbit + v.n + 7) / 8
	for len(w.buf) < need {
		w.buf = append(w.buf, 0)
	}
	CopyBits(w.buf, w.nbit, v.data, 0, v.n)
	w.nbit += v.n
}

// WriteBytes appends whole bytes (8 bits each).
func (w *Writer) WriteBytes(p []byte) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, p...)
		w.nbit += 8 * len(p)
		return
	}
	for _, b := range p {
		w.WriteUint(uint64(b), 8)
	}
}

// Pad appends zero bits until the stream is byte aligned, returning
// the number of padding bits added. Mirrors the byte-alignment
// padding the Tofino compiler forces onto non-aligned headers.
func (w *Writer) Pad() int {
	n := (8 - w.nbit&7) & 7
	for i := 0; i < n; i++ {
		w.WriteBit(false)
	}
	return n
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the packed bytes; the final partial byte (if any) is
// zero padded. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse, retaining the allocation.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

func (w *Writer) clearTail() {
	if r := w.nbit & 7; r != 0 && len(w.buf) > 0 {
		w.buf[len(w.buf)-1] &= byte(0xFF) << (8 - uint(r))
	}
}

// Reader consumes bits MSB-first from a byte slice. It is the parsing
// half of ZipLine's wire formats. Reads past the end return
// ErrShortBuffer.
type Reader struct {
	data []byte
	pos  int // next bit position
	n    int // total bits available
}

// NewReader returns a Reader over all bits of data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data, n: len(data) * 8}
}

// NewReaderBits returns a Reader over the first nbits of data.
func NewReaderBits(data []byte, nbits int) *Reader {
	if nbits > len(data)*8 {
		panic(fmt.Sprintf("bitvec: NewReaderBits %d > %d available", nbits, len(data)*8))
	}
	return &Reader{data: data, n: nbits}
}

// ResetBits rewinds the Reader over the first nbits of data, so a
// long-lived Reader can parse a stream of blocks without allocating
// one parser per block.
//
//zipline:noalloc
func (r *Reader) ResetBits(data []byte, nbits int) {
	if nbits > len(data)*8 {
		panic(fmt.Sprintf("bitvec: ResetBits %d > %d available", nbits, len(data)*8))
	}
	r.data, r.pos, r.n = data, 0, nbits
}

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.n {
		return false, ErrShortBuffer
	}
	b := r.data[r.pos>>3]>>(7-uint(r.pos&7))&1 == 1
	r.pos++
	return b, nil
}

// ReadUint consumes n bits and returns them as an unsigned integer,
// first bit read being the most significant. Reads of up to 57 bits
// resolve through a single shifted 64-bit window — the record-decode
// hot path never loops per bit.
//
//zipline:noalloc
func (r *Reader) ReadUint(n int) (uint64, error) {
	if n < 0 || n > 64 {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		panic(fmt.Sprintf("bitvec: ReadUint width %d out of range", n))
	}
	if r.pos+n > r.n {
		return 0, ErrShortBuffer
	}
	if n == 0 {
		return 0, nil
	}
	si := r.pos >> 3
	if n <= 57 {
		// After discarding the pos&7 already-consumed bits, the window
		// still holds 64-7 = 57 valid bits.
		var w uint64
		if si+8 <= len(r.data) {
			w = binary.BigEndian.Uint64(r.data[si:])
		} else {
			for j := 0; si+j < len(r.data); j++ {
				w |= uint64(r.data[si+j]) << uint(56-8*j)
			}
		}
		w <<= uint(r.pos & 7)
		r.pos += n
		return w >> uint(64-n), nil
	}
	var x uint64
	for i := 0; i < n; i++ {
		x <<= 1
		if r.data[r.pos>>3]>>(7-uint(r.pos&7))&1 == 1 {
			x |= 1
		}
		r.pos++
	}
	return x, nil
}

// ReadVector consumes n bits into a new Vector.
func (r *Reader) ReadVector(n int) (*Vector, error) {
	if r.pos+n > r.n {
		return nil, ErrShortBuffer
	}
	out := New(n)
	if r.pos&7 == 0 {
		copy(out.data, r.data[r.pos>>3:])
		out.clearTail()
		r.pos += n
		return out, nil
	}
	for i := 0; i < n; i++ {
		b, _ := r.ReadBit()
		out.Set(i, b)
	}
	return out, nil
}

// Skip discards n bits.
func (r *Reader) Skip(n int) error {
	if r.pos+n > r.n {
		return ErrShortBuffer
	}
	r.pos += n
	return nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.n - r.pos }

// Pos returns the number of bits consumed so far.
func (r *Reader) Pos() int { return r.pos }
