package gd

import (
	"errors"
	"math/rand"
	"testing"

	"zipline/internal/bitvec"
)

func bv(t *testing.T, s string) *bitvec.Vector {
	t.Helper()
	return bitvec.MustParse(s)
}

func TestDictionaryBasic(t *testing.T) {
	d := NewDictionary(2) // 4 slots
	if d.Capacity() != 4 || d.IDBits() != 2 {
		t.Fatalf("capacity %d idbits %d", d.Capacity(), d.IDBits())
	}
	a := bv(t, "0001")
	if _, ok := d.Lookup(a); ok {
		t.Fatal("lookup hit on empty dictionary")
	}
	id, evicted := d.Insert(a)
	if evicted != nil {
		t.Fatal("eviction from empty dictionary")
	}
	got, ok := d.Lookup(a)
	if !ok || got != id {
		t.Fatalf("lookup = %d,%v want %d,true", got, ok, id)
	}
	basis, ok := d.LookupID(id)
	if !ok || !basis.Equal(a) {
		t.Fatal("reverse lookup failed")
	}
}

func TestDictionaryIDsAreDense(t *testing.T) {
	d := NewDictionary(2)
	ids := make(map[uint32]bool)
	for i := 0; i < 4; i++ {
		v := bitvec.FromUint(uint64(i), 4)
		id, evicted := d.Insert(v)
		if evicted != nil {
			t.Fatalf("unexpected eviction at %d", i)
		}
		ids[id] = true
	}
	for id := uint32(0); id < 4; id++ {
		if !ids[id] {
			t.Fatalf("id %d never allocated", id)
		}
	}
}

func TestDictionaryLRUEviction(t *testing.T) {
	d := NewDictionary(1) // 2 slots
	a, b, c := bv(t, "0001"), bv(t, "0010"), bv(t, "0011")
	d.Insert(a)
	d.Insert(b)
	// Touch a so b becomes least recently used.
	d.Lookup(a)
	id, evicted := d.Insert(c)
	if evicted == nil || !evicted.Equal(b) {
		t.Fatalf("evicted %v, want b", evicted)
	}
	if _, ok := d.Lookup(b); ok {
		t.Fatal("b still mapped after eviction")
	}
	if got, ok := d.LookupID(id); !ok || !got.Equal(c) {
		t.Fatal("recycled id does not map to c")
	}
	if _, ok := d.Lookup(a); !ok {
		t.Fatal("a lost")
	}
}

func TestDictionaryInsertExistingRefreshes(t *testing.T) {
	d := NewDictionary(1)
	a, b, c := bv(t, "0001"), bv(t, "0010"), bv(t, "0011")
	idA, _ := d.Insert(a)
	d.Insert(b)
	// Re-insert a: same id, and a becomes most recent.
	idA2, evicted := d.Insert(a)
	if idA2 != idA || evicted != nil {
		t.Fatalf("re-insert changed id %d->%d or evicted", idA, idA2)
	}
	_, evicted = d.Insert(c)
	if evicted == nil || !evicted.Equal(b) {
		t.Fatal("LRU order not refreshed by re-insert")
	}
}

func TestDictionaryRemove(t *testing.T) {
	d := NewDictionary(1)
	a, b := bv(t, "0001"), bv(t, "0010")
	idA, _ := d.Insert(a)
	d.Insert(b)
	if !d.Remove(a) {
		t.Fatal("remove failed")
	}
	if d.Remove(a) {
		t.Fatal("double remove succeeded")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	// The freed id must be reusable without evicting b.
	idC, evicted := d.Insert(bv(t, "0011"))
	if evicted != nil {
		t.Fatal("eviction despite free slot")
	}
	if idC != idA {
		t.Fatalf("freed id %d not reused (got %d)", idA, idC)
	}
}

func TestDictionaryLookupIDMisses(t *testing.T) {
	d := NewDictionary(2)
	if _, ok := d.LookupID(0); ok {
		t.Fatal("unmapped id hit")
	}
	if _, ok := d.LookupID(99); ok {
		t.Fatal("out-of-range id hit")
	}
}

func TestDictionaryInsertedBasisIsCopied(t *testing.T) {
	d := NewDictionary(2)
	v := bv(t, "1010")
	id, _ := d.Insert(v)
	v.Flip(0) // mutate caller's copy
	stored, _ := d.LookupID(id)
	if stored.String() != "1010" {
		t.Fatalf("dictionary aliases caller memory: %s", stored)
	}
}

func TestDictionaryChurnProperty(t *testing.T) {
	// Under arbitrary churn the forward and reverse maps stay
	// mutually consistent and size never exceeds capacity.
	d := NewDictionary(3) // 8 slots
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		v := bitvec.FromUint(uint64(rng.Intn(64)), 6)
		switch rng.Intn(3) {
		case 0, 1:
			d.Insert(v)
		case 2:
			d.Remove(v)
		}
		if d.Len() > d.Capacity() {
			t.Fatalf("size %d exceeds capacity", d.Len())
		}
	}
	// Consistency sweep.
	for id := uint32(0); id < uint32(d.Capacity()); id++ {
		basis, ok := d.LookupID(id)
		if !ok {
			continue
		}
		got, ok2 := d.Lookup(basis)
		if !ok2 || got != id {
			t.Fatalf("id %d: reverse %s does not map back (got %d, %v)", id, basis, got, ok2)
		}
	}
}

func TestNewDictionaryPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDictionary(0)
}

func TestFrozenPrefixLookupAndInsert(t *testing.T) {
	fa, fb := bv(t, "0001"), bv(t, "0010")
	frozen := NewFrozen([]*bitvec.Vector{fa, fb, fa}) // duplicate keeps first id
	if frozen.Len() != 2 {
		t.Fatalf("frozen len = %d, want 2 (dup collapsed)", frozen.Len())
	}
	d := NewDictionaryFrozen(2, frozen) // 4 slots: 2 frozen + 2 dynamic
	if d.FrozenLen() != 2 {
		t.Fatalf("frozen prefix = %d", d.FrozenLen())
	}
	if id, ok := d.Lookup(fb); !ok || id != 1 {
		t.Fatalf("frozen lookup = %d,%v want 1,true", id, ok)
	}
	// Inserting a frozen basis maps to its permanent id, no dynamic slot.
	if id, ev := d.Insert(fa); id != 0 || ev != nil {
		t.Fatalf("frozen insert = %d,%v", id, ev)
	}
	if d.Len() != 0 {
		t.Fatalf("dynamic len = %d after frozen insert", d.Len())
	}
	// Dynamic inserts start past the frozen prefix.
	x, y, z := bv(t, "0100"), bv(t, "1000"), bv(t, "1100")
	if id, _ := d.Insert(x); id != 2 {
		t.Fatalf("first dynamic id = %d, want 2", id)
	}
	if id, _ := d.Insert(y); id != 3 {
		t.Fatalf("second dynamic id = %d, want 3", id)
	}
	// Pool exhausted: eviction recycles a dynamic id, never a frozen one.
	id, evicted := d.Insert(z)
	if id != 2 || evicted == nil || !evicted.Equal(x) {
		t.Fatalf("eviction = id %d evicted %v, want dynamic id 2 evicting x", id, evicted)
	}
	for fid, want := range []*bitvec.Vector{fa, fb} {
		got, ok := d.LookupID(uint32(fid))
		if !ok || !got.Equal(want) {
			t.Fatalf("frozen id %d lost after eviction", fid)
		}
		got, ok = d.LookupIDTouch(uint32(fid))
		if !ok || !got.Equal(want) {
			t.Fatalf("frozen id %d lost via touch", fid)
		}
	}
}

func TestFrozenDictionaryReset(t *testing.T) {
	frozen := NewFrozen([]*bitvec.Vector{bv(t, "0001")})
	d := NewDictionaryFrozen(2, frozen)
	x := bv(t, "0100")
	id1, _ := d.Insert(x)
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("dynamic len = %d after Reset", d.Len())
	}
	if _, ok := d.Lookup(x); ok {
		t.Fatal("dynamic entry survived Reset")
	}
	if id, ok := d.Lookup(bv(t, "0001")); !ok || id != 0 {
		t.Fatal("frozen entry lost in Reset")
	}
	// Identifier assignment replays identically after Reset.
	id2, _ := d.Insert(x)
	if id2 != id1 {
		t.Fatalf("post-Reset id %d != pre-Reset id %d", id2, id1)
	}
}

var errFrozenLookup = errors.New("frozen lookup returned wrong basis")

func TestFrozenSharedAcrossDictionariesConcurrently(t *testing.T) {
	bases := make([]*bitvec.Vector, 64)
	rng := rand.New(rand.NewSource(31))
	for i := range bases {
		b := bitvec.New(16)
		for j := 0; j < 16; j++ {
			b.Set(j, rng.Intn(2) == 1)
		}
		bases[i] = b
	}
	frozen := NewFrozen(bases)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			d := NewDictionaryFrozen(8, frozen)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				b := bases[rng.Intn(len(bases))]
				id, ok := d.Lookup(b)
				if !ok || !frozen.Basis(id).Equal(b) {
					done <- errFrozenLookup
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
