package gd

import (
	"container/list"
	"fmt"

	"zipline/internal/bitvec"
)

// Dictionary maps bases to short identifiers with LRU replacement,
// mirroring the basis↔ID tables that ZipLine's control plane manages
// in the switches (paper §5): a fixed pool of 2^t identifiers, the
// least recently used one recycled when a new basis arrives and the
// pool is exhausted.
//
// Dictionary is the in-process (single-node) variant used by the
// stream compressor and by workload analysis; the switch tables in
// zipline/internal/zswitch enforce the same policy through the
// simulated control plane. Not safe for concurrent use.
type Dictionary struct {
	idBits   int
	capacity int
	byKey    map[string]*list.Element // basis key -> entry
	byID     []*list.Element          // id -> entry (nil if free); grows on demand
	order    *list.List               // front = most recently used
	freed    []uint32                 // ids returned by Remove, LIFO
	next     uint32                   // first never-allocated id
	keyBuf   []byte                   // scratch for allocation-free lookups

	// frozen is an optional immutable prefix shared read-only with any
	// number of other dictionaries (the pre-trained basis dictionary of
	// a compressor fleet). Frozen entries own identifiers [0, base) and
	// are never evicted, refreshed or removed; dynamic entries start at
	// base and behave exactly as before.
	frozen *Frozen
	base   uint32 // first dynamic id == frozen.Len()
}

// Frozen is an immutable basis→identifier mapping: identifiers are
// assigned densely in insertion order at construction and never change.
// A Frozen is safe for concurrent use by any number of Dictionaries —
// all its state is written once in NewFrozen and only read afterwards.
type Frozen struct {
	byKey map[string]uint32
	bases []*bitvec.Vector
}

// NewFrozen builds a frozen dictionary from bases, assigning ids
// 0..n-1 in order. Duplicate bases keep their first id; the vectors
// are cloned, so the caller's slices stay free to mutate.
func NewFrozen(bases []*bitvec.Vector) *Frozen {
	f := &Frozen{byKey: make(map[string]uint32, len(bases))}
	for _, b := range bases {
		k := b.Key()
		if _, dup := f.byKey[k]; dup {
			continue
		}
		f.byKey[k] = uint32(len(f.bases))
		f.bases = append(f.bases, b.Clone())
	}
	return f
}

// Len returns the number of frozen entries.
func (f *Frozen) Len() int { return len(f.bases) }

// Basis returns the basis for a frozen identifier.
func (f *Frozen) Basis(id uint32) *bitvec.Vector { return f.bases[id] }

type dictEntry struct {
	key   string
	basis *bitvec.Vector
	id    uint32
}

// NewDictionary creates a dictionary with 2^idBits identifier slots.
// Memory is proportional to the entries actually inserted, not to the
// slot count: a decoder can be handed an attacker-chosen idBits (and,
// in the sharded container, hundreds of dictionaries), so the 2^24
// worst case must not be preallocated. Identifiers are still handed
// out in increasing order (reusing Removed ids first, LIFO), exactly
// as the previous eager free-list did.
func NewDictionary(idBits int) *Dictionary {
	if idBits < 1 || idBits > 24 {
		panic(fmt.Sprintf("gd: idBits %d out of range [1,24]", idBits))
	}
	return &Dictionary{
		idBits:   idBits,
		capacity: 1 << uint(idBits),
		byKey:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

// NewDictionaryFrozen creates a dictionary whose identifier space
// starts with the shared frozen prefix: ids [0, frozen.Len()) resolve
// through frozen (read-only, never evicted), and the remaining
// capacity behaves as a normal LRU dictionary. frozen may be nil.
// Because the prefix is only ever read, one Frozen can back any
// number of concurrent dictionaries.
func NewDictionaryFrozen(idBits int, frozen *Frozen) *Dictionary {
	d := NewDictionary(idBits)
	if frozen != nil && frozen.Len() > 0 {
		if frozen.Len() >= d.capacity {
			panic(fmt.Sprintf("gd: frozen dictionary of %d entries leaves no dynamic room in 2^%d ids", frozen.Len(), idBits))
		}
		d.frozen = frozen
		d.base = uint32(frozen.Len())
		d.next = d.base
	}
	return d
}

// Reset drops every dynamic mapping while keeping the frozen prefix
// and all allocated storage (map buckets, id table, key scratch), so a
// pooled encoder can re-serve a new stream without allocating.
//
//zipline:noalloc
func (d *Dictionary) Reset() {
	clear(d.byKey)
	for i := range d.byID {
		d.byID[i] = nil
	}
	d.byID = d.byID[:0]
	d.order.Init()
	d.freed = d.freed[:0]
	d.next = d.base
}

// IDBits returns the identifier width in bits.
func (d *Dictionary) IDBits() int { return d.idBits }

// FrozenLen returns the size of the shared frozen prefix (0 without one).
func (d *Dictionary) FrozenLen() int { return int(d.base) }

// Capacity returns the number of identifier slots, 2^IDBits.
func (d *Dictionary) Capacity() int { return d.capacity }

// Len returns the number of bases currently mapped.
func (d *Dictionary) Len() int { return d.order.Len() }

// fillKeyBuf assembles the basis's map key (the same bytes as
// bitvec's Key: a 2-byte length prefix plus the backing store) in the
// dictionary's scratch buffer. Indexing the map with string(d.keyBuf)
// directly lets the compiler skip the string allocation, keeping the
// hot hit path allocation-free.
func (d *Dictionary) fillKeyBuf(basis *bitvec.Vector) {
	d.keyBuf = append(d.keyBuf[:0], byte(basis.Len()>>8), byte(basis.Len()))
	d.keyBuf = append(d.keyBuf, basis.Bytes()...)
}

// Lookup returns the identifier for a basis if present, refreshing
// its recency (a data-plane hit resets the TNA idle timer). Frozen
// entries hit without a recency update — they are never evicted, so
// they carry no position in the LRU order.
//
//zipline:noalloc
func (d *Dictionary) Lookup(basis *bitvec.Vector) (uint32, bool) {
	d.fillKeyBuf(basis)
	if d.frozen != nil {
		if id, ok := d.frozen.byKey[string(d.keyBuf)]; ok {
			return id, true
		}
	}
	el, ok := d.byKey[string(d.keyBuf)]
	if !ok {
		return 0, false
	}
	d.order.MoveToFront(el)
	return el.Value.(*dictEntry).id, true
}

// LookupID returns the basis for an identifier if one is mapped. It
// does not refresh recency: decoders follow the encoder's mapping
// rather than maintaining their own.
func (d *Dictionary) LookupID(id uint32) (*bitvec.Vector, bool) {
	if id < d.base {
		return d.frozen.bases[id], true
	}
	if id >= uint32(len(d.byID)) || d.byID[id] == nil {
		return nil, false
	}
	return d.byID[id].Value.(*dictEntry).basis, true
}

// LookupIDTouch is LookupID plus the recency refresh of a Lookup hit,
// in one table access and without rebuilding the basis key — the
// decoder's replay of an encoder hit, the dominant operation on the
// decode hot path.
//
//zipline:noalloc
func (d *Dictionary) LookupIDTouch(id uint32) (*bitvec.Vector, bool) {
	if id < d.base {
		// Mirrors the encoder: frozen hits carry no recency.
		return d.frozen.bases[id], true
	}
	if id >= uint32(len(d.byID)) || d.byID[id] == nil {
		return nil, false
	}
	el := d.byID[id]
	d.order.MoveToFront(el)
	return el.Value.(*dictEntry).basis, true
}

// Insert maps a new basis, allocating the least recently used
// identifier. It returns the assigned id and, when an existing
// mapping had to be recycled, the evicted basis. Inserting a basis
// that is already present just refreshes it.
func (d *Dictionary) Insert(basis *bitvec.Vector) (id uint32, evicted *bitvec.Vector) {
	d.fillKeyBuf(basis)
	if d.frozen != nil {
		// A frozen basis is already permanently mapped.
		if fid, ok := d.frozen.byKey[string(d.keyBuf)]; ok {
			return fid, nil
		}
	}
	if el, ok := d.byKey[string(d.keyBuf)]; ok {
		d.order.MoveToFront(el)
		return el.Value.(*dictEntry).id, nil
	}
	key := string(d.keyBuf)
	switch {
	case len(d.freed) > 0:
		id = d.freed[len(d.freed)-1]
		d.freed = d.freed[:len(d.freed)-1]
	case d.next < uint32(d.capacity):
		id = d.next
		d.next++
	default:
		// Recycle the least recently used mapping (paper §5: "an LRU
		// policy is applied to evict and recycle an identifier").
		back := d.order.Back()
		ent := back.Value.(*dictEntry)
		id = ent.id
		evicted = ent.basis
		delete(d.byKey, ent.key)
		d.byID[id] = nil
		d.order.Remove(back)
	}
	el := d.order.PushFront(&dictEntry{key: key, basis: basis.Clone(), id: id})
	d.byKey[key] = el
	for int(id) >= len(d.byID) {
		d.byID = append(d.byID, nil)
	}
	d.byID[id] = el
	return id, evicted
}

// Remove drops the mapping for a basis, returning its id to the free
// pool. It reports whether the basis was present.
func (d *Dictionary) Remove(basis *bitvec.Vector) bool {
	d.fillKeyBuf(basis)
	el, ok := d.byKey[string(d.keyBuf)]
	if !ok {
		return false
	}
	ent := el.Value.(*dictEntry)
	delete(d.byKey, ent.key)
	d.byID[ent.id] = nil
	d.order.Remove(el)
	d.freed = append(d.freed, ent.id)
	return true
}
