package gd

import (
	"container/list"
	"fmt"

	"zipline/internal/bitvec"
)

// Dictionary maps bases to short identifiers with LRU replacement,
// mirroring the basis↔ID tables that ZipLine's control plane manages
// in the switches (paper §5): a fixed pool of 2^t identifiers, the
// least recently used one recycled when a new basis arrives and the
// pool is exhausted.
//
// Dictionary is the in-process (single-node) variant used by the
// stream compressor and by workload analysis; the switch tables in
// zipline/internal/zswitch enforce the same policy through the
// simulated control plane. Not safe for concurrent use.
type Dictionary struct {
	idBits   int
	capacity int
	byKey    map[string]*list.Element // basis key -> entry
	byID     []*list.Element          // id -> entry (nil if free)
	order    *list.List               // front = most recently used
	free     []uint32                 // unallocated ids, LIFO
}

type dictEntry struct {
	key   string
	basis *bitvec.Vector
	id    uint32
}

// NewDictionary creates a dictionary with 2^idBits identifier slots.
func NewDictionary(idBits int) *Dictionary {
	if idBits < 1 || idBits > 24 {
		panic(fmt.Sprintf("gd: idBits %d out of range [1,24]", idBits))
	}
	capacity := 1 << uint(idBits)
	d := &Dictionary{
		idBits:   idBits,
		capacity: capacity,
		byKey:    make(map[string]*list.Element, capacity),
		byID:     make([]*list.Element, capacity),
		order:    list.New(),
		free:     make([]uint32, 0, capacity),
	}
	// Hand out identifiers in increasing order for determinism.
	for id := capacity - 1; id >= 0; id-- {
		d.free = append(d.free, uint32(id))
	}
	return d
}

// IDBits returns the identifier width in bits.
func (d *Dictionary) IDBits() int { return d.idBits }

// Capacity returns the number of identifier slots, 2^IDBits.
func (d *Dictionary) Capacity() int { return d.capacity }

// Len returns the number of bases currently mapped.
func (d *Dictionary) Len() int { return d.order.Len() }

// Lookup returns the identifier for a basis if present, refreshing
// its recency (a data-plane hit resets the TNA idle timer).
func (d *Dictionary) Lookup(basis *bitvec.Vector) (uint32, bool) {
	el, ok := d.byKey[basis.Key()]
	if !ok {
		return 0, false
	}
	d.order.MoveToFront(el)
	return el.Value.(*dictEntry).id, true
}

// LookupID returns the basis for an identifier if one is mapped. It
// does not refresh recency: decoders follow the encoder's mapping
// rather than maintaining their own.
func (d *Dictionary) LookupID(id uint32) (*bitvec.Vector, bool) {
	if id >= uint32(d.capacity) || d.byID[id] == nil {
		return nil, false
	}
	return d.byID[id].Value.(*dictEntry).basis, true
}

// Insert maps a new basis, allocating the least recently used
// identifier. It returns the assigned id and, when an existing
// mapping had to be recycled, the evicted basis. Inserting a basis
// that is already present just refreshes it.
func (d *Dictionary) Insert(basis *bitvec.Vector) (id uint32, evicted *bitvec.Vector) {
	key := basis.Key()
	if el, ok := d.byKey[key]; ok {
		d.order.MoveToFront(el)
		return el.Value.(*dictEntry).id, nil
	}
	if len(d.free) > 0 {
		id = d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
	} else {
		// Recycle the least recently used mapping (paper §5: "an LRU
		// policy is applied to evict and recycle an identifier").
		back := d.order.Back()
		ent := back.Value.(*dictEntry)
		id = ent.id
		evicted = ent.basis
		delete(d.byKey, ent.key)
		d.byID[id] = nil
		d.order.Remove(back)
	}
	el := d.order.PushFront(&dictEntry{key: key, basis: basis.Clone(), id: id})
	d.byKey[key] = el
	d.byID[id] = el
	return id, evicted
}

// Remove drops the mapping for a basis, returning its id to the free
// pool. It reports whether the basis was present.
func (d *Dictionary) Remove(basis *bitvec.Vector) bool {
	el, ok := d.byKey[basis.Key()]
	if !ok {
		return false
	}
	ent := el.Value.(*dictEntry)
	delete(d.byKey, ent.key)
	d.byID[ent.id] = nil
	d.order.Remove(el)
	d.free = append(d.free, ent.id)
	return true
}
