package gd

import (
	"fmt"

	"zipline/internal/bitvec"
)

// Codec packages a Transform for byte-aligned chunks. Transform word
// lengths are generally not byte multiples (Hamming: n = 2^m − 1), so
// a chunk is the word plus the minimal number of extra bits that
// reaches a byte boundary; the extra bits ride along verbatim, placed
// at the most significant end of the chunk.
//
// For the paper's m = 8 configuration this reproduces §7 exactly: the
// chunk is 256 bits (32 bytes) and the single extra bit is "the MSB
// of the raw data packet" that ZipLine stores next to the basis.
type Codec struct {
	t         Transform
	extraBits int // 0..7, at the MSB end of the chunk
	chunkBits int
}

// Split is the result of encoding one chunk: the dictionary-keyed
// basis plus the per-chunk residue (deviation and extra bits) that a
// packet must carry either way.
type Split struct {
	// Basis is the transform basis — the dictionary key.
	Basis *bitvec.Vector
	// Deviation is the transform deviation (a Hamming syndrome for
	// the paper's transform).
	Deviation uint32
	// Extra holds the chunk's extra MSBs, right-aligned. For the
	// m = 8 configuration this is the single carried MSB.
	Extra uint8
}

// NewCodec wraps a transform. The chunk size is WordBits rounded up
// to the next byte boundary.
func NewCodec(t Transform) *Codec {
	extra := (8 - t.WordBits()&7) & 7
	return &Codec{t: t, extraBits: extra, chunkBits: t.WordBits() + extra}
}

// Transform returns the wrapped transform.
func (c *Codec) Transform() Transform { return c.t }

// ChunkBytes returns the chunk size in bytes.
func (c *Codec) ChunkBytes() int { return c.chunkBits / 8 }

// ChunkBits returns the chunk size in bits (always a byte multiple).
func (c *Codec) ChunkBits() int { return c.chunkBits }

// ExtraBits returns how many chunk MSBs bypass the transform (the
// paper's carried MSB; 1 for every Hamming configuration).
func (c *Codec) ExtraBits() int { return c.extraBits }

// BasisBits returns the dictionary key width in bits.
func (c *Codec) BasisBits() int { return c.t.BasisBits() }

// DeviationBits returns the deviation width in bits.
func (c *Codec) DeviationBits() int { return c.t.DeviationBits() }

// EncodedBits returns the total bits of a Split when serialised
// without padding: extra + deviation + basis. One plus the paper's
// "syndrome + basis" type-2 payload content.
func (c *Codec) EncodedBits() int {
	return c.extraBits + c.t.DeviationBits() + c.t.BasisBits()
}

// SplitChunk encodes one chunk of exactly ChunkBytes bytes.
func (c *Codec) SplitChunk(chunk []byte) (Split, error) {
	if h, ok := c.t.(*Hamming); ok {
		return c.splitHamming(h, chunk)
	}
	return c.splitGeneric(chunk)
}

// splitGeneric encodes a chunk through the Transform interface; the
// Hamming transform takes the vector-free path in fastpath.go instead.
func (c *Codec) splitGeneric(chunk []byte) (Split, error) {
	if len(chunk) != c.ChunkBytes() {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return Split{}, fmt.Errorf("gd: chunk is %d bytes, codec expects %d", len(chunk), c.ChunkBytes())
	}
	var extra uint8
	word := bitvec.FromBytes(chunk, c.chunkBits)
	if c.extraBits > 0 {
		extra = uint8(word.Slice(0, c.extraBits).Uint())
		word = word.Slice(c.extraBits, c.t.WordBits())
	}
	basis, dev := c.t.Split(word)
	return Split{Basis: basis, Deviation: dev, Extra: extra}, nil
}

// MergeChunk reconstructs the original chunk, appending it to dst and
// returning the extended slice.
func (c *Codec) MergeChunk(s Split, dst []byte) ([]byte, error) {
	if h, ok := c.t.(*Hamming); ok {
		return c.mergeHamming(h, s, dst)
	}
	word, err := c.t.Merge(s.Basis, s.Deviation)
	if err != nil {
		return dst, err
	}
	if c.extraBits == 0 {
		return word.AppendBytes(dst), nil
	}
	if s.Extra>>uint(c.extraBits) != 0 {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return dst, fmt.Errorf("gd: extra %#x wider than %d bits", s.Extra, c.extraBits)
	}
	w := bitvec.NewWriter(c.ChunkBytes())
	w.WriteUint(uint64(s.Extra), c.extraBits)
	w.WriteVector(word)
	return append(dst, w.Bytes()...), nil
}

// String implements fmt.Stringer.
func (c *Codec) String() string {
	return fmt.Sprintf("codec{%s, chunk=%dB}", c.t, c.ChunkBytes())
}
