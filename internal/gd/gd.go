package gd

import (
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/hamming"
)

// Transform is an invertible mapping from a fixed-width data word to
// a (basis, deviation) pair. Implementations must satisfy, for every
// word w of WordBits bits:
//
//	Merge(Split(w)) == w
//
// and Split must be total (defined for every input word).
// Implementations are safe for concurrent use.
type Transform interface {
	// WordBits is the input word length in bits.
	WordBits() int
	// BasisBits is the basis length in bits; BasisBits < WordBits
	// for any transform that can compress.
	BasisBits() int
	// DeviationBits is the deviation width in bits (≤ 32).
	DeviationBits() int
	// Split maps a word to its basis and deviation.
	Split(word *bitvec.Vector) (basis *bitvec.Vector, deviation uint32)
	// Merge reconstructs the word from a basis and deviation. It
	// returns an error if the deviation is not a value Split can
	// produce (e.g. an out-of-range syndrome).
	Merge(basis *bitvec.Vector, deviation uint32) (*bitvec.Vector, error)
	// String describes the transform for logs and reports.
	String() string
}

// Hamming is the paper's transformation function: the deviation is
// the word's Hamming syndrome (computable as a CRC on Tofino), and
// the basis is the message part of the codeword obtained by flipping
// the single bit the syndrome identifies.
type Hamming struct {
	code *hamming.Code
}

// NewHamming builds the Hamming transform for a given code.
func NewHamming(code *hamming.Code) *Hamming { return &Hamming{code: code} }

// NewHammingM builds the Hamming transform for the default Table 1
// polynomial with m parity bits.
func NewHammingM(m int) (*Hamming, error) {
	code, err := hamming.ByM(m)
	if err != nil {
		return nil, err
	}
	return NewHamming(code), nil
}

// Code exposes the underlying Hamming code.
func (h *Hamming) Code() *hamming.Code { return h.code }

// WordBits returns n = 2^m − 1.
func (h *Hamming) WordBits() int { return h.code.N() }

// BasisBits returns k = 2^m − m − 1.
func (h *Hamming) BasisBits() int { return h.code.K() }

// DeviationBits returns the syndrome width m.
func (h *Hamming) DeviationBits() int { return h.code.M() }

// Split implements paper Figure 1 steps ➋–➎: compute the syndrome,
// flip the bit it identifies, truncate to the rightmost k bits.
func (h *Hamming) Split(word *bitvec.Vector) (*bitvec.Vector, uint32) {
	s := h.code.SyndromeVector(word)
	cw := word
	if pos := h.code.ErrorPosition(s); pos >= 0 {
		cw = word.Clone()
		cw.Flip(pos)
	}
	return cw.Slice(h.code.M(), h.code.K()), s
}

// Merge implements paper Figure 2 steps ➌–➐: restore the parity bits
// by feeding the zero-padded basis through the same CRC, then flip
// the bit the deviation identifies.
func (h *Hamming) Merge(basis *bitvec.Vector, deviation uint32) (*bitvec.Vector, error) {
	if basis.Len() != h.code.K() {
		return nil, fmt.Errorf("gd: basis length %d != k=%d", basis.Len(), h.code.K())
	}
	if deviation >= 1<<uint(h.code.M()) {
		return nil, fmt.Errorf("gd: deviation %#x wider than m=%d bits", deviation, h.code.M())
	}
	p := h.code.Parity(basis)
	w := bitvec.NewWriter((h.code.N() + 7) / 8)
	w.WriteUint(uint64(p), h.code.M())
	w.WriteVector(basis)
	word := bitvec.FromBytes(w.Bytes(), h.code.N())
	if pos := h.code.ErrorPosition(deviation); pos >= 0 {
		word.Flip(pos)
	}
	return word, nil
}

// String implements fmt.Stringer.
func (h *Hamming) String() string {
	return fmt.Sprintf("gd-hamming(%d,%d)", h.code.N(), h.code.K())
}

// Identity is classic deduplication dressed as a GD transform: the
// basis is the whole word and the deviation is empty. Only exactly
// repeated words deduplicate. It is the baseline that quantifies what
// the Hamming transformation adds.
type Identity struct {
	Bits int // word length
}

// WordBits returns the configured word length.
func (t Identity) WordBits() int { return t.Bits }

// BasisBits equals WordBits: nothing is factored out.
func (t Identity) BasisBits() int { return t.Bits }

// DeviationBits is zero.
func (t Identity) DeviationBits() int { return 0 }

// Split returns the word itself as basis.
func (t Identity) Split(word *bitvec.Vector) (*bitvec.Vector, uint32) {
	if word.Len() != t.Bits {
		panic(fmt.Sprintf("gd: word length %d != %d", word.Len(), t.Bits))
	}
	return word.Clone(), 0
}

// Merge returns the basis itself.
func (t Identity) Merge(basis *bitvec.Vector, deviation uint32) (*bitvec.Vector, error) {
	if basis.Len() != t.Bits {
		return nil, fmt.Errorf("gd: basis length %d != %d", basis.Len(), t.Bits)
	}
	if deviation != 0 {
		return nil, fmt.Errorf("gd: identity transform has no deviation, got %#x", deviation)
	}
	return basis.Clone(), nil
}

// String implements fmt.Stringer.
func (t Identity) String() string { return fmt.Sprintf("dedup(%d)", t.Bits) }

// LowBits extracts the d lowest-order (rightmost) bits of the word as
// the deviation and keeps the rest as the basis. For time-series data
// whose low bits are sensor noise this clusters readings onto shared
// bases directly — the simplest member of the bit-swapping family the
// paper cites as future work [37].
type LowBits struct {
	Bits int // word length
	Dev  int // deviation width, 1..32
}

// WordBits returns the configured word length.
func (t LowBits) WordBits() int { return t.Bits }

// BasisBits returns WordBits − Dev.
func (t LowBits) BasisBits() int { return t.Bits - t.Dev }

// DeviationBits returns the configured deviation width.
func (t LowBits) DeviationBits() int { return t.Dev }

// Split cuts the word: basis = leading bits, deviation = trailing
// Dev bits.
func (t LowBits) Split(word *bitvec.Vector) (*bitvec.Vector, uint32) {
	if word.Len() != t.Bits {
		panic(fmt.Sprintf("gd: word length %d != %d", word.Len(), t.Bits))
	}
	basis := word.Slice(0, t.Bits-t.Dev)
	dev := uint32(word.Slice(t.Bits-t.Dev, t.Dev).Uint())
	return basis, dev
}

// Merge concatenates basis and deviation back together.
func (t LowBits) Merge(basis *bitvec.Vector, deviation uint32) (*bitvec.Vector, error) {
	if basis.Len() != t.Bits-t.Dev {
		return nil, fmt.Errorf("gd: basis length %d != %d", basis.Len(), t.Bits-t.Dev)
	}
	if t.Dev < 32 && deviation >= 1<<uint(t.Dev) {
		return nil, fmt.Errorf("gd: deviation %#x wider than %d bits", deviation, t.Dev)
	}
	w := bitvec.NewWriter((t.Bits + 7) / 8)
	w.WriteVector(basis)
	w.WriteUint(uint64(deviation), t.Dev)
	return bitvec.FromBytes(w.Bytes(), t.Bits), nil
}

// String implements fmt.Stringer.
func (t LowBits) String() string { return fmt.Sprintf("lowbits(%d,%d)", t.Bits, t.Dev) }
