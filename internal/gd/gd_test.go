package gd

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"zipline/internal/bitvec"
	"zipline/internal/hamming"
)

func hammingT(t *testing.T, m int) *Hamming {
	t.Helper()
	tr, err := NewHammingM(m)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHammingSplitMergeRoundTrip(t *testing.T) {
	for _, m := range []int{3, 4, 5, 8, 10} {
		tr := hammingT(t, m)
		rng := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 100; trial++ {
			word := randomVector(rng, tr.WordBits())
			basis, dev := tr.Split(word)
			if basis.Len() != tr.BasisBits() {
				t.Fatalf("m=%d: basis %d bits, want %d", m, basis.Len(), tr.BasisBits())
			}
			back, err := tr.Merge(basis, dev)
			if err != nil {
				t.Fatalf("m=%d: %v", m, err)
			}
			if !back.Equal(word) {
				t.Fatalf("m=%d trial %d: round trip failed\n in: %s\nout: %s", m, trial, word, back)
			}
		}
	}
}

func TestHammingSplitExhaustive74(t *testing.T) {
	// All 128 words of the (7,4) configuration: the 16 bases each
	// cover exactly 8 words (perfect code), and every word round
	// trips.
	tr := hammingT(t, 3)
	bases := make(map[string]int)
	for w := 0; w < 128; w++ {
		word := bitvec.FromUint(uint64(w), 7)
		basis, dev := tr.Split(word)
		bases[basis.Key()]++
		back, err := tr.Merge(basis, dev)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(word) {
			t.Fatalf("word %07b: round trip gave %s", w, back)
		}
	}
	if len(bases) != 16 {
		t.Fatalf("%d distinct bases, want 16", len(bases))
	}
	for k, n := range bases {
		if n != 8 {
			t.Fatalf("basis %q covers %d words, want 8", k, n)
		}
	}
}

func TestHammingPaperExample(t *testing.T) {
	// Paper §2: chunks {0000000, 0000001, 0000010, ..., 1000000} all
	// map to basis 0000, and {1111111, 1111110, ...} to 1111.
	tr := hammingT(t, 3)
	zeroGroup := []string{"0000000", "0000001", "0000010", "0000100", "0001000", "0010000", "0100000", "1000000"}
	for _, s := range zeroGroup {
		basis, _ := tr.Split(bitvec.MustParse(s))
		if basis.String() != "0000" {
			t.Errorf("chunk %s: basis %s, want 0000", s, basis)
		}
	}
	oneGroup := []string{"1111111", "1111110", "1111101", "1111011", "1110111", "1101111", "1011111", "0111111"}
	for _, s := range oneGroup {
		basis, _ := tr.Split(bitvec.MustParse(s))
		if basis.String() != "1111" {
			t.Errorf("chunk %s: basis %s, want 1111", s, basis)
		}
	}
}

func TestHammingNeighborsShareBasis(t *testing.T) {
	// Words within Hamming distance 1 of a codeword share its basis:
	// the clustering property that makes sensor noise compressible.
	tr := hammingT(t, 8)
	rng := rand.New(rand.NewSource(20))
	word := randomVector(rng, tr.WordBits())
	basis0, dev0 := tr.Split(word)
	// The codeword is word with the dev0 bit fixed; all 255 one-bit
	// perturbations of that codeword share basis0.
	cw, err := tr.Merge(basis0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = dev0
	for pos := 0; pos < tr.WordBits(); pos += 17 {
		perturbed := cw.Clone()
		perturbed.Flip(pos)
		b, _ := tr.Split(perturbed)
		if !b.Equal(basis0) {
			t.Fatalf("perturbation at %d changed basis", pos)
		}
	}
}

func TestHammingMergeValidation(t *testing.T) {
	tr := hammingT(t, 3)
	if _, err := tr.Merge(bitvec.New(5), 0); err == nil {
		t.Error("wrong basis length accepted")
	}
	if _, err := tr.Merge(bitvec.New(4), 8); err == nil {
		t.Error("out-of-range deviation accepted")
	}
}

func TestIdentityTransform(t *testing.T) {
	tr := Identity{Bits: 16}
	rng := rand.New(rand.NewSource(2))
	word := randomVector(rng, 16)
	basis, dev := tr.Split(word)
	if dev != 0 || !basis.Equal(word) {
		t.Fatal("identity split is not identity")
	}
	back, err := tr.Merge(basis, 0)
	if err != nil || !back.Equal(word) {
		t.Fatalf("identity merge failed: %v", err)
	}
	if _, err := tr.Merge(basis, 1); err == nil {
		t.Error("nonzero deviation accepted")
	}
	if _, err := tr.Merge(bitvec.New(8), 0); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestLowBitsTransform(t *testing.T) {
	tr := LowBits{Bits: 16, Dev: 4}
	word := bitvec.MustParse("1010101011110110")
	basis, dev := tr.Split(word)
	if basis.String() != "101010101111" {
		t.Fatalf("basis = %s", basis)
	}
	if dev != 0b0110 {
		t.Fatalf("dev = %04b", dev)
	}
	back, err := tr.Merge(basis, dev)
	if err != nil || !back.Equal(word) {
		t.Fatalf("merge failed: %v -> %s", err, back)
	}
	if _, err := tr.Merge(basis, 16); err == nil {
		t.Error("out-of-range deviation accepted")
	}
}

func TestLowBitsRoundTripProperty(t *testing.T) {
	tr := LowBits{Bits: 24, Dev: 7}
	f := func(raw [3]byte) bool {
		word := bitvec.FromBytes(raw[:], 24)
		b, d := tr.Split(word)
		back, err := tr.Merge(b, d)
		return err == nil && back.Equal(word)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecChunkGeometry(t *testing.T) {
	// Paper §7 parameter choice: m=8 gives 32-byte chunks, a 247-bit
	// basis, one carried MSB, and 256 encoded bits.
	tr := hammingT(t, 8)
	c := NewCodec(tr)
	if c.ChunkBytes() != 32 {
		t.Errorf("ChunkBytes = %d, want 32", c.ChunkBytes())
	}
	if c.ExtraBits() != 1 {
		t.Errorf("ExtraBits = %d, want 1", c.ExtraBits())
	}
	if c.BasisBits() != 247 {
		t.Errorf("BasisBits = %d, want 247", c.BasisBits())
	}
	if c.EncodedBits() != 256 {
		t.Errorf("EncodedBits = %d, want 256", c.EncodedBits())
	}
	// Every m from 3..15 yields byte-aligned 2^(m-3)-byte chunks.
	for m := 3; m <= 15; m++ {
		cm := NewCodec(hammingT(t, m))
		if cm.ChunkBytes() != 1<<uint(m-3) {
			t.Errorf("m=%d: ChunkBytes = %d, want %d", m, cm.ChunkBytes(), 1<<uint(m-3))
		}
		if cm.ExtraBits() != 1 {
			t.Errorf("m=%d: ExtraBits = %d, want 1", m, cm.ExtraBits())
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range []int{3, 4, 8} {
		c := NewCodec(hammingT(t, m))
		rng := rand.New(rand.NewSource(int64(100 + m)))
		for trial := 0; trial < 100; trial++ {
			chunk := make([]byte, c.ChunkBytes())
			rng.Read(chunk)
			s, err := c.SplitChunk(chunk)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.MergeChunk(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, chunk) {
				t.Fatalf("m=%d trial %d: chunk round trip failed", m, trial)
			}
		}
	}
}

func TestCodecMSBCarried(t *testing.T) {
	c := NewCodec(hammingT(t, 8))
	chunk := make([]byte, 32)
	chunk[0] = 0x80 // MSB set
	s, err := c.SplitChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if s.Extra != 1 {
		t.Fatalf("Extra = %d, want 1", s.Extra)
	}
	chunk[0] = 0x00
	s2, _ := c.SplitChunk(chunk)
	if s2.Extra != 0 {
		t.Fatalf("Extra = %d, want 0", s2.Extra)
	}
	// Same basis either way: the MSB does not influence the
	// dictionary key.
	if !s.Basis.Equal(s2.Basis) || s.Deviation != s2.Deviation {
		t.Fatal("MSB leaked into basis or deviation")
	}
}

func TestCodecErrors(t *testing.T) {
	c := NewCodec(hammingT(t, 8))
	if _, err := c.SplitChunk(make([]byte, 31)); err == nil {
		t.Error("short chunk accepted")
	}
	s := Split{Basis: bitvec.New(247), Deviation: 0, Extra: 2}
	if _, err := c.MergeChunk(s, nil); err == nil {
		t.Error("oversized extra accepted")
	}
	s = Split{Basis: bitvec.New(200), Deviation: 0}
	if _, err := c.MergeChunk(s, nil); err == nil {
		t.Error("wrong basis length accepted")
	}
}

func TestCodecAppendsToDst(t *testing.T) {
	c := NewCodec(hammingT(t, 3))
	chunk := []byte{0xA5}
	s, _ := c.SplitChunk(chunk)
	out, err := c.MergeChunk(s, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{1, 2, 3, 0xA5}) {
		t.Fatalf("append semantics broken: %x", out)
	}
}

func randomVector(rng *rand.Rand, n int) *bitvec.Vector {
	data := make([]byte, (n+7)/8)
	rng.Read(data)
	return bitvec.FromBytes(data, n)
}

func BenchmarkHammingSplit255(b *testing.B) {
	tr, _ := NewHammingM(8)
	c := NewCodec(tr)
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(chunk)
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.SplitChunk(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingMerge255(b *testing.B) {
	tr, _ := NewHammingM(8)
	c := NewCodec(tr)
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(chunk)
	s, _ := c.SplitChunk(chunk)
	dst := make([]byte, 0, 32)
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.MergeChunk(s, dst[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = hamming.Table1 // keep the import for documentation cross-refs
