package gd

import (
	"bytes"
	"math/rand"
	"testing"

	"zipline/internal/bitvec"
)

// genericSplit mirrors what Codec.SplitChunk does without the Hamming
// fast path, using only the Transform interface.
func genericSplit(c *Codec, chunk []byte) Split {
	word := bitvec.FromBytes(chunk, c.ChunkBits())
	var extra uint8
	if c.ExtraBits() > 0 {
		extra = uint8(word.Slice(0, c.ExtraBits()).Uint())
		word = word.Slice(c.ExtraBits(), c.Transform().WordBits())
	}
	basis, dev := c.Transform().Split(word)
	return Split{Basis: basis, Deviation: dev, Extra: extra}
}

func genericMerge(c *Codec, s Split) []byte {
	word, err := c.Transform().Merge(s.Basis, s.Deviation)
	if err != nil {
		panic(err)
	}
	w := bitvec.NewWriter(c.ChunkBytes())
	w.WriteUint(uint64(s.Extra), c.ExtraBits())
	w.WriteVector(word)
	return w.Bytes()
}

func TestFastPathMatchesGeneric(t *testing.T) {
	for _, m := range []int{3, 4, 5, 8, 11} {
		tr, err := NewHammingM(m)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCodec(tr)
		rng := rand.New(rand.NewSource(int64(m) * 31))
		for trial := 0; trial < 200; trial++ {
			chunk := make([]byte, c.ChunkBytes())
			rng.Read(chunk)

			fast, err := c.SplitChunk(chunk)
			if err != nil {
				t.Fatal(err)
			}
			slow := genericSplit(c, chunk)
			if !fast.Basis.Equal(slow.Basis) || fast.Deviation != slow.Deviation || fast.Extra != slow.Extra {
				t.Fatalf("m=%d trial %d: fast split diverged\nfast: %s dev=%x extra=%d\nslow: %s dev=%x extra=%d",
					m, trial, fast.Basis, fast.Deviation, fast.Extra, slow.Basis, slow.Deviation, slow.Extra)
			}

			out, err := c.MergeChunk(fast, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, chunk) {
				t.Fatalf("m=%d trial %d: fast merge did not round trip", m, trial)
			}
			if slowOut := genericMerge(c, slow); !bytes.Equal(slowOut, chunk) {
				t.Fatalf("m=%d trial %d: generic merge did not round trip", m, trial)
			}
		}
	}
}

func TestFastMergeValidation(t *testing.T) {
	tr, _ := NewHammingM(8)
	c := NewCodec(tr)
	if _, err := c.MergeChunk(Split{Basis: bitvec.New(10)}, nil); err == nil {
		t.Error("bad basis length accepted")
	}
	if _, err := c.MergeChunk(Split{Basis: bitvec.New(247), Deviation: 1 << 8}, nil); err == nil {
		t.Error("bad deviation accepted")
	}
	if _, err := c.MergeChunk(Split{Basis: bitvec.New(247), Extra: 2}, nil); err == nil {
		t.Error("bad extra accepted")
	}
	if _, err := c.SplitChunk(make([]byte, 3)); err == nil {
		t.Error("bad chunk length accepted")
	}
}
