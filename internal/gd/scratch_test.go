package gd

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestScratchAPIsMatchAllocating pins the scratch-buffer encode and
// decode paths (SplitChunkInto, SplitChunkBytes, MergeChunkBytes) to
// the allocating SplitChunk/MergeChunk across transforms, with every
// scratch deliberately reused between trials so stale state would
// surface.
func TestScratchAPIsMatchAllocating(t *testing.T) {
	transforms := []Transform{
		mustHamming(3), mustHamming(5), mustHamming(8),
		Identity{Bits: 64},
		LowBits{Bits: 64, Dev: 5},
	}
	for _, tr := range transforms {
		c := NewCodec(tr)
		rng := rand.New(rand.NewSource(int64(c.ChunkBits())))
		var into Split
		var basisBuf []byte
		dst := make([]byte, 0, 4*c.ChunkBytes())
		for trial := 0; trial < 100; trial++ {
			chunk := make([]byte, c.ChunkBytes())
			rng.Read(chunk)

			want, err := c.SplitChunk(chunk)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.SplitChunkInto(chunk, &into); err != nil {
				t.Fatalf("%s trial %d: SplitChunkInto: %v", tr, trial, err)
			}
			if !into.Basis.Equal(want.Basis) || into.Deviation != want.Deviation || into.Extra != want.Extra {
				t.Fatalf("%s trial %d: SplitChunkInto diverged", tr, trial)
			}
			var dev uint32
			var extra uint8
			basisBuf, dev, extra, err = c.SplitChunkBytes(chunk, basisBuf)
			if err != nil {
				t.Fatalf("%s trial %d: SplitChunkBytes: %v", tr, trial, err)
			}
			if !bytes.Equal(basisBuf, want.Basis.Bytes()) || dev != want.Deviation || extra != want.Extra {
				t.Fatalf("%s trial %d: SplitChunkBytes diverged", tr, trial)
			}

			back, err := c.MergeChunkBytes(basisBuf, dev, extra, dst[:0])
			if err != nil {
				t.Fatalf("%s trial %d: MergeChunkBytes: %v", tr, trial, err)
			}
			if !bytes.Equal(back, chunk) {
				t.Fatalf("%s trial %d: MergeChunkBytes round trip failed", tr, trial)
			}
		}
	}
}

// TestMergeChunkBytesIgnoresDirtyTailPadding: raw basis buffers from
// callers may carry garbage in the padding bits past BasisBits; the
// merge must mask them out.
func TestMergeChunkBytesIgnoresDirtyTailPadding(t *testing.T) {
	c := NewCodec(mustHamming(8)) // k = 247 bits → one pad bit
	rng := rand.New(rand.NewSource(7))
	chunk := make([]byte, c.ChunkBytes())
	rng.Read(chunk)
	s, err := c.SplitChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	dirty := append([]byte(nil), s.Basis.Bytes()...)
	dirty[len(dirty)-1] |= 1 // set the pad bit
	back, err := c.MergeChunkBytes(dirty, s.Deviation, s.Extra, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, chunk) {
		t.Fatal("dirty tail padding leaked into the merged chunk")
	}
}

// TestMergeChunkBytesValidates mirrors MergeChunk's error cases.
func TestMergeChunkBytesValidates(t *testing.T) {
	c := NewCodec(mustHamming(8))
	chunk := make([]byte, c.ChunkBytes())
	s, err := c.SplitChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	basis := s.Basis.Bytes()
	if _, err := c.MergeChunkBytes(basis[:len(basis)-1], s.Deviation, s.Extra, nil); err == nil {
		t.Error("short basis accepted")
	}
	if _, err := c.MergeChunkBytes(basis, 1<<8, s.Extra, nil); err == nil {
		t.Error("wide deviation accepted")
	}
	if _, err := c.MergeChunkBytes(basis, s.Deviation, 2, nil); err == nil {
		t.Error("wide extra accepted")
	}
}

func mustHamming(m int) *Hamming {
	h, err := NewHammingM(m)
	if err != nil {
		panic(err)
	}
	return h
}
