package gd

import (
	"bytes"
	"math/rand"
	"testing"
)

// The Hamming transform takes the codec's fast path; these tests pin
// the generic path using the other transforms.

func TestCodecGenericPathIdentity(t *testing.T) {
	// Identity over a 256-bit word: no extra bits at all.
	c := NewCodec(Identity{Bits: 256})
	if c.ExtraBits() != 0 || c.ChunkBytes() != 32 {
		t.Fatalf("geometry: extra=%d chunk=%d", c.ExtraBits(), c.ChunkBytes())
	}
	if c.DeviationBits() != 0 {
		t.Fatalf("deviation = %d", c.DeviationBits())
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		chunk := make([]byte, 32)
		rng.Read(chunk)
		s, err := c.SplitChunk(chunk)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.MergeChunk(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, chunk) {
			t.Fatal("identity codec round trip failed")
		}
	}
	// Errors on the generic path.
	if _, err := c.SplitChunk(make([]byte, 31)); err == nil {
		t.Error("short chunk accepted")
	}
}

func TestCodecGenericPathLowBits(t *testing.T) {
	// LowBits over a 253-bit word: 3 extra bits ride along.
	c := NewCodec(LowBits{Bits: 253, Dev: 13})
	if c.ExtraBits() != 3 || c.ChunkBytes() != 32 {
		t.Fatalf("geometry: extra=%d chunk=%d", c.ExtraBits(), c.ChunkBytes())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		chunk := make([]byte, 32)
		rng.Read(chunk)
		s, err := c.SplitChunk(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if s.Basis.Len() != 240 {
			t.Fatalf("basis = %d bits", s.Basis.Len())
		}
		out, err := c.MergeChunk(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, chunk) {
			t.Fatalf("trial %d: lowbits codec round trip failed", trial)
		}
	}
	// Extra wider than 3 bits must be rejected by the generic merge.
	s, _ := c.SplitChunk(make([]byte, 32))
	s.Extra = 0x09
	if _, err := c.MergeChunk(s, nil); err == nil {
		t.Error("oversized extra accepted on generic path")
	}
}

func TestTransformAccessors(t *testing.T) {
	h, err := NewHammingM(8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Code() == nil || h.Code().N() != 255 {
		t.Fatal("Code accessor broken")
	}
	if h.String() == "" || (Identity{Bits: 8}).String() == "" || (LowBits{Bits: 8, Dev: 2}).String() == "" {
		t.Fatal("Stringers broken")
	}
	id := Identity{Bits: 8}
	if id.WordBits() != 8 || id.BasisBits() != 8 || id.DeviationBits() != 0 {
		t.Fatal("identity geometry broken")
	}
	lb := LowBits{Bits: 16, Dev: 5}
	if lb.WordBits() != 16 || lb.BasisBits() != 11 || lb.DeviationBits() != 5 {
		t.Fatal("lowbits geometry broken")
	}
	c := NewCodec(h)
	if c.Transform() != h || c.String() == "" || c.ChunkBits() != 256 || c.DeviationBits() != 8 {
		t.Fatal("codec accessors broken")
	}
	if _, err := NewHammingM(99); err == nil {
		t.Fatal("NewHammingM(99) accepted")
	}
}

func TestIdentitySplitPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Identity{Bits: 8}.Split(randomVector(rand.New(rand.NewSource(1)), 9))
}

func TestLowBitsSplitPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LowBits{Bits: 8, Dev: 2}.Split(randomVector(rand.New(rand.NewSource(1)), 9))
}
