// Package gd implements generalized deduplication (GD), the
// compression algorithm at the heart of ZipLine (paper §2, §4).
//
// GD first applies an invertible transformation that splits a data
// word into a pair (basis, deviation): many similar words share one
// basis and differ only in the small deviation. The system then
// deduplicates bases against a dictionary while keeping each word's
// deviation, so the original data can always be reconstructed.
//
// The paper's transformation is a Hamming-code decode step whose
// syndrome doubles as the deviation; this package also provides the
// identity transform (classic deduplication, used as a baseline) and
// a bit-extraction transform in the spirit of the bit-swapping
// future-work reference [37]. The BCH transform from the paper's
// future work lives in zipline/internal/bch and plugs into the same
// interface.
package gd
