package gd

import (
	"fmt"

	"zipline/internal/bitvec"
)

// Fast paths for the Hamming transform operating directly on chunk
// bytes. These avoid per-bit vector surgery on the hot encode and
// decode paths; correctness is pinned to the generic implementation
// by property tests in codec_fast_test.go.
//
// The key identity: a chunk is extra·x^n ⊕ B(x) as a 2^m-bit
// polynomial, and x^n ≡ 1 (mod g), so
//
//	CRC(chunk, 2^m bits) = CRC(B) ⊕ extra
//
// letting the syndrome be computed over the whole byte-aligned chunk
// in one table-driven pass — exactly what ZipLine's P4 program does
// with the Tofino CRC extern over the full payload container.

// splitHamming encodes one chunk for a Hamming transform without
// intermediate bit vectors.
func (c *Codec) splitHamming(h *Hamming, chunk []byte) (Split, error) {
	if len(chunk) != c.ChunkBytes() {
		return Split{}, fmt.Errorf("gd: chunk is %d bytes, codec expects %d", len(chunk), c.ChunkBytes())
	}
	code := h.code
	extra := chunk[0] >> 7
	s := code.Engine().Remainder(chunk, c.chunkBits) ^ uint32(extra)

	// Extract the basis (word positions m..n-1, i.e. chunk bit
	// offset 1+m), then flip the syndrome-indicated bit if it landed
	// inside the basis range; flips in the parity range vanish with
	// the truncation.
	basisBuf := make([]byte, (code.K()+7)/8)
	bitvec.CopyBits(basisBuf, 0, chunk, 1+code.M(), code.K())
	if pos := code.ErrorPosition(s); pos >= 0 {
		if rel := pos - code.M(); rel >= 0 {
			basisBuf[rel>>3] ^= 1 << (7 - uint(rel&7))
		}
	}
	return Split{
		Basis:     bitvec.Wrap(basisBuf, code.K()),
		Deviation: s,
		Extra:     extra,
	}, nil
}

// mergeHamming reconstructs one chunk for a Hamming transform without
// intermediate bit vectors, appending to dst.
func (c *Codec) mergeHamming(h *Hamming, s Split, dst []byte) ([]byte, error) {
	code := h.code
	if s.Basis.Len() != code.K() {
		return dst, fmt.Errorf("gd: basis length %d != k=%d", s.Basis.Len(), code.K())
	}
	if s.Deviation >= 1<<uint(code.M()) {
		return dst, fmt.Errorf("gd: deviation %#x wider than m=%d bits", s.Deviation, code.M())
	}
	if s.Extra > 1 {
		return dst, fmt.Errorf("gd: extra %#x wider than 1 bit", s.Extra)
	}
	p := code.ParityBytes(s.Basis.Bytes())

	chunk := make([]byte, c.ChunkBytes())
	if s.Extra == 1 {
		chunk[0] = 0x80
	}
	// Deposit the m parity bits at chunk bit offset 1.
	var ptmp [4]byte
	v := p << uint(32-code.M())
	ptmp[0] = byte(v >> 24)
	ptmp[1] = byte(v >> 16)
	bitvec.CopyBits(chunk, 1, ptmp[:], 0, code.M())
	// Deposit the basis at offset 1+m.
	bitvec.CopyBits(chunk, 1+code.M(), s.Basis.Bytes(), 0, code.K())
	// Re-introduce the deviation bit.
	if pos := code.ErrorPosition(s.Deviation); pos >= 0 {
		cp := pos + 1
		chunk[cp>>3] ^= 1 << (7 - uint(cp&7))
	}
	return append(dst, chunk...), nil
}
