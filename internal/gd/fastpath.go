package gd

import (
	"encoding/binary"
	"fmt"
	"slices"

	"zipline/internal/bitvec"
)

// Fast paths for the Hamming transform operating directly on chunk
// bytes. These avoid per-bit vector surgery on the hot encode and
// decode paths; correctness is pinned to the generic implementation
// by property tests in codec_fast_test.go.
//
// The key identity: a chunk is extra·x^n ⊕ B(x) as a 2^m-bit
// polynomial, and x^n ≡ 1 (mod g), so
//
//	CRC(chunk, 2^m bits) = CRC(B) ⊕ extra
//
// letting the syndrome be computed over the whole byte-aligned chunk
// in one table-driven pass — exactly what ZipLine's P4 program does
// with the Tofino CRC extern over the full payload container.
//
// Each operation comes in three shapes: the allocating SplitChunk /
// MergeChunk used by one-shot callers, the scratch-reusing
// SplitChunkInto used by the stream encoders, and the raw-byte
// SplitChunkBytes / MergeChunkBytes that never touch a bit vector at
// all — the allocation-free hot path of the public Codec.

// splitHamming encodes one chunk for a Hamming transform without
// intermediate bit vectors.
func (c *Codec) splitHamming(h *Hamming, chunk []byte) (Split, error) {
	var s Split
	err := c.splitHammingInto(h, chunk, &s)
	return s, err
}

// SplitChunkInto is SplitChunk writing into a caller-owned Split,
// reusing s.Basis's storage when it has capacity. Repeated calls with
// the same Split allocate nothing on the Hamming fast path, which is
// what lets each stream worker encode with a single scratch struct.
// The previous contents of s are overwritten; bases handed to a
// Dictionary are cloned on insert, so reuse is safe.
//
//zipline:noalloc
func (c *Codec) SplitChunkInto(chunk []byte, s *Split) error {
	if h, ok := c.t.(*Hamming); ok {
		return c.splitHammingInto(h, chunk, s)
	}
	out, err := c.splitGeneric(chunk)
	if err != nil {
		return err
	}
	*s = out
	return nil
}

func (c *Codec) splitHammingInto(h *Hamming, chunk []byte, s *Split) error {
	if len(chunk) != c.ChunkBytes() {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return fmt.Errorf("gd: chunk is %d bytes, codec expects %d", len(chunk), c.ChunkBytes())
	}
	code := h.code
	extra := chunk[0] >> 7
	syn := code.Engine().Remainder(chunk, c.chunkBits) ^ uint32(extra)
	if s.Basis == nil {
		s.Basis = bitvec.New(code.K())
	} else {
		s.Basis.Reset(code.K())
	}
	basisBuf := s.Basis.Bytes()
	// Extract the basis (word positions m..n-1, i.e. chunk bit
	// offset 1+m), then flip the syndrome-indicated bit if it landed
	// inside the basis range; flips in the parity range vanish with
	// the truncation.
	bitvec.CopyBits(basisBuf, 0, chunk, 1+code.M(), code.K())
	if pos := code.ErrorPosition(syn); pos >= 0 {
		if rel := pos - code.M(); rel >= 0 {
			basisBuf[rel>>3] ^= 1 << (7 - uint(rel&7))
		}
	}
	s.Deviation = syn
	s.Extra = extra
	return nil
}

// SplitChunkBytes is SplitChunk without bit vectors: the basis bits
// land in basis, whose capacity is reused append-style (pass the
// previous return value, or nil on first use). The returned slice is
// exactly ceil(BasisBits/8) bytes with zero tail padding.
//
//zipline:noalloc
func (c *Codec) SplitChunkBytes(chunk, basis []byte) (basisOut []byte, deviation uint32, extra uint8, err error) {
	h, ok := c.t.(*Hamming)
	if !ok {
		s, err := c.splitGeneric(chunk)
		if err != nil {
			return basis, 0, 0, err
		}
		return append(basis[:0], s.Basis.Bytes()...), s.Deviation, s.Extra, nil
	}
	if len(chunk) != c.ChunkBytes() {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return basis, 0, 0, fmt.Errorf("gd: chunk is %d bytes, codec expects %d", len(chunk), c.ChunkBytes())
	}
	code := h.code
	ex := chunk[0] >> 7
	syn := code.Engine().Remainder(chunk, c.chunkBits) ^ uint32(ex)
	nb := (code.K() + 7) / 8
	if cap(basis) >= nb {
		basis = basis[:nb]
		clear(basis)
	} else {
		//ziplint:allow noalloc grow-to-fit when caller scratch is short; reused scratch never reallocates
		basis = make([]byte, nb)
	}
	bitvec.CopyBits(basis, 0, chunk, 1+code.M(), code.K())
	if pos := code.ErrorPosition(syn); pos >= 0 {
		if rel := pos - code.M(); rel >= 0 {
			basis[rel>>3] ^= 1 << (7 - uint(rel&7))
		}
	}
	return basis, syn, ex, nil
}

// mergeHamming reconstructs one chunk for a Hamming transform without
// intermediate bit vectors, appending to dst.
func (c *Codec) mergeHamming(h *Hamming, s Split, dst []byte) ([]byte, error) {
	if s.Basis.Len() != h.code.K() {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return dst, fmt.Errorf("gd: basis length %d != k=%d", s.Basis.Len(), h.code.K())
	}
	return c.mergeHammingBytes(h, s.Basis.Bytes(), s.Deviation, s.Extra, dst)
}

// MergeChunkBytes is MergeChunk on a raw basis buffer: basis must be
// ceil(BasisBits/8) bytes (tail padding bits are ignored). The chunk
// is appended to dst in place; when dst has spare capacity the call
// allocates nothing.
//
//zipline:noalloc
func (c *Codec) MergeChunkBytes(basis []byte, deviation uint32, extra uint8, dst []byte) ([]byte, error) {
	if len(basis) != (c.t.BasisBits()+7)/8 {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return dst, fmt.Errorf("gd: basis is %d bytes, want %d", len(basis), (c.t.BasisBits()+7)/8)
	}
	h, ok := c.t.(*Hamming)
	if !ok {
		return c.MergeChunk(Split{
			Basis:     bitvec.FromBytes(basis, c.t.BasisBits()),
			Deviation: deviation,
			Extra:     extra,
		}, dst)
	}
	return c.mergeHammingBytes(h, basis, deviation, extra, dst)
}

func (c *Codec) mergeHammingBytes(h *Hamming, basis []byte, deviation uint32, extra uint8, dst []byte) ([]byte, error) {
	code := h.code
	if deviation >= 1<<uint(code.M()) {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return dst, fmt.Errorf("gd: deviation %#x wider than m=%d bits", deviation, code.M())
	}
	if extra > 1 {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return dst, fmt.Errorf("gd: extra %#x wider than 1 bit", extra)
	}
	p := code.ParityBytes(basis)

	// Build the chunk directly in dst's grown tail.
	base := len(dst)
	dst = slices.Grow(dst, c.ChunkBytes())[:base+c.ChunkBytes()]
	chunk := dst[base:]
	if code.M() == 8 && c.chunkBits == 256 {
		// Paper §7 configuration (the perf-critical one): the 256-bit
		// chunk is extra | 8 parity bits | 247 basis bits, assembled as
		// four 64-bit words — the basis slides right nine bit positions
		// through shifted word pairs, and basis[30]'s padding LSB falls
		// off the end.
		u0 := binary.BigEndian.Uint64(basis[0:8])
		u1 := binary.BigEndian.Uint64(basis[8:16])
		u2 := binary.BigEndian.Uint64(basis[16:24])
		u3 := binary.BigEndian.Uint64(basis[23:31]) << 8
		binary.BigEndian.PutUint64(chunk[0:8], uint64(extra)<<63|uint64(p)<<55|u0>>9)
		binary.BigEndian.PutUint64(chunk[8:16], u0<<55|u1>>9)
		binary.BigEndian.PutUint64(chunk[16:24], u1<<55|u2>>9)
		binary.BigEndian.PutUint64(chunk[24:32], u2<<55|u3>>9)
	} else {
		clear(chunk)
		if extra == 1 {
			chunk[0] = 0x80
		}
		// Deposit the m parity bits at chunk bit offset 1.
		var ptmp [4]byte
		v := p << uint(32-code.M())
		ptmp[0] = byte(v >> 24)
		ptmp[1] = byte(v >> 16)
		bitvec.CopyBits(chunk, 1, ptmp[:], 0, code.M())
		// Deposit the basis at offset 1+m.
		bitvec.CopyBits(chunk, 1+code.M(), basis, 0, code.K())
	}
	// Re-introduce the deviation bit.
	if pos := code.ErrorPosition(deviation); pos >= 0 {
		cp := pos + 1
		chunk[cp>>3] ^= 1 << (7 - uint(cp&7))
	}
	return dst, nil
}
