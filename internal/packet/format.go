package packet

import (
	"fmt"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

// Format defines the wire layout of ZipLine type 2 and type 3
// payloads for a given codec geometry.
//
// Aligned layout (the Tofino artifact, paper §6/§7):
//
//	type 2: [syndrome ⌈m/8⌉B] [extra 1B] [basis ⌈k/8⌉B] [tail...]
//	type 3: [syndrome ⌈m/8⌉B] [extra|ID ⌈(e+t)/8⌉B]     [tail...]
//
// The dedicated extra byte in type 2 is the 8-bit padding the paper
// says "could be eliminated by an expert P4₁₆/TNA programmer"; with
// m=8, t=15 this reproduces the published sizes exactly: 33 B and
// 3 B per 32 B chunk.
//
// Packed layout bit-packs [syndrome|extra|basis] and
// [syndrome|extra|ID] with only final byte-rounding, the minimal
// framing GD admits.
//
// Payload bytes beyond the encoded region are an uncompressed tail,
// forwarded verbatim (frames carrying more than one chunk of data
// keep everything after the first chunk untouched, mirroring how the
// hardware parser extracts a fixed-size header region).
type Format struct {
	m      int // deviation (syndrome) bits
	k      int // basis bits
	extra  int // carried MSBs (chunk bits bypassing the transform)
	idBits int // dictionary identifier bits
	align  bool
}

// NewFormat derives the wire format from a codec, an identifier
// width, and the alignment flavour.
func NewFormat(c *gd.Codec, idBits int, align bool) (Format, error) {
	if idBits < 1 || idBits > 24 {
		return Format{}, fmt.Errorf("packet: idBits %d out of range [1,24]", idBits)
	}
	return Format{
		m:      c.DeviationBits(),
		k:      c.BasisBits(),
		extra:  c.ExtraBits(),
		idBits: idBits,
		align:  align,
	}, nil
}

// MustFormat is NewFormat, panicking on error.
func MustFormat(c *gd.Codec, idBits int, align bool) Format {
	f, err := NewFormat(c, idBits, align)
	if err != nil {
		panic(err)
	}
	return f
}

// Aligned reports whether the format uses the Tofino byte-aligned
// layout.
func (f Format) Aligned() bool { return f.align }

// IDBits returns the identifier width in bits.
func (f Format) IDBits() int { return f.idBits }

// Type2Len returns the byte length of the encoded region of a type 2
// payload.
func (f Format) Type2Len() int {
	if f.align {
		return (f.m+7)/8 + 1 + (f.k+7)/8
	}
	return (f.m + f.extra + f.k + 7) / 8
}

// Type3Len returns the byte length of the encoded region of a type 3
// payload.
func (f Format) Type3Len() int {
	if f.align {
		return (f.m+7)/8 + (f.extra+f.idBits+7)/8
	}
	return (f.m + f.extra + f.idBits + 7) / 8
}

// AppendType2 appends the encoded region of a type 2 payload to dst.
func (f Format) AppendType2(dst []byte, s gd.Split) []byte {
	w := bitvec.NewWriter(f.Type2Len())
	if f.align {
		w.WriteUint(uint64(s.Deviation), f.m)
		w.Pad()
		w.WriteUint(uint64(s.Extra), 8) // the paper's removable pad byte
		w.WriteVector(s.Basis)
		w.Pad()
	} else {
		w.WriteUint(uint64(s.Deviation), f.m)
		w.WriteUint(uint64(s.Extra), f.extra)
		w.WriteVector(s.Basis)
		w.Pad()
	}
	return append(dst, w.Bytes()...)
}

// ParseType2 decodes the encoded region of a type 2 payload,
// returning the split and the verbatim tail (a sub-slice of payload).
func (f Format) ParseType2(payload []byte) (gd.Split, []byte, error) {
	enc := f.Type2Len()
	if len(payload) < enc {
		return gd.Split{}, nil, fmt.Errorf("packet: type 2 payload %d bytes, need %d", len(payload), enc)
	}
	r := bitvec.NewReader(payload[:enc])
	var s gd.Split
	dev, err := r.ReadUint(f.m)
	if err != nil {
		return gd.Split{}, nil, err
	}
	s.Deviation = uint32(dev)
	if f.align {
		if err := r.Skip((8 - f.m&7) & 7); err != nil {
			return gd.Split{}, nil, err
		}
		e, err := r.ReadUint(8)
		if err != nil {
			return gd.Split{}, nil, err
		}
		if e>>uint(f.extra) != 0 {
			return gd.Split{}, nil, fmt.Errorf("packet: type 2 extra field %#x exceeds %d bits", e, f.extra)
		}
		s.Extra = uint8(e)
	} else {
		e, err := r.ReadUint(f.extra)
		if err != nil {
			return gd.Split{}, nil, err
		}
		s.Extra = uint8(e)
	}
	basis, err := r.ReadVector(f.k)
	if err != nil {
		return gd.Split{}, nil, err
	}
	s.Basis = basis
	return s, payload[enc:], nil
}

// Compressed is the content of a type 3 encoded region: the per-chunk
// residue plus the dictionary identifier standing in for the basis.
type Compressed struct {
	Deviation uint32
	Extra     uint8
	ID        uint32
}

// AppendType3 appends the encoded region of a type 3 payload to dst.
func (f Format) AppendType3(dst []byte, c Compressed) []byte {
	w := bitvec.NewWriter(f.Type3Len())
	w.WriteUint(uint64(c.Deviation), f.m)
	if f.align {
		w.Pad()
	}
	w.WriteUint(uint64(c.Extra), f.extra)
	w.WriteUint(uint64(c.ID), f.idBits)
	w.Pad()
	return append(dst, w.Bytes()...)
}

// ParseType3 decodes the encoded region of a type 3 payload,
// returning the compressed record and the verbatim tail.
func (f Format) ParseType3(payload []byte) (Compressed, []byte, error) {
	enc := f.Type3Len()
	if len(payload) < enc {
		return Compressed{}, nil, fmt.Errorf("packet: type 3 payload %d bytes, need %d", len(payload), enc)
	}
	r := bitvec.NewReader(payload[:enc])
	var c Compressed
	dev, err := r.ReadUint(f.m)
	if err != nil {
		return Compressed{}, nil, err
	}
	c.Deviation = uint32(dev)
	if f.align {
		if err := r.Skip((8 - f.m&7) & 7); err != nil {
			return Compressed{}, nil, err
		}
	}
	e, err := r.ReadUint(f.extra)
	if err != nil {
		return Compressed{}, nil, err
	}
	c.Extra = uint8(e)
	id, err := r.ReadUint(f.idBits)
	if err != nil {
		return Compressed{}, nil, err
	}
	c.ID = uint32(id)
	return c, payload[enc:], nil
}
