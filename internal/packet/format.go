package packet

import (
	"encoding/binary"
	"fmt"
	"slices"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

// Format defines the wire layout of ZipLine type 2 and type 3
// payloads for a given codec geometry.
//
// Aligned layout (the Tofino artifact, paper §6/§7):
//
//	type 2: [syndrome ⌈m/8⌉B] [extra 1B] [basis ⌈k/8⌉B] [tail...]
//	type 3: [syndrome ⌈m/8⌉B] [extra|ID ⌈(e+t)/8⌉B]     [tail...]
//
// The dedicated extra byte in type 2 is the 8-bit padding the paper
// says "could be eliminated by an expert P4₁₆/TNA programmer"; with
// m=8, t=15 this reproduces the published sizes exactly: 33 B and
// 3 B per 32 B chunk.
//
// Packed layout bit-packs [syndrome|extra|basis] and
// [syndrome|extra|ID] with only final byte-rounding, the minimal
// framing GD admits.
//
// Payload bytes beyond the encoded region are an uncompressed tail,
// forwarded verbatim (frames carrying more than one chunk of data
// keep everything after the first chunk untouched, mirroring how the
// hardware parser extracts a fixed-size header region).
type Format struct {
	m      int // deviation (syndrome) bits
	k      int // basis bits
	extra  int // carried MSBs (chunk bits bypassing the transform)
	idBits int // dictionary identifier bits
	align  bool
}

// NewFormat derives the wire format from a codec, an identifier
// width, and the alignment flavour.
func NewFormat(c *gd.Codec, idBits int, align bool) (Format, error) {
	if idBits < 1 || idBits > 24 {
		return Format{}, fmt.Errorf("packet: idBits %d out of range [1,24]", idBits)
	}
	return Format{
		m:      c.DeviationBits(),
		k:      c.BasisBits(),
		extra:  c.ExtraBits(),
		idBits: idBits,
		align:  align,
	}, nil
}

// MustFormat is NewFormat, panicking on error.
func MustFormat(c *gd.Codec, idBits int, align bool) Format {
	f, err := NewFormat(c, idBits, align)
	if err != nil {
		panic(err)
	}
	return f
}

// Aligned reports whether the format uses the Tofino byte-aligned
// layout.
func (f Format) Aligned() bool { return f.align }

// IDBits returns the identifier width in bits.
func (f Format) IDBits() int { return f.idBits }

// Type2Len returns the byte length of the encoded region of a type 2
// payload.
func (f Format) Type2Len() int {
	if f.align {
		return (f.m+7)/8 + 1 + (f.k+7)/8
	}
	return (f.m + f.extra + f.k + 7) / 8
}

// Type3Len returns the byte length of the encoded region of a type 3
// payload.
func (f Format) Type3Len() int {
	if f.align {
		return (f.m+7)/8 + (f.extra+f.idBits+7)/8
	}
	return (f.m + f.extra + f.idBits + 7) / 8
}

// appendBitsMSB appends the low nbits of v to dst MSB-first,
// left-aligned into ceil(nbits/8) bytes with zero padding bits at the
// tail — the moral equivalent of Writer.WriteUint followed by Pad,
// without the Writer. nbits must be ≤ 64.
func appendBitsMSB(dst []byte, v uint64, nbits int) []byte {
	nb := (nbits + 7) / 8
	v <<= uint(nb*8 - nbits)
	for j := nb - 1; j >= 0; j-- {
		dst = append(dst, byte(v>>uint(8*j)))
	}
	return dst
}

// putBitsMSB deposits the low nbits of v into dst starting at bit
// off, MSB first, leaving surrounding bits untouched. nbits ≤ 56.
func putBitsMSB(dst []byte, off int, v uint64, nbits int) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v<<uint(64-nbits))
	bitvec.CopyBits(dst, off, tmp[:], 0, nbits)
}

// readBitsMSB extracts nbits bits of data starting at bit off, MSB
// first, right-aligned in the result. nbits ≤ 32 (a field may span at
// most five bytes).
func readBitsMSB(data []byte, off, nbits int) uint64 {
	var v uint64
	end := off + nbits
	for i := off &^ 7; i < end; i += 8 {
		v = v<<8 | uint64(data[i>>3])
	}
	v >>= uint((8 - end&7) & 7)
	return v & (1<<uint(nbits) - 1)
}

// AppendType2 appends the encoded region of a type 2 payload to dst.
func (f Format) AppendType2(dst []byte, s gd.Split) []byte {
	return f.AppendType2Bytes(dst, s.Basis.Bytes(), s.Deviation, s.Extra)
}

// AppendType2Bytes is AppendType2 on a raw basis buffer of exactly
// ceil(BasisBits/8) bytes (tail padding bits must be zero). With dst
// capacity to spare it allocates nothing — the switch encode path.
//
//zipline:noalloc
func (f Format) AppendType2Bytes(dst []byte, basis []byte, deviation uint32, extra uint8) []byte {
	if f.align {
		dst = appendBitsMSB(dst, uint64(deviation), f.m)
		dst = append(dst, extra) // the paper's removable pad byte
		return append(dst, basis...)
	}
	// Packed: [deviation|extra] bit-concatenated, then the basis bits
	// immediately after, byte-rounded at the very end only.
	base := len(dst)
	n := f.Type2Len()
	dst = slices.Grow(dst, n)[:base+n]
	buf := dst[base:]
	clear(buf)
	lead := f.m + f.extra
	putBitsMSB(buf, 0, uint64(deviation)<<uint(f.extra)|uint64(extra), lead)
	bitvec.CopyBits(buf, lead, basis, 0, f.k)
	return dst
}

// ParseType2 decodes the encoded region of a type 2 payload,
// returning the split and the verbatim tail (a sub-slice of payload).
func (f Format) ParseType2(payload []byte) (gd.Split, []byte, error) {
	basis, dev, extra, tail, err := f.ParseType2Bytes(payload, nil)
	if err != nil {
		return gd.Split{}, nil, err
	}
	return gd.Split{
		Basis:     bitvec.FromBytes(basis, f.k),
		Deviation: dev,
		Extra:     extra,
	}, tail, nil
}

// ParseType2Bytes decodes the encoded region of a type 2 payload
// without building a bit vector. In the aligned layout the returned
// basis aliases payload directly; in the packed layout the basis bits
// are extracted into basisScratch, whose capacity is reused
// append-style (pass the previous return value, or nil on first use).
// Tail padding bits of the basis are not cleared — consumers such as
// Codec.MergeChunkBytes ignore them.
//
//zipline:noalloc
func (f Format) ParseType2Bytes(payload, basisScratch []byte) (basis []byte, deviation uint32, extra uint8, tail []byte, err error) {
	enc := f.Type2Len()
	if len(payload) < enc {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return basisScratch, 0, 0, nil, fmt.Errorf("packet: type 2 payload %d bytes, need %d", len(payload), enc)
	}
	deviation = uint32(readBitsMSB(payload, 0, f.m))
	kb := (f.k + 7) / 8
	if f.align {
		eOff := (f.m + 7) / 8
		e := payload[eOff]
		if e>>uint(f.extra) != 0 {
			//ziplint:allow noalloc cold validation branch; never taken on well-formed input
			return basisScratch, 0, 0, nil, fmt.Errorf("packet: type 2 extra field %#x exceeds %d bits", e, f.extra)
		}
		return payload[eOff+1 : eOff+1+kb], deviation, e, payload[enc:], nil
	}
	lead := f.m + f.extra
	extra = uint8(readBitsMSB(payload, f.m, f.extra))
	if cap(basisScratch) >= kb {
		basis = basisScratch[:kb]
	} else {
		//ziplint:allow noalloc grow-to-fit when caller scratch is short; reused scratch never reallocates
		basis = make([]byte, kb)
	}
	bitvec.CopyBits(basis, 0, payload, lead, f.k)
	if pad := kb*8 - f.k; pad > 0 {
		basis[kb-1] &^= byte(1<<uint(pad)) - 1
	}
	return basis, deviation, extra, payload[enc:], nil
}

// Compressed is the content of a type 3 encoded region: the per-chunk
// residue plus the dictionary identifier standing in for the basis.
type Compressed struct {
	Deviation uint32
	Extra     uint8
	ID        uint32
}

// AppendType3 appends the encoded region of a type 3 payload to dst.
// With dst capacity to spare it allocates nothing.
//
//zipline:noalloc
func (f Format) AppendType3(dst []byte, c Compressed) []byte {
	if f.align {
		dst = appendBitsMSB(dst, uint64(c.Deviation), f.m)
		return appendBitsMSB(dst, uint64(c.Extra)<<uint(f.idBits)|uint64(c.ID), f.extra+f.idBits)
	}
	return appendBitsMSB(dst,
		uint64(c.Deviation)<<uint(f.extra+f.idBits)|uint64(c.Extra)<<uint(f.idBits)|uint64(c.ID),
		f.m+f.extra+f.idBits)
}

// ParseType3 decodes the encoded region of a type 3 payload,
// returning the compressed record and the verbatim tail. It does not
// allocate.
//
//zipline:noalloc
func (f Format) ParseType3(payload []byte) (Compressed, []byte, error) {
	enc := f.Type3Len()
	if len(payload) < enc {
		//ziplint:allow noalloc cold validation branch; never taken on well-formed input
		return Compressed{}, nil, fmt.Errorf("packet: type 3 payload %d bytes, need %d", len(payload), enc)
	}
	var c Compressed
	c.Deviation = uint32(readBitsMSB(payload, 0, f.m))
	off := f.m
	if f.align {
		off = (f.m + 7) &^ 7
	}
	c.Extra = uint8(readBitsMSB(payload, off, f.extra))
	c.ID = uint32(readBitsMSB(payload, off+f.extra, f.idBits))
	return c, payload[enc:], nil
}
